(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (§7) as printed rows/series, plus one Bechamel micro-benchmark
   per artifact (run with --micro).

   Usage:
     dune exec bench/main.exe                 # every target, quick sweeps
     dune exec bench/main.exe -- fig14a tab5  # selected targets
     dune exec bench/main.exe -- --full       # full sweeps / budgets
     dune exec bench/main.exe -- --micro      # add bechamel micro-benchmarks
     dune exec bench/main.exe -- fig16c --smoke  # tiny CI-sized run *)

module T = Syccl_topology.Topology
module Builders = Syccl_topology.Builders
module C = Syccl_collective.Collective
module Sim = Syccl_sim.Sim
module Synth = Syccl.Synthesizer
module Teccl = Syccl_teccl.Teccl
module Nccl = Syccl_baselines.Nccl
module Crafted = Syccl_baselines.Crafted
module Stats = Syccl_util.Stats
module Counters = Syccl_util.Counters

let full = ref false
let smoke = ref false

(* `report` target configuration (see bench_report). *)
let report_baseline = ref "BENCH_milp_baseline.json"
let report_current = ref "BENCH_milp.json"
let report_threshold = ref 8.0
let report_check = ref false

(* `report --fleet=FILE`: gate on BENCH_fleet.json instead of the milp
   comparison (see bench_report). *)
let report_fleet = ref None

(* Pool/cache activity footer for the synthesis-time figures. *)
let runtime_stats () =
  let v = Counters.value in
  let rate hits misses =
    let total = hits +. misses in
    if total <= 0.0 then 0.0 else 100.0 *. hits /. total
  in
  let sh = v "cache.subsolve.hits" and sm = v "cache.subsolve.misses" in
  Printf.printf
    "   [pool: %.0f tasks, %.0f steals | subsolve cache: %.0f/%.0f hits \
     (%.0f%%) | search cache: %.0f hits | combo cache: %.0f hits]\n%!"
    (v "pool.tasks") (v "pool.steals") sh (sh +. sm) (rate sh sm)
    (v "cache.search.hits") (v "cache.combo.hits")

let sizes () =
  if !full then
    [ 1.024e3; 4.096e3; 1.6384e4; 6.5536e4; 2.62144e5; 1.048576e6; 4.194304e6;
      1.6777216e7; 6.7108864e7; 2.68435456e8; 1.073741824e9; 4.294967296e9 ]
  else [ 1.024e3; 6.5536e4; 1.048576e6; 1.6777216e7; 2.68435456e8; 1.073741824e9 ]

let teccl_budget () = if !full then 600.0 else 30.0

let pp_size s =
  if s >= 1.073741824e9 then Printf.sprintf "%.0fG" (s /. 1.073741824e9)
  else if s >= 1.048576e6 then Printf.sprintf "%.0fM" (s /. 1.048576e6)
  else if s >= 1024.0 then Printf.sprintf "%.0fK" (s /. 1024.0)
  else Printf.sprintf "%.0fB" s

(* Memoized per-system results so overlapping targets do not recompute. *)
type entry = { busbw : float; time : float; synth : float }

let cache : (string, entry option) Hashtbl.t = Hashtbl.create 64

let memo key f =
  match Hashtbl.find_opt cache key with
  | Some v -> v
  | None ->
      let v = f () in
      Hashtbl.replace cache key v;
      v

let syccl_cfg = { Synth.default_config with fast_only = true }

let coll_key coll = Format.asprintf "%a" C.pp coll

let syccl ?(tag = "") topo coll =
  memo (Printf.sprintf "syccl/%d/%s/%s" (T.num_gpus topo) tag (coll_key coll))
    (fun () ->
      let o = Synth.synthesize ~config:syccl_cfg topo coll in
      Some { busbw = o.Synth.busbw; time = o.Synth.time; synth = o.Synth.synth_time })

let syccl_outcome topo coll cfg = Synth.synthesize ~config:cfg topo coll

let teccl topo coll =
  memo (Printf.sprintf "teccl/%d/%s" (T.num_gpus topo) (coll_key coll))
    (fun () ->
      let o = Teccl.synthesize ~time_budget:(teccl_budget ()) topo coll in
      match o.Teccl.schedules with
      | None -> None
      | Some ss ->
          let time = Teccl.simulate topo ss in
          Some { busbw = C.busbw coll ~time; time; synth = o.Teccl.synth_time })

let nccl ?blocks topo coll =
  memo (Printf.sprintf "nccl/%d/%s" (T.num_gpus topo) (coll_key coll))
    (fun () ->
      let time = Nccl.time ?blocks topo coll in
      Some { busbw = C.busbw coll ~time; time; synth = 0.0 })

let opt_bw = function Some e -> Printf.sprintf "%8.2f" e.busbw | None -> " timeout"

let speedup a b =
  match (a, b) with
  | Some x, Some y when y.busbw > 0.0 -> Printf.sprintf "%6.2fx" (x.busbw /. y.busbw)
  | _ -> "     -"

(* --- Figure 14 / 15 style sweeps -------------------------------------- *)

let sweep ?blocks ~name ~caption topo kind =
  let n = T.num_gpus topo in
  Printf.printf "\n== %s: %s ==\n" name caption;
  Printf.printf "%6s %10s %10s %10s %9s %9s\n" "size" "TECCL" "NCCL" "SyCCL"
    "vs NCCL" "vs TECCL";
  List.iter
    (fun size ->
      let coll = C.make kind ~n ~size in
      let s = syccl topo coll in
      let v = nccl ?blocks topo coll in
      let t = teccl topo coll in
      Printf.printf "%6s %10s %10s %10s %9s %9s\n%!" (pp_size size) (opt_bw t)
        (opt_bw v) (opt_bw s) (speedup s v) (speedup s t))
    (sizes ())

let fig14a () =
  sweep ~name:"Fig 14(a)" ~caption:"AllGather on 16 A100 GPUs, busbw (GBps)"
    (Builders.a100 ~servers:2) C.AllGather

let fig14b () =
  sweep ~name:"Fig 14(b)" ~caption:"AllGather on 32 A100 GPUs, busbw (GBps)"
    (Builders.a100 ~servers:4) C.AllGather

let fig14c () =
  sweep ~name:"Fig 14(c)" ~caption:"ReduceScatter on 16 A100 GPUs, busbw (GBps)"
    (Builders.a100 ~servers:2) C.ReduceScatter

let fig14d () =
  sweep ~name:"Fig 14(d)" ~caption:"AlltoAll on 16 A100 GPUs, busbw (GBps)"
    (Builders.a100 ~servers:2) C.AllToAll

let fig15a () =
  sweep ~name:"Fig 15(a)" ~caption:"AllGather on 64 H800 GPUs, busbw (GBps)"
    (Builders.h800 ~servers:8) C.AllGather

let fig15b () =
  Printf.printf
    "\n== Fig 15(b): AllGather on 512 H800 GPUs (TECCL times out, as in the paper) ==\n";
  Printf.printf "%6s %10s %10s %10s %9s\n" "size" "TECCL" "NCCL" "SyCCL" "vs NCCL";
  let topo = Builders.h800 ~servers:64 in
  let szs = if !full then sizes () else [ 1.048576e6; 1.073741824e9 ] in
  List.iter
    (fun size ->
      let coll = C.make C.AllGather ~n:512 ~size in
      (* TECCL's whole-problem construction does not finish at this scale
         inside any practical budget; reproduce the paper's timeout row. *)
      let t =
        let o = Teccl.synthesize ~time_budget:(if !full then 60.0 else 5.0) topo coll in
        match o.Teccl.schedules with
        | None -> None
        | Some ss ->
            let time = Teccl.simulate ~blocks:2 topo ss in
            Some { busbw = C.busbw coll ~time; time; synth = o.Teccl.synth_time }
      in
      let s = syccl ~tag:"512" topo coll in
      let v = nccl ~blocks:2 topo coll in
      Printf.printf "%6s %10s %10s %10s %9s\n%!" (pp_size size) (opt_bw t) (opt_bw v)
        (opt_bw s) (speedup s v))
    szs

let fig15c () =
  sweep ~name:"Fig 15(c)" ~caption:"AlltoAll on 64 H800 GPUs, busbw (GBps)"
    (Builders.h800 ~servers:8) C.AllToAll

(* --- Figure 16 / Table 5: synthesis time ------------------------------ *)

let fig16a () =
  Printf.printf "\n== Fig 16(a): synthesis time (s), AllGather on A100 ==\n";
  Printf.printf "%6s %14s %14s %14s %14s\n" "size" "SyCCL-16" "TECCL-16" "SyCCL-32"
    "TECCL-32";
  let t16 = Builders.a100 ~servers:2 and t32 = Builders.a100 ~servers:4 in
  let fmt = function
    | Some e -> Printf.sprintf "%14.2f" e.synth
    | None -> Printf.sprintf "%14s" "timeout"
  in
  List.iter
    (fun size ->
      let c16 = C.make C.AllGather ~n:16 ~size in
      let c32 = C.make C.AllGather ~n:32 ~size in
      Printf.printf "%6s %s %s %s %s\n%!" (pp_size size) (fmt (syccl t16 c16))
        (fmt (teccl t16 c16)) (fmt (syccl t32 c32)) (fmt (teccl t32 c32)))
    (sizes ())

let fig16b () =
  Printf.printf
    "\n== Fig 16(b): SyCCL synthesis time breakdown (s), 32 A100 GPUs ==\n";
  Counters.reset ();
  Synth.reset_caches ();
  Printf.printf "%6s %5s | %8s %8s %8s %8s %8s\n" "size" "coll" "search" "combine"
    "solve1" "solve2" "total";
  let hits = ref 0 and misses = ref 0 and solves = ref 0 and nodes = ref 0 in
  let topo = Builders.a100 ~servers:4 in
  List.iter
    (fun (kind, kname) ->
      List.iter
        (fun size ->
          let coll = C.make kind ~n:32 ~size in
          let o = syccl_outcome topo coll syccl_cfg in
          let b = o.Synth.breakdown in
          Printf.printf "%6s %5s | %8.3f %8.3f %8.3f %8.3f %8.3f\n%!" (pp_size size)
            kname b.Synth.search_s b.Synth.combine_s b.Synth.solve1_s
            b.Synth.solve2_s o.Synth.synth_time;
          hits := !hits + b.Synth.cache_hits;
          misses := !misses + b.Synth.cache_misses;
          solves := !solves + b.Synth.milp_solves;
          nodes := !nodes + b.Synth.milp_nodes)
        (if !smoke then [ 1.048576e6 ] else sizes ()))
    [ (C.AllGather, "AG"); (C.AllToAll, "A2A") ];
  (* Per-call breakdowns now carry solver/cache activity directly, so the
     footer no longer has to grep counter names. *)
  Printf.printf
    "   [solver: %d memo hits / %d misses, %d MILP models, %d B&B nodes]\n%!"
    !hits !misses !solves !nodes;
  runtime_stats ()

let fig16c () =
  Printf.printf
    "\n== Fig 16(c): synthesis time (s) vs parallel solver instances ==\n";
  Counters.reset ();
  Synth.reset_caches ();
  let topo = if !smoke then Builders.h800 ~servers:2 else Builders.h800 ~servers:8 in
  let n = T.num_gpus topo in
  let domain_counts = if !smoke then [ 1; 2 ] else [ 1; 2; 4; 8 ] in
  Printf.printf "%6s %10s" "size" "TECCL";
  List.iter (fun d -> Printf.printf " %8s" (Printf.sprintf "SyCCL-%d" d)) domain_counts;
  print_newline ();
  List.iter
    (fun size ->
      let coll = C.make C.AllGather ~n ~size in
      let t =
        if !smoke then Printf.sprintf "%10s" "skipped"
        else
          match teccl topo coll with
          | Some e -> Printf.sprintf "%10.2f" e.synth
          | None -> Printf.sprintf "%10s" "timeout"
      in
      Printf.printf "%6s %s" (pp_size size) t;
      List.iter
        (fun d ->
          (* Every domain count must measure a cold solve: without this the
             domains=1 run would populate the sub-solve cache and the later
             columns would time cache transfers, not parallel solving. *)
          Synth.reset_caches ();
          let cfg = { syccl_cfg with domains = d } in
          let o = syccl_outcome topo coll cfg in
          Printf.printf " %8.2f%!" o.Synth.synth_time)
        domain_counts;
      print_newline ())
    (if !smoke then [ 1.048576e6 ] else [ 1.048576e6; 1.6777216e7; 1.073741824e9 ]);
  runtime_stats ()

let tab5 () =
  Printf.printf "\n== Table 5: synthesis time (s), min/max/mean over the sweep ==\n";
  Printf.printf
    "(paper means, Gurobi-based TECCL vs SyCCL: 1193->0.8s, 15759->3.6s, \
     8200->9.0s, 28200->1.6s, 29371->5.7s, timeout->2246s)\n";
  Printf.printf "%-16s %28s %28s %9s\n" "scenario" "TECCL (min/max/mean)"
    "SyCCL (min/max/mean)" "speedup";
  let scenarios =
    [
      ("16 A100, AG", Builders.a100 ~servers:2, C.AllGather, true);
      ("16 A100, A2A", Builders.a100 ~servers:2, C.AllToAll, true);
      ("32 A100, AG", Builders.a100 ~servers:4, C.AllGather, true);
      ("64 H800, AG", Builders.h800 ~servers:8, C.AllGather, true);
      ("64 H800, A2A", Builders.h800 ~servers:8, C.AllToAll, true);
      ("512 H800, AG", Builders.h800 ~servers:64, C.AllGather, false);
    ]
  in
  List.iter
    (fun (name, topo, kind, run_teccl) ->
      let n = T.num_gpus topo in
      let szs =
        if n >= 512 && not !full then [ 1.048576e6; 1.073741824e9 ]
        else sizes ()
      in
      let sy = ref [] and te = ref [] and te_timeout = ref false in
      List.iter
        (fun size ->
          let coll = C.make kind ~n ~size in
          (match syccl ~tag:(if n >= 512 then "512" else "") topo coll with
          | Some e -> sy := e.synth :: !sy
          | None -> ());
          if run_teccl then
            match teccl topo coll with
            | Some e -> te := e.synth :: !te
            | None -> te_timeout := true)
        szs;
      let fmt l =
        match (Stats.min_max_opt l, Stats.mean_opt l) with
        | Some (lo, hi), Some m -> Printf.sprintf "%9.1f/%9.1f/%7.1f" lo hi m
        | _ -> Printf.sprintf "%28s" "timeout"
      in
      let speed =
        match (Stats.mean_opt !te, Stats.mean_opt !sy) with
        | Some te_m, Some sy_m when sy_m > 0.0 ->
            Printf.sprintf "%8.0fx" (te_m /. sy_m)
        | _ -> "      N/A"
      in
      let te_str = if run_teccl then fmt !te else Printf.sprintf "%28s" "timeout" in
      Printf.printf "%-16s %s %s %s%s\n%!" name te_str (fmt !sy) speed
        (if !te_timeout then "  (TECCL timed out on some sizes)" else ""))
    scenarios

(* --- Figure 17: ablations ---------------------------------------------- *)

let fig17a () =
  Printf.printf
    "\n== Fig 17(a): pruning ablation (24 GPUs, 6 servers x 4, H800 links) ==\n";
  Printf.printf "%6s | %14s %14s %14s %14s\n" "size" "w/o#1 w/o#2" "w/o#1 w/#2"
    "w/#1 w/o#2" "w/#1 w/#2";
  let topo = Builders.h800_scaled ~servers:6 ~gpus_per_server:4 in
  let configs =
    List.map
      (fun (p1, p2) ->
        let base = Syccl.Search.default topo `Broadcast in
        { base with Syccl.Search.prune_isomorphic = p1; prune_consistency = p2 })
      [ (false, false); (false, true); (true, false); (true, true) ]
  in
  let szs = if !full then sizes () else [ 1.048576e6; 6.7108864e7; 1.073741824e9 ] in
  List.iter
    (fun size ->
      let coll = C.make C.AllGather ~n:24 ~size in
      Printf.printf "%6s |" (pp_size size);
      List.iter
        (fun sc ->
          let cfg = { syccl_cfg with search_config = Some sc } in
          let o = syccl_outcome topo coll cfg in
          Printf.printf " %6.2fs/%5.1fG%!" o.Synth.synth_time o.Synth.busbw)
        configs;
      print_newline ())
    szs

let fig17b () =
  Printf.printf "\n== Fig 17(b): AlltoAll stage-limit ablation (24 GPUs) ==\n";
  Printf.printf "%6s | %14s %14s %14s\n" "size" "3-stage" "5-stage" "10-stage";
  let topo = Builders.h800_scaled ~servers:6 ~gpus_per_server:4 in
  let szs = if !full then sizes () else [ 1.048576e6; 6.7108864e7; 1.073741824e9 ] in
  List.iter
    (fun size ->
      let coll = C.make C.AllToAll ~n:24 ~size in
      Printf.printf "%6s |" (pp_size size);
      List.iter
        (fun stages ->
          let base = Syccl.Search.default topo `Scatter in
          let sc = { base with Syccl.Search.max_stages = stages } in
          let cfg = { syccl_cfg with search_config = Some sc } in
          let o = syccl_outcome topo coll cfg in
          Printf.printf " %6.2fs/%5.1fG%!" o.Synth.synth_time o.Synth.busbw)
        [ 3; 5; 10 ];
      print_newline ())
    szs

let fig17c () =
  Printf.printf "\n== Fig 17(c): epoch-accuracy knob E2 (16 A100 GPUs) ==\n";
  Printf.printf "%6s | %16s %16s %16s   (solve2 s / busbw)\n" "size" "E2=0.1"
    "E2=0.2" "E2=1.0";
  let topo = Builders.a100 ~servers:2 in
  let szs = if !full then sizes () else [ 6.5536e4; 1.6777216e7; 1.073741824e9 ] in
  List.iter
    (fun size ->
      let coll = C.make C.AllGather ~n:16 ~size in
      Printf.printf "%6s |" (pp_size size);
      List.iter
        (fun e2 ->
          let cfg =
            { syccl_cfg with fast_only = false; e2; milp_time_limit = 5.0;
              milp_node_limit = 40 }
          in
          let o = syccl_outcome topo coll cfg in
          Printf.printf " %7.2fs/%6.1fG%!" o.Synth.breakdown.Synth.solve2_s
            o.Synth.busbw)
        [ 0.1; 0.2; 1.0 ];
      print_newline ())
    szs

(* --- Table 6: end-to-end training -------------------------------------- *)

let tab6 () =
  Printf.printf "\n== Table 6: end-to-end training iteration time (ms) ==\n";
  let paper =
    [
      ("GPT3-6.7B, DP16", (672.4, 653.0, 630.0));
      ("GPT3-6.7B, TP16", (200.0, 197.7, 192.5));
      ("GPT3-6.7B, TP32", (219.4, 216.5, 209.7));
      ("Llama3-8B, DP16", (1195.4, 1153.8, 1135.4));
      ("Llama3-8B, TP16", (433.9, 422.2, 412.6));
      ("Llama3-8B, TP32", (854.9, 887.4, 851.5));
    ]
  in
  Printf.printf "%-18s %10s %10s %10s %9s %9s   %s\n" "model/parallelism" "NCCL"
    "TECCL" "SyCCL" "vs NCCL" "vs TECCL" "paper (N/T/S)";
  List.iter
    (fun (w : Syccl_workload.Workload.t) ->
      let topo =
        if w.Syccl_workload.Workload.num_gpus = 16 then Builders.a100 ~servers:2
        else Builders.a100 ~servers:4
      in
      let nccl_t coll =
        match nccl topo coll with Some e -> e.time | None -> infinity
      in
      let teccl_t coll =
        match teccl topo coll with Some e -> e.time | None -> nccl_t coll
      in
      let syccl_t coll =
        match syccl topo coll with Some e -> e.time | None -> infinity
      in
      let it f = Syccl_workload.Workload.iteration_ms w ~comm_time:f in
      let a = it nccl_t and b = it teccl_t and c = it syccl_t in
      let ref_str =
        match List.assoc_opt w.Syccl_workload.Workload.wname paper with
        | Some (pn, pt, ps) -> Printf.sprintf "%.0f/%.0f/%.0f" pn pt ps
        | None -> "-"
      in
      Printf.printf "%-18s %10.1f %10.1f %10.1f %8.1f%% %8.1f%%   %s\n%!"
        w.Syccl_workload.Workload.wname a b c
        ((a -. c) /. a *. 100.0)
        ((b -. c) /. b *. 100.0)
        ref_str)
    (Syccl_workload.Workload.all ())

(* --- Figures 21 / 22: hand-crafted schedules --------------------------- *)

let crafted_sweep ~name ~improved topo =
  let n = T.num_gpus topo in
  Printf.printf "\n== %s: AllGather on %d GPUs vs hand-crafted schedules ==\n" name n;
  Printf.printf "%6s %22s %10s %10s %10s\n" "size" "best crafted" "crafted" "NCCL"
    "SyCCL";
  List.iter
    (fun size ->
      let coll = C.make C.AllGather ~n ~size in
      let cname, _, ct = Crafted.best_allgather ~improved topo coll in
      let v = nccl topo coll in
      let s = syccl topo coll in
      Printf.printf "%6s %22s %10.2f %10s %10s\n%!" (pp_size size) cname
        (C.busbw coll ~time:ct) (opt_bw v) (opt_bw s))
    (sizes ())

let fig21a () = crafted_sweep ~name:"Fig 21(a)" ~improved:false (Builders.a100 ~servers:2)
let fig21b () = crafted_sweep ~name:"Fig 21(b)" ~improved:false (Builders.h800 ~servers:8)
let fig22a () = crafted_sweep ~name:"Fig 22(a), improved" ~improved:true (Builders.h800 ~servers:8)

(* --- Bechamel micro-benchmarks: one per artifact ------------------------ *)

let micro () =
  let open Bechamel in
  let a16 = Builders.a100 ~servers:2 in
  let a32 = Builders.a100 ~servers:4 in
  let h64 = Builders.h800 ~servers:8 in
  let scaled = Builders.h800_scaled ~servers:6 ~gpus_per_server:4 in
  let ag n size = C.make C.AllGather ~n ~size in
  let synth topo coll () = ignore (Synth.synthesize ~config:syccl_cfg topo coll) in
  let simulate topo sched () = ignore (Sim.time topo sched) in
  let ring16 = Syccl_baselines.Ring.allgather a16 (ag 16 1.048576e6) in
  let tests =
    [
      Test.make ~name:"fig14a_synth_ag16" (Staged.stage (synth a16 (ag 16 1.048576e6)));
      Test.make ~name:"fig14b_synth_ag32" (Staged.stage (synth a32 (ag 32 1.048576e6)));
      Test.make ~name:"fig14c_synth_rs16"
        (Staged.stage (synth a16 (C.make C.ReduceScatter ~n:16 ~size:1.048576e6)));
      Test.make ~name:"fig14d_synth_a2a16"
        (Staged.stage (synth a16 (C.make C.AllToAll ~n:16 ~size:1.048576e6)));
      Test.make ~name:"fig15_sim_ring16" (Staged.stage (simulate a16 ring16));
      Test.make ~name:"fig16_search_h64"
        (Staged.stage (fun () -> ignore (Syccl.Search.run h64 ~kind:`Broadcast ~root:0)));
      Test.make ~name:"fig17_search_scaled"
        (Staged.stage (fun () -> ignore (Syccl.Search.run scaled ~kind:`Broadcast ~root:0)));
      Test.make ~name:"tab5_greedy_ag16"
        (Staged.stage (fun () ->
             ignore (Teccl.synthesize ~restarts:1 ~milp_var_budget:0 a16 (ag 16 1.048576e6))));
      Test.make ~name:"tab6_nccl_time"
        (Staged.stage (fun () -> ignore (Nccl.time a16 (ag 16 1.048576e6))));
      Test.make ~name:"fig21_crafted_best"
        (Staged.stage (fun () -> ignore (Crafted.best_allgather a16 (ag 16 1.048576e6))));
    ]
  in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:20 ~quota:(Time.second 1.0) ~kde:None () in
  Printf.printf "\n== Bechamel micro-benchmarks (ns/run) ==\n";
  List.iter
    (fun test ->
      List.iter
        (fun elt ->
          let b = Benchmark.run cfg [ instance ] elt in
          let est = Analyze.one ols instance b in
          let ns =
            match Analyze.OLS.estimates est with Some (v :: _) -> v | _ -> nan
          in
          Printf.printf "%-24s %14.0f ns/run\n%!" (Test.Elt.name elt) ns)
        (Test.elements test))
    tests

(* --- `milp` target: dense-tableau vs revised-sparse solver A/B ---------- *)

(* A/B the two LP engines behind branch-and-bound on the models SyCCL
   actually solves: one merged sub-demand per GPU group (whole-collective
   epoch models blow the solver's variable guard long before 16 GPUs,
   which is exactly why the paper decomposes by group).  Every group of a
   dimension is isomorphic, so the sibling models share their shape — the
   revised engine additionally gets the warm-start basis cache and the
   worker pool, matching how the synthesizer drives it; the dense engine
   runs every model cold, which is all a one-shot tableau can do.  Two
   demand shapes per group cover both halves of the solver:

   - "bcast" (4 single-source chunks, tree incumbents) certifies at the
     root via the flow/growth bound, so it measures pure root-relaxation
     throughput on the bigger model;
   - "multi" (2 chunks) leaves a bound gap, so branch-and-bound explores
     and the child re-solves (warm dual pivots vs cold tableaux) dominate.

   Emits BENCH_milp.json next to the binary and fails the process if the
   two engines disagree on any objective — every row is solved to proven
   optimality, so the objectives must match exactly. *)

module EM = Syccl_teccl.Epoch_model
module Link = Syccl_topology.Link

(* Binomial-tree broadcast of one chunk inside a group: round [k] has the
   first 2^k holders (by index offset from the owner) each forward one
   copy, prio = round. *)
let milp_tree_xfers members ~dim ~chunk ~owner_idx =
  let n = Array.length members in
  let rec rounds k acc =
    if 1 lsl k >= n then acc
    else
      let step = 1 lsl k in
      let acc =
        List.fold_left
          (fun acc i ->
            if i + step < n then
              {
                Syccl_sim.Schedule.chunk;
                src = members.((owner_idx + i) mod n);
                dst = members.((owner_idx + i + step) mod n);
                dim;
                prio = k;
              }
              :: acc
            else acc)
          acc
          (List.init step Fun.id)
      in
      rounds (k + 1) acc
  in
  List.rev (rounds 0 [])

(* Sub-demand spec for one group: [nchunks] chunks, chunk [c] owned by
   member [c mod n] and wanted by the other members, with staggered
   binomial trees as the MILP incumbent (the same greedy shape Subsolver
   feeds the refinement).  The coarse epoch knob and 4-GPU groups keep
   both engines inside their iteration budgets at every benchmarked
   scale. *)
let milp_group_spec topo ~dim ~group ~nchunks ~size =
  let members = T.gpus_in_group topo ~dim ~group in
  let n = Array.length members in
  let chunks =
    Array.init nchunks (fun c ->
        let o = c mod n in
        {
          Syccl_sim.Schedule.size;
          mode = `Gather;
          initial = [ members.(o) ];
          wanted =
            Array.to_list members |> List.filter (fun v -> v <> members.(o));
          tag = c;
        })
  in
  let link = (T.dim topo dim).T.link in
  let tau, _ = Syccl_teccl.Tau.select ~link ~size ~e:3.0 in
  let edges = EM.group_edges topo ~dim ~group in
  let xfers =
    List.concat
      (List.init nchunks (fun c ->
           milp_tree_xfers members ~dim ~chunk:c ~owner_idx:(c mod n)))
  in
  let incumbent = { Syccl_sim.Schedule.chunks; xfers } in
  let spec0 = { EM.topo; chunks; edges; tau; horizon = 0 } in
  match EM.replay { spec0 with horizon = max_int / 2 } incumbent with
  | Some h -> ({ spec0 with horizon = h }, incumbent)
  | None -> failwith "bench milp: tree incumbent does not replay"

let bench_milp () =
  Printf.printf
    "\n== bench milp: dense tableau vs revised sparse simplex ==\n";
  let module Milp = Syccl_milp.Milp in
  let module Cache = Syccl_util.Cache in
  let module Pool = Syccl_util.Pool in
  let module Json = Syccl_util.Json in
  let gpu_counts = if !full then [ 16; 32; 64 ] else [ 16; 32 ] in
  let size = 1.048576e6 in
  let nvlink = Link.make ~alpha:1.2e-6 ~gbps:200.0 in
  let net = Link.make ~alpha:6.0e-6 ~gbps:12.5 in
  Printf.printf "%5s %7s | %9s %9s %8s | %6s %10s %6s\n" "gpus" "groups"
    "dense_s" "revised_s" "speedup" "nodes" "warm-rate" "cert";
  let rows =
    List.map
      (fun gpus ->
        let topo =
          Builders.clos
            ~name:(Printf.sprintf "bench-milp-%d" gpus)
            ~levels:[ gpus / 4; 4 ] ~links:[ nvlink; net ] ()
        in
        let dim = 0 in
        let ngroups = T.groups_count topo ~dim in
        let specs =
          List.concat_map
            (fun group ->
              [
                milp_group_spec topo ~dim ~group ~nchunks:4 ~size;
                milp_group_spec topo ~dim ~group ~nchunks:2 ~size;
              ])
            (List.init ngroups Fun.id)
        in
        let solve_all engine ?pool ?cache () =
          List.map
            (fun (spec, inc) ->
              match
                EM.solve ~node_limit:10_000 ~time_limit:600.0 ~engine ?pool
                  ?cache ~cache_tag:"bench" ~incumbent:inc spec
              with
              | Some (_, epochs) -> epochs
              | None -> failwith "bench milp: solver returned no schedule")
            specs
        in
        let timed f =
          let t0 = Unix.gettimeofday () in
          let objs = f () in
          (objs, Unix.gettimeofday () -. t0)
        in
        let dense_objs, dense_s = timed (solve_all Milp.Dense) in
        let n0 = Counters.value "milp.nodes" in
        let wh0 = Counters.value "lp.warm_hits" in
        let wm0 = Counters.value "lp.warm_misses" in
        let fc0 = Counters.value "milp.flow_certified" in
        let cache = Cache.create ~capacity:64 ~name:"cache.bench_milp" () in
        let pool = Pool.get (min 4 (Pool.num_recommended ())) in
        let rev_objs, rev_s = timed (solve_all Milp.Revised ~pool ~cache) in
        if rev_objs <> dense_objs then
          failwith
            (Printf.sprintf
               "bench milp: engines disagree at %d GPUs (dense %s, revised \
                %s)"
               gpus
               (String.concat "," (List.map string_of_int dense_objs))
               (String.concat "," (List.map string_of_int rev_objs)));
        let nodes = Counters.value "milp.nodes" -. n0 in
        let warm_hits = Counters.value "lp.warm_hits" -. wh0 in
        let warm_misses = Counters.value "lp.warm_misses" -. wm0 in
        let certified = Counters.value "milp.flow_certified" -. fc0 in
        let warm_rate =
          let t = warm_hits +. warm_misses in
          if t <= 0.0 then 0.0 else warm_hits /. t
        in
        let speedup = if rev_s > 0.0 then dense_s /. rev_s else 0.0 in
        Printf.printf
          "%5d %7d | %9.3f %9.3f %7.1fx | %6.0f %9.0f%% %6.0f\n%!" gpus
          ngroups dense_s rev_s speedup nodes (100.0 *. warm_rate) certified;
        Json.Obj
          [
            ("gpus", Json.Num (float_of_int gpus));
            ("groups", Json.Num (float_of_int ngroups));
            ("models", Json.Num (float_of_int (List.length specs)));
            ("dense_s", Json.Num dense_s);
            ("revised_s", Json.Num rev_s);
            ("speedup", Json.Num speedup);
            ("nodes", Json.Num nodes);
            ("warm_hits", Json.Num warm_hits);
            ("warm_misses", Json.Num warm_misses);
            ("warm_hit_rate", Json.Num warm_rate);
            ("flow_certified", Json.Num certified);
            ("objectives_match", Json.Bool true);
          ])
      gpu_counts
  in
  let json =
    Json.Obj
      [
        ("schema_version", Json.Num 1.0);
        ("bench", Json.Str "milp");
        ("mode", Json.Str (if !full then "full" else "smoke"));
        ("chunk_bytes", Json.Num size);
        ("rows", Json.List rows);
      ]
  in
  let oc = open_out "BENCH_milp.json" in
  output_string oc (Json.to_string ~pretty:true json);
  output_char oc '\n';
  close_out oc;
  Printf.printf "   wrote BENCH_milp.json\n%!"

(* --- Fleet warming gate: registry hit rate on a cold production grid ---- *)

(* Warm one root-0 anchor per (family, collective, bucket) into a fresh
   registry, then serve each family's cold production grid — every request
   keyed apart from its anchor — and measure how much of it the registry's
   symmetry probes serve without another synthesis: other roots by
   stabilizer transport, adjacent buckets by rescaling.  Writes
   BENCH_fleet.json for `report --check --fleet=...` (the CI gate asserts
   >=90%) and fails in-process if any near-miss hit lacks its source-entry
   provenance in the audit trail. *)
let bench_fleet () =
  let module Registry = Syccl_serve.Registry in
  let module Serve = Syccl_serve.Serve in
  let module Fleet = Syccl_serve.Fleet in
  let module Audit = Syccl_serve.Audit in
  let module Json = Syccl_util.Json in
  let families, anchors =
    if !smoke then (Fleet.smoke_families, Fleet.smoke_anchors)
    else (Fleet.default_families, Fleet.default_anchors)
  in
  let collectives = Fleet.default_collectives in
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "syccl-bench-fleet-%d" (Unix.getpid ()))
  in
  let reg = Registry.open_dir dir in
  Fun.protect ~finally:(fun () -> Registry.destroy reg) @@ fun () ->
  let audit = Audit.for_registry reg in
  Printf.printf "\n== fleet: warm anchors, then serve a cold production grid ==\n%!";
  let w = Fleet.warm ~registry:reg ~audit ~families ~collectives ~anchors () in
  Printf.printf "   warmed %d anchors (%d stored, %d already hit, %d failed)\n%!"
    w.Fleet.anchors w.Fleet.stored w.Fleet.already_hit w.Fleet.failed;
  Printf.printf "%-16s | %8s %11s %12s %11s | %8s\n%!" "family" "requests"
    "transported" "cross-bucket" "synthesized" "hit-rate";
  let rows =
    List.map
      (fun family ->
        let grid = Fleet.production_grid ~family ~collectives ~anchors () in
        let outs = Serve.run_batch ~registry:reg ~audit grid in
        let transported = ref 0
        and crossed = ref 0
        and other = ref 0
        and synth = ref 0 in
        List.iter
          (fun (o : Serve.outcome) ->
            match o.Serve.source with
            | Serve.From_registry { via = Registry.Transported; _ } ->
                incr transported
            | Serve.From_registry { via = Registry.Scaled_cross; _ } ->
                incr crossed
            | Serve.From_registry _ -> incr other
            | Serve.From_synthesis -> incr synth)
          outs;
        let total = List.length grid in
        let rate =
          float_of_int (!transported + !crossed)
          /. float_of_int (max 1 total)
        in
        Printf.printf "%-16s | %8d %11d %12d %11d | %7.1f%%\n%!" family total
          !transported !crossed !synth (100.0 *. rate);
        Json.Obj
          [
            ("family", Json.Str family);
            ("requests", Json.Num (float_of_int total));
            ("transported", Json.Num (float_of_int !transported));
            ("scaled_cross", Json.Num (float_of_int !crossed));
            ("other_hits", Json.Num (float_of_int !other));
            ("synthesized", Json.Num (float_of_int !synth));
            ("hit_rate", Json.Num rate);
          ])
      families
  in
  (* Reuse provenance: every near-miss hit must name its source entry. *)
  let records, bad = Audit.read (Audit.path audit) in
  let unattributed =
    List.filter
      (fun (r : Audit.record) ->
        (r.Audit.probe = "hit.transported"
        || r.Audit.probe = "hit.scaled_cross")
        && r.Audit.hit_key = None)
      records
  in
  if bad > 0 then Printf.printf "   (audit: %d torn lines)\n" bad;
  if unattributed <> [] then begin
    Printf.printf "fleet: %d near-miss hit(s) lack source-entry provenance\n"
      (List.length unattributed);
    exit 1
  end;
  let json =
    Json.Obj
      [
        ("bench", Json.Str "fleet");
        ( "mode",
          Json.Str
            (if !smoke then "smoke" else if !full then "full" else "quick")
        );
        ("rows", Json.List rows);
      ]
  in
  let oc = open_out "BENCH_fleet.json" in
  output_string oc (Json.to_string ~pretty:true json);
  close_out oc;
  Printf.printf "   wrote BENCH_fleet.json\n%!"

(* --- Bench observatory: regression report over BENCH_*.json ------------- *)

(* Compare the current BENCH_milp.json against a committed baseline and
   exit non-zero on regression.  Absolute timings are machine-dependent,
   so the gate is ratio-based: a row regresses when its revised-vs-dense
   speedup falls below baseline/threshold, its warm-start hit rate
   collapses (more than 25 points below baseline), or the engines stopped
   agreeing on objectives.  --check makes an unusable comparison (missing
   file, zero matched rows) itself a failure, so the CI gate can never
   pass vacuously. *)
let bench_report () =
  let module Json = Syccl_util.Json in
  let read path =
    if not (Sys.file_exists path) then None
    else begin
      let ic = open_in path in
      let text = really_input_string ic (in_channel_length ic) in
      close_in ic;
      Some (Json.of_string text)
    end
  in
  let rows = function
    | Some (Json.Obj kvs) -> (
        match List.assoc_opt "rows" kvs with Some (Json.List l) -> l | _ -> [])
    | _ -> []
  in
  let field row k =
    match row with Json.Obj kvs -> List.assoc_opt k kvs | _ -> None
  in
  let num row k = match field row k with Some (Json.Num v) -> v | _ -> nan in
  match !report_fleet with
  | Some path ->
      (* Fleet registry hit-rate gate: every family warmed by
         `fleet` must reach >=90% transported + cross-bucket hits on its
         cold production grid.  --check keeps the gate non-vacuous: a
         missing file or an empty row set fails outright. *)
      Printf.printf "\n== bench report: fleet registry hit-rate gate (%s) ==\n"
        path;
      (match read path with
      | None ->
          Printf.printf "report: missing %s\n" path;
          if !report_check then exit 1
      | Some j ->
          let frows = rows (Some j) in
          if frows = [] && !report_check then begin
            Printf.printf "report: no fleet rows — gate is vacuous\n";
            exit 1
          end;
          let below = ref 0 in
          Printf.printf "%-16s | %8s %8s | %s\n" "family" "requests"
            "hit-rate" "verdict";
          List.iter
            (fun row ->
              let family =
                match field row "family" with
                | Some (Json.Str s) -> s
                | _ -> "?"
              in
              let rate = num row "hit_rate" in
              let ok = rate >= 0.9 in
              if not ok then incr below;
              Printf.printf "%-16s | %8.0f %7.1f%% | %s\n" family
                (num row "requests") (100.0 *. rate)
                (if ok then "ok" else "below 90% gate"))
            frows;
          if !below > 0 then begin
            Printf.printf "report: %d family(ies) below the hit-rate gate\n"
              !below;
            exit 1
          end
          else
            Printf.printf "report: fleet gate ok (%d families)\n"
              (List.length frows))
  | None ->
  let base = read !report_baseline and cur = read !report_current in
  Printf.printf "\n== bench report: %s vs baseline %s (threshold %.1fx) ==\n"
    !report_current !report_baseline !report_threshold;
  (match (base, cur) with
  | None, _ | _, None ->
      Printf.printf "report: missing %s\n"
        (if base = None then !report_baseline else !report_current);
      if !report_check then exit 1
  | Some _, Some _ -> ());
  Printf.printf "%5s | %9s %9s %7s | %s\n" "gpus" "base_spd" "cur_spd" "ratio"
    "verdict";
  let regressions = ref 0 and matched = ref 0 in
  List.iter
    (fun crow ->
      let gpus = num crow "gpus" in
      match
        List.find_opt (fun brow -> num brow "gpus" = gpus) (rows base)
      with
      | None ->
          Printf.printf "%5.0f | %9s %9s %7s | new row (no baseline)\n" gpus
            "-" "-" "-"
      | Some brow ->
          incr matched;
          let bs = num brow "speedup" and cs = num crow "speedup" in
          let objectives_ok =
            field crow "objectives_match" = Some (Json.Bool true)
          in
          let warm_ok =
            num crow "warm_hit_rate" >= num brow "warm_hit_rate" -. 0.25
          in
          let speed_ok = cs *. !report_threshold >= bs in
          let problems =
            (if objectives_ok then [] else [ "objectives-mismatch" ])
            @ (if warm_ok then [] else [ "warm-rate-collapse" ])
            @ if speed_ok then [] else [ "speedup-regression" ]
          in
          if problems <> [] then incr regressions;
          Printf.printf "%5.0f | %8.1fx %8.1fx %6.2fx | %s\n" gpus bs cs
            (if bs > 0.0 then cs /. bs else 1.0)
            (if problems = [] then "ok" else String.concat "," problems))
    (rows cur);
  List.iter
    (fun brow ->
      let gpus = num brow "gpus" in
      if not (List.exists (fun crow -> num crow "gpus" = gpus) (rows cur))
      then Printf.printf "%5.0f | row missing from current run\n" gpus)
    (rows base);
  if !report_check && !matched = 0 then begin
    Printf.printf "report: no comparable rows — gate is vacuous\n";
    exit 1
  end;
  if !regressions > 0 then begin
    Printf.printf "report: %d regressed row(s)\n" !regressions;
    exit 1
  end
  else Printf.printf "report: no regressions (%d rows compared)\n" !matched

(* --- Trace emission (--trace=FILE) -------------------------------------- *)

(* Record the bench run, then append a small traced 8-GPU AllGather
   simulation (so the export always contains simulator timeline tracks),
   write Chrome trace-event JSON and fail the process if the file does not
   round-trip through the JSON parser with both synthesis spans and sim
   events present.  `dune runtest` drives this to catch trace-format
   regressions. *)
let emit_and_check_trace path =
  let module Trace = Syccl_util.Trace in
  let module Json = Syccl_util.Json in
  let topo = Builders.h800_scaled ~servers:1 ~gpus_per_server:8 in
  let coll = C.make C.AllGather ~n:8 ~size:1.048576e6 in
  let o = Synth.synthesize ~config:syccl_cfg topo coll in
  Trace.set_process_name ~pid:Trace.synthesis_pid "synthesis";
  List.iteri
    (fun i s ->
      let pid = Trace.sim_pid + i in
      Trace.set_process_name ~pid (Printf.sprintf "sim phase %d" i);
      ignore (Sim.run ~trace_pid:pid topo s))
    o.Synth.schedules;
  Trace.disable ();
  Trace.export_file path;
  let ic = open_in path in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let evs =
    match Json.of_string text with
    | Json.Obj kvs -> (
        match List.assoc_opt "traceEvents" kvs with
        | Some (Json.List l) -> l
        | _ -> failwith "trace check: no traceEvents array")
    | _ -> failwith "trace check: not a JSON object"
  in
  let is_span p e =
    match e with
    | Json.Obj kvs ->
        List.assoc_opt "ph" kvs = Some (Json.Str "X")
        && (match List.assoc_opt "pid" kvs with
           | Some (Json.Num v) -> int_of_float v = p
           | _ -> false)
    | _ -> false
  in
  if evs = [] then failwith "trace check: empty traceEvents";
  if not (List.exists (is_span Trace.synthesis_pid) evs) then
    failwith "trace check: no synthesis spans";
  if not (List.exists (is_span Trace.sim_pid) evs) then
    failwith "trace check: no simulator timeline events";
  Printf.printf "\ntrace: wrote %s (%d events, round-trip OK)\n%!" path
    (List.length evs)

(* --- lower: MSCCL lowering/parse/replay throughput ----------------------- *)

(* How much the executable-lowering path costs per collective: building the
   per-threadblock step program (Msccl.lower), rendering XML, parsing it
   back, and the adversarial replay (Msccl_interp.replay) that gates
   serving under `syccl lower --check`.  Any replay divergence fails the
   bench — this doubles as a throughput-sized soak of the oracle. *)
let bench_lower () =
  Printf.printf "\n== bench lower: schedule -> MSCCL program -> replay ==\n";
  let module Msccl = Syccl_sim.Msccl in
  let module Interp = Syccl_sim.Msccl_interp in
  let topo = Builders.a100 ~servers:2 in
  let n = T.num_gpus topo in
  let iters = if !full then 50 else if !smoke then 2 else 10 in
  let size = 1.048576e6 in
  let kinds =
    [ C.SendRecv; C.Broadcast; C.Scatter; C.Gather; C.Reduce; C.AllGather;
      C.AllToAll; C.ReduceScatter; C.AllReduce ]
  in
  Printf.printf "%13s | %6s %7s | %9s %9s %9s %9s\n" "collective" "steps"
    "xml_kb" "lower_ms" "emit_ms" "parse_ms" "replay_ms";
  let timed f =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to iters do
      f ()
    done;
    1e3 *. (Unix.gettimeofday () -. t0) /. float_of_int iters
  in
  List.iter
    (fun kind ->
      let coll = C.make kind ~root:0 ~peer:1 ~n ~size in
      let phases = C.phases coll in
      let schedules = Nccl.schedule topo coll in
      let lower_all () =
        List.map2 (fun ph s -> Msccl.lower ~coll:ph s) phases schedules
      in
      let progs = lower_all () in
      let xmls = List.map Msccl.emit progs in
      let steps = List.fold_left (fun a p -> a + Msccl.num_steps p) 0 progs in
      let bytes =
        List.fold_left (fun a x -> a + String.length x) 0 xmls
      in
      let lower_ms = timed (fun () -> ignore (lower_all ())) in
      let emit_ms =
        timed (fun () -> List.iter (fun p -> ignore (Msccl.emit p)) progs)
      in
      let parse_ms =
        timed (fun () ->
            List.iter
              (fun x ->
                match Msccl.of_xml x with
                | Ok _ -> ()
                | Error e -> failwith ("bench lower: parse: " ^ e))
              xmls)
      in
      let replay_ms =
        timed (fun () ->
            List.iter2
              (fun s p ->
                match Interp.replay s p with
                | Ok () -> ()
                | Error e -> failwith ("bench lower: divergence: " ^ e))
              schedules progs)
      in
      Printf.printf "%13s | %6d %7.1f | %9.3f %9.3f %9.3f %9.3f\n%!"
        (C.kind_name kind) steps
        (float_of_int bytes /. 1024.0)
        lower_ms emit_ms parse_ms replay_ms)
    kinds

(* --- Driver ------------------------------------------------------------- *)

let targets =
  [
    ("fig14a", fig14a); ("fig14b", fig14b); ("fig14c", fig14c); ("fig14d", fig14d);
    ("fig15a", fig15a); ("fig15b", fig15b); ("fig15c", fig15c);
    ("fig16a", fig16a); ("fig16b", fig16b); ("fig16c", fig16c);
    ("tab5", tab5); ("fig17a", fig17a); ("fig17b", fig17b); ("fig17c", fig17c);
    ("tab6", tab6); ("fig21a", fig21a); ("fig21b", fig21b); ("fig22a", fig22a);
    ("milp", bench_milp);
    ("fleet", bench_fleet);
    ("lower", bench_lower);
    ("report", bench_report);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let flags, names = List.partition (fun a -> String.length a > 0 && a.[0] = '-') args in
  if List.mem "--full" flags then full := true;
  if List.mem "--smoke" flags then smoke := true;
  if List.mem "--check" flags then report_check := true;
  let keyed prefix =
    List.find_map
      (fun f ->
        let n = String.length prefix in
        if String.length f > n && String.sub f 0 n = prefix then
          Some (String.sub f n (String.length f - n))
        else None)
      flags
  in
  Option.iter (fun v -> report_baseline := v) (keyed "--baseline=");
  Option.iter (fun v -> report_current := v) (keyed "--current=");
  Option.iter (fun v -> report_fleet := Some v) (keyed "--fleet=");
  Option.iter
    (fun v -> report_threshold := float_of_string v)
    (keyed "--threshold=");
  let trace_out =
    List.find_map
      (fun f ->
        if String.length f > 8 && String.sub f 0 8 = "--trace=" then
          Some (String.sub f 8 (String.length f - 8))
        else None)
      flags
  in
  if trace_out <> None then Syccl_util.Trace.enable ();
  let chosen =
    if names = [] then targets
    else
      List.map
        (fun n ->
          match List.assoc_opt n targets with
          | Some f -> (n, f)
          | None ->
              Printf.eprintf "unknown target %s; available: %s\n" n
                (String.concat " " (List.map fst targets));
              exit 1)
        names
  in
  let t0 = Unix.gettimeofday () in
  List.iter (fun (_, f) -> f ()) chosen;
  if List.mem "--micro" flags then micro ();
  Option.iter emit_and_check_trace trace_out;
  Printf.printf "\nbench completed in %.1fs\n" (Unix.gettimeofday () -. t0)
