(* SyCCL command-line interface: inspect topologies, synthesize schedules,
   sweep sizes.  See `syccl_cli --help`. *)

open Cmdliner
module T = Syccl_topology
module C = Syccl_collective.Collective
module S = Syccl_sim
module Request = Syccl_serve.Request
module Registry = Syccl_serve.Registry
module Serve = Syccl_serve.Serve
module Audit = Syccl_serve.Audit
module Failover = Syccl_serve.Failover
module Fleet = Syccl_serve.Fleet

(* Name resolution moved into the serve layer (Syccl_serve.Request) so the
   CLI, batch files, tests and benches accept the same names. *)
let topo_of_name = Request.topo_of_name
let coll_of_name name ~n ~size = Request.coll_of_name name ~n ~size

let topo_arg =
  Arg.(
    value
    & opt string "a100-16"
    & info [ "t"; "topology" ] ~docv:"TOPO" ~doc:"Topology name.")

let coll_arg =
  Arg.(
    value
    & opt string "allgather"
    & info [ "c"; "collective" ] ~docv:"COLL" ~doc:"Collective kind.")

let size_arg =
  Arg.(
    value
    & opt float 1048576.0
    & info [ "s"; "size" ] ~docv:"BYTES" ~doc:"Data size in bytes.")

let fast_arg =
  Arg.(
    value & flag
    & info [ "fast" ] ~doc:"Skip the MILP refinement (fast solving only).")

let faults_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "faults" ] ~docv:"SPEC"
        ~doc:
          "Puncture the topology before synthesizing: a comma-joined \
           canonical fault set of $(b,gpu:G) (GPU down), $(b,link:D:A-B) \
           (the dimension-D edge between GPUs A and B down, A < B) and \
           $(b,nic:G\\@P) (GPU G's port-group-P NIC down) elements.  The \
           schedule is synthesized on — and validated against — the \
           surviving hardware; registry entries and audit records key the \
           fault class apart from the healthy topology.")

let faults_of = function
  | None -> T.Fault.empty
  | Some spec -> T.Fault.decode spec

let domains_arg =
  Arg.(
    value
    & opt int 1
    & info [ "d"; "domains" ] ~docv:"N"
        ~doc:
          "Parallel solver instances.  Served by a persistent work-stealing \
           domain pool that is spawned once per level and reused across \
           calls.")

let deadline_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "deadline" ] ~docv:"SECONDS"
        ~doc:
          "Wall-clock budget for the whole synthesis (or sweep).  When it \
           is too tight, synthesis degrades gracefully — truncated search, \
           skipped MILP refinement, precomputed-baseline fallback — instead \
           of overshooting; the chosen ladder rung is reported.")

let registry_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "registry" ] ~docv:"DIR"
        ~doc:
          "Persistent schedule registry directory.  Synthesized schedules \
           are stored there and later requests for the same (topology \
           structure, collective, size bucket) are served from it — every \
           hit is re-validated and re-simulated before being trusted.  \
           Defaults to $(b,SYCCL_REGISTRY) when that variable is set; with \
           neither, the registry is disabled.")

(* --registry beats SYCCL_REGISTRY beats disabled. *)
let registry_of = function
  | Some dir -> Some (Registry.open_dir dir)
  | None -> Registry.from_env ()

let require_registry rdir =
  match registry_of rdir with
  | Some r -> r
  | None -> failwith "no registry: pass --registry DIR or set SYCCL_REGISTRY"

let audit_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "audit" ] ~docv:"FILE"
        ~doc:
          "Append one audit JSONL record per request element to $(docv) \
           (plan decision, registry probe outcome with miss reason, ladder \
           rung, budget vs consumed, solver counter deltas).  Defaults to \
           $(i,REGISTRY)/audit.jsonl when a registry is active; pass \
           $(b,--audit none) to disable.")

(* --audit FILE beats the registry-adjacent default; "none" disables. *)
let audit_of registry = function
  | Some "none" -> None
  | Some path -> Some (Audit.open_file path)
  | None -> Option.map Audit.for_registry registry

let metrics_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:
          "After the run, write every counter and histogram in Prometheus \
           text exposition format to $(docv) ($(b,-) for stdout).")

let write_metrics_out = function
  | None -> ()
  | Some path ->
      let text = Syccl_util.Counters.to_prometheus () in
      if path = "-" then print_string text
      else begin
        let oc = open_out path in
        output_string oc text;
        close_out oc;
        Format.eprintf "metrics:    wrote %s@." path
      end

let stats_arg =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:
          "Print runtime counters (pool tasks/steals, cache hits/misses, \
           per-stage wall time) after synthesis.")

let metrics_arg =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:
          "Print histogram metrics (sub-solve / MILP solve latencies, simplex \
           pivots, branch-and-bound nodes, cache lookup latencies, pool queue \
           latency) after the run.")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record synthesis spans (and, for $(b,synth), a simulated \
           link-occupancy timeline of the winning schedule) and write Chrome \
           trace-event JSON to $(docv).  Load it at ui.perfetto.dev or \
           chrome://tracing.")

let print_stats () =
  Format.printf "--- stats ---@.";
  List.iter
    (fun (k, v) ->
      if Float.is_integer v then Format.printf "%-28s %12.0f@." k v
      else Format.printf "%-28s %12.4f@." k v)
    (Syccl_util.Counters.snapshot ())

let print_metrics () =
  Format.printf "--- histograms ---@.";
  Format.printf "%-26s %8s %11s %11s %11s %11s %11s@." "histogram" "n" "mean"
    "p50" "p90" "p99" "max";
  List.iter
    (fun (k, (h : Syccl_util.Counters.hist_stats)) ->
      Format.printf "%-26s %8d %11.3e %11.3e %11.3e %11.3e %11.3e@." k h.n
        h.mean h.p50 h.p90 h.p99 h.hmax)
    (Syccl_util.Counters.hist_snapshot ())

(* Every counter as a JSON object field; every histogram with its
   percentile summary — the JSON face of the Prometheus exposition. *)
let counters_json () =
  let open Syccl_util.Json in
  let int i = Num (float_of_int i) in
  let counters =
    List.map (fun (k, v) -> (k, Num v)) (Syccl_util.Counters.snapshot ())
  in
  let hists =
    List.map
      (fun (k, (h : Syccl_util.Counters.hist_stats)) ->
        ( k,
          Obj
            [
              ("n", int h.n); ("sum", Num h.sum); ("mean", Num h.mean);
              ("min", Num h.hmin); ("max", Num h.hmax); ("p50", Num h.p50);
              ("p90", Num h.p90); ("p99", Num h.p99);
            ] ))
      (Syccl_util.Counters.hist_snapshot ())
  in
  (Obj counters, Obj hists)

(* Machine-readable run report: outcome + breakdown + every counter and
   histogram, as one JSON object. *)
let stats_json (o : Syccl.Synthesizer.outcome) =
  let open Syccl_util.Json in
  let b = o.breakdown in
  let int i = Num (float_of_int i) in
  let counters, hists = counters_json () in
  Obj
    [
      ("schema_version", int 1);
      ("time_s", Num o.time);
      ("busbw_gbps", Num o.busbw);
      ("synth_time_s", Num o.synth_time);
      ("num_sketches", int o.num_sketches);
      ("num_combos", int o.num_combos);
      ("chosen", Str o.chosen);
      ("degraded", Str (Syccl.Synthesizer.level_name o.degraded));
      ( "degrade_reason",
        match o.degrade_reason with None -> Null | Some r -> Str r );
      ( "breakdown",
        Obj
          [
            ("search_s", Num b.search_s);
            ("combine_s", Num b.combine_s);
            ("solve1_s", Num b.solve1_s);
            ("solve2_s", Num b.solve2_s);
            ("cache_hits", int b.cache_hits);
            ("cache_misses", int b.cache_misses);
            ("milp_solves", int b.milp_solves);
            ("milp_nodes", int b.milp_nodes);
            ("flow_certified", int b.flow_certified);
            ("registry_hits", int b.registry_hits);
            ("registry_misses", int b.registry_misses);
          ] );
      ("counters", counters);
      ("histograms", hists);
    ]

(* Run-level stats for the multi-request commands (sweep/batch): no single
   outcome to report, but the counters and histogram percentiles are the
   point — they make the solver's behaviour reachable from JSON. *)
let run_stats_json () =
  let open Syccl_util.Json in
  let counters, hists = counters_json () in
  Obj
    [
      ("schema_version", Num 1.0);
      ("counters", counters);
      ("histograms", hists);
    ]

let write_json_file ~what path (j : Syccl_util.Json.t) =
  let text = Syccl_util.Json.to_string ~pretty:true j ^ "\n" in
  if path = "-" then print_string text
  else begin
    let oc = open_out path in
    output_string oc text;
    close_out oc;
    Format.eprintf "%s: wrote %s@." what path
  end

let write_stats_json path o = write_json_file ~what:"stats-json" path (stats_json o)

let export_trace path =
  Syccl_util.Trace.disable ();
  Syccl_util.Trace.export_file path;
  Format.printf "trace:      wrote %s (%d events, %d dropped) — load in \
                 ui.perfetto.dev@."
    path
    (List.length (Syccl_util.Trace.events ()))
    (Syccl_util.Trace.dropped ())

let topo_cmd =
  let run name =
    let topo = topo_of_name name in
    Format.printf "%a@." T.Topology.pp topo;
    Array.iteri
      (fun d share -> Format.printf "  bandwidth share dim %d: %.3f@." d share)
      (T.Topology.bandwidth_share topo)
  in
  Cmd.v (Cmd.info "topo" ~doc:"Show a topology's dimensions and groups.")
    Term.(const run $ topo_arg)

let synth_cmd =
  let run tname cname size fast faults domains deadline stats verbose trace
      metrics sjson rdir audit mout =
    let config =
      { Syccl.Synthesizer.default_config with fast_only = fast; domains;
        deadline }
    in
    let req =
      Request.make ~config ~faults:(faults_of faults) ~topology:tname
        ~collective:cname ~size ()
    in
    let topo = req.Request.topo and coll = req.Request.coll in
    let registry = registry_of rdir in
    if trace <> None then Syccl_util.Trace.enable ();
    let so = Serve.run ?registry ?audit:(audit_of registry audit) req in
    let o = so.Serve.synth in
    Format.printf "collective: %a on %s%s@." C.pp coll tname
      (match T.Fault.encode (Request.faults req) with
      | "" -> ""
      | s -> Printf.sprintf " (faults %s)" s);
    (match (registry, so.Serve.source) with
    | None, _ -> ()
    | Some reg, Serve.From_registry { hit_key; via; stored_cost } ->
        Format.printf
          "registry:   hit %s%s in %s (stored cost %.1f us, re-validated)@."
          hit_key
          (match via with
          | Registry.Exact -> ""
          | Registry.Rescaled -> " (rescaled)"
          | Registry.Transported -> " (transported)"
          | Registry.Scaled_cross -> " (rescaled cross-bucket)")
          (Registry.dir reg) (stored_cost *. 1e6)
    | Some reg, Serve.From_synthesis ->
        Format.printf "registry:   miss in %s (stored for next time)@."
          (Registry.dir reg));
    Format.printf "synthesis:  %.2fs (search %.2fs, combine %.2fs, solve1 %.2fs, solve2 %.2fs)@."
      o.synth_time o.breakdown.search_s o.breakdown.combine_s
      o.breakdown.solve1_s o.breakdown.solve2_s;
    Format.printf "solver:     %d memo hits / %d misses, %d MILP models, %d \
                   B&B nodes, %d flow-certified@."
      o.breakdown.cache_hits o.breakdown.cache_misses o.breakdown.milp_solves
      o.breakdown.milp_nodes o.breakdown.flow_certified;
    Format.printf "sketches:   %d explored, %d combinations, winner: %s@."
      o.num_sketches o.num_combos o.chosen;
    Format.printf "ladder:     %s%s@."
      (Syccl.Synthesizer.level_name o.degraded)
      (match o.degrade_reason with None -> "" | Some r -> " (" ^ r ^ ")");
    Format.printf "predicted:  %.1f us, busbw %.1f GBps@." (o.time *. 1e6) o.busbw;
    (match S.Validate.validate topo coll o.schedules with
    | Ok () -> ()
    | Error e -> Format.printf "WARNING: schedule invalid: %s@." e);
    if verbose then
      List.iter (fun s -> Format.printf "%a@." S.Schedule.pp s) o.schedules;
    (match trace with
    | None -> ()
    | Some path ->
        (* Re-simulate the winning schedules with timeline export on: one
           Perfetto process per phase, one track per active port. *)
        Syccl_util.Trace.set_process_name ~pid:Syccl_util.Trace.synthesis_pid
          "synthesis";
        List.iteri
          (fun i s ->
            let pid = Syccl_util.Trace.sim_pid + i in
            Syccl_util.Trace.set_process_name ~pid
              (Printf.sprintf "sim phase %d (virtual time)" i);
            ignore (S.Sim.run ~blocks:config.blocks ~trace_pid:pid topo s))
          o.schedules;
        export_trace path);
    if stats then print_stats ();
    if metrics then print_metrics ();
    Option.iter (fun p -> write_stats_json p o) sjson;
    write_metrics_out mout
  in
  let verbose =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Dump the schedule.")
  in
  let sjson =
    Arg.(
      value
      & opt (some string) None
      & info [ "stats-json" ] ~docv:"FILE"
          ~doc:
            "Write the outcome, per-stage breakdown, counters and histograms \
             as JSON to $(docv) ($(b,-) for stdout).")
  in
  Cmd.v (Cmd.info "synth" ~doc:"Synthesize a schedule and report its performance.")
    Term.(
      const run $ topo_arg $ coll_arg $ size_arg $ fast_arg $ faults_arg
      $ domains_arg $ deadline_arg $ stats_arg $ verbose $ trace_arg
      $ metrics_arg $ sjson $ registry_arg $ audit_arg $ metrics_out_arg)

(* A registry entry rendered as a synthesis outcome, so Explain.outcome can
   report it: the schedules and chosen description are stored; the cost is
   freshly re-simulated at the entry's store-time fidelity. *)
let entry_outcome topo (m : Registry.meta) schedules =
  let time =
    List.fold_left
      (fun a s -> a +. S.Sim.time ~blocks:m.Registry.m_blocks topo s)
      0.0 schedules
  in
  let coll =
    C.make ~root:m.Registry.m_root ~peer:m.Registry.m_peer
      (C.kind_of_name m.Registry.m_kind)
      ~n:(T.Topology.num_gpus topo) ~size:m.Registry.m_size
  in
  {
    Syccl.Synthesizer.schedules;
    time;
    busbw = C.busbw coll ~time;
    synth_time = 0.0;
    breakdown =
      {
        Syccl.Synthesizer.search_s = 0.0; combine_s = 0.0; solve1_s = 0.0;
        solve2_s = 0.0; cache_hits = 0; cache_misses = 0; milp_solves = 0;
        milp_nodes = 0; flow_certified = 0; registry_hits = 1;
        registry_misses = 0;
      };
    num_sketches = 0;
    num_combos = 0;
    chosen = m.Registry.m_chosen;
    degraded = Syccl.Synthesizer.Full;
    degrade_reason = None;
  }

let explain_cmd =
  let run tname cname size fast entry rdir =
    match entry with
    | Some key ->
        (* Explain a stored registry entry instead of synthesizing. *)
        let reg = require_registry rdir in
        let topo = topo_of_name tname in
        (match Registry.load reg key with
        | Error e -> failwith (Printf.sprintf "entry %s: %s" key e)
        | Ok (m, schedules) ->
            if m.Registry.m_fingerprint <> T.Topology.fingerprint topo then
              failwith
                (Printf.sprintf
                   "entry %s was stored for topology fingerprint %s, but %s \
                    fingerprints as %s — pass the matching -t"
                   key m.Registry.m_fingerprint tname
                   (T.Topology.fingerprint topo));
            let provenance =
              Printf.sprintf
                "registry entry %s in %s (%s, %.0f bytes data, stored cost \
                 %.1f us at blocks=%d, schema v%d)"
                key (Registry.dir reg) m.Registry.m_kind m.Registry.m_size
                (m.Registry.m_cost *. 1e6)
                m.Registry.m_blocks m.Registry.m_schema
            in
            print_string
              (Syccl.Explain.outcome ~provenance topo
                 (entry_outcome topo m schedules)))
    | None ->
        let topo = topo_of_name tname in
        let coll = coll_of_name cname ~n:(T.Topology.num_gpus topo) ~size in
        let config = { Syccl.Synthesizer.default_config with fast_only = fast } in
        let o = Syccl.Synthesizer.synthesize ~config topo coll in
        print_string
          (Syccl.Explain.outcome ~provenance:"fresh synthesis" topo o);
        (* Re-derive the winner's first sketch for the readable report. *)
        let kind =
          match coll.C.kind with
          | C.AllToAll | C.Scatter | C.Gather -> `Scatter
          | _ -> `Broadcast
        in
        (match Syccl.Search.run topo ~kind ~root:0 with
        | s :: _ ->
            print_newline ();
            print_string (Syccl.Explain.sketch topo s)
        | [] -> ())
  in
  let entry =
    Arg.(
      value
      & opt (some string) None
      & info [ "entry" ] ~docv:"KEY"
          ~doc:
            "Explain the stored registry entry $(docv) (from $(b,syccl \
             registry ls)) instead of synthesizing: requires a registry and \
             a $(b,-t) whose fingerprint matches the entry.")
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Print a human-readable report — critical path, port bottleneck, \
          alpha/beta shares — for a fresh synthesis or a stored registry \
          entry ($(b,--entry)).")
    Term.(
      const run $ topo_arg $ coll_arg $ size_arg $ fast_arg $ entry
      $ registry_arg)

let save_cmd =
  let run tname cname size fast path =
    let topo = topo_of_name tname in
    let coll = coll_of_name cname ~n:(T.Topology.num_gpus topo) ~size in
    let config = { Syccl.Synthesizer.default_config with fast_only = fast } in
    let o = Syccl.Synthesizer.synthesize ~config topo coll in
    List.iteri
      (fun i s ->
        let path =
          if List.length o.schedules = 1 then path
          else Printf.sprintf "%s.phase%d" path i
        in
        let oc = open_out path in
        output_string oc
          (Syccl_util.Json.to_string ~pretty:true (S.Schedule.to_json s));
        close_out oc;
        Format.printf "wrote %s@." path)
      o.schedules
  in
  let path =
    Arg.(required & opt (some string) None
         & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Destination JSON path.")
  in
  Cmd.v
    (Cmd.info "save" ~doc:"Synthesize and persist the schedule as JSON.")
    Term.(const run $ topo_arg $ coll_arg $ size_arg $ fast_arg $ path)

let replay_cmd =
  let run tname path =
    let topo = topo_of_name tname in
    let ic = open_in path in
    let len = in_channel_length ic in
    let text = really_input_string ic len in
    close_in ic;
    let s = S.Schedule.of_json (Syccl_util.Json.of_string text) in
    let report = S.Sim.run topo s in
    Format.printf "replayed %s: %d transfers, completion %.1f us@." path
      (S.Schedule.num_xfers s)
      (report.S.Sim.time *. 1e6);
    Format.printf "%a@." S.Analysis.pp (S.Analysis.analyze topo s)
  in
  let path =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE")
  in
  Cmd.v
    (Cmd.info "replay" ~doc:"Simulate a previously saved JSON schedule.")
    Term.(const run $ topo_arg $ path)

let analyze_cmd =
  let run tname cname size fast timeline =
    let topo = topo_of_name tname in
    let coll = coll_of_name cname ~n:(T.Topology.num_gpus topo) ~size in
    let config = { Syccl.Synthesizer.default_config with fast_only = fast } in
    let o = Syccl.Synthesizer.synthesize ~config topo coll in
    List.iteri
      (fun i s ->
        Format.printf "--- phase %d ---@.%a@." i S.Analysis.pp
          (S.Analysis.analyze topo s);
        if timeline then print_string (S.Analysis.timeline topo s))
      o.schedules
  in
  let timeline =
    Arg.(value & flag & info [ "timeline" ] ~doc:"Print a text Gantt chart.")
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Synthesize, then report traffic per dimension and port utilization.")
    Term.(const run $ topo_arg $ coll_arg $ size_arg $ fast_arg $ timeline)

let profile_cmd =
  let run tname noise =
    let topo = topo_of_name tname in
    let rng = Syccl_util.Xrand.create 7 in
    let probe =
      T.Profiler.simulator_probe
        ?noise:(if noise > 0.0 then Some (rng, noise) else None)
        topo
    in
    List.iter
      (fun (d, (f : T.Profiler.fit)) ->
        Format.printf "dim %d: alpha %.2f us, bandwidth %.1f GBps (residual %.2f us)@."
          d (f.alpha *. 1e6)
          (1.0 /. f.beta /. 1e9)
          (f.residual *. 1e6))
      (T.Profiler.profile ~probe topo)
  in
  let noise =
    Arg.(value & opt float 0.0
         & info [ "noise" ] ~docv:"FRAC" ~doc:"Relative measurement noise.")
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:"Fit per-dimension alpha-beta link parameters from probe sweeps.")
    Term.(const run $ topo_arg $ noise)

let lower_cmd =
  let run tname cname size fast faults domains deadline rdir audit channels
      proto check output =
    let config =
      { Syccl.Synthesizer.default_config with fast_only = fast; domains;
        deadline }
    in
    let req =
      Request.make ~config ~faults:(faults_of faults) ~topology:tname
        ~collective:cname ~size ()
    in
    let registry = registry_of rdir in
    (* The lowering check runs inside Serve on the schedules as served:
       registry hits (transported/rescaled included) and degraded rungs
       (Rerouted, fallback) are lowered exactly as the plan resolved them,
       never re-synthesized. *)
    let lower (r : Request.t) (o : Syccl.Synthesizer.outcome) =
      if not check then Ok ()
      else
        match
          S.Msccl_interp.check_lowering ~channels ~coll:r.Request.coll
            o.Syccl.Synthesizer.schedules
        with
        | Error _ as e -> e
        | Ok () ->
            Result.map_error
              (fun e -> "reference checker divergence: " ^ e)
              (Syccl_check.Refcheck.covers r.Request.topo r.Request.coll
                 o.Syccl.Synthesizer.schedules)
    in
    let so = Serve.run ?registry ?audit:(audit_of registry audit) ~lower req in
    let o = so.Serve.synth in
    (* Status goes to stderr: stdout carries the XML when no -o is given. *)
    Format.eprintf "lowering:   %s, rung %s, %d phase(s), channels %d@."
      (match so.Serve.source with
      | Serve.From_registry { hit_key; via; _ } ->
          Printf.sprintf "registry hit %s (%s)" hit_key (Registry.via_name via)
      | Serve.From_synthesis -> "fresh synthesis")
      (Syccl.Synthesizer.level_name o.Syccl.Synthesizer.degraded)
      (List.length o.Syccl.Synthesizer.schedules)
      channels;
    (match so.Serve.lower with
    | Some (Error e) -> failwith ("lower --check: " ^ e)
    | Some (Ok ()) when check ->
        Format.eprintf
          "check:      lower -> parse -> replay ok, refcheck agrees@."
    | _ -> ());
    let phases = C.phases req.Request.coll in
    List.iteri
      (fun i (phase, s) ->
        let prog =
          S.Msccl.lower ~channels ~proto
            ~name:(Printf.sprintf "syccl-%s-%d" cname i)
            ~coll:phase s
        in
        let xml = S.Msccl.emit prog in
        match output with
        | None -> print_string xml
        | Some path ->
            let path =
              if List.length phases = 1 then path
              else Printf.sprintf "%s.phase%d" path i
            in
            let oc = open_out path in
            output_string oc xml;
            close_out oc;
            Format.eprintf "wrote %s (%d steps)@." path (S.Msccl.num_steps prog))
      (List.combine phases o.Syccl.Synthesizer.schedules)
  in
  let channels =
    Arg.(
      value & opt int 1
      & info [ "channels" ] ~docv:"N"
          ~doc:"Spread connections round-robin over $(docv) channels.")
  in
  let proto =
    Arg.(
      value & opt string "Simple"
      & info [ "proto" ] ~docv:"PROTO" ~doc:"Protocol attribute (LL, LL128, Simple).")
  in
  let check =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Replay the lowered program step-by-step under executor \
             semantics and cross-check data placement against the \
             reference interpreter before emitting; non-zero exit and no \
             XML on any divergence.  The verdict is recorded in the audit \
             trail either way.")
  in
  let output =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Write XML here instead of stdout.")
  in
  Cmd.v
    (Cmd.info "lower"
       ~doc:
         "Serve a request (registry and degradation ladder included) and \
          lower the schedules actually served to MSCCL-executor XML (one \
          file per phase).")
    Term.(
      const run $ topo_arg $ coll_arg $ size_arg $ fast_arg $ faults_arg
      $ domains_arg $ deadline_arg $ registry_arg $ audit_arg $ channels
      $ proto $ check $ output)

let sweep_sizes = [ 1e3; 65536.0; 1048576.0; 1.6777e7; 2.68435e8; 1.073741824e9 ]

let sweep_cmd =
  let run tname cname fast faults domains deadline stats trace metrics rdir
      audit mout sjson =
    if trace <> None then Syccl_util.Trace.enable ();
    let faults = faults_of faults in
    let config =
      { Syccl.Synthesizer.default_config with fast_only = fast; domains;
        deadline }
    in
    (* One request per size, executed through the shared pipeline: batch
       execution groups them into a single synthesize_all sweep, so
       sub-solve memoization makes later sizes mostly cache hits of
       earlier ones — and with a registry, later *runs* are full hits. *)
    let requests =
      List.map
        (fun size ->
          Request.make ~config ~faults ~topology:tname ~collective:cname ~size
            ())
        sweep_sizes
    in
    let registry = registry_of rdir in
    let topo = (List.hd requests).Request.topo in
    let outcomes =
      Serve.run_batch ?registry ?audit:(audit_of registry audit) requests
    in
    Format.printf "%10s %12s %12s %12s %10s@." "size" "SyCCL" "NCCL" "TECCL"
      "ladder";
    List.iter2
      (fun (r : Request.t) (so : Serve.outcome) ->
        let coll = r.Request.coll in
        let o = so.Serve.synth in
        let nccl = Syccl_baselines.Nccl.busbw topo coll in
        let teccl =
          match
            Syccl_teccl.Teccl.busbw topo coll
              (Syccl_teccl.Teccl.synthesize ~time_budget:60.0 topo coll)
          with
          | Some b -> Printf.sprintf "%.1f" b
          | None -> "timeout"
        in
        Format.printf "%10.0f %12.1f %12.1f %12s %10s@." coll.C.size
          o.Syccl.Synthesizer.busbw nccl teccl
          (Syccl.Synthesizer.level_name o.Syccl.Synthesizer.degraded))
      requests outcomes;
    (match trace with
    | None -> ()
    | Some path ->
        Syccl_util.Trace.set_process_name ~pid:Syccl_util.Trace.synthesis_pid
          "synthesis";
        export_trace path);
    if stats then print_stats ();
    if metrics then print_metrics ();
    write_metrics_out mout;
    Option.iter
      (fun p -> write_json_file ~what:"stats-json" p (run_stats_json ()))
      sjson
  in
  let sjson =
    Arg.(
      value
      & opt (some string) None
      & info [ "stats-json" ] ~docv:"FILE"
          ~doc:
            "Write the sweep's counters and histogram percentiles as JSON \
             to $(docv) ($(b,-) for stdout).")
  in
  Cmd.v (Cmd.info "sweep" ~doc:"Bus bandwidth vs data size, SyCCL vs baselines.")
    Term.(
      const run $ topo_arg $ coll_arg $ fast_arg $ faults_arg $ domains_arg
      $ deadline_arg $ stats_arg $ trace_arg $ metrics_arg $ registry_arg
      $ audit_arg $ metrics_out_arg $ sjson)

(* --- batch / warm: the JSONL front-ends over the same pipeline ---------- *)

let read_lines path =
  let ic = if path = "-" then stdin else open_in path in
  Fun.protect
    ~finally:(fun () -> if path <> "-" then close_in_noerr ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | line -> go (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      go [])

let batch_cmd =
  let run input output fast domains deadline rdir stats audit mout sjson =
    let defaults =
      { Syccl.Synthesizer.default_config with fast_only = fast; domains;
        deadline }
    in
    let requests =
      read_lines input
      |> List.mapi (fun i line -> (i + 1, line))
      |> List.filter (fun (_, line) -> String.trim line <> "")
      |> List.map (fun (lineno, line) ->
             try Request.of_json ~defaults (Syccl_util.Json.of_string line)
             with e ->
               failwith
                 (Printf.sprintf "request line %d: %s" lineno
                    (Printexc.to_string e)))
    in
    let registry = registry_of rdir in
    let outcomes =
      Serve.run_batch ?registry ?audit:(audit_of registry audit) requests
    in
    let text =
      String.concat ""
        (List.map
           (fun o -> Syccl_util.Json.to_string (Serve.outcome_to_json o) ^ "\n")
           outcomes)
    in
    if output = "-" then print_string text
    else begin
      let oc = open_out output in
      output_string oc text;
      close_out oc
    end;
    let hits =
      List.length
        (List.filter
           (fun (o : Serve.outcome) ->
             match o.Serve.source with
             | Serve.From_registry _ -> true
             | Serve.From_synthesis -> false)
           outcomes)
    in
    Format.eprintf "batch: %d requests (%d unique), %d registry hits, %d synthesized@."
      (List.length requests)
      (List.length
         (List.sort_uniq compare (List.map Request.key requests)))
      hits
      (List.length outcomes - hits);
    if stats then print_stats ();
    write_metrics_out mout;
    Option.iter
      (fun p -> write_json_file ~what:"stats-json" p (run_stats_json ()))
      sjson
  in
  let sjson =
    Arg.(
      value
      & opt (some string) None
      & info [ "stats-json" ] ~docv:"FILE"
          ~doc:
            "Write the batch's counters and histogram percentiles as JSON \
             to $(docv) ($(b,-) for stdout).")
  in
  let input =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"REQUESTS.jsonl"
          ~doc:
            "Input request file, one JSON object per line ($(b,-) for \
             stdin): {\"topology\": ..., \"collective\": ..., \"size\": \
             ..., \"fast\"?, \"domains\"?, \"deadline\"?, \"root\"?, \
             \"peer\"?, \"faults\"?}.")
  in
  let output =
    Arg.(
      value
      & opt string "-"
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Outcome JSONL destination ($(b,-) for stdout, the default).")
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:
         "Execute a JSONL request file through the request→plan→execute \
          pipeline: duplicates are deduped, registry hits are served after \
          re-validation, misses are synthesized concurrently on the \
          persistent pool and stored back.")
    Term.(
      const run $ input $ output $ fast_arg $ domains_arg $ deadline_arg
      $ registry_arg $ stats_arg $ audit_arg $ metrics_out_arg $ sjson)

let warm_cmd =
  let run tname cnames sizes domains deadline rdir audit faults_k fleet
      families =
    let registry = require_registry rdir in
    let config =
      { Syccl.Synthesizer.default_config with domains; deadline }
    in
    let audit = audit_of (Some registry) audit in
    if fleet then begin
      (* Fleet warming: anchor every family × collective × bucket at root
         0; production requests at other roots / adjacent buckets are
         served by the registry's transport and cross-bucket probes. *)
      let families =
        if families = [] then Fleet.default_families else families
      in
      let collectives =
        match cnames with
        | Some c -> String.split_on_char ',' c
        | None -> Fleet.default_collectives
      in
      let anchors = if sizes = [] then Fleet.default_anchors else sizes in
      let stats =
        Fleet.warm ~registry ?audit ~config ~families ~collectives ~anchors
          ()
      in
      Format.printf "%-16s %8s %8s %8s %8s@." "family" "anchors" "stored"
        "hit" "failed";
      List.iter
        (fun (f : Fleet.family) ->
          Format.printf "%-16s %8d %8d %8d %8d@." f.Fleet.family
            f.Fleet.anchors f.Fleet.stored f.Fleet.already_hit
            f.Fleet.failed)
        stats.Fleet.families;
      Format.printf
        "fleet: %d anchors, %d stored, %d already hit, %d failed@."
        stats.Fleet.anchors stats.Fleet.stored stats.Fleet.already_hit
        stats.Fleet.failed
    end
    else begin
    let sizes = if sizes = [] then sweep_sizes else sizes in
    let cnames =
      String.split_on_char ',' (Option.value cnames ~default:"allgather")
    in
    (match faults_k with
    | None ->
        let requests =
          List.concat_map
            (fun cname ->
              List.map
                (fun size ->
                  Request.make ~config ~topology:tname ~collective:cname ~size
                    ())
                sizes)
            cnames
        in
        let outcomes = Serve.run_batch ~registry ?audit requests in
        Format.printf "%12s %10s %12s %10s@." "collective" "size" "busbw"
          "path";
        List.iter2
          (fun (r : Request.t) (so : Serve.outcome) ->
            Format.printf "%12s %10.0f %12.1f %10s@."
              (String.lowercase_ascii (C.kind_name r.Request.coll.C.kind))
              r.Request.coll.C.size so.Serve.synth.Syccl.Synthesizer.busbw
              (match so.Serve.source with
              | Serve.From_registry _ -> "hit"
              | Serve.From_synthesis -> "stored"))
          requests outcomes
    | Some k ->
        (* Fault-class warming: one synthesis per stabilizer orbit of
           <=k-link fault sets, transported to every equivalent fault set,
           so any enumerated failure is served as a registry hit. *)
        Format.printf "%12s %10s %6s %7s %7s %7s %7s %7s@." "collective"
          "size" "sets" "orbits" "hit" "synth" "transp" "resyn";
        List.iter
          (fun cname ->
            List.iter
              (fun size ->
                let st =
                  Failover.warm ~registry ?audit ~config ~topology:tname
                    ~collective:cname ~size k
                in
                Format.printf "%12s %10.0f %6d %7d %7d %7d %7d %7d@."
                  (String.lowercase_ascii cname)
                  size st.Failover.sets st.Failover.orbits
                  st.Failover.rep_hits st.Failover.rep_synthesized
                  st.Failover.transported st.Failover.resynthesized;
                if st.Failover.skipped > 0 then
                  Format.printf "%12s %10s skipped %d member(s) (degraded \
                                 representative or store failure)@."
                    "" "" st.Failover.skipped;
                if st.Failover.skipped_demand > 0 then
                  Format.printf "%12s %10s skipped %d demand-changing \
                                 class(es) (GPU faults)@."
                    "" "" st.Failover.skipped_demand)
              sizes)
          cnames)
    end;
    Format.printf "registry:   %d entries in %s@." (Registry.length registry)
      (Registry.dir registry)
  in
  let faults_k =
    Arg.(
      value
      & opt (some int) None
      & info [ "faults" ] ~docv:"K"
          ~doc:
            "Also pre-warm every fault class of up to $(docv) failed links: \
             fault sets are enumerated up to topology-symmetry (stabilizer \
             orbits), one representative per orbit is synthesized on the \
             punctured topology, and the schedule is transported along the \
             relating automorphism to the rest of the orbit — validated and \
             stored per member — so any single (or up to $(docv)-fold) link \
             failure is served as a registry hit.")
  in
  let colls =
    Arg.(
      value
      & opt (some string) None
      & info [ "c"; "collectives" ] ~docv:"COLLS"
          ~doc:
            "Comma-separated collective names to warm (default: allgather; \
             with $(b,--fleet), every collective except sendrecv).")
  in
  let sizes =
    Arg.(
      value
      & opt (list float) []
      & info [ "sizes" ] ~docv:"BYTES,..."
          ~doc:
            "Sizes to warm (defaults to the sweep series; with \
             $(b,--fleet), one anchor per bucket of the serving sweet \
             spot).")
  in
  let fleet =
    Arg.(
      value & flag
      & info [ "fleet" ]
          ~doc:
            "Warm every named topology family across the size grid with \
             one root-0 anchor per (family, collective, bucket).  The \
             registry's symmetry probes serve the rest of the grid from \
             those anchors — other roots by stabilizer transport, adjacent \
             buckets by rescaling — so a cold family reaches hit-rate \
             saturation at anchor cost.")
  in
  let families =
    Arg.(
      value
      & opt (list string) []
      & info [ "families" ] ~docv:"NAME,..."
          ~doc:
            "Topology families for $(b,--fleet) (default: every named \
             builder family).")
  in
  Cmd.v
    (Cmd.info "warm"
       ~doc:
         "Pre-populate the schedule registry for a topology/collective \
          sweep, so production requests start as hits.  With $(b,--fleet), \
          anchor every named topology family so transported and rescaled \
          registry hits cover the production grid.  With \
          $(b,--faults K), also warm every <=K-element link/NIC fault \
          class at orbit cost: one synthesis per symmetry-equivalence \
          class of fault sets, transported to the rest (GPU fault classes \
          change the demand itself and are counted, then skipped).")
    Term.(
      const run $ topo_arg $ colls $ sizes $ domains_arg $ deadline_arg
      $ registry_arg $ audit_arg $ faults_k $ fleet $ families)

(* --- observability: audit / metrics / registry ------------------------- *)

let audit_path_of file rdir =
  match (file, registry_of rdir) with
  | Some p, _ -> p
  | None, Some reg -> Filename.concat (Registry.dir reg) Audit.default_name
  | None, None ->
      failwith "audit: pass a FILE, --registry DIR, or set SYCCL_REGISTRY"

let audit_cmd =
  let run file rdir tail fingerprint reason aggregate json =
    let path = audit_path_of file rdir in
    let records, bad = Audit.read path in
    let records =
      List.filter
        (fun (r : Audit.record) ->
          (match fingerprint with
          | None -> true
          | Some fp -> r.Audit.fingerprint = fp)
          &&
          match reason with
          | None -> true
          | Some re ->
              r.Audit.probe = re || r.Audit.rung = re
              || r.Audit.degrade_reason = Some re)
        records
    in
    let shown =
      match tail with
      | None -> records
      | Some n ->
          let len = List.length records in
          List.filteri (fun i _ -> i >= len - n) records
    in
    if aggregate then begin
      let tally assoc k =
        match List.assoc_opt k !assoc with
        | Some n -> assoc := (k, n + 1) :: List.remove_assoc k !assoc
        | None -> assoc := !assoc @ [ (k, 1) ]
      in
      let by_probe = ref [] and by_rung = ref [] and by_fp = ref [] in
      let stored = ref 0 and consumed = ref 0.0 in
      List.iter
        (fun (r : Audit.record) ->
          tally by_probe r.Audit.probe;
          tally by_rung r.Audit.rung;
          tally by_fp r.Audit.fingerprint;
          if r.Audit.stored then incr stored;
          consumed := !consumed +. r.Audit.consumed_s)
        records;
      Format.printf "%d record%s, %d stored back, %.2fs synthesis consumed@."
        (List.length records)
        (if List.length records = 1 then "" else "s")
        !stored !consumed;
      let table name assoc =
        if !assoc <> [] then begin
          Format.printf "by %s:@." name;
          List.iter
            (fun (k, n) -> Format.printf "  %-40s %6d@." k n)
            (List.sort (fun (_, a) (_, b) -> compare b a) !assoc)
        end
      in
      table "probe" by_probe;
      table "rung" by_rung;
      table "fingerprint" by_fp
    end
    else
      List.iter
        (fun (r : Audit.record) ->
          if json then
            print_endline (Syccl_util.Json.to_string (Audit.record_to_json r))
          else
            Format.printf
              "%.3f %-10s %-8.2e %-20s probe=%-12s rung=%-8s %8.1fus \
               busbw=%6.1f synth=%.3fs%s%s@."
              r.Audit.ts r.Audit.collective r.Audit.size r.Audit.topology
              r.Audit.probe r.Audit.rung (r.Audit.time_s *. 1e6) r.Audit.busbw
              r.Audit.consumed_s
              (if r.Audit.stored then " stored" else "")
              (match r.Audit.degrade_reason with
              | None -> ""
              | Some re -> " (" ^ re ^ ")"))
        shown;
    if bad > 0 then
      Format.eprintf "audit: skipped %d unparseable line%s in %s@." bad
        (if bad = 1 then "" else "s")
        path
  in
  let file =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"FILE"
          ~doc:
            "Audit JSONL file (defaults to $(i,REGISTRY)/audit.jsonl of the \
             active registry).")
  in
  let tail =
    Arg.(
      value
      & opt (some int) None
      & info [ "tail" ] ~docv:"N" ~doc:"Only show the last $(docv) records.")
  in
  let fingerprint =
    Arg.(
      value
      & opt (some string) None
      & info [ "fingerprint" ] ~docv:"FP"
          ~doc:"Only records for this topology fingerprint.")
  in
  let reason =
    Arg.(
      value
      & opt (some string) None
      & info [ "reason" ] ~docv:"R"
          ~doc:
            "Only records whose probe outcome (e.g. $(b,miss.corrupt)), \
             ladder rung (e.g. $(b,fallback)) or degrade reason matches \
             $(docv).")
  in
  let aggregate =
    Arg.(
      value & flag
      & info [ "aggregate" ]
          ~doc:
            "Print counts by probe outcome, ladder rung and fingerprint \
             instead of individual records.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Re-emit the selected records as canonical JSONL.")
  in
  Cmd.v
    (Cmd.info "audit"
       ~doc:
         "Tail, filter and aggregate the per-request audit trail written by \
          synth/sweep/batch/warm next to the registry.")
    Term.(
      const run $ file $ registry_arg $ tail $ fingerprint $ reason
      $ aggregate $ json)

let metrics_cmd =
  let run from_audit rdir out =
    (match from_audit with
    | None -> ()
    | Some file ->
        let path =
          if file = "registry" then audit_path_of None rdir else file
        in
        let records, bad = Audit.read path in
        List.iter Audit.replay_counters records;
        if bad > 0 then
          Format.eprintf "metrics: skipped %d unparseable line%s in %s@." bad
            (if bad = 1 then "" else "s")
            path);
    let text = Syccl_util.Counters.to_prometheus () in
    match out with
    | None -> print_string text
    | Some path ->
        let oc = open_out path in
        output_string oc text;
        close_out oc
  in
  let from_audit =
    Arg.(
      value
      & opt (some string) None
      & info [ "from-audit" ] ~docv:"FILE"
          ~doc:
            "Replay an audit JSONL trail into the counters first, so a \
             collected trail can be exposed after the serving process is \
             gone ($(b,registry) for the active registry's trail).")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Write to $(docv) instead of stdout.")
  in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:
         "Expose every counter and histogram in Prometheus text format \
          (0.0.4): counters as $(b,counter), gauges as $(b,gauge), \
          histograms with cumulative buckets, _sum and _count.")
    Term.(const run $ from_audit $ registry_arg $ out)

let registry_cmd =
  let run action key rdir tname max_entries max_bytes =
    let reg = require_registry rdir in
    let topo = Option.map topo_of_name tname in
    let keys = Registry.keys reg in
    match action with
    | "ls" ->
        Format.printf "%-16s %-12s %10s %10s %8s %6s@." "key" "kind" "size"
          "cost_us" "blocks" "schema";
        List.iter
          (fun k ->
            match Registry.load reg k with
            | Ok (m, _) ->
                Format.printf "%-16s %-12s %10.0f %10.1f %8d %6d@." k
                  m.Registry.m_kind m.Registry.m_size
                  (m.Registry.m_cost *. 1e6)
                  m.Registry.m_blocks m.Registry.m_schema
            | Error e -> Format.printf "%-16s CORRUPT: %s@." k e)
          keys
    | "stats" ->
        let total_bytes = ref 0 and corrupt = ref 0 in
        let buckets = ref [] and schemas = ref [] in
        let tally assoc k v =
          match List.assoc_opt k !assoc with
          | Some (n, b) -> assoc := (k, (n + 1, b + v)) :: List.remove_assoc k !assoc
          | None -> assoc := (k, (1, v)) :: !assoc
        in
        List.iter
          (fun k ->
            match Registry.load reg k with
            | Ok (m, _) ->
                total_bytes := !total_bytes + m.Registry.m_bytes;
                tally buckets
                  (Printf.sprintf "%s/2^%d" m.Registry.m_kind
                     (Registry.size_bucket m.Registry.m_size))
                  m.Registry.m_bytes;
                tally schemas
                  (Printf.sprintf "schema v%d" m.Registry.m_schema)
                  m.Registry.m_bytes
            | Error _ -> incr corrupt)
          keys;
        Format.printf "%s: %d entries, %d bytes, %d corrupt@."
          (Registry.dir reg) (List.length keys) !total_bytes !corrupt;
        let layout = Registry.layout_stats reg in
        Format.printf
          "layout:     v%s, %d sharded in %d shard dir%s, %d legacy flat%s@."
          (match Registry.manifest reg with
          | Ok v -> string_of_int v
          | Error e -> "? (" ^ e ^ ")")
          layout.Registry.sharded layout.Registry.shards_in_use
          (if layout.Registry.shards_in_use = 1 then "" else "s")
          layout.Registry.flat
          (if layout.Registry.flat > 0 then
             " (run `syccl registry compact` to migrate)"
           else "");
        List.iter
          (fun (k, (n, b)) -> Format.printf "  %-28s %4d entries %10d bytes@." k n b)
          (List.sort compare !buckets);
        List.iter
          (fun (k, (n, b)) -> Format.printf "  %-28s %4d entries %10d bytes@." k n b)
          (List.sort compare !schemas);
        (* Hit provenance: which stored entries actually serve traffic,
           according to the registry-adjacent audit trail. *)
        let audit = Filename.concat (Registry.dir reg) Audit.default_name in
        if Sys.file_exists audit then begin
          let records, _bad = Audit.read audit in
          let hits = ref [] in
          List.iter
            (fun (r : Audit.record) ->
              match r.Audit.hit_key with
              | Some hk -> (
                  match List.assoc_opt hk !hits with
                  | Some n -> hits := (hk, n + 1) :: List.remove_assoc hk !hits
                  | None -> hits := (hk, 1) :: !hits)
              | None -> ())
            records;
          Format.printf "hit provenance (%d audited requests):@."
            (List.length records);
          List.iter
            (fun (k, n) ->
              Format.printf "  %-16s served %d hit%s@." k n
                (if n = 1 then "" else "s"))
            (List.sort (fun (_, a) (_, b) -> compare b a) !hits)
        end
    | "inspect" ->
        let key =
          match key with
          | Some k -> k
          | None -> failwith "registry inspect: pass an entry KEY"
        in
        (match Registry.load reg key with
        | Error e -> failwith (Printf.sprintf "entry %s: %s" key e)
        | Ok (m, schedules) ->
            Format.printf "key:         %s@." m.Registry.m_key;
            Format.printf "fingerprint: %s@." m.Registry.m_fingerprint;
            Format.printf "collective:  %s root=%d peer=%d size=%.0f@."
              m.Registry.m_kind m.Registry.m_root m.Registry.m_peer
              m.Registry.m_size;
            Format.printf "cost:        %.1f us at blocks=%d@."
              (m.Registry.m_cost *. 1e6)
              m.Registry.m_blocks;
            Format.printf "chosen:      %s@." m.Registry.m_chosen;
            Format.printf "schema:      v%d, %d bytes on disk@."
              m.Registry.m_schema m.Registry.m_bytes;
            List.iteri
              (fun i s ->
                Format.printf "phase %d:     %d transfers, %d chunks@." i
                  (S.Schedule.num_xfers s)
                  (Array.length s.S.Schedule.chunks))
              schedules)
    | "verify" ->
        let bad = ref 0 in
        List.iter
          (fun k ->
            match Registry.verify_entry reg ?topo k with
            | Registry.Entry_ok { simulated } ->
                Format.printf "%-16s ok (re-simulated %.1f us)@." k
                  (simulated *. 1e6)
            | Registry.Entry_unverified m ->
                Format.printf
                  "%-16s unverified (no topology with fingerprint %s given)@."
                  k m.Registry.m_fingerprint
            | Registry.Entry_corrupt e ->
                incr bad;
                Format.printf "%-16s CORRUPT: %s@." k e
            | Registry.Entry_invalid { error; _ } ->
                incr bad;
                Format.printf "%-16s INVALID: %s@." k error
            | Registry.Entry_slower { meta; simulated } ->
                incr bad;
                Format.printf
                  "%-16s SLOWER: re-simulates %.1f us vs stored %.1f us@." k
                  (simulated *. 1e6)
                  (meta.Registry.m_cost *. 1e6))
          keys;
        Format.printf "verified %d entries, %d bad@." (List.length keys) !bad;
        if !bad > 0 then exit 1
    | "compact" ->
        (* Offline maintenance: the only registry action that deletes.
           LRU recency comes from the audit trail's hit provenance, so an
           entry that serves traffic (directly or as a transport source)
           outlives an idle one. *)
        let last_used =
          let audit = Filename.concat (Registry.dir reg) Audit.default_name in
          if Sys.file_exists audit then begin
            let records, _bad = Audit.read audit in
            let seen = Hashtbl.create 64 in
            List.iter
              (fun (r : Audit.record) ->
                match r.Audit.hit_key with
                | Some hk ->
                    let ts =
                      match Hashtbl.find_opt seen hk with
                      | Some t -> Float.max t r.Audit.ts
                      | None -> r.Audit.ts
                    in
                    Hashtbl.replace seen hk ts
                | None -> ())
              records;
            fun k -> Hashtbl.find_opt seen k
          end
          else fun _ -> None
        in
        let s = Registry.compact reg ?max_entries ?max_bytes ~last_used () in
        Format.printf
          "compacted %s: %d migrated, %d corrupt removed, %d dominated \
           pruned, %d evicted; %d entr%s (%d bytes) kept@."
          (Registry.dir reg) s.Registry.migrated s.Registry.corrupt_removed
          s.Registry.dominated_removed s.Registry.evicted s.Registry.kept
          (if s.Registry.kept = 1 then "y" else "ies")
          s.Registry.kept_bytes
    | other ->
        failwith
          (Printf.sprintf
             "unknown registry action %S (expected \
              stats|ls|inspect|verify|compact)"
             other)
  in
  let action =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"ACTION"
          ~doc:
            "One of $(b,stats), $(b,ls), $(b,inspect), $(b,verify), \
             $(b,compact).")
  in
  let key =
    Arg.(
      value
      & pos 1 (some string) None
      & info [] ~docv:"KEY" ~doc:"Entry key (for $(b,inspect)).")
  in
  let topo =
    Arg.(
      value
      & opt (some string) None
      & info [ "t"; "topology" ] ~docv:"TOPO"
          ~doc:
            "Topology to verify entries against (entries whose fingerprint \
             differs stay unverified).")
  in
  let max_entries =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-entries" ] ~docv:"N"
          ~doc:
            "For $(b,compact): evict least-recently-used entries until at \
             most $(docv) remain.")
  in
  let max_bytes =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-bytes" ] ~docv:"B"
          ~doc:
            "For $(b,compact): evict least-recently-used entries until at \
             most $(docv) bytes remain on disk.")
  in
  Cmd.v
    (Cmd.info "registry"
       ~doc:
         "Introspect and maintain the on-disk schedule registry: \
          per-bucket stats with layout and audit-derived hit provenance \
          ($(b,stats)), entry listing ($(b,ls)), one entry in full \
          ($(b,inspect KEY)), a read-only re-validation / re-simulation \
          pass over every entry ($(b,verify)) — corrupt, invalid or \
          cost-regressed entries are reported, never deleted, and the \
          command exits non-zero — or offline compaction ($(b,compact)): \
          migrate legacy flat entries into shards, delete corrupt \
          entries, prune transport-dominated duplicates, and evict by \
          audit-trail recency to $(b,--max-entries)/$(b,--max-bytes).")
    Term.(
      const run $ action $ key $ registry_arg $ topo $ max_entries
      $ max_bytes)

let fuzz_cmd =
  let run seed cases props shrink domains =
    let cases =
      match cases with
      | Some n -> n
      | None -> Syccl_check.Fuzz.default_cases ()
    in
    let props = if props = [] then None else Some props in
    let report =
      Syccl_check.Fuzz.run ?props ~progress:Format.std_formatter ~domains
        ~shrink ~seed ~cases ()
    in
    Syccl_check.Fuzz.pp_report Format.std_formatter report;
    if report.Syccl_check.Fuzz.failures <> [] then exit 1
  in
  let seed =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~docv:"SEED"
          ~doc:
            "Base random seed.  A failure is replayed exactly by the same \
             seed, property and case index.")
  in
  let cases =
    Arg.(
      value
      & opt (some int) None
      & info [ "n"; "cases" ] ~docv:"N"
          ~doc:
            "Cases per property (heavy properties — the differential \
             synthesis oracle, registry round-trips — run N/8).  Defaults \
             to $(b,SYCCL_FUZZ_CASES) when set, else 50.")
  in
  let props =
    Arg.(
      value
      & opt (list string) []
      & info [ "p"; "props" ] ~docv:"NAME,..."
          ~doc:
            "Only run the named properties (default: the whole catalogue).")
  in
  let shrink =
    Arg.(
      value & flag
      & info [ "shrink" ]
          ~doc:
            "Greedily shrink counterexample schedules to a 1-minimal \
             witness before reporting them.")
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Property-based fuzzing and differential verification: metamorphic \
          laws of the schedule IR (reverse involution, scale linearity, \
          union dominance, automorphism transport), validator soundness \
          against an independent reference checker under schedule \
          mutations, registry invariants, and a differential oracle pitting \
          the full synthesis pipeline against greedy, TECCL and NCCL \
          baselines.  Exits non-zero if any counterexample survives.")
    Term.(const run $ seed $ cases $ props $ shrink $ domains_arg)

let () =
  let doc = "SyCCL: symmetry-guided collective communication schedule synthesis" in
  let cmd =
    Cmd.group (Cmd.info "syccl_cli" ~doc)
      [
        topo_cmd; synth_cmd; sweep_cmd; batch_cmd; warm_cmd; lower_cmd;
        analyze_cmd; profile_cmd; save_cmd; replay_cmd; explain_cmd;
        audit_cmd; metrics_cmd; registry_cmd; fuzz_cmd;
      ]
  in
  (* Bad user input (unknown topology, malformed --faults spec, unknown
     registry key, ...) is reported by the library as
     Failure/Invalid_argument, and operator problems (an unreadable shard
     directory, a permission-denied registry) as Sys_error/Unix_error;
     print the one-line message, not an "internal error" backtrace dump. *)
  exit
    (try Cmd.eval ~catch:false cmd with
     | Failure msg | Invalid_argument msg | Sys_error msg ->
         Printf.eprintf "syccl_cli: %s\n" msg;
         Cmd.Exit.internal_error
     | Unix.Unix_error (e, fn, arg) ->
         Printf.eprintf "syccl_cli: %s: %s (%s)\n" fn (Unix.error_message e)
           arg;
         Cmd.Exit.internal_error)
