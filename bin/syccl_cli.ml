(* SyCCL command-line interface: inspect topologies, synthesize schedules,
   sweep sizes.  See `syccl_cli --help`. *)

open Cmdliner
module T = Syccl_topology
module C = Syccl_collective.Collective
module S = Syccl_sim

let topo_of_name name =
  match name with
  | "a100-16" -> T.Builders.a100 ~servers:2
  | "a100-32" -> T.Builders.a100 ~servers:4
  | "h800-64" -> T.Builders.h800 ~servers:8
  | "h800-512" -> T.Builders.h800 ~servers:64
  | "fig3" -> T.Builders.fig3 ()
  | "fig19" -> T.Builders.fig19 ()
  | "fig20" -> T.Builders.fig20 ()
  | s -> (
      (* "multirail:<servers>x<gpus>" builds a generic H800-like cluster. *)
      match String.split_on_char ':' s with
      | [ "multirail"; dims ] -> (
          match String.split_on_char 'x' dims with
          | [ a; b ] ->
              T.Builders.h800_scaled ~servers:(int_of_string a)
                ~gpus_per_server:(int_of_string b)
          | _ -> failwith "expected multirail:<servers>x<gpus>")
      | _ ->
          failwith
            (Printf.sprintf
               "unknown topology %s (try a100-16, a100-32, h800-64, h800-512, \
                fig3, fig19, fig20, multirail:SxG)"
               s))

let coll_of_name name ~n ~size =
  let kind =
    match String.lowercase_ascii name with
    | "allgather" | "ag" -> C.AllGather
    | "alltoall" | "a2a" -> C.AllToAll
    | "reducescatter" | "rs" -> C.ReduceScatter
    | "allreduce" | "ar" -> C.AllReduce
    | "broadcast" | "bcast" -> C.Broadcast
    | "reduce" -> C.Reduce
    | "scatter" -> C.Scatter
    | "gather" -> C.Gather
    | s -> failwith ("unknown collective " ^ s)
  in
  C.make kind ~n ~size

let topo_arg =
  Arg.(
    value
    & opt string "a100-16"
    & info [ "t"; "topology" ] ~docv:"TOPO" ~doc:"Topology name.")

let coll_arg =
  Arg.(
    value
    & opt string "allgather"
    & info [ "c"; "collective" ] ~docv:"COLL" ~doc:"Collective kind.")

let size_arg =
  Arg.(
    value
    & opt float 1048576.0
    & info [ "s"; "size" ] ~docv:"BYTES" ~doc:"Data size in bytes.")

let fast_arg =
  Arg.(
    value & flag
    & info [ "fast" ] ~doc:"Skip the MILP refinement (fast solving only).")

let domains_arg =
  Arg.(
    value
    & opt int 1
    & info [ "d"; "domains" ] ~docv:"N"
        ~doc:
          "Parallel solver instances.  Served by a persistent work-stealing \
           domain pool that is spawned once per level and reused across \
           calls.")

let stats_arg =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:
          "Print runtime counters (pool tasks/steals, cache hits/misses, \
           per-stage wall time) after synthesis.")

let print_stats () =
  Format.printf "--- stats ---@.";
  List.iter
    (fun (k, v) ->
      if Float.is_integer v then Format.printf "%-28s %12.0f@." k v
      else Format.printf "%-28s %12.4f@." k v)
    (Syccl_util.Counters.snapshot ())

let topo_cmd =
  let run name =
    let topo = topo_of_name name in
    Format.printf "%a@." T.Topology.pp topo;
    Array.iteri
      (fun d share -> Format.printf "  bandwidth share dim %d: %.3f@." d share)
      (T.Topology.bandwidth_share topo)
  in
  Cmd.v (Cmd.info "topo" ~doc:"Show a topology's dimensions and groups.")
    Term.(const run $ topo_arg)

let synth_cmd =
  let run tname cname size fast domains stats verbose =
    let topo = topo_of_name tname in
    let coll = coll_of_name cname ~n:(T.Topology.num_gpus topo) ~size in
    let config =
      { Syccl.Synthesizer.default_config with fast_only = fast; domains }
    in
    let o = Syccl.Synthesizer.synthesize ~config topo coll in
    Format.printf "collective: %a on %s@." C.pp coll tname;
    Format.printf "synthesis:  %.2fs (search %.2fs, combine %.2fs, solve1 %.2fs, solve2 %.2fs)@."
      o.synth_time o.breakdown.search_s o.breakdown.combine_s
      o.breakdown.solve1_s o.breakdown.solve2_s;
    Format.printf "sketches:   %d explored, %d combinations, winner: %s@."
      o.num_sketches o.num_combos o.chosen;
    Format.printf "predicted:  %.1f us, busbw %.1f GBps@." (o.time *. 1e6) o.busbw;
    List.iter
      (fun s ->
        match S.Validate.covers topo coll s with
        | Ok () -> ()
        | Error e -> Format.printf "WARNING: schedule invalid: %s@." e)
      o.schedules;
    if verbose then
      List.iter (fun s -> Format.printf "%a@." S.Schedule.pp s) o.schedules;
    if stats then print_stats ()
  in
  let verbose =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Dump the schedule.")
  in
  Cmd.v (Cmd.info "synth" ~doc:"Synthesize a schedule and report its performance.")
    Term.(
      const run $ topo_arg $ coll_arg $ size_arg $ fast_arg $ domains_arg
      $ stats_arg $ verbose)

let explain_cmd =
  let run tname cname size fast =
    let topo = topo_of_name tname in
    let coll = coll_of_name cname ~n:(T.Topology.num_gpus topo) ~size in
    let config = { Syccl.Synthesizer.default_config with fast_only = fast } in
    let o = Syccl.Synthesizer.synthesize ~config topo coll in
    print_string (Syccl.Explain.outcome topo o);
    (* Re-derive the winner's first sketch for the readable report. *)
    let kind =
      match coll.C.kind with
      | C.AllToAll | C.Scatter | C.Gather -> `Scatter
      | _ -> `Broadcast
    in
    match Syccl.Search.run topo ~kind ~root:0 with
    | s :: _ ->
        print_newline ();
        print_string (Syccl.Explain.sketch topo s)
    | [] -> ()
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:"Synthesize and print a human-readable sketch/combination report.")
    Term.(const run $ topo_arg $ coll_arg $ size_arg $ fast_arg)

let save_cmd =
  let run tname cname size fast path =
    let topo = topo_of_name tname in
    let coll = coll_of_name cname ~n:(T.Topology.num_gpus topo) ~size in
    let config = { Syccl.Synthesizer.default_config with fast_only = fast } in
    let o = Syccl.Synthesizer.synthesize ~config topo coll in
    List.iteri
      (fun i s ->
        let path =
          if List.length o.schedules = 1 then path
          else Printf.sprintf "%s.phase%d" path i
        in
        let oc = open_out path in
        output_string oc
          (Syccl_util.Json.to_string ~pretty:true (S.Schedule.to_json s));
        close_out oc;
        Format.printf "wrote %s@." path)
      o.schedules
  in
  let path =
    Arg.(required & opt (some string) None
         & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Destination JSON path.")
  in
  Cmd.v
    (Cmd.info "save" ~doc:"Synthesize and persist the schedule as JSON.")
    Term.(const run $ topo_arg $ coll_arg $ size_arg $ fast_arg $ path)

let replay_cmd =
  let run tname path =
    let topo = topo_of_name tname in
    let ic = open_in path in
    let len = in_channel_length ic in
    let text = really_input_string ic len in
    close_in ic;
    let s = S.Schedule.of_json (Syccl_util.Json.of_string text) in
    let report = S.Sim.run topo s in
    Format.printf "replayed %s: %d transfers, completion %.1f us@." path
      (S.Schedule.num_xfers s)
      (report.S.Sim.time *. 1e6);
    Format.printf "%a@." S.Analysis.pp (S.Analysis.analyze topo s)
  in
  let path =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE")
  in
  Cmd.v
    (Cmd.info "replay" ~doc:"Simulate a previously saved JSON schedule.")
    Term.(const run $ topo_arg $ path)

let analyze_cmd =
  let run tname cname size fast timeline =
    let topo = topo_of_name tname in
    let coll = coll_of_name cname ~n:(T.Topology.num_gpus topo) ~size in
    let config = { Syccl.Synthesizer.default_config with fast_only = fast } in
    let o = Syccl.Synthesizer.synthesize ~config topo coll in
    List.iteri
      (fun i s ->
        Format.printf "--- phase %d ---@.%a@." i S.Analysis.pp
          (S.Analysis.analyze topo s);
        if timeline then print_string (S.Analysis.timeline topo s))
      o.schedules
  in
  let timeline =
    Arg.(value & flag & info [ "timeline" ] ~doc:"Print a text Gantt chart.")
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Synthesize, then report traffic per dimension and port utilization.")
    Term.(const run $ topo_arg $ coll_arg $ size_arg $ fast_arg $ timeline)

let profile_cmd =
  let run tname noise =
    let topo = topo_of_name tname in
    let rng = Syccl_util.Xrand.create 7 in
    let probe =
      T.Profiler.simulator_probe
        ?noise:(if noise > 0.0 then Some (rng, noise) else None)
        topo
    in
    List.iter
      (fun (d, (f : T.Profiler.fit)) ->
        Format.printf "dim %d: alpha %.2f us, bandwidth %.1f GBps (residual %.2f us)@."
          d (f.alpha *. 1e6)
          (1.0 /. f.beta /. 1e9)
          (f.residual *. 1e6))
      (T.Profiler.profile ~probe topo)
  in
  let noise =
    Arg.(value & opt float 0.0
         & info [ "noise" ] ~docv:"FRAC" ~doc:"Relative measurement noise.")
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:"Fit per-dimension alpha-beta link parameters from probe sweeps.")
    Term.(const run $ topo_arg $ noise)

let export_cmd =
  let run tname cname size fast output =
    let topo = topo_of_name tname in
    let coll = coll_of_name cname ~n:(T.Topology.num_gpus topo) ~size in
    let config = { Syccl.Synthesizer.default_config with fast_only = fast } in
    let o = Syccl.Synthesizer.synthesize ~config topo coll in
    List.iteri
      (fun i s ->
        let xml = S.Msccl.to_xml ~name:(Printf.sprintf "syccl-%s-%d" cname i) ~coll s in
        match output with
        | None -> print_string xml
        | Some path ->
            let path =
              if List.length o.schedules = 1 then path
              else Printf.sprintf "%s.phase%d" path i
            in
            let oc = open_out path in
            output_string oc xml;
            close_out oc;
            Format.printf "wrote %s (%d transfers)@." path (S.Schedule.num_xfers s))
      o.schedules
  in
  let output =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Write XML here instead of stdout.")
  in
  Cmd.v
    (Cmd.info "export" ~doc:"Synthesize and emit MSCCL-executor XML (one file per phase).")
    Term.(const run $ topo_arg $ coll_arg $ size_arg $ fast_arg $ output)

let sweep_cmd =
  let run tname cname fast domains stats =
    let topo = topo_of_name tname in
    let n = T.Topology.num_gpus topo in
    let config =
      { Syccl.Synthesizer.default_config with fast_only = fast; domains }
    in
    let sizes = [ 1e3; 65536.0; 1048576.0; 1.6777e7; 2.68435e8; 1.073741824e9 ] in
    let colls = List.map (fun size -> coll_of_name cname ~n ~size) sizes in
    (* Sweep the whole series through the pool at once: sub-solve memoization
       makes later sizes mostly cache hits of earlier ones. *)
    let outcomes = Syccl.Synthesizer.synthesize_all ~config topo colls in
    Format.printf "%10s %12s %12s %12s@." "size" "SyCCL" "NCCL" "TECCL";
    List.iter2
      (fun coll (o : Syccl.Synthesizer.outcome) ->
        let nccl = Syccl_baselines.Nccl.busbw topo coll in
        let teccl =
          match
            Syccl_teccl.Teccl.busbw topo coll
              (Syccl_teccl.Teccl.synthesize ~time_budget:60.0 topo coll)
          with
          | Some b -> Printf.sprintf "%.1f" b
          | None -> "timeout"
        in
        Format.printf "%10.0f %12.1f %12.1f %12s@." coll.C.size o.busbw nccl
          teccl)
      colls outcomes;
    if stats then print_stats ()
  in
  Cmd.v (Cmd.info "sweep" ~doc:"Bus bandwidth vs data size, SyCCL vs baselines.")
    Term.(const run $ topo_arg $ coll_arg $ fast_arg $ domains_arg $ stats_arg)

let () =
  let doc = "SyCCL: symmetry-guided collective communication schedule synthesis" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "syccl_cli" ~doc)
          [
            topo_cmd; synth_cmd; sweep_cmd; export_cmd; analyze_cmd;
            profile_cmd; save_cmd; replay_cmd; explain_cmd;
          ]))
