(* Fig. 5 walkthrough: sketches for a 16-GPU Broadcast on the Fig. 3
   multi-rail topology.  Shows the sketch search output — how the original
   demand decomposes into per-dimension, per-stage sub-demands — and which
   combination the synthesizer ends up choosing.

   Run with: dune exec examples/clos_broadcast.exe *)

module Collective = Syccl_collective.Collective
module Builders = Syccl_topology.Builders
module Topology = Syccl_topology.Topology

let () =
  let topo = Builders.fig3 () in
  Format.printf "%a@." Topology.pp topo;

  let sketches = Syccl.Search.run topo ~kind:`Broadcast ~root:0 in
  Format.printf "sketch search found %d non-isomorphic sketches@.@."
    (List.length sketches);
  List.iteri
    (fun i s ->
      if i < 3 then begin
        Format.printf "--- sketch %d (dim workload [%s]) ---@." i
          (String.concat "; "
             (Array.to_list
                (Array.map (Printf.sprintf "%.0f") (Syccl.Sketch.dim_workload topo s))));
        Format.printf "%a@." Syccl.Sketch.pp s;
        List.iter
          (fun (sd : Syccl.Sketch.subdemand) ->
            Format.printf "  R_{%d,%d,%d} = {%s} -> {%s}@." sd.sd_stage sd.sd_dim
              sd.sd_group
              (String.concat "," (List.map string_of_int sd.srcs))
              (String.concat "," (List.map string_of_int sd.dsts)))
          (Syccl.Sketch.subdemands topo s);
        Format.printf "@."
      end)
    sketches;

  let coll = Collective.make ~root:0 Collective.Broadcast ~n:16 ~size:16777216.0 in
  let o = Syccl.Synthesizer.synthesize topo coll in
  Format.printf "chosen combination: %s@." o.chosen;
  Format.printf "broadcast of 16 MB completes in %.1f us (%.1f GBps)@."
    (o.time *. 1e6) o.busbw
