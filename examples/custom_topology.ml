(* Dimension inference from a raw link list (§3.1): describe a cluster as
   GPU-to-GPU reachability with link classes, let SyCCL recover the
   dimension/group structure, and synthesize on it.

   Run with: dune exec examples/custom_topology.exe *)

module Link = Syccl_topology.Link
module Topology = Syccl_topology.Topology
module Infer = Syccl_topology.Infer
module Collective = Syccl_collective.Collective

let () =
  (* 3 servers x 4 GPUs, rail-optimized: NVSwitch edges within servers,
     rail-switch edges between same-index GPUs. *)
  let nv = Link.make ~alpha:1e-6 ~gbps:180.0 in
  let rail = Link.make ~alpha:5e-6 ~gbps:50.0 in
  let gpu s i = (s * 4) + i in
  let edges = ref [] in
  for s = 0 to 2 do
    for i = 0 to 3 do
      for j = i + 1 to 3 do
        edges := (gpu s i, gpu s j, nv) :: !edges
      done
    done
  done;
  for i = 0 to 3 do
    for s = 0 to 2 do
      for s' = s + 1 to 2 do
        edges := (gpu s i, gpu s' i, rail) :: !edges
      done
    done
  done;
  match Infer.infer ~name:"inferred-3x4" ~n:12 !edges with
  | None -> Format.printf "inference failed@."
  | Some (topo, orig_of) ->
      Format.printf "%a@." Topology.pp topo;
      Format.printf "GPU relabeling (new -> original): [%s]@."
        (String.concat "; "
           (Array.to_list (Array.map string_of_int orig_of)));
      let coll = Collective.make Collective.AllGather ~n:12 ~size:33554432.0 in
      let o = Syccl.Synthesizer.synthesize topo coll in
      Format.printf "AllGather 32 MB on the inferred topology: %.1f GBps@."
        o.busbw
