(* Failure adaptation (§8): when a rail degrades (e.g. a flapping link
   capped at 40% speed), a fixed schedule keeps pushing the planned traffic
   through it, while re-running SyCCL rebalances the chunk split toward
   NVLink.

   Run with: dune exec examples/degraded_rail.exe *)

module Topology = Syccl_topology.Topology
module Builders = Syccl_topology.Builders
module Link = Syccl_topology.Link
module Collective = Syccl_collective.Collective
module Sim = Syccl_sim.Sim

let () =
  let healthy = Builders.h800 ~servers:4 in
  let degraded =
    Topology.with_link healthy ~dim:1 (Link.make ~alpha:5.0e-6 ~gbps:20.0)
  in
  let coll = Collective.make Collective.AllGather ~n:32 ~size:2.68435456e8 in
  let config = { Syccl.Synthesizer.default_config with fast_only = true } in

  let before = Syccl.Synthesizer.synthesize ~config healthy coll in
  Format.printf "healthy cluster:   %.1f GBps (%s)@." before.busbw before.chosen;

  (* The old schedule executed on the degraded cluster. *)
  let stale =
    List.fold_left (fun acc s -> acc +. Sim.time degraded s) 0.0 before.schedules
  in
  Format.printf "stale schedule on degraded rails: %.1f GBps@."
    (Collective.busbw coll ~time:stale);

  (* Re-synthesizing adapts the NVLink:rail split to the new 9:1 ratio. *)
  let after = Syccl.Synthesizer.synthesize ~config degraded coll in
  Format.printf "re-synthesized:    %.1f GBps (%s)@." after.busbw after.chosen;
  Format.printf "recovered %.0f%% of the loss@."
    (100.0
    *. (after.busbw -. Collective.busbw coll ~time:stale)
    /. Float.max 1e-9 (before.busbw -. Collective.busbw coll ~time:stale))
