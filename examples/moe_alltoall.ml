(* AlltoAll for Mixture-of-Experts token routing: every GPU exchanges expert
   activations with every other GPU.  On a rail-optimized cluster, direct
   cross-rail sends have to climb to the spine; SyCCL discovers PXN-style
   scatter trees that relay over NVLink onto the destination's rail (§4.3,
   Fig. 15c context).

   Run with: dune exec examples/moe_alltoall.exe *)

module Collective = Syccl_collective.Collective
module Builders = Syccl_topology.Builders

let () =
  let topo = Builders.h800 ~servers:4 in
  let config = { Syccl.Synthesizer.default_config with fast_only = true } in
  Format.printf "AlltoAll on 32 H800 GPUs (MoE token exchange)@.";
  Format.printf "%12s %12s %12s %12s@." "size (B)" "direct" "NCCL PXN" "SyCCL";
  List.iter
    (fun size ->
      let coll = Collective.make Collective.AllToAll ~n:32 ~size in
      let direct =
        Collective.busbw coll
          ~time:
            (Syccl_sim.Sim.time topo (Syccl_baselines.Direct.alltoall topo coll))
      in
      let pxn = Syccl_baselines.Nccl.busbw topo coll in
      let o = Syccl.Synthesizer.synthesize ~config topo coll in
      Format.printf "%12.0f %12.2f %12.2f %12.2f@." size direct pxn o.busbw)
    [ 65536.0; 1048576.0; 16777216.0; 268435456.0 ]
