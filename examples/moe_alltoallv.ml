(* Asymmetric AlltoAllv for skewed MoE routing (§8): a few hot experts
   receive far more tokens than the rest.  The hybrid path carves out the
   symmetric base demand, synthesizes it with the full symmetry pipeline,
   and covers the skewed residual with the greedy heuristic.

   Run with: dune exec examples/moe_alltoallv.exe *)

module Builders = Syccl_topology.Builders
module Vcollective = Syccl_collective.Vcollective
module Xrand = Syccl_util.Xrand

let () =
  let n = 16 in
  let topo = Builders.h800 ~servers:2 in
  let rng = Xrand.create 2025 in
  (* Every pair exchanges 1 MB; GPUs 3 and 11 host hot experts and receive
     an extra 0-7 MB from everyone. *)
  let sizes =
    Array.init n (fun i ->
        Array.init n (fun j ->
            if i = j then 0.0
            else begin
              let base = 1.048576e6 in
              let hot = if j = 3 || j = 11 then Xrand.float rng 7e6 else 0.0 in
              base +. hot
            end))
  in
  let v = Vcollective.make_alltoallv sizes in
  Format.printf "total demand: %.1f MB, symmetric base %.2f MB per pair@."
    (Vcollective.total_bytes v /. 1e6)
    (Vcollective.symmetric_base v /. 1e6);
  List.iter
    (fun mode ->
      let o = Syccl.Vsynth.synthesize ~mode topo v in
      (match Syccl.Vsynth.covers topo v o.Syccl.Vsynth.schedule with
      | Ok () -> ()
      | Error e -> Format.printf "INVALID: %s@." e);
      Format.printf "%-8s completion %.1f us, %.1f GB/s aggregate (synth %.2fs)@."
        (match o.Syccl.Vsynth.mode_used with `Greedy -> "greedy" | `Hybrid -> "hybrid")
        (o.Syccl.Vsynth.time *. 1e6) o.Syccl.Vsynth.algbw o.Syccl.Vsynth.synth_time)
    [ `Greedy; `Hybrid ]
