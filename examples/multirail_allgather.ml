(* The §2.1 motivation, reproduced: on a rail-optimized H800 cluster NCCL's
   fixed ring wastes network bandwidth at large sizes (fixed 7:1 NVLink:NIC
   traffic ratio vs the real 3.6:1 capacity ratio) and pays |V|-1 hops of
   latency at small sizes.  SyCCL synthesizes schedules matched to both.

   Run with: dune exec examples/multirail_allgather.exe *)

module Collective = Syccl_collective.Collective
module Builders = Syccl_topology.Builders

let sizes = [ 1024.0; 65536.0; 1048576.0; 16777216.0; 268435456.0; 1073741824.0 ]

let () =
  let topo = Builders.h800 ~servers:8 in
  let config = { Syccl.Synthesizer.default_config with fast_only = true } in
  Format.printf "AllGather on 64 H800 GPUs (8 servers x 8 GPUs, multi-rail)@.";
  Format.printf "%12s %14s %14s %10s@." "size (B)" "NCCL (GBps)" "SyCCL (GBps)" "speedup";
  List.iter
    (fun size ->
      let coll = Collective.make Collective.AllGather ~n:64 ~size in
      let nccl = Syccl_baselines.Nccl.busbw topo coll in
      let o = Syccl.Synthesizer.synthesize ~config topo coll in
      Format.printf "%12.0f %14.2f %14.2f %9.2fx@." size nccl o.busbw (o.busbw /. nccl))
    sizes;
  Format.printf
    "@.Small sizes: NCCL's 63-hop ring pays latency per hop; SyCCL broadcasts@.\
     along one dimension then fans out.  Large sizes: SyCCL balances NVLink@.\
     and rail traffic to the 3.6:1 capacity ratio.@."
