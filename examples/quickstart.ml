(* Quickstart: synthesize an AllGather schedule for a 16-GPU A100 cluster,
   validate it, and compare against NCCL's fixed ring.

   Run with: dune exec examples/quickstart.exe *)

module Topology = Syccl_topology.Topology
module Builders = Syccl_topology.Builders
module Collective = Syccl_collective.Collective
module Validate = Syccl_sim.Validate

let () =
  (* 1. Describe the cluster: 2 servers x 8 A100 GPUs, NVSwitch inside each
     server, 4x200Gbps NICs per server behind a ToR switch (Fig. 13a). *)
  let topo = Builders.a100 ~servers:2 in
  Format.printf "%a@." Topology.pp topo;

  (* 2. Describe the demand: a 64 MB AllGather over all 16 GPUs. *)
  let coll = Collective.make Collective.AllGather ~n:16 ~size:67.108864e6 in

  (* 3. Synthesize.  SyCCL explores sketches, solves sub-demands per GPU
     group, and picks the best candidate with its built-in simulator. *)
  let outcome = Syccl.Synthesizer.synthesize topo coll in
  Format.printf "synthesized in %.2f s: %d sketches, %d combinations@."
    outcome.synth_time outcome.num_sketches outcome.num_combos;
  Format.printf "winning combination: %s@." outcome.chosen;

  (* 4. The schedule is checked against the demand — every chunk reaches
     every destination, no duplicate deliveries. *)
  List.iter
    (fun s ->
      match Validate.covers topo coll s with
      | Ok () -> Format.printf "schedule valid.@."
      | Error e -> Format.printf "schedule INVALID: %s@." e)
    outcome.schedules;

  (* 5. Compare with NCCL's fixed ring on the same simulator. *)
  let nccl = Syccl_baselines.Nccl.busbw topo coll in
  Format.printf "busbw: SyCCL %.1f GBps vs NCCL ring %.1f GBps (%.2fx)@."
    outcome.busbw nccl (outcome.busbw /. nccl)
