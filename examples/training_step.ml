(* Table-6-style end-to-end experiment: iteration time of GPT3-6.7B and
   Llama3-8B training under data/tensor parallelism, with communication
   schedules from NCCL, TECCL, and SyCCL.

   Run with: dune exec examples/training_step.exe *)

module Workload = Syccl_workload.Workload
module Builders = Syccl_topology.Builders
module Topology = Syccl_topology.Topology

let () =
  let config = { Syccl.Synthesizer.default_config with fast_only = true } in
  Format.printf "%-18s %10s %10s %10s %9s %9s@." "model/parallelism" "NCCL"
    "TECCL" "SyCCL" "vs NCCL" "vs TECCL";
  List.iter
    (fun (w : Workload.t) ->
      let topo =
        if w.num_gpus = 16 then Builders.a100 ~servers:2
        else Builders.a100 ~servers:4
      in
      let nccl coll = Syccl_baselines.Nccl.time topo coll in
      let teccl coll =
        match
          (Syccl_teccl.Teccl.synthesize ~time_budget:30.0 topo coll).schedules
        with
        | Some ss -> Syccl_teccl.Teccl.simulate topo ss
        | None -> nccl coll
      in
      let syccl coll = (Syccl.Synthesizer.synthesize ~config topo coll).time in
      let t_nccl = Workload.iteration_ms w ~comm_time:nccl in
      let t_teccl = Workload.iteration_ms w ~comm_time:teccl in
      let t_syccl = Workload.iteration_ms w ~comm_time:syccl in
      Format.printf "%-18s %10.1f %10.1f %10.1f %8.1f%% %8.1f%%@." w.wname t_nccl
        t_teccl t_syccl
        ((t_nccl -. t_syccl) /. t_nccl *. 100.0)
        ((t_teccl -. t_syccl) /. t_teccl *. 100.0))
    (Workload.all ())
