module Topology = Syccl_topology.Topology

let connecting_dim topo u v =
  let best = ref None in
  for d = 0 to Topology.num_dims topo - 1 do
    if Topology.group_of topo ~dim:d u = Topology.group_of topo ~dim:d v then begin
      let size = Array.length (Topology.gpus_in_group topo ~dim:d ~group:(Topology.group_of topo ~dim:d u)) in
      match !best with
      | Some (_, s) when s <= size -> ()
      | _ -> best := Some (d, size)
    end
  done;
  match !best with Some (d, _) -> d | None -> raise Not_found

let server_dim topo =
  (* The intra-server dimension is the one with the fastest links (NVLink),
     as long as it does not already span the whole cluster. *)
  let best = ref None in
  for d = 0 to Topology.num_dims topo - 1 do
    let size = Array.length (Topology.gpus_in_group topo ~dim:d ~group:0) in
    let covers_all = size = Topology.num_gpus topo in
    let beta = (Topology.dim topo d).Topology.link.Syccl_topology.Link.beta in
    if size >= 2 && not covers_all then
      match !best with
      | Some (_, b) when b <= beta -> ()
      | _ -> best := Some (d, beta)
  done;
  Option.map fst !best

let server_groups topo d =
  Array.init (Topology.groups_count topo ~dim:d) (fun g ->
      Topology.gpus_in_group topo ~dim:d ~group:g)

let rail_structure topo =
  match server_dim topo with
  | None -> None
  | Some sd ->
      let n = Topology.num_gpus topo in
      let rec find_rail d =
        if d >= Topology.num_dims topo then None
        else if d = sd then find_rail (d + 1)
        else begin
          (* Every (server group, rail group) pair must meet in exactly one
             GPU, and rail groups must not swallow whole servers.  "Exactly"
             matters: a rail that merely avoids repeating servers but skips
             some (so a pair meets in zero GPUs) would strand PXN's
             same-server relay lookup. *)
          let servers = Topology.groups_count topo ~dim:sd in
          let ok = ref (Topology.groups_count topo ~dim:d > 1) in
          for g = 0 to Topology.groups_count topo ~dim:d - 1 do
            let members = Topology.gpus_in_group topo ~dim:d ~group:g in
            let seen = Hashtbl.create 8 in
            Array.iter
              (fun v ->
                let s = Topology.group_of topo ~dim:sd v in
                if Hashtbl.mem seen s then ok := false else Hashtbl.replace seen s ())
              members;
            if Hashtbl.length seen <> servers then ok := false
          done;
          ignore n;
          if !ok then Some (sd, d) else find_rail (d + 1)
        end
      in
      find_rail 0
