(** Shared helpers for baseline schedule generators. *)

val connecting_dim : Syccl_topology.Topology.t -> int -> int -> int
(** The most local dimension (smallest group) in which two GPUs are peers.
    Raises [Not_found] if the GPUs are not connected in any dimension. *)

val server_dim : Syccl_topology.Topology.t -> int option
(** The dimension with the smallest groups of size ≥ 2 — the intra-server
    dimension on clustered topologies, [None] on flat ones with a single
    all-GPU dimension. *)

val rail_structure : Syccl_topology.Topology.t -> (int * int) option
(** [(server_dim, rail_dim)] when the topology is rail-optimized: every rail
    group intersects every server group in exactly one GPU (Fig. 13b).
    [None] otherwise (e.g. Clos, Fig. 13a). *)

val server_groups : Syccl_topology.Topology.t -> int -> int array array
(** Groups of a dimension, exposed as arrays of member GPUs. *)
