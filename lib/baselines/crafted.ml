module Sim = Syccl_sim.Sim

let allgather_candidates topo coll =
  let base =
    [
      ("multi-ring", Ring.allgather topo coll);
      ("direct", Direct.allgather topo coll);
    ]
  in
  if Common.server_dim topo = None then base
  else
    base
    @ [
        ("hierarchical", Hierarchical.allgather_rail_first topo coll);
        ("hierarchical-nv-first", Hierarchical.allgather_nv_first topo coll);
      ]

let best_allgather ?(improved = false) ?blocks topo coll =
  let candidates =
    allgather_candidates topo coll
    @
    if improved && Common.server_dim topo <> None then
      [ ("improved-hierarchical", Hierarchical.allgather_improved topo coll) ]
    else []
  in
  match candidates with
  | [] -> invalid_arg "Crafted.best_allgather: no candidates"
  | (n0, s0) :: rest ->
      List.fold_left
        (fun (bn, bs, bt) (name, s) ->
          let t = Sim.time ?blocks topo s in
          if t < bt then (name, s, t) else (bn, bs, bt))
        (n0, s0, Sim.time ?blocks topo s0)
        rest
