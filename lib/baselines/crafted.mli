(** Expert hand-crafted schedules (Appendix C): for every collective size
    the best of multi-ring, direct, and fused hierarchical; the "improved"
    set adds the Fig. 22 two-holder hierarchical variant. *)

val allgather_candidates :
  Syccl_topology.Topology.t ->
  Syccl_collective.Collective.t ->
  (string * Syccl_sim.Schedule.t) list
(** Named candidates applicable to the topology. *)

val best_allgather :
  ?improved:bool ->
  ?blocks:int ->
  Syccl_topology.Topology.t ->
  Syccl_collective.Collective.t ->
  string * Syccl_sim.Schedule.t * float
(** The fastest candidate (name, schedule, simulated time).  [improved]
    includes the Fig. 22 variant (default false, matching Fig. 21). *)
