module Topology = Syccl_topology.Topology
module Collective = Syccl_collective.Collective
module Schedule = Syccl_sim.Schedule

(* Breadth-first relay tree from [src] covering [wanted], for topologies
   where some destination is not a direct peer of the source (rail-optimized
   clusters without a spine dimension).  The BFS tree is pruned to the
   branches that lead to a wanted GPU, so relays appear only where needed;
   every node has one parent, so no GPU receives a chunk twice.  Edges come
   out in (depth, gpu) order — senders always precede their subtrees. *)
let relay_edges topo ~src ~wanted =
  let n = Topology.num_gpus topo in
  let parent = Array.make n (-1) in
  let depth = Array.make n 0 in
  let visited = Array.make n false in
  visited.(src) <- true;
  let q = Queue.create () in
  Queue.add src q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    for d = 0 to Topology.num_dims topo - 1 do
      Array.iter
        (fun v ->
          if not visited.(v) then begin
            visited.(v) <- true;
            parent.(v) <- u;
            depth.(v) <- depth.(u) + 1;
            Queue.add v q
          end)
        (Topology.peers topo ~dim:d u)
    done
  done;
  let needed = Array.make n false in
  List.iter
    (fun v ->
      if not visited.(v) then raise Not_found;
      let rec mark v =
        if v <> src && not needed.(v) then begin
          needed.(v) <- true;
          mark parent.(v)
        end
      in
      mark v)
    wanted;
  let edges = ref [] in
  for v = n - 1 downto 0 do
    if needed.(v) then edges := (parent.(v), v, depth.(v)) :: !edges
  done;
  List.stable_sort (fun (_, _, a) (_, _, b) -> compare a b) !edges

(* Spread each source's sends across destinations in rotated order so all
   ingress ports fill evenly from the first instant.  Destinations that are
   not direct peers of the source are reached through a pruned BFS relay
   tree instead (the direct one-hop schedule is kept bit-for-bit whenever
   it exists). *)
let from_chunks topo metas =
  let xfers = ref [] in
  Array.iteri
    (fun c (m : Schedule.chunk_meta) ->
      match m.initial with
      | [ src ] ->
          let dsts = List.filter (fun d -> d <> src) m.wanted in
          let direct =
            List.for_all
              (fun dst ->
                match Common.connecting_dim topo src dst with
                | (_ : int) -> true
                | exception Not_found -> false)
              dsts
          in
          if direct then
            List.iteri
              (fun i dst ->
                xfers :=
                  {
                    Schedule.chunk = c;
                    src;
                    dst;
                    dim = Common.connecting_dim topo src dst;
                    prio = i;
                  }
                  :: !xfers)
              dsts
          else
            List.iter
              (fun (u, v, d) ->
                xfers :=
                  {
                    Schedule.chunk = c;
                    src = u;
                    dst = v;
                    dim = Common.connecting_dim topo u v;
                    prio = d;
                  }
                  :: !xfers)
              (relay_edges topo ~src ~wanted:dsts)
      | _ -> invalid_arg "Direct.from_chunks: single source required")
    metas;
  { Schedule.chunks = metas; xfers = List.rev !xfers }

let rotated src dsts =
  (* Rotate the destination list so GPU [src] starts with its successor. *)
  let arr = Array.of_list dsts in
  let n = Array.length arr in
  List.init n (fun i -> arr.((i + src) mod n))

let gather_metas coll =
  Array.of_list
    (List.map
       (fun ch ->
         match ch with
         | Collective.Gather_chunk { id; size; src; dsts } ->
             {
               Schedule.size;
               mode = `Gather;
               initial = [ src ];
               wanted = rotated src dsts;
               tag = id;
             }
         | Collective.Reduce_chunk _ ->
             invalid_arg "Direct: reduce collective must be mirrored")
       (Collective.chunks coll))

let allgather topo coll =
  assert (coll.Collective.kind = Collective.AllGather);
  from_chunks topo (gather_metas coll)

let alltoall topo coll =
  assert (coll.Collective.kind = Collective.AllToAll);
  from_chunks topo (gather_metas coll)

let broadcast topo coll =
  assert (coll.Collective.kind = Collective.Broadcast);
  from_chunks topo (gather_metas coll)

let reducescatter topo coll =
  assert (coll.Collective.kind = Collective.ReduceScatter);
  let forward =
    Collective.make Collective.AllGather ~n:coll.Collective.n ~size:coll.Collective.size
  in
  Schedule.reverse (allgather topo forward)

let reduce topo coll =
  assert (coll.Collective.kind = Collective.Reduce);
  let forward =
    Collective.make ~root:coll.Collective.root Collective.Broadcast
      ~n:coll.Collective.n ~size:coll.Collective.size
  in
  Schedule.reverse (broadcast topo forward)
