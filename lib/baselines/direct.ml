module Topology = Syccl_topology.Topology
module Collective = Syccl_collective.Collective
module Schedule = Syccl_sim.Schedule

(* Spread each source's sends across destinations in rotated order so all
   ingress ports fill evenly from the first instant. *)
let from_chunks topo metas =
  let xfers = ref [] in
  Array.iteri
    (fun c (m : Schedule.chunk_meta) ->
      match m.initial with
      | [ src ] ->
          List.iteri
            (fun i dst ->
              xfers :=
                {
                  Schedule.chunk = c;
                  src;
                  dst;
                  dim = Common.connecting_dim topo src dst;
                  prio = i;
                }
                :: !xfers)
            (List.filter (fun d -> d <> src) m.wanted)
      | _ -> invalid_arg "Direct.from_chunks: single source required")
    metas;
  { Schedule.chunks = metas; xfers = List.rev !xfers }

let rotated src dsts =
  (* Rotate the destination list so GPU [src] starts with its successor. *)
  let arr = Array.of_list dsts in
  let n = Array.length arr in
  List.init n (fun i -> arr.((i + src) mod n))

let gather_metas coll =
  Array.of_list
    (List.map
       (fun ch ->
         match ch with
         | Collective.Gather_chunk { id; size; src; dsts } ->
             {
               Schedule.size;
               mode = `Gather;
               initial = [ src ];
               wanted = rotated src dsts;
               tag = id;
             }
         | Collective.Reduce_chunk _ ->
             invalid_arg "Direct: reduce collective must be mirrored")
       (Collective.chunks coll))

let allgather topo coll =
  assert (coll.Collective.kind = Collective.AllGather);
  from_chunks topo (gather_metas coll)

let alltoall topo coll =
  assert (coll.Collective.kind = Collective.AllToAll);
  from_chunks topo (gather_metas coll)

let broadcast topo coll =
  assert (coll.Collective.kind = Collective.Broadcast);
  from_chunks topo (gather_metas coll)

let reducescatter topo coll =
  assert (coll.Collective.kind = Collective.ReduceScatter);
  let forward =
    Collective.make Collective.AllGather ~n:coll.Collective.n ~size:coll.Collective.size
  in
  Schedule.reverse (allgather topo forward)
