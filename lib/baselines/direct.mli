(** One-hop direct schedules: every chunk is sent straight from its source
    to each destination over the most local connecting dimension.  Minimal
    latency, maximal source-port serialization — the small-size schedule of
    Appendix C.

    On topologies where a destination shares no dimension with the source
    (rail-optimized clusters without a spine), the chunk is routed through
    a pruned breadth-first relay tree instead of failing; the one-hop
    schedule is kept bit-for-bit whenever it exists. *)

val allgather :
  Syccl_topology.Topology.t ->
  Syccl_collective.Collective.t ->
  Syccl_sim.Schedule.t

val alltoall :
  Syccl_topology.Topology.t ->
  Syccl_collective.Collective.t ->
  Syccl_sim.Schedule.t

val broadcast :
  Syccl_topology.Topology.t ->
  Syccl_collective.Collective.t ->
  Syccl_sim.Schedule.t

val reducescatter :
  Syccl_topology.Topology.t ->
  Syccl_collective.Collective.t ->
  Syccl_sim.Schedule.t

val reduce :
  Syccl_topology.Topology.t ->
  Syccl_collective.Collective.t ->
  Syccl_sim.Schedule.t
(** Mirror of {!broadcast}: every contribution flows down the (relayed,
    where necessary) broadcast tree in reverse. *)

val gather_metas : Syccl_collective.Collective.t -> Syccl_sim.Schedule.chunk_meta array
(** The collective's gather chunks as schedule metadata (destinations rotated
    per source for even port fill).  Raises on reduce-family collectives. *)

val from_chunks :
  Syccl_topology.Topology.t ->
  Syccl_sim.Schedule.chunk_meta array ->
  Syccl_sim.Schedule.t
(** One-hop sends for arbitrary single-source gather chunks. *)
