module Topology = Syccl_topology.Topology
module Collective = Syccl_collective.Collective
module Schedule = Syccl_sim.Schedule
module Validate = Syccl_sim.Validate

(* Precomputed-baseline rung of the degradation ladder.

   Unlike Nccl.schedule, which simulates candidates to pick the fastest,
   this module is deliberately simulator-free: the fallback must keep
   working when the simulator itself is the failing component (the
   "sim.crash" fault point, or a deadline too tight to simulate).  The
   per-kind choice is therefore fixed — the structurally robust generator
   first, Direct as the last resort — and each candidate is accepted only
   after Validate.validate passes, so a generator bug can never leak an
   invalid schedule out of the ladder's last rung. *)

let candidates topo (coll : Collective.t) =
  let clustered = Common.server_dim topo <> None in
  match coll.Collective.kind with
  | Collective.AllGather ->
      (* Rail-first hierarchical wants a clustered, rail-connected
         topology; ring handles anything with a Hamiltonian server order;
         direct always exists. *)
      (if clustered then
         [ (fun () -> [ Hierarchical.allgather_rail_first topo coll ]) ]
       else [])
      @ [
          (fun () -> [ Ring.allgather topo coll ]);
          (fun () -> [ Direct.allgather topo coll ]);
        ]
  | Collective.ReduceScatter ->
      [
        (fun () -> [ Ring.reducescatter topo coll ]);
        (fun () -> [ Direct.reducescatter topo coll ]);
      ]
  | Collective.AllReduce ->
      let n = coll.Collective.n and size = coll.Collective.size in
      let rs = Collective.make Collective.ReduceScatter ~n ~size in
      let ag = Collective.make Collective.AllGather ~n ~size in
      [
        (fun () -> [ Ring.reducescatter topo rs; Ring.allgather topo ag ]);
        (fun () -> [ Direct.reducescatter topo rs; Direct.allgather topo ag ]);
      ]
  | Collective.AllToAll ->
      (if Common.rail_structure topo <> None then
         [ (fun () -> [ Pxn.alltoall topo coll ]) ]
       else [])
      @ [ (fun () -> [ Direct.alltoall topo coll ]) ]
  | Collective.Broadcast ->
      [
        (fun () -> [ Tree.broadcast topo coll ]);
        (fun () -> [ Direct.broadcast topo coll ]);
      ]
  | Collective.Reduce ->
      [
        (fun () -> [ Tree.reduce topo coll ]);
        (* Routed mirror of the direct broadcast: survives topologies where
           the binary tree's heap edges do not exist (rail-optimized
           clusters without a spine). *)
        (fun () -> [ Direct.reduce topo coll ]);
      ]
  | Collective.SendRecv | Collective.Scatter | Collective.Gather ->
      [ (fun () -> Nccl.schedule topo coll) ]
(* SendRecv/Scatter/Gather take Nccl.schedule's single-candidate paths,
   which involve no simulation. *)

let schedule topo coll =
  let rec first_valid last_err = function
    | [] ->
        failwith
          (Printf.sprintf "Fallback.schedule: no valid baseline (%s)"
             (Option.value last_err ~default:"no candidate applies"))
    | gen :: rest -> (
        match gen () with
        | exception e -> first_valid (Some (Printexc.to_string e)) rest
        | phases -> (
            match Validate.validate topo coll phases with
            | Ok () -> phases
            | Error e -> first_valid (Some e) rest))
  in
  first_valid None (candidates topo coll)
