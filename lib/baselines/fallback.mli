(** Simulator-free baseline schedules for the degradation ladder.

    The synthesizer's last rung: when the deadline leaves no room to
    synthesize (or synthesis crashed), return a precomputed baseline
    schedule instead of failing.  Candidates are fixed per collective kind
    — hierarchical/ring first, one-hop direct as the final resort — and
    {e no simulation} is involved in choosing between them (unlike
    {!Nccl.schedule}), so the fallback keeps working when the simulator is
    the faulty or too-slow component.  Every candidate is accepted only
    after {!Syccl_sim.Validate.validate} passes. *)

val schedule :
  Syccl_topology.Topology.t ->
  Syccl_collective.Collective.t ->
  Syccl_sim.Schedule.t list
(** One validated schedule per collective phase.  Raises [Failure] only if
    every applicable generator fails validation — which indicates a
    generator bug, not a property of the input. *)
