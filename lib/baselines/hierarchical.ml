module Topology = Syccl_topology.Topology
module Collective = Syccl_collective.Collective
module Schedule = Syccl_sim.Schedule

let require_server_dim topo =
  match Common.server_dim topo with
  | Some sd -> sd
  | None -> invalid_arg "Hierarchical: topology has no server dimension"

let allgather_metas coll =
  let n = coll.Collective.n in
  let s = Collective.chunk_size coll in
  Array.init n (fun src ->
      {
        Schedule.size = s;
        mode = `Gather;
        initial = [ src ];
        wanted = List.filter (fun v -> v <> src) (List.init n (fun i -> i));
        tag = src;
      })

(* Position of a GPU inside its server group and the member at a position. *)
let in_server topo sd v =
  let g = Topology.group_of topo ~dim:sd v in
  let members = Topology.gpus_in_group topo ~dim:sd ~group:g in
  let pos = ref 0 in
  Array.iteri (fun i u -> if u = v then pos := i) members;
  (g, !pos, members)

let same_index_peers topo sd v =
  (* The GPU with the same intra-server position in every other server. *)
  let _, pos, _ = in_server topo sd v in
  let res = ref [] in
  for g = Topology.groups_count topo ~dim:sd - 1 downto 0 do
    let members = Topology.gpus_in_group topo ~dim:sd ~group:g in
    if members.(pos) <> v then res := members.(pos) :: !res
  done;
  !res

let allgather_rail_first topo coll =
  assert (coll.Collective.kind = Collective.AllGather);
  let sd = require_server_dim topo in
  let metas = allgather_metas coll in
  let xfers = ref [] in
  Array.iteri
    (fun src _ ->
      let peers = same_index_peers topo sd src in
      List.iteri
        (fun i p ->
          xfers :=
            { Schedule.chunk = src; src; dst = p; dim = Common.connecting_dim topo src p; prio = i }
            :: !xfers)
        peers;
      (* Spread inside every server from the same-index holder. *)
      List.iter
        (fun holder ->
          let _, _, members = in_server topo sd holder in
          Array.iteri
            (fun i v ->
              if v <> holder then
                xfers :=
                  {
                    Schedule.chunk = src;
                    src = holder;
                    dst = v;
                    dim = sd;
                    prio = 100 + i;
                  }
                  :: !xfers)
            members)
        (src :: peers))
    metas;
  { Schedule.chunks = metas; xfers = List.rev !xfers }

let allgather_nv_first topo coll =
  assert (coll.Collective.kind = Collective.AllGather);
  let sd = require_server_dim topo in
  let metas = allgather_metas coll in
  let xfers = ref [] in
  Array.iteri
    (fun src _ ->
      let _, _, members = in_server topo sd src in
      (* Intra-server spread from the source. *)
      Array.iteri
        (fun i v ->
          if v <> src then
            xfers :=
              { Schedule.chunk = src; src; dst = v; dim = sd; prio = i } :: !xfers)
        members;
      (* Every server member then forwards along its own network path. *)
      Array.iter
        (fun relay ->
          List.iteri
            (fun i p ->
              xfers :=
                {
                  Schedule.chunk = src;
                  src = relay;
                  dst = p;
                  dim = Common.connecting_dim topo relay p;
                  prio = 100 + i;
                }
                :: !xfers)
            (same_index_peers topo sd relay))
        members)
    metas;
  { Schedule.chunks = metas; xfers = List.rev !xfers }

let allgather_improved topo coll =
  assert (coll.Collective.kind = Collective.AllGather);
  let sd = require_server_dim topo in
  let g = Array.length (Topology.gpus_in_group topo ~dim:sd ~group:0) in
  if g < 2 then invalid_arg "Hierarchical.allgather_improved: needs >= 2 GPUs per server";
  let metas = allgather_metas coll in
  let xfers = ref [] in
  Array.iteri
    (fun src _ ->
      let _, pos, members = in_server topo sd src in
      let partner = members.((pos + (g / 2)) mod g) in
      (* Stage 0: copy to the partner inside the source server. *)
      xfers :=
        { Schedule.chunk = src; src; dst = partner; dim = sd; prio = 0 } :: !xfers;
      (* Stage 1: both holders fan out along their same-index paths. *)
      let holders = [ src; partner ] in
      List.iter
        (fun h ->
          List.iteri
            (fun i p ->
              xfers :=
                {
                  Schedule.chunk = src;
                  src = h;
                  dst = p;
                  dim = Common.connecting_dim topo h p;
                  prio = 10 + i;
                }
                :: !xfers)
            (same_index_peers topo sd h))
        holders;
      (* Stage 2: in every server the two holders cover the rest, splitting
         the remaining positions between them. *)
      for srv = 0 to Topology.groups_count topo ~dim:sd - 1 do
        let m = Topology.gpus_in_group topo ~dim:sd ~group:srv in
        let h1 = m.(pos) and h2 = m.((pos + (g / 2)) mod g) in
        let rest =
          List.filter (fun v -> v <> h1 && v <> h2) (Array.to_list m)
        in
        List.iteri
          (fun i v ->
            let holder = if i mod 2 = 0 then h1 else h2 in
            xfers :=
              { Schedule.chunk = src; src = holder; dst = v; dim = sd; prio = 100 + i }
              :: !xfers)
          rest
      done)
    metas;
  { Schedule.chunks = metas; xfers = List.rev !xfers }
