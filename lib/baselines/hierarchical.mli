(** Hand-crafted hierarchical AllGather schedules (Appendix C).

    All three require a clustered topology (a server dimension); the
    rail-first and improved variants additionally want a same-index network
    path between servers, which [Common.connecting_dim] provides on both
    multi-rail and Clos clusters. *)

val allgather_rail_first :
  Syccl_topology.Topology.t ->
  Syccl_collective.Collective.t ->
  Syccl_sim.Schedule.t
(** Each chunk first goes to the same-index GPU of every other server over
    the network, then spreads inside each server over NVLink — the
    conventional hierarchical schedule, fused into one kernel. *)

val allgather_nv_first :
  Syccl_topology.Topology.t ->
  Syccl_collective.Collective.t ->
  Syccl_sim.Schedule.t
(** Intra-server AllGather first, then every GPU forwards the whole server's
    data along its own network path — simple but network-redundant. *)

val allgather_improved :
  Syccl_topology.Topology.t ->
  Syccl_collective.Collective.t ->
  Syccl_sim.Schedule.t
(** The Fig. 22 schedule: the chunk is first copied to one partner GPU in
    the source server; both holders fan it out along their rails; the two
    holders in every server then cover the remaining six GPUs with three
    NVLink sends each. *)
