module Topology = Syccl_topology.Topology
module Collective = Syccl_collective.Collective
module Schedule = Syccl_sim.Schedule
module Sim = Syccl_sim.Sim
module Validate = Syccl_sim.Validate

let phase_time ?blocks topo phases =
  List.fold_left (fun acc s -> acc +. Sim.time ?blocks topo s) 0.0 phases

let best ?blocks topo candidates =
  match candidates with
  | [] -> invalid_arg "Nccl.best: no candidates"
  | first :: rest ->
      let score c = phase_time ?blocks topo c in
      List.fold_left
        (fun (bc, bt) c ->
          let t = score c in
          if t < bt then (c, t) else (bc, bt))
        (first, score first) rest
      |> fst

(* The tuner model: build every candidate algorithm, keep the ones that
   actually apply to this topology (a ring needs consecutive servers to be
   connected; a tree needs its heap edges to exist — on rail-optimized
   clusters without a spine they may not) AND pass strict demand
   validation, then pick the fastest by simulation.  A real tuner never
   serves an algorithm whose communication pattern the fabric cannot
   express or that computes the wrong thing. *)
let best_valid ?blocks topo coll candidates =
  let viable =
    List.filter_map
      (fun gen ->
        match gen () with
        | exception _ -> None
        | phases -> (
            match Validate.validate topo coll phases with
            | Ok () -> Some phases
            | Error _ -> None))
      candidates
  in
  match viable with
  | [] ->
      failwith
        (Printf.sprintf "Nccl.schedule: no applicable algorithm for %s"
           (Collective.kind_name coll.Collective.kind))
  | [ only ] -> only (* simulator-free when there is nothing to tune *)
  | _ -> best ?blocks topo viable

(* Kinds NCCL does not tune keep their fixed preference order — the first
   candidate that builds and validates wins, with no simulation (the
   fallback ladder leans on these paths staying simulator-free). *)
let first_valid topo coll candidates =
  let rec go = function
    | [] ->
        failwith
          (Printf.sprintf "Nccl.schedule: no applicable algorithm for %s"
             (Collective.kind_name coll.Collective.kind))
    | gen :: rest -> (
        match gen () with
        | exception _ -> go rest
        | phases -> (
            match Validate.validate topo coll phases with
            | Ok () -> phases
            | Error _ -> go rest))
  in
  go candidates

let schedule topo coll =
  match coll.Collective.kind with
  | Collective.AllGather ->
      first_valid topo coll
        [
          (fun () -> [ Ring.allgather topo coll ]);
          (fun () -> [ Direct.allgather topo coll ]);
        ]
  | Collective.ReduceScatter ->
      first_valid topo coll
        [
          (fun () -> [ Ring.reducescatter topo coll ]);
          (fun () -> [ Direct.reducescatter topo coll ]);
        ]
  | Collective.AllToAll ->
      first_valid topo coll
        ((if Common.rail_structure topo <> None then
            [ (fun () -> [ Pxn.alltoall topo coll ]) ]
          else [])
        @ [ (fun () -> [ Direct.alltoall topo coll ]) ])
  | Collective.Broadcast ->
      best_valid topo coll
        [
          (fun () -> [ Tree.broadcast topo coll ]);
          (fun () -> [ Direct.broadcast topo coll ]);
        ]
  | Collective.Reduce ->
      first_valid topo coll
        [
          (fun () -> [ Tree.reduce topo coll ]);
          (fun () -> [ Direct.reduce topo coll ]);
        ]
  | Collective.AllReduce ->
      let n = coll.Collective.n and size = coll.Collective.size in
      let rs = Collective.make Collective.ReduceScatter ~n ~size in
      let ag = Collective.make Collective.AllGather ~n ~size in
      best_valid topo coll
        [
          (fun () -> [ Ring.reducescatter topo rs; Ring.allgather topo ag ]);
          (* Reduce-then-broadcast is a real NCCL algorithm, but it cannot
             express the ReduceScatter+AllGather phase contract every
             AllReduce outcome is validated against — the filter screens
             it out rather than letting simulated speed pick an invalid
             schedule (sub-byte sizes used to lose this race). *)
          (fun () -> Tree.allreduce_phases topo coll);
          (fun () ->
            [ Direct.reducescatter topo rs; Direct.allgather topo ag ]);
        ]
  | Collective.SendRecv ->
      (* Routed through Direct so a peer pair with no shared dimension
         relays instead of failing. *)
      [
        Direct.from_chunks topo
          [|
            {
              Schedule.size = coll.Collective.size;
              mode = `Gather;
              initial = [ coll.Collective.root ];
              wanted = [ coll.Collective.peer ];
              tag = 0;
            };
          |];
      ]
  | Collective.Scatter | Collective.Gather ->
      (* Gather is built forward from its own demand chunks (each source
         one-hop or relayed to the root), not by reversing a Scatter:
         reversal flips the chunks to `Reduce mode, which computes a
         reduction where the demand asks for a concatenation. *)
      [ Direct.from_chunks topo (Direct.gather_metas coll) ]

let time ?blocks topo coll = phase_time ?blocks topo (schedule topo coll)

let busbw ?blocks topo coll = Collective.busbw coll ~time:(time ?blocks topo coll)
