module Topology = Syccl_topology.Topology
module Collective = Syccl_collective.Collective
module Schedule = Syccl_sim.Schedule
module Sim = Syccl_sim.Sim

let phase_time ?blocks topo phases =
  List.fold_left (fun acc s -> acc +. Sim.time ?blocks topo s) 0.0 phases

let best ?blocks topo candidates =
  match candidates with
  | [] -> invalid_arg "Nccl.best: no candidates"
  | first :: rest ->
      let score c = phase_time ?blocks topo c in
      List.fold_left
        (fun (bc, bt) c ->
          let t = score c in
          if t < bt then (c, t) else (bc, bt))
        (first, score first) rest
      |> fst

let schedule topo coll =
  match coll.Collective.kind with
  | Collective.AllGather -> [ Ring.allgather topo coll ]
  | Collective.ReduceScatter -> [ Ring.reducescatter topo coll ]
  | Collective.AllToAll ->
      if Common.rail_structure topo <> None then [ Pxn.alltoall topo coll ]
      else [ Direct.alltoall topo coll ]
  | Collective.Broadcast ->
      best topo [ [ Tree.broadcast topo coll ]; [ Direct.broadcast topo coll ] ]
  | Collective.Reduce -> [ Tree.reduce topo coll ]
  | Collective.AllReduce ->
      let n = coll.Collective.n and size = coll.Collective.size in
      let rs = Collective.make Collective.ReduceScatter ~n ~size in
      let ag = Collective.make Collective.AllGather ~n ~size in
      best topo
        [
          [ Ring.reducescatter topo rs; Ring.allgather topo ag ];
          Tree.allreduce_phases topo coll;
        ]
  | Collective.SendRecv ->
      let src = coll.Collective.root and dst = coll.Collective.peer in
      [
        {
          Schedule.chunks =
            [|
              {
                Schedule.size = coll.Collective.size;
                mode = `Gather;
                initial = [ src ];
                wanted = [ dst ];
                tag = 0;
              };
            |];
          xfers =
            [
              {
                Schedule.chunk = 0;
                src;
                dst;
                dim = Common.connecting_dim topo src dst;
                prio = 0;
              };
            ];
        };
      ]
  | Collective.Scatter -> [ Direct.from_chunks topo (Direct.gather_metas coll) ]
  | Collective.Gather ->
      let forward =
        Collective.make ~root:coll.Collective.root Collective.Scatter
          ~n:coll.Collective.n ~size:coll.Collective.size
      in
      [ Schedule.reverse (Direct.from_chunks topo (Direct.gather_metas forward)) ]

let time ?blocks topo coll = phase_time ?blocks topo (schedule topo coll)

let busbw ?blocks topo coll = Collective.busbw coll ~time:(time ?blocks topo coll)
