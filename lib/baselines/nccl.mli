(** The NCCL baseline: fixed schedules with NCCL's algorithm selection
    (rings for the AllGather family, PXN or direct AlltoAll, ring-vs-tree
    tuning for AllReduce and Broadcast).

    The paper compares against "NCCL with its default configuration (NCCL
    automatically determines schedules and parameters)" (§7.5); we model the
    tuner by simulating the candidate schedules and keeping the fastest. *)

val schedule :
  Syccl_topology.Topology.t ->
  Syccl_collective.Collective.t ->
  Syccl_sim.Schedule.t list
(** One schedule per phase of the collective. *)

val time :
  ?blocks:int ->
  Syccl_topology.Topology.t ->
  Syccl_collective.Collective.t ->
  float
(** Simulated completion time of {!schedule}. *)

val busbw :
  ?blocks:int ->
  Syccl_topology.Topology.t ->
  Syccl_collective.Collective.t ->
  float
(** Simulated bus bandwidth of {!schedule}. *)
