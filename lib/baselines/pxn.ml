module Topology = Syccl_topology.Topology
module Collective = Syccl_collective.Collective
module Schedule = Syccl_sim.Schedule

let alltoall topo coll =
  assert (coll.Collective.kind = Collective.AllToAll);
  match Common.rail_structure topo with
  | None -> invalid_arg "Pxn.alltoall: topology is not rail-optimized"
  | Some (sd, rd) ->
      let metas =
        Array.of_list
          (List.map
             (fun ch ->
               match ch with
               | Collective.Gather_chunk { id; size; src; dsts } ->
                   { Schedule.size; mode = `Gather; initial = [ src ]; wanted = dsts; tag = id }
               | Collective.Reduce_chunk _ -> assert false)
             (Collective.chunks coll))
      in
      let xfers = ref [] in
      Array.iteri
        (fun c (m : Schedule.chunk_meta) ->
          let src = List.hd m.initial in
          let dst = List.hd m.wanted in
          let same_server =
            Topology.group_of topo ~dim:sd src = Topology.group_of topo ~dim:sd dst
          in
          let same_rail =
            Topology.group_of topo ~dim:rd src = Topology.group_of topo ~dim:rd dst
          in
          if same_server then
            xfers := { Schedule.chunk = c; src; dst; dim = sd; prio = 0 } :: !xfers
          else if same_rail then
            xfers := { Schedule.chunk = c; src; dst; dim = rd; prio = 0 } :: !xfers
          else begin
            (* Relay through the source-server GPU on the destination rail. *)
            let server = Topology.gpus_in_group topo ~dim:sd
                ~group:(Topology.group_of topo ~dim:sd src)
            in
            let dst_rail = Topology.group_of topo ~dim:rd dst in
            let relay =
              Array.to_list server
              |> List.find (fun v -> Topology.group_of topo ~dim:rd v = dst_rail)
            in
            xfers :=
              { Schedule.chunk = c; src; dst = relay; dim = sd; prio = 0 }
              :: { Schedule.chunk = c; src = relay; dst; dim = rd; prio = 1 }
              :: !xfers
          end)
        metas;
      { Schedule.chunks = metas; xfers = List.rev !xfers }
