(** NCCL's PXN (PCI × NVLink) AlltoAll for rail-optimized topologies: a
    chunk bound for a different server and a different rail hops over NVLink
    to the GPU on the destination's rail first, then crosses the network
    on that rail — avoiding the spine entirely. *)

val alltoall :
  Syccl_topology.Topology.t ->
  Syccl_collective.Collective.t ->
  Syccl_sim.Schedule.t
(** Raises [Invalid_argument] if the topology has no rail structure; use
    {!Direct.alltoall} there. *)
