module Topology = Syccl_topology.Topology
module Collective = Syccl_collective.Collective
module Schedule = Syccl_sim.Schedule

let ring_order topo ~channel =
  match Common.server_dim topo with
  | None ->
      let n = Topology.num_gpus topo in
      Array.init n (fun i -> (i + channel) mod n)
  | Some sd ->
      let groups = Common.server_groups topo sd in
      let order = ref [] in
      for gi = Array.length groups - 1 downto 0 do
        let members = groups.(gi) in
        let g = Array.length members in
        for i = g - 1 downto 0 do
          order := members.((i + channel) mod g) :: !order
        done
      done;
      Array.of_list !order

let default_channels topo =
  match Common.server_dim topo with
  | None -> 2
  | Some sd -> Array.length (Topology.gpus_in_group topo ~dim:sd ~group:0)

let allgather ?channels topo coll =
  assert (coll.Collective.kind = Collective.AllGather);
  let n = coll.Collective.n in
  assert (n = Topology.num_gpus topo);
  let channels = match channels with Some c -> c | None -> default_channels topo in
  let s = Collective.chunk_size coll /. float_of_int channels in
  let per_channel ch =
    let order = ring_order topo ~channel:ch in
    let pos = Array.make n 0 in
    Array.iteri (fun i v -> pos.(v) <- i) order;
    (* Chunk originating at GPU [src] walks the ring for n-1 hops. *)
    let chunks =
      Array.init n (fun src ->
          {
            Schedule.size = s;
            mode = `Gather;
            initial = [ src ];
            wanted = List.filter (fun v -> v <> src) (List.init n (fun i -> i));
            tag = src;
          })
    in
    let xfers = ref [] in
    for src = 0 to n - 1 do
      for hop = 0 to n - 2 do
        let u = order.((pos.(src) + hop) mod n) in
        let v = order.((pos.(src) + hop + 1) mod n) in
        xfers :=
          {
            Schedule.chunk = src;
            src = u;
            dst = v;
            dim = Common.connecting_dim topo u v;
            prio = hop;
          }
          :: !xfers
      done
    done;
    { Schedule.chunks; xfers = List.rev !xfers }
  in
  Schedule.union (List.init channels per_channel)

let reducescatter ?channels topo coll =
  assert (coll.Collective.kind = Collective.ReduceScatter);
  let forward = Collective.make Collective.AllGather ~n:coll.Collective.n ~size:coll.Collective.size in
  Schedule.reverse (allgather ?channels topo forward)
