(** NCCL's fixed ring schedules (Fig. 2): GPUs within each server are chained
    and the chains are linked into a complete ring.  Multiple channels build
    rotated rings so every GPU's NIC carries boundary traffic, as NCCL does
    with its parallel channels. *)

val ring_order : Syccl_topology.Topology.t -> channel:int -> int array
(** GPU visiting order of one ring: servers in index order, members rotated
    by [channel] inside each server. *)

val allgather :
  ?channels:int ->
  Syccl_topology.Topology.t ->
  Syccl_collective.Collective.t ->
  Syccl_sim.Schedule.t
(** Ring AllGather: every chunk travels [n-1] hops around each ring, split
    evenly over [channels] rings (default: GPUs per server, or 2 on flat
    topologies). *)

val reducescatter :
  ?channels:int ->
  Syccl_topology.Topology.t ->
  Syccl_collective.Collective.t ->
  Syccl_sim.Schedule.t
(** The time-reversed ring (§4.1). *)
