module Topology = Syccl_topology.Topology
module Collective = Syccl_collective.Collective
module Schedule = Syccl_sim.Schedule

(* Heap-shaped binary tree over ranks 0..n-1; rank 0 is always the root.
   The second tree reverses the non-root ranks, so a leaf of one tree is
   internal in the other (NCCL's complementary double tree). *)
let tree_edges n ~mirror =
  let rank i = if mirror && i > 0 then n - i else i in
  let edges = ref [] in
  for i = 0 to n - 1 do
    let l = (2 * i) + 1 and r = (2 * i) + 2 in
    if l < n then edges := (rank i, rank l) :: !edges;
    if r < n then edges := (rank i, rank r) :: !edges
  done;
  List.rev !edges

let depth_of n ~mirror =
  let d = Array.make n 0 in
  (* Depth via heap index. *)
  for i = 1 to n - 1 do
    let idx = if mirror && i > 0 then n - i else i in
    let rec depth j = if j = 0 then 0 else 1 + depth ((j - 1) / 2) in
    d.(idx) <- depth i
  done;
  d

let broadcast topo coll =
  assert (coll.Collective.kind = Collective.Broadcast);
  let n = coll.Collective.n in
  let root = coll.Collective.root in
  let relabel v = (v + root) mod n in
  let half = Collective.chunk_size coll /. 2.0 in
  let mk mirror chunk_id =
    let depths = depth_of n ~mirror in
    List.map
      (fun (u, v) ->
        let u = relabel u and v = relabel v in
        {
          Schedule.chunk = chunk_id;
          src = u;
          dst = v;
          dim = Common.connecting_dim topo u v;
          prio = depths.((v - root + n) mod n);
        })
      (tree_edges n ~mirror)
  in
  let chunk _ =
    {
      Schedule.size = half;
      mode = `Gather;
      initial = [ root ];
      wanted = List.filter (fun v -> v <> root) (List.init n (fun i -> i));
      tag = 0;
    }
  in
  {
    Schedule.chunks = [| chunk 0; chunk 1 |];
    xfers = mk false 0 @ mk true 1;
  }

let reduce topo coll =
  assert (coll.Collective.kind = Collective.Reduce);
  let forward =
    Collective.make ~root:coll.Collective.root Collective.Broadcast
      ~n:coll.Collective.n ~size:coll.Collective.size
  in
  Schedule.reverse (broadcast topo forward)

let allreduce_phases topo coll =
  assert (coll.Collective.kind = Collective.AllReduce);
  let n = coll.Collective.n and size = coll.Collective.size in
  let red = Collective.make ~root:0 Collective.Reduce ~n ~size in
  let bc = Collective.make ~root:0 Collective.Broadcast ~n ~size in
  [ reduce topo red; broadcast topo bc ]
