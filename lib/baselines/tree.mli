(** NCCL's double binary tree schedules: two complementary binary trees each
    carry half of the data, halving the latency-critical depth compared to a
    ring for rooted collectives and AllReduce. *)

val broadcast :
  Syccl_topology.Topology.t ->
  Syccl_collective.Collective.t ->
  Syccl_sim.Schedule.t
(** Double-tree Broadcast from [coll.root]. *)

val reduce :
  Syccl_topology.Topology.t ->
  Syccl_collective.Collective.t ->
  Syccl_sim.Schedule.t
(** Time-reversed double-tree for Reduce. *)

val allreduce_phases :
  Syccl_topology.Topology.t ->
  Syccl_collective.Collective.t ->
  Syccl_sim.Schedule.t list
(** Reduce-to-root then broadcast, each over both trees. *)
