(* The fuzzing driver: runs the property catalogue over deterministic
   per-case generators and aggregates counterexamples.

   Reproducibility contract: the RNG for (seed, property, case) depends on
   nothing else — not on the number of cases, not on which other properties
   run, not on the order of the catalogue — so a failure report can be
   replayed with [run ~props:[prop] ~seed ~cases:(case + 1)] or narrowed
   from the command line without shifting the stream. *)

module X = Syccl_util.Xrand

type failure = {
  prop : string;
  case : int;
  detail : string;  (** what failed, with the (shrunk) witness inline *)
}

type prop_stats = {
  prop_name : string;
  cases_run : int;
  passed : int;
  skipped : int;
  failed : int;
}

type report = {
  seed : int;
  stats : prop_stats list;
  failures : failure list;
}

let total_cases r = List.fold_left (fun a s -> a + s.cases_run) 0 r.stats

let default_cases () =
  match Sys.getenv_opt "SYCCL_FUZZ_CASES" with
  | None | Some "" -> 50
  | Some v -> ( match int_of_string_opt v with Some n when n > 0 -> n | _ -> 50)

(* splitmix64-style mixing of the (seed, property, case) coordinates; the
   property name hashes with OCaml's deterministic-by-version string hash. *)
let case_rng ~seed ~prop ~case =
  let h = Hashtbl.hash (prop : string) in
  X.create (((seed * 0x9E3779B9) lxor (h * 0x85EBCA6B)) + (case * 0xC2B2AE35))

(* Heavy properties (differential oracle, registry round-trips) get an
   eighth of the case budget: each case is itself several solves. *)
let cases_for (p : Props.prop) cases =
  if p.Props.heavy then max 1 (cases / 8) else cases

let run ?props ?progress ?(domains = 1) ?(shrink = false) ~seed ~cases () =
  let catalogue =
    match props with
    | None -> Props.all
    | Some names ->
        List.filter_map
          (fun n ->
            match Props.find n with
            | Some p -> Some p
            | None ->
                Option.iter
                  (fun fmt ->
                    Format.fprintf fmt "unknown property %S (skipped)@." n)
                  progress;
                None)
          names
  in
  let failures = ref [] in
  let stats =
    List.map
      (fun (p : Props.prop) ->
        let n = cases_for p cases in
        let passed = ref 0 and skipped = ref 0 and failed = ref 0 in
        let case = ref 0 in
        while !case < n do
          let ctx =
            {
              Props.rng = case_rng ~seed ~prop:p.Props.name ~case:!case;
              domains;
              shrink;
            }
          in
          (match try p.Props.check ctx with e ->
             Props.Fail
               (Printf.sprintf "property raised: %s" (Printexc.to_string e))
           with
          | Props.Pass -> incr passed
          | Props.Skip _ -> incr skipped
          | Props.Fail detail ->
              incr failed;
              failures :=
                { prop = p.Props.name; case = !case; detail } :: !failures);
          incr case
        done;
        Option.iter
          (fun fmt ->
            Format.fprintf fmt "%-24s %4d cases  %4d pass  %3d skip  %3d fail@."
              p.Props.name n !passed !skipped !failed)
          progress;
        {
          prop_name = p.Props.name;
          cases_run = n;
          passed = !passed;
          skipped = !skipped;
          failed = !failed;
        })
      catalogue
  in
  { seed; stats; failures = List.rev !failures }

let pp_report fmt r =
  let pass = List.fold_left (fun a s -> a + s.passed) 0 r.stats in
  let skip = List.fold_left (fun a s -> a + s.skipped) 0 r.stats in
  Format.fprintf fmt "seed %d: %d cases, %d passed, %d skipped, %d failures@."
    r.seed (total_cases r) pass skip (List.length r.failures);
  List.iter
    (fun f ->
      Format.fprintf fmt "@.FAIL %s (case %d, seed %d):@.%s@." f.prop f.case
        r.seed f.detail)
    r.failures
