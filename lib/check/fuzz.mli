(** The fuzzing driver: runs the {!Props} catalogue over deterministic
    per-case generators and aggregates counterexamples.

    Reproducibility: the RNG for (seed, property, case) depends on nothing
    else — not the case budget, not which other properties run — so a
    failure replays with [run ~props:[prop] ~seed ~cases:(case + 1)]. *)

type failure = {
  prop : string;
  case : int;
  detail : string;  (** what failed, with the (shrunk) witness inline *)
}

type prop_stats = {
  prop_name : string;
  cases_run : int;
  passed : int;
  skipped : int;
  failed : int;
}

type report = { seed : int; stats : prop_stats list; failures : failure list }

val total_cases : report -> int

val default_cases : unit -> int
(** [SYCCL_FUZZ_CASES] when set to a positive integer, else 50. *)

val run :
  ?props:string list ->
  ?progress:Format.formatter ->
  ?domains:int ->
  ?shrink:bool ->
  seed:int -> cases:int -> unit -> report
(** Run [cases] cases of each selected property ([props] defaults to the
    whole catalogue; unknown names are reported on [progress] and
    skipped).  Heavy properties (differential oracle, registry
    round-trips) run [cases / 8] cases.  A property that raises records a
    failure for that case rather than aborting the run.  [progress]
    receives one summary line per property. *)

val pp_report : Format.formatter -> report -> unit
