(* Seeded random generators for the fuzzing subsystem: topologies (switched,
   ring-ish single-dimension, multi-rail, Clos — with skewed alpha-beta
   link parameters), collectives (every kind, boundary-heavy sizes), valid
   schedules (via the self-validating baseline generators), and schedule
   mutations (dropped / duplicated / reprioritized / cross-wired transfers).

   Everything takes an explicit {!Syccl_util.Xrand.t}, so a (seed, case)
   pair replays the exact same inputs — counterexamples are reproducible by
   construction. *)

module X = Syccl_util.Xrand
module Topology = Syccl_topology.Topology
module Builders = Syccl_topology.Builders
module Link = Syccl_topology.Link
module Collective = Syccl_collective.Collective
module Schedule = Syccl_sim.Schedule

(* Log-uniform bandwidth over two decades plus a latency term that is zero
   a third of the time: zero-alpha links make cost properties exact, while
   skewed alpha/beta ratios exercise the simulator's pipelining paths. *)
let link ?(zero_alpha = false) rng =
  let gbps = 4.0 *. Float.exp (X.float rng (Float.log 100.0)) in
  let alpha =
    if zero_alpha || X.int rng 3 = 0 then 0.0
    else 1e-7 *. Float.exp (X.float rng (Float.log 100.0))
  in
  Link.make ~alpha ~gbps

let topology ?zero_alpha rng =
  match X.int rng 4 with
  | 0 ->
      (* One non-blocking switch: the smallest symmetric case. *)
      let n = X.pick rng [| 2; 3; 4; 6; 8 |] in
      Builders.single_switch ~name:"fuzz-switch" ~n ~link:(link ?zero_alpha rng)
        ()
  | 1 ->
      (* Two-level Clos: grouped dimension structure. *)
      let levels = X.pick rng [| [ 2; 2 ]; [ 2; 4 ]; [ 2; 2; 2 ] |] in
      let links = List.map (fun _ -> link ?zero_alpha rng) levels in
      Builders.clos ~name:"fuzz-clos" ~levels ~links ()
  | 2 ->
      (* Multi-rail: intra-server NVSwitch plus same-rail leaf switches,
         sometimes with a spine dimension sharing the NIC port group. *)
      let servers = X.pick rng [| 2; 3 |] in
      let gpus_per_server = X.pick rng [| 2; 4 |] in
      let nvlink = link ?zero_alpha rng and rail = link ?zero_alpha rng in
      let spine = if X.bool rng then Some (link ?zero_alpha rng) else None in
      Builders.multi_rail ~name:"fuzz-rail" ~servers ~gpus_per_server ~nvlink
        ~rail ?spine ()
  | _ ->
      (* Wide single dimension with a skewed link — ring-schedule country. *)
      let n = X.pick rng [| 4; 5; 8 |] in
      Builders.single_switch ~name:"fuzz-wide" ~n ~link:(link ?zero_alpha rng)
        ()

let all_kinds =
  [|
    Collective.SendRecv; Collective.Broadcast; Collective.Scatter;
    Collective.Gather; Collective.Reduce; Collective.AllGather;
    Collective.AllToAll; Collective.ReduceScatter; Collective.AllReduce;
  |]

(* Boundary-heavy sizes: exact powers of two and their float neighbours
   (the registry's bucket edges), sub-1.0 fractions (negative buckets), and
   a broad log-uniform band. *)
let size rng =
  match X.int rng 5 with
  | 0 ->
      let k = X.int rng 24 in
      Float.of_int (1 lsl k)
  | 1 ->
      let s = Float.of_int (1 lsl (1 + X.int rng 23)) in
      if X.bool rng then Float.pred s else Float.succ s
  | 2 -> 0.0625 +. X.float rng 0.9
  | _ -> 8.0 *. Float.exp (X.float rng (Float.log 1e5))

let collective ?kinds rng ~n =
  let kinds = Option.value kinds ~default:all_kinds in
  let kind = X.pick rng kinds in
  let root = X.int rng n in
  let peer =
    match kind with
    | Collective.SendRecv ->
        let p = X.int rng (n - 1) in
        if p >= root then p + 1 else p
    | _ -> 0
  in
  Collective.make ~root ~peer kind ~n ~size:(size rng)

(* A valid schedule set (one per phase) for the demand: the simulator-free
   fallback ladder most of the time, NCCL's tuned generators otherwise.
   Both families self-validate before returning. *)
let schedules rng topo coll =
  if X.int rng 4 = 0 then Syccl_baselines.Nccl.schedule topo coll
  else Syccl_baselines.Fallback.schedule topo coll

type mutation = Drop | Duplicate | Reprioritize | Crosswire | Inflate

let mutation_name = function
  | Drop -> "drop"
  | Duplicate -> "duplicate"
  | Reprioritize -> "reprioritize"
  | Crosswire -> "crosswire"
  | Inflate -> "inflate"

let mutations = [| Drop; Duplicate; Reprioritize; Crosswire; Inflate |]

let mutation rng = X.pick rng mutations

(* Replace the transfer at [i] using [f] (or drop it when [f] returns
   [None]); the rest of the schedule is untouched. *)
let map_xfer_at s i f =
  let xfers =
    List.concat
      (List.mapi
         (fun j x -> if j = i then f x else [ x ])
         s.Schedule.xfers)
  in
  { s with Schedule.xfers }

(* Apply a mutation to one schedule.  Returns [None] when the mutation does
   not apply (e.g. no transfers to drop).  Mutants stay inside
   [check_structure]'s vocabulary — endpoints remain peers in their
   dimension — so the deeper causality and coverage checks are the ones
   under test. *)
let mutate rng topo kind (s : Schedule.t) =
  let nx = List.length s.Schedule.xfers in
  match kind with
  | Inflate ->
      (* Add a non-contributor GPU to a reduce chunk's [initial]: the
         demand-coverage check must reject the extra reduction operand
         (set equality, not inclusion). *)
      let n = Topology.num_gpus topo in
      let candidates = ref [] in
      Array.iteri
        (fun c (m : Schedule.chunk_meta) ->
          if m.mode = `Reduce && List.length m.initial < n then
            candidates := c :: !candidates)
        s.Schedule.chunks;
      (match !candidates with
      | [] -> None
      | cs ->
          let c = List.nth cs (X.int rng (List.length cs)) in
          let m = s.Schedule.chunks.(c) in
          let extra =
            let rec pick () =
              let v = X.int rng n in
              if List.mem v m.Schedule.initial then pick () else v
            in
            pick ()
          in
          let chunks = Array.copy s.Schedule.chunks in
          chunks.(c) <- { m with Schedule.initial = extra :: m.Schedule.initial };
          Some { s with Schedule.chunks })
  | _ when nx = 0 -> None
  | _ -> (
    let i = X.int rng nx in
    match kind with
    | Inflate -> None
    | Drop -> Some (map_xfer_at s i (fun _ -> []))
    | Duplicate -> Some (map_xfer_at s i (fun x -> [ x; x ]))
    | Reprioritize ->
        (* Colliding and negative priorities; validity must not depend on
           them. *)
        Some
          {
            s with
            Schedule.xfers =
              List.map
                (fun (x : Schedule.xfer) ->
                  { x with Schedule.prio = X.int rng 9 - 4 })
                s.Schedule.xfers;
          }
    | Crosswire ->
        (* Retarget one endpoint to a random other member of the same
           (dimension, group), so the mutant survives [check_structure] and
           the deeper causality checks are the ones exercised. *)
        let x = List.nth s.Schedule.xfers i in
        let peers = Topology.peers topo ~dim:x.Schedule.dim x.Schedule.src in
        if Array.length peers = 0 then None
        else
          let dst = X.pick rng peers in
          Some
            (map_xfer_at s i (fun x ->
                 if X.bool rng then [ { x with Schedule.dst } ]
                 else [ { x with Schedule.src = dst; dst = x.Schedule.src } ])))

(* Small random LPs for the dense-vs-revised simplex differential: few
   variables, small integer and half-integer coefficients (degenerate ties
   and exact arithmetic on purpose), mostly-Le rows with occasional Ge/Eq,
   and right-hand sides that keep a fair share of the problems feasible. *)
let lp rng =
  let num_vars = 1 + X.int rng 6 in
  let coef () =
    let v = Float.of_int (X.int rng 9 - 4) in
    if X.bool rng then v else v /. 2.0
  in
  let objective = Array.init num_vars (fun _ -> coef ()) in
  let num_rows = X.int rng 9 in
  let rows =
    List.init num_rows (fun _ ->
        let nterms = 1 + X.int rng num_vars in
        let vars = Array.init num_vars Fun.id in
        X.shuffle rng vars;
        let terms =
          List.init nterms (fun i -> (vars.(i), coef ()))
          |> List.filter (fun (_, c) -> c <> 0.0)
        in
        let cmp =
          match X.int rng 8 with
          | 0 | 1 -> Syccl_milp.Lp.Ge
          | 2 -> Syccl_milp.Lp.Eq
          | _ -> Syccl_milp.Lp.Le
        in
        let rhs = Float.of_int (X.int rng 13 - 2) in
        (terms, cmp, rhs))
    |> List.filter (fun (terms, _, _) -> terms <> [])
  in
  { Syccl_milp.Lp.num_vars; objective; rows }
