(** Seeded random generators for the fuzzing subsystem.

    All generators take an explicit {!Syccl_util.Xrand.t}; a (seed, case)
    pair replays the exact same inputs, so counterexamples are reproducible
    by construction. *)

val link : ?zero_alpha:bool -> Syccl_util.Xrand.t -> Syccl_topology.Link.t
(** Log-uniform bandwidth over two decades; zero latency a third of the
    time (always, with [zero_alpha]), else log-uniform around 1e-7 s. *)

val topology : ?zero_alpha:bool -> Syccl_util.Xrand.t -> Syccl_topology.Topology.t
(** One of: single switch (2–8 GPUs), two/three-level Clos, multi-rail
    with optional spine, wide single switch.  At most 12 GPUs. *)

val all_kinds : Syccl_collective.Collective.kind array

val size : Syccl_util.Xrand.t -> float
(** Boundary-heavy byte sizes: exact powers of two, their float
    neighbours, sub-1.0 fractions, and a broad log-uniform band. *)

val collective :
  ?kinds:Syccl_collective.Collective.kind array ->
  Syccl_util.Xrand.t -> n:int -> Syccl_collective.Collective.t
(** Random kind (from [kinds]), random root, distinct random peer for
    SendRecv, {!size}-distributed size. *)

val schedules :
  Syccl_util.Xrand.t -> Syccl_topology.Topology.t ->
  Syccl_collective.Collective.t -> Syccl_sim.Schedule.t list
(** A valid schedule set (one per phase) from the self-validating baseline
    generators ({!Syccl_baselines.Fallback} mostly,
    {!Syccl_baselines.Nccl} a quarter of the time). *)

type mutation =
  | Drop  (** remove one transfer *)
  | Duplicate  (** repeat one transfer *)
  | Reprioritize  (** random colliding/negative priorities everywhere *)
  | Crosswire  (** retarget one endpoint to a same-(dim, group) peer *)
  | Inflate  (** add a non-contributor to a reduce chunk's [initial] *)

val mutation_name : mutation -> string
val mutations : mutation array
val mutation : Syccl_util.Xrand.t -> mutation

val mutate :
  Syccl_util.Xrand.t -> Syccl_topology.Topology.t -> mutation ->
  Syccl_sim.Schedule.t -> Syccl_sim.Schedule.t option
(** Apply a mutation to one schedule; [None] when it does not apply (no
    transfers to drop, no reduce chunk to inflate, ...).  Mutants stay
    inside {!Syccl_sim.Validate.check_structure}'s vocabulary so the
    deeper causality and coverage checks are the ones under test. *)

val lp : Syccl_util.Xrand.t -> Syccl_milp.Lp.problem
(** Small LPs with integer/half-integer coefficients (exact float
    arithmetic, deliberate degeneracy) for differential testing of the
    revised simplex against the retired dense tableau. *)
