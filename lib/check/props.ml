(* The property catalogue: metamorphic laws of the schedule IR and
   simulator, validator soundness against the independent reference
   checker, registry invariants, and the differential synthesis oracle.

   Each property draws its own inputs from the per-case RNG handed to it,
   so a (seed, property, case) triple fully determines the inputs — a
   failure report names exactly how to replay it. *)

module X = Syccl_util.Xrand
module Perm = Syccl_util.Perm
module Topology = Syccl_topology.Topology
module Builders = Syccl_topology.Builders
module Collective = Syccl_collective.Collective
module Schedule = Syccl_sim.Schedule
module Sim = Syccl_sim.Sim
module Validate = Syccl_sim.Validate
module Teccl = Syccl_teccl.Teccl
module Registry = Syccl_serve.Registry
module Synthesizer = Syccl.Synthesizer
module Transport = Syccl_sim.Transport
module Msccl_interp = Syccl_sim.Msccl_interp
module Fault = Syccl_topology.Fault
module Failover = Syccl_serve.Failover
module Reroute = Syccl.Reroute

type verdict = Pass | Skip of string | Fail of string

type ctx = { rng : X.t; domains : int; shrink : bool }

type prop = { name : string; heavy : bool; check : ctx -> verdict }

let failf fmt = Format.kasprintf (fun s -> Fail s) fmt

let pp_schedule s = Format.asprintf "%a" Schedule.pp s

(* Sequential-phase completion time, the accounting every comparator
   shares. *)
let sim_phases ?blocks topo schedules = Teccl.simulate ?blocks topo schedules

let rel_close ~tol a b =
  let denom = Float.max (Float.abs a) (Float.max (Float.abs b) 1e-30) in
  Float.abs (a -. b) <= tol *. denom

(* ------------------------------------------------------------------ *)
(* reverse is an involution — structurally and in simulated cost — and
   stays one under colliding/negative priorities. *)

let prop_reverse_involution ctx =
  let rng = ctx.rng in
  let topo = Gen.topology rng in
  let coll = Gen.collective rng ~n:(Topology.num_gpus topo) in
  let schedules = Gen.schedules rng topo coll in
  let schedules =
    (* Half the time, stress the priority mirror with colliding and
       negative priorities. *)
    if X.bool rng then
      List.map
        (fun s ->
          match Gen.mutate rng topo Gen.Reprioritize s with
          | Some s' -> s'
          | None -> s)
        schedules
    else schedules
  in
  let rec go = function
    | [] -> Pass
    | s :: rest ->
        let rr = Schedule.reverse (Schedule.reverse s) in
        if rr <> s then
          failf "reverse (reverse s) <> s (priority mirror drifts)\n%s"
            (pp_schedule s)
        else
          let t = Sim.time topo s and t' = Sim.time topo rr in
          if not (rel_close ~tol:1e-12 t t') then
            failf "double-reverse cost %g <> %g" t' t
          else go rest
  in
  go schedules

(* ------------------------------------------------------------------ *)
(* scale is cost-linear in the bytes term: on zero-latency links, scaling
   every chunk by a power-of-two factor scales the simulated time exactly
   (block counts saturate, so the event structure is identical). *)

let prop_scale_linear ctx =
  let rng = ctx.rng in
  let topo = Gen.topology ~zero_alpha:true rng in
  let n = Topology.num_gpus topo in
  let kind = X.pick rng Gen.all_kinds in
  let root = X.int rng n in
  let peer =
    match kind with
    | Collective.SendRecv ->
        let p = X.int rng (n - 1) in
        if p >= root then p + 1 else p
    | _ -> 0
  in
  (* Size floor keeps every chunk's block count pinned at the maximum both
     before and after scaling, so only per-block bytes change. *)
  let coll =
    Collective.make ~root ~peer kind ~n ~size:(2048.0 +. X.float rng 1e4)
  in
  let schedules = Gen.schedules rng topo coll in
  let k = X.pick rng [| 0.5; 2.0; 4.0 |] in
  let rec go = function
    | [] -> Pass
    | s :: rest ->
        let t = Sim.time topo s in
        let t' = Sim.time topo (Schedule.scale s k) in
        if not (rel_close ~tol:1e-9 t' (k *. t)) then
          failf "scale %g: cost %g, expected %g (base %g)" k t' (k *. t) t
        else go rest
  in
  go schedules

(* ------------------------------------------------------------------ *)
(* union dominance.  The naive law — "a union never finishes before
   either part alone" — is FALSE for parts sharing ports: the simulator
   is a greedy list scheduler keyed on (avail, prio, ...), and extra
   traffic perturbs avail times, which can reorder a part's own
   transfers into a luckier tie-break than it gets alone (a Graham-style
   scheduling anomaly; this fuzzer found ~2% of shared-port cases off by
   up to ~15%).  What the synthesizer actually relies on (§5.3) is the
   port-DISJOINT case: a representative schedule transported onto
   disjoint isomorphic orbits and unioned.  There the parts cannot
   interact at all, so the union must cost exactly the max of the parts
   — an equality, checked as such.  For shared-port unions we keep the
   structural half: the union of two valid schedules stays valid. *)

let prop_union_dominates ctx =
  let rng = ctx.rng in
  (* Shared-port half: validity only. *)
  let topo = Gen.topology rng in
  let n = Topology.num_gpus topo in
  let c1 = Gen.collective rng ~n and c2 = Gen.collective rng ~n in
  let s1 = List.hd (Gen.schedules rng topo c1) in
  let s2 = List.hd (Gen.schedules rng topo c2) in
  match Validate.check topo (Schedule.union [ s1; s2 ]) with
  | Error e -> failf "union of two valid schedules fails validation: %s" e
  | Ok () ->
  (* Disjoint-orbit half: the same schedule (priorities colliding across
     parts by construction) on the two halves of a doubled switch. *)
  let m = X.pick rng [| 2; 3; 4 |] in
  let link = Gen.link rng in
  let small = Builders.single_switch ~name:"fuzz-orbit" ~n:m ~link () in
  let big = Builders.single_switch ~name:"fuzz-orbits" ~n:(2 * m) ~link () in
  let c = Gen.collective rng ~n:m in
  let part = List.hd (Gen.schedules rng small c) in
  let lo = Schedule.map_gpus part Fun.id in
  let hi = Schedule.map_gpus part (fun g -> g + m) in
  let u = Schedule.union [ lo; hi ] in
  match Validate.check big u with
  | Error e -> failf "disjoint-orbit union fails validation: %s" e
  | Ok () ->
      let tu = Sim.time big u in
      let t1 = Sim.time big lo and t2 = Sim.time big hi in
      let lo_t = Float.max t1 t2 in
      if not (rel_close ~tol:1e-9 tu lo_t) then
        failf "disjoint-orbit union cost %g differs from max of parts (%g, %g)"
          tu t1 t2
      else Pass

(* ------------------------------------------------------------------ *)
(* automorphism transport: relabelling GPUs through a topology
   automorphism preserves validity (against the transported demand) and
   simulated cost. *)

(* The endpoint-signature tag translation and relabelling now live in
   {!Syccl_sim.Transport} (failover warming ships schedules across fault
   orbits with it); the property exercises that production code path. *)
let prop_automorphism_transport ctx =
  let rng = ctx.rng in
  let topo = Gen.topology rng in
  let n = Topology.num_gpus topo in
  let coll = Gen.collective rng ~n in
  let perms =
    Array.map
      (fun sz ->
        let a = Array.init sz Fun.id in
        X.shuffle rng a;
        a)
      topo.Topology.shape
  in
  let p = Topology.apply_axis_perms topo perms in
  if not (Topology.is_automorphism topo p) then
    Skip "per-axis permutation is not an automorphism here"
  else
    let schedules = Gen.schedules rng topo coll in
    let peer' =
      match coll.Collective.kind with
      | Collective.SendRecv -> Perm.apply p coll.Collective.peer
      | _ -> coll.Collective.peer
    in
    let coll' =
      Collective.make
        ~root:(Perm.apply p coll.Collective.root)
        ~peer:peer' coll.Collective.kind ~n ~size:coll.Collective.size
    in
    match Transport.schedules p coll coll' schedules with
    | None -> Skip "ambiguous demand chunk signature under permutation"
    | Some schedules' -> (
      match Validate.validate topo coll' schedules' with
      | Error e -> failf "transported schedule invalid: %s" e
      | Ok () ->
          let t = sim_phases topo schedules in
          let t' = sim_phases topo schedules' in
          if not (rel_close ~tol:1e-9 t t') then
            failf "transport changes cost: %g -> %g" t t'
          else Pass)

(* ------------------------------------------------------------------ *)
(* validator agreement on healthy schedules: everything the generators
   produce must satisfy the validator, the independent reference checker,
   and the simulator. *)

let prop_generators_agree ctx =
  let rng = ctx.rng in
  let topo = Gen.topology rng in
  let coll = Gen.collective rng ~n:(Topology.num_gpus topo) in
  let schedules = Gen.schedules rng topo coll in
  match Validate.validate topo coll schedules with
  | Error e -> failf "generator schedule fails validator: %s" e
  | Ok () -> (
      match Refcheck.covers topo coll schedules with
      | Error e -> failf "generator schedule fails reference checker: %s" e
      | Ok () -> (
          match sim_phases topo schedules with
          | (_ : float) -> Pass
          | exception e ->
              failf "generator schedule fails simulator: %s"
                (Printexc.to_string e)))

(* ------------------------------------------------------------------ *)
(* validator soundness under mutation: any mutant the validator accepts
   must also satisfy the reference checker and complete in the simulator
   — a divergence means one of the two checkers has a hole.  The shrunk
   witness is reported when shrinking is on. *)

let mutant_escapes topo phase s =
  match Validate.covers topo phase s with
  | Error _ -> false
  | Ok () -> (
      match Refcheck.covers_phase phase s with
      | Error _ -> true
      | Ok () -> (
          match Sim.time topo s with
          | (_ : float) -> false
          | exception _ -> true))

let prop_mutant_soundness ctx =
  let rng = ctx.rng in
  let topo = Gen.topology rng in
  let coll = Gen.collective rng ~n:(Topology.num_gpus topo) in
  let phases = Collective.phases coll in
  let schedules = Gen.schedules rng topo coll in
  let i = X.int rng (List.length schedules) in
  let s = List.nth schedules i in
  let phase = List.nth phases i in
  let kind = Gen.mutation rng in
  match Gen.mutate rng topo kind s with
  | None -> Skip "mutation not applicable"
  | Some mutant -> (
      match Validate.covers topo phase mutant with
      | Error _ -> Pass (* the validator caught the mutation *)
      | Ok () -> (
          let escaped why =
            let witness =
              if ctx.shrink then
                Shrink.schedule ~still_fails:(mutant_escapes topo phase) mutant
              else mutant
            in
            failf "validator accepts a %s mutant but %s\n%s"
              (Gen.mutation_name kind) why (pp_schedule witness)
          in
          match Refcheck.covers_phase phase mutant with
          | Error e -> escaped ("reference checker rejects: " ^ e)
          | Ok () -> (
              match Sim.time topo mutant with
              | exception e ->
                  escaped ("simulator rejects: " ^ Printexc.to_string e)
              | (_ : float) -> (
                  match kind with
                  | Gen.Duplicate ->
                      (* A duplicated transfer is always detectable;
                         acceptance is a validator hole even if downstream
                         checkers cope. *)
                      failf "validator accepts a %s mutant\n%s"
                        (Gen.mutation_name kind) (pp_schedule mutant)
                  | _ -> Pass))))

(* ------------------------------------------------------------------ *)
(* reordering the transfer list is benign for validity: all validator
   judgements are fixpoints over sets, never over list position. *)

let prop_reorder_benign ctx =
  let rng = ctx.rng in
  let topo = Gen.topology rng in
  let coll = Gen.collective rng ~n:(Topology.num_gpus topo) in
  let phases = Collective.phases coll in
  let schedules = Gen.schedules rng topo coll in
  let i = X.int rng (List.length schedules) in
  let s = List.nth schedules i in
  let phase = List.nth phases i in
  let arr = Array.of_list s.Schedule.xfers in
  X.shuffle rng arr;
  let s' = { s with Schedule.xfers = Array.to_list arr } in
  match (Validate.covers topo phase s, Validate.covers topo phase s') with
  | Ok (), Ok () -> (
      match Sim.time topo s' with
      | (_ : float) -> Pass
      | exception e ->
          failf "reordered valid schedule fails simulator: %s"
            (Printexc.to_string e))
  | Error e, _ -> failf "generator schedule invalid before reorder: %s" e
  | Ok (), Error e -> failf "validity depends on transfer order: %s" e

(* ------------------------------------------------------------------ *)
(* registry fidelity: an entry stored at one simulator fidelity must
   survive a probe at another — demotion may only compare like for like. *)

let temp_registry_dir rng =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "syccl-fuzz-reg-%d-%d" (Unix.getpid ())
       (X.int rng 1_000_000_000))

let prop_registry_fidelity ctx =
  let rng = ctx.rng in
  let topo = Gen.topology rng in
  let coll = Gen.collective rng ~n:(Topology.num_gpus topo) in
  let schedules = Syccl_baselines.Fallback.schedule topo coll in
  let b_store = X.pick rng [| 1; 2; 4; 8; 16 |] in
  let b_probe = X.pick rng [| 1; 2; 4; 8; 16 |] in
  let dir = temp_registry_dir rng in
  let reg = Registry.open_dir dir in
  Fun.protect
    ~finally:(fun () -> Registry.destroy reg)
    (fun () ->
      let cost = sim_phases ~blocks:b_store topo schedules in
      Registry.store reg topo coll ~blocks:b_store ~cost
        ~chosen:"fuzz-fallback" schedules;
      match Registry.lookup reg ~blocks:b_probe topo coll with
      | None ->
          failf
            "entry stored at blocks=%d demoted when probed at blocks=%d"
            b_store b_probe
      | Some hit ->
          if hit.Registry.stored_blocks <> b_store then
            failf "hit reports stored_blocks=%d, stored at %d"
              hit.Registry.stored_blocks b_store
          else if
            not
              (rel_close ~tol:1e-9 hit.Registry.time
                 (sim_phases ~blocks:b_probe topo schedules))
          then
            failf "hit time %g is not the probe-fidelity resimulation"
              hit.Registry.time
          else Pass)

(* ------------------------------------------------------------------ *)
(* registry transport soundness: a hit transported from a symmetric root
   must simulate at exactly the source entry's cost on the source
   topology — the automorphism-transport law, observed end-to-end through
   the serving probe — and must carry the source entry's key. *)

let rooted_kinds =
  [|
    Collective.Broadcast; Collective.Scatter; Collective.Gather;
    Collective.Reduce;
  |]

let prop_registry_transport ctx =
  let rng = ctx.rng in
  let topo = Gen.topology rng in
  let n = Topology.num_gpus topo in
  let src = Gen.collective ~kinds:rooted_kinds rng ~n in
  let src_root = src.Collective.root in
  (* Destination roots the probe can reach: images of the source root
     under the (healthy) stabilizer, excluding the source itself. *)
  let dsts =
    List.sort_uniq compare
      (List.filter_map
         (fun p ->
           let r = Perm.apply p src_root in
           if r = src_root then None else Some r)
         (Topology.stabilizer topo))
  in
  match dsts with
  | [] -> Skip "stabilizer fixes the source root"
  | _ -> (
      let dst_root = X.pick rng (Array.of_list dsts) in
      let dst =
        Collective.make ~root:dst_root ~peer:0 src.Collective.kind ~n
          ~size:src.Collective.size
      in
      let schedules = Syccl_baselines.Fallback.schedule topo src in
      let cost = sim_phases topo schedules in
      let dir = temp_registry_dir rng in
      let reg = Registry.open_dir dir in
      Fun.protect
        ~finally:(fun () -> Registry.destroy reg)
        (fun () ->
          Registry.store reg topo src ~cost ~chosen:"fuzz-fallback" schedules;
          match Registry.probe reg topo dst with
          | Registry.Hit h ->
              if h.Registry.via <> Registry.Transported then
                failf "probe at root %d served via %s, expected transport"
                  dst_root (Registry.via_name h.Registry.via)
              else if h.Registry.hit_key <> Registry.key topo src then
                failf "transported hit reports key %s, source is %s"
                  h.Registry.hit_key (Registry.key topo src)
              else if not (rel_close ~tol:1e-9 h.Registry.time cost) then
                failf
                  "transport changes cost: source %g, transported %g"
                  cost h.Registry.time
              else Pass
          | Registry.Miss Registry.Transport_rejected ->
              (* Legitimate: ambiguous demand chunk signature, or the
                 fallback at the destination root beats the transport. *)
              Skip "transport rejected"
          | Registry.Miss r ->
              failf "probe at symmetric root %d missed (%s)" dst_root
                (Registry.miss_reason_name r)))

(* ------------------------------------------------------------------ *)
(* size_bucket is the exact power-of-two floor. *)

let prop_size_bucket ctx =
  let rng = ctx.rng in
  let s = Gen.size rng in
  let b = Registry.size_bucket s in
  if Float.ldexp 1.0 b <= s && s < Float.ldexp 1.0 (b + 1) then Pass
  else failf "size_bucket %.17g = %d, outside [2^%d, 2^%d)" s b b (b + 1)

(* ------------------------------------------------------------------ *)
(* differential synthesis oracle: the full pipeline (MILP refinement on)
   against greedy-only synthesis, TECCL, NCCL and the fallback ladder on
   the same demand.  Everything must validate; no comparator may beat the
   candidate beyond the screening tolerance. *)

let oracle_tolerance = 0.25
(* r1 screening keeps candidates within 20 % of the best; give the oracle
   a little slack on top so a legitimate tie broken the other way is not
   a counterexample. *)

let teccl_tolerance = 2.0
(* TECCL is a different contract: on the oracle's tiny instances its
   epoch MILP solves the whole problem near-optimally, and the sketch
   search legitimately trades that last factor for synthesis speed at
   scale (the paper's Fig. 15b tradeoff).  TECCL winning is expected;
   TECCL winning 3x would still mean the sketch space is missing
   something structural — that is the regression this bound catches. *)

let prop_oracle ctx =
  let rng = ctx.rng in
  let topo =
    (* Small instances only: the oracle solves four ways per case. *)
    let rec small tries =
      let t = Gen.topology rng in
      if Topology.num_gpus t <= 8 || tries > 10 then t else small (tries + 1)
    in
    small 0
  in
  let n = Topology.num_gpus topo in
  if n > 8 then Skip "no small topology drawn"
  else
    let kind = X.pick rng Gen.all_kinds in
    let root = X.int rng n in
    let peer =
      match kind with
      | Collective.SendRecv ->
          let p = X.int rng (n - 1) in
          if p >= root then p + 1 else p
      | _ -> 0
    in
    let coll =
      Collective.make ~root ~peer kind ~n
        ~size:(8.0 *. Float.exp (X.float rng (Float.log 1e4)))
    in
    let config =
      {
        Synthesizer.default_config with
        Synthesizer.domains = ctx.domains;
        deadline = Some 30.0;
      }
    in
    let candidate = Synthesizer.synthesize ~config topo coll in
    match Validate.validate topo coll candidate.Synthesizer.schedules with
    | Error e -> failf "oracle: candidate schedule invalid: %s" e
    | Ok () ->
        let fast =
          Synthesizer.synthesize
            ~config:{ config with Synthesizer.fast_only = true }
            topo coll
        in
        let teccl =
          Teccl.synthesize ~seed:(X.int rng 1_000_000) ~restarts:1
            ~time_budget:10.0 topo coll
        in
        let comparators =
          [ ("greedy", oracle_tolerance, Some fast.Synthesizer.schedules);
            ("teccl", teccl_tolerance, teccl.Teccl.schedules);
            ("nccl", oracle_tolerance,
             Some (Syccl_baselines.Nccl.schedule topo coll));
            ("fallback", oracle_tolerance,
             Some (Syccl_baselines.Fallback.schedule topo coll));
          ]
        in
        let rec check_all acc = function
          | [] -> Ok acc
          | (_, _, None) :: rest -> check_all acc rest
          | (name, tol, Some schedules) :: rest -> (
              match Validate.validate topo coll schedules with
              | Error e -> Error (name, e)
              | Ok () ->
                  check_all ((name, tol, sim_phases topo schedules) :: acc) rest)
        in
        (match check_all [] comparators with
        | Error (name, e) -> failf "oracle: %s baseline invalid: %s" name e
        | Ok timed ->
            let beaten =
              (* each comparator is held to its own screening tolerance *)
              List.filter
                (fun (_, tol, t) ->
                  candidate.Synthesizer.time > t *. (1.0 +. tol) +. 1e-12)
                timed
            in
            match
              (candidate.Synthesizer.degraded = Synthesizer.Full, beaten)
            with
            | false, _ | true, [] -> Pass
            | true, (best_name, _, best) :: _ ->
                failf
                  "oracle: %s beats the synthesizer beyond tolerance: %g vs \
                   %g (kind %s, n=%d, size %g)"
                  best_name best candidate.Synthesizer.time
                  (Collective.kind_name kind) n coll.Collective.size)

(* ------------------------------------------------------------------ *)
(* The revised sparse simplex agrees with the retired dense tableau (kept
   as Lp_dense, the differential oracle) on random LPs: same status, same
   objective within 1e-6, and the revised solution actually satisfies the
   constraints it claims to. *)

module Lp = Syccl_milp.Lp
module Lp_dense = Syccl_milp.Lp_dense

let pp_lp (p : Lp.problem) =
  let b = Buffer.create 128 in
  Buffer.add_string b "min [";
  Array.iter (fun c -> Buffer.add_string b (Printf.sprintf " %g" c)) p.objective;
  Buffer.add_string b " ]\n";
  List.iter
    (fun (terms, cmp, rhs) ->
      List.iter
        (fun (j, c) -> Buffer.add_string b (Printf.sprintf "%+gx%d " c j))
        terms;
      Buffer.add_string b
        (match cmp with Lp.Le -> "<= " | Lp.Ge -> ">= " | Lp.Eq -> "= ");
      Buffer.add_string b (Printf.sprintf "%g\n" rhs))
    p.rows;
  Buffer.contents b

let lp_status = function
  | Lp.Optimal _ -> "optimal"
  | Lp.Infeasible -> "infeasible"
  | Lp.Unbounded -> "unbounded"
  | Lp.Iter_limit -> "iter_limit"

let lp_point_feasible (p : Lp.problem) x =
  Array.for_all (fun v -> v >= -1e-6) x
  && List.for_all
       (fun (terms, cmp, rhs) ->
         let lhs =
           List.fold_left (fun a (j, c) -> a +. (c *. x.(j))) 0.0 terms
         in
         match cmp with
         | Lp.Le -> lhs <= rhs +. 1e-6
         | Lp.Ge -> lhs >= rhs -. 1e-6
         | Lp.Eq -> Float.abs (lhs -. rhs) <= 1e-6)
       p.rows

let prop_lp_differential ctx =
  let p = Gen.lp ctx.rng in
  match (Lp_dense.solve p, Lp.solve p) with
  | Lp.Iter_limit, _ | _, Lp.Iter_limit -> Skip "iteration limit"
  | Lp.Optimal { obj = da; _ }, Lp.Optimal { obj = ra; x } ->
      (* Absolute-or-relative: optima at exactly 0.0 vs one rounding ulp
         away must not count as a divergence. *)
      let close a b =
        Float.abs (a -. b)
        <= 1e-6 *. (1.0 +. Float.max (Float.abs a) (Float.abs b))
      in
      if not (lp_point_feasible p x) then
        failf "lp-differential: revised optimum violates constraints\n%s"
          (pp_lp p)
      else if not (close da ra) then
        failf "lp-differential: objectives differ: dense %.9g, revised %.9g\n%s"
          da ra (pp_lp p)
      else Pass
  | Lp.Infeasible, Lp.Infeasible | Lp.Unbounded, Lp.Unbounded -> Pass
  | dense, revised ->
      failf "lp-differential: status disagrees: dense %s, revised %s\n%s"
        (lp_status dense) (lp_status revised) (pp_lp p)

(* ------------------------------------------------------------------ *)
(* degraded validity: whatever rung of the ladder serves a punctured
   topology, the result must validate on the punctured topology — a
   degraded schedule crossing a dead link would be an outage dressed up
   as an answer.  A clean refusal (Failure: the faults disconnect a
   demand) is acceptable; an invalid schedule is not. *)

let draw_faults rng topo ~max_elts =
  let elts = Array.of_list (Failover.link_elements topo) in
  if Array.length elts = 0 then None
  else begin
    X.shuffle rng elts;
    let k = 1 + X.int rng (min max_elts (Array.length elts)) in
    Some (Fault.of_list (Array.to_list (Array.sub elts 0 k)))
  end

let prop_degraded_validity ctx =
  let rng = ctx.rng in
  let topo = Gen.topology rng in
  match draw_faults rng topo ~max_elts:2 with
  | None -> Skip "topology has no intra-group links"
  | Some faults -> (
      let punctured = Topology.puncture topo faults in
      let coll = Gen.collective rng ~n:(Topology.num_gpus topo) in
      let config =
        {
          Synthesizer.default_config with
          Synthesizer.fast_only = true;
          domains = ctx.domains;
          deadline = Some 20.0;
        }
      in
      match Synthesizer.synthesize ~config punctured coll with
      | exception Failure _ -> Skip "faults disconnect the demand"
      | o -> (
          match Validate.validate punctured coll o.Synthesizer.schedules with
          | Ok () -> Pass
          | Error e ->
              failf
                "degraded (%s rung) schedule invalid on punctured topology \
                 [%s]: %s"
                (Synthesizer.level_name o.Synthesizer.degraded)
                (Fault.encode faults) e))

(* ------------------------------------------------------------------ *)
(* fault-orbit transport invariance: a schedule rerouted around fault set
   F, transported along an automorphism p of the healthy topology that
   preserves the collective, is a valid equal-cost schedule for fault set
   p(F).  This is the law failover warming (syccl warm --faults K) leans
   on to synthesize one orbit representative and ship it to the rest. *)

let prop_fault_orbit_transport ctx =
  let rng = ctx.rng in
  let topo = Gen.topology rng in
  match draw_faults rng topo ~max_elts:2 with
  | None -> Skip "topology has no intra-group links"
  | Some faults -> (
      let coll = Gen.collective rng ~n:(Topology.num_gpus topo) in
      let schedules = Gen.schedules rng topo coll in
      let punctured = Topology.puncture topo faults in
      match Reroute.schedules punctured schedules with
      | exception Failure _ -> Skip "faults disconnect a delivery"
      | rerouted -> (
          match Validate.validate punctured coll rerouted with
          | Error e -> failf "rerouted schedule invalid: %s" e
          | Ok () -> (
              let group = Array.of_list (Failover.symmetry_group topo coll) in
              let p = X.pick rng group in
              let faults' = Fault.map p faults in
              let punctured' = Topology.puncture topo faults' in
              match Transport.schedules p coll coll rerouted with
              | None -> Skip "ambiguous demand chunk signature"
              | Some transported -> (
                  match Validate.validate punctured' coll transported with
                  | Error e ->
                      failf
                        "transported schedule invalid on fault orbit image \
                         [%s]: %s"
                        (Fault.encode faults') e
                  | Ok () ->
                      let t = sim_phases punctured rerouted in
                      let t' = sim_phases punctured' transported in
                      if not (rel_close ~tol:1e-9 t t') then
                        failf "fault-orbit transport changes cost: %g -> %g" t
                          t'
                      else Pass))))

(* ------------------------------------------------------------------ *)
(* executor-level lowering oracle: lowering any valid schedule to MSCCL
   XML, parsing it back and replaying it step-by-step under executor
   semantics reproduces exactly the reference checker's verdict of the
   demand — at any channel count.  This is the second differential oracle
   of ROADMAP 5(a): it checks threadblock layout, FIFO connection pairing
   and cross-threadblock dependency edges, which no schedule-level checker
   sees. *)

let lowering_diverges ~channels phase s =
  match Refcheck.covers_phase phase s with
  | Error _ -> false (* the schedule itself is wrong; not a lowering bug *)
  | Ok () ->
      Result.is_error (Msccl_interp.check_lowering ~channels ~coll:phase [ s ])

let prop_lower_replay ctx =
  let rng = ctx.rng in
  let topo = Gen.topology rng in
  let coll = Gen.collective rng ~n:(Topology.num_gpus topo) in
  let phases = Collective.phases coll in
  let schedules = Gen.schedules rng topo coll in
  let channels = X.pick rng [| 1; 2; 4 |] in
  let rec go pairs =
    match pairs with
    | [] -> Pass
    | (phase, s) :: rest -> (
        match Refcheck.covers_phase phase s with
        | Error e -> failf "generator schedule fails reference checker: %s" e
        | Ok () ->
            if lowering_diverges ~channels phase s then
              let witness =
                if ctx.shrink then
                  Shrink.schedule
                    ~still_fails:(lowering_diverges ~channels phase)
                    s
                else s
              in
              let why =
                match
                  Msccl_interp.check_lowering ~channels ~coll:phase [ witness ]
                with
                | Error e -> e
                | Ok () -> "(witness passes after shrinking; original diverged)"
              in
              failf "lower-replay (channels=%d): %s\n%s" channels why
                (pp_schedule witness)
            else go rest)
  in
  go (List.combine phases schedules)

(* ------------------------------------------------------------------ *)

let all =
  [
    { name = "reverse-involution"; heavy = false; check = prop_reverse_involution };
    { name = "scale-linear"; heavy = false; check = prop_scale_linear };
    { name = "union-dominates"; heavy = false; check = prop_union_dominates };
    { name = "automorphism-transport"; heavy = false;
      check = prop_automorphism_transport };
    { name = "generators-agree"; heavy = false; check = prop_generators_agree };
    { name = "mutant-soundness"; heavy = false; check = prop_mutant_soundness };
    { name = "reorder-benign"; heavy = false; check = prop_reorder_benign };
    { name = "registry-fidelity"; heavy = true; check = prop_registry_fidelity };
    { name = "registry-transport"; heavy = true;
      check = prop_registry_transport };
    { name = "size-bucket"; heavy = false; check = prop_size_bucket };
    { name = "lp-differential"; heavy = false; check = prop_lp_differential };
    { name = "degraded-validity"; heavy = true; check = prop_degraded_validity };
    { name = "fault-orbit-transport"; heavy = false;
      check = prop_fault_orbit_transport };
    { name = "lower-replay"; heavy = false; check = prop_lower_replay };
    { name = "oracle"; heavy = true; check = prop_oracle };
  ]

let names = List.map (fun p -> p.name) all

let find name = List.find_opt (fun p -> p.name = name) all
