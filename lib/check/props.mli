(** The property catalogue: metamorphic laws of the schedule IR and
    simulator, validator soundness against {!Refcheck}, registry
    invariants, and the differential synthesis oracle.

    Properties draw all inputs from the per-case RNG in {!ctx}, so a
    (seed, property, case) triple fully determines a run. *)

type verdict =
  | Pass
  | Skip of string  (** inputs drawn do not exercise the property *)
  | Fail of string  (** counterexample description, witness inline *)

type ctx = {
  rng : Syccl_util.Xrand.t;
  domains : int;  (** solver parallelism for the synthesis oracle *)
  shrink : bool;  (** greedily shrink counterexample schedules *)
}

type prop = {
  name : string;
  heavy : bool;
      (** multi-solve properties, given a fraction of the case budget *)
  check : ctx -> verdict;
}

val all : prop list
(** - [reverse-involution]: [reverse (reverse s) = s] structurally and in
      simulated cost, under colliding/negative priorities too;
    - [scale-linear]: on zero-latency links, scaling chunk sizes by a
      power of two scales simulated time exactly;
    - [union-dominates]: a shared-port union of valid schedules stays
      valid, and a union over disjoint isomorphic orbits (the §5.3 use)
      costs exactly the max of its parts.  (The naive "never finishes
      before either part" is false under port sharing: the simulator's
      greedy list scheduling admits Graham-style anomalies, which this
      fuzzer demonstrated.);
    - [automorphism-transport]: relabelling GPUs through a topology
      automorphism preserves validity and simulated cost;
    - [generators-agree]: baseline schedules satisfy validator, reference
      checker and simulator;
    - [mutant-soundness]: any mutant the validator accepts also satisfies
      the reference checker and simulator (duplicates must be rejected);
    - [reorder-benign]: transfer-list order never affects validity;
    - [registry-fidelity]: entries stored at one simulator fidelity
      survive probes at another, and report store-time fidelity;
    - [size-bucket]: {!Syccl_serve.Registry.size_bucket} is the exact
      power-of-two floor;
    - [lower-replay]: lowering any refcheck-valid schedule to MSCCL XML,
      parsing it back and replaying it under executor semantics
      ({!Syccl_sim.Msccl_interp}) completes without deadlock,
      use-before-receive or double-writes and lands the demanded data,
      at channels 1, 2 and 4;
    - [oracle]: the full synthesis pipeline validates and is never beaten
      beyond per-comparator screening tolerance by greedy-only synthesis,
      TECCL, NCCL or the fallback ladder on the same demand (TECCL's
      epoch MILP is near-exact at oracle scale, so it gets a looser
      bound than the screened baselines). *)

val names : string list
val find : string -> prop option
