(* An independent reference interpreter for schedule semantics, used as the
   differential oracle for {!Syccl_sim.Validate}.

   Where [Validate] reasons structurally (functional graphs, causal
   fixpoints over holder sets), this module *executes* the schedule under
   dataflow semantics and inspects the final state:

   - gather chunks propagate holder sets to a fixpoint and count
     deliveries per GPU;
   - reduce chunks fire each transfer only once every inbound transfer of
     its source has fired (the simulator's need-counting rule) and
     propagate {e multisets} of contributor ids, so a duplicated, dropped,
     garbage-fed or cyclic transfer shows up as a wrong contribution
     multiset at the destination (or as a stalled execution).

   The two implementations share no code and no traversal order, so a bug
   has to be present in both — independently — to go unnoticed. *)

module Topology = Syccl_topology.Topology
module Collective = Syccl_collective.Collective
module Schedule = Syccl_sim.Schedule

let ( let* ) = Result.bind

let err fmt = Format.kasprintf (fun s -> Error s) fmt

(* Sorted contributor-id multiset a GPU has accumulated. *)
module Imap = Map.Make (Int)

let multiset_add v m = Imap.update v (fun c -> Some (1 + Option.value c ~default:0)) m

let multiset_union a b = Imap.union (fun _ x y -> Some (x + y)) a b

let run_gather (s : Schedule.t) c (meta : Schedule.chunk_meta) =
  let xfers = List.filter (fun (x : Schedule.xfer) -> x.chunk = c) s.xfers in
  let holders = Hashtbl.create 16 in
  let received = Hashtbl.create 16 in
  List.iter (fun v -> Hashtbl.replace holders v ()) meta.initial;
  let fired = Hashtbl.create 16 in
  let progress = ref true in
  while !progress do
    progress := false;
    List.iteri
      (fun i (x : Schedule.xfer) ->
        if (not (Hashtbl.mem fired i)) && Hashtbl.mem holders x.src then begin
          Hashtbl.replace fired i ();
          Hashtbl.replace received x.dst
            (1 + Option.value (Hashtbl.find_opt received x.dst) ~default:0);
          Hashtbl.replace holders x.dst ();
          progress := true
        end)
      xfers
  done;
  if Hashtbl.length fired <> List.length xfers then
    err "ref: gather chunk %d stalls (%d of %d transfers fire)" c
      (Hashtbl.length fired) (List.length xfers)
  else
    let dup =
      Hashtbl.fold
        (fun v n acc ->
          match acc with
          | Some _ -> acc
          | None -> if n > 1 || List.mem v meta.initial then Some v else None)
        received None
    in
    match dup with
    | Some v -> err "ref: gather chunk %d delivered more than once to GPU %d" c v
    | None -> (
        match
          List.find_opt (fun v -> not (Hashtbl.mem holders v)) meta.wanted
        with
        | Some v -> err "ref: gather chunk %d never reaches GPU %d" c v
        | None -> Ok ())

let run_reduce (s : Schedule.t) c (meta : Schedule.chunk_meta) =
  match meta.wanted with
  | [ dst ] ->
      let xfers =
        Array.of_list (List.filter (fun (x : Schedule.xfer) -> x.chunk = c) s.xfers)
      in
      let nx = Array.length xfers in
      (* held.(v): the contribution multiset GPU v has accumulated. *)
      let held = Hashtbl.create 16 in
      let get v = Option.value (Hashtbl.find_opt held v) ~default:Imap.empty in
      List.iter
        (fun v -> Hashtbl.replace held v (multiset_add v (get v)))
        (List.sort_uniq compare meta.initial);
      (* inbound.(i): unfired transfers into xfers.(i).src — the simulator's
         need count.  A transfer may fire only when its source will receive
         nothing further. *)
      let inbound = Array.make nx 0 in
      Array.iteri
        (fun i (x : Schedule.xfer) ->
          Array.iter
            (fun (y : Schedule.xfer) -> if y.dst = x.src then inbound.(i) <- inbound.(i) + 1)
            xfers)
        xfers;
      let fired = Array.make nx false in
      let progress = ref true in
      while !progress do
        progress := false;
        Array.iteri
          (fun i (x : Schedule.xfer) ->
            if (not fired.(i)) && inbound.(i) = 0 then begin
              fired.(i) <- true;
              Hashtbl.replace held x.dst (multiset_union (get x.dst) (get x.src));
              Array.iteri
                (fun j (y : Schedule.xfer) ->
                  if (not fired.(j)) && y.src = x.dst then
                    inbound.(j) <- inbound.(j) - 1)
                xfers;
              progress := true
            end)
          xfers
      done;
      if Array.exists (fun f -> not f) fired then
        err "ref: reduce chunk %d stalls (a transfer can never fire)" c
      else
        let want =
          List.fold_left
            (fun m v -> multiset_add v m)
            Imap.empty
            (List.sort_uniq compare meta.initial)
        in
        let got = get dst in
        if Imap.equal ( = ) want got then Ok ()
        else
          let describe m =
            String.concat ","
              (List.map
                 (fun (v, n) -> Printf.sprintf "%d*%d" v n)
                 (Imap.bindings m))
          in
          err "ref: reduce chunk %d destination %d accumulates {%s}, wants {%s}"
            c dst (describe got) (describe want)
  | _ -> err "ref: reduce chunk %d must have exactly one destination" c

(* Execute every chunk of one phase schedule under reference semantics. *)
let run_schedule (s : Schedule.t) =
  let rec go c =
    if c >= Array.length s.chunks then Ok ()
    else
      let meta = s.chunks.(c) in
      let* () =
        match meta.Schedule.mode with
        | `Gather -> run_gather s c meta
        | `Reduce -> run_reduce s c meta
      in
      go (c + 1)
  in
  go 0

(* Reference demand coverage for one collective phase: every demand chunk's
   tagged fractions execute correctly, sizes sum, sources/destinations
   match the demand exactly. *)
let covers_phase (phase : Collective.t) (s : Schedule.t) =
  let* () = run_schedule s in
  let frs tag =
    List.filteri (fun _ (m : Schedule.chunk_meta) -> m.tag = tag)
      (Array.to_list s.chunks)
  in
  let sum l = List.fold_left (fun a (m : Schedule.chunk_meta) -> a +. m.size) 0.0 l in
  let rec go = function
    | [] -> Ok ()
    | Collective.Gather_chunk { id; size; src; dsts } :: rest ->
        let l = frs id in
        if l = [] then err "ref: demand chunk %d unscheduled" id
        else if Float.abs (sum l -. size) > 1e-3 *. size then
          err "ref: demand chunk %d size mismatch" id
        else if
          List.for_all
            (fun (m : Schedule.chunk_meta) ->
              m.mode = `Gather
              && List.mem src m.initial
              && List.for_all
                   (fun d -> List.mem d m.wanted || List.mem d m.initial)
                   dsts)
            l
        then go rest
        else err "ref: demand chunk %d fraction mismatched" id
    | Collective.Reduce_chunk { id; size; dst; srcs } :: rest ->
        let l = frs id in
        if l = [] then err "ref: demand chunk %d unscheduled" id
        else if Float.abs (sum l -. size) > 1e-3 *. size then
          err "ref: demand chunk %d size mismatch" id
        else if
          List.for_all
            (fun (m : Schedule.chunk_meta) ->
              m.mode = `Reduce
              && m.wanted = [ dst ]
              && List.sort_uniq compare m.initial = List.sort_uniq compare srcs)
            l
        then go rest
        else err "ref: demand chunk %d fraction mismatched" id
  in
  go (Collective.chunks phase)

let covers topo coll schedules =
  ignore topo;
  let phases = Collective.phases coll in
  if List.length phases <> List.length schedules then
    err "ref: expected %d phase schedules, got %d" (List.length phases)
      (List.length schedules)
  else
    List.fold_left2
      (fun acc phase s ->
        let* () = acc in
        covers_phase phase s)
      (Ok ()) phases schedules
