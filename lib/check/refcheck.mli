(** Independent reference interpreter for schedule semantics — the
    differential oracle for {!Syccl_sim.Validate}.

    Gather chunks propagate holder sets to a fixpoint and count deliveries;
    reduce chunks execute under the simulator's need-counting rule and
    propagate multisets of contributor ids, so duplicated, dropped,
    garbage-fed or cyclic transfers surface as a wrong contribution
    multiset at the destination or as a stalled execution.  Shares no code
    or traversal order with [Validate]: a hole must exist in both,
    independently, to go unnoticed. *)

val run_schedule : Syccl_sim.Schedule.t -> (unit, string) result
(** Execute every chunk of one phase schedule under reference semantics. *)

val covers_phase :
  Syccl_collective.Collective.t -> Syccl_sim.Schedule.t ->
  (unit, string) result
(** {!run_schedule} plus demand coverage for one collective phase: sizes
    sum per tag, gather sources/destinations and exact reduce contributor
    sets match the demand. *)

val covers :
  Syccl_topology.Topology.t -> Syccl_collective.Collective.t ->
  Syccl_sim.Schedule.t list -> (unit, string) result
(** Whole-outcome check: one schedule per collective phase. *)
