(* Greedy delta-debugging for schedule counterexamples.

   Given a failing schedule and the predicate that witnesses the failure,
   repeatedly try removing one transfer (then one whole chunk, remapping
   transfer chunk indices) and keep any removal that still fails, until a
   full pass removes nothing.  The result is 1-minimal: removing any single
   remaining transfer or chunk makes the failure disappear, which is what a
   checked-in reproducer should look like. *)

module Schedule = Syccl_sim.Schedule

let remove_nth l n = List.filteri (fun i _ -> i <> n) l

let drop_xfer (s : Schedule.t) i = { s with Schedule.xfers = remove_nth s.Schedule.xfers i }

(* Remove chunk [c] entirely: its metadata, its transfers, and shift the
   chunk index of every transfer above it. *)
let drop_chunk (s : Schedule.t) c =
  let chunks =
    Array.of_list (remove_nth (Array.to_list s.Schedule.chunks) c)
  in
  let xfers =
    List.filter_map
      (fun (x : Schedule.xfer) ->
        if x.chunk = c then None
        else if x.chunk > c then Some { x with Schedule.chunk = x.chunk - 1 }
        else Some x)
      s.Schedule.xfers
  in
  { Schedule.chunks; xfers }

(* One greedy pass: try each single-element removal in order, restarting
   from the shrunk schedule whenever one sticks. *)
let pass ~still_fails (s : Schedule.t) =
  let shrunk = ref false in
  let cur = ref s in
  let continue_ = ref true in
  while !continue_ do
    continue_ := false;
    let nx = List.length !cur.Schedule.xfers in
    (let i = ref 0 in
     while !i < nx && not !continue_ do
       let candidate = drop_xfer !cur !i in
       if still_fails candidate then begin
         cur := candidate;
         shrunk := true;
         continue_ := true
       end;
       incr i
     done);
    if not !continue_ then begin
      let nc = Array.length !cur.Schedule.chunks in
      let c = ref 0 in
      while !c < nc && not !continue_ do
        if nc > 1 then begin
          let candidate = drop_chunk !cur !c in
          if still_fails candidate then begin
            cur := candidate;
            shrunk := true;
            continue_ := true
          end
        end;
        incr c
      done
    end
  done;
  (!cur, !shrunk)

let schedule ~still_fails (s : Schedule.t) =
  if not (still_fails s) then s else fst (pass ~still_fails s)
