(** Greedy delta-debugging for schedule counterexamples. *)

val schedule :
  still_fails:(Syccl_sim.Schedule.t -> bool) ->
  Syccl_sim.Schedule.t -> Syccl_sim.Schedule.t
(** Repeatedly remove single transfers (then whole chunks, remapping
    transfer chunk indices) while [still_fails] holds, to a fixpoint.  The
    result is 1-minimal: removing any single remaining transfer or chunk
    makes the failure disappear.  Returns the input unchanged if it does
    not satisfy [still_fails]. *)
