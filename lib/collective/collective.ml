type kind =
  | SendRecv
  | Broadcast
  | Scatter
  | Gather
  | Reduce
  | AllGather
  | AllToAll
  | ReduceScatter
  | AllReduce

let kind_name = function
  | SendRecv -> "SendRecv"
  | Broadcast -> "Broadcast"
  | Scatter -> "Scatter"
  | Gather -> "Gather"
  | Reduce -> "Reduce"
  | AllGather -> "AllGather"
  | AllToAll -> "AlltoAll"
  | ReduceScatter -> "ReduceScatter"
  | AllReduce -> "AllReduce"

let kind_of_name = function
  | "SendRecv" -> SendRecv
  | "Broadcast" -> Broadcast
  | "Scatter" -> Scatter
  | "Gather" -> Gather
  | "Reduce" -> Reduce
  | "AllGather" -> AllGather
  | "AlltoAll" -> AllToAll
  | "ReduceScatter" -> ReduceScatter
  | "AllReduce" -> AllReduce
  | s -> invalid_arg ("Collective.kind_of_name: " ^ s)

let is_reduce = function
  | Reduce | ReduceScatter | AllReduce -> true
  | SendRecv | Broadcast | Scatter | Gather | AllGather | AllToAll -> false

type t = { kind : kind; n : int; size : float; root : int; peer : int }

let make ?(root = 0) ?(peer = 0) kind ~n ~size =
  if size <= 0.0 then invalid_arg "Collective.make: size <= 0";
  if n < 2 then invalid_arg "Collective.make: n < 2";
  if root < 0 || root >= n then invalid_arg "Collective.make: root out of range";
  if peer < 0 || peer >= n then invalid_arg "Collective.make: peer out of range";
  { kind; n; size; root; peer }

let chunk_size t =
  match t.kind with
  | SendRecv | Broadcast | Reduce -> t.size
  | Scatter | Gather | AllGather | ReduceScatter | AllReduce ->
      t.size /. float_of_int t.n
  | AllToAll -> t.size /. float_of_int t.n

let num_chunks t =
  match t.kind with
  | SendRecv | Broadcast | Reduce -> 1
  | Scatter | Gather -> t.n - 1
  | AllGather | ReduceScatter -> t.n
  | AllToAll -> t.n * (t.n - 1)
  | AllReduce -> 2 * t.n

type chunk =
  | Gather_chunk of { id : int; size : float; src : int; dsts : int list }
  | Reduce_chunk of { id : int; size : float; dst : int; srcs : int list }

let others n v = List.filter (fun u -> u <> v) (List.init n (fun i -> i))

let chunks t =
  let s = chunk_size t in
  match t.kind with
  | SendRecv ->
      [ Gather_chunk { id = 0; size = s; src = t.root; dsts = [ t.peer ] } ]
  | Broadcast ->
      [ Gather_chunk { id = 0; size = s; src = t.root; dsts = others t.n t.root } ]
  | Scatter ->
      List.mapi
        (fun i d -> Gather_chunk { id = i; size = s; src = t.root; dsts = [ d ] })
        (others t.n t.root)
  | Gather ->
      List.mapi
        (fun i src -> Gather_chunk { id = i; size = s; src; dsts = [ t.root ] })
        (others t.n t.root)
  | Reduce ->
      [ Reduce_chunk { id = 0; size = s; dst = t.root; srcs = others t.n t.root } ]
  | AllGather ->
      List.init t.n (fun i ->
          Gather_chunk { id = i; size = s; src = i; dsts = others t.n i })
  | ReduceScatter ->
      List.init t.n (fun i ->
          Reduce_chunk { id = i; size = s; dst = i; srcs = others t.n i })
  | AllToAll ->
      List.concat
        (List.init t.n (fun src ->
             List.map
               (fun dst ->
                 Gather_chunk
                   { id = (src * t.n) + dst; size = s; src; dsts = [ dst ] })
               (others t.n src)))
  | AllReduce -> invalid_arg "Collective.chunks: decompose AllReduce via phases"

let phases t =
  match t.kind with
  | AllReduce ->
      [
        { t with kind = ReduceScatter; size = t.size };
        { t with kind = AllGather; size = t.size };
      ]
  | _ -> [ t ]

type primitive = {
  p_root : int;
  p_kind : [ `Broadcast | `Scatter ];
  p_size : float;
  mirrored : bool;
}

let decompose t =
  let s = chunk_size t in
  match t.kind with
  | Broadcast ->
      [ { p_root = t.root; p_kind = `Broadcast; p_size = s; mirrored = false } ]
  | Reduce ->
      [ { p_root = t.root; p_kind = `Broadcast; p_size = s; mirrored = true } ]
  | Scatter ->
      [ { p_root = t.root; p_kind = `Scatter; p_size = t.size; mirrored = false } ]
  | Gather ->
      [ { p_root = t.root; p_kind = `Scatter; p_size = t.size; mirrored = true } ]
  | SendRecv ->
      [ { p_root = t.root; p_kind = `Broadcast; p_size = s; mirrored = false } ]
  | AllGather ->
      List.init t.n (fun i ->
          { p_root = i; p_kind = `Broadcast; p_size = s; mirrored = false })
  | ReduceScatter ->
      List.init t.n (fun i ->
          { p_root = i; p_kind = `Broadcast; p_size = s; mirrored = true })
  | AllToAll ->
      List.init t.n (fun i ->
          { p_root = i; p_kind = `Scatter; p_size = t.size; mirrored = false })
  | AllReduce -> invalid_arg "Collective.decompose: decompose phases of AllReduce"

let algbw t ~time = t.size /. time /. 1e9

let busbw t ~time =
  let nf = float_of_int t.n in
  let factor =
    match t.kind with
    | AllGather | ReduceScatter | AllToAll | Scatter | Gather -> (nf -. 1.0) /. nf
    | AllReduce -> 2.0 *. (nf -. 1.0) /. nf
    | SendRecv | Broadcast | Reduce -> 1.0
  in
  algbw t ~time *. factor

let pp fmt t =
  Format.fprintf fmt "%s(n=%d, size=%.0fB)" (kind_name t.kind) t.n t.size
