(** Collective communication demands (§2.1, Table 1).

    A collective involves GPUs [0..n-1] (aligned with topology ids), a set of
    equal-size chunks, and mapping functions [F_s] (initial placement) and
    [F_d] (destinations).  [size] follows the nccl-tests convention used on
    the paper's x-axes: the total collective buffer (AllGather /
    ReduceScatter / AllReduce) or the per-GPU buffer (AlltoAll); for
    rooted collectives it is the root's buffer. *)

type kind =
  | SendRecv
  | Broadcast
  | Scatter
  | Gather
  | Reduce
  | AllGather
  | AllToAll
  | ReduceScatter
  | AllReduce

val kind_name : kind -> string

val kind_of_name : string -> kind
(** Inverse of {!kind_name} on its exact output (e.g. ["AlltoAll"]).
    Raises [Invalid_argument] on any other string. *)

val is_reduce : kind -> bool
(** True for Reduce, Gather's dual family: Reduce, ReduceScatter, AllReduce. *)

type t = private {
  kind : kind;
  n : int;  (** number of participant GPUs *)
  size : float;  (** data size in bytes, nccl-tests convention *)
  root : int;  (** root for rooted collectives; 0 otherwise *)
  peer : int;  (** destination for SendRecv; 0 otherwise *)
}

val make : ?root:int -> ?peer:int -> kind -> n:int -> size:float -> t
(** Build a collective demand.  Raises [Invalid_argument] on non-positive
    size, [n < 2], or out-of-range root/peer. *)

val chunk_size : t -> float
(** Size of one chunk: [size / n] for the all-to-all family and Scatter /
    Gather, [size] for Broadcast / Reduce / SendRecv. *)

val num_chunks : t -> int

(** One transferable unit of the demand.  Gather-style chunks start on [src]
    and must reach every destination; reduce-style chunks are contributions
    from [srcs] that must arrive (combined) at [dst]. *)
type chunk =
  | Gather_chunk of { id : int; size : float; src : int; dsts : int list }
  | Reduce_chunk of { id : int; size : float; dst : int; srcs : int list }

val chunks : t -> chunk list
(** The full demand as chunks.  AllReduce is expressed as its
    ReduceScatter-then-AllGather composition (§4.3) and therefore has no
    direct chunk list; use {!phases} first. *)

val phases : t -> t list
(** AllReduce decomposes into [\[ReduceScatter; AllGather\]] over the same
    GPUs (§4.3); every other collective is a single phase. *)

(** A one-to-all primitive obtained by decomposing an all-to-all collective
    (§4.3).  [mirrored] marks reduce-family primitives whose schedule is the
    time-reversal of the corresponding Broadcast/Scatter schedule. *)
type primitive = {
  p_root : int;
  p_kind : [ `Broadcast | `Scatter ];
  p_size : float;  (** size of the data the primitive moves from/to the root *)
  mirrored : bool;
}

val decompose : t -> primitive list
(** Isomorphic one-to-all primitives for a single-phase collective: AllGather
    → n Broadcasts, AlltoAll → n Scatters, ReduceScatter → n mirrored
    Broadcasts, rooted collectives → one primitive.  Raises
    [Invalid_argument] on AllReduce (decompose its {!phases} instead). *)

val algbw : t -> time:float -> float
(** Algorithm bandwidth in GB/s: [size / time / 1e9]. *)

val busbw : t -> time:float -> float
(** Bus bandwidth (nccl-tests definition): algbw scaled by [(n-1)/n] for the
    AllGather family, [2(n-1)/n] for AllReduce, [1] otherwise. *)

val pp : Format.formatter -> t -> unit
