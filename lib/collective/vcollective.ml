module Collective = Collective

type t = AllGatherV of float array | AllToAllV of float array array

let make_allgatherv sizes =
  if Array.length sizes < 2 then invalid_arg "Vcollective: n < 2";
  if Array.exists (fun s -> s < 0.0) sizes then invalid_arg "Vcollective: negative size";
  if not (Array.exists (fun s -> s > 0.0) sizes) then
    invalid_arg "Vcollective: all sizes zero";
  AllGatherV (Array.copy sizes)

let make_alltoallv sizes =
  let n = Array.length sizes in
  if n < 2 then invalid_arg "Vcollective: n < 2";
  Array.iter
    (fun row ->
      if Array.length row <> n then invalid_arg "Vcollective: non-square matrix";
      if Array.exists (fun s -> s < 0.0) row then
        invalid_arg "Vcollective: negative size")
    sizes;
  let some_positive = ref false in
  Array.iteri
    (fun i row -> Array.iteri (fun j s -> if i <> j && s > 0.0 then some_positive := true) row)
    sizes;
  if not !some_positive then invalid_arg "Vcollective: all sizes zero";
  AllToAllV (Array.map Array.copy sizes)

let num_gpus = function
  | AllGatherV sizes -> Array.length sizes
  | AllToAllV sizes -> Array.length sizes

let total_bytes = function
  | AllGatherV sizes ->
      let n = Array.length sizes in
      Array.fold_left ( +. ) 0.0 sizes *. float_of_int (n - 1)
  | AllToAllV sizes ->
      let acc = ref 0.0 in
      Array.iteri
        (fun i row -> Array.iteri (fun j s -> if i <> j then acc := !acc +. s) row)
        sizes;
      !acc

let chunks t =
  match t with
  | AllGatherV sizes ->
      let n = Array.length sizes in
      let next = ref 0 in
      List.filter_map
        (fun i ->
          if sizes.(i) <= 0.0 then None
          else begin
            let id = !next in
            incr next;
            Some
              (Collective.Gather_chunk
                 {
                   id;
                   size = sizes.(i);
                   src = i;
                   dsts = List.filter (fun v -> v <> i) (List.init n (fun v -> v));
                 })
          end)
        (List.init n (fun i -> i))
  | AllToAllV sizes ->
      let n = Array.length sizes in
      let next = ref 0 in
      List.concat
        (List.init n (fun i ->
             List.filter_map
               (fun j ->
                 if i = j || sizes.(i).(j) <= 0.0 then None
                 else begin
                   let id = !next in
                   incr next;
                   Some
                     (Collective.Gather_chunk
                        { id; size = sizes.(i).(j); src = i; dsts = [ j ] })
                 end)
               (List.init n (fun j -> j))))

let symmetric_base = function
  | AllGatherV sizes -> Array.fold_left Float.min infinity sizes
  | AllToAllV sizes ->
      let m = ref infinity in
      Array.iteri
        (fun i row ->
          Array.iteri (fun j s -> if i <> j then m := Float.min !m s) row)
        sizes;
      !m

let algbw t ~time = total_bytes t /. time /. 1e9
