(** Asymmetric (vector) collectives: AllGatherV and AlltoAllV (§8).

    MoE-style workloads send different amounts per GPU, so the collective
    symmetry SyCCL exploits does not hold; the paper recommends
    heuristic-based synthesis, optionally seeded with a symmetric base
    solution.  This module gives those demands a first-class representation;
    {!Syccl.Vsynth} provides the synthesis paths. *)

type t =
  | AllGatherV of float array
      (** [sizes.(i)] = bytes GPU [i] contributes; everyone receives all *)
  | AllToAllV of float array array
      (** [sizes.(i).(j)] = bytes GPU [i] sends to GPU [j]; the diagonal is
          ignored (local) *)

val make_allgatherv : float array -> t
(** Validates: at least two ranks, non-negative sizes, some positive size. *)

val make_alltoallv : float array array -> t
(** Validates: square matrix, at least two ranks, non-negative sizes, some
    positive off-diagonal entry. *)

val num_gpus : t -> int

val total_bytes : t -> float
(** Total bytes that must cross the network. *)

val chunks : t -> Collective.chunk list
(** The demand as gather chunks (empty contributions are skipped); chunk ids
    are dense and stable. *)

val symmetric_base : t -> float
(** The largest per-GPU size shared by every rank: [min_i sizes_i] for
    AllGatherV, [min_{i≠j} sizes_{ij}] for AlltoAllV.  0 when some rank
    sends nothing. *)

val algbw : t -> time:float -> float
(** Aggregate bytes moved per second, in GB/s.  Schedule validation against
    a vector demand lives in {!Syccl.Vsynth.covers} (the simulator layer
    depends on this one, not vice versa). *)
