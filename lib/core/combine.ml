module Topology = Syccl_topology.Topology
module Linalg = Syccl_util.Linalg

type combo = { sketches : (Sketch.t * float) list; desc : string }

let add_load acc w =
  Array.iteri (fun d row -> Array.iteri (fun g v -> acc.(d).(g) <- acc.(d).(g) +. v) row) w

let zero_load topo =
  Array.init (Topology.num_dims topo) (fun d ->
      Array.make (Topology.groups_count topo ~dim:d) 0.0)

let balanced load =
  Array.for_all
    (fun row ->
      let total = Array.fold_left ( +. ) 0.0 row in
      total = 0.0
      ||
      let lo = Array.fold_left Float.min infinity row in
      let hi = Array.fold_left Float.max neg_infinity row in
      hi -. lo <= 1e-6 *. Float.max 1.0 hi)
    load

let replicate_balanced topo ?max_replicas sketch =
  let cap =
    match max_replicas with
    | Some c -> c
    | None ->
        2
        * Array.fold_left
            (fun acc d -> max acc (Topology.groups_count topo ~dim:d))
            1
            (Array.init (Topology.num_dims topo) (fun d -> d))
  in
  let shape = Sketch.shape topo sketch in
  let load = zero_load topo in
  add_load load (Sketch.workload topo sketch);
  let replicas = ref [ sketch ] in
  let count = ref 1 in
  while (not (balanced load)) && !count < cap do
    match
      Search.instantiate topo ~kind:sketch.Sketch.kind ~root:sketch.Sketch.root
        ~shape ~load
    with
    | None -> count := cap (* shape no longer instantiable; stop *)
    | Some r ->
        add_load load (Sketch.workload topo r);
        replicas := r :: !replicas;
        incr count
  done;
  List.rev !replicas

let all_to_all_replicas topo sketch =
  let n = Topology.num_gpus topo in
  List.init n (fun v ->
      if v = sketch.Sketch.root then sketch
      else
        let perm = Topology.automorphism_to topo ~src:sketch.Sketch.root ~dst:v in
        Sketch.map topo perm sketch)

let allocate topo workloads =
  let k = List.length workloads in
  if k = 0 then None
  else begin
    let nd = Topology.num_dims topo in
    (* Full utilization is per physical port group: dimensions sharing the
       NIC (same-rail and spine traffic) pool their workload against one
       capacity. *)
    let pg_of d = (Topology.dim topo d).Syccl_topology.Topology.port_group in
    let pgs =
      List.sort_uniq compare (List.init nd (fun d -> pg_of d))
    in
    let share = Topology.bandwidth_share topo in
    let pg_share pg =
      (* Every dim of the port group reports the same port's bandwidth. *)
      let d = List.find (fun d -> pg_of d = pg) (List.init nd (fun d -> d)) in
      share.(d)
    in
    let w =
      Array.of_list
        (List.map
           (fun per_dim ->
             List.map
               (fun pg ->
                 List.fold_left
                   (fun a d -> if pg_of d = pg then a +. per_dim.(d) else a)
                   0.0
                   (List.init nd (fun d -> d)))
               pgs
             |> Array.of_list)
           workloads)
    in
    let u = Array.of_list (List.map pg_share pgs) in
    let total_u = Array.fold_left ( +. ) 0.0 u in
    let u = Array.map (fun x -> x /. total_u) u in
    (* Rows: for every port group, Σ_i t_i (w_{i,pg} − u_pg Σ_pg' w_{i,pg'})
       = 0; plus Σ t_i = 1.  Every port group appears, so a candidate set
       leaving capacity idle is rejected. *)
    let npg = List.length pgs in
    let rows =
      List.init npg (fun p ->
          Array.init k (fun i ->
              let wtot = Array.fold_left ( +. ) 0.0 w.(i) in
              w.(i).(p) -. (u.(p) *. wtot)))
      @ [ Array.make k 1.0 ]
    in
    let rhs = Array.of_list (List.init npg (fun _ -> 0.0) @ [ 1.0 ]) in
    let a = Array.of_list rows in
    match Linalg.lstsq a rhs with
    | None -> None
    | Some t ->
        let ok =
          Linalg.residual a t rhs < 1e-6 && Array.for_all (fun ti -> ti >= -1e-9) t
        in
        if ok then Some (Array.map (fun ti -> Float.max 0.0 ti) t) else None
  end

(* Number of sketches sharing one root in a replica set: the chunk fraction
   each carries is 1 / copies (for equal split within a balanced set). *)
let copies_per_root replicas =
  let per_root = Hashtbl.create 8 in
  List.iter
    (fun (s : Sketch.t) ->
      Hashtbl.replace per_root s.Sketch.root
        (1 + Option.value (Hashtbl.find_opt per_root s.Sketch.root) ~default:0))
    replicas;
  Hashtbl.fold (fun _ c acc -> max acc c) per_root 1

let set_dim_workload topo replicas =
  let acc = Array.make (Topology.num_dims topo) 0.0 in
  List.iter
    (fun s ->
      Array.iteri (fun d v -> acc.(d) <- acc.(d) +. v) (Sketch.dim_workload topo s))
    replicas;
  acc

exception Out_of_time

(* [expand ~balance base] yields the replica set of one base sketch: without
   balance, the minimal set (one sketch per root); with balance, the
   group-balanced set of §4.2 step 1.  Combo generation is monotone — each
   step appends candidates — so deadline expiry simply stops generating and
   returns the combos built so far (solo combos first, so a tight budget
   still yields the latency-optimal candidates). *)
let build_combos ~max_combos ~budget topo bases expand =
  let combos = ref [] in
  let check_budget () =
    if Syccl_util.Budget.expired budget then begin
      Syccl_util.Budget.mark_degraded budget;
      raise Out_of_time
    end
  in
  (* Solo combos: a single sketch per root, carrying the whole chunk — the
     latency-optimal option for small sizes (§4.2). *)
  List.iteri
    (fun i base ->
      combos :=
        {
          sketches = List.map (fun s -> (s, 1.0)) (expand ~balance:false base);
          desc = Printf.sprintf "shape%d solo" i;
        }
        :: !combos)
    bases;
  (try
  (* Balanced replica combos (step 1). *)
  let balanced_sets =
    List.mapi
      (fun i base ->
        check_budget ();
        (i, expand ~balance:true base))
      bases
  in
  List.iter
    (fun (i, replicas) ->
      let copies = copies_per_root replicas in
      if copies > 1 then begin
        let t = 1.0 /. float_of_int copies in
        combos :=
          {
            sketches = List.map (fun s -> (s, t)) replicas;
            desc = Printf.sprintf "shape%d x%d" i copies;
          }
          :: !combos
      end)
    balanced_sets;
  (* Step 2: dimension-balanced integrations of 2–3 balanced sets.  Set
     workloads and per-root copy counts are precomputed: the tuple loops
     must not rescan hundreds of sketches per pair. *)
  let sets = Array.of_list balanced_sets in
  let ns = Array.length sets in
  let set_wl = Array.map (fun (_, reps) -> set_dim_workload topo reps) sets in
  let set_copies = Array.map (fun (_, reps) -> copies_per_root reps) sets in
  let try_tuple idxs =
    check_budget ();
    let wl = List.map (fun i -> set_wl.(i)) idxs in
    match allocate topo wl with
    | None -> ()
    | Some t ->
        let parts =
          List.concat
            (List.mapi
               (fun j i ->
                 let _, replicas = sets.(i) in
                 let frac = t.(j) /. float_of_int set_copies.(i) in
                 if frac < 1e-9 then []
                 else List.map (fun s -> (s, frac)) replicas)
               idxs)
        in
        let nonzero = Array.to_list t |> List.filter (fun x -> x > 1e-9) in
        if parts <> [] && List.length nonzero >= 2 then
          combos :=
            {
              sketches = parts;
              desc =
                Printf.sprintf "mix[%s] t=[%s]"
                  (String.concat ";" (List.map string_of_int idxs))
                  (String.concat ";"
                     (Array.to_list (Array.map (Printf.sprintf "%.3f") t)));
            }
            :: !combos
  in
  for i = 0 to ns - 1 do
    for j = i + 1 to ns - 1 do
      try_tuple [ i; j ]
    done
  done;
  if Topology.num_dims topo >= 3 then
    for i = 0 to ns - 1 do
      for j = i + 1 to ns - 1 do
        for l = j + 1 to ns - 1 do
          try_tuple [ i; j; l ]
        done
      done
    done
  with Out_of_time -> ());
  let all = List.rev !combos in
  if List.length all <= max_combos then all
  else List.filteri (fun i _ -> i < max_combos) all

let combos_one_to_all ?(max_combos = 48)
    ?(budget = Syccl_util.Budget.unlimited) topo sketches =
  Syccl_util.Trace.with_span ~cat:"combine" "combine.one_to_all"
    ~args:[ ("sketches", string_of_int (List.length sketches)) ]
  @@ fun () ->
  build_combos ~max_combos ~budget topo sketches (fun ~balance base ->
      if balance then replicate_balanced topo base else [ base ])

let combos_all_to_all ?(max_combos = 48)
    ?(budget = Syccl_util.Budget.unlimited) topo sketches =
  Syccl_util.Trace.with_span ~cat:"combine" "combine.all_to_all"
    ~args:[ ("sketches", string_of_int (List.length sketches)) ]
  @@ fun () ->
  build_combos ~max_combos ~budget topo sketches (fun ~balance base ->
      ignore balance;
      (* Rotating the root through every GPU already spreads group workload
         evenly on the symmetric topologies we target. *)
      all_to_all_replicas topo base)
