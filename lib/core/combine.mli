(** Sketch combinations (§4.2–4.3): replication for per-group balance, chunk
    allocation for per-dimension balance, and the all-to-all extension. *)

type combo = {
  sketches : (Sketch.t * float) list;
      (** (sketch, fraction of its chunk it carries); fractions per root sum
          to 1 *)
  desc : string;  (** human-readable provenance, e.g. "shape0 x4 + shape1 x7" *)
}

val replicate_balanced :
  Syccl_topology.Topology.t -> ?max_replicas:int -> Sketch.t -> Sketch.t list
(** Step 1: re-instantiate the sketch's shape with load-aware destination
    mapping until every dimension's per-group workload is uniform (or the
    replica cap, default 2× the largest group count, is reached).  The result
    includes the original sketch first. *)

val allocate :
  Syccl_topology.Topology.t -> float array list -> float array option
(** Step 2: given each candidate's per-dimension workload vector, find chunk
    fractions [t_i ≥ 0, Σt_i = 1] making load proportional to bandwidth for
    {e every} physical port group (dimensions sharing a port pool their
    workload).  [None] if no valid allocation exists — including when the
    candidates leave a port group entirely idle. *)

val all_to_all_replicas :
  Syccl_topology.Topology.t -> Sketch.t -> Sketch.t list
(** §4.3: replicate a one-to-all sketch to every root through the canonical
    automorphisms, yielding the N isomorphic sketches of the all-to-all
    decomposition. *)

val combos_one_to_all :
  ?max_combos:int ->
  ?budget:Syccl_util.Budget.t ->
  Syccl_topology.Topology.t ->
  Sketch.t list ->
  combo list
(** Single-sketch combos (small sizes), balanced replica combos, and
    dimension-balanced integrations of pairs/triples of replica combos.
    When [budget] expires mid-generation the combos built so far are
    returned (solo combos are generated first, so a tight deadline still
    yields candidates). *)

val combos_all_to_all :
  ?max_combos:int ->
  ?budget:Syccl_util.Budget.t ->
  Syccl_topology.Topology.t ->
  Sketch.t list ->
  combo list
(** Same construction where each base sketch is first expanded to its N
    per-root replicas. *)
