module Topology = Syccl_topology.Topology
module Link = Syccl_topology.Link

let gpu_list l = String.concat "," (List.map string_of_int l)

let sketch topo (s : Sketch.t) =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "%s sketch rooted at GPU %d, %d stage%s\n"
       (match s.Sketch.kind with `Broadcast -> "Broadcast" | `Scatter -> "Scatter")
       s.Sketch.root s.Sketch.num_stages
       (if s.Sketch.num_stages = 1 then "" else "s"));
  let sds = Sketch.subdemands topo s in
  for k = 0 to s.Sketch.num_stages - 1 do
    Buffer.add_string buf (Printf.sprintf "  stage %d:\n" k);
    List.iter
      (fun (sd : Sketch.subdemand) ->
        if sd.Sketch.sd_stage = k then begin
          let d = Topology.dim topo sd.Sketch.sd_dim in
          Buffer.add_string buf
            (Printf.sprintf "    R_{%d,%d,%d} over %s (%s): {%s} -> {%s}\n" k
               sd.Sketch.sd_dim sd.Sketch.sd_group d.Topology.dim_name
               (Format.asprintf "%a" Link.pp d.Topology.link)
               (gpu_list sd.Sketch.srcs) (gpu_list sd.Sketch.dsts))
        end)
      sds
  done;
  let w = Sketch.dim_workload topo s in
  Buffer.add_string buf "  per-dimension workload: ";
  Array.iteri
    (fun d v ->
      Buffer.add_string buf
        (Printf.sprintf "%s%s=%.0f"
           (if d > 0 then ", " else "")
           (Topology.dim topo d).Topology.dim_name v))
    w;
  Buffer.add_char buf '\n';
  Buffer.contents buf

let combo topo (c : Combine.combo) =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "combination %s\n" c.Combine.desc);
  let roots = Hashtbl.create 16 in
  List.iter
    (fun ((s : Sketch.t), f) ->
      Hashtbl.replace roots s.Sketch.root
        (f +. Option.value (Hashtbl.find_opt roots s.Sketch.root) ~default:0.0))
    c.Combine.sketches;
  Buffer.add_string buf
    (Printf.sprintf "  %d sketches over %d roots\n"
       (List.length c.Combine.sketches) (Hashtbl.length roots));
  (* Fraction-weighted workload per dimension vs bandwidth share. *)
  let nd = Topology.num_dims topo in
  let w = Array.make nd 0.0 in
  List.iter
    (fun (s, f) ->
      Array.iteri (fun d v -> w.(d) <- w.(d) +. (f *. v)) (Sketch.dim_workload topo s))
    c.Combine.sketches;
  let total = Array.fold_left ( +. ) 0.0 w in
  let share = Topology.bandwidth_share topo in
  for d = 0 to nd - 1 do
    let frac = if total > 0.0 then w.(d) /. total else 0.0 in
    Buffer.add_string buf
      (Printf.sprintf "  dim %d (%s): %.0f%% of traffic vs %.0f%% of bandwidth%s\n" d
         (Topology.dim topo d).Topology.dim_name (100.0 *. frac)
         (100.0 *. share.(d))
         (if frac > share.(d) +. 0.15 then "  <- likely bottleneck" else ""))
  done;
  (match c.Combine.sketches with
  | (s, f) :: _ ->
      Buffer.add_string buf
        (Printf.sprintf "  representative sketch (fraction %.3f):\n" f);
      Buffer.add_string buf (sketch topo s)
  | [] -> ());
  Buffer.contents buf

(* Critical-path analysis of one schedule phase: which port the makespan
   rests on, how saturated the top ports are, and per dimension whether the
   wire time is latency (α) or bandwidth (β).  Rendered into [buf]. *)
let phase_analysis buf topo i s =
  let module Analysis = Syccl_sim.Analysis in
  let a = Analysis.analyze topo s in
  Buffer.add_string buf
    (Printf.sprintf "phase %d: %d transfers, makespan %.1f us, %.2f hops/delivery\n"
       i (Syccl_sim.Schedule.num_xfers s) (a.Analysis.makespan *. 1e6)
       a.Analysis.avg_hops);
  Array.iteri
    (fun d bytes ->
      if bytes > 0.0 then
        Buffer.add_string buf
          (Printf.sprintf
             "  dim %d (%s): %.2f MB, alpha %.0f%% / beta %.0f%% of wire time\n"
             d (Syccl_topology.Topology.dim topo d).Syccl_topology.Topology.dim_name
             (bytes /. 1e6)
             (100.0 *. Analysis.alpha_share a d)
             (100.0 *. (1.0 -. Analysis.alpha_share a d))))
    a.Analysis.dim_bytes;
  List.iteri
    (fun j (p : Analysis.port_stats) ->
      if j < 4 then
        Buffer.add_string buf
          (Printf.sprintf "  port gpu%d/pg%d/%s: busy %.1f us, %.0f%% utilized%s\n"
             p.Analysis.gpu p.Analysis.port_group
             (match p.Analysis.dir with `Egress -> "out" | `Ingress -> "in")
             (p.Analysis.busy *. 1e6)
             (p.Analysis.utilization *. 100.0)
             (if j = 0 then "  <- bottleneck" else "")))
    a.Analysis.ports

let outcome ?provenance topo (o : Synthesizer.outcome) =
  let b = o.Synthesizer.breakdown in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf
       "winner: %s\npredicted: %.1f us, %.1f GBps busbw\nsynthesis: %.2fs \
        (search %.2fs, combine %.2fs, coarse solve %.2fs, fine solve %.2fs)\n\
        explored: %d sketches, %d combinations\n\
        solver: %d sub-solve memo hits / %d misses, %d MILP models, %d B&B nodes\n"
       o.Synthesizer.chosen (o.Synthesizer.time *. 1e6) o.Synthesizer.busbw
       o.Synthesizer.synth_time b.Synthesizer.search_s b.Synthesizer.combine_s
       b.Synthesizer.solve1_s b.Synthesizer.solve2_s o.Synthesizer.num_sketches
       o.Synthesizer.num_combos b.Synthesizer.cache_hits b.Synthesizer.cache_misses
       b.Synthesizer.milp_solves b.Synthesizer.milp_nodes);
  Buffer.add_string buf
    (Printf.sprintf "ladder: %s rung%s\n"
       (Synthesizer.level_name o.Synthesizer.degraded)
       (match o.Synthesizer.degrade_reason with
       | None -> ""
       | Some reason -> Printf.sprintf " (degraded: %s)" reason));
  (match provenance with
  | None -> ()
  | Some p -> Buffer.add_string buf (Printf.sprintf "provenance: %s\n" p));
  Buffer.add_string buf
    (Printf.sprintf "schedule: %s\n"
       (String.concat " + "
          (List.map
             (fun s ->
               Printf.sprintf "%d transfers" (Syccl_sim.Schedule.num_xfers s))
             o.Synthesizer.schedules)));
  List.iteri (fun i s -> phase_analysis buf topo i s) o.Synthesizer.schedules;
  Buffer.contents buf
