(** Human-readable reports for sketches and combinations.

    Appendix C argues a key practical advantage of SyCCL over raw MILP
    output: "we expect SyCCL's high-level sketches to be readable by users
    and capable of being further implemented and optimized manually".  This
    module renders that readable form: per-stage prose for a sketch, and a
    fraction/workload table for a combination. *)

val sketch : Syccl_topology.Topology.t -> Sketch.t -> string
(** Multi-line description: one paragraph per stage listing each
    sub-demand's dimension, group, sources and destinations, followed by the
    per-dimension workload summary of §4.2. *)

val combo : Syccl_topology.Topology.t -> Combine.combo -> string
(** Description of a combination: number of sketches per root, chunk
    fractions, per-dimension workload shares vs the topology's bandwidth
    shares (flagging imbalance), and the full rendering of one
    representative sketch. *)

val outcome :
  ?provenance:string -> Syccl_topology.Topology.t -> Synthesizer.outcome -> string
(** Summary of a synthesis run: the winning combination, predicted time and
    bus bandwidth, the step timings, the degradation-ladder rung (and the
    reason when the run degraded), and — per schedule phase — a critical-path
    analysis: top port utilization with the bottleneck flagged, and each
    dimension's α (latency) vs β (bandwidth) share of wire time.

    [provenance] is a free-form origin line ("registry entry KEY", "fresh
    synthesis under a 2 s budget") printed after the ladder rung, for
    callers explaining a stored or served schedule. *)
