(* Rerouting a healthy schedule around the dead hardware of a punctured
   topology: the degradation-ladder rung between a failed synthesis and
   giving up.  Instead of synthesizing from scratch on the punctured
   topology, take a schedule that is valid on the healthy base and replace
   every transfer that crosses dead hardware with an alternative delivery —
   a surviving holder of the chunk sends over a surviving edge, multi-hop
   through relays when no single-hop sender survives.

   Gather-mode chunks are rerouted directly.  Because transfers are
   processed in causal order and a replacement sender is always an
   already-final holder, the rewritten delivery graph stays acyclic and
   every destination still receives exactly once.  Reduce-mode chunks ride
   the reverse involution: [Schedule.reverse] turns a reduce tree into a
   gather tree (dead edges are undirected, so the dead set is the same),
   the gather logic reroutes it, and a second reverse restores the
   reduction. *)

module Topology = Syccl_topology.Topology
module Fault = Syccl_topology.Fault
module Schedule = Syccl_sim.Schedule

let fail fmt = Format.kasprintf failwith fmt

(* Surviving dimensions connecting two GPUs, the transfer's own dimension
   first (stay on the intended link class when it survives). *)
let alive_dims topo ~prefer u v =
  let all =
    List.filter
      (fun d ->
        Topology.group_of topo ~dim:d u = Topology.group_of topo ~dim:d v
        && Topology.edge_alive topo ~dim:d u v)
      (List.init (Topology.num_dims topo) (fun d -> d))
  in
  if List.mem prefer all then prefer :: List.filter (fun d -> d <> prefer) all
  else all

(* Shortest surviving path from any GPU in [from] to [target] through
   alive GPUs outside [from]; each hop is (src, dst, dim).  None when the
   fault set disconnects the target. *)
let alive_path topo ~from target =
  let n = Topology.num_gpus topo in
  let parent = Array.make n None in
  let seen = Array.make n false in
  let q = Queue.create () in
  List.iter
    (fun v ->
      if Topology.gpu_alive topo v then begin
        seen.(v) <- true;
        Queue.add v q
      end)
    from;
  let found = ref false in
  while (not !found) && not (Queue.is_empty q) do
    let u = Queue.pop q in
    for v = 0 to n - 1 do
      if (not seen.(v)) && Topology.gpu_alive topo v then
        match alive_dims topo ~prefer:(-1) u v with
        | [] -> ()
        | d :: _ ->
            seen.(v) <- true;
            parent.(v) <- Some (u, d);
            if v = target then found := true else Queue.add v q
    done
  done;
  if not !found then None
  else begin
    let rec walk v acc =
      match parent.(v) with
      | None -> acc
      | Some (u, d) -> walk u ((u, v, d) :: acc)
    in
    Some (walk target [])
  end

(* Reroute one gather-mode schedule.  Transfers are processed per chunk in
   causal order; [holders] only ever grows, so progress is monotone and the
   loop runs at most once per original transfer plus one BFS per broken
   delivery. *)
let reroute_gather topo (s : Schedule.t) =
  let out = ref [] in
  Array.iteri
    (fun c (meta : Schedule.chunk_meta) ->
      List.iter
        (fun v ->
          if not (Topology.gpu_alive topo v) then
            fail "Reroute: chunk %d is wanted at GPU %d, which is down" c v)
        meta.Schedule.wanted;
      let holders = Hashtbl.create 16 in
      List.iter
        (fun v -> if Topology.gpu_alive topo v then Hashtbl.replace holders v ())
        meta.Schedule.initial;
      if Hashtbl.length holders = 0 then
        fail "Reroute: chunk %d has no surviving initial holder" c;
      let remaining =
        ref (List.filter (fun (x : Schedule.xfer) -> x.chunk = c) s.xfers)
      in
      let emit x = out := x :: !out in
      while !remaining <> [] do
        (* Prefer the first causally-ready transfer; fall back to the first
           one outright (its source was a dead relay we dropped — the
           destination is served from the holder set instead). *)
        let x =
          match
            List.find_opt
              (fun (x : Schedule.xfer) -> Hashtbl.mem holders x.src)
              !remaining
          with
          | Some x -> x
          | None -> List.hd !remaining
        in
        remaining := List.filter (fun y -> y != x) !remaining;
        let v = x.Schedule.dst in
        if Hashtbl.mem holders v then
          (* Already delivered (multi-hop relay passed through it, or it is
             a dead-relay delivery that became redundant): drop. *)
          ()
        else if not (Topology.gpu_alive topo v) then
          (* Delivery to a dead pure relay: drop it; transfers out of the
             relay will be re-sourced from the holder set. *)
          ()
        else if
          Hashtbl.mem holders x.Schedule.src
          && Topology.edge_alive topo ~dim:x.Schedule.dim x.Schedule.src v
        then begin
          emit x;
          Hashtbl.replace holders v ()
        end
        else begin
          (* Single-hop from any surviving holder, preferring the original
             dimension; multi-hop through surviving relays otherwise. *)
          let single =
            Hashtbl.fold
              (fun u () acc ->
                match acc with
                | Some _ -> acc
                | None -> (
                    if u = v then None
                    else
                      match alive_dims topo ~prefer:x.Schedule.dim u v with
                      | [] -> None
                      | d :: _ -> Some (u, d)))
              holders None
          in
          match single with
          | Some (u, d) ->
              emit { x with Schedule.src = u; dim = d };
              Hashtbl.replace holders v ()
          | None -> (
              let from = Hashtbl.fold (fun u () acc -> u :: acc) holders [] in
              match alive_path topo ~from v with
              | None ->
                  fail
                    "Reroute: chunk %d cannot reach GPU %d on the punctured \
                     topology (faults %s)"
                    c v
                    (Fault.encode (Topology.faults topo))
              | Some hops ->
                  List.iter
                    (fun (u, w, d) ->
                      emit
                        {
                          Schedule.chunk = c;
                          src = u;
                          dst = w;
                          dim = d;
                          prio = x.Schedule.prio;
                        };
                      Hashtbl.replace holders w ())
                    hops)
        end
      done)
    s.chunks;
  { s with Schedule.xfers = List.rev !out }

let schedule topo (s : Schedule.t) =
  let modes =
    Array.to_list
      (Array.map (fun (m : Schedule.chunk_meta) -> m.Schedule.mode) s.chunks)
  in
  if List.for_all (fun m -> m = `Gather) modes then reroute_gather topo s
  else if List.for_all (fun m -> m = `Reduce) modes then
    (* Reverse turns the reduce trees into gather trees over the same
       (undirected) edges; reroute there, then restore the reduction. *)
    Schedule.reverse (reroute_gather topo (Schedule.reverse s))
  else fail "Reroute: mixed gather/reduce schedule"

let schedules topo ss = List.map (schedule topo) ss
