(** Rerouting healthy schedules around dead hardware: the degradation rung
    between a failed synthesis on a punctured topology and giving up.

    Every transfer crossing dead hardware is replaced by a delivery from a
    surviving holder of the chunk over surviving edges (multi-hop through
    relays when needed); causal processing keeps the delivery graph acyclic
    and single-delivery, so the result still validates — the caller runs
    {!Syccl_sim.Validate.validate} on it like every other rung. *)

val schedule : Syccl_topology.Topology.t -> Syccl_sim.Schedule.t -> Syccl_sim.Schedule.t
(** Reroute one phase schedule onto the (punctured) topology.  Raises
    [Failure] when a wanted GPU is down or the fault set disconnects a
    delivery. *)

val schedules :
  Syccl_topology.Topology.t -> Syccl_sim.Schedule.t list -> Syccl_sim.Schedule.t list
(** {!schedule} on every phase. *)
