module Topology = Syccl_topology.Topology
module Fault = Syccl_topology.Fault

type config = {
  max_stages : int;
  prune_isomorphic : bool;
  prune_consistency : bool;
  relay_limit : int option;
  max_sketches : int;
  node_budget : int;
}

let default topo kind =
  {
    max_stages = Topology.num_dims topo + 1;
    prune_isomorphic = true;
    prune_consistency = true;
    relay_limit =
      (match kind with
      | `Scatter -> Some (max 1 (Topology.num_dims topo - 1))
      | `Broadcast -> None);
    max_sketches = 1024;
    node_budget = 200_000;
  }

(* On a punctured topology only candidates reachable from the covered
   sources over surviving intra-group edges can be served by the
   sub-solver; unreachable members must be covered through another
   dimension (or the demand honestly fails).  Identity when healthy. *)
let alive_cands topo ~dim members srcs cands =
  if Fault.is_empty (Topology.faults topo) || srcs = [] then cands
  else begin
    let reach = Hashtbl.create 8 in
    List.iter (fun v -> Hashtbl.replace reach v ()) srcs;
    let changed = ref true in
    while !changed do
      changed := false;
      Array.iter
        (fun v ->
          if
            (not (Hashtbl.mem reach v))
            && Array.exists
                 (fun u ->
                   u <> v && Hashtbl.mem reach u
                   && Topology.edge_alive topo ~dim u v)
                 members
          then begin
            Hashtbl.replace reach v ();
            changed := true
          end)
        members
    done;
    List.filter (Hashtbl.mem reach) cands
  end

(* Destination fan-outs worth exploring for a group with up to [m] uncovered
   GPUs: "cover everything" first (the shapes that finish in few stages),
   then halving powers of two.  Large-first ordering matters: the emission
   cap and node budget then favour complete, useful shapes. *)
let fanout_options m =
  let rec powers p acc = if p >= m then acc else powers (2 * p) (p :: acc) in
  List.sort_uniq compare (powers 1 [] @ [ m ]) |> List.rev

exception Done

let run ?config ?(budget = Syccl_util.Budget.unlimited) ?truncated topo ~kind
    ~root =
  Syccl_util.Trace.with_span ~cat:"search" "search.run"
    ~args:
      [
        ("topo", topo.Topology.name);
        ("kind", (match kind with `Broadcast -> "broadcast" | `Scatter -> "scatter"));
        ("root", string_of_int root);
      ]
  @@ fun () ->
  let n = Topology.num_gpus topo in
  let nd = Topology.num_dims topo in
  let cfg = match config with Some c -> c | None -> default topo kind in
  let results = ref [] and count = ref 0 in
  let seen = Hashtbl.create 64 in
  let exact_seen = Hashtbl.create 64 in
  let nodes = ref 0 in
  let emit stage_of parent dim_of k =
    let sketch =
      Sketch.make ~root ~kind ~num_stages:k ~stage_of:(Array.copy stage_of)
        ~parent:(Array.copy parent) ~dim_of:(Array.copy dim_of)
    in
    (* Identical sketches can be re-discovered across deepening iterations;
       drop exact duplicates regardless of the isomorphism-pruning flag. *)
    let exact =
      Sketch.hash_ints
        (Array.to_list stage_of @ Array.to_list parent @ Array.to_list dim_of)
    in
    let keep =
      if Hashtbl.mem exact_seen exact then false
      else begin
        Hashtbl.replace exact_seen exact ();
        if cfg.prune_isomorphic then begin
          let sg = Sketch.signature topo sketch in
          if Hashtbl.mem seen sg then false
          else begin
            Hashtbl.replace seen sg ();
            true
          end
        end
        else true
      end
    in
    if keep then begin
      results := sketch :: !results;
      incr count;
      if !count >= cfg.max_sketches then raise Done
    end
  in
  let stage_of = Array.make n (-1) in
  let parent = Array.make n (-1) in
  let dim_of = Array.make n (-1) in
  let depth = Array.make n 0 in
  let covered = Array.make n false in
  covered.(root) <- true;
  let num_covered = ref 1 in
  (* Isomorphism-invariant fingerprint of the current partial tree: distinct
     exploration paths reaching equivalent partial states are explored only
     once (pruning #1 applied during the search, not just on emission). *)
  let partial_signature k =
    let label = Sketch.structural_labels topo ~root ~stage_of ~parent ~dim_of in
    Hashtbl.hash (k, Sketch.hash_ints (List.sort compare (Array.to_list label)))
  in
  let visited = Hashtbl.create 1024 in
  (* One stage application: cover [r] destinations per eligible group of each
     chosen dimension.  Returns the applied coverings for undo, or [None]
     when pruned. *)
  let apply_stage k choice =
    let applied = ref [] in
    let undo () =
      List.iter
        (fun v ->
          covered.(v) <- false;
          stage_of.(v) <- -1;
          parent.(v) <- -1;
          dim_of.(v) <- -1;
          decr num_covered)
        !applied
    in
    let consistent = ref true in
    (* Canonical destination choice: prefer GPUs no covered GPU can already
       reach through another dimension ("remote" ones), so network stages
       reach fresh groups instead of re-covering local neighbourhoods. *)
    (* Select destinations one at a time so each pick counts against the
       remoteness of the next (e.g. two cross-pod picks land in two different
       remote servers, not the same one).  A per-(dim, group) "touched" table
       keeps each remoteness lookup O(#dims). *)
    let select d take cands =
      let touched =
        Array.init (Topology.num_dims topo) (fun d' ->
            Array.make (Topology.groups_count topo ~dim:d') false)
      in
      Array.iteri
        (fun d' row ->
          Array.iteri
            (fun g _ ->
              row.(g) <-
                Array.exists (fun u -> covered.(u))
                  (Topology.gpus_in_group topo ~dim:d' ~group:g))
            row)
        touched;
      let remoteness v =
        let acc = ref 0 in
        for d' = 0 to Topology.num_dims topo - 1 do
          if d' <> d && touched.(d').(Topology.group_of topo ~dim:d' v) then
            incr acc
        done;
        !acc
      in
      let picked = ref [] and pool = ref cands in
      for _ = 1 to take do
        let best =
          List.fold_left
            (fun acc v ->
              let key = (remoteness v, v) in
              match acc with
              | Some (bk, _) when bk <= key -> acc
              | _ -> Some (key, v))
            None !pool
        in
        match best with
        | None -> ()
        | Some (_, v) ->
            picked := v :: !picked;
            pool := List.filter (fun u -> u <> v) !pool;
            for d' = 0 to Topology.num_dims topo - 1 do
              touched.(d').(Topology.group_of topo ~dim:d' v) <- true
            done
      done;
      List.rev !picked
    in
    List.iter
      (fun (d, r) ->
        let profile = ref None in
        for g = 0 to Topology.groups_count topo ~dim:d - 1 do
          let members = Topology.gpus_in_group topo ~dim:d ~group:g in
          let srcs = List.filter (fun v -> covered.(v) && stage_of.(v) < k) (Array.to_list members) in
          (* Uncovered here also excludes GPUs grabbed earlier in this stage
             by another dimension. *)
          let cands =
            alive_cands topo ~dim:d members srcs
              (List.filter (fun v -> not covered.(v)) (Array.to_list members))
          in
          if srcs <> [] && cands <> [] then begin
            let parent_rr = Array.of_list (List.sort compare srcs) in
            let take = min r (List.length cands) in
            let chosen = select d take (List.sort compare cands) in
            (match !profile with
            | None -> profile := Some (List.length srcs, take)
            | Some p -> if p <> (List.length srcs, take) then consistent := false);
            List.iteri
              (fun i v ->
                let p = parent_rr.(i mod Array.length parent_rr) in
                covered.(v) <- true;
                stage_of.(v) <- k;
                parent.(v) <- p;
                dim_of.(v) <- d;
                depth.(v) <- depth.(p) + 1;
                incr num_covered;
                applied := v :: !applied)
              chosen
          end
        done)
      choice;
    if !applied = [] || (cfg.prune_consistency && not !consistent) then begin
      undo ();
      None
    end
    else if
      (* Pruning #3 applies even without the consistency flag. *)
      kind = `Scatter
      && (match cfg.relay_limit with
         | Some x -> List.exists (fun v -> depth.(v) > x) !applied
         | None -> false)
    then begin
      undo ();
      None
    end
    else Some undo
  in
  let stage_limit = ref cfg.max_stages in
  (* Deadline check amortized over enumeration nodes: expiry aborts the
     whole deepening loop (not just the current subtree) and marks the
     result truncated so callers know the sketch set is scheduling-
     dependent and must not be cached. *)
  let check_budget () =
    if !nodes land 31 = 0 && Syccl_util.Budget.expired budget then begin
      (match truncated with Some r -> r := true | None -> ());
      Syccl_util.Budget.mark_degraded budget;
      raise Done
    end
  in
  let rec explore k =
    incr nodes;
    check_budget ();
    if !nodes > cfg.node_budget then ()
    else if !num_covered = n then emit stage_of parent dim_of k
    else if
      cfg.prune_isomorphic
      &&
      let sg = partial_signature k in
      if Hashtbl.mem visited sg then true
      else begin
        Hashtbl.replace visited sg ();
        false
      end
    then ()
    else if k < !stage_limit then begin
      (* Eligible dimensions: some group has both covered and uncovered. *)
      let eligible =
        List.filter
          (fun d ->
            let progress = ref false in
            for g = 0 to Topology.groups_count topo ~dim:d - 1 do
              let members = Topology.gpus_in_group topo ~dim:d ~group:g in
              let has_cov = Array.exists (fun v -> covered.(v)) members in
              let has_unc = Array.exists (fun v -> not covered.(v)) members in
              if has_cov && has_unc then progress := true
            done;
            !progress)
          (List.init nd (fun d -> d))
      in
      let eligible = Array.of_list eligible in
      let ne = Array.length eligible in
      (* All non-empty dimension subsets. *)
      for mask = 1 to (1 lsl ne) - 1 do
        let dims =
          List.filter_map
            (fun i -> if mask land (1 lsl i) <> 0 then Some eligible.(i) else None)
            (List.init ne (fun i -> i))
        in
        (* Cartesian product of fan-out options per chosen dimension. *)
        let max_unc d =
          let m = ref 0 in
          for g = 0 to Topology.groups_count topo ~dim:d - 1 do
            let members = Topology.gpus_in_group topo ~dim:d ~group:g in
            let has_cov = Array.exists (fun v -> covered.(v)) members in
            if has_cov then begin
              let u = Array.fold_left (fun a v -> if covered.(v) then a else a + 1) 0 members in
              if u > !m then m := u
            end
          done;
          !m
        in
        let rec product acc = function
          | [] ->
              let choice = List.rev acc in
              (match apply_stage k choice with
              | None -> ()
              | Some undo ->
                  explore (k + 1);
                  undo ())
          | d :: rest ->
              List.iter
                (fun r -> product ((d, r) :: acc) rest)
                (fanout_options (max 1 (max_unc d)))
        in
        product [] dims
      done
    end
  in
  (* Iterative deepening on the stage count: shallow sketches (the
     structured, few-stage decompositions) are emitted before the cap can
     fill with deep chains; the signature table deduplicates re-discoveries
     across iterations. *)
  (try
     for limit = 1 to cfg.max_stages do
       stage_limit := limit;
       Hashtbl.reset visited;
       explore 0
     done
   with Done -> ());
  List.rev !results

let instantiate topo ~kind ~root ~shape ~load =
  let n = Topology.num_gpus topo in
  let stage_of = Array.make n (-1) in
  let parent = Array.make n (-1) in
  let dim_of = Array.make n (-1) in
  let covered = Array.make n false in
  covered.(root) <- true;
  let num_covered = ref 1 in
  let virtual_load = Array.map Array.copy load in
  let num_stages = Array.length shape in
  for k = 0 to num_stages - 1 do
    let next_dims =
      if k + 1 < num_stages then List.map fst shape.(k + 1) else []
    in
    List.iter
      (fun (d, r) ->
        for g = 0 to Topology.groups_count topo ~dim:d - 1 do
          let members = Topology.gpus_in_group topo ~dim:d ~group:g in
          let srcs =
            List.filter (fun v -> covered.(v) && stage_of.(v) < k) (Array.to_list members)
          in
          let cands =
            alive_cands topo ~dim:d members srcs
              (List.filter (fun v -> not covered.(v)) (Array.to_list members))
          in
          if srcs <> [] && cands <> [] then begin
            let parent_rr = Array.of_list (List.sort compare srcs) in
            let take = min r (List.length cands) in
            (* Pick destinations one at a time, each from the least-loaded
               next-stage group (§4.2 replication mapping). *)
            let remaining = ref (List.sort compare cands) in
            for i = 0 to take - 1 do
              let score v =
                match next_dims with
                | [] -> 0.0
                | nd0 :: _ ->
                    virtual_load.(nd0).(Topology.group_of topo ~dim:nd0 v)
              in
              let best =
                List.fold_left
                  (fun acc v ->
                    match acc with
                    | None -> Some v
                    | Some b -> if score v < score b -. 1e-12 then Some v else acc)
                  None !remaining
              in
              match best with
              | None -> ()
              | Some v ->
                  remaining := List.filter (fun u -> u <> v) !remaining;
                  covered.(v) <- true;
                  stage_of.(v) <- k;
                  parent.(v) <- parent_rr.(i mod Array.length parent_rr);
                  dim_of.(v) <- d;
                  incr num_covered;
                  (match next_dims with
                  | [] -> ()
                  | nd0 :: _ ->
                      let g' = Topology.group_of topo ~dim:nd0 v in
                      virtual_load.(nd0).(g') <- virtual_load.(nd0).(g') +. 1.0)
            done
          end
        done)
      shape.(k)
  done;
  if !num_covered = n then
    Some (Sketch.make ~root ~kind ~num_stages ~stage_of ~parent ~dim_of)
  else None
