(** Enumeration-based sketch search with symmetry prunings (§4.1).

    The search walks stages: at each stage it picks a subset of dimensions, a
    per-dimension destination fan-out, and lets every eligible group (one
    with both covered and uncovered GPUs) participate with that fan-out.
    Prunings: #1 drops isomorphic duplicates via {!Sketch.signature}; #2
    requires consistent (|srcs|, |dsts|) profiles across a dimension's
    participating groups; #3 bounds the hop depth of Scatter trees. *)

type config = {
  max_stages : int;
  prune_isomorphic : bool;  (** pruning #1 *)
  prune_consistency : bool;  (** pruning #2 *)
  relay_limit : int option;  (** pruning #3 (Scatter); [None] disables *)
  max_sketches : int;  (** emission cap *)
  node_budget : int;  (** recursion-node cap, guards ablation runs *)
}

val default : Syccl_topology.Topology.t -> Sketch.kind -> config
(** [max_stages = |D|+1], all prunings on, relay limit [|D|−1] for Scatter. *)

val run :
  ?config:config ->
  ?budget:Syccl_util.Budget.t ->
  ?truncated:bool ref ->
  Syccl_topology.Topology.t ->
  kind:Sketch.kind ->
  root:int ->
  Sketch.t list
(** Enumerate sketches rooted at [root] covering every GPU.  [budget] is
    checked every few dozen enumeration nodes; on expiry the search stops
    and returns the sketches emitted so far, setting [truncated] (if
    given).  A truncated sketch list depends on where the deadline fell,
    so callers must not memoize it. *)

val instantiate :
  Syccl_topology.Topology.t ->
  kind:Sketch.kind ->
  root:int ->
  shape:Sketch.shape ->
  load:float array array ->
  Sketch.t option
(** Re-instantiate a sketch shape, choosing destinations that steer future
    sources toward the least-loaded groups (replication mapping, §4.2 step 1).
    [load] is the accumulated per-(dim, group) workload of previously
    instantiated replicas; it is {e not} modified.  Returns [None] when the
    shape cannot cover every GPU from [root]. *)
