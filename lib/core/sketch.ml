module Topology = Syccl_topology.Topology
module Perm = Syccl_util.Perm

type kind = [ `Broadcast | `Scatter ]

type t = {
  root : int;
  kind : kind;
  num_stages : int;
  stage_of : int array;
  parent : int array;
  dim_of : int array;
}

let make ~root ~kind ~num_stages ~stage_of ~parent ~dim_of =
  let n = Array.length stage_of in
  if Array.length parent <> n || Array.length dim_of <> n then
    invalid_arg "Sketch.make: array length mismatch";
  if root < 0 || root >= n then invalid_arg "Sketch.make: root out of range";
  if stage_of.(root) <> -1 || parent.(root) <> -1 || dim_of.(root) <> -1 then
    invalid_arg "Sketch.make: root must have stage/parent/dim = -1";
  Array.iteri
    (fun v s ->
      if v <> root then begin
        if s < 0 || s >= num_stages then invalid_arg "Sketch.make: stage out of range";
        let p = parent.(v) in
        if p < 0 || p >= n || p = v then invalid_arg "Sketch.make: bad parent";
        if stage_of.(p) >= s then invalid_arg "Sketch.make: parent covered too late"
      end)
    stage_of;
  { root; kind; num_stages; stage_of; parent; dim_of }

let check topo t =
  let bad = ref None in
  Array.iteri
    (fun v p ->
      if v <> t.root && !bad = None then begin
        let d = t.dim_of.(v) in
        if d < 0 || d >= Topology.num_dims topo then bad := Some (v, d)
        else if
          Topology.group_of topo ~dim:d v <> Topology.group_of topo ~dim:d p
        then bad := Some (v, d)
      end)
    t.parent;
  match !bad with
  | None -> Ok ()
  | Some (v, d) ->
      Error (Printf.sprintf "GPU %d is not a dim-%d peer of its parent" v d)

type subdemand = {
  sd_stage : int;
  sd_dim : int;
  sd_group : int;
  srcs : int list;
  dsts : int list;
}

let subdemands topo t =
  let n = Array.length t.stage_of in
  let tbl = Hashtbl.create 16 in
  for v = 0 to n - 1 do
    if v <> t.root then begin
      let k = t.stage_of.(v) and d = t.dim_of.(v) in
      let g = Topology.group_of topo ~dim:d v in
      Hashtbl.replace tbl (k, d, g)
        (v :: Option.value (Hashtbl.find_opt tbl (k, d, g)) ~default:[])
    end
  done;
  let covered_before k v = t.stage_of.(v) < k in
  Hashtbl.fold
    (fun (k, d, g) dsts acc ->
      let members = Topology.gpus_in_group topo ~dim:d ~group:g in
      let srcs =
        List.filter (covered_before k) (Array.to_list members)
      in
      { sd_stage = k; sd_dim = d; sd_group = g; srcs; dsts = List.sort compare dsts }
      :: acc)
    tbl []
  |> List.sort (fun a b ->
         compare (a.sd_stage, a.sd_dim, a.sd_group) (b.sd_stage, b.sd_dim, b.sd_group))

let descendants t =
  let n = Array.length t.parent in
  let d = Array.make n 0 in
  (* Order GPUs by stage descending so children are counted before parents. *)
  let order = Array.init n (fun i -> i) in
  Array.sort (fun a b -> compare t.stage_of.(b) t.stage_of.(a)) order;
  Array.iter
    (fun v -> if v <> t.root then d.(t.parent.(v)) <- d.(t.parent.(v)) + d.(v) + 1)
    order;
  d

let depth t =
  let n = Array.length t.parent in
  let d = Array.make n (-1) in
  let rec go v =
    if d.(v) >= 0 then d.(v)
    else begin
      let r = if v = t.root then 0 else 1 + go t.parent.(v) in
      d.(v) <- r;
      r
    end
  in
  for v = 0 to n - 1 do
    ignore (go v)
  done;
  d

let workload topo t =
  let desc = descendants t in
  let w =
    Array.init (Topology.num_dims topo) (fun d ->
        Array.make (Topology.groups_count topo ~dim:d) 0.0)
  in
  Array.iteri
    (fun v _ ->
      if v <> t.root then begin
        let d = t.dim_of.(v) in
        let g = Topology.group_of topo ~dim:d v in
        let units =
          match t.kind with
          | `Broadcast -> 1.0
          | `Scatter -> float_of_int (desc.(v) + 1)
        in
        w.(d).(g) <- w.(d).(g) +. units
      end)
    t.stage_of;
  w

let dim_workload topo t =
  Array.map (Array.fold_left ( +. ) 0.0) (workload topo t)

(* Isomorphism-invariant per-GPU labels of a (possibly partial) coverage
   tree.  Base labels follow the parent chain; two Weisfeiler-Leman rounds
   then fold in each covered GPU's relation to other covered GPUs through
   every dimension's groups, distinguishing e.g. "covered a same-server GPU
   over the network" from "covered a remote GPU over the network". *)
let structural_labels topo ~root ~stage_of ~parent ~dim_of =
  let n = Array.length stage_of in
  let covered v = v = root || stage_of.(v) >= 0 in
  let label = Array.make n 0 in
  let order = Array.init n (fun i -> i) in
  Array.sort (fun a b -> compare stage_of.(a) stage_of.(b)) order;
  Array.iter
    (fun v ->
      if v = root then label.(v) <- Hashtbl.hash `Root
      else if covered v then
        label.(v) <- Hashtbl.hash (stage_of.(v), dim_of.(v), label.(parent.(v))))
    order;
  let nd = Topology.num_dims topo in
  let hash_all l = List.fold_left (fun a (i : int) -> Hashtbl.hash (a, i)) 17 l in
  for _round = 1 to 2 do
    (* Per (dim, group): chained hash of the sorted labels of its covered
       members ([Hashtbl.hash] alone truncates long structures). *)
    let group_sigs =
      Array.init nd (fun d ->
          Array.init (Topology.groups_count topo ~dim:d) (fun g ->
              let members = Topology.gpus_in_group topo ~dim:d ~group:g in
              hash_all
                (List.sort compare
                   (List.filter_map
                      (fun v -> if covered v then Some label.(v) else None)
                      (Array.to_list members)))))
    in
    let next = Array.make n 0 in
    for v = 0 to n - 1 do
      if covered v then begin
        let ctx =
          List.init nd (fun d ->
              group_sigs.(d).(Topology.group_of topo ~dim:d v))
        in
        next.(v) <- hash_all (label.(v) :: ctx)
      end
    done;
    Array.blit next 0 label 0 n
  done;
  label

(* OCaml's [Hashtbl.hash] only visits a bounded prefix of a structure, which
   would conflate most label lists; chain-hash every element instead. *)
let hash_ints l = List.fold_left (fun a (i : int) -> Hashtbl.hash (a, i)) 17 l

let signature topo t =
  let label =
    structural_labels topo ~root:t.root ~stage_of:t.stage_of ~parent:t.parent
      ~dim_of:t.dim_of
  in
  let descriptors =
    List.map
      (fun sd ->
        ( sd.sd_stage,
          sd.sd_dim,
          hash_ints (List.sort compare (List.map (fun v -> label.(v)) sd.srcs)),
          hash_ints
            (List.sort compare (List.map (fun v -> label.(t.parent.(v))) sd.dsts)),
          List.length sd.dsts ))
      (subdemands topo t)
  in
  List.fold_left
    (fun a d -> Hashtbl.hash (a, d))
    (Hashtbl.hash (t.kind, t.num_stages))
    (List.sort compare descriptors)

let map topo perm t =
  let n = Array.length t.stage_of in
  if Array.length perm <> n then invalid_arg "Sketch.map: permutation size";
  let inv = Perm.invert perm in
  let mapped =
    {
      root = perm.(t.root);
      kind = t.kind;
      num_stages = t.num_stages;
      stage_of = Array.init n (fun v -> t.stage_of.(inv.(v)));
      parent =
        Array.init n (fun v ->
            let p = t.parent.(inv.(v)) in
            if p < 0 then -1 else perm.(p));
      dim_of = Array.init n (fun v -> t.dim_of.(inv.(v)));
    }
  in
  (match check topo mapped with
  | Ok () -> ()
  | Error e -> invalid_arg ("Sketch.map: not an automorphism: " ^ e));
  mapped

type shape = (int * int) list array

let shape topo t =
  Array.init t.num_stages (fun k ->
      let sds = List.filter (fun sd -> sd.sd_stage = k) (subdemands topo t) in
      let dims = List.sort_uniq compare (List.map (fun sd -> sd.sd_dim) sds) in
      List.map
        (fun d ->
          let r =
            List.fold_left
              (fun acc sd ->
                if sd.sd_dim = d then max acc (List.length sd.dsts) else acc)
              0 sds
          in
          (d, r))
        dims)

let pp fmt t =
  Format.fprintf fmt "@[<v>sketch(%s, root=%d, %d stages)@,"
    (match t.kind with `Broadcast -> "bcast" | `Scatter -> "scatter")
    t.root t.num_stages;
  for k = 0 to t.num_stages - 1 do
    Format.fprintf fmt "  stage %d:" k;
    Array.iteri
      (fun v s ->
        if s = k then Format.fprintf fmt " %d->%d(d%d)" t.parent.(v) v t.dim_of.(v))
      t.stage_of;
    Format.fprintf fmt "@,"
  done;
  Format.fprintf fmt "@]"
