(** Sketches: per-stage, per-dimension decompositions of a one-to-all demand
    (§3.2, Table 3).

    A sketch is represented as the coverage tree it induces: each non-root
    GPU records the stage at which it first obtains data, the parent it
    obtains it from, and the dimension the transfer uses.  Sub-demands
    [R_{k,d,g}] (Table 3) are recovered by grouping destinations per (stage,
    dimension, group); sources are every already-covered GPU of the group,
    leaving the exact sender choice to the sub-schedule solver (§5.1). *)

type kind = [ `Broadcast | `Scatter ]

type t = private {
  root : int;
  kind : kind;
  num_stages : int;
  stage_of : int array;  (** stage at which each GPU is covered; -1 = root *)
  parent : int array;  (** covering parent; -1 = root *)
  dim_of : int array;  (** dimension of the covering transfer; -1 = root *)
}

val make :
  root:int ->
  kind:kind ->
  num_stages:int ->
  stage_of:int array ->
  parent:int array ->
  dim_of:int array ->
  t
(** Validates tree shape: exactly one root, parents covered strictly earlier,
    stages within range.  (Peer-ness per dimension is validated by
    {!check}.) *)

val check : Syccl_topology.Topology.t -> t -> (unit, string) result
(** Every edge must connect peers of its dimension. *)

(** The communication sub-demand of one group at one stage (Table 3). *)
type subdemand = {
  sd_stage : int;
  sd_dim : int;
  sd_group : int;
  srcs : int list;  (** covered GPUs of the group at stage start *)
  dsts : int list;  (** GPUs covered in this group at this stage *)
}

val subdemands : Syccl_topology.Topology.t -> t -> subdemand list
(** All sub-demands, ordered by (stage, dim, group). *)

val descendants : t -> int array
(** [descendants s].(v) = number of GPUs whose path from the root passes
    through [v]; drives the Scatter workload and pruning #3. *)

val depth : t -> int array
(** Hops from the root (0 for the root itself). *)

val workload : Syccl_topology.Topology.t -> t -> float array array
(** [w.(d).(g)] per §4.2: destination count per (dim, group) for Broadcast;
    Σ (descendants+1) for Scatter. *)

val dim_workload : Syccl_topology.Topology.t -> t -> float array
(** Per-dimension totals [w_d = Σ_g w_{d,g}]. *)

val structural_labels :
  Syccl_topology.Topology.t ->
  root:int ->
  stage_of:int array ->
  parent:int array ->
  dim_of:int array ->
  int array
(** Isomorphism-invariant per-GPU labels of a (possibly partial) coverage
    tree: parent-chain labels refined by two Weisfeiler-Leman rounds over
    group memberships.  Uncovered GPUs (stage −1, not the root) get label 0.
    Shared by {!signature} and the search's partial-state deduplication. *)

val hash_ints : int list -> int
(** Chain-hash of every element ([Hashtbl.hash] alone only visits a bounded
    prefix of a structure). *)

val signature : Syccl_topology.Topology.t -> t -> int
(** Isomorphism-invariant hash (pruning #1, §4.1): sketches related by a
    structure-preserving GPU permutation share a signature. *)

val map : Syccl_topology.Topology.t -> Syccl_util.Perm.t -> t -> t
(** Relabel through a topology automorphism (replication, §4.2–4.3).
    Dimensions are preserved; groups move with the permutation. *)

(** The dimension/fan-out skeleton of a sketch: for each stage, the
    dimensions used and how many destinations each participating group
    covers.  Replication re-instantiates a shape with load-aware destination
    choices (§4.2 step 1). *)
type shape = (int * int) list array

val shape : Syccl_topology.Topology.t -> t -> shape

val pp : Format.formatter -> t -> unit
