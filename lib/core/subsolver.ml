module Topology = Syccl_topology.Topology
module Fault = Syccl_topology.Fault
module Collective = Syccl_collective.Collective
module Schedule = Syccl_sim.Schedule
module Greedy = Syccl_teccl.Greedy
module Epoch_model = Syccl_teccl.Epoch_model
module Tau = Syccl_teccl.Tau

type strategy =
  | Fast_only
  | Milp_refine of {
      e : float;
      var_budget : int;
      node_limit : int;
      time_limit : float;
    }

type entry = { chunk : int; e_size : float; e_srcs : int list; e_dsts : int list }

type demand = { d_stage : int; d_dim : int; d_group : int; entries : entry list }

type plan = { chunks : Schedule.chunk_meta array; demands : demand list }

(* Which collective chunk a (root, dst) pair belongs to, per the numbering of
   Collective.chunks. *)
let tag_fn (coll : Collective.t) =
  let n = coll.Collective.n in
  match coll.Collective.kind with
  | Collective.Broadcast | Collective.Reduce | Collective.SendRecv -> fun _ _ -> 0
  | Collective.AllGather | Collective.ReduceScatter -> fun root _ -> root
  | Collective.AllToAll -> fun root dst -> (root * n) + dst
  | Collective.Scatter | Collective.Gather ->
      fun root dst -> if dst < root then dst else dst - 1
  | Collective.AllReduce -> invalid_arg "Subsolver: plan AllReduce per phase"

let others n v = List.filter (fun u -> u <> v) (List.init n (fun i -> i))

(* Children lists and descendant sets of a sketch tree. *)
let children (s : Sketch.t) =
  let n = Array.length s.Sketch.parent in
  let ch = Array.make n [] in
  Array.iteri (fun v p -> if v <> s.Sketch.root && p >= 0 then ch.(p) <- v :: ch.(p)) s.Sketch.parent;
  ch

let subtree (s : Sketch.t) =
  let ch = children s in
  let n = Array.length ch in
  let memo = Array.make n None in
  let rec go v =
    match memo.(v) with
    | Some l -> l
    | None ->
        let l = v :: List.concat_map go ch.(v) in
        memo.(v) <- Some l;
        l
  in
  Array.init n go

let plan topo coll (combo : Combine.combo) =
  let prim_size = Collective.chunk_size coll in
  let n = Topology.num_gpus topo in
  let tag = tag_fn coll in
  let chunks = ref [] and next_chunk = ref 0 in
  let fresh meta =
    let id = !next_chunk in
    incr next_chunk;
    chunks := meta :: !chunks;
    id
  in
  let demands = Hashtbl.create 64 in
  let push key entry =
    Hashtbl.replace demands key
      (entry :: Option.value (Hashtbl.find_opt demands key) ~default:[])
  in
  List.iter
    (fun ((s : Sketch.t), frac) ->
      let size = frac *. prim_size in
      let root = s.Sketch.root in
      match s.Sketch.kind with
      | `Broadcast ->
          let cid =
            fresh
              {
                Schedule.size;
                mode = `Gather;
                initial = [ root ];
                wanted = others n root;
                tag = tag root root;
              }
          in
          List.iter
            (fun (sd : Sketch.subdemand) ->
              push
                (sd.Sketch.sd_stage, sd.Sketch.sd_dim, sd.Sketch.sd_group)
                { chunk = cid; e_size = size; e_srcs = sd.Sketch.srcs; e_dsts = sd.Sketch.dsts })
            (Sketch.subdemands topo s)
      | `Scatter ->
          (* One chunk per non-root GPU; the chunk for GPU w transits every
             tree edge on the root→w path. *)
          let cid_of = Array.make n (-1) in
          for w = 0 to n - 1 do
            if w <> root then
              cid_of.(w) <-
                fresh
                  {
                    Schedule.size;
                    mode = `Gather;
                    initial = [ root ];
                    wanted = [ w ];
                    tag = tag root w;
                  }
          done;
          let sub = subtree s in
          Array.iteri
            (fun v p ->
              if v <> root && p >= 0 then begin
                let k = s.Sketch.stage_of.(v) and d = s.Sketch.dim_of.(v) in
                let g = Topology.group_of topo ~dim:d v in
                List.iter
                  (fun w ->
                    push (k, d, g)
                      { chunk = cid_of.(w); e_size = size; e_srcs = [ p ]; e_dsts = [ v ] })
                  sub.(v)
              end)
            s.Sketch.parent)
    combo.Combine.sketches;
  let demand_list =
    Hashtbl.fold
      (fun (k, d, g) entries acc ->
        { d_stage = k; d_dim = d; d_group = g; entries = List.rev entries } :: acc)
      demands []
    |> List.sort (fun a b ->
           compare (a.d_stage, a.d_dim, a.d_group) (b.d_stage, b.d_dim, b.d_group))
  in
  { chunks = Array.of_list (List.rev !chunks); demands = demand_list }

(* --- Isomorphism classes --------------------------------------------- *)

let size_key s = Printf.sprintf "%.6e" s

(* Size-independent key: entry sizes as ratios of the demand's largest
   entry.  Ratios are invariant under uniform scaling, so two demands that
   differ only by chunk size canonicalize identically — the basis of the
   cross-size sub-solve memoization. *)
let max_entry_size demand =
  let m = List.fold_left (fun a e -> Float.max a e.e_size) 0.0 demand.entries in
  if m > 0.0 then m else 1.0

let rel_key base s = Printf.sprintf "%.5f" (s /. base)

(* Canonical intra-group position order: positions sorted by their multiset
   of roles across entries (1 round of refinement), ties by raw position.
   Good enough to align symmetric demands; a failed alignment is caught by
   verification and re-solved directly.  [sk] renders entry sizes into the
   role keys: absolute by default, relative for cross-size matching. *)
let canonical_positions ?(sk = size_key) topo demand =
  let members = Topology.gpus_in_group topo ~dim:demand.d_dim ~group:demand.d_group in
  let np = Array.length members in
  let pos_of = Hashtbl.create np in
  Array.iteri (fun i v -> Hashtbl.replace pos_of v i) members;
  let role p =
    let v = members.(p) in
    (* Refine positions by their fault adjacency first: a member sitting
       next to a dead link (or itself dead) must never be aligned with a
       pristine member of an isomorphic demand, or the transferred solution
       would route through the hole.  Constant on healthy topologies, so
       the canonical order there is unchanged. *)
    let fault_sig =
      if Fault.is_empty (Topology.faults topo) then (true, 0)
      else
        ( Topology.gpu_alive topo v,
          Array.fold_left
            (fun acc u ->
              if u <> v && not (Topology.edge_alive topo ~dim:demand.d_dim u v)
              then acc + 1
              else acc)
            0 members )
    in
    ( fault_sig,
      List.sort compare
        (List.filter_map
           (fun e ->
             let s = List.mem v e.e_srcs and d = List.mem v e.e_dsts in
             if s || d then Some (sk e.e_size, s, d, List.length e.e_srcs, List.length e.e_dsts)
             else None)
           demand.entries) )
  in
  let order = Array.init np (fun i -> i) in
  let roles = Array.init np role in
  Array.sort (fun a b ->
      let c = compare roles.(a) roles.(b) in
      if c <> 0 then c else compare a b)
    order;
  (* rank.(p) = canonical index of position p *)
  let rank = Array.make np 0 in
  Array.iteri (fun i p -> rank.(p) <- i) order;
  (members, pos_of, rank, order)

let class_key_with sk topo demand =
  let members, pos_of, rank, _ = canonical_positions ~sk topo demand in
  let canon_gpu v = rank.(Hashtbl.find pos_of v) in
  let entry_key e =
    ( sk e.e_size,
      List.sort compare (List.map canon_gpu e.e_srcs),
      List.sort compare (List.map canon_gpu e.e_dsts) )
  in
  let keys = List.sort compare (List.map entry_key demand.entries) in
  (* Canonical dead-edge set within the group: demands over groups with
     different fault patterns must land in different isomorphism classes
     (empty, hence key-neutral, on healthy topologies). *)
  let dead_edges =
    if Fault.is_empty (Topology.faults topo) then []
    else begin
      let acc = ref [] in
      Array.iteri
        (fun i u ->
          Array.iteri
            (fun j v ->
              if
                i < j
                && not (Topology.edge_alive topo ~dim:demand.d_dim u v)
              then
                acc :=
                  (min rank.(i) rank.(j), max rank.(i) rank.(j)) :: !acc)
            members)
        members;
      List.sort compare !acc
    end
  in
  Marshal.to_string (demand.d_dim, Array.length members, keys, dead_edges) []

let class_key topo demand = class_key_with size_key topo demand

let norm_class_key topo demand =
  class_key_with (rel_key (max_entry_size demand)) topo demand

let strategy_signature = function
  | Fast_only -> "fast"
  | Milp_refine { e; var_budget; node_limit; time_limit } ->
      Printf.sprintf "milp:%g:%d:%d:%g" e var_budget node_limit time_limit

(* --- Solving ---------------------------------------------------------- *)

let metas_of_demand demand =
  Array.of_list
    (List.map
       (fun e ->
         {
           Schedule.size = e.e_size;
           mode = `Gather;
           initial = e.e_srcs;
           wanted = e.e_dsts;
           tag = 0;
         })
       demand.entries)

(* Causal check per entry: following the entry's transfers from its source
   set must deliver every destination, each exactly once. *)
let verify topo demand xfers =
  let ok = ref true in
  List.iteri
    (fun i e ->
      let mine = List.filter (fun (x : Schedule.xfer) -> x.chunk = i) xfers in
      let holders = Hashtbl.create 8 in
      List.iter (fun v -> Hashtbl.replace holders v ()) e.e_srcs;
      let received = Hashtbl.create 8 in
      let remaining = ref mine and progress = ref true in
      while !progress do
        progress := false;
        let still = ref [] in
        List.iter
          (fun (x : Schedule.xfer) ->
            if Hashtbl.mem holders x.src then begin
              if Hashtbl.mem received x.dst || Hashtbl.mem holders x.dst then ok := false;
              Hashtbl.replace holders x.dst ();
              Hashtbl.replace received x.dst ();
              progress := true
            end
            else still := x :: !still)
          !remaining;
        remaining := !still
      done;
      if !remaining <> [] then ok := false;
      List.iter (fun v -> if not (Hashtbl.mem holders v) then ok := false) e.e_dsts;
      (* Transfers must stay inside the demand's group/dimension. *)
      List.iter
        (fun (x : Schedule.xfer) ->
          if
            x.dim <> demand.d_dim
            || Topology.group_of topo ~dim:x.dim x.src <> demand.d_group
            || Topology.group_of topo ~dim:x.dim x.dst <> demand.d_group
            || not (Topology.edge_alive topo ~dim:x.dim x.src x.dst)
          then ok := false)
        mine)
    demand.entries;
  !ok

(* Whether a transfer list stays on surviving hardware; trivially true on a
   healthy topology. *)
let xfers_alive topo xfers =
  List.for_all
    (fun (x : Schedule.xfer) -> Topology.edge_alive topo ~dim:x.dim x.src x.dst)
    xfers

(* Direct candidate: every destination served straight from a source,
   round-robin with rotated ordering so ingress ports fill evenly.
   Optimal in saturated groups, where store-and-forward relays only add
   load; the greedy wins when relaying genuinely helps. *)
let direct_candidate demand metas =
  let xfers = ref [] in
  List.iteri
    (fun c (e : entry) ->
      let srcs = Array.of_list (List.sort compare e.e_srcs) in
      List.iteri
        (fun i dst ->
          let src = srcs.((i + c) mod Array.length srcs) in
          xfers :=
            {
              Schedule.chunk = c;
              src;
              dst;
              dim = demand.d_dim;
              prio = i;
            }
            :: !xfers)
        (* Rotate destination order per chunk so sources do not all hit the
           same ingress first. *)
        (let d = Array.of_list e.e_dsts in
         let nd = Array.length d in
         List.init nd (fun i -> d.((i + c) mod nd))))
    demand.entries;
  { Schedule.chunks = metas; xfers = List.rev !xfers }

let no_worse_than_direct topo demand xfers =
  let metas = metas_of_demand demand in
  let cand = { Schedule.chunks = metas; xfers } in
  let direct = direct_candidate demand metas in
  (* A direct fabric that crosses dead links is no baseline at all (the
     simulator rejects it): any valid solution beats it. *)
  (not (xfers_alive topo direct.Schedule.xfers))
  || Syccl_sim.Sim.time topo cand <= Syccl_sim.Sim.time topo direct +. 1e-15

let h_solve_s = Syccl_util.Counters.histogram "subsolve.solve_s"
let h_milp_s = Syccl_util.Counters.histogram "milp.solve_s"
let c_budget_skips = Syccl_util.Counters.int_counter "subsolve.budget_skips"

(* Estimated wall time of one MILP refinement, from the process-wide solve
   history: the p90 of "milp.solve_s" with a floor.  Until enough history
   accumulates, assume the floor — optimistic, but the budget is still
   honoured between pivots inside the solve itself. *)
let estimated_milp_s () =
  let est =
    if Syccl_util.Counters.hist_count h_milp_s >= 8 then
      Syccl_util.Counters.hist_percentile h_milp_s 0.9
    else 0.0
  in
  Float.max 0.01 est

let solve_demand ?warm ?(budget = Syccl_util.Budget.unlimited) ?pool ?cache
    strategy topo demand =
  Syccl_util.Trace.with_span ~cat:"subsolve" "subsolver.solve_demand"
    ~args:
      [
        ("stage", string_of_int demand.d_stage);
        ("dim", string_of_int demand.d_dim);
        ("group", string_of_int demand.d_group);
        ("entries", string_of_int (List.length demand.entries));
        ("strategy", strategy_signature strategy);
      ]
  @@ fun () ->
  Syccl_util.Faultpoint.inject "subsolver.crash";
  let t_solve = Syccl_util.Clock.now () in
  let skip reason =
    Syccl_util.Budget.mark_degraded budget;
    Atomic.incr c_budget_skips;
    Syccl_util.Trace.instant "subsolve.budget_skip"
      ~args:[ ("reason", reason) ]
  in
  let result =
  let metas = metas_of_demand demand in
  let restrict = Greedy.Groups [ (demand.d_dim, demand.d_group) ] in
  let direct = direct_candidate demand metas in
  (* On a punctured topology the straight src→dst fabric may cross a dead
     link; it then stops being the always-valid escape hatch and the greedy
     (which routes around the hole) becomes mandatory. *)
  let direct_ok = xfers_alive topo direct.Schedule.xfers in
  (* A punctured group can be internally disconnected (its only edge may be
     dead); the within-group restriction then makes the demand unsatisfiable
     even though a detour over the other dims exists.  Widen to the whole
     fabric as a last resort — the greedy still only crosses live edges —
     and remember it: the epoch model below covers the group's own edges
     only, so a widened solution must skip MILP refinement. *)
  let widened = ref false in
  let widen () =
    if Fault.is_empty (Topology.faults topo) then None
    else
      match Greedy.solve ~restrict:Greedy.All ~time_budget:1.0 topo metas with
      | Some s ->
          widened := true;
          Syccl_util.Counters.bump "subsolve.widened";
          Some s
      | None -> None
  in
  (* The greedy routes around dead links; a short time-boxed run is the
     escape hatch when the direct fabric is broken but the budget is gone. *)
  let rescue reason =
    skip reason;
    match Greedy.solve ~restrict ~time_budget:1.0 topo metas with
    | Some s -> s
    | None -> (
        match widen () with
        | Some s -> s
        | None ->
            failwith "Subsolver: no fault-avoiding routing for a sub-demand")
  in
  if Syccl_util.Budget.expired budget then begin
    if direct_ok then begin
      (* Past the deadline: the direct candidate is always valid and costs
         nothing to build — return it rather than starting a greedy run. *)
      skip "expired";
      direct.Schedule.xfers
    end
    else (rescue "expired").Schedule.xfers
  end
  else begin
  (* Saturated demands (every GPU pushing many chunks) gain nothing from
     store-and-forward search and make the greedy quadratic; go direct. *)
  let deliveries =
    List.fold_left (fun a e -> a + List.length e.e_dsts) 0 demand.entries
  in
  let greedy =
    if deliveries > 256 && direct_ok then direct
    else
      match Greedy.solve ~restrict ~budget topo metas with
      | Some s ->
          if
            direct_ok
            && Syccl_sim.Sim.time topo direct
               < Syccl_sim.Sim.time topo s -. 1e-15
          then direct
          else s
      | None ->
          if Syccl_util.Budget.expired budget then begin
            (* The greedy was cut off by the deadline, not by an
               unsatisfiable demand. *)
            if direct_ok then begin
              skip "greedy_timeout";
              direct
            end
            else rescue "greedy_timeout"
          end
          else begin
            match widen () with
            | Some s -> s
            | None ->
                failwith "Subsolver: greedy could not satisfy a sub-demand"
          end
  in
  (* Warm start: a known-good solution for this demand (e.g. the coarse
     step's incumbent) supersedes the greedy baseline when it simulates
     faster, so the fine MILP refines from the better of the two. *)
  let greedy =
    match warm with
    | Some xfers when verify topo demand xfers ->
        let w = { Schedule.chunks = metas; xfers } in
        if Syccl_sim.Sim.time topo w < Syccl_sim.Sim.time topo greedy -. 1e-15
        then w
        else greedy
    | _ -> greedy
  in
  let refined =
    match strategy with
    | Fast_only -> greedy
    | Milp_refine _ when !widened -> greedy
    | Milp_refine { e; var_budget; node_limit; time_limit } -> (
        let link = (Topology.dim topo demand.d_dim).Topology.link in
        let max_size =
          List.fold_left (fun a en -> Float.max a en.e_size) 0.0 demand.entries
        in
        let tau, _ = Tau.select ~link ~size:max_size ~e in
        let edges =
          Epoch_model.group_edges topo ~dim:demand.d_dim ~group:demand.d_group
        in
        let spec0 =
          { Epoch_model.topo; chunks = metas; edges; tau; horizon = 0 }
        in
        match Epoch_model.replay { spec0 with horizon = max_int / 2 } greedy with
        | None -> greedy
        | Some h ->
            let spec = { spec0 with horizon = h } in
            let approx_vars =
              Array.length metas
              * ((Array.length edges * h)
                + ((Array.length (Topology.gpus_in_group topo ~dim:demand.d_dim
                      ~group:demand.d_group))
                  * (h + 1)))
            in
            if approx_vars > var_budget then greedy
            else if
              Syccl_util.Budget.has_deadline budget
              && Syccl_util.Budget.remaining budget < estimated_milp_s ()
            then begin
              (* Not enough budget left for a typical MILP solve: keep the
                 greedy incumbent instead of starting a refinement that
                 would be cut off before it improves anything. *)
              skip "milp_estimate";
              greedy
            end
            else begin
              (* Scope warm-basis sharing to this demand's isomorphism
                 class: representatives of distinct classes write distinct
                 keys even when their models coincidentally have the same
                 shape, which keeps concurrent class solves deterministic
                 (see Epoch_model.solve). *)
              let cache_tag =
                match cache with
                | None -> None
                | Some _ -> Some (class_key topo demand)
              in
              match
                Epoch_model.solve ~node_limit ~time_limit ~budget ?pool
                  ?cache ?cache_tag ~incumbent:greedy spec
              with
              | Some (s, _) ->
                  if
                    Syccl_sim.Sim.time topo s
                    < Syccl_sim.Sim.time topo greedy -. 1e-12
                  then s
                  else greedy
              | None -> greedy
            end)
  in
  refined.Schedule.xfers
  end
  in
  Syccl_util.Counters.record h_solve_s (Syccl_util.Clock.elapsed t_solve);
  result

(* --- Mapping representatives onto isomorphic demands ------------------ *)

let transfer ?(normalized = false) topo ~rep ~rep_xfers demand =
  if
    rep.d_dim = demand.d_dim && rep.d_group = demand.d_group
    && rep.entries = demand.entries
  then
    (* Identity mapping: the solution was produced (or already verified)
       for these exact entries in the same group of the same dimension, so
       re-verification — a full simulation — is redundant.  This is the
       common case for the representative's own member and for repeated
       solves of the same problem.  Structurally equal entries under a
       different dim/group must take the general (verified) path: the
       rep's xfers carry its own dim. *)
    Some rep_xfers
  else
  (* Cross-size hits use relative size keys (each demand normalized by its
     own largest entry); same-size mapping keeps exact absolute keys. *)
  let sk_rep = if normalized then rel_key (max_entry_size rep) else size_key in
  let sk_dem = if normalized then rel_key (max_entry_size demand) else size_key in
  let rep_members, rep_pos, rep_rank, _ = canonical_positions ~sk:sk_rep topo rep in
  let dem_members, _, _, dem_order = canonical_positions ~sk:sk_dem topo demand in
  if Array.length rep_members <> Array.length dem_members then None
  else
  (* rep GPU -> canonical rank -> demand GPU. *)
  let gpu_map v = dem_members.(dem_order.(rep_rank.(Hashtbl.find rep_pos v))) in
  (* Entry correspondence: sort both entry lists by canonical key. *)
  let entry_keyed sk d rank_of pos_of =
    List.mapi
      (fun i e ->
        let canon v = rank_of.(Hashtbl.find pos_of v) in
        ( ( sk e.e_size,
            List.sort compare (List.map canon e.e_srcs),
            List.sort compare (List.map canon e.e_dsts) ),
          i ))
      d.entries
    |> List.sort compare
  in
  let _, dem_pos, dem_rank, _ = canonical_positions ~sk:sk_dem topo demand in
  let rep_entries = entry_keyed sk_rep rep rep_rank rep_pos in
  let dem_entries = entry_keyed sk_dem demand dem_rank dem_pos in
  if List.map fst rep_entries <> List.map fst dem_entries then None
  else begin
    let chunk_map = Hashtbl.create 16 in
    List.iter2
      (fun (_, ri) (_, di) -> Hashtbl.replace chunk_map ri di)
      rep_entries dem_entries;
    (* A widened rep solution (disconnected faulted group, see
       [solve_demand]) may relay through GPUs outside the group; those have
       no canonical position, so the mapping is undefined — decline the
       transfer and let the caller solve the member directly. *)
    match
      List.map
        (fun (x : Schedule.xfer) ->
          {
            x with
            chunk = Hashtbl.find chunk_map x.chunk;
            src = gpu_map x.src;
            dst = gpu_map x.dst;
          })
        rep_xfers
    with
    | exception Not_found -> None
    | mapped -> if verify topo demand mapped then Some mapped else None
  end

let assemble plan ~solution =
  let xfers =
    List.concat_map
      (fun d ->
        let local = solution d in
        let entry_arr = Array.of_list d.entries in
        List.map
          (fun (x : Schedule.xfer) ->
            {
              x with
              chunk = entry_arr.(x.chunk).chunk;
              prio = (d.d_stage * 10_000) + x.prio;
            })
          local)
      plan.demands
  in
  { Schedule.chunks = plan.chunks; xfers }
