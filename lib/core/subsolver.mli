(** Sub-schedule synthesis for sketch combinations (§5.1, §5.3).

    Planning turns a combination into a global chunk table plus {e merged
    sub-demands} — one per (stage, dimension, group) slice, holding every
    chunk fragment that must move inside that group at that stage.
    Sub-demands are partitioned into isomorphism classes; one representative
    per class is solved (greedy fast path, optionally refined by the epoch
    MILP warm-started with the greedy incumbent) and the solution is mapped
    onto the other members through an intra-group position bijection,
    verified, with a direct re-solve as fallback. *)

type strategy =
  | Fast_only  (** greedy earliest-finish only (step-1 "fast solving") *)
  | Milp_refine of {
      e : float;  (** epoch-accuracy knob (Appendix A.3) *)
      var_budget : int;  (** skip MILP when the model would exceed this *)
      node_limit : int;
      time_limit : float;
    }  (** greedy incumbent + epoch-MILP refinement ("accurate solving") *)

type entry = {
  chunk : int;  (** global chunk id *)
  e_size : float;
  e_srcs : int list;  (** GPUs of the group holding the chunk at stage start *)
  e_dsts : int list;  (** GPUs of the group that must receive it this stage *)
}

type demand = { d_stage : int; d_dim : int; d_group : int; entries : entry list }

type plan = {
  chunks : Syccl_sim.Schedule.chunk_meta array;  (** global chunk table *)
  demands : demand list;
}

val plan :
  Syccl_topology.Topology.t ->
  Syccl_collective.Collective.t ->
  Combine.combo ->
  plan
(** Build the chunk table and merged sub-demands for one combination of one
    single-phase collective (reduce-family phases are planned as their dual
    gather problem; the caller reverses the assembled schedule). *)

val class_key : Syccl_topology.Topology.t -> demand -> string
(** Canonical isomorphism-class key: demands with equal keys are solved once
    (§5.3). *)

val norm_class_key : Syccl_topology.Topology.t -> demand -> string
(** Size-normalized class key: entry sizes enter as ratios of the demand's
    largest entry, so demands that differ only by a uniform chunk-size
    scale share a key.  Used (together with a size bucket and strategy
    signature) by the cross-size sub-solve memoization. *)

val strategy_signature : strategy -> string
(** Stable textual fingerprint of a strategy, for cache keys. *)

val solve_demand :
  ?warm:Syccl_sim.Schedule.xfer list ->
  ?budget:Syccl_util.Budget.t ->
  ?pool:Syccl_util.Pool.t ->
  ?cache:(string, Syccl_milp.Lp.basis_state) Syccl_util.Cache.t ->
  strategy ->
  Syccl_topology.Topology.t ->
  demand ->
  Syccl_sim.Schedule.xfer list
(** Solve one sub-demand; transfers use {e local} chunk ids (entry order).
    [warm], if given and valid for the demand, competes with the greedy
    incumbent before MILP refinement (the fine step warm-starts from the
    coarse step's solution this way).  [pool] parallelizes MILP node waves
    and [cache] carries warm-start bases across the sketch family's
    same-shaped sibling demands (both forwarded to
    {!Syccl_teccl.Epoch_model.solve}); pass one cache per sequential solve
    sequence — it is not safe to share across concurrent solves.

    Deadline behaviour: an already-expired [budget] returns the (valid,
    unoptimized) direct candidate immediately; MILP refinement is skipped
    when the remaining budget is below the estimated solve time (p90 of
    the process-wide ["milp.solve_s"] history).  Every budget-forced
    shortcut bumps ["subsolve.budget_skips"] and marks the budget degraded
    ({!Syccl_util.Budget.mark_degraded}).  The ["subsolver.crash"]
    {!Syccl_util.Faultpoint} probe fires at entry. *)

val no_worse_than_direct :
  Syccl_topology.Topology.t ->
  demand ->
  Syccl_sim.Schedule.xfer list ->
  bool
(** [true] iff [xfers] — a candidate solution for [demand], local chunk
    ids — simulates no slower than the cheap direct candidate that
    {!solve_demand} always constructs.  The synthesizer uses this to guard
    memoized cross-size transfers: a cached solution refined for a
    different chunk size is only reused when it at least matches the
    direct baseline, so cache warmth can never regress schedule quality
    below it. *)

val transfer :
  ?normalized:bool ->
  Syccl_topology.Topology.t ->
  rep:demand ->
  rep_xfers:Syccl_sim.Schedule.xfer list ->
  demand ->
  Syccl_sim.Schedule.xfer list option
(** Map a representative's solution onto an isomorphic demand; [None] if the
    mapped solution fails verification.  When the two demands live in the
    same group of the same dimension and have structurally equal entries
    the mapping is the identity and the (simulation-based) verification is
    skipped; equal entries under a different dim/group take the general,
    verified path.  With [~normalized:true] entry sizes are matched as
    ratios (each demand scaled by its own largest entry), enabling
    cross-size mapping of memoized solutions. *)

val assemble :
  plan ->
  solution:(demand -> Syccl_sim.Schedule.xfer list) ->
  Syccl_sim.Schedule.t
(** Stitch per-demand solutions (local chunk ids) into the full schedule:
    chunk ids are globalized, priorities offset by stage so cross-stage
    pipelining is decided by data dependencies (Fig. 12b). *)
