module Topology = Syccl_topology.Topology
module Fault = Syccl_topology.Fault
module Collective = Syccl_collective.Collective
module Schedule = Syccl_sim.Schedule
module Sim = Syccl_sim.Sim
module Pool = Syccl_util.Pool
module Cache = Syccl_util.Cache
module Counters = Syccl_util.Counters
module Clock = Syccl_util.Clock
module Trace = Syccl_util.Trace
module Budget = Syccl_util.Budget

type config = {
  search_config : Search.config option;
  e1 : float;
  e2 : float;
  r1 : float;
  r2 : int;
  fast_only : bool;
  milp_var_budget : int;
  milp_node_limit : int;
  milp_time_limit : float;
  max_shapes : int;
  max_combos : int;
  domains : int;
  blocks : int;
  deadline : float option;
}

let default_config =
  {
    search_config = None;
    e1 = 3.0;
    e2 = 0.5;
    r1 = 0.20;
    r2 = 8;
    fast_only = false;
    milp_var_budget = 1100;
    milp_node_limit = 60;
    milp_time_limit = 6.0;
    max_shapes = 18;
    max_combos = 64;
    domains = 1;
    blocks = 8;
    deadline = None;
  }

type level = Full | Fast | Rerouted | Fallback

let level_name = function
  | Full -> "full"
  | Fast -> "fast"
  | Rerouted -> "rerouted"
  | Fallback -> "fallback"

type breakdown = {
  search_s : float;
  combine_s : float;
  solve1_s : float;
  solve2_s : float;
  cache_hits : int;
  cache_misses : int;
  milp_solves : int;
  milp_nodes : int;
  flow_certified : int;
  registry_hits : int;
  registry_misses : int;
}

type outcome = {
  schedules : Schedule.t list;
  time : float;
  busbw : float;
  synth_time : float;
  breakdown : breakdown;
  num_sketches : int;
  num_combos : int;
  chosen : string;
  degraded : level;
  degrade_reason : string option;
}

let zero_breakdown =
  {
    search_s = 0.0;
    combine_s = 0.0;
    solve1_s = 0.0;
    solve2_s = 0.0;
    cache_hits = 0;
    cache_misses = 0;
    milp_solves = 0;
    milp_nodes = 0;
    flow_certified = 0;
    registry_hits = 0;
    registry_misses = 0;
  }

let add_breakdown a b =
  {
    search_s = a.search_s +. b.search_s;
    combine_s = a.combine_s +. b.combine_s;
    solve1_s = a.solve1_s +. b.solve1_s;
    solve2_s = a.solve2_s +. b.solve2_s;
    cache_hits = a.cache_hits + b.cache_hits;
    cache_misses = a.cache_misses + b.cache_misses;
    milp_solves = a.milp_solves + b.milp_solves;
    milp_nodes = a.milp_nodes + b.milp_nodes;
    flow_certified = a.flow_certified + b.flow_certified;
    registry_hits = a.registry_hits + b.registry_hits;
    registry_misses = a.registry_misses + b.registry_misses;
  }

let timed f =
  let t0 = Clock.now () in
  let r = f () in
  (r, Clock.now () -. t0)

(* Cross-size sub-solve memoization (bounded, domain-safe): solved class
   representatives keyed by size-normalized class key, strategy signature
   and a power-of-two chunk-size bucket.  Hits skip Subsolver.solve_demand
   entirely — across combos, across the coarse/fine steps and across sweep
   sizes whose epoch structure is size-independent. *)
let subsolve_cache : (string, Subsolver.demand * Schedule.xfer list) Cache.t =
  Cache.create ~capacity:4096 ~name:"cache.subsolve" ()

let size_bucket (d : Subsolver.demand) =
  let m =
    List.fold_left
      (fun a (e : Subsolver.entry) -> Float.max a e.Subsolver.e_size)
      0.0 d.Subsolver.entries
  in
  if m <= 0.0 then 0
  else int_of_float (Float.floor ((Float.log m /. Float.log 2.0) +. 1e-9))

let memo_key strategy topo d =
  Printf.sprintf "%s/%d/%s/%d/%s" topo.Topology.name (Topology.num_gpus topo)
    (Subsolver.strategy_signature strategy)
    (size_bucket d)
    (Subsolver.norm_class_key topo d)

(* A view of the sub-solve memo.  [live_memo] reads and writes the shared
   bounded cache directly; [synthesize_all] gives each sweep element a
   snapshot-overlay view instead, so a sweep's results depend only on the
   cache state at sweep start — never on sibling elements' mid-flight
   insertions (see [synthesize_all]). *)
type memo_view = {
  memo_find : string -> (Subsolver.demand * Schedule.xfer list) option;
  memo_put : string -> Subsolver.demand * Schedule.xfer list -> unit;
}

let live_memo =
  {
    memo_find = (fun k -> Cache.find_opt subsolve_cache k);
    memo_put = (fun k v -> Cache.put subsolve_cache k v);
  }

(* Solve representatives of every isomorphism class appearing in [plans],
   in parallel on the pool, and return a per-demand solution function.
   The memo probe runs sequentially before dispatch and insertions happen
   after every solve returns, so which classes hit the cache — and hence
   the produced schedules — cannot depend on pool size or scheduling. *)
let solve_plans ~pool ~memo ~budget ?warm strategy topo
    (plans : Subsolver.plan list) =
  (* Warm-basis handoff between same-class MILP solves within this call
     (first-writer-wins keys scoped by class, see Subsolver.solve_demand);
     one cache per call so sweeps and repeated synthesize runs start from
     the same (empty) state and stay reproducible. *)
  let milp_warm : (string, Syccl_milp.Lp.basis_state) Cache.t =
    Cache.create ~capacity:64 ~name:"cache.milp_warm" ()
  in
  let classes = Hashtbl.create 64 in
  List.iter
    (fun (p : Subsolver.plan) ->
      List.iter
        (fun d ->
          let key = Subsolver.class_key topo d in
          if not (Hashtbl.mem classes key) then Hashtbl.replace classes key d)
        p.Subsolver.demands)
    plans;
  let keys = Array.of_seq (Hashtbl.to_seq_keys classes) in
  let reps = Array.map (Hashtbl.find classes) keys in
  let nclass = Array.length reps in
  let mkeys = Array.map (memo_key strategy topo) reps in
  let sols = Array.make nclass None in
  Array.iteri
    (fun i rep ->
      match memo.memo_find mkeys.(i) with
      | Some (crep, cxfers) -> (
          match
            Subsolver.transfer ~normalized:true topo ~rep:crep
              ~rep_xfers:cxfers rep
          with
          | Some xfers ->
              (* An identity hit returns the xfers solved for these exact
                 entries; anything else is a cross-size/cross-group mapping
                 whose quality is only bounded by the direct-baseline
                 guard — a cached solution refined for a different chunk
                 size may be valid yet slower than solving here, so reuse
                 it only when it at least matches the direct candidate. *)
              let identical =
                crep.Subsolver.d_dim = rep.Subsolver.d_dim
                && crep.Subsolver.d_group = rep.Subsolver.d_group
                && crep.Subsolver.entries = rep.Subsolver.entries
              in
              if identical || Subsolver.no_worse_than_direct topo rep xfers
              then sols.(i) <- Some xfers
              else Counters.bump "cache.subsolve.quality_fail"
          | None -> Counters.bump "cache.subsolve.transfer_fail")
      | None -> ())
    reps;
  let todo =
    Array.of_list
      (List.filter (fun i -> sols.(i) = None) (List.init nclass Fun.id))
  in
  let solved =
    Pool.map pool
      (fun i ->
        let rep = reps.(i) in
        let w = match warm with None -> None | Some f -> f rep in
        (* Each solve gets a detached view of the element's budget (same
           deadline, own degradation mark) so we can tell, per class, whether
           the deadline forced a degraded solution. *)
        let b = Budget.detach budget in
        let xfers =
          Subsolver.solve_demand ?warm:w ~budget:b ~pool ~cache:milp_warm
            strategy topo rep
        in
        if Budget.degraded b then Budget.mark_degraded budget;
        (xfers, Budget.degraded b))
      todo
  in
  Array.iteri
    (fun j i ->
      let xfers, was_degraded = solved.(j) in
      sols.(i) <- Some xfers;
      (* A deadline-degraded sub-solve (skipped MILP, greedy cut short)
         must not be memoized: the memo outlives the deadline and would
         replay the degraded solution into later unconstrained runs. *)
      if not was_degraded then memo.memo_put mkeys.(i) (reps.(i), xfers))
    todo;
  let table = Hashtbl.create nclass in
  Array.iteri (fun i k -> Hashtbl.replace table k (reps.(i), Option.get sols.(i))) keys;
  fun (d : Subsolver.demand) ->
    let key = Subsolver.class_key topo d in
    match Hashtbl.find_opt table key with
    | Some (rep, rep_xfers) -> (
        match Subsolver.transfer topo ~rep ~rep_xfers d with
        | Some xfers ->
            xfers
        | None ->
            Subsolver.solve_demand ~budget ~pool ~cache:milp_warm strategy
              topo d)
    | None -> Subsolver.solve_demand ~budget ~pool ~cache:milp_warm strategy topo d

let strategy_of cfg ~e =
  if cfg.fast_only then Subsolver.Fast_only
  else
    Subsolver.Milp_refine
      {
        e;
        var_budget = cfg.milp_var_budget;
        node_limit = cfg.milp_node_limit;
        time_limit = cfg.milp_time_limit;
      }

(* Sketch search depends only on (topology, kind, root, config) — not on the
   data size — so sweeps over sizes reuse it.  Both caches are bounded and
   mutex-protected: concurrent synthesize calls (the parallel sweep driver)
   share them safely. *)
let search_cache : (string, Sketch.t list) Cache.t =
  Cache.create ~capacity:256 ~name:"cache.search" ()

let combo_cache : (string, Combine.combo list) Cache.t =
  Cache.create ~capacity:256 ~name:"cache.combo" ()

let reset_caches () =
  Cache.clear search_cache;
  Cache.clear combo_cache;
  Cache.clear subsolve_cache

let cached_search ~budget topo ~config ~kind ~root =
  let key =
    Format.asprintf "%s/%d/%s/%d/%d/%b/%b/%d/%d"
      topo.Topology.name (Topology.num_gpus topo)
      (match kind with `Broadcast -> "b" | `Scatter -> "s")
      root config.Search.max_stages config.Search.prune_isomorphic
      config.Search.prune_consistency
      (Option.value config.Search.relay_limit ~default:(-1))
      config.Search.max_sketches
  in
  match Cache.find_opt search_cache key with
  | Some r -> r
  | None ->
      (* A deadline-truncated sketch list depends on where the deadline
         fell; the cache outlives the deadline, so never memoize one. *)
      let truncated = ref false in
      let r = Search.run ~config ~budget ~truncated topo ~kind ~root in
      if not !truncated then Cache.put search_cache key r;
      r

(* SendRecv needs no sketch machinery: one chunk, one destination.  Compare
   the direct path (each shared dimension) against two-hop relays and keep
   the fastest. *)
let synth_sendrecv cfg topo (phase : Collective.t) =
  let src = phase.Collective.root and dst = phase.Collective.peer in
  let meta =
    {
      Schedule.size = phase.Collective.size;
      mode = `Gather;
      initial = [ src ];
      wanted = [ dst ];
      tag = 0;
    }
  in
  let dims_between u v =
    List.filter
      (fun d ->
        Topology.group_of topo ~dim:d u = Topology.group_of topo ~dim:d v
        && Topology.edge_alive topo ~dim:d u v)
      (List.init (Topology.num_dims topo) (fun d -> d))
  in
  let direct =
    List.map
      (fun d ->
        { Schedule.chunks = [| meta |];
          xfers = [ { Schedule.chunk = 0; src; dst; dim = d; prio = 0 } ] })
      (dims_between src dst)
  in
  let relays =
    List.concat_map
      (fun r ->
        if r = src || r = dst then []
        else
          match (dims_between src r, dims_between r dst) with
          | d1 :: _, d2 :: _ ->
              [
                { Schedule.chunks = [| meta |];
                  xfers =
                    [
                      { Schedule.chunk = 0; src; dst = r; dim = d1; prio = 0 };
                      { Schedule.chunk = 0; src = r; dst; dim = d2; prio = 1 };
                    ] };
              ]
          | _ -> [])
      (List.init (Topology.num_gpus topo) (fun v -> v))
  in
  let best =
    List.fold_left
      (fun acc s ->
        let t = Sim.time ~blocks:cfg.blocks topo s in
        match acc with Some (_, tb) when tb <= t -> acc | _ -> Some (s, t))
      None (direct @ relays)
  in
  match best with
  | Some (s, t) ->
      (s, t, zero_breakdown, 0, List.length direct + List.length relays, "sendrecv")
  | None -> failwith "Synthesizer: peers are not connected"

(* Synthesize one non-AllReduce phase; returns (schedule, simulated time,
   stats).  The schedule is already mirrored for reduce-family phases. *)
let synth_phase ~pool ~memo ~budget cfg topo (phase : Collective.t) =
  Trace.with_span ~cat:"stage" "synth.phase"
    ~args:[ ("collective", Format.asprintf "%a" Collective.pp phase) ]
  @@ fun () ->
  if phase.Collective.kind = Collective.SendRecv then synth_sendrecv cfg topo phase
  else
  let primitives = Collective.decompose phase in
  let p0 = List.hd primitives in
  let mirrored = p0.Collective.mirrored in
  (* Reduce-family mirrors combine on the way up ([reverse]); Gather is the
     only non-reducing mirrored kind and must stay a copy ([transpose]). *)
  let mirror =
    if Collective.is_reduce phase.Collective.kind then Schedule.reverse
    else Schedule.transpose
  in
  let kind = p0.Collective.p_kind in
  let search_cfg =
    match cfg.search_config with Some c -> c | None -> Search.default topo kind
  in
  let sketches, search_s =
    timed (fun () ->
        Trace.with_span ~cat:"stage" "synth.search" (fun () ->
            cached_search ~budget topo ~config:search_cfg ~kind
              ~root:p0.Collective.p_root))
  in
  if sketches = [] then failwith "Synthesizer: no sketch covers the demand";
  (* Rank shapes by an α-β estimate and keep the most promising; the
     simulator makes the final call among the survivors.  For one-to-all
     demands the estimate sums per-stage critical sends; for all-to-all
     demands every GPU replays the sketch simultaneously, so per-GPU port
     time per dimension is its workload times the link's byte time. *)
  let sketches =
    let size = Collective.chunk_size phase in
    let all_to_all = List.length primitives > 1 in
    let stage_estimate s =
      List.fold_left
        (fun acc k ->
          let stage_cost =
            List.fold_left
              (fun m (sd : Sketch.subdemand) ->
                if sd.Sketch.sd_stage <> k then m
                else begin
                  let link = (Topology.dim topo sd.Sketch.sd_dim).Syccl_topology.Topology.link in
                  let rounds =
                    (List.length sd.Sketch.dsts + List.length sd.Sketch.srcs - 1)
                    / max 1 (List.length sd.Sketch.srcs)
                  in
                  Float.max m
                    (link.Syccl_topology.Link.alpha
                    +. (link.Syccl_topology.Link.beta *. size *. float_of_int rounds))
                end)
              0.0 (Sketch.subdemands topo s)
          in
          acc +. stage_cost)
        0.0
        (List.init s.Sketch.num_stages (fun k -> k))
    in
    let merged_estimate s =
      let w = Sketch.dim_workload topo s in
      let worst = ref 0.0 in
      Array.iteri
        (fun d wd ->
          let link = (Topology.dim topo d).Syccl_topology.Topology.link in
          let t = wd *. link.Syccl_topology.Link.beta *. size in
          if t > !worst then worst := t)
        w;
      !worst +. stage_estimate s *. 1e-3
      (* stage term only breaks ties toward lower latency *)
    in
    let estimate = if all_to_all then merged_estimate else stage_estimate in
    (* Production scale: per-combo planning/simulation costs grow with n, so
       keep fewer (better-ranked) shapes. *)
    let cap =
      if Topology.num_gpus topo >= 256 then min cfg.max_shapes 8
      else cfg.max_shapes
    in
    let ranked =
      List.map (fun s -> (estimate s, s)) sketches
      |> List.stable_sort (fun (a, _) (b, _) -> Float.compare a b)
      |> List.map snd
    in
    let kept = List.filteri (fun i _ -> i < cap) ranked in
    (* A shape that is slow alone can be the essential complement of a mix
       (§4.2 step 2 balances dimensions by pairing opposite profiles), so
       also keep, per dimension, the best-ranked shape whose workload
       concentrates there. *)
    let dominant s =
      let w = Sketch.dim_workload topo s in
      let total = Array.fold_left ( +. ) 0.0 w in
      let best = ref 0 in
      Array.iteri (fun d v -> if v > w.(!best) then best := d) w;
      if total > 0.0 && w.(!best) > 0.5 *. total then Some !best else None
    in
    let complements =
      List.filter_map
        (fun d ->
          if List.exists (fun s -> dominant s = Some d) kept then None
          else List.find_opt (fun s -> dominant s = Some d) ranked)
        (List.init (Topology.num_dims topo) (fun d -> d))
    in
    kept @ complements
  in
  let combos, combine_s =
    timed (fun () ->
        Trace.with_span ~cat:"stage" "synth.combine" @@ fun () ->
        (* Combinations are also size-independent (fractions are ratios);
           key by the kept shapes' signatures.  At production scale every
           combo costs seconds to plan/simulate, so fewer are kept. *)
        let max_combos =
          if Topology.num_gpus topo >= 256 then min cfg.max_combos 12
          else cfg.max_combos
        in
        let key =
          Format.asprintf "%s/%d/%b/%d/%a" topo.Topology.name
            (Topology.num_gpus topo)
            (List.length primitives > 1)
            max_combos
            (fun fmt l ->
              List.iter (fun s -> Format.fprintf fmt "%x." (Sketch.signature topo s)) l)
            sketches
        in
        match Cache.find_opt combo_cache key with
        | Some r -> r
        | None ->
            let r =
              if List.length primitives > 1 then
                Combine.combos_all_to_all ~max_combos ~budget topo sketches
              else Combine.combos_one_to_all ~max_combos ~budget topo sketches
            in
            (* An expired budget may have truncated generation mid-way;
               where it stopped is timing-dependent, so don't memoize. *)
            if not (Budget.expired budget) then Cache.put combo_cache key r;
            r)
  in
  let plans = List.map (fun c -> (c, Subsolver.plan topo phase c)) combos in
  (* Step 1: fast solving of every combination, then filtering (§5.3). *)
  let (step1, solution1), solve1_s =
    timed (fun () ->
        Trace.with_span ~cat:"stage" "synth.solve1" @@ fun () ->
        let strategy =
          if cfg.fast_only then Subsolver.Fast_only
          else
            (* Coarse solving: large epochs (E1) and a small refinement
               budget — quick screening of every combination. *)
            Subsolver.Milp_refine
              {
                e = cfg.e1;
                var_budget = cfg.milp_var_budget / 2;
                node_limit = min 20 cfg.milp_node_limit;
                time_limit = Float.min 2.0 cfg.milp_time_limit;
              }
        in
        let solution =
          solve_plans ~pool ~memo ~budget strategy topo (List.map snd plans)
        in
        (* Coarse screening simulates with few blocks; survivors get the
           full-fidelity simulation in step 2.  Candidates are independent,
           so assembly + simulation also spread across the pool (the
           class-solution table is read-only by now). *)
        let screen_blocks = min 2 cfg.blocks in
        ( Array.to_list
            (Pool.map pool
               (fun (c, p) ->
                 let s = Subsolver.assemble p ~solution in
                 let s = if mirrored then mirror s else s in
                 (c, p, s, Sim.time ~blocks:screen_blocks topo s))
               (Array.of_list plans)),
          solution ))
  in
  (* Very large schedules are simulated with coarser pipelining: block count
     barely moves the makespan once chunks are megabytes, but event counts
     grow linearly. *)
  let fidelity_blocks s =
    if Schedule.num_xfers s > 40_000 then min 2 cfg.blocks else cfg.blocks
  in
  let best_t =
    List.fold_left (fun a (_, _, _, t) -> Float.min a t) infinity step1
  in
  let survivors =
    List.filter (fun (_, _, _, t) -> t <= best_t *. (1.0 +. cfg.r1)) step1
    |> List.sort (fun (_, _, _, a) (_, _, _, b) -> Float.compare a b)
    |> List.filteri (fun i _ -> i < cfg.r2)
  in
  (* Step 2: accurate solving and full-fidelity simulation of the
     surviving candidates. *)
  let step2, solve2_s =
    timed (fun () ->
        Trace.with_span ~cat:"stage" "synth.solve2" @@ fun () ->
        if Budget.expired budget then begin
          (* No time left to refine or re-simulate: keep the survivors at
             their coarse screening fidelity. *)
          Budget.mark_degraded budget;
          survivors
        end
        else if cfg.fast_only then
          List.map
            (fun (c, p, s1, _) ->
              (c, p, s1, Sim.time ~blocks:(fidelity_blocks s1) topo s1))
            survivors
        else begin
          let strategy = strategy_of cfg ~e:cfg.e2 in
          (* Fine solves warm-start from the coarse incumbent for the same
             demand (step 1's class table is read-only by now). *)
          let solution =
            solve_plans ~pool ~memo ~budget
              ~warm:(fun d -> Some (solution1 d))
              strategy topo
              (List.map (fun (_, p, _, _) -> p) survivors)
          in
          List.map
            (fun (c, p, s1, _) ->
              let s2 = Subsolver.assemble p ~solution in
              let s2 = if mirrored then mirror s2 else s2 in
              let t1 = Sim.time ~blocks:(fidelity_blocks s1) topo s1 in
              let t2 = Sim.time ~blocks:(fidelity_blocks s2) topo s2 in
              if t2 < t1 then (c, p, s2, t2) else (c, p, s1, t1))
            survivors
        end)
  in
  let (combo, _, sched, t) =
    match
      List.sort (fun (_, _, _, a) (_, _, _, b) -> Float.compare a b) step2
    with
    | best :: _ -> best
    | [] -> failwith "Synthesizer: no candidate survived"
  in
  ( sched,
    t,
    { zero_breakdown with search_s; combine_s; solve1_s; solve2_s },
    List.length sketches,
    List.length combos,
    combo.Combine.desc )

let synthesize_memo ~config ~memo ~budget topo coll =
  Trace.with_span ~cat:"stage" "synthesize"
    ~args:
      [
        ("collective", Format.asprintf "%a" Collective.pp coll);
        ("topo", topo.Topology.name);
      ]
  @@ fun () ->
  let t0 = Clock.now () in
  if coll.Collective.n <> Topology.num_gpus topo then
    invalid_arg "Synthesizer: collective/topology GPU count mismatch";
  (* Solver/cache activity attributed to this call: deltas of the shared
     process-wide counters (see the breakdown doc for concurrency caveats). *)
  let activity0 =
    ( Counters.value "cache.subsolve.hits",
      Counters.value "cache.subsolve.misses",
      Counters.value "milp.solves",
      Counters.value "milp.nodes",
      Counters.value "milp.flow_certified" )
  in
  let pool = Pool.get config.domains in
  let phases = Collective.phases coll in
  let results = List.map (synth_phase ~pool ~memo ~budget config topo) phases in
  let schedules = List.map (fun (s, _, _, _, _, _) -> s) results in
  let time = List.fold_left (fun a (_, t, _, _, _, _) -> a +. t) 0.0 results in
  let breakdown =
    List.fold_left (fun a (_, _, b, _, _, _) -> add_breakdown a b) zero_breakdown results
  in
  let breakdown =
    let h0, m0, s0, n0, f0 = activity0 in
    let d now before = int_of_float (now -. before) in
    {
      breakdown with
      cache_hits = d (Counters.value "cache.subsolve.hits") h0;
      cache_misses = d (Counters.value "cache.subsolve.misses") m0;
      milp_solves = d (Counters.value "milp.solves") s0;
      milp_nodes = d (Counters.value "milp.nodes") n0;
      flow_certified = d (Counters.value "milp.flow_certified") f0;
    }
  in
  let num_sketches = List.fold_left (fun a (_, _, _, s, _, _) -> a + s) 0 results in
  let num_combos = List.fold_left (fun a (_, _, _, _, c, _) -> a + c) 0 results in
  let chosen = String.concat " + " (List.map (fun (_, _, _, _, _, d) -> d) results) in
  let synth_time = Clock.now () -. t0 in
  Counters.bump "synth.calls";
  Counters.addf "synth.total_s" synth_time;
  Counters.addf "synth.search_s" breakdown.search_s;
  Counters.addf "synth.combine_s" breakdown.combine_s;
  Counters.addf "synth.solve1_s" breakdown.solve1_s;
  Counters.addf "synth.solve2_s" breakdown.solve2_s;
  {
    schedules;
    time;
    busbw = Collective.busbw coll ~time;
    synth_time;
    breakdown;
    num_sketches;
    num_combos;
    chosen;
    degraded = Full;
    degrade_reason = None;
  }

let budget_of_config config =
  match config.deadline with
  | None -> Budget.unlimited
  | Some s -> Budget.create ~seconds:s ()

(* Last rung of the degradation ladder: a validated precomputed baseline
   ({!Syccl_baselines.Fallback}).  Simulation is best-effort here — when the
   simulator is the faulty or too-slow component, [time]/[busbw] come out
   as nan rather than the rung failing. *)
let fallback_outcome ~t0 ~reason config topo coll =
  Counters.bump "synth.fallbacks";
  Trace.instant "synth.fallback" ~args:[ ("reason", reason) ];
  let schedules = Syccl_baselines.Fallback.schedule topo coll in
  let time =
    try
      List.fold_left
        (fun a s -> a +. Sim.time ~blocks:config.blocks topo s)
        0.0 schedules
    with _ -> Float.nan
  in
  {
    schedules;
    time;
    busbw = Collective.busbw coll ~time;
    synth_time = Clock.now () -. t0;
    breakdown = zero_breakdown;
    num_sketches = 0;
    num_combos = 0;
    chosen = "baseline-fallback";
    degraded = Fallback;
    degrade_reason = Some reason;
  }

(* The reroute rung, engaged only on punctured topologies: take the
   baseline schedule of the healthy base topology and reroute its
   transfers around the dead hardware.  Validated by the caller like every
   other rung. *)
let rerouted_outcome ~t0 ~reason config topo coll =
  Counters.bump "synth.reroutes";
  Trace.instant "synth.reroute" ~args:[ ("reason", reason) ];
  let healthy = Syccl_baselines.Fallback.schedule (Topology.base topo) coll in
  let schedules = Reroute.schedules topo healthy in
  let time =
    try
      List.fold_left
        (fun a s -> a +. Sim.time ~blocks:config.blocks topo s)
        0.0 schedules
    with _ -> Float.nan
  in
  {
    schedules;
    time;
    busbw = Collective.busbw coll ~time;
    synth_time = Clock.now () -. t0;
    breakdown = zero_breakdown;
    num_sketches = 0;
    num_combos = 0;
    chosen = "baseline-rerouted";
    degraded = Rerouted;
    degrade_reason = Some reason;
  }

(* The bottom of the ladder.  Healthy topology: straight to the baseline.
   Punctured topology: try rerouting the healthy baseline around the dead
   hardware first (validated — an invalid reroute counts as the rung
   crashing), and only then the baseline on the punctured topology itself,
   whose candidates may all be severed. *)
let last_resort ~t0 ~reason config topo coll =
  if Fault.is_empty (Topology.faults topo) then
    fallback_outcome ~t0 ~reason config topo coll
  else
    match
      let o = rerouted_outcome ~t0 ~reason config topo coll in
      match Syccl_sim.Validate.validate topo coll o.schedules with
      | Ok () ->
          Counters.bump "synth.degraded";
          o
      | Error e ->
          failwith ("Synthesizer: rerouted schedule failed validation: " ^ e)
    with
    | o -> o
    | exception e ->
        Counters.bump "synth.rung_failures";
        Trace.instant "synth.degrade"
          ~args:[ ("rung", "rerouted"); ("error", Printexc.to_string e) ];
        fallback_outcome ~t0 ~reason:(Printexc.to_string e) config topo coll

(* Degradation ladder: a full-pipeline attempt, then — if that crashed — a
   fast-only retry under the same budget, then (on punctured topologies) a
   reroute of the healthy baseline around the dead hardware, then the
   precomputed baseline.  Every rung's schedules must pass
   Validate.validate before they are returned; a rung producing an invalid
   schedule counts as that rung crashing.  Caller errors (GPU-count
   mismatch) are raised before the ladder engages so a fallback never
   masks them. *)
let synthesize_with ~config ~memo ~budget topo coll =
  if coll.Collective.n <> Topology.num_gpus topo then
    invalid_arg "Synthesizer: collective/topology GPU count mismatch";
  let t0 = Clock.now () in
  let validated level reason (o : outcome) =
    match Syccl_sim.Validate.validate topo coll o.schedules with
    | Ok () ->
        if level <> Full then Counters.bump "synth.degraded";
        { o with degraded = level; degrade_reason = reason }
    | Error e -> failwith ("Synthesizer: schedule failed validation: " ^ e)
  in
  let rung_failed rung e =
    Counters.bump "synth.rung_failures";
    Trace.instant "synth.degrade"
      ~args:[ ("rung", rung); ("error", Printexc.to_string e) ]
  in
  match
    let o = synthesize_memo ~config ~memo ~budget topo coll in
    let level = if Budget.degraded budget then Fast else Full in
    validated level (if level = Fast then Some "deadline" else None) o
  with
  | o -> o
  | exception e1 ->
      rung_failed "full" e1;
      let r1 = Printexc.to_string e1 in
      if config.fast_only || Budget.expired budget then
        last_resort ~t0 ~reason:r1 config topo coll
      else begin
        match
          let cfg = { config with fast_only = true } in
          validated Fast (Some r1)
            (synthesize_memo ~config:cfg ~memo ~budget topo coll)
        with
        | o -> o
        | exception e2 ->
            rung_failed "fast" e2;
            last_resort ~t0 ~reason:(Printexc.to_string e2) config topo coll
      end

let synthesize ?(config = default_config) topo coll =
  synthesize_with ~config ~memo:live_memo ~budget:(budget_of_config config)
    topo coll

(* Parallel sweep driver: synthesize a whole size/collective series
   concurrently on the same pool the per-call solves use.  Awaiting helps,
   so the nested parallel regions inside each synthesize cannot deadlock;
   with [config.domains <= 1] this degrades to a sequential List.map.

   Snapshot isolation: concurrent elements sharing the live sub-solve cache
   would make results depend on scheduling — which entries are present when
   an element probes depends on how far its siblings have run, and a
   normalized transfer hit yields different (valid but not identical)
   xfers than a direct solve.  Instead every element probes a frozen
   sweep-start snapshot plus its own insertions, so its schedule is
   exactly what a standalone [synthesize] would produce from the same
   starting cache state, for any pool size and any schedule of the
   workers.  Each overlay is only ever touched from within its own
   element's (single) task body — helping runs a whole task on one worker,
   never parts of one task on two — so the overlays need no locking.
   Insertions are merged back into the shared cache in list order after
   the whole sweep completes.

   Fault isolation: every element runs the full degradation ladder inside
   its own task, under its own {!Budget.detach}ed budget (shared sweep
   deadline, independent token), so a crashing or expiring element
   degrades — it does not abort its siblings or the sweep.  An element
   whose task dies outside the ladder (e.g. the ["pool.crash"] fault
   point fires before the ladder runs) surfaces as [Error]. *)
let synthesize_all_results ?(config = default_config) topo colls =
  match colls with
  | [] -> []
  | [ coll ] -> (
      match synthesize ~config topo coll with
      | o -> [ Ok o ]
      | exception e -> [ Error (Printexc.to_string e) ])
  | _ ->
      let pool = Pool.get config.domains in
      let sweep_budget = budget_of_config config in
      let snap = Hashtbl.create 256 in
      List.iter
        (fun (k, v) -> Hashtbl.replace snap k v)
        (Cache.bindings subsolve_cache);
      let jobs =
        List.map
          (fun coll ->
            let overlay = Hashtbl.create 64 in
            let inserts = ref [] in
            let memo =
              {
                memo_find =
                  (fun k ->
                    let r =
                      match Hashtbl.find_opt overlay k with
                      | Some _ as r -> r
                      | None -> Hashtbl.find_opt snap k
                    in
                    (match r with
                    | Some _ -> Counters.bump "cache.subsolve.hits"
                    | None -> Counters.bump "cache.subsolve.misses");
                    r);
                memo_put =
                  (fun k v ->
                    Hashtbl.replace overlay k v;
                    inserts := (k, v) :: !inserts);
              }
            in
            let budget = Budget.detach sweep_budget in
            ( Pool.submit pool (fun () ->
                  synthesize_with ~config ~memo ~budget topo coll),
              budget,
              inserts ))
          colls
      in
      let outs =
        List.map
          (fun (fut, budget, _) ->
            let r =
              match Pool.await fut with
              | o -> Ok o
              | exception e -> Error (Printexc.to_string e)
            in
            (* The element is finished either way; cancel its budget so any
               helper still holding it bails instead of burning the rest of
               the deadline. *)
            Budget.cancel budget;
            r)
          jobs
      in
      List.iter
        (fun (_, _, inserts) ->
          List.iter
            (fun (k, v) -> Cache.put subsolve_cache k v)
            (List.rev !inserts))
        jobs;
      outs

let synthesize_all ?(config = default_config) topo colls =
  List.map2
    (fun coll r ->
      match r with
      | Ok o -> o
      | Error reason ->
          (* The element's task died before the ladder could catch it;
             rebuild its result from the bottom rungs in this thread. *)
          last_resort ~t0:(Clock.now ()) ~reason config topo coll)
    colls
    (synthesize_all_results ~config topo colls)
