(** The SyCCL synthesis driver (§3.3, §5): sketch exploration → sketch
    combinations → two-step sub-schedule synthesis → simulator-based
    selection. *)

type config = {
  search_config : Search.config option;  (** [None] = {!Search.default} *)
  e1 : float;  (** coarse-step epoch knob (§5.3; paper default 3.0) *)
  e2 : float;  (** fine-step epoch knob (paper default 0.5) *)
  r1 : float;  (** keep candidates within [r1] of the best (default 0.20) *)
  r2 : int;  (** keep at most [r2] candidates for the fine step (default 8) *)
  fast_only : bool;  (** skip the MILP refinement entirely *)
  milp_var_budget : int;  (** model-size cap for the epoch MILP *)
  milp_node_limit : int;
  milp_time_limit : float;  (** per-model solver budget, seconds *)
  max_shapes : int;  (** sketches kept (by α-β estimate) for combination *)
  max_combos : int;
  domains : int;
      (** parallel solver instances (§5.3); served by a persistent
          work-stealing pool ({!Syccl_util.Pool}) spawned once per level *)
  blocks : int;  (** simulator pipelining blocks *)
  deadline : float option;
      (** wall-clock budget in seconds for one {!synthesize} call (or one
          whole {!synthesize_all} sweep); [None] = unlimited.  See
          {!level} for what happens when it is too tight. *)
}

val default_config : config
(** E1 = 3.0, E2 = 0.5, R1 = 20 %, R2 = 8 (§7.1), MILP refinement on,
    no deadline. *)

type level =
  | Full  (** the full pipeline ran to completion *)
  | Fast
      (** the deadline forced degradation (truncated search/combination
          enumeration, skipped MILP refinements), or the full pipeline
          crashed and the fast-only retry succeeded *)
  | Rerouted
      (** synthesis on a punctured topology was impossible within the
          budget; the result is the healthy baseline with transfers
          rerouted around the dead hardware ({!Reroute}), still
          validate-checked *)
  | Fallback
      (** synthesis was impossible within the budget (or kept crashing);
          the result is a precomputed baseline
          ({!Syccl_baselines.Fallback}) *)

val level_name : level -> string
(** ["full"], ["fast"], ["rerouted"], ["fallback"]. *)

type breakdown = {
  search_s : float;
  combine_s : float;
  solve1_s : float;
  solve2_s : float;
  cache_hits : int;  (** sub-solve memo hits during this call *)
  cache_misses : int;  (** sub-solve memo misses during this call *)
  milp_solves : int;  (** MILP models solved during this call *)
  milp_nodes : int;  (** branch-and-bound nodes explored during this call *)
  flow_certified : int;
      (** MILP solves stopped early because the incumbent met the
          multi-commodity-flow lower bound (within-ε-of-flow-optimal
          certificate; see {!Syccl_teccl.Epoch_model.solve}) *)
  registry_hits : int;
      (** persistent schedule-registry hits serving this outcome (filled in
          by {!Syccl_serve.Serve}; always 0 on a bare [synthesize]) *)
  registry_misses : int;  (** registry probes that had to fall through *)
}
(** Wall-clock per synthesis step (Fig. 16b) plus solver/cache activity.
    The activity fields are deltas of the process-wide {!Syccl_util.Counters}
    cells taken around the call: exact for a lone [synthesize], attributed
    to the whole sweep element when calls run concurrently (the counters
    are shared). *)

type outcome = {
  schedules : Syccl_sim.Schedule.t list;  (** one per collective phase *)
  time : float;  (** simulated completion time, seconds *)
  busbw : float;  (** bus bandwidth, GB/s *)
  synth_time : float;
  breakdown : breakdown;
  num_sketches : int;
  num_combos : int;
  chosen : string;  (** description of the winning combination *)
  degraded : level;  (** which rung of the degradation ladder produced this *)
  degrade_reason : string option;
      (** why ([None] iff [degraded = Full]): ["deadline"], or the
          exception that killed the higher rung(s).  When [degraded =
          Fallback], [time]/[busbw] are [nan] if the simulator itself was
          the failing component. *)
}

val synthesize :
  ?config:config ->
  Syccl_topology.Topology.t ->
  Syccl_collective.Collective.t ->
  outcome
(** Synthesize a schedule for the collective on the topology.  AllReduce is
    synthesized as ReduceScatter followed by AllGather (§4.3).

    Deterministic in [config.domains]: for a fixed sub-solve cache state,
    the same inputs produce the same schedule (and simulated time) for any
    pool size.  Solved sub-demand classes are memoized in a bounded cache
    keyed by normalized class key, strategy and chunk-size bucket, so
    repeated or swept calls skip sub-solves.  A cross-size hit is reused
    only after {!Subsolver.no_worse_than_direct} accepts it, so cache
    warmth can never push a sub-schedule below the direct baseline — but
    the (valid) schedule returned may still differ with what was solved
    earlier in the process; {!reset_caches} restores cold-start behaviour.
    Counters under ["cache.*"], ["pool.*"] and ["synth.*"]
    ({!Syccl_util.Counters}) record activity.

    Robustness: with [config.deadline = Some d] the whole call is budgeted
    to [d] seconds — every stage checks the shared budget cooperatively
    and degrades (returns its incumbent, skips refinement, falls back)
    rather than overshooting by more than one solver check interval.  The
    call runs a degradation ladder — full pipeline, then a fast-only
    retry if the full pipeline raised, then {!Syccl_baselines.Fallback} —
    and [outcome.degraded] reports which rung produced the result.  Every
    rung, fallback included, must pass {!Syccl_sim.Validate.validate}; the
    call raises only when even the baseline rung cannot produce a valid
    schedule (or the collective/topology GPU counts mismatch, which is
    reported as [Invalid_argument] before the ladder engages).
    Deadline-degraded sub-results are never memoized, so a tight deadline
    cannot pollute later unconstrained runs through the caches. *)

val synthesize_all :
  ?config:config ->
  Syccl_topology.Topology.t ->
  Syccl_collective.Collective.t list ->
  outcome list
(** Synthesize a series (e.g. a size sweep) concurrently on the persistent
    pool, preserving order.  With [config.domains <= 1] this is a
    sequential map.

    Snapshot isolation: every element probes the sub-solve cache as it was
    when the sweep started, plus its own insertions — never a sibling's
    mid-flight insertions — so each element's outcome equals a standalone
    {!synthesize} from the same starting cache state, independent of pool
    size and worker scheduling.  Insertions are merged back into the
    shared cache, in list order, after the sweep completes.

    Fault isolation: each element runs the degradation ladder inside its
    own pool task under its own budget (the sweep shares one
    [config.deadline] window), so a crashing or expiring element yields a
    degraded outcome for that element only — siblings and the sweep keep
    going.  If an element dies before the ladder can catch it (e.g. the
    ["pool.crash"] fault point), this wrapper substitutes the baseline
    fallback outcome; use {!synthesize_all_results} to observe such
    per-element errors instead. *)

val synthesize_all_results :
  ?config:config ->
  Syccl_topology.Topology.t ->
  Syccl_collective.Collective.t list ->
  (outcome, string) result list
(** Like {!synthesize_all}, but an element whose task failed outside the
    degradation ladder is reported as [Error] (the exception text) in its
    list position instead of being replaced by a fallback outcome. *)

val reset_caches : unit -> unit
(** Drop the sketch-search, combination and sub-solve caches (used by
    benchmarks/tests that need cold-start behaviour). *)
