module Topology = Syccl_topology.Topology
module Collective = Syccl_collective.Collective
module Vcollective = Syccl_collective.Vcollective
module Schedule = Syccl_sim.Schedule
module Sim = Syccl_sim.Sim
module Greedy = Syccl_teccl.Greedy

type mode = [ `Greedy | `Hybrid ]

type outcome = {
  schedule : Schedule.t;
  time : float;
  algbw : float;
  synth_time : float;
  mode_used : mode;
}

let metas_of_chunks chunks =
  Array.of_list
    (List.map
       (fun ch ->
         match ch with
         | Collective.Gather_chunk { id; size; src; dsts } ->
             { Schedule.size; mode = `Gather; initial = [ src ]; wanted = dsts; tag = id }
         | Collective.Reduce_chunk _ -> assert false)
       chunks)

let greedy_schedule topo v =
  let metas = metas_of_chunks (Vcollective.chunks v) in
  match Greedy.solve topo metas with
  | Some s -> s
  | None -> failwith "Vsynth: greedy could not satisfy the vector demand"

(* Tag remapping from the symmetric collective's chunk numbering to the
   vector demand's chunk ids. *)
let retag_base v (s : Schedule.t) =
  let n = Vcollective.num_gpus v in
  let vid = Hashtbl.create 64 in
  List.iter
    (fun ch ->
      match ch with
      | Collective.Gather_chunk { id; src; dsts; _ } -> (
          match v with
          | Vcollective.AllGatherV _ -> Hashtbl.replace vid src id
          | Vcollective.AllToAllV _ ->
              List.iter (fun dst -> Hashtbl.replace vid ((src * n) + dst) id) dsts)
      | Collective.Reduce_chunk _ -> ())
    (Vcollective.chunks v);
  {
    s with
    Schedule.chunks =
      Array.map
        (fun c ->
          match Hashtbl.find_opt vid c.Schedule.tag with
          | Some t -> { c with Schedule.tag = t }
          | None -> c)
        s.Schedule.chunks;
  }

let residual_schedule topo v ~base =
  let metas =
    match v with
    | Vcollective.AllGatherV sizes ->
        List.filter_map
          (fun ch ->
            match ch with
            | Collective.Gather_chunk { id; src; dsts; _ } ->
                let extra = sizes.(src) -. base in
                if extra <= 1e-9 then None
                else Some { Schedule.size = extra; mode = `Gather; initial = [ src ]; wanted = dsts; tag = id }
            | Collective.Reduce_chunk _ -> None)
          (Vcollective.chunks v)
    | Vcollective.AllToAllV sizes ->
        List.filter_map
          (fun ch ->
            match ch with
            | Collective.Gather_chunk { id; src; dsts; _ } ->
                let dst = List.hd dsts in
                let extra = sizes.(src).(dst) -. base in
                if extra <= 1e-9 then None
                else Some { Schedule.size = extra; mode = `Gather; initial = [ src ]; wanted = dsts; tag = id }
            | Collective.Reduce_chunk _ -> None)
          (Vcollective.chunks v)
  in
  if metas = [] then Schedule.empty
  else
    match Greedy.solve topo (Array.of_list metas) with
    | Some s -> s
    | None -> failwith "Vsynth: greedy could not satisfy the residual demand"

let synthesize ?(mode = `Hybrid) ?config topo v =
  let t0 = Syccl_util.Clock.now () in
  let n = Vcollective.num_gpus v in
  if n <> Topology.num_gpus topo then
    invalid_arg "Vsynth: demand/topology GPU count mismatch";
  let base = Vcollective.symmetric_base v in
  let mean =
    Vcollective.total_bytes v /. float_of_int (List.length (Vcollective.chunks v))
  in
  let effective_mode =
    match mode with
    | `Greedy -> `Greedy
    | `Hybrid -> if base < 0.01 *. mean then `Greedy else `Hybrid
  in
  let schedule =
    match effective_mode with
    | `Greedy -> greedy_schedule topo v
    | `Hybrid ->
        let sym =
          match v with
          | Vcollective.AllGatherV _ ->
              Collective.make Collective.AllGather ~n ~size:(base *. float_of_int n)
          | Vcollective.AllToAllV _ ->
              Collective.make Collective.AllToAll ~n ~size:(base *. float_of_int n)
        in
        let o = Synthesizer.synthesize ?config topo sym in
        let base_sched =
          match o.Synthesizer.schedules with
          | [ s ] -> retag_base v s
          | _ -> failwith "Vsynth: single-phase collective expected"
        in
        Schedule.union [ base_sched; residual_schedule topo v ~base ]
  in
  let time = Sim.time topo schedule in
  {
    schedule;
    time;
    algbw = Vcollective.algbw v ~time;
    synth_time = Syccl_util.Clock.now () -. t0;
    mode_used = effective_mode;
  }

let covers topo v (s : Schedule.t) =
  let ( let* ) = Result.bind in
  let* () = Syccl_sim.Validate.check topo s in
  let by_tag = Hashtbl.create 64 in
  Array.iter
    (fun (m : Schedule.chunk_meta) ->
      Hashtbl.replace by_tag m.Schedule.tag
        (m :: Option.value (Hashtbl.find_opt by_tag m.Schedule.tag) ~default:[]))
    s.Schedule.chunks;
  let rec go = function
    | [] -> Ok ()
    | Collective.Reduce_chunk _ :: _ -> Error "vector demands are gather-only"
    | Collective.Gather_chunk { id; size; src; dsts } :: rest -> (
        match Hashtbl.find_opt by_tag id with
        | None -> Error (Printf.sprintf "demand chunk %d unscheduled" id)
        | Some frs ->
            let total = List.fold_left (fun a m -> a +. m.Schedule.size) 0.0 frs in
            if Float.abs (total -. size) > 1e-3 *. size then
              Error
                (Printf.sprintf "demand chunk %d: fractions sum to %g, expected %g"
                   id total size)
            else if
              List.for_all
                (fun m ->
                  List.mem src m.Schedule.initial
                  && List.for_all
                       (fun d ->
                         List.mem d m.Schedule.wanted || List.mem d m.Schedule.initial)
                       dsts)
                frs
            then go rest
            else Error (Printf.sprintf "demand chunk %d mismatched" id))
  in
  go (Vcollective.chunks v)
