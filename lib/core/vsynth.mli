(** Synthesis for asymmetric (vector) collectives (§8).

    Collective symmetry does not hold for AllGatherV / AlltoAllV, so sketch
    decomposition does not apply directly.  Following the paper's
    discussion, two paths are provided:

    - [`Greedy]: the earliest-finish heuristic over the full vector demand —
      the recommended approach for highly irregular patterns;
    - [`Hybrid]: extract the {e symmetric base} (the largest per-rank demand
      every GPU shares), synthesize it with SyCCL's full symmetry pipeline,
      and cover the residual asymmetric remainder with the greedy — "a base
      solution for a symmetric sub-demand in the original collective". *)

type mode = [ `Greedy | `Hybrid ]

type outcome = {
  schedule : Syccl_sim.Schedule.t;
  time : float;  (** simulated completion time, seconds *)
  algbw : float;  (** aggregate GB/s *)
  synth_time : float;
  mode_used : mode;
}

val synthesize :
  ?mode:mode ->
  ?config:Synthesizer.config ->
  Syccl_topology.Topology.t ->
  Syccl_collective.Vcollective.t ->
  outcome
(** Synthesize a schedule for the vector demand.  [`Hybrid] (default) falls
    back to [`Greedy] when the symmetric base is zero or negligible
    (< 1 % of the mean demand). *)

val covers :
  Syccl_topology.Topology.t ->
  Syccl_collective.Vcollective.t ->
  Syccl_sim.Schedule.t ->
  (unit, string) result
(** Schedule validity against the vector demand: schedule chunks grouped by
    tag must deliver every demand chunk, fractions summing to its size. *)
