(* One Gauss-Jordan elementary transformation: pivoting the (already
   ftran-transformed) column [w] on row [er] multiplies the inverse by a
   matrix that is the identity except in column [er].  We store the pivot
   value and the off-pivot nonzeros of [w]. *)
type eta = { er : int; piv : float; ei : int array; ev : float array }

type t = {
  mat : Sparse.t;
  m : int;
  hd : int array;
  mutable etas : eta array;
  mutable neta : int;
  mutable base_neta : int;
      (* eta count right after the last refactorization: a reinvert itself
         emits one eta per basis column, so staleness must be measured in
         etas added *since* then, not in the absolute file length *)
}

let refactor_threshold = 100
let pivot_tol = 1e-9
let drop_tol = 1e-12

let head t = t.hd
let eta_count t = t.neta
let refactor_due t = t.neta - t.base_neta > refactor_threshold

let push_eta t e =
  if t.neta = Array.length t.etas then begin
    let bigger = Array.make (max 16 (2 * t.neta)) e in
    Array.blit t.etas 0 bigger 0 t.neta;
    t.etas <- bigger
  end;
  t.etas.(t.neta) <- e;
  t.neta <- t.neta + 1

let apply_ftran e x =
  let xr = x.(e.er) /. e.piv in
  if xr <> 0.0 then begin
    for k = 0 to Array.length e.ei - 1 do
      let i = e.ei.(k) in
      x.(i) <- x.(i) -. (e.ev.(k) *. xr)
    done;
    x.(e.er) <- xr
  end
  else x.(e.er) <- 0.0

let apply_btran e y =
  let acc = ref y.(e.er) in
  for k = 0 to Array.length e.ei - 1 do
    acc := !acc -. (e.ev.(k) *. y.(e.ei.(k)))
  done;
  y.(e.er) <- !acc /. e.piv

let ftran t x =
  for k = 0 to t.neta - 1 do
    apply_ftran t.etas.(k) x
  done

let btran t y =
  for k = t.neta - 1 downto 0 do
    apply_btran t.etas.(k) y
  done

let eta_of_column ~row w =
  let nz = ref 0 in
  Array.iteri
    (fun i v -> if i <> row && Float.abs v > drop_tol then incr nz)
    w;
  let ei = Array.make !nz 0 and ev = Array.make !nz 0.0 in
  let k = ref 0 in
  Array.iteri
    (fun i v ->
      if i <> row && Float.abs v > drop_tol then begin
        ei.(!k) <- i;
        ev.(!k) <- v;
        incr k
      end)
    w;
  { er = row; piv = w.(row); ei; ev }

let update t ~row ~col ~w =
  push_eta t (eta_of_column ~row w);
  t.hd.(row) <- col

(* Rebuild the eta file by factorizing the head columns one at a time:
   scatter, transform through the etas built so far, then pivot on the
   largest-magnitude entry among still-unassigned rows.  Row assignment may
   permute relative to the old head.

   Processing order decides the fill (and therefore the cost): LP bases
   are dominated by slack columns and near-triangular structural blocks,
   so we peel column singletons first — a column with exactly one nonzero
   over still-unassigned rows pivots there without touching any other
   unassigned row — and order the remaining "bump" by ascending nonzero
   count (the classic triangularity crash).  Head order used to make this
   O(m²·fill) on epoch-model bases; the crash makes a refactorization
   cost about as much as one dense column scan per basis column. *)
let reinvert_inner t =
  let m = t.m in
  t.neta <- 0;
  if m = 0 then true
  else begin
    (* Structural peel over basis positions (numeric pivoting below may
       still pick different rows; the order is a heuristic, not a
       commitment). *)
    let count = Array.make m 0 in
    let row_assigned = Array.make m false in
    let rows_of = Array.make m [] in
    for k = 0 to m - 1 do
      Sparse.col_iter t.mat t.hd.(k) (fun i _ ->
          count.(k) <- count.(k) + 1;
          rows_of.(i) <- k :: rows_of.(i))
    done;
    let order = Array.make m (-1) in
    let taken = Array.make m false in
    let next = ref 0 in
    let queue = Queue.create () in
    for k = 0 to m - 1 do
      if count.(k) = 1 then Queue.add k queue
    done;
    while not (Queue.is_empty queue) do
      let k = Queue.pop queue in
      if (not taken.(k)) && count.(k) = 1 then begin
        taken.(k) <- true;
        order.(!next) <- k;
        incr next;
        Sparse.col_iter t.mat t.hd.(k) (fun i _ ->
            if not row_assigned.(i) then begin
              row_assigned.(i) <- true;
              List.iter
                (fun k' ->
                  if not taken.(k') then begin
                    count.(k') <- count.(k') - 1;
                    if count.(k') = 1 then Queue.add k' queue
                  end)
                rows_of.(i)
            end)
      end
    done;
    let bump = ref [] in
    for k = m - 1 downto 0 do
      if not taken.(k) then bump := k :: !bump
    done;
    let bump = Array.of_list !bump in
    Array.stable_sort
      (fun a b ->
        match compare count.(a) count.(b) with 0 -> compare a b | c -> c)
      bump;
    Array.iter
      (fun k ->
        order.(!next) <- k;
        incr next)
      bump;
    let assigned = Array.make m false in
    let new_head = Array.make m (-1) in
    (* Sparse working column: [w] holds values, [touched]/[in_w] track the
       nonzero pattern so scatter, pivot search, eta extraction and reset
       all cost O(nonzeros), not O(m).  The ftran stays a pass over the
       whole eta file, but each non-interacting eta costs one load. *)
    let w = Array.make m 0.0 in
    let in_w = Array.make m false in
    let touched = Array.make m 0 in
    let ntouch = ref 0 in
    let touch i =
      if not in_w.(i) then begin
        in_w.(i) <- true;
        touched.(!ntouch) <- i;
        incr ntouch
      end
    in
    let ok = ref true in
    let k = ref 0 in
    while !ok && !k < m do
      let col = t.hd.(order.(!k)) in
      ntouch := 0;
      Sparse.col_iter t.mat col (fun i v ->
          w.(i) <- v;
          touch i);
      for e = 0 to t.neta - 1 do
        let eta = t.etas.(e) in
        let xr = w.(eta.er) /. eta.piv in
        if xr <> 0.0 then begin
          for j = 0 to Array.length eta.ei - 1 do
            let i = eta.ei.(j) in
            touch i;
            w.(i) <- w.(i) -. (eta.ev.(j) *. xr)
          done;
          w.(eta.er) <- xr
        end
      done;
      let r = ref (-1) and best = ref pivot_tol in
      for p = 0 to !ntouch - 1 do
        let i = touched.(p) in
        if (not assigned.(i)) && Float.abs w.(i) > !best then begin
          r := i;
          best := Float.abs w.(i)
        end
      done;
      if !r < 0 then ok := false
      else begin
        let row = !r in
        let nz = ref 0 in
        for p = 0 to !ntouch - 1 do
          let i = touched.(p) in
          if i <> row && Float.abs w.(i) > drop_tol then incr nz
        done;
        let ei = Array.make !nz 0 and ev = Array.make !nz 0.0 in
        let q = ref 0 in
        for p = 0 to !ntouch - 1 do
          let i = touched.(p) in
          if i <> row && Float.abs w.(i) > drop_tol then begin
            ei.(!q) <- i;
            ev.(!q) <- w.(i);
            incr q
          end
        done;
        push_eta t { er = row; piv = w.(row); ei; ev };
        assigned.(row) <- true;
        new_head.(row) <- col;
        incr k
      end;
      for p = 0 to !ntouch - 1 do
        let i = touched.(p) in
        w.(i) <- 0.0;
        in_w.(i) <- false
      done
    done;
    if !ok then Array.blit new_head 0 t.hd 0 m;
    !ok
  end

let reinvert t =
  let t0 = Syccl_util.Clock.now () in
  let r = reinvert_inner t in
  if r then t.base_neta <- t.neta;
  Syccl_util.Counters.addf "lp.reinvert_s" (Syccl_util.Clock.elapsed t0);
  Syccl_util.Counters.bump "lp.reinverts";
  r

let create mat ~head =
  if Array.length head <> mat.Sparse.m then
    invalid_arg "Basis.create: head length mismatch";
  let t =
    {
      mat;
      m = mat.Sparse.m;
      hd = Array.copy head;
      etas = [||];
      neta = 0;
      base_neta = 0;
    }
  in
  if reinvert t then Some t else None
