(** Product-form-of-the-inverse basis for the revised simplex.

    The basis inverse is kept as an eta file: a sequence of elementary
    Gauss-Jordan transformations, one per pivot, each stored as the sparse
    transformed entering column.  [ftran] solves [B x = a] by applying the
    etas oldest-first; [btran] solves [Bᵀ y = c] by applying their
    transposes newest-first.  Both are O(Σ nnz of the etas) — no dense
    [m × m] matrix is ever formed, which is what lets warm-started
    re-solves on the branch-and-bound tree cost a handful of sparse
    pivots instead of a fresh dense tableau.

    The file is rebuilt from the basis head ([reinvert]) when it grows past
    a threshold or on numerical trouble; rebuilding may permute which row
    each basic column is assigned to, so callers must recompute basic-value
    vectors afterwards. *)

type t

val create : Sparse.t -> head:int array -> t option
(** [create mat ~head] factorizes the basis whose column in row [i] is
    [head.(i)] (length [mat.m], entries in [0, mat.n)).  [head] is copied.
    [None] when the selected columns are (numerically) singular. *)

val head : t -> int array
(** The live row→column assignment; mutated by [update] and [reinvert].
    Do not modify externally. *)

val eta_count : t -> int

val refactor_due : t -> bool
(** True when the eta file has grown past the rebuild threshold; callers
    should [reinvert] (and recompute basic values) before continuing. *)

val ftran : t -> float array -> unit
(** In-place solve of [B x = a]: the argument holds [a] (length [m]) on
    entry and [B⁻¹ a] on return. *)

val btran : t -> float array -> unit
(** In-place solve of [Bᵀ y = c]. *)

val update : t -> row:int -> col:int -> w:float array -> unit
(** Replace the basic column of [row] with [col].  [w] must be the
    ftran-transformed entering column [B⁻¹ A_col]; [w.(row)] is the pivot
    element and must be comfortably nonzero (the ratio test guarantees
    this).  [w] is not retained. *)

val reinvert : t -> bool
(** Rebuild the eta file from the current head.  Returns [false] (leaving
    the factorization unusable) if the head became singular — callers fall
    back to a cold start from the all-slack basis. *)
