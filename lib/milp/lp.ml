type cmp = Le | Ge | Eq

type problem = {
  num_vars : int;
  objective : float array;
  rows : ((int * float) list * cmp * float) list;
}

type result =
  | Optimal of { x : float array; obj : float }
  | Infeasible
  | Unbounded
  | Iter_limit

type basis_state = { b_head : int array; b_status : int array }

let eps = 1e-9
let feas_tol = 1e-7

(* Per-column status in the bounded formulation. *)
let at_lo = 0
let at_hi = 1
let basic = 2

(* Raised on a singular refactorization or a vanished pivot; the solve
   restarts cold (all-slack basis), so numerical trouble costs time, not
   correctness. *)
exception Numerical

let budget_stride = 64

let h_pivots = Syccl_util.Counters.histogram "lp.pivots_per_solve"
let c_warm_hits = Syccl_util.Counters.int_counter "lp.warm_hits"
let c_warm_misses = Syccl_util.Counters.int_counter "lp.warm_misses"
let c_phase1_skipped = Syccl_util.Counters.int_counter "lp.phase1_skipped"

(* Column layout: [0, n) structural, [n, n+m) one slack per row (bounds by
   comparison sense), [n+m, n+2m) one artificial per row, pinned to [0,0]
   except while hosting a violated row during a cold phase 1.  The matrix
   therefore has the same shape for every solve of a structurally identical
   problem, which is what makes basis states transferable. *)
type core = {
  mat : Sparse.t;
  m : int;
  n : int;
  ncols : int;
  lo : float array;
  hi : float array;
  obj2 : float array;  (* phase-2 costs over all columns *)
  status : int array;
  basis : Basis.t;
  xb : float array;  (* value of the basic variable of each row *)
  b : float array;
  y : float array;  (* work: duals / inverse row *)
  w : float array;  (* work: transformed column *)
  rho : float array;  (* work: dual-simplex inverse row *)
  pivots : int ref;
  max_iters : int;
  budget : Syccl_util.Budget.t;
}

let nb_value c j =
  if c.status.(j) = at_hi then c.hi.(j) else c.lo.(j)

let compute_xb c =
  Array.blit c.b 0 c.xb 0 c.m;
  for j = 0 to c.ncols - 1 do
    if c.status.(j) <> basic then begin
      let v = nb_value c j in
      if v <> 0.0 && Float.is_finite v then
        Sparse.col_iter c.mat j (fun i a -> c.xb.(i) <- c.xb.(i) -. (a *. v))
    end
  done;
  Basis.ftran c.basis c.xb

let refactor_if_due c =
  if Basis.refactor_due c.basis then begin
    if not (Basis.reinvert c.basis) then raise Numerical;
    compute_xb c
  end

let scatter_ftran c j =
  Array.fill c.w 0 c.m 0.0;
  Sparse.col_iter c.mat j (fun i a -> c.w.(i) <- a);
  Basis.ftran c.basis c.w

(* One primal phase under the cost vector [cost].  Dantzig pricing, with a
   switch to Bland's rule once [degen_switch] consecutive degenerate pivots
   accumulate (epoch models are massively degenerate, and Dantzig with a
   fixed tie-break can cycle long before any absolute iteration cap is
   reached); a nondegenerate step drops back to Dantzig, so Bland's
   slowness is paid only while it is breaking a stall.  The bounded ratio
   test considers both bounds of every basic variable plus the entering
   variable's own opposite bound (a "bound flip", which moves no basis
   column at all).  Ratio ties break on the smallest basic column, as in
   the retired dense solver. *)
let degen_switch = 64

let primal c ~cost =
  let head = Basis.head c.basis in
  let streak = ref 0 in
  let rec loop iter =
    if
      iter land (budget_stride - 1) = budget_stride - 1
      && Syccl_util.Budget.expired c.budget
    then `Iter_limit
    else begin
      for i = 0 to c.m - 1 do
        c.y.(i) <- cost.(head.(i))
      done;
      Basis.btran c.basis c.y;
      let entering = ref (-1) and e_dir = ref 1.0 in
      if !streak < degen_switch then begin
        let bestv = ref eps in
        for j = 0 to c.ncols - 1 do
          if c.status.(j) <> basic && c.lo.(j) < c.hi.(j) then begin
            let z = cost.(j) -. Sparse.col_dot c.mat j c.y in
            if c.status.(j) = at_lo then begin
              if -.z > !bestv then begin
                entering := j;
                e_dir := 1.0;
                bestv := -.z
              end
            end
            else if z > !bestv then begin
              entering := j;
              e_dir := -1.0;
              bestv := z
            end
          end
        done
      end
      else begin
        try
          for j = 0 to c.ncols - 1 do
            if c.status.(j) <> basic && c.lo.(j) < c.hi.(j) then begin
              let z = cost.(j) -. Sparse.col_dot c.mat j c.y in
              if c.status.(j) = at_lo && z < -.eps then begin
                entering := j;
                e_dir := 1.0;
                raise Exit
              end;
              if c.status.(j) = at_hi && z > eps then begin
                entering := j;
                e_dir := -1.0;
                raise Exit
              end
            end
          done
        with Exit -> ()
      end;
      if !entering < 0 then `Optimal
      else if !(c.pivots) >= c.max_iters then `Iter_limit
      else begin
        let j = !entering and dir = !e_dir in
        scatter_ftran c j;
        (* Bounded ratio test.  [theta] starts at the entering variable's
           own range (the bound-flip cap); a basic variable that hits a
           bound sooner takes over. *)
        let theta = ref (c.hi.(j) -. c.lo.(j)) in
        let leave = ref (-1) and leave_to_lo = ref true in
        let consider i t to_lo =
          let t = if t < 0.0 then 0.0 else t in
          if
            t < !theta -. eps
            || (t < !theta +. eps
               && !leave >= 0
               && head.(i) < head.(!leave))
            || (t < !theta +. eps && !leave < 0 && t <= !theta)
          then begin
            theta := t;
            leave := i;
            leave_to_lo := to_lo
          end
        in
        for i = 0 to c.m - 1 do
          let d = dir *. c.w.(i) in
          if d > eps then begin
            let l = c.lo.(head.(i)) in
            if l > neg_infinity then consider i ((c.xb.(i) -. l) /. d) true
          end
          else if d < -.eps then begin
            let u = c.hi.(head.(i)) in
            if u < infinity then consider i ((u -. c.xb.(i)) /. -.d) false
          end
        done;
        if !theta = infinity then `Unbounded
        else begin
          let t = !theta in
          if t > eps then streak := 0 else incr streak;
          if !leave < 0 then begin
            (* Bound flip: the entering variable crosses to its other bound
               before any basic variable blocks. *)
            if t > 0.0 then
              for i = 0 to c.m - 1 do
                c.xb.(i) <- c.xb.(i) -. (dir *. t *. c.w.(i))
              done;
            c.status.(j) <- (if c.status.(j) = at_lo then at_hi else at_lo);
            incr c.pivots;
            loop (iter + 1)
          end
          else begin
            let r = !leave in
            if Float.abs c.w.(r) < eps then raise Numerical;
            let vj = nb_value c j +. (dir *. t) in
            if t > 0.0 then
              for i = 0 to c.m - 1 do
                c.xb.(i) <- c.xb.(i) -. (dir *. t *. c.w.(i))
              done;
            c.status.(head.(r)) <- (if !leave_to_lo then at_lo else at_hi);
            c.status.(j) <- basic;
            c.xb.(r) <- vj;
            Basis.update c.basis ~row:r ~col:j ~w:c.w;
            incr c.pivots;
            refactor_if_due c;
            loop (iter + 1)
          end
        end
      end
    end
  in
  loop 0

(* Dual simplex: repair primal feasibility while keeping reduced costs
   signed correctly.  Used on warm starts whose basis is dual feasible but
   primal infeasible — the branch-and-bound child case (one bound moved on
   a basic variable) and the sibling case (same matrix, new rhs). *)
let dual c ~cost =
  let head = Basis.head c.basis in
  let streak = ref 0 in
  let rec loop iter =
    if
      iter land (budget_stride - 1) = budget_stride - 1
      && Syccl_util.Budget.expired c.budget
    then `Iter_limit
    else begin
      (* Leaving row: largest bound violation among basic variables — or,
         after [degen_switch] consecutive zero-progress steps, the violated
         row with the smallest basic column (Bland-like, to break dual
         cycling on degenerate bases). *)
      let bland = !streak >= degen_switch in
      let r = ref (-1) and viol = ref feas_tol and above = ref false in
      for i = 0 to c.m - 1 do
        let l = c.lo.(head.(i)) and u = c.hi.(head.(i)) in
        let better v =
          if bland then
            v > feas_tol && (!r < 0 || head.(i) < head.(!r))
          else v > !viol
        in
        if better (l -. c.xb.(i)) then begin
          r := i;
          viol := l -. c.xb.(i);
          above := false
        end;
        if better (c.xb.(i) -. u) then begin
          r := i;
          viol := c.xb.(i) -. u;
          above := true
        end
      done;
      if !r < 0 then `Feasible
      else if !(c.pivots) >= c.max_iters then `Iter_limit
      else begin
        let r = !r in
        for i = 0 to c.m - 1 do
          c.y.(i) <- cost.(head.(i))
        done;
        Basis.btran c.basis c.y;
        Array.fill c.rho 0 c.m 0.0;
        c.rho.(r) <- 1.0;
        Basis.btran c.basis c.rho;
        let delta =
          if !above then c.xb.(r) -. c.hi.(head.(r))
          else c.xb.(r) -. c.lo.(head.(r))
        in
        (* Dual ratio test over eligible nonbasic columns: moving the
           entering variable by θ ≥ 0 changes xb.(r) by −(dir·α)·θ, which
           must cancel [delta]; minimizing |z|/|α| keeps every other
           reduced cost correctly signed.  Ties break on smallest index. *)
        let enter = ref (-1) and best = ref infinity and e_a = ref 0.0 in
        for j = 0 to c.ncols - 1 do
          if c.status.(j) <> basic && c.lo.(j) < c.hi.(j) then begin
            let alpha = Sparse.col_dot c.mat j c.rho in
            let d = if c.status.(j) = at_lo then 1.0 else -1.0 in
            let a = d *. alpha in
            if (delta > 0.0 && a > eps) || (delta < 0.0 && a < -.eps) then begin
              let z = cost.(j) -. Sparse.col_dot c.mat j c.y in
              let ratio = Float.abs z /. Float.abs alpha in
              if
                ratio < !best -. eps
                || (ratio < !best +. eps && (!enter < 0 || j < !enter))
              then begin
                best := ratio;
                enter := j;
                e_a := a
              end
            end
          end
        done;
        if !enter < 0 then `Infeasible
        else begin
          (* The dual objective moves by [best]·|delta| per step; a ~zero
             ratio is a degenerate step for the stall detector. *)
          if !best > eps then streak := 0 else incr streak;
          let j = !enter in
          let d = if c.status.(j) = at_lo then 1.0 else -1.0 in
          let theta = delta /. !e_a in
          let range = c.hi.(j) -. c.lo.(j) in
          scatter_ftran c j;
          if theta > range +. eps then begin
            (* The entering variable hits its other bound first: flip it,
               then re-examine the still-infeasible row. *)
            for i = 0 to c.m - 1 do
              c.xb.(i) <- c.xb.(i) -. (d *. range *. c.w.(i))
            done;
            c.status.(j) <- (if c.status.(j) = at_lo then at_hi else at_lo);
            incr c.pivots;
            loop (iter + 1)
          end
          else begin
            if Float.abs c.w.(r) < eps then raise Numerical;
            let vj = nb_value c j +. (d *. theta) in
            for i = 0 to c.m - 1 do
              c.xb.(i) <- c.xb.(i) -. (d *. theta *. c.w.(i))
            done;
            c.status.(head.(r)) <- (if !above then at_hi else at_lo);
            c.status.(j) <- basic;
            c.xb.(r) <- vj;
            Basis.update c.basis ~row:r ~col:j ~w:c.w;
            incr c.pivots;
            refactor_if_due c;
            loop (iter + 1)
          end
        end
      end
    end
  in
  loop 0

let primal_feasible c =
  let head = Basis.head c.basis in
  let ok = ref true in
  for i = 0 to c.m - 1 do
    let l = c.lo.(head.(i)) and u = c.hi.(head.(i)) in
    if c.xb.(i) < l -. feas_tol || c.xb.(i) > u +. feas_tol then ok := false
  done;
  !ok

let dual_feasible c ~cost =
  let head = Basis.head c.basis in
  for i = 0 to c.m - 1 do
    c.y.(i) <- cost.(head.(i))
  done;
  Basis.btran c.basis c.y;
  try
    for j = 0 to c.ncols - 1 do
      if c.status.(j) <> basic && c.lo.(j) < c.hi.(j) then begin
        let z = cost.(j) -. Sparse.col_dot c.mat j c.y in
        if c.status.(j) = at_lo && z < -.feas_tol then raise Exit;
        if c.status.(j) = at_hi && z > feas_tol then raise Exit
      end
    done;
    true
  with Exit -> false

let snapshot c =
  {
    b_head = Array.copy (Basis.head c.basis);
    b_status = Array.copy c.status;
  }

let extract c =
  let head = Basis.head c.basis in
  let x = Array.make c.n 0.0 in
  for j = 0 to c.n - 1 do
    if c.status.(j) <> basic then x.(j) <- nb_value c j
  done;
  for i = 0 to c.m - 1 do
    if head.(i) < c.n then x.(head.(i)) <- c.xb.(i)
  done;
  let obj = ref 0.0 in
  for j = 0 to c.n - 1 do
    obj := !obj +. (c.obj2.(j) *. x.(j))
  done;
  Optimal { x; obj = !obj }

let phase2 c =
  match primal c ~cost:c.obj2 with
  | `Iter_limit -> (Iter_limit, None)
  | `Unbounded -> (Unbounded, None)
  | `Optimal -> (extract c, Some (snapshot c))

(* Shared per-solve construction: the CSC matrix and pristine bound/cost
   arrays.  [lo]/[hi] are copied per attempt because phase 1 opens and
   re-pins artificial bounds. *)
let build ~lb ~ub { num_vars = n; objective; rows } =
  let rows = Array.of_list rows in
  let m = Array.length rows in
  let ncols = n + m + m in
  let cols = Array.make ncols [] in
  Array.iteri
    (fun i (terms, _, _) ->
      List.iter
        (fun (j, v) ->
          if j < 0 || j >= n then invalid_arg "Lp: variable index out of range";
          cols.(j) <- (i, v) :: cols.(j))
        terms)
    rows;
  for i = 0 to m - 1 do
    cols.(n + i) <- [ (i, 1.0) ];
    cols.(n + m + i) <- [ (i, 1.0) ]
  done;
  let mat = Sparse.of_cols ~m cols in
  let b = Array.map (fun (_, _, rhs) -> rhs) rows in
  let lo = Array.make ncols 0.0 and hi = Array.make ncols 0.0 in
  for j = 0 to n - 1 do
    if lb.(j) = neg_infinity && ub.(j) = infinity then
      invalid_arg "Lp.solve_bounded: free variables unsupported";
    lo.(j) <- lb.(j);
    hi.(j) <- ub.(j)
  done;
  Array.iteri
    (fun i (_, cmp, _) ->
      match cmp with
      | Le -> hi.(n + i) <- infinity
      | Ge ->
          lo.(n + i) <- neg_infinity;
          hi.(n + i) <- 0.0
      | Eq -> ())
    rows;
  let obj2 = Array.make ncols 0.0 in
  Array.blit objective 0 obj2 0 n;
  (mat, b, lo, hi, obj2, m, ncols)

let make_core ~(mat : Sparse.t) ~b ~lo ~hi ~obj2 ~m ~n ~ncols ~status ~head
    ~pivots ~max_iters ~budget =
  match Basis.create mat ~head with
  | None -> raise Numerical
  | Some basis ->
      let c =
        {
          mat;
          m;
          n;
          ncols;
          lo;
          hi;
          obj2;
          status;
          basis;
          xb = Array.make m 0.0;
          b;
          y = Array.make m 0.0;
          w = Array.make m 0.0;
          rho = Array.make m 0.0;
          pivots;
          max_iters;
          budget;
        }
      in
      compute_xb c;
      c

(* Cold start: structural variables at a finite bound, slacks basic where
   the resulting residual fits their bounds, an opened artificial basic
   elsewhere.  Phase 1 (minimize Σ|artificial|) runs only if some row
   needed an artificial; otherwise the all-slack basis is already primal
   feasible and phase 1 is skipped outright. *)
let run_cold ~mat ~b ~lo ~hi ~obj2 ~m ~n ~ncols ~pivots ~max_iters ~budget =
  let status = Array.make ncols at_lo in
  for j = 0 to ncols - 1 do
    status.(j) <- (if lo.(j) > neg_infinity then at_lo else at_hi)
  done;
  let resid = Array.copy b in
  for j = 0 to n - 1 do
    let v = if status.(j) = at_hi then hi.(j) else lo.(j) in
    if v <> 0.0 then
      Sparse.col_iter mat j (fun i a -> resid.(i) <- resid.(i) -. (a *. v))
  done;
  let head = Array.make m 0 in
  let cost1 = Array.make ncols 0.0 in
  let any_art = ref false in
  for i = 0 to m - 1 do
    let r = resid.(i) in
    let s = n + i in
    if r >= lo.(s) -. feas_tol && r <= hi.(s) +. feas_tol then begin
      head.(i) <- s;
      status.(s) <- basic
    end
    else begin
      let a = n + m + i in
      head.(i) <- a;
      status.(a) <- basic;
      any_art := true;
      if r >= 0.0 then begin
        hi.(a) <- infinity;
        cost1.(a) <- 1.0
      end
      else begin
        lo.(a) <- neg_infinity;
        hi.(a) <- 0.0;
        cost1.(a) <- -1.0
      end
    end
  done;
  let c =
    make_core ~mat ~b ~lo ~hi ~obj2 ~m ~n ~ncols ~status ~head ~pivots
      ~max_iters ~budget
  in
  if not !any_art then begin
    Atomic.incr c_phase1_skipped;
    phase2 c
  end
  else begin
    match primal c ~cost:cost1 with
    | `Iter_limit -> (Iter_limit, None)
    | `Unbounded ->
        (* Phase 1 is bounded below by 0; treat as numerical noise. *)
        (Infeasible, None)
    | `Optimal ->
        let head_arr = Basis.head c.basis in
        let row_of = Array.make ncols (-1) in
        Array.iteri (fun i col -> row_of.(col) <- i) head_arr;
        let val1 = ref 0.0 in
        for j = 0 to ncols - 1 do
          if cost1.(j) <> 0.0 then begin
            let v =
              if c.status.(j) = basic then c.xb.(row_of.(j)) else nb_value c j
            in
            val1 := !val1 +. (cost1.(j) *. v)
          end
        done;
        if !val1 > 1e-6 then (Infeasible, None)
        else begin
          (* Re-pin every artificial to [0,0] for phase 2; still-basic ones
             sit (degenerately) at ~0. *)
          for i = 0 to m - 1 do
            let a = n + m + i in
            lo.(a) <- 0.0;
            hi.(a) <- 0.0
          done;
          phase2 c
        end
  end

let run_warm ~mat ~b ~lo ~hi ~obj2 ~m ~n ~ncols ~pivots ~max_iters ~budget
    state =
  if
    Array.length state.b_head <> m
    || Array.length state.b_status <> ncols
    || Array.exists (fun col -> col < 0 || col >= ncols) state.b_head
  then raise Numerical;
  let status = Array.copy state.b_status in
  let in_head = Array.make ncols false in
  Array.iter (fun col -> in_head.(col) <- true) state.b_head;
  for j = 0 to ncols - 1 do
    if in_head.(j) then status.(j) <- basic
    else begin
      if status.(j) = basic then
        status.(j) <- (if lo.(j) > neg_infinity then at_lo else at_hi);
      (* A stored status can point at an infinite bound after a bound
         change; snap to the finite side. *)
      if status.(j) = at_lo && lo.(j) = neg_infinity then status.(j) <- at_hi;
      if status.(j) = at_hi && hi.(j) = infinity then status.(j) <- at_lo
    end
  done;
  let c =
    make_core ~mat ~b ~lo ~hi ~obj2 ~m ~n ~ncols ~status
      ~head:(Array.copy state.b_head) ~pivots ~max_iters ~budget
  in
  if primal_feasible c then begin
    Atomic.incr c_warm_hits;
    Atomic.incr c_phase1_skipped;
    match phase2 c with
    | (Optimal _, _) as res when primal_feasible c -> res
    | (Optimal _, _) -> raise Numerical
    | res -> res
  end
  else if dual_feasible c ~cost:obj2 then begin
    Atomic.incr c_warm_hits;
    Atomic.incr c_phase1_skipped;
    match dual c ~cost:obj2 with
    | `Iter_limit -> (Iter_limit, None)
    | `Infeasible -> (Infeasible, Some (snapshot c))
    | `Feasible -> (
        (* Usually zero further pivots; the primal pass re-verifies
           optimality under accumulated roundoff. *)
        match phase2 c with
        | (Optimal _, _) as res when primal_feasible c -> res
        | (Optimal _, _) -> raise Numerical
        | res -> res)
  end
  else raise Numerical

let solve_bounded ?max_iters ?(budget = Syccl_util.Budget.unlimited) ?warm ~lb
    ~ub p =
  let n = p.num_vars in
  if Array.length p.objective <> n then
    invalid_arg "Lp.solve_bounded: objective length mismatch";
  if Array.length lb <> n || Array.length ub <> n then
    invalid_arg "Lp.solve_bounded: bounds length mismatch";
  let mat, b, lo0, hi0, obj2, m, ncols = build ~lb ~ub p in
  let max_iters =
    match max_iters with Some v -> v | None -> max 2000 (60 * (m + ncols))
  in
  let pivots = ref 0 in
  let cold () =
    try
      run_cold ~mat ~b ~lo:(Array.copy lo0) ~hi:(Array.copy hi0) ~obj2 ~m ~n
        ~ncols ~pivots ~max_iters ~budget
    with Numerical -> (Iter_limit, None)
  in
  let result, state =
    match warm with
    | None -> cold ()
    | Some st -> (
        (* Cap the warm attempt well below the full iteration budget: a
           stored basis one bound-change away normally re-optimizes in a
           handful of dual pivots, so a warm re-solve still running after
           [warm_cap] pivots has stalled on degeneracy — abandoning it for
           a cold solve is cheaper than letting it burn the whole limit. *)
        let warm_cap = min max_iters (500 + m) in
        try
          match
            run_warm ~mat ~b ~lo:(Array.copy lo0) ~hi:(Array.copy hi0) ~obj2
              ~m ~n ~ncols ~pivots ~max_iters:warm_cap ~budget st
          with
          | (Iter_limit, _)
            when warm_cap < max_iters
                 && not (Syccl_util.Budget.expired budget) ->
              (* The stalled attempt already counted itself a hit; reclass
                 it as a miss so the warm-hit rate reflects solves the warm
                 basis actually carried. *)
              Atomic.decr c_warm_hits;
              Atomic.incr c_warm_misses;
              cold ()
          | res -> res
        with Numerical ->
          Atomic.incr c_warm_misses;
          cold ())
  in
  Syccl_util.Counters.record h_pivots (float_of_int !pivots);
  (result, state)

let solve ?max_iters ?budget p =
  let lb = Array.make p.num_vars 0.0 in
  let ub = Array.make p.num_vars infinity in
  fst (solve_bounded ?max_iters ?budget ~lb ~ub p)
