(** Revised simplex on sparse columns, with native variable bounds and
    warm-started dual re-solves, for linear programs in the form

    {v minimize c·x  subject to  a_i·x (≤ | ≥ | =) b_i,  lb ≤ x ≤ ub v}

    This is the LP engine underneath {!Milp}; it substitutes for the
    commercial solver the paper uses (see DESIGN.md).  The constraint
    matrix is held column-wise ({!Sparse}) and the basis inverse as a
    product-form eta file ({!Basis}): an iteration prices reduced costs in
    O(nnz), transforms one column, and appends one sparse eta — no dense
    tableau exists anywhere on this path.  Variable bounds participate in
    the ratio test directly (including bound-to-bound flips), so neither
    simple bounds nor branch-and-bound branching constraints cost extra
    rows.

    Warm starts: {!solve_bounded} accepts the {!basis_state} of a previous
    solve on a structurally identical problem (same variable and row
    counts).  If the saved basis is primal feasible under the new
    bounds/rhs it resumes phase 2 directly; if it is only dual feasible —
    the branch-and-bound child case, where one bound moved on a basic
    variable — a dual-simplex pass repairs primal feasibility in a few
    pivots.  Either way phase 1 is skipped; a basis that is neither
    primal- nor dual-feasible (or fails to refactorize) falls back to a
    cold start, so a stale warm state can cost time but never correctness.
    Counters: ["lp.warm_hits"], ["lp.warm_misses"], ["lp.phase1_skipped"],
    and the ["lp.pivots_per_solve"] histogram.

    Bland's rule (entered after a Dantzig prefix) guarantees termination;
    problems in this repository are small (hundreds to a few thousand
    variables). *)

type cmp = Le | Ge | Eq

type problem = {
  num_vars : int;
  objective : float array;  (** length [num_vars]; minimized *)
  rows : ((int * float) list * cmp * float) list;
      (** sparse constraint rows: (terms, comparison, rhs) *)
}

type result =
  | Optimal of { x : float array; obj : float }
  | Infeasible
  | Unbounded
  | Iter_limit

type basis_state
(** An immutable snapshot of a solve's final basis (row→column head plus
    per-column bound status).  Sharable across domains; children of a
    branch-and-bound node reuse their parent's snapshot without copying. *)

val solve : ?max_iters:int -> ?budget:Syccl_util.Budget.t -> problem -> result
(** Solve with the default bounds [0 ≤ x].  [max_iters] bounds total
    simplex pivots (default scales with problem size).  [budget] is
    checked every few dozen pivots; on expiry the solve returns
    [Iter_limit], so a deadline cannot be overshot by more than a handful
    of pivots. *)

val solve_bounded :
  ?max_iters:int ->
  ?budget:Syccl_util.Budget.t ->
  ?warm:basis_state ->
  lb:float array ->
  ub:float array ->
  problem ->
  result * basis_state option
(** Solve with explicit per-variable bounds ([lb.(j) ≤ x.(j) ≤ ub.(j)],
    entries may be [-infinity]/[infinity]; lb must be finite or the
    matching ub finite).  Returns the result together with the final basis
    for warm-starting related solves ([None] when the solve ended before a
    usable basis existed, e.g. on [Iter_limit]). *)
