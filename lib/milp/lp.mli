(** Dense two-phase primal simplex for linear programs in the form

    {v minimize c·x  subject to  a_i·x (≤ | ≥ | =) b_i,  x ≥ 0 v}

    This is the LP engine underneath {!Milp}; it substitutes for the
    commercial solver the paper uses (see DESIGN.md).  Bland's rule
    guarantees termination; problems in this repository are small (hundreds
    to a few thousand variables). *)

type cmp = Le | Ge | Eq

type problem = {
  num_vars : int;
  objective : float array;  (** length [num_vars]; minimized *)
  rows : ((int * float) list * cmp * float) list;
      (** sparse constraint rows: (terms, comparison, rhs) *)
}

type result =
  | Optimal of { x : float array; obj : float }
  | Infeasible
  | Unbounded
  | Iter_limit

val solve : ?max_iters:int -> ?budget:Syccl_util.Budget.t -> problem -> result
(** Solve the LP.  [max_iters] bounds total simplex pivots (default scales
    with problem size).  [budget] is checked every few dozen pivots inside
    each simplex phase; on expiry the solve returns [Iter_limit], so a
    deadline cannot be overshot by more than a handful of pivots. *)
