(* The pre-rewrite dense two-phase primal simplex, preserved as the
   differential oracle for the revised solver (see lp_dense.mli).  The code
   is intentionally untouched apart from operating on Lp's problem/result
   types and reporting into its own histogram. *)

let eps = 1e-9

(* Tableau state: [tab] has [m] constraint rows and one reduced-cost row at
   index [m]; the last column is the right-hand side.  [basis.(i)] is the
   column basic in row [i].  [usable.(j)] is false for retired artificial
   columns and [active_row] masks redundant rows found after phase 1. *)
type tableau = {
  m : int;
  cols : int;  (* total columns excluding rhs *)
  tab : float array array;
  basis : int array;
  usable : bool array;
  active_row : bool array;
}

let pivot t r c =
  let row_r = t.tab.(r) in
  let p = row_r.(c) in
  let w = t.cols in
  for j = 0 to w do
    row_r.(j) <- row_r.(j) /. p
  done;
  for i = 0 to t.m do
    if i <> r then begin
      let f = t.tab.(i).(c) in
      if Float.abs f > 0.0 then begin
        let row_i = t.tab.(i) in
        for j = 0 to w do
          row_i.(j) <- row_i.(j) -. (f *. row_r.(j))
        done;
        row_i.(c) <- 0.0
      end
    end
  done;
  t.basis.(r) <- c

(* One simplex phase on the current reduced-cost row.  Dantzig pricing with a
   switch to Bland's rule after [bland_after] pivots to guarantee finiteness.
   Returns [`Optimal], [`Unbounded] or [`Iter_limit]. *)
let budget_stride = 64

let run_phase t ~budget ~max_iters ~pivots =
  let bland_after = max 200 (2 * (t.m + t.cols)) in
  let obj = t.tab.(t.m) in
  let rec loop iter =
    if iter > max_iters then `Iter_limit
    else if
      iter land (budget_stride - 1) = budget_stride - 1
      && Syccl_util.Budget.expired budget
    then `Iter_limit
    else begin
      let entering =
        if iter < bland_after then begin
          (* Dantzig: most negative reduced cost. *)
          let best = ref (-1) and bestv = ref (-.eps) in
          for j = 0 to t.cols - 1 do
            if t.usable.(j) && obj.(j) < !bestv then begin
              best := j;
              bestv := obj.(j)
            end
          done;
          !best
        end
        else begin
          (* Bland: smallest index with negative reduced cost. *)
          let found = ref (-1) in
          (try
             for j = 0 to t.cols - 1 do
               if t.usable.(j) && obj.(j) < -.eps then begin
                 found := j;
                 raise Exit
               end
             done
           with Exit -> ());
          !found
        end
      in
      if entering < 0 then `Optimal
      else begin
        (* Ratio test; break ties on smallest basis column (Bland). *)
        let leave = ref (-1) and best_ratio = ref infinity in
        for i = 0 to t.m - 1 do
          if t.active_row.(i) then begin
            let a = t.tab.(i).(entering) in
            if a > eps then begin
              let ratio = t.tab.(i).(t.cols) /. a in
              if
                ratio < !best_ratio -. eps
                || (ratio < !best_ratio +. eps
                   && (!leave < 0 || t.basis.(i) < t.basis.(!leave)))
              then begin
                best_ratio := ratio;
                leave := i
              end
            end
          end
        done;
        if !leave < 0 then `Unbounded
        else begin
          pivot t !leave entering;
          incr pivots;
          loop (iter + 1)
        end
      end
    end
  in
  loop 0

let h_pivots = Syccl_util.Counters.histogram "lp_dense.pivots_per_solve"

let solve ?max_iters ?(budget = Syccl_util.Budget.unlimited)
    { Lp.num_vars; objective; rows } =
  assert (Array.length objective = num_vars);
  let pivots = ref 0 in
  let rows = Array.of_list rows in
  let m = Array.length rows in
  (* Normalize to b >= 0. *)
  let rows =
    Array.map
      (fun (terms, cmp, b) ->
        if b < 0.0 then
          let terms = List.map (fun (j, v) -> (j, -.v)) terms in
          let cmp =
            match cmp with Lp.Le -> Lp.Ge | Lp.Ge -> Lp.Le | Lp.Eq -> Lp.Eq
          in
          (terms, cmp, -.b)
        else (terms, cmp, b))
      rows
  in
  let n_slack = ref 0 and n_art = ref 0 in
  Array.iter
    (fun (_, cmp, _) ->
      match cmp with
      | Lp.Le -> incr n_slack
      | Lp.Ge ->
          incr n_slack;
          incr n_art
      | Lp.Eq -> incr n_art)
    rows;
  let cols = num_vars + !n_slack + !n_art in
  let tab = Array.init (m + 1) (fun _ -> Array.make (cols + 1) 0.0) in
  let basis = Array.make (max 1 m) 0 in
  let usable = Array.make cols true in
  let active_row = Array.make (max 1 m) true in
  let art_cols = ref [] in
  let next_slack = ref num_vars in
  let next_art = ref (num_vars + !n_slack) in
  Array.iteri
    (fun i (terms, cmp, b) ->
      List.iter
        (fun (j, v) ->
          assert (j >= 0 && j < num_vars);
          tab.(i).(j) <- tab.(i).(j) +. v)
        terms;
      tab.(i).(cols) <- b;
      (match cmp with
      | Lp.Le ->
          tab.(i).(!next_slack) <- 1.0;
          basis.(i) <- !next_slack;
          incr next_slack
      | Lp.Ge ->
          tab.(i).(!next_slack) <- -1.0;
          incr next_slack;
          tab.(i).(!next_art) <- 1.0;
          basis.(i) <- !next_art;
          art_cols := !next_art :: !art_cols;
          incr next_art
      | Lp.Eq ->
          tab.(i).(!next_art) <- 1.0;
          basis.(i) <- !next_art;
          art_cols := !next_art :: !art_cols;
          incr next_art);
      ())
    rows;
  let t = { m; cols; tab; basis; usable; active_row } in
  let max_iters =
    match max_iters with Some v -> v | None -> max 2000 (60 * (m + cols))
  in
  let is_art = Array.make cols false in
  List.iter (fun c -> is_art.(c) <- true) !art_cols;
  (* Phase 1: minimize the sum of artificials.  The reduced-cost row is
     c1 - Σ (rows with artificial basis), since artificials are basic. *)
  let phase1_needed = !art_cols <> [] in
  let status1 =
    if not phase1_needed then `Optimal
    else begin
      let obj = t.tab.(m) in
      Array.fill obj 0 (cols + 1) 0.0;
      List.iter (fun c -> obj.(c) <- 1.0) !art_cols;
      for i = 0 to m - 1 do
        if is_art.(basis.(i)) then
          for j = 0 to cols do
            obj.(j) <- obj.(j) -. t.tab.(i).(j)
          done
      done;
      run_phase t ~budget ~max_iters ~pivots
    end
  in
  let result =
    match status1 with
    | `Iter_limit -> Lp.Iter_limit
    | `Unbounded -> Lp.Infeasible (* phase 1 is bounded below by 0 *)
    | `Optimal ->
        let phase1_obj = -.t.tab.(m).(cols) in
        if phase1_needed && phase1_obj > 1e-6 then Lp.Infeasible
        else begin
          (* Drive remaining basic artificials out or deactivate their rows. *)
          for i = 0 to m - 1 do
            if is_art.(basis.(i)) then begin
              let piv = ref (-1) in
              (try
                 for j = 0 to cols - 1 do
                   if (not is_art.(j)) && Float.abs t.tab.(i).(j) > 1e-7
                   then begin
                     piv := j;
                     raise Exit
                   end
                 done
               with Exit -> ());
              if !piv >= 0 then pivot t i !piv else active_row.(i) <- false
            end
          done;
          List.iter (fun c -> usable.(c) <- false) !art_cols;
          (* Phase 2: rebuild the reduced-cost row from the true objective. *)
          let obj = t.tab.(m) in
          Array.fill obj 0 (cols + 1) 0.0;
          Array.blit objective 0 obj 0 num_vars;
          for i = 0 to m - 1 do
            if active_row.(i) && basis.(i) < num_vars then begin
              let c = objective.(basis.(i)) in
              if c <> 0.0 then
                for j = 0 to cols do
                  obj.(j) <- obj.(j) -. (c *. t.tab.(i).(j))
                done
            end
          done;
          match run_phase t ~budget ~max_iters ~pivots with
          | `Iter_limit -> Lp.Iter_limit
          | `Unbounded -> Lp.Unbounded
          | `Optimal ->
              let x = Array.make num_vars 0.0 in
              for i = 0 to m - 1 do
                if active_row.(i) && basis.(i) < num_vars then
                  x.(basis.(i)) <- t.tab.(i).(cols)
              done;
              let objv = ref 0.0 in
              Array.iteri (fun j c -> objv := !objv +. (c *. x.(j))) objective;
              Lp.Optimal { x; obj = !objv }
        end
  in
  Syccl_util.Counters.record h_pivots (float_of_int !pivots);
  result
