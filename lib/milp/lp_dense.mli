(** The retired dense two-phase primal simplex, kept verbatim as a
    differential test oracle for the revised solver in {!Lp}.

    Production code must not call this: every pivot rewrites a dense
    [(m+1) × (cols+1)] tableau, which is exactly the cost profile the
    sparse revised simplex replaced (and the lint rule banning dense
    tableau allocations in [lib/milp/] exempts only this file).  The fuzz
    property ["lp-differential"] and the [bench milp] A/B target run it
    against {!Lp.solve} on identical problems, asserting status agreement
    and objective equality. *)

val solve :
  ?max_iters:int -> ?budget:Syccl_util.Budget.t -> Lp.problem -> Lp.result
(** Identical contract to the pre-rewrite [Lp.solve]: bounds are not
    supported natively — encode them as explicit constraint rows.  Pivot
    counts land in the ["lp_dense.pivots_per_solve"] histogram so A/B runs
    can compare work done. *)
