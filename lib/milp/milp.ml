type var = { lb : float; ub : float; integer : bool; obj : float; vname : string }

type model = {
  mutable vars : var list;  (* reversed *)
  mutable nvars : int;
  mutable rows : ((int * float) list * Lp.cmp * float) list;  (* reversed *)
}

let create () = { vars = []; nvars = 0; rows = [] }

let add_var m ?(lb = 0.0) ?(ub = infinity) ?(integer = false) ?(obj = 0.0) vname =
  if lb < 0.0 then invalid_arg "Milp.add_var: lb < 0 unsupported";
  if ub < lb then invalid_arg "Milp.add_var: ub < lb";
  let id = m.nvars in
  m.vars <- { lb; ub; integer; obj; vname } :: m.vars;
  m.nvars <- m.nvars + 1;
  id

let binary m ?obj vname = add_var m ~lb:0.0 ~ub:1.0 ~integer:true ?obj vname

let num_vars m = m.nvars
let num_rows m = List.length m.rows

let add_row m terms cmp rhs = m.rows <- (terms, cmp, rhs) :: m.rows

let add_le m terms rhs = add_row m terms Lp.Le rhs
let add_ge m terms rhs = add_row m terms Lp.Ge rhs
let add_eq m terms rhs = add_row m terms Lp.Eq rhs

type status = Optimal | Feasible | Infeasible | Unbounded | Limit

type engine = Revised | Dense

type result = {
  status : status;
  x : float array;
  obj : float;
  nodes : int;
  certified : bool;
  root_state : Lp.basis_state option;
}

let int_tol = 1e-6

let vars_array m : var array = Array.of_list (List.rev m.vars)

let objective m =
  let vs = vars_array m in
  Array.map (fun (v : var) -> v.obj) vs

let eval_obj m x =
  let acc = ref 0.0 in
  Array.iteri (fun j (v : var) -> acc := !acc +. (v.obj *. x.(j))) (vars_array m);
  !acc

let check_feasible m x =
  let vs = vars_array m in
  Array.length x = m.nvars
  && Array.for_all2
       (fun v xi ->
         xi >= v.lb -. int_tol
         && xi <= v.ub +. int_tol
         && ((not v.integer) || Float.abs (xi -. Float.round xi) <= int_tol))
       vs x
  && List.for_all
       (fun (terms, cmp, rhs) ->
         let lhs = List.fold_left (fun a (j, c) -> a +. (c *. x.(j))) 0.0 terms in
         match cmp with
         | Lp.Le -> lhs <= rhs +. 1e-6
         | Lp.Ge -> lhs >= rhs -. 1e-6
         | Lp.Eq -> Float.abs (lhs -. rhs) <= 1e-6)
       m.rows

(* A branch-and-bound node: the branching bounds accumulated on the path
   from the root, the parent's LP bound, and the parent's final basis for
   warm-starting (children share the parent's immutable snapshot). *)
type node = {
  extra : (int * Lp.cmp * float) list;
  lp_bound : float;
  depth : int;
  warm : Lp.basis_state option;
}

let h_nodes = Syccl_util.Counters.histogram "milp.nodes_per_solve"
let h_solve_s = Syccl_util.Counters.histogram "milp.solve_s"
let c_solves = Syccl_util.Counters.int_counter "milp.solves"
let c_nodes = Syccl_util.Counters.int_counter "milp.nodes"
let c_flow_certified = Syccl_util.Counters.int_counter "milp.flow_certified"

(* Nodes are explored in fixed-size waves: up to [wave_width] nodes are
   popped from the best-first queue, their LP relaxations solved (in
   parallel when a pool is given), and the results folded back in pop
   order.  The width is a constant — NOT the pool size — so the explored
   tree is identical at every parallelism level; the pool only shortens
   the wall time of each wave. *)
let wave_width = 8

let solve ?(node_limit = 2000) ?(time_limit = infinity) ?(lp_iter_limit = 4000)
    ?(budget = Syccl_util.Budget.unlimited) ?incumbent ?(engine = Revised)
    ?pool ?lower_bound ?(gap = 1e-6) ?warm_state m =
  Syccl_util.Trace.with_span ~cat:"milp" "milp.solve"
    ~args:
      [
        ("vars", string_of_int m.nvars);
        ("rows", string_of_int (List.length m.rows));
        ("node_limit", string_of_int node_limit);
        ("engine", match engine with Revised -> "revised" | Dense -> "dense");
      ]
  @@ fun () ->
  Syccl_util.Faultpoint.slow "milp.slow";
  let t_solve = Syccl_util.Clock.now () in
  (* One deadline for nodes and pivots alike: [time_limit] narrows the
     caller's budget rather than running its own clock, so both the wave
     loop here and the pivot loop in {!Lp} observe the same instant. *)
  let budget =
    if time_limit < infinity then
      Syccl_util.Budget.sub ~seconds:time_limit budget
    else budget
  in
  let vs = vars_array m in
  let obj = objective m in
  let base_rows = List.rev m.rows in
  let base_problem = { Lp.num_vars = m.nvars; objective = obj; rows = base_rows } in
  (* Dense oracle path: bounds and branch bounds expanded into rows, as the
     retired solver required. *)
  let dense_rows =
    lazy
      (base_rows
      @ List.concat
          (List.mapi
             (fun j v ->
               (if v.lb > 0.0 then [ ([ (j, 1.0) ], Lp.Ge, v.lb) ] else [])
               @ if v.ub < infinity then [ ([ (j, 1.0) ], Lp.Le, v.ub) ] else [])
             (Array.to_list vs)))
  in
  let lp_solve extra warm =
    match engine with
    | Dense ->
        let p =
          {
            base_problem with
            Lp.rows =
              Lazy.force dense_rows
              @ List.map (fun (j, c, b) -> ([ (j, 1.0) ], c, b)) extra;
          }
        in
        (Lp_dense.solve ~max_iters:lp_iter_limit ~budget p, None)
    | Revised ->
        let lb = Array.map (fun v -> v.lb) vs in
        let ub = Array.map (fun v -> v.ub) vs in
        List.iter
          (fun (j, c, b) ->
            match (c : Lp.cmp) with
            | Lp.Le -> ub.(j) <- Float.min ub.(j) b
            | Lp.Ge -> lb.(j) <- Float.max lb.(j) b
            | Lp.Eq ->
                lb.(j) <- Float.max lb.(j) b;
                ub.(j) <- Float.min ub.(j) b)
          extra;
        Lp.solve_bounded ~max_iters:lp_iter_limit ~budget ?warm ~lb ~ub
          base_problem
  in
  (* Shared incumbent objective: read by the wave assembler for pruning,
     written only in the sequential post-pass, so every pool width observes
     the same sequence of values. *)
  let best_obj = Atomic.make infinity in
  let best_x = ref None in
  let certified = ref false in
  let floor_bound = Option.value lower_bound ~default:neg_infinity in
  let check_certificate () =
    match lower_bound with
    | Some lbv when (not !certified) && !best_x <> None
                    && Atomic.get best_obj <= lbv +. gap ->
        certified := true;
        Atomic.incr c_flow_certified
    | _ -> ()
  in
  (match incumbent with
  | Some x when check_feasible m x ->
      best_x := Some (Array.copy x);
      Atomic.set best_obj (eval_obj m x);
      check_certificate ()
  | _ -> ());
  let nodes = ref 0 in
  let queue =
    Syccl_util.Pqueue.create ~cmp:(fun a b ->
        let c = Float.compare a.lp_bound b.lp_bound in
        if c <> 0 then c else compare b.depth a.depth)
  in
  let fractional x =
    (* Most fractional integer variable, if any. *)
    let best = ref (-1) and bestfrac = ref int_tol in
    Array.iteri
      (fun j v ->
        if v.integer then begin
          let f = Float.abs (x.(j) -. Float.round x.(j)) in
          if f > !bestfrac then begin
            best := j;
            bestfrac := f
          end
        end)
      vs;
    if !best < 0 then None else Some !best
  in
  let hit_limit = ref false in
  (* Fold one solved node back into the search state (sequential). *)
  let integrate node result state =
    match (result : Lp.result) with
    | Lp.Infeasible -> ()
    | Lp.Iter_limit ->
        (* The relaxation was cut off, so this subtree may still hold the
           true optimum: the final status must degrade to Feasible/Limit
           rather than claiming Optimal. *)
        hit_limit := true
    | Lp.Unbounded ->
        (* An unbounded relaxation at the root means an unbounded MILP for
           our well-posed models; deeper nodes inherit the root status. *)
        ()
    | Lp.Optimal { x; obj = bound } ->
        if bound < Atomic.get best_obj -. 1e-9 then begin
          match fractional x with
          | None ->
              (* Integral: new incumbent. *)
              best_x := Some (Array.copy x);
              Atomic.set best_obj bound;
              check_certificate ()
          | Some j ->
              let warm = if state = None then node.warm else state in
              let lo = floor (x.(j) +. int_tol) in
              let child_bound = Float.max bound floor_bound in
              Syccl_util.Pqueue.push queue
                {
                  extra = (j, Lp.Le, lo) :: node.extra;
                  lp_bound = child_bound;
                  depth = node.depth + 1;
                  warm;
                };
              Syccl_util.Pqueue.push queue
                {
                  extra = (j, Lp.Ge, lo +. 1.0) :: node.extra;
                  lp_bound = child_bound;
                  depth = node.depth + 1;
                  warm;
                }
        end
  in
  let unbounded = ref false in
  let root_result, root_state = lp_solve [] warm_state in
  (match root_result with
  | Lp.Infeasible -> ()
  | Lp.Iter_limit -> hit_limit := true
  | Lp.Unbounded -> unbounded := true
  | Lp.Optimal { x; obj = bound } -> (
      match fractional x with
      | None ->
          if bound < Atomic.get best_obj then begin
            best_x := Some (Array.copy x);
            Atomic.set best_obj bound;
            check_certificate ()
          end
      | Some _ ->
          Syccl_util.Pqueue.push queue
            {
              extra = [];
              lp_bound = Float.max bound floor_bound;
              depth = 0;
              warm = root_state;
            }));
  let solve_batch batch =
    let f nd = lp_solve nd.extra nd.warm in
    match pool with
    | Some p when Array.length batch > 1 ->
        Syccl_util.Trace.with_span ~cat:"milp" "milp.wave"
          ~args:[ ("nodes", string_of_int (Array.length batch)) ]
          (fun () -> Syccl_util.Pool.map p f batch)
    | _ -> Array.map f batch
  in
  let rec drain () =
    if Syccl_util.Budget.expired budget then hit_limit := true
    else if !certified then ()
    else begin
      (* Assemble a wave: pop up to [wave_width] nodes, dropping any whose
         bound the current incumbent already dominates. *)
      let batch = ref [] and nbatch = ref 0 and stop = ref false in
      while (not !stop) && !nbatch < wave_width do
        if !nodes >= node_limit then begin
          hit_limit := true;
          stop := true
        end
        else
          match Syccl_util.Pqueue.pop queue with
          | None -> stop := true
          | Some node ->
              incr nodes;
              if node.lp_bound >= Atomic.get best_obj -. 1e-9 then ()
              else begin
                batch := node :: !batch;
                incr nbatch
              end
      done;
      (* An empty batch means the queue drained or the node limit tripped:
         the assembly loop only stops early on those two conditions. *)
      match !batch with
      | [] -> ()
      | b ->
          let arr = Array.of_list (List.rev b) in
          let results = solve_batch arr in
          Array.iteri
            (fun i (res, state) ->
              (* Re-check the bound: an earlier node in this wave may have
                 produced a dominating incumbent. *)
              if arr.(i).lp_bound < Atomic.get best_obj -. 1e-9 then
                integrate arr.(i) res state)
            results;
          drain ()
    end
  in
  if not !unbounded then drain ();
  let x = match !best_x with Some x -> x | None -> Array.make m.nvars 0.0 in
  let status =
    if !unbounded then Unbounded
    else if !best_x = None then if !hit_limit then Limit else Infeasible
    else if !certified then Optimal
    else if !hit_limit then Feasible
    else Optimal
  in
  Atomic.incr c_solves;
  ignore (Atomic.fetch_and_add c_nodes !nodes);
  Syccl_util.Counters.record h_nodes (float_of_int !nodes);
  Syccl_util.Counters.record h_solve_s (Syccl_util.Clock.elapsed t_solve);
  {
    status;
    x;
    obj = Atomic.get best_obj;
    nodes = !nodes;
    certified = !certified;
    root_state;
  }
