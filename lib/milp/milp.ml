type var = { lb : float; ub : float; integer : bool; obj : float; vname : string }

type model = {
  mutable vars : var list;  (* reversed *)
  mutable nvars : int;
  mutable rows : ((int * float) list * Lp.cmp * float) list;  (* reversed *)
}

let create () = { vars = []; nvars = 0; rows = [] }

let add_var m ?(lb = 0.0) ?(ub = infinity) ?(integer = false) ?(obj = 0.0) vname =
  if lb < 0.0 then invalid_arg "Milp.add_var: lb < 0 unsupported";
  if ub < lb then invalid_arg "Milp.add_var: ub < lb";
  let id = m.nvars in
  m.vars <- { lb; ub; integer; obj; vname } :: m.vars;
  m.nvars <- m.nvars + 1;
  id

let binary m ?obj vname = add_var m ~lb:0.0 ~ub:1.0 ~integer:true ?obj vname

let num_vars m = m.nvars

let add_row m terms cmp rhs = m.rows <- (terms, cmp, rhs) :: m.rows

let add_le m terms rhs = add_row m terms Lp.Le rhs
let add_ge m terms rhs = add_row m terms Lp.Ge rhs
let add_eq m terms rhs = add_row m terms Lp.Eq rhs

type status = Optimal | Feasible | Infeasible | Unbounded | Limit

type result = { status : status; x : float array; obj : float; nodes : int }

let int_tol = 1e-6

let vars_array m : var array = Array.of_list (List.rev m.vars)

let objective m =
  let vs = vars_array m in
  Array.map (fun (v : var) -> v.obj) vs

let eval_obj m x =
  let acc = ref 0.0 in
  Array.iteri (fun j (v : var) -> acc := !acc +. (v.obj *. x.(j))) (vars_array m);
  !acc

let check_feasible m x =
  let vs = vars_array m in
  Array.length x = m.nvars
  && Array.for_all2
       (fun v xi ->
         xi >= v.lb -. int_tol
         && xi <= v.ub +. int_tol
         && ((not v.integer) || Float.abs (xi -. Float.round xi) <= int_tol))
       vs x
  && List.for_all
       (fun (terms, cmp, rhs) ->
         let lhs = List.fold_left (fun a (j, c) -> a +. (c *. x.(j))) 0.0 terms in
         match cmp with
         | Lp.Le -> lhs <= rhs +. 1e-6
         | Lp.Ge -> lhs >= rhs -. 1e-6
         | Lp.Eq -> Float.abs (lhs -. rhs) <= 1e-6)
       m.rows

(* A branch-and-bound node is a set of extra variable bounds. *)
type node = { extra : (int * Lp.cmp * float) list; lp_bound : float; depth : int }

let h_nodes = Syccl_util.Counters.histogram "milp.nodes_per_solve"
let h_solve_s = Syccl_util.Counters.histogram "milp.solve_s"
let c_solves = Syccl_util.Counters.int_counter "milp.solves"
let c_nodes = Syccl_util.Counters.int_counter "milp.nodes"

let solve ?(node_limit = 2000) ?(time_limit = infinity) ?(lp_iter_limit = 4000)
    ?(budget = Syccl_util.Budget.unlimited) ?incumbent m =
  Syccl_util.Trace.with_span ~cat:"milp" "milp.solve"
    ~args:
      [
        ("vars", string_of_int m.nvars);
        ("rows", string_of_int (List.length m.rows));
        ("node_limit", string_of_int node_limit);
      ]
  @@ fun () ->
  Syccl_util.Faultpoint.slow "milp.slow";
  let t_solve = Syccl_util.Clock.now () in
  (* One deadline for nodes and pivots alike: [time_limit] narrows the
     caller's budget rather than running its own clock, so both the drain
     loop here and the pivot loop in {!Lp} observe the same instant. *)
  let budget =
    if time_limit < infinity then
      Syccl_util.Budget.sub ~seconds:time_limit budget
    else budget
  in
  let vs = vars_array m in
  let base_rows =
    List.rev m.rows
    @ List.concat
        (List.mapi
           (fun j v ->
             (if v.lb > 0.0 then [ ([ (j, 1.0) ], Lp.Ge, v.lb) ] else [])
             @ if v.ub < infinity then [ ([ (j, 1.0) ], Lp.Le, v.ub) ] else [])
           (Array.to_list vs))
  in
  let obj = objective m in
  let lp_of extra =
    {
      Lp.num_vars = m.nvars;
      objective = obj;
      rows = base_rows @ List.map (fun (j, c, b) -> ([ (j, 1.0) ], c, b)) extra;
    }
  in
  let best_x = ref None and best_obj = ref infinity in
  (match incumbent with
  | Some x when check_feasible m x ->
      best_x := Some (Array.copy x);
      best_obj := eval_obj m x
  | _ -> ());
  let nodes = ref 0 in
  let queue =
    Syccl_util.Pqueue.create ~cmp:(fun a b ->
        let c = Float.compare a.lp_bound b.lp_bound in
        if c <> 0 then c else compare b.depth a.depth)
  in
  let fractional x =
    (* Most fractional integer variable, if any. *)
    let best = ref (-1) and bestfrac = ref int_tol in
    Array.iteri
      (fun j v ->
        if v.integer then begin
          let f = Float.abs (x.(j) -. Float.round x.(j)) in
          if f > !bestfrac then begin
            best := j;
            bestfrac := f
          end
        end)
      vs;
    if !best < 0 then None else Some !best
  in
  let hit_limit = ref false in
  let process node =
    incr nodes;
    if node.lp_bound >= !best_obj -. 1e-9 then ()
    else
      match Lp.solve ~max_iters:lp_iter_limit ~budget (lp_of node.extra) with
      | Lp.Infeasible | Lp.Iter_limit -> ()
      | Lp.Unbounded ->
          (* An unbounded relaxation at the root means an unbounded MILP for
             our well-posed models; deeper nodes inherit the root status. *)
          if node.depth = 0 then begin
            best_obj := neg_infinity;
            hit_limit := false
          end
      | Lp.Optimal { x; obj = bound } ->
          if bound < !best_obj -. 1e-9 then begin
            match fractional x with
            | None ->
                (* Integral: new incumbent. *)
                best_x := Some (Array.copy x);
                best_obj := bound
            | Some j ->
                let lo = Float.of_int (int_of_float (floor (x.(j) +. int_tol))) in
                Syccl_util.Pqueue.push queue
                  {
                    extra = (j, Lp.Le, lo) :: node.extra;
                    lp_bound = bound;
                    depth = node.depth + 1;
                  };
                Syccl_util.Pqueue.push queue
                  {
                    extra = (j, Lp.Ge, lo +. 1.0) :: node.extra;
                    lp_bound = bound;
                    depth = node.depth + 1;
                  }
          end
  in
  let root = { extra = []; lp_bound = neg_infinity; depth = 0 } in
  let unbounded = ref false in
  (match Lp.solve ~max_iters:lp_iter_limit ~budget (lp_of []) with
  | Lp.Infeasible ->
      if !best_x = None then best_obj := infinity
  | Lp.Iter_limit -> hit_limit := true
  | Lp.Unbounded -> unbounded := true
  | Lp.Optimal { x; obj = bound } -> (
      match fractional x with
      | None ->
          if bound < !best_obj then begin
            best_x := Some (Array.copy x);
            best_obj := bound
          end
      | Some _ -> Syccl_util.Pqueue.push queue { root with lp_bound = bound }));
  let rec drain () =
    if !nodes >= node_limit || Syccl_util.Budget.expired budget then
      hit_limit := true
    else
      match Syccl_util.Pqueue.pop queue with
      | None -> ()
      | Some node ->
          process node;
          drain ()
  in
  if not !unbounded then drain ();
  let x = match !best_x with Some x -> x | None -> Array.make m.nvars 0.0 in
  let status =
    if !unbounded then Unbounded
    else if !best_x = None then if !hit_limit then Limit else Infeasible
    else if !hit_limit then Feasible
    else Optimal
  in
  Atomic.incr c_solves;
  ignore (Atomic.fetch_and_add c_nodes !nodes);
  Syccl_util.Counters.record h_nodes (float_of_int !nodes);
  Syccl_util.Counters.record h_solve_s (Syccl_util.Clock.elapsed t_solve);
  { status; x; obj = !best_obj; nodes = !nodes }
