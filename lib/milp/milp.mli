(** Mixed-integer linear programming: a small modelling DSL plus a best-first
    branch-and-bound over the {!Lp} revised simplex.

    This module substitutes for the commercial MILP solver used in the paper;
    it targets the small sub-demand models produced by SyCCL's decomposition
    (§5.1) and the TECCL baseline's whole-problem models (Appendix A).

    Variable bounds — including the bounds added by branching — are passed
    to {!Lp.solve_bounded} natively rather than as extra constraint rows,
    and every branch-and-bound child warm-starts from its parent's final
    basis (one bound changed, so a dual-simplex pass repairs feasibility in
    a few pivots).  Node exploration proceeds in fixed-size waves whose LP
    relaxations are solved in parallel over a {!Syccl_util.Pool} when one
    is supplied; waves are assembled and post-processed sequentially from
    the deterministic best-first queue, so the explored tree — and hence
    the result — is identical at every pool width. *)

type model

val create : unit -> model

val add_var :
  model -> ?lb:float -> ?ub:float -> ?integer:bool -> ?obj:float -> string -> int
(** Register a variable, returning its index.  [lb] defaults to 0 (and must
    be ≥ 0), [ub] to +∞, [obj] to 0.  [integer] marks the variable for
    branching. *)

val binary : model -> ?obj:float -> string -> int
(** Shorthand for an integer variable in [\[0, 1\]]. *)

val num_vars : model -> int
val num_rows : model -> int

val add_le : model -> (int * float) list -> float -> unit
val add_ge : model -> (int * float) list -> float -> unit
val add_eq : model -> (int * float) list -> float -> unit
(** Add a constraint row [Σ coef·var (≤|≥|=) rhs]. *)

type status = Optimal | Feasible | Infeasible | Unbounded | Limit

type engine =
  | Revised  (** the sparse revised simplex in {!Lp} (default) *)
  | Dense
      (** the retired dense tableau ({!Lp_dense}), bounds expanded into
          rows — kept for A/B benchmarking and differential testing *)

type result = {
  status : status;
  x : float array;  (** best solution found (meaningless unless feasible) *)
  obj : float;
  nodes : int;  (** branch-and-bound nodes explored *)
  certified : bool;
      (** the incumbent met the [lower_bound + gap] early-exit certificate *)
  root_state : Lp.basis_state option;
      (** final basis of the root relaxation, for warm-starting sibling
          solves on structurally identical models (Revised engine only) *)
}

val solve :
  ?node_limit:int ->
  ?time_limit:float ->
  ?lp_iter_limit:int ->
  ?budget:Syccl_util.Budget.t ->
  ?incumbent:float array ->
  ?engine:engine ->
  ?pool:Syccl_util.Pool.t ->
  ?lower_bound:float ->
  ?gap:float ->
  ?warm_state:Lp.basis_state ->
  model ->
  result
(** Minimize.  [incumbent] seeds the search with a known feasible point
    (checked; ignored if it violates constraints).  [Feasible] means the
    node or time budget expired with an incumbent in hand whose optimality
    was not proven; [Limit] means the budget expired with no solution.
    [lp_iter_limit] (default 4000) bounds simplex pivots per LP so a single
    relaxation cannot blow the time budget between checks.  [time_limit]
    and [budget] share one deadline: the limit narrows the budget, and the
    combined deadline is checked both between branch-and-bound waves and —
    via {!Lp}'s pivot loop — between simplex pivots, so an expiring or
    cancelled budget stops the solve within a pivot-check stride.

    [lower_bound] is an external certificate on the optimal objective
    (e.g. the multi-commodity-flow relaxation of the epoch model): node
    bounds are clamped up to it, and as soon as the incumbent objective is
    within [gap] (default 1e-6) of it the search stops with
    [certified = true] and status [Optimal] — the incumbent is within
    [gap] of the relaxation optimum, so proving exact optimality is not
    worth further nodes.  The ["milp.flow_certified"] counter records each
    early exit.

    [warm_state] warm-starts the root relaxation from a previous solve of
    a structurally identical model (same variable and row counts; see
    {!Lp.solve_bounded} — a stale state is safe).  [pool] parallelizes the
    LP relaxations of each node wave; results are identical with and
    without it.  The ["milp.slow"] {!Syccl_util.Faultpoint} latency probe
    fires at solve entry. *)

val check_feasible : model -> float array -> bool
(** True iff the point satisfies every constraint, bounds, and integrality
    (tolerance 1e-6). *)
