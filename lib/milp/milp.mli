(** Mixed-integer linear programming: a small modelling DSL plus a best-first
    branch-and-bound over the {!Lp} simplex.

    This module substitutes for the commercial MILP solver used in the paper;
    it targets the small sub-demand models produced by SyCCL's decomposition
    (§5.1) and the TECCL baseline's whole-problem models (Appendix A). *)

type model

val create : unit -> model

val add_var :
  model -> ?lb:float -> ?ub:float -> ?integer:bool -> ?obj:float -> string -> int
(** Register a variable, returning its index.  [lb] defaults to 0 (and must
    be ≥ 0), [ub] to +∞, [obj] to 0.  [integer] marks the variable for
    branching. *)

val binary : model -> ?obj:float -> string -> int
(** Shorthand for an integer variable in [\[0, 1\]]. *)

val num_vars : model -> int

val add_le : model -> (int * float) list -> float -> unit
val add_ge : model -> (int * float) list -> float -> unit
val add_eq : model -> (int * float) list -> float -> unit
(** Add a constraint row [Σ coef·var (≤|≥|=) rhs]. *)

type status = Optimal | Feasible | Infeasible | Unbounded | Limit

type result = {
  status : status;
  x : float array;  (** best solution found (meaningless unless feasible) *)
  obj : float;
  nodes : int;  (** branch-and-bound nodes explored *)
}

val solve :
  ?node_limit:int ->
  ?time_limit:float ->
  ?lp_iter_limit:int ->
  ?budget:Syccl_util.Budget.t ->
  ?incumbent:float array ->
  model ->
  result
(** Minimize.  [incumbent] seeds the search with a known feasible point
    (checked; ignored if it violates constraints).  [Feasible] means the
    node or time budget expired with an incumbent in hand whose optimality
    was not proven; [Limit] means the budget expired with no solution.
    [lp_iter_limit] (default 4000) bounds simplex pivots per LP so a single
    relaxation cannot blow the time budget between checks.  [time_limit]
    and [budget] share one deadline: the limit narrows the budget, and the
    combined deadline is checked both between branch-and-bound nodes and —
    via {!Lp.solve} — between simplex pivots, so an expiring or cancelled
    budget stops the solve within a pivot-check stride.  The ["milp.slow"]
    {!Syccl_util.Faultpoint} latency probe fires at solve entry. *)

val check_feasible : model -> float array -> bool
(** True iff the point satisfies every constraint, bounds, and integrality
    (tolerance 1e-6). *)
