type t = {
  m : int;
  n : int;
  ptr : int array;
  idx : int array;
  v : float array;
}

let of_cols ~m cols =
  let n = Array.length cols in
  (* Sum duplicates per column, drop exact zeros. *)
  let cleaned =
    Array.map
      (fun entries ->
        let sorted =
          List.sort (fun (r1, _) (r2, _) -> compare r1 r2) entries
        in
        let rec merge = function
          | (r1, a) :: (r2, b) :: rest when r1 = r2 -> merge ((r1, a +. b) :: rest)
          | (r, a) :: rest ->
              if r < 0 || r >= m then invalid_arg "Sparse.of_cols: row out of range";
              if a = 0.0 then merge rest else (r, a) :: merge rest
          | [] -> []
        in
        merge sorted)
      cols
  in
  let total = Array.fold_left (fun acc l -> acc + List.length l) 0 cleaned in
  let ptr = Array.make (n + 1) 0 in
  let idx = Array.make (max 1 total) 0 in
  let v = Array.make (max 1 total) 0.0 in
  let k = ref 0 in
  Array.iteri
    (fun j entries ->
      ptr.(j) <- !k;
      List.iter
        (fun (r, a) ->
          idx.(!k) <- r;
          v.(!k) <- a;
          incr k)
        entries)
    cleaned;
  ptr.(n) <- !k;
  { m; n; ptr; idx; v }

let nnz a = a.ptr.(a.n)

let col_iter a j f =
  for k = a.ptr.(j) to a.ptr.(j + 1) - 1 do
    f a.idx.(k) a.v.(k)
  done

let col_dot a j y =
  let acc = ref 0.0 in
  for k = a.ptr.(j) to a.ptr.(j + 1) - 1 do
    acc := !acc +. (a.v.(k) *. y.(a.idx.(k)))
  done;
  !acc
