(** Compressed sparse column (CSC) matrices for the revised simplex.

    The constraint matrix of an LP is built once per solve and then only
    ever read column-wise: pricing dots a column against the dual vector,
    and ftran scatters the entering column into a dense work array.  CSC
    makes both O(nnz of the column), independent of the (much larger)
    tableau footprint the dense solver used to carry. *)

type t = private {
  m : int;  (** rows *)
  n : int;  (** columns *)
  ptr : int array;  (** length [n + 1]; column [j] spans [ptr.(j), ptr.(j+1)) *)
  idx : int array;  (** row index per stored entry *)
  v : float array;  (** value per stored entry *)
}

val of_cols : m:int -> (int * float) list array -> t
(** [of_cols ~m cols] builds an [m × Array.length cols] matrix from
    per-column (row, value) lists.  Duplicate row entries within a column
    are summed; exact zeros (including summed-to-zero duplicates) are
    dropped.  Row indices must lie in [0, m). *)

val nnz : t -> int

val col_iter : t -> int -> (int -> float -> unit) -> unit
(** [col_iter a j f] applies [f row value] to each stored entry of column
    [j]. *)

val col_dot : t -> int -> float array -> float
(** [col_dot a j y] is [Σ_i a(i,j)·y.(i)] — one reduced cost. *)
