module Json = Syccl_util.Json
module Clock = Syccl_util.Clock
module Counters = Syccl_util.Counters
module Faultpoint = Syccl_util.Faultpoint

type record = {
  ts : float;
  key : string;
  fingerprint : string;
  faults : string;
  topology : string;
  collective : string;
  size : float;
  plan : string;
  probe : string;
  hit_key : string option;
  rung : string;
  degrade_reason : string option;
  budget_s : float option;
  consumed_s : float;
  time_s : float;
  busbw : float;
  stored : bool;
  cache_hits : int;
  cache_misses : int;
  milp_solves : int;
  milp_nodes : int;
  flow_certified : int;
  lowered : bool;  (* a lowering check ran for this response *)
  lower_check : string option;  (* "ok" or the first divergence *)
}

(* Fixed field order: byte-identical re-encoding is what lets the smoke
   test diff audit trails across runs the way it diffs outcome JSONL. *)
let record_to_json r =
  let int i = Json.Num (float_of_int i) in
  let opt_str = function None -> Json.Null | Some s -> Json.Str s in
  let opt_num = function None -> Json.Null | Some v -> Json.Num v in
  Json.Obj
    [
      ("schema_version", Json.Num 1.0);
      ("ts", Json.Num r.ts);
      ("key", Json.Str r.key);
      ("fingerprint", Json.Str r.fingerprint);
      ("faults", (match r.faults with "" -> Json.Null | s -> Json.Str s));
      ("topology", Json.Str r.topology);
      ("collective", Json.Str r.collective);
      ("size", Json.Num r.size);
      ("plan", Json.Str r.plan);
      ("probe", Json.Str r.probe);
      ("hit_key", opt_str r.hit_key);
      ("rung", Json.Str r.rung);
      ("degrade_reason", opt_str r.degrade_reason);
      ("budget_s", opt_num r.budget_s);
      ("consumed_s", Json.Num r.consumed_s);
      ("time_s", Json.Num r.time_s);
      ("busbw_gbps", Json.Num r.busbw);
      ("stored", Json.Bool r.stored);
      ("cache_hits", int r.cache_hits);
      ("cache_misses", int r.cache_misses);
      ("milp_solves", int r.milp_solves);
      ("milp_nodes", int r.milp_nodes);
      ("flow_certified", int r.flow_certified);
      ("lowered", Json.Bool r.lowered);
      ("lower_check", opt_str r.lower_check);
    ]

let record_of_json j =
  let str name = Json.to_str (Json.member name j) in
  let num name = Json.to_float (Json.member name j) in
  let int name = Json.to_int (Json.member name j) in
  let opt name to_v =
    match Json.member name j with Json.Null -> None | v -> Some (to_v v)
  in
  (match Json.member "schema_version" j with
  | Json.Num 1.0 -> ()
  | v ->
      raise
        (Json.Parse_error ("unsupported audit schema_version " ^ Json.to_string v)));
  {
    ts = num "ts";
    key = str "key";
    fingerprint = str "fingerprint";
    (* Records predating the field were all written on healthy topologies. *)
    faults = (match opt "faults" Json.to_str with None -> "" | Some s -> s);
    topology = str "topology";
    collective = str "collective";
    size = num "size";
    plan = str "plan";
    probe = str "probe";
    hit_key = opt "hit_key" Json.to_str;
    rung = str "rung";
    degrade_reason = opt "degrade_reason" Json.to_str;
    budget_s = opt "budget_s" Json.to_float;
    consumed_s = num "consumed_s";
    time_s = num "time_s";
    busbw = num "busbw_gbps";
    stored = (match Json.member "stored" j with
              | Json.Bool b -> b
              | _ -> raise (Json.Parse_error "\"stored\" must be a boolean"));
    cache_hits = int "cache_hits";
    cache_misses = int "cache_misses";
    milp_solves = int "milp_solves";
    milp_nodes = int "milp_nodes";
    flow_certified = int "flow_certified";
    (* Records predating the executor-level lowering oracle never checked. *)
    lowered = (match Json.member "lowered" j with
               | Json.Bool b -> b
               | Json.Null -> false
               | exception Json.Parse_error _ -> false
               | _ -> raise (Json.Parse_error "\"lowered\" must be a boolean"));
    lower_check =
      (match Json.member "lower_check" j with
      | exception Json.Parse_error _ -> None
      | Json.Null -> None
      | v -> Some (Json.to_str v));
  }

(* --- the sink ------------------------------------------------------------ *)

type t = { path : string; mutex : Mutex.t }

let open_file path = { path; mutex = Mutex.create () }

let default_name = "audit.jsonl"

let for_registry reg =
  open_file (Filename.concat (Registry.dir reg) default_name)

let path t = t.path

(* One O_APPEND write per record: appends of one short line are atomic on
   local filesystems, so concurrent writers (pool tasks, other processes
   sharing the registry directory) interleave whole records, never bytes.
   An audit failure must never fail serving — it is counted and dropped. *)
let append t r =
  let line = Json.to_string (record_to_json r) ^ "\n" in
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () ->
      match
        (* Crash probe for the trail: audit I/O failure (disk full, path
           gone) must be counted and dropped, never surfaced to serving. *)
        Faultpoint.inject "audit.crash";
        let fd =
          Unix.openfile t.path [ Unix.O_WRONLY; Unix.O_APPEND; Unix.O_CREAT ]
            0o644
        in
        Fun.protect
          ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
          (fun () ->
            ignore (Unix.write_substring fd line 0 (String.length line)))
      with
      | () -> Counters.bump "audit.records"
      | exception _ -> Counters.bump "audit.write_errors")

(* --- reading back -------------------------------------------------------- *)

let read path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec go acc bad =
        match input_line ic with
        | exception End_of_file -> (List.rev acc, bad)
        | line when String.trim line = "" -> go acc bad
        | line -> (
            match record_of_json (Json.of_string line) with
            | r -> go (r :: acc) bad
            | exception _ -> go acc (bad + 1))
      in
      go [] 0)

(* --- offline counter replay (syccl metrics --from-audit) ----------------- *)

(* Reconstruct the serving-side counters one audit record implies, so a
   collected audit trail can be re-exposed as Prometheus metrics after the
   serving process is gone.  Solver-internal counters (pivots, pool
   queues) are not replayable — they lived only in the serving process. *)
let replay_counters r =
  Counters.bump "serve.requests";
  (match r.probe with
  | "hit" | "hit.scaled" -> Counters.bump "registry.hits"
  | "hit.transported" ->
      Counters.bump "registry.hits";
      Counters.bump "registry.hit.transported"
  | "hit.scaled_cross" ->
      Counters.bump "registry.hits";
      Counters.bump "registry.hit.scaled_cross"
  | "none" -> ()
  | probe ->
      (* probe is miss.REASON; the counter family is registry.miss.REASON. *)
      let reason =
        if String.length probe > 5 && String.sub probe 0 5 = "miss." then
          String.sub probe 5 (String.length probe - 5)
        else probe
      in
      Counters.bump ("registry.miss." ^ reason);
      Counters.bump "registry.misses");
  (match r.rung with
  | "full" -> Counters.bump "serve.rung.full"
  | "fast" -> Counters.bump "serve.rung.fast"
  | "rerouted" -> Counters.bump "serve.rung.rerouted"
  | "fallback" -> Counters.bump "serve.rung.fallback"
  | _ -> ());
  if r.stored then Counters.bump "registry.stores";
  if r.lowered then Counters.bump "serve.lowered";
  (match r.lower_check with
  | Some v when v <> "ok" -> Counters.bump "serve.lower_failures"
  | _ -> ());
  Counters.add "cache.subsolve.hits" r.cache_hits;
  Counters.add "cache.subsolve.misses" r.cache_misses;
  Counters.add "milp.solves" r.milp_solves;
  Counters.add "milp.nodes" r.milp_nodes;
  Counters.add "milp.flow_certified" r.flow_certified;
  Counters.observe "audit.synth_time_s" r.consumed_s;
  if Float.is_finite r.time_s then Counters.observe "audit.time_s" r.time_s
