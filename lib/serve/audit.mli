(** Per-request audit trail: one JSONL record per served request element.

    A synthesis service is only operable when every answer it gives can be
    traced back: which registry entry (or why none), which degradation-
    ladder rung, how much of the budget it consumed, what the solver did.
    {!Syccl_serve.Serve.run_batch} emits one {!record} per request element
    through a sink, appended atomically (one [O_APPEND] write per line) to
    a JSONL file that by convention lives next to the registry
    ([<registry>/audit.jsonl]).  [syccl audit] tails, filters and
    aggregates the file; [syccl metrics --from-audit] replays it into
    {!Syccl_util.Counters} for offline Prometheus exposition.

    Auditing is fail-open: a write error is counted
    (["audit.write_errors"]) and dropped, never raised into serving. *)

type record = {
  ts : float;  (** {!Syccl_util.Clock.now} at emission *)
  key : string;  (** {!Request.key} of the element *)
  fingerprint : string;  (** topology structure identity (folds in faults) *)
  faults : string;
      (** canonical {!Syccl_topology.Fault.encode} string of the request's
          fault set ([""] when healthy, and for records predating the
          field) — the human-readable half of the (fingerprint ×
          fault-class) provenance *)
  topology : string;  (** request topology name *)
  collective : string;  (** lowercase collective kind *)
  size : float;
  plan : string;  (** {!Plan.describe}: how the request was satisfied *)
  probe : string;
      (** {!Plan.probe_name}: ["none"], ["hit"], ["hit.scaled"], or
          ["miss.absent"|"corrupt"|"invalid"|"slower"] *)
  hit_key : string option;  (** registry entry key, on a hit *)
  rung : string;
      (** degradation-ladder rung:
          ["full"|"fast"|"rerouted"|"fallback"] *)
  degrade_reason : string option;
  budget_s : float option;  (** deadline granted to the request *)
  consumed_s : float;  (** synthesis wall time actually spent *)
  time_s : float;  (** α-β simulated schedule cost, seconds *)
  busbw : float;  (** bus bandwidth, GB/s *)
  stored : bool;  (** result was persisted back into the registry *)
  cache_hits : int;  (** solver counter deltas, from the outcome breakdown *)
  cache_misses : int;
  milp_solves : int;
  milp_nodes : int;
  flow_certified : int;
  lowered : bool;
      (** an executor-level lowering check ({!Syccl_sim.Msccl_interp}) ran
          over the served schedules ([false] for records predating the
          field) *)
  lower_check : string option;
      (** ["ok"], or the first lowering divergence found *)
}

val record_to_json : record -> Syccl_util.Json.t
(** Canonical encoding: fixed field order, so identical records re-encode
    byte-identically. *)

val record_of_json : Syccl_util.Json.t -> record
(** Inverse of {!record_to_json}; raises [Syccl_util.Json.Parse_error] on
    malformed records or an unsupported schema version. *)

(** {1 Sink} *)

type t

val open_file : string -> t
(** A sink appending to the given path (created on first write). *)

val for_registry : Registry.t -> t
(** The conventional sink for a registry: [<registry dir>/audit.jsonl]. *)

val default_name : string
(** ["audit.jsonl"]. *)

val path : t -> string

val append : t -> record -> unit
(** Append one record as a single [O_APPEND] write (atomic line-wise on
    local filesystems, so concurrent writers interleave whole records).
    Never raises: failures bump ["audit.write_errors"] and are dropped;
    successes bump ["audit.records"]. *)

(** {1 Reading and replay} *)

val read : string -> record list * int
(** Parse an audit JSONL file: the well-formed records in file order, and
    the count of unparseable lines (torn writes, foreign garbage — an
    audit reader must survive a dirty file). *)

val replay_counters : record -> unit
(** Re-apply the serving-side counters this record implies
    (["serve.requests"], the ["registry.*"] hit/miss family,
    ["serve.rung.*"], solver deltas, and the ["audit.*_s"] histograms) so
    a collected trail can be re-exposed via
    {!Syccl_util.Counters.to_prometheus} after the serving process is
    gone.  Solver-internal histograms (pivots, pool queues) are not
    reconstructible and stay empty. *)
