module Topology = Syccl_topology.Topology
module Fault = Syccl_topology.Fault
module Collective = Syccl_collective.Collective
module Perm = Syccl_util.Perm
module Counters = Syccl_util.Counters
module Transport = Syccl_sim.Transport
module Validate = Syccl_sim.Validate
module Sim = Syccl_sim.Sim
module Synthesizer = Syccl.Synthesizer

(* The single-element fault universe warming enumerates over: every
   intra-group edge of every dimension.  GPU and NIC faults are servable
   (puncture accepts them) but not enumerated — losing a whole GPU changes
   the demand itself, so there is no one collective to pre-warm. *)
let link_elements topo =
  let out = ref [] in
  for d = Topology.num_dims topo - 1 downto 0 do
    for g = Topology.groups_count topo ~dim:d - 1 downto 0 do
      let members = Topology.gpus_in_group topo ~dim:d ~group:g in
      let m = Array.length members in
      for i = m - 1 downto 0 do
        for j = m - 1 downto i + 1 do
          out :=
            Fault.Link { dim = d; a = members.(i); b = members.(j) } :: !out
        done
      done
    done
  done;
  !out

let fault_sets topo ~k =
  if k < 1 then invalid_arg "Failover.fault_sets: k must be >= 1";
  let elts = link_elements topo in
  (* All subsets of size <= k.  Each subset is either without the head
     element or with it, so no subset is produced twice. *)
  let rec combos k = function
    | _ when k = 0 -> [ [] ]
    | [] -> [ [] ]
    | e :: rest ->
        combos k rest @ List.map (fun c -> e :: c) (combos (k - 1) rest)
  in
  combos k elts
  |> List.filter (fun c -> c <> [])
  |> List.map Fault.of_list
  |> List.sort_uniq Fault.compare

(* The subgroup of the rotation group that preserves the collective: a
   transported schedule solves the collective with its endpoints permuted,
   so rooted kinds confine transport to rotations fixing the root (and the
   peer, for SendRecv).  Non-rooted kinds are symmetric under everything. *)
let symmetry_group topo (coll : Collective.t) =
  let group = Topology.rotation_group (Topology.base topo) in
  let fixes p v = Perm.apply p v = v in
  match coll.Collective.kind with
  | Collective.AllGather | Collective.AllToAll | Collective.ReduceScatter
  | Collective.AllReduce ->
      group
  | Collective.SendRecv ->
      List.filter
        (fun p ->
          fixes p coll.Collective.root && fixes p coll.Collective.peer)
        group
  | Collective.Broadcast | Collective.Scatter | Collective.Gather
  | Collective.Reduce ->
      List.filter (fun p -> fixes p coll.Collective.root) group

let orbits topo coll ~k =
  Perm.orbit_classes
    ~group:(symmetry_group topo coll)
    ~image:(fun f p -> Fault.map p f)
    ~compare:Fault.compare (fault_sets topo ~k)

type stats = {
  sets : int;
  orbits : int;
  rep_hits : int;
  rep_synthesized : int;
  transported : int;
  resynthesized : int;
  skipped : int;
}

let simulate ~blocks topo schedules =
  List.fold_left
    (fun a s -> a +. (Sim.time ~blocks topo s : float))
    0.0 schedules

let warm ~registry ?audit ?(config = Synthesizer.default_config) ~topology
    ~collective ~size k =
  let healthy = Request.make ~config ~topology ~collective ~size () in
  let topo = healthy.Request.topo in
  let coll = healthy.Request.coll in
  let group = symmetry_group topo coll in
  let classes = orbits topo coll ~k in
  let sets = List.fold_left (fun a (_, ms) -> a + List.length ms) 0 classes in
  let stats =
    ref
      {
        sets;
        orbits = List.length classes;
        rep_hits = 0;
        rep_synthesized = 0;
        transported = 0;
        resynthesized = 0;
        skipped = 0;
      }
  in
  let bump f = stats := f !stats in
  (* Synthesizing a member from scratch is the correctness net under every
     transport failure: the orbit machinery is an optimization, never the
     only path to a warmed entry. *)
  let resynthesize faults =
    ignore
      (Serve.run ~registry ?audit
         (Request.make ~config ~faults ~topology ~collective ~size ()));
    bump (fun s -> { s with resynthesized = s.resynthesized + 1 })
  in
  List.iter
    (fun (rep, members) ->
      let req =
        Request.make ~config ~faults:rep ~topology ~collective ~size ()
      in
      let o = Serve.run ~registry ?audit req in
      (match o.Serve.source with
      | Serve.From_registry _ -> bump (fun s -> { s with rep_hits = s.rep_hits + 1 })
      | Serve.From_synthesis ->
          bump (fun s -> { s with rep_synthesized = s.rep_synthesized + 1 }));
      let synth = o.Serve.synth in
      let rest = List.filter (fun f -> not (Fault.equal f rep)) members in
      if
        synth.Synthesizer.degraded <> Synthesizer.Full
        || config.Synthesizer.fast_only
      then
        (* A degraded representative would seed the whole orbit with
           degraded entries; leave the members cold instead (the same
           Full-only policy {!Serve} applies to stores). *)
        bump (fun s -> { s with skipped = s.skipped + List.length rest })
      else
        List.iter
          (fun member ->
            let p =
              List.find
                (fun p -> Fault.equal (Fault.map p rep) member)
                group
            in
            let member_topo = Topology.puncture topo member in
            match
              Transport.schedules p coll coll synth.Synthesizer.schedules
            with
            | None -> resynthesize member
            | Some schedules -> (
                match Validate.validate member_topo coll schedules with
                | exception _ -> resynthesize member
                | Error _ -> resynthesize member
                | Ok () -> (
                    let blocks = config.Synthesizer.blocks in
                    let cost = simulate ~blocks member_topo schedules in
                    match
                      Registry.store registry member_topo coll ~blocks ~cost
                        ~chosen:(synth.Synthesizer.chosen ^ "+transport")
                        schedules
                    with
                    | () ->
                        bump (fun s ->
                            { s with transported = s.transported + 1 })
                    | exception _ ->
                        Counters.bump "registry.store_errors";
                        bump (fun s -> { s with skipped = s.skipped + 1 }))))
          rest)
    classes;
  !stats
