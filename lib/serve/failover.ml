module Topology = Syccl_topology.Topology
module Fault = Syccl_topology.Fault
module Collective = Syccl_collective.Collective
module Perm = Syccl_util.Perm
module Counters = Syccl_util.Counters
module Transport = Syccl_sim.Transport
module Validate = Syccl_sim.Validate
module Sim = Syccl_sim.Sim
module Synthesizer = Syccl.Synthesizer

(* Every intra-group edge of every dimension — the default single-element
   fault universe. *)
let link_elements topo =
  let out = ref [] in
  for d = Topology.num_dims topo - 1 downto 0 do
    for g = Topology.groups_count topo ~dim:d - 1 downto 0 do
      let members = Topology.gpus_in_group topo ~dim:d ~group:g in
      let m = Array.length members in
      for i = m - 1 downto 0 do
        for j = m - 1 downto i + 1 do
          out :=
            Fault.Link { dim = d; a = members.(i); b = members.(j) } :: !out
        done
      done
    done
  done;
  !out

(* One NIC element per (GPU, port group present in the topology): the NIC
   serving that port group on that GPU.  Demand-preserving — every rank
   stays alive — so these classes are warmable like links. *)
let nic_elements topo =
  let port_groups =
    Array.to_list topo.Topology.dims
    |> List.map (fun d -> d.Topology.port_group)
    |> List.sort_uniq compare
  in
  List.concat_map
    (fun pg ->
      List.init (Topology.num_gpus topo) (fun g ->
          Fault.Nic { gpu = g; port_group = pg }))
    port_groups

(* Whole-GPU elements.  Servable (puncture accepts them) but not warmable:
   losing a rank changes the collective demand itself, so there is no one
   collective to pre-warm — {!warm} enumerates these classes only to count
   them as skipped. *)
let gpu_elements topo =
  List.init (Topology.num_gpus topo) (fun g -> Fault.Gpu g)

let fault_elements topo =
  link_elements topo @ nic_elements topo @ gpu_elements topo

let demand_changing faults =
  List.exists
    (function Fault.Gpu _ -> true | Fault.Link _ | Fault.Nic _ -> false)
    (Fault.elements faults)

let fault_sets ?elements topo ~k =
  if k < 1 then invalid_arg "Failover.fault_sets: k must be >= 1";
  let elts =
    match elements with Some e -> e | None -> link_elements topo
  in
  (* All subsets of size <= k.  Each subset is either without the head
     element or with it, so no subset is produced twice. *)
  let rec combos k = function
    | _ when k = 0 -> [ [] ]
    | [] -> [ [] ]
    | e :: rest ->
        combos k rest @ List.map (fun c -> e :: c) (combos (k - 1) rest)
  in
  combos k elts
  |> List.filter (fun c -> c <> [])
  |> List.map Fault.of_list
  |> List.sort_uniq Fault.compare

(* The subgroup of the rotation group that preserves the collective: a
   transported schedule solves the collective with its endpoints permuted,
   so rooted kinds confine transport to rotations fixing the root (and the
   peer, for SendRecv).  Non-rooted kinds are symmetric under everything. *)
let symmetry_group topo (coll : Collective.t) =
  let group = Topology.rotation_group (Topology.base topo) in
  let fixes p v = Perm.apply p v = v in
  match coll.Collective.kind with
  | Collective.AllGather | Collective.AllToAll | Collective.ReduceScatter
  | Collective.AllReduce ->
      group
  | Collective.SendRecv ->
      List.filter
        (fun p ->
          fixes p coll.Collective.root && fixes p coll.Collective.peer)
        group
  | Collective.Broadcast | Collective.Scatter | Collective.Gather
  | Collective.Reduce ->
      List.filter (fun p -> fixes p coll.Collective.root) group

let orbits ?elements topo coll ~k =
  Perm.orbit_classes
    ~group:(symmetry_group topo coll)
    ~image:(fun f p -> Fault.map p f)
    ~compare:Fault.compare
    (fault_sets ?elements topo ~k)

type stats = {
  sets : int;
  orbits : int;
  rep_hits : int;
  rep_synthesized : int;
  transported : int;
  resynthesized : int;
  skipped : int;
  skipped_demand : int;
}

let simulate ~blocks topo schedules =
  List.fold_left
    (fun a s -> a +. (Sim.time ~blocks topo s : float))
    0.0 schedules

let warm ~registry ?audit ?(config = Synthesizer.default_config) ~topology
    ~collective ~size k =
  let healthy = Request.make ~config ~topology ~collective ~size () in
  let topo = healthy.Request.topo in
  let coll = healthy.Request.coll in
  let group = symmetry_group topo coll in
  (* The warming universe covers links and NICs (demand-preserving) plus
     whole GPUs.  A dead rank changes the demand's very shape — n drops by
     one — so GPU classes cannot be pre-warmed for this collective; they
     are enumerated, counted, and skipped. *)
  let classes = orbits ~elements:(fault_elements topo) topo coll ~k in
  let demand_classes, classes =
    List.partition (fun (rep, _) -> demand_changing rep) classes
  in
  let sets = List.fold_left (fun a (_, ms) -> a + List.length ms) 0 classes in
  let stats =
    ref
      {
        sets;
        orbits = List.length classes;
        rep_hits = 0;
        rep_synthesized = 0;
        transported = 0;
        resynthesized = 0;
        skipped = 0;
        skipped_demand = List.length demand_classes;
      }
  in
  Counters.add "failover.skipped_demand" (List.length demand_classes);
  let bump f = stats := f !stats in
  (* Synthesizing a member from scratch is the correctness net under every
     transport failure: the orbit machinery is an optimization, never the
     only path to a warmed entry. *)
  let resynthesize faults =
    ignore
      (Serve.run ~registry ?audit
         (Request.make ~config ~faults ~topology ~collective ~size ()));
    bump (fun s -> { s with resynthesized = s.resynthesized + 1 })
  in
  List.iter
    (fun (rep, members) ->
      let req =
        Request.make ~config ~faults:rep ~topology ~collective ~size ()
      in
      let o = Serve.run ~registry ?audit req in
      (match o.Serve.source with
      | Serve.From_registry _ -> bump (fun s -> { s with rep_hits = s.rep_hits + 1 })
      | Serve.From_synthesis ->
          bump (fun s -> { s with rep_synthesized = s.rep_synthesized + 1 }));
      let synth = o.Serve.synth in
      let rest = List.filter (fun f -> not (Fault.equal f rep)) members in
      if
        synth.Synthesizer.degraded <> Synthesizer.Full
        || config.Synthesizer.fast_only
      then
        (* A degraded representative would seed the whole orbit with
           degraded entries; leave the members cold instead (the same
           Full-only policy {!Serve} applies to stores). *)
        bump (fun s -> { s with skipped = s.skipped + List.length rest })
      else
        List.iter
          (fun member ->
            let p =
              List.find
                (fun p -> Fault.equal (Fault.map p rep) member)
                group
            in
            let member_topo = Topology.puncture topo member in
            match
              Transport.schedules p coll coll synth.Synthesizer.schedules
            with
            | None -> resynthesize member
            | Some schedules -> (
                match Validate.validate member_topo coll schedules with
                | exception _ -> resynthesize member
                | Error _ -> resynthesize member
                | Ok () -> (
                    let blocks = config.Synthesizer.blocks in
                    let cost = simulate ~blocks member_topo schedules in
                    match
                      Registry.store registry member_topo coll ~blocks ~cost
                        ~chosen:(synth.Synthesizer.chosen ^ "+transport")
                        schedules
                    with
                    | () ->
                        bump (fun s ->
                            { s with transported = s.transported + 1 })
                    | exception _ ->
                        Counters.bump "registry.store_errors";
                        bump (fun s -> { s with skipped = s.skipped + 1 }))))
          rest)
    classes;
  !stats
