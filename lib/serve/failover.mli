(** Pre-warmed failover serving: enumerate fault classes up to symmetry,
    synthesize one representative per orbit, transport the result to every
    equivalent fault set.

    A punctured topology keeps part of its symmetry — the subgroup of the
    rotation group fixing the fault set ({!Syccl_topology.Topology.stabilizer}).
    Dually, the rotation group partitions the {e fault sets themselves} into
    orbits: two single-link failures related by an automorphism need only
    one synthesis, because transporting the schedule along the automorphism
    ({!Syccl_sim.Transport}) yields a valid, equal-cost schedule for the
    other.  [syccl warm --faults K] leans on this to populate the registry
    for every <=K-link fault class at orbit cost, not member cost. *)

val link_elements :
  Syccl_topology.Topology.t -> Syccl_topology.Fault.elt list
(** Every single intra-group edge of every dimension, as fault elements —
    the default universe {!fault_sets} draws from. *)

val nic_elements :
  Syccl_topology.Topology.t -> Syccl_topology.Fault.elt list
(** One NIC element per (GPU, port group present in the topology).
    Demand-preserving — every rank stays alive — so NIC classes are
    warmable like links. *)

val gpu_elements :
  Syccl_topology.Topology.t -> Syccl_topology.Fault.elt list
(** One whole-GPU element per rank.  Servable (puncture accepts them) but
    not warmable: losing a rank changes the collective demand itself, so
    {!warm} enumerates these classes only to count and skip them. *)

val fault_elements :
  Syccl_topology.Topology.t -> Syccl_topology.Fault.elt list
(** The full warming universe: links, then NICs, then GPUs. *)

val demand_changing : Syccl_topology.Fault.t -> bool
(** Whether serving under this fault set changes the collective demand's
    shape — true iff the set kills a whole GPU. *)

val fault_sets :
  ?elements:Syccl_topology.Fault.elt list ->
  Syccl_topology.Topology.t -> k:int -> Syccl_topology.Fault.t list
(** All distinct fault sets of 1 to [k] elements drawn from [elements]
    (default {!link_elements}), canonical and sorted.  Raises
    [Invalid_argument] when [k < 1]. *)

val symmetry_group :
  Syccl_topology.Topology.t -> Syccl_collective.Collective.t ->
  Syccl_util.Perm.t list
(** The subgroup of the (healthy base) rotation group preserving the
    collective: everything for non-rooted kinds, rotations fixing the root
    for rooted kinds (root and peer for SendRecv).  Transport along any
    element maps a schedule for the collective to a schedule for the same
    collective. *)

val orbits :
  ?elements:Syccl_topology.Fault.elt list ->
  Syccl_topology.Topology.t -> Syccl_collective.Collective.t -> k:int ->
  (Syccl_topology.Fault.t * Syccl_topology.Fault.t list) list
(** {!fault_sets} partitioned into orbits under {!symmetry_group}, each as
    [(canonical representative, members)]. *)

type stats = {
  sets : int;  (** warmable fault sets enumerated (orbit members, total) *)
  orbits : int;  (** warmable equivalence classes — syntheses needed *)
  rep_hits : int;  (** representatives already served from the registry *)
  rep_synthesized : int;  (** representatives synthesized cold *)
  transported : int;  (** member entries stored by schedule transport *)
  resynthesized : int;
      (** members synthesized directly because transport failed (ambiguous
          tag signature, validation failure) — the correctness net *)
  skipped : int;
      (** members left cold (degraded/fast-only representative, or a store
          failure) — never silently served *)
  skipped_demand : int;
      (** classes skipped because their fault set kills a rank and so
          changes the demand's shape (also counted on the
          failover.skipped_demand counter) *)
}

val warm :
  registry:Registry.t ->
  ?audit:Audit.t ->
  ?config:Syccl.Synthesizer.config ->
  topology:string ->
  collective:string ->
  size:float ->
  int ->
  stats
(** [warm ~registry ~topology ~collective ~size k] pre-populates the
    registry for every <=[k]-element link/NIC fault set of the topology
    (GPU classes are enumerated but skipped — see [skipped_demand]): one
    {!Serve.run} per orbit representative (cold syntheses are stored under
    the punctured fingerprint by the ordinary serving policy), then each
    remaining orbit member receives the representative's schedule
    transported along the relating automorphism — validated on the member's
    punctured topology and stored at freshly simulated cost — so a later
    request with {e any} enumerated fault set is a registry hit.  Members
    whose transport fails are synthesized directly; members of a degraded
    representative are skipped (stored entries are Full-quality only,
    matching {!Serve}). *)
