module Collective = Syccl_collective.Collective
module Synthesizer = Syccl.Synthesizer

(* Fleet warming pre-populates the registry with one {e anchor} entry per
   (topology family, collective, size bucket): root 0, one exact size per
   bucket of the grid.  That is all the symmetry-aware probe needs — a
   production request at any other root is served by transporting the
   anchor along a stabilizer rotation, and a request in an adjacent bucket
   by rescaling it — so a cold family reaches hit-rate saturation at
   anchor cost, not grid cost. *)

(* Every named Builders family the request parser knows.  h800-512 is
   deliberately last: at 512 GPUs it is by far the most expensive to
   anchor, and an interrupted warm should have finished the rest first. *)
let default_families =
  [ "a100-16"; "a100-32"; "fig3"; "fig19"; "fig20"; "h800-64"; "h800-512" ]

(* Small instances of the same generic multirail structure as the big
   families, cheap enough for the bench gate under dune runtest. *)
let smoke_families = [ "multirail:2x2"; "multirail:2x4" ]

(* SendRecv is excluded: it needs an explicit peer per request, and the
   probe transports (root, peer) pairs only when one stabilizer rotation
   moves both, so anchors at (0, 0) would not cover the pair grid. *)
let default_collectives =
  [
    "allgather";
    "alltoall";
    "reducescatter";
    "allreduce";
    "broadcast";
    "scatter";
    "gather";
    "reduce";
  ]

(* One anchor per power-of-two bucket across the serving sweet spot:
   64 KiB (bucket 16), 1 MiB (20), 16 MiB (24). *)
let default_anchors = [ 65536.0; 1048576.0; 16777216.0 ]

(* Two buckets for the smoke grid (16 and 18), leaving odd buckets empty
   so the production grid exercises cross-bucket serving. *)
let smoke_anchors = [ 65536.0; 262144.0 ]

(* The adjacent-bucket production size for an anchor: 2.25× lands exactly
   one bucket up, so the anchor is always the lower neighbour. *)
let cross_size a = a *. 2.25

let rooted_name name =
  match String.lowercase_ascii name with
  | "broadcast" | "bcast" | "reduce" | "scatter" | "gather" | "sendrecv" ->
      true
  | _ -> false

type family = {
  family : string;
  anchors : int;  (** anchor requests issued (collectives × sizes) *)
  stored : int;  (** anchors synthesized and persisted *)
  already_hit : int;  (** anchors the registry already served *)
  failed : int;  (** anchors that came back degraded — not persisted *)
}

type stats = {
  families : family list;
  anchors : int;
  stored : int;
  already_hit : int;
  failed : int;
}

let warm ~registry ?audit ?(config = Synthesizer.default_config)
    ?(families = default_families) ?(collectives = default_collectives)
    ?(anchors = default_anchors) () =
  let per_family =
    List.map
      (fun name ->
        let requests =
          List.concat_map
            (fun collective ->
              List.map
                (fun size ->
                  Request.make ~config ~topology:name ~collective ~size ())
                anchors)
            collectives
        in
        let outcomes = Serve.run_batch ~registry ?audit requests in
        let stored, already_hit, failed =
          List.fold_left
            (fun (s, h, f) (o : Serve.outcome) ->
              match o.Serve.source with
              | Serve.From_registry _ -> (s, h + 1, f)
              | Serve.From_synthesis ->
                  if
                    o.Serve.synth.Synthesizer.degraded = Synthesizer.Full
                    && not config.Synthesizer.fast_only
                    && o.Serve.synth.Synthesizer.schedules <> []
                  then (s + 1, h, f)
                  else (s, h, f + 1))
            (0, 0, 0) outcomes
        in
        {
          family = name;
          anchors = List.length requests;
          stored;
          already_hit;
          failed;
        })
      families
  in
  let sum field = List.fold_left (fun a (f : family) -> a + field f) 0 per_family in
  {
    families = per_family;
    anchors = sum (fun f -> f.anchors);
    stored = sum (fun f -> f.stored);
    already_hit = sum (fun f -> f.already_hit);
    failed = sum (fun f -> f.failed);
  }

(* The cold-production request grid for one family: everything a warmed
   registry should serve {e without} another synthesis, and none of it
   under an anchor's exact key.  Rooted collectives sweep every non-zero
   root at each anchor size (transported hits); every collective also asks
   one bucket above each anchor (cross-bucket rescaled hits). *)
let production_grid ?(config = Synthesizer.default_config) ~family
    ~collectives ~anchors () =
  let n =
    Syccl_topology.Topology.num_gpus (Request.topo_of_name family)
  in
  List.concat_map
    (fun collective ->
      let transported =
        if rooted_name collective then
          List.concat_map
            (fun size ->
              List.init (n - 1) (fun r ->
                  Request.make ~config ~root:(r + 1) ~topology:family
                    ~collective ~size ()))
            anchors
        else []
      in
      let cross =
        List.map
          (fun size ->
            Request.make ~config ~topology:family ~collective
              ~size:(cross_size size) ())
          anchors
      in
      transported @ cross)
    collectives
