(** Fleet-scale registry warming ([syccl warm --fleet]).

    Pre-populates the registry with one {e anchor} entry per (topology
    family, collective, size bucket): root 0, one exact size per bucket of
    the grid.  That is all the symmetry-aware registry probe needs — a
    production request at any other root is served by transporting the
    anchor along a stabilizer rotation ({!Registry.Transported}), and a
    request in an adjacent bucket by rescaling it
    ({!Registry.Scaled_cross}) — so a cold family reaches hit-rate
    saturation at anchor cost, not (roots × sizes) grid cost.  The bench
    gate ([syccl-bench fleet] / [report --check]) asserts ≥90% of a cold
    family's production grid is served from transported + cross-bucket
    entries after warming the smoke grid. *)

val default_families : string list
(** Every named {!Syccl_topology.Builders} family the request parser
    knows, cheapest first (h800-512 last, so an interrupted warm has
    finished the rest). *)

val smoke_families : string list
(** Small multirail instances cheap enough for the bench gate under
    [dune runtest]. *)

val default_collectives : string list
(** All collectives except SendRecv (whose (root, peer) pair grid is not
    covered by a single anchor). *)

val default_anchors : float list
(** One anchor size per power-of-two bucket across the serving sweet
    spot: 64 KiB, 1 MiB, 16 MiB. *)

val smoke_anchors : float list
(** Two buckets (16 and 18), leaving odd buckets empty so the production
    grid exercises cross-bucket serving. *)

val cross_size : float -> float
(** The adjacent-bucket production size for an anchor: 2.25× lands
    exactly one bucket up, so the anchor is always the lower neighbour. *)

type family = {
  family : string;
  anchors : int;  (** anchor requests issued (collectives × sizes) *)
  stored : int;  (** anchors synthesized and persisted *)
  already_hit : int;  (** anchors the registry already served *)
  failed : int;  (** anchors that came back degraded — not persisted *)
}

type stats = {
  families : family list;
  anchors : int;
  stored : int;
  already_hit : int;
  failed : int;
}

val warm :
  registry:Registry.t ->
  ?audit:Audit.t ->
  ?config:Syccl.Synthesizer.config ->
  ?families:string list ->
  ?collectives:string list ->
  ?anchors:float list ->
  unit ->
  stats
(** Serve (and thereby store) every anchor of the grid through the
    ordinary {!Serve.run_batch} pipeline — full ladder, crash isolation,
    audit records, Full-only store policy.  Idempotent: re-warming counts
    existing anchors as [already_hit]. *)

val production_grid :
  ?config:Syccl.Synthesizer.config ->
  family:string ->
  collectives:string list ->
  anchors:float list ->
  unit ->
  Request.t list
(** The cold-production request grid for one family: every non-zero root
    at each anchor size for rooted collectives (transported hits) plus
    one adjacent-bucket size per anchor for every collective
    (cross-bucket hits).  None of it shares an anchor's exact key; after
    {!warm}, all of it should be served by the near-miss probe — this is
    the grid the bench hit-rate gate measures. *)
