type action = Serve_hit of Registry.hit | Synthesize

type probe = No_registry | Probed of Registry.probe_result

type t = {
  request : Request.t;
  registry_key : string option;
  probe : probe;
  action : action;
}

let make ~registry (request : Request.t) =
  match registry with
  | None ->
      { request; registry_key = None; probe = No_registry; action = Synthesize }
  | Some reg ->
      let key = Registry.key request.Request.topo request.Request.coll in
      let result =
        Registry.probe reg
          ~blocks:request.Request.config.Syccl.Synthesizer.blocks
          request.Request.topo request.Request.coll
      in
      let action =
        match result with
        | Registry.Hit hit -> Serve_hit hit
        | Registry.Miss _ -> Synthesize
      in
      { request; registry_key = Some key; probe = Probed result; action }

(* The audit trail's "probe" field: every value an operator can aggregate
   misses by.  Rescaled, transported and cross-bucket hits are each
   distinguished because a reused-and-transformed schedule is the thing to
   suspect first when a served cost looks off. *)
let probe_name t =
  match t.probe with
  | No_registry -> "none"
  | Probed (Registry.Hit h) -> (
      match h.Registry.via with
      | Registry.Exact -> "hit"
      | via -> "hit." ^ Registry.via_name via)
  | Probed (Registry.Miss r) -> "miss." ^ Registry.miss_reason_name r

let describe t =
  match t.action with
  | Serve_hit h -> (
      match h.Registry.via with
      | Registry.Exact -> "registry-hit"
      | via -> Printf.sprintf "registry-hit(%s)" (Registry.via_name via))
  | Synthesize -> "synthesize"
