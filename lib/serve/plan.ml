type action = Serve_hit of Registry.hit | Synthesize

type t = {
  request : Request.t;
  registry_key : string option;
  action : action;
}

let make ~registry (request : Request.t) =
  match registry with
  | None -> { request; registry_key = None; action = Synthesize }
  | Some reg ->
      let key = Registry.key request.Request.topo request.Request.coll in
      let action =
        match
          Registry.lookup reg
            ~blocks:request.Request.config.Syccl.Synthesizer.blocks
            request.Request.topo request.Request.coll
        with
        | Some hit -> Serve_hit hit
        | None -> Synthesize
      in
      { request; registry_key = Some key; action }

let describe t =
  match t.action with
  | Serve_hit h -> if h.Registry.scaled then "registry-hit(scaled)" else "registry-hit"
  | Synthesize -> "synthesize"
