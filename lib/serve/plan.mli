(** Request → plan: decide how a request will be satisfied before any
    solver runs.

    Planning is the only place that consults the schedule registry, so
    every front-end (single synth, sweep, batch, warm) gets identical
    hit/verify semantics.  A plan either carries a verified registry hit
    ready to serve, or commits the request to synthesis (recording the
    registry key the result should be stored under).  Which degradation
    rung synthesis then lands on is recorded by execution in the
    outcome's [degraded] field — a plan cannot know it up front. *)

type action =
  | Serve_hit of Registry.hit
      (** a verified (re-validated, re-simulated) registry entry *)
  | Synthesize  (** run the full synthesis pipeline (degradation ladder) *)

type probe =
  | No_registry  (** planning ran without a registry *)
  | Probed of Registry.probe_result
      (** the registry's verdict, miss reason included *)

type t = {
  request : Request.t;
  registry_key : string option;
      (** the entry key this request maps to; [None] iff planning ran
          without a registry *)
  probe : probe;
      (** the raw probe outcome, preserved for the audit trail *)
  action : action;
}

val make : registry:Registry.t option -> Request.t -> t
(** Probe the registry (when given) and plan the request.  A probe that
    misses — absent, corrupt, invalid or cost-regressed entry, each
    counted by {!Registry.probe} — plans [Synthesize]. *)

val probe_name : t -> string
(** The audit trail's probe field: ["none"], ["hit"], ["hit.scaled"], or
    ["miss.absent"|"miss.corrupt"|"miss.invalid"|"miss.slower"]. *)

val describe : t -> string
(** One-line human-readable path description (["registry-hit"],
    ["registry-hit(scaled)"], ["synthesize"]). *)
