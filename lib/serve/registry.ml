module Topology = Syccl_topology.Topology
module Collective = Syccl_collective.Collective
module Schedule = Syccl_sim.Schedule
module Sim = Syccl_sim.Sim
module Validate = Syccl_sim.Validate
module Json = Syccl_util.Json
module Counters = Syccl_util.Counters

type t = { root : string }

let dir t = t.root

let rec mkdirs path =
  if path <> "" && path <> "/" && not (Sys.file_exists path) then begin
    mkdirs (Filename.dirname path);
    try Unix.mkdir path 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let open_dir root =
  mkdirs root;
  { root }

let from_env () =
  match Sys.getenv_opt "SYCCL_REGISTRY" with
  | None | Some "" -> None
  | Some d -> Some (open_dir d)

(* Same power-of-two bucketing as the synthesizer's cross-size sub-solve
   memo: schedule structure is size-independent within a bucket, and a
   stored schedule rescales exactly ({!Schedule.scale}) to any size whose
   chunk proportions match.

   [frexp] gives the bucket exactly: size = m * 2^e with m in [0.5, 1), so
   floor(log2 size) = e - 1 with no rounding nudge.  The old
   log-ratio-plus-1e-9 version misbucketed sizes just below an exact power
   of two (Float.pred 2.0 landed in bucket 1), and mapped size <= 0 to
   bucket 0 — colliding with legitimate sizes in [1, 2).  Non-positive
   sizes (rejected by {!Collective.make}, but this function must not lie
   about them) get a sentinel bucket no real size can reach. *)
let size_bucket size =
  if size <= 0.0 || Float.is_nan size then min_int
  else snd (Float.frexp size) - 1

let key topo (coll : Collective.t) =
  let canon =
    Printf.sprintf "syccl-registry-v1;%s;%s;root=%d;peer=%d;bucket=%d;schema=%d"
      (Topology.fingerprint topo)
      (Collective.kind_name coll.Collective.kind)
      coll.Collective.root coll.Collective.peer
      (size_bucket coll.Collective.size)
      Schedule.schema_version
  in
  Digest.to_hex (Digest.string canon)

let path_of t k = Filename.concat t.root (k ^ ".json")

type hit = {
  schedules : Schedule.t list;
  time : float;
  stored_cost : float;
  stored_blocks : int;
  chosen : string;
  scaled : bool;
  hit_key : string;
}

let entry_json ~fingerprint ~(coll : Collective.t) ~blocks ~cost ~chosen
    schedules =
  Json.Obj
    [
      ("schema_version", Json.Num (float_of_int Schedule.schema_version));
      ("fingerprint", Json.Str fingerprint);
      ("kind", Json.Str (Collective.kind_name coll.Collective.kind));
      ("root", Json.Num (float_of_int coll.Collective.root));
      ("peer", Json.Num (float_of_int coll.Collective.peer));
      ("size", Json.Num coll.Collective.size);
      ("cost", Json.Num cost);
      ("blocks", Json.Num (float_of_int blocks));
      ("chosen", Json.Str chosen);
      ("schedules", Json.List (List.map Schedule.to_json schedules));
    ]

(* Unique-enough temp names without Random: pid + a process-wide ticket.
   Collisions across processes differ in pid; within a process in ticket. *)
let ticket = Atomic.make 0

let store t topo (coll : Collective.t) ?(blocks = 8) ~cost ~chosen schedules =
  let k = key topo coll in
  let body =
    Json.to_string ~pretty:true
      (entry_json ~fingerprint:(Topology.fingerprint topo) ~coll ~blocks ~cost
         ~chosen schedules)
    ^ "\n"
  in
  let tmp =
    Filename.concat t.root
      (Printf.sprintf ".tmp.%s.%d.%d" k (Unix.getpid ())
         (Atomic.fetch_and_add ticket 1))
  in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc body);
  (* rename is atomic within the directory: a concurrent reader sees either
     the old complete entry or the new complete entry, never a torn one. *)
  Sys.rename tmp (path_of t k);
  Counters.bump "registry.stores"

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Simulated cost of a multi-phase schedule set, matching how the
   synthesizer accounts it: phases run back to back, times sum. *)
let simulate ~blocks topo schedules =
  List.fold_left (fun a s -> a +. (Sim.time ~blocks topo s : float)) 0.0 schedules

let miss ?reason () =
  (match reason with None -> () | Some c -> Counters.bump c);
  Counters.bump "registry.misses";
  None

let lookup t ?(blocks = 8) topo (coll : Collective.t) =
  let k = key topo coll in
  let path = path_of t k in
  if not (Sys.file_exists path) then miss ()
  else
    (* Any failure from here to a fully-parsed entry is a corrupt entry:
       truncated writes (non-atomic copies from elsewhere), manual edits,
       schema drift.  All of them demote to a counted miss. *)
    match
      let j = Json.of_string (read_file path) in
      let version = Json.to_int (Json.member "schema_version" j) in
      if version <> Schedule.schema_version then
        raise (Json.Parse_error "registry entry schema mismatch");
      let fp = Json.to_str (Json.member "fingerprint" j) in
      if fp <> Topology.fingerprint topo then
        raise (Json.Parse_error "registry entry fingerprint mismatch");
      if
        Json.to_str (Json.member "kind" j)
        <> Collective.kind_name coll.Collective.kind
        || Json.to_int (Json.member "root" j) <> coll.Collective.root
        || Json.to_int (Json.member "peer" j) <> coll.Collective.peer
      then raise (Json.Parse_error "registry entry demand mismatch");
      let size = Json.to_float (Json.member "size" j) in
      let cost = Json.to_float (Json.member "cost" j) in
      (* Simulator fidelity the stored cost was computed at.  Entries
         predating the field were all written under the default blocks=8. *)
      let stored_blocks =
        match j with
        | Json.Obj fields -> (
            match List.assoc_opt "blocks" fields with
            | Some v -> Json.to_int v
            | None -> 8)
        | _ -> 8
      in
      let chosen = Json.to_str (Json.member "chosen" j) in
      let schedules =
        List.map Schedule.of_json (Json.to_list (Json.member "schedules" j))
      in
      (size, cost, stored_blocks, chosen, schedules)
    with
    | exception _ -> miss ~reason:"registry.corrupt" ()
    | stored_size, stored_cost, stored_blocks, chosen, schedules -> (
        let scaled = stored_size <> coll.Collective.size in
        let schedules =
          if scaled then
            let f = coll.Collective.size /. stored_size in
            List.map (fun s -> Schedule.scale s f) schedules
          else schedules
        in
        (* Every hit is re-verified against the live topology model: a
           stale or hand-planted entry must prove itself before it is
           allowed to replace a fresh solve. *)
        match Validate.validate topo coll schedules with
        | Error _ -> miss ~reason:"registry.invalid" ()
        | exception _ -> miss ~reason:"registry.invalid" ()
        | Ok () ->
            let time = simulate ~blocks topo schedules in
            (* Compare against the stored cost at the fidelity it was
               computed at: a caller probing with a different [blocks] must
               not demote (or rehabilitate) an entry just because coarser
               pipelining simulates slower — that is fidelity drift, not
               schedule drift. *)
            let comparable_time =
              if blocks = stored_blocks then time
              else simulate ~blocks:stored_blocks topo schedules
            in
            if (not scaled) && comparable_time > stored_cost *. (1.0 +. 1e-6)
            then
              (* The entry simulates slower than advertised (simulator or
                 link-model drift the fingerprint could not see): let a
                 fresh solve compete instead of silently serving it. *)
              miss ~reason:"registry.slower" ()
            else begin
              Counters.bump "registry.hits";
              Some
                {
                  schedules;
                  time;
                  stored_cost;
                  stored_blocks;
                  chosen;
                  scaled;
                  hit_key = k;
                }
            end)

let length t =
  Array.fold_left
    (fun acc f -> if Filename.check_suffix f ".json" then acc + 1 else acc)
    0
    (try Sys.readdir t.root with Sys_error _ -> [||])
