module Topology = Syccl_topology.Topology
module Collective = Syccl_collective.Collective
module Schedule = Syccl_sim.Schedule
module Sim = Syccl_sim.Sim
module Transport = Syccl_sim.Transport
module Validate = Syccl_sim.Validate
module Fallback = Syccl_baselines.Fallback
module Json = Syccl_util.Json
module Counters = Syccl_util.Counters
module Faultpoint = Syccl_util.Faultpoint
module Perm = Syccl_util.Perm
module Fault = Syccl_topology.Fault

type t = { root : string }

let dir t = t.root

let rec mkdirs path =
  if path <> "" && path <> "/" && not (Sys.file_exists path) then begin
    mkdirs (Filename.dirname path);
    try Unix.mkdir path 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Unique-enough temp names without Random: pid + a process-wide ticket.
   Collisions across processes differ in pid; within a process in ticket. *)
let ticket = Atomic.make 0

(* rename is atomic within a directory: a concurrent reader sees either the
   old complete file or the new complete file, never a torn one.  The temp
   file lives in the same directory as its target so the rename never
   crosses a filesystem boundary. *)
let atomic_write ~dir:d path body =
  let tmp =
    Filename.concat d
      (Printf.sprintf ".tmp.%d.%d" (Unix.getpid ())
         (Atomic.fetch_and_add ticket 1))
  in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc body);
  Sys.rename tmp path

(* --- sharded layout ----------------------------------------------------- *)

(* Layout v2: entries live under 256 shard directories named by the first
   two hex characters of the entry key (git-object style), so concurrent
   writers from many processes spread their renames across directories
   instead of contending on one.  Layout v1 was a flat directory of
   <key>.json files; reads fall back to the flat path transparently, and
   [compact]/[migrate] move stragglers into their shards. *)
let layout_version = 2
let shard_prefix_len = 2
let manifest_name = "MANIFEST.json"
let manifest_path t = Filename.concat t.root manifest_name

let shard_of_key k =
  if String.length k >= shard_prefix_len then String.sub k 0 shard_prefix_len
  else String.make shard_prefix_len '0'

let shard_dir t k = Filename.concat t.root (shard_of_key k)
let shard_path t k = Filename.concat (shard_dir t k) (k ^ ".json")
let flat_path t k = Filename.concat t.root (k ^ ".json")

(* Where the entry for [k] currently lives: its shard, the legacy flat
   location, or nowhere.  The shard wins when both exist — only a layout-2
   writer can have produced it, so it is the newer of the two. *)
let entry_path t k =
  let sharded = shard_path t k in
  if Sys.file_exists sharded then Some sharded
  else
    let flat = flat_path t k in
    if Sys.file_exists flat then Some flat else None

let manifest_body () =
  Json.to_string ~pretty:true
    (Json.Obj
       [
         ("layout_version", Json.Num (float_of_int layout_version));
         ("shard_prefix_len", Json.Num (float_of_int shard_prefix_len));
         ("schema_version", Json.Num (float_of_int Schedule.schema_version));
       ])
  ^ "\n"

let manifest t =
  let path = manifest_path t in
  if not (Sys.file_exists path) then Error "no manifest"
  else
    match Json.of_string (read_file path) with
    | exception _ -> Error "unreadable manifest"
    | j -> (
        match Json.to_int (Json.member "layout_version" j) with
        | v -> Ok v
        | exception _ -> Error "manifest lacks layout_version")

let open_dir root =
  mkdirs root;
  let t = { root } in
  (match manifest t with
  | Ok v when v > layout_version ->
      failwith
        (Printf.sprintf
           "registry %s: layout version %d is newer than this build reads \
            (%d)"
           root v layout_version)
  | Ok _ -> ()
  | Error _ ->
      (* First open, or a damaged manifest: (re)write ours.  The write is
         atomic and the content deterministic, so racing opens agree. *)
      atomic_write ~dir:root (manifest_path t) (manifest_body ()));
  t

let from_env () =
  match Sys.getenv_opt "SYCCL_REGISTRY" with
  | None | Some "" -> None
  | Some d -> Some (open_dir d)

(* Same power-of-two bucketing as the synthesizer's cross-size sub-solve
   memo: schedule structure is size-independent within a bucket, and a
   stored schedule rescales exactly ({!Schedule.scale}) to any size whose
   chunk proportions match.

   [frexp] gives the bucket exactly: size = m * 2^e with m in [0.5, 1), so
   floor(log2 size) = e - 1 with no rounding nudge.  The old
   log-ratio-plus-1e-9 version misbucketed sizes just below an exact power
   of two (Float.pred 2.0 landed in bucket 1), and mapped size <= 0 to
   bucket 0 — colliding with legitimate sizes in [1, 2).  Non-positive
   sizes (rejected by {!Collective.make}, but this function must not lie
   about them) get a sentinel bucket no real size can reach. *)
let size_bucket size =
  if size <= 0.0 || Float.is_nan size then min_int
  else snd (Float.frexp size) - 1

let key_of ~fingerprint ~kind ~root ~peer ~bucket =
  let canon =
    Printf.sprintf
      "syccl-registry-v1;%s;%s;root=%d;peer=%d;bucket=%d;schema=%d"
      fingerprint kind root peer bucket Schedule.schema_version
  in
  Digest.to_hex (Digest.string canon)

let key topo (coll : Collective.t) =
  key_of
    ~fingerprint:(Topology.fingerprint topo)
    ~kind:(Collective.kind_name coll.Collective.kind)
    ~root:coll.Collective.root ~peer:coll.Collective.peer
    ~bucket:(size_bucket coll.Collective.size)

type via = Exact | Rescaled | Transported | Scaled_cross

let via_name = function
  | Exact -> "exact"
  | Rescaled -> "scaled"
  | Transported -> "transported"
  | Scaled_cross -> "scaled_cross"

type hit = {
  schedules : Schedule.t list;
  time : float;
  stored_cost : float;
  stored_blocks : int;
  chosen : string;
  via : via;
  hit_key : string;
}

let entry_json ~fingerprint ~faults ~(coll : Collective.t) ~blocks ~cost
    ~chosen schedules =
  Json.Obj
    [
      ("schema_version", Json.Num (float_of_int Schedule.schema_version));
      ("fingerprint", Json.Str fingerprint);
      ("faults", (match faults with "" -> Json.Null | s -> Json.Str s));
      ("kind", Json.Str (Collective.kind_name coll.Collective.kind));
      ("root", Json.Num (float_of_int coll.Collective.root));
      ("peer", Json.Num (float_of_int coll.Collective.peer));
      ("size", Json.Num coll.Collective.size);
      ("cost", Json.Num cost);
      ("blocks", Json.Num (float_of_int blocks));
      ("chosen", Json.Str chosen);
      ("schedules", Json.List (List.map Schedule.to_json schedules));
    ]

let store t topo (coll : Collective.t) ?(blocks = 8) ~cost ~chosen schedules =
  (* Crash probe for the store path: serving must survive a registry that
     cannot persist (full disk, revoked credentials) by dropping the store,
     not the response. *)
  Faultpoint.inject "registry.crash";
  let k = key topo coll in
  let body =
    Json.to_string ~pretty:true
      (entry_json ~fingerprint:(Topology.fingerprint topo)
         ~faults:(Fault.encode (Topology.faults topo))
         ~coll ~blocks ~cost ~chosen schedules)
    ^ "\n"
  in
  let sdir = shard_dir t k in
  mkdirs sdir;
  atomic_write ~dir:sdir (shard_path t k) body;
  Counters.bump "registry.stores"

(* Simulated cost of a multi-phase schedule set, matching how the
   synthesizer accounts it: phases run back to back, times sum. *)
let simulate ~blocks topo schedules =
  List.fold_left (fun a s -> a +. (Sim.time ~blocks topo s : float)) 0.0 schedules

type miss_reason = Absent | Corrupt | Invalid | Slower | Transport_rejected

let miss_reason_name = function
  | Absent -> "absent"
  | Corrupt -> "corrupt"
  | Invalid -> "invalid"
  | Slower -> "slower"
  | Transport_rejected -> "transport_rejected"

type probe_result = Hit of hit | Miss of miss_reason

(* Per-reason "registry.miss.<reason>" counters distinguish cold misses from
   store corruption in scraped metrics; the aggregate and the legacy reason
   names (registry.corrupt/invalid/slower) are kept for dashboards and tests
   that predate the split. *)
let miss reason =
  Counters.bump ("registry.miss." ^ miss_reason_name reason);
  (match reason with
  | Absent | Transport_rejected -> ()
  | Corrupt -> Counters.bump "registry.corrupt"
  | Invalid -> Counters.bump "registry.invalid"
  | Slower -> Counters.bump "registry.slower");
  Counters.bump "registry.misses";
  Miss reason

let hit_counters via =
  Counters.bump "registry.hits";
  match via with
  | Exact | Rescaled -> ()
  | Transported -> Counters.bump "registry.hit.transported"
  | Scaled_cross -> Counters.bump "registry.hit.scaled_cross"

(* --- entry parsing (shared by probe and the introspection API) --------- *)

type meta = {
  m_key : string;
  m_fingerprint : string;
  m_faults : string;
  m_kind : string;
  m_root : int;
  m_peer : int;
  m_size : float;
  m_cost : float;
  m_blocks : int;
  m_chosen : string;
  m_schema : int;
  m_bytes : int;
}

(* Parse an entry file without validating the schedules against any
   topology.  Any failure — unreadable file, malformed JSON, missing
   fields, wrong schema version — is the entry being corrupt. *)
let parse_entry ~key:k path =
  match
    (* Crash probe for the read path: an entry that cannot be read is a
       counted corrupt miss, never a serving error. *)
    Faultpoint.inject "registry.crash";
    let body = read_file path in
    let j = Json.of_string body in
    let version = Json.to_int (Json.member "schema_version" j) in
    if version <> Schedule.schema_version then
      raise
        (Json.Parse_error
           (Printf.sprintf "schema version %d, this build reads %d" version
              Schedule.schema_version));
    (* Simulator fidelity the stored cost was computed at.  Entries
       predating the field were all written under the default blocks=8. *)
    let stored_blocks =
      match j with
      | Json.Obj fields -> (
          match List.assoc_opt "blocks" fields with
          | Some v -> Json.to_int v
          | None -> 8)
      | _ -> 8
    in
    (* Fault provenance; entries predating the field were all healthy. *)
    let m_faults =
      match j with
      | Json.Obj fields -> (
          match List.assoc_opt "faults" fields with
          | Some (Json.Str s) -> s
          | Some Json.Null | None -> ""
          | Some _ -> raise (Json.Parse_error "\"faults\" must be a string"))
      | _ -> ""
    in
    let meta =
      {
        m_key = k;
        m_fingerprint = Json.to_str (Json.member "fingerprint" j);
        m_faults;
        m_kind = Json.to_str (Json.member "kind" j);
        m_root = Json.to_int (Json.member "root" j);
        m_peer = Json.to_int (Json.member "peer" j);
        m_size = Json.to_float (Json.member "size" j);
        m_cost = Json.to_float (Json.member "cost" j);
        m_blocks = stored_blocks;
        m_chosen = Json.to_str (Json.member "chosen" j);
        m_schema = Json.to_int (Json.member "schema_version" j);
        m_bytes = String.length body;
      }
    in
    let schedules =
      List.map Schedule.of_json (Json.to_list (Json.member "schedules" j))
    in
    (meta, schedules)
  with
  | exception Json.Parse_error m -> Error m
  | exception e -> Error (Printexc.to_string e)
  | parsed -> Ok parsed

(* --- probe: exact key, then symmetry/size near-miss -------------------- *)

(* Exact-key classification.  Pure with respect to the serving counters:
   [probe] does the bumping, so the near-miss pass can reuse this without
   double-counting. *)
let probe_exact t ~blocks topo (coll : Collective.t) k =
  match entry_path t k with
  | None -> Miss Absent
  | Some path -> (
      match parse_entry ~key:k path with
      | Error _ -> Miss Corrupt
      | Ok (meta, schedules) ->
          if
            meta.m_fingerprint <> Topology.fingerprint topo
            || meta.m_kind <> Collective.kind_name coll.Collective.kind
            || meta.m_root <> coll.Collective.root
            || meta.m_peer <> coll.Collective.peer
          then
            (* A key collision with a mismatched demand is indistinguishable
               from a manually planted or damaged entry: corrupt. *)
            Miss Corrupt
          else begin
            let stored_cost = meta.m_cost and stored_blocks = meta.m_blocks in
            let scaled = meta.m_size <> coll.Collective.size in
            let schedules =
              if scaled then
                let f = coll.Collective.size /. meta.m_size in
                List.map (fun s -> Schedule.scale s f) schedules
              else schedules
            in
            (* Every hit is re-verified against the live topology model: a
               stale or hand-planted entry must prove itself before it is
               allowed to replace a fresh solve. *)
            match Validate.validate topo coll schedules with
            | Error _ -> Miss Invalid
            | exception _ -> Miss Invalid
            | Ok () ->
                let time = simulate ~blocks topo schedules in
                (* Compare against the stored cost at the fidelity it was
                   computed at: a caller probing with a different [blocks]
                   must not demote (or rehabilitate) an entry just because
                   coarser pipelining simulates slower — that is fidelity
                   drift, not schedule drift. *)
                let comparable_time =
                  if blocks = stored_blocks then time
                  else simulate ~blocks:stored_blocks topo schedules
                in
                if
                  (not scaled)
                  && comparable_time > stored_cost *. (1.0 +. 1e-6)
                then
                  (* The entry simulates slower than advertised (simulator
                     or link-model drift the fingerprint could not see):
                     let a fresh solve compete instead of silently serving
                     it. *)
                  Miss Slower
                else
                  Hit
                    {
                      schedules;
                      time;
                      stored_cost;
                      stored_blocks;
                      chosen = meta.m_chosen;
                      via = (if scaled then Rescaled else Exact);
                      hit_key = k;
                    }
          end)

let rooted_kind = function
  | Collective.SendRecv | Collective.Broadcast | Collective.Scatter
  | Collective.Gather | Collective.Reduce ->
      true
  | Collective.AllGather | Collective.AllToAll | Collective.ReduceScatter
  | Collective.AllReduce ->
      false

(* Candidate sources for symmetry transport: the distinct (root, peer)
   pairs whose entries — same fingerprint, kind and bucket — map onto the
   request under some element of the topology's stabilizer.  The stabilizer
   (not the full rotation group) is what keeps this sound on punctured
   topologies: an automorphism that moves the fault set would transport a
   schedule onto dead links.  Each source carries every permutation mapping
   it to the request, so an ambiguous tag signature under one rotation can
   fall back to another. *)
let transport_sources topo (coll : Collective.t) =
  if not (rooted_kind coll.Collective.kind) then []
  else begin
    let tbl = Hashtbl.create 16 in
    let order = ref [] in
    List.iter
      (fun p ->
        let q = Perm.invert p in
        let src_root = Perm.apply q coll.Collective.root in
        let src_peer =
          if coll.Collective.kind = Collective.SendRecv then
            Perm.apply q coll.Collective.peer
          else coll.Collective.peer
        in
        if not (src_root = coll.Collective.root && src_peer = coll.Collective.peer)
        then begin
          let src = (src_root, src_peer) in
          match Hashtbl.find_opt tbl src with
          | Some ps -> Hashtbl.replace tbl src (p :: ps)
          | None ->
              Hashtbl.add tbl src [ p ];
              order := src :: !order
        end)
      (Topology.stabilizer topo);
    List.rev_map (fun src -> (src, List.rev (Hashtbl.find tbl src))) !order
  end

(* Near-miss pass, entered only on an exact-key [Absent] miss.  Two
   candidate families: entries at a symmetric (root, peer) transported
   through {!Transport.schedules} (validity and cost preserved — the
   automorphism-transport fuzz law), and same-demand entries one size
   bucket away rescaled with {!Schedule.scale}.  Every candidate is
   re-validated and α-β re-simulated, and must beat the fallback ladder
   before it may serve; the fastest survivor wins. *)
let probe_near t ~blocks topo (coll : Collective.t) =
  let fp = Topology.fingerprint topo in
  let kind_name = Collective.kind_name coll.Collective.kind in
  let n = Topology.num_gpus topo in
  let bucket = size_bucket coll.Collective.size in
  let attempted = ref 0 in
  (* A source entry that exists and parses sane counts as attempted even if
     transport, validation or the fallback guard later rejects it: the
     distinction between miss.absent and miss.transport_rejected is "was
     there anything to transport". *)
  let load_source k =
    match entry_path t k with
    | None -> None
    | Some path -> (
        match parse_entry ~key:k path with
        | Error _ -> None
        | Ok (meta, ss) ->
            if meta.m_fingerprint <> fp || meta.m_kind <> kind_name then None
            else begin
              incr attempted;
              Some (meta, ss)
            end)
  in
  let finish ~via ~hit_key (meta : meta) schedules =
    match Validate.validate topo coll schedules with
    | Error _ -> None
    | exception _ -> None
    | Ok () ->
        let time = simulate ~blocks topo schedules in
        Some
          {
            schedules;
            time;
            stored_cost = meta.m_cost;
            stored_blocks = meta.m_blocks;
            chosen = meta.m_chosen;
            via;
            hit_key;
          }
  in
  let rescale (meta : meta) ss =
    if meta.m_size = coll.Collective.size then ss
    else
      let f = coll.Collective.size /. meta.m_size in
      List.map (fun s -> Schedule.scale s f) ss
  in
  let transported =
    List.filter_map
      (fun ((src_root, src_peer), ps) ->
        let k =
          key_of ~fingerprint:fp ~kind:kind_name ~root:src_root
            ~peer:src_peer ~bucket
        in
        match load_source k with
        | None -> None
        | Some (meta, ss) ->
            if meta.m_root <> src_root || meta.m_peer <> src_peer then None
            else (
              match
                ( Collective.make ~root:src_root ~peer:src_peer
                    coll.Collective.kind ~n ~size:meta.m_size,
                  Collective.make ~root:coll.Collective.root
                    ~peer:coll.Collective.peer coll.Collective.kind ~n
                    ~size:meta.m_size )
              with
              | exception _ -> None
              | coll_src, coll_dst -> (
                  match
                    List.find_map
                      (fun p -> Transport.schedules p coll_src coll_dst ss)
                      ps
                  with
                  | None -> None
                  | Some ss' ->
                      finish ~via:Transported ~hit_key:k meta
                        (rescale meta ss'))))
      (transport_sources topo coll)
  in
  let cross =
    List.filter_map
      (fun db ->
        let k =
          key_of ~fingerprint:fp ~kind:kind_name ~root:coll.Collective.root
            ~peer:coll.Collective.peer ~bucket:(bucket + db)
        in
        match load_source k with
        | None -> None
        | Some (meta, ss) ->
            if
              meta.m_root <> coll.Collective.root
              || meta.m_peer <> coll.Collective.peer
              || meta.m_size = coll.Collective.size
            then None
            else finish ~via:Scaled_cross ~hit_key:k meta (rescale meta ss))
      [ -1; 1 ]
  in
  match transported @ cross with
  | [] -> miss (if !attempted > 0 then Transport_rejected else Absent)
  | candidates -> (
      (* The fallback ladder is the floor any served schedule must beat: a
         transported entry slower than the always-available baseline is
         worse than missing. *)
      let floor_time =
        match Fallback.schedule topo coll with
        | exception _ -> None
        | phases -> ( try Some (simulate ~blocks topo phases) with _ -> None)
      in
      let accepted =
        match floor_time with
        | None -> candidates
        | Some fb ->
            List.filter (fun h -> h.time <= fb *. (1.0 +. 1e-6)) candidates
      in
      match accepted with
      | [] -> miss Transport_rejected
      | first :: rest ->
          let best =
            List.fold_left
              (fun a h -> if h.time < a.time then h else a)
              first rest
          in
          hit_counters best.via;
          Hit best)

let probe t ?(blocks = 8) topo (coll : Collective.t) =
  let k = key topo coll in
  match probe_exact t ~blocks topo coll k with
  | Hit h ->
      hit_counters h.via;
      Hit h
  | Miss Absent -> probe_near t ~blocks topo coll
  | Miss r -> miss r

let lookup t ?blocks topo coll =
  match probe t ?blocks topo coll with Hit h -> Some h | Miss _ -> None

(* --- introspection (read-only; never mutates the store) ----------------- *)

let is_hex_char c = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')

let is_shard_name f =
  String.length f = shard_prefix_len && String.for_all is_hex_char f

let keys t =
  let top = Array.to_list (try Sys.readdir t.root with Sys_error _ -> [||]) in
  let flat =
    List.filter_map
      (fun f ->
        if f <> manifest_name && Filename.check_suffix f ".json" then
          Some (Filename.chop_suffix f ".json")
        else None)
      top
  in
  let sharded =
    List.concat_map
      (fun d ->
        let full = Filename.concat t.root d in
        if is_shard_name d && Sys.is_directory full then
          (* An existing-but-unreadable shard directory is an operator
             problem the caller must see, not an empty shard: Sys_error
             propagates. *)
          Array.to_list (Sys.readdir full)
          |> List.filter_map (fun f ->
                 if Filename.check_suffix f ".json" then
                   Some (Filename.chop_suffix f ".json")
                 else None)
        else [])
      top
  in
  List.sort_uniq compare (flat @ sharded)

let length t = List.length (keys t)

type layout_stats = { sharded : int; flat : int; shards_in_use : int }

let layout_stats t =
  let ks = keys t in
  let shards = Hashtbl.create 16 in
  let sharded, flat =
    List.fold_left
      (fun (s, f) k ->
        if Sys.file_exists (shard_path t k) then begin
          Hashtbl.replace shards (shard_of_key k) ();
          (s + 1, f)
        end
        else (s, f + 1))
      (0, 0) ks
  in
  { sharded; flat; shards_in_use = Hashtbl.length shards }

let load t k =
  match entry_path t k with
  | None -> Error "no such entry"
  | Some path -> parse_entry ~key:k path

type verdict =
  | Entry_ok of { simulated : float }
  | Entry_unverified of meta
  | Entry_corrupt of string
  | Entry_invalid of { meta : meta; error : string }
  | Entry_slower of { meta : meta; simulated : float }

let verify_entry t ?topo k =
  match load t k with
  | Error m -> Entry_corrupt m
  | Ok (meta, schedules) -> (
      match topo with
      | Some topo when Topology.fingerprint topo = meta.m_fingerprint -> (
          match
            let coll =
              Collective.make ~root:meta.m_root ~peer:meta.m_peer
                (Collective.kind_of_name meta.m_kind)
                ~n:(Topology.num_gpus topo) ~size:meta.m_size
            in
            Validate.validate topo coll schedules
          with
          | exception e -> Entry_invalid { meta; error = Printexc.to_string e }
          | Error e -> Entry_invalid { meta; error = e }
          | Ok () ->
              (* Re-simulate at the entry's store-time fidelity so the
                 comparison is like-for-like with the stored cost. *)
              let simulated = simulate ~blocks:meta.m_blocks topo schedules in
              if simulated > meta.m_cost *. (1.0 +. 1e-6) then
                Entry_slower { meta; simulated }
              else Entry_ok { simulated })
      | _ -> Entry_unverified meta)

(* --- maintenance: migration, compaction, eviction ----------------------- *)

let remove_entry t k =
  let removed = ref false in
  List.iter
    (fun p ->
      if Sys.file_exists p then begin
        (try Sys.remove p with Sys_error _ -> ());
        removed := true
      end)
    [ shard_path t k; flat_path t k ];
  !removed

let migrate t =
  let moved = ref 0 in
  Array.iter
    (fun f ->
      if f <> manifest_name && Filename.check_suffix f ".json" then begin
        let k = Filename.chop_suffix f ".json" in
        let src = flat_path t k and dst = shard_path t k in
        mkdirs (shard_dir t k);
        if Sys.file_exists dst then begin
          (* A sharded entry only a layout-2 writer can have produced
             shadows the legacy one; drop the straggler. *)
          (try Sys.remove src with Sys_error _ -> ());
          incr moved
        end
        else
          match Sys.rename src dst with
          | () -> incr moved
          | exception Sys_error _ -> ()
      end)
    (try Sys.readdir t.root with Sys_error _ -> [||]);
  !moved

type compact_stats = {
  migrated : int;
  corrupt_removed : int;
  dominated_removed : int;
  evicted : int;
  kept : int;
  kept_bytes : int;
}

(* Entries eligible for dominated-entry pruning: a healthy rooted
   collective (other than SendRecv) at a given (fingerprint, kind, bucket,
   size, fidelity) is servable for {e any} root by transporting the
   cheapest entry of the class — the rotation group of a healthy topology
   is transitive on roots.  SendRecv is excluded because transitivity on
   (root, peer) {e pairs} is not guaranteed, and faulted entries because
   the stabilizer may not reach every root. *)
let prunable m =
  m.m_faults = ""
  &&
  match Collective.kind_of_name m.m_kind with
  | Collective.Broadcast | Collective.Scatter | Collective.Gather
  | Collective.Reduce ->
      true
  | _ -> false
  | exception _ -> false

let compact t ?max_entries ?max_bytes ?(last_used = fun _ -> None) () =
  let migrated = migrate t in
  let corrupt_removed = ref 0 in
  let metas =
    List.filter_map
      (fun k ->
        match load t k with
        | Ok (m, _) -> Some m
        | Error _ ->
            (* Compaction is the one explicitly-invoked pass allowed to
               delete: a corrupt entry can never serve again, only recount
               as registry.corrupt forever. *)
            if remove_entry t k then incr corrupt_removed;
            None)
      (keys t)
  in
  let groups = Hashtbl.create 64 in
  List.iter
    (fun m ->
      if prunable m then begin
        let g =
          (m.m_fingerprint, m.m_kind, size_bucket m.m_size, m.m_size, m.m_blocks)
        in
        let cur = try Hashtbl.find groups g with Not_found -> [] in
        Hashtbl.replace groups g (m :: cur)
      end)
    metas;
  let dominated = Hashtbl.create 16 in
  Hashtbl.iter
    (fun _ ms ->
      match ms with
      | [] | [ _ ] -> ()
      | first :: rest ->
          let best =
            List.fold_left
              (fun a m ->
                if
                  m.m_cost < a.m_cost
                  || (m.m_cost = a.m_cost && m.m_key < a.m_key)
                then m
                else a)
              first rest
          in
          List.iter
            (fun m ->
              if m.m_key <> best.m_key then Hashtbl.replace dominated m.m_key ())
            ms)
    groups;
  let dominated_removed =
    Hashtbl.fold
      (fun k () n -> if remove_entry t k then n + 1 else n)
      dominated 0
  in
  let metas = List.filter (fun m -> not (Hashtbl.mem dominated m.m_key)) metas in
  (* LRU eviction, oldest first.  Last use comes from the caller (audit
     trail hit provenance); entries never hit fall back to file mtime. *)
  let stamp m =
    match last_used m.m_key with
    | Some ts -> ts
    | None -> (
        match entry_path t m.m_key with
        | Some p -> ( try (Unix.stat p).Unix.st_mtime with _ -> 0.0)
        | None -> 0.0)
  in
  let by_age =
    List.sort compare (List.map (fun m -> (stamp m, m.m_key, m.m_bytes)) metas)
  in
  let total_bytes = List.fold_left (fun a (_, _, b) -> a + b) 0 by_age in
  let over n bytes =
    (match max_entries with Some m -> n > m | None -> false)
    || match max_bytes with Some m -> bytes > m | None -> false
  in
  let rec evict acc n bytes = function
    | (_, k, b) :: rest when over n bytes ->
        ignore (remove_entry t k);
        evict (acc + 1) (n - 1) (bytes - b) rest
    | _ -> (acc, n, bytes)
  in
  let evicted, kept, kept_bytes =
    evict 0 (List.length by_age) total_bytes by_age
  in
  (* Re-stamp the manifest: compaction is also the upgrade path from the
     flat layout, and the manifest should say so afterwards. *)
  atomic_write ~dir:t.root (manifest_path t) (manifest_body ());
  {
    migrated;
    corrupt_removed = !corrupt_removed;
    dominated_removed;
    evicted;
    kept;
    kept_bytes;
  }

let destroy t =
  let rec rm path =
    match Sys.is_directory path with
    | true ->
        Array.iter
          (fun f -> rm (Filename.concat path f))
          (try Sys.readdir path with Sys_error _ -> [||]);
        (try Unix.rmdir path with Unix.Unix_error _ -> ())
    | false -> ( try Sys.remove path with Sys_error _ -> ())
    | exception Sys_error _ -> ()
  in
  rm t.root
