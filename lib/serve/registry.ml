module Topology = Syccl_topology.Topology
module Collective = Syccl_collective.Collective
module Schedule = Syccl_sim.Schedule
module Sim = Syccl_sim.Sim
module Validate = Syccl_sim.Validate
module Json = Syccl_util.Json
module Counters = Syccl_util.Counters
module Faultpoint = Syccl_util.Faultpoint
module Fault = Syccl_topology.Fault

type t = { root : string }

let dir t = t.root

let rec mkdirs path =
  if path <> "" && path <> "/" && not (Sys.file_exists path) then begin
    mkdirs (Filename.dirname path);
    try Unix.mkdir path 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let open_dir root =
  mkdirs root;
  { root }

let from_env () =
  match Sys.getenv_opt "SYCCL_REGISTRY" with
  | None | Some "" -> None
  | Some d -> Some (open_dir d)

(* Same power-of-two bucketing as the synthesizer's cross-size sub-solve
   memo: schedule structure is size-independent within a bucket, and a
   stored schedule rescales exactly ({!Schedule.scale}) to any size whose
   chunk proportions match.

   [frexp] gives the bucket exactly: size = m * 2^e with m in [0.5, 1), so
   floor(log2 size) = e - 1 with no rounding nudge.  The old
   log-ratio-plus-1e-9 version misbucketed sizes just below an exact power
   of two (Float.pred 2.0 landed in bucket 1), and mapped size <= 0 to
   bucket 0 — colliding with legitimate sizes in [1, 2).  Non-positive
   sizes (rejected by {!Collective.make}, but this function must not lie
   about them) get a sentinel bucket no real size can reach. *)
let size_bucket size =
  if size <= 0.0 || Float.is_nan size then min_int
  else snd (Float.frexp size) - 1

let key topo (coll : Collective.t) =
  let canon =
    Printf.sprintf "syccl-registry-v1;%s;%s;root=%d;peer=%d;bucket=%d;schema=%d"
      (Topology.fingerprint topo)
      (Collective.kind_name coll.Collective.kind)
      coll.Collective.root coll.Collective.peer
      (size_bucket coll.Collective.size)
      Schedule.schema_version
  in
  Digest.to_hex (Digest.string canon)

let path_of t k = Filename.concat t.root (k ^ ".json")

type hit = {
  schedules : Schedule.t list;
  time : float;
  stored_cost : float;
  stored_blocks : int;
  chosen : string;
  scaled : bool;
  hit_key : string;
}

let entry_json ~fingerprint ~faults ~(coll : Collective.t) ~blocks ~cost
    ~chosen schedules =
  Json.Obj
    [
      ("schema_version", Json.Num (float_of_int Schedule.schema_version));
      ("fingerprint", Json.Str fingerprint);
      ("faults", (match faults with "" -> Json.Null | s -> Json.Str s));
      ("kind", Json.Str (Collective.kind_name coll.Collective.kind));
      ("root", Json.Num (float_of_int coll.Collective.root));
      ("peer", Json.Num (float_of_int coll.Collective.peer));
      ("size", Json.Num coll.Collective.size);
      ("cost", Json.Num cost);
      ("blocks", Json.Num (float_of_int blocks));
      ("chosen", Json.Str chosen);
      ("schedules", Json.List (List.map Schedule.to_json schedules));
    ]

(* Unique-enough temp names without Random: pid + a process-wide ticket.
   Collisions across processes differ in pid; within a process in ticket. *)
let ticket = Atomic.make 0

let store t topo (coll : Collective.t) ?(blocks = 8) ~cost ~chosen schedules =
  (* Crash probe for the store path: serving must survive a registry that
     cannot persist (full disk, revoked credentials) by dropping the store,
     not the response. *)
  Faultpoint.inject "registry.crash";
  let k = key topo coll in
  let body =
    Json.to_string ~pretty:true
      (entry_json ~fingerprint:(Topology.fingerprint topo)
         ~faults:(Fault.encode (Topology.faults topo))
         ~coll ~blocks ~cost ~chosen schedules)
    ^ "\n"
  in
  let tmp =
    Filename.concat t.root
      (Printf.sprintf ".tmp.%s.%d.%d" k (Unix.getpid ())
         (Atomic.fetch_and_add ticket 1))
  in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc body);
  (* rename is atomic within the directory: a concurrent reader sees either
     the old complete entry or the new complete entry, never a torn one. *)
  Sys.rename tmp (path_of t k);
  Counters.bump "registry.stores"

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Simulated cost of a multi-phase schedule set, matching how the
   synthesizer accounts it: phases run back to back, times sum. *)
let simulate ~blocks topo schedules =
  List.fold_left (fun a s -> a +. (Sim.time ~blocks topo s : float)) 0.0 schedules

type miss_reason = Absent | Corrupt | Invalid | Slower

let miss_reason_name = function
  | Absent -> "absent"
  | Corrupt -> "corrupt"
  | Invalid -> "invalid"
  | Slower -> "slower"

type probe_result = Hit of hit | Miss of miss_reason

(* Per-reason "registry.miss.<reason>" counters distinguish cold misses from
   store corruption in scraped metrics; the aggregate and the legacy reason
   names (registry.corrupt/invalid/slower) are kept for dashboards and tests
   that predate the split. *)
let miss reason =
  Counters.bump ("registry.miss." ^ miss_reason_name reason);
  (match reason with
  | Absent -> ()
  | Corrupt -> Counters.bump "registry.corrupt"
  | Invalid -> Counters.bump "registry.invalid"
  | Slower -> Counters.bump "registry.slower");
  Counters.bump "registry.misses";
  Miss reason

(* --- entry parsing (shared by probe and the introspection API) --------- *)

type meta = {
  m_key : string;
  m_fingerprint : string;
  m_faults : string;
  m_kind : string;
  m_root : int;
  m_peer : int;
  m_size : float;
  m_cost : float;
  m_blocks : int;
  m_chosen : string;
  m_schema : int;
  m_bytes : int;
}

(* Parse an entry file without validating the schedules against any
   topology.  Any failure — unreadable file, malformed JSON, missing
   fields, wrong schema version — is the entry being corrupt. *)
let parse_entry ~key:k path =
  match
    (* Crash probe for the read path: an entry that cannot be read is a
       counted corrupt miss, never a serving error. *)
    Faultpoint.inject "registry.crash";
    let body = read_file path in
    let j = Json.of_string body in
    let version = Json.to_int (Json.member "schema_version" j) in
    if version <> Schedule.schema_version then
      raise
        (Json.Parse_error
           (Printf.sprintf "schema version %d, this build reads %d" version
              Schedule.schema_version));
    (* Simulator fidelity the stored cost was computed at.  Entries
       predating the field were all written under the default blocks=8. *)
    let stored_blocks =
      match j with
      | Json.Obj fields -> (
          match List.assoc_opt "blocks" fields with
          | Some v -> Json.to_int v
          | None -> 8)
      | _ -> 8
    in
    (* Fault provenance; entries predating the field were all healthy. *)
    let m_faults =
      match j with
      | Json.Obj fields -> (
          match List.assoc_opt "faults" fields with
          | Some (Json.Str s) -> s
          | Some Json.Null | None -> ""
          | Some _ -> raise (Json.Parse_error "\"faults\" must be a string"))
      | _ -> ""
    in
    let meta =
      {
        m_key = k;
        m_fingerprint = Json.to_str (Json.member "fingerprint" j);
        m_faults;
        m_kind = Json.to_str (Json.member "kind" j);
        m_root = Json.to_int (Json.member "root" j);
        m_peer = Json.to_int (Json.member "peer" j);
        m_size = Json.to_float (Json.member "size" j);
        m_cost = Json.to_float (Json.member "cost" j);
        m_blocks = stored_blocks;
        m_chosen = Json.to_str (Json.member "chosen" j);
        m_schema = Json.to_int (Json.member "schema_version" j);
        m_bytes = String.length body;
      }
    in
    let schedules =
      List.map Schedule.of_json (Json.to_list (Json.member "schedules" j))
    in
    (meta, schedules)
  with
  | exception Json.Parse_error m -> Error m
  | exception e -> Error (Printexc.to_string e)
  | parsed -> Ok parsed

let probe t ?(blocks = 8) topo (coll : Collective.t) =
  let k = key topo coll in
  let path = path_of t k in
  if not (Sys.file_exists path) then miss Absent
  else
    match parse_entry ~key:k path with
    | Error _ -> miss Corrupt
    | Ok (meta, schedules) ->
        if
          meta.m_fingerprint <> Topology.fingerprint topo
          || meta.m_kind <> Collective.kind_name coll.Collective.kind
          || meta.m_root <> coll.Collective.root
          || meta.m_peer <> coll.Collective.peer
        then
          (* A key collision with a mismatched demand is indistinguishable
             from a manually planted or damaged entry: corrupt. *)
          miss Corrupt
        else begin
          let stored_cost = meta.m_cost and stored_blocks = meta.m_blocks in
          let scaled = meta.m_size <> coll.Collective.size in
          let schedules =
            if scaled then
              let f = coll.Collective.size /. meta.m_size in
              List.map (fun s -> Schedule.scale s f) schedules
            else schedules
          in
          (* Every hit is re-verified against the live topology model: a
             stale or hand-planted entry must prove itself before it is
             allowed to replace a fresh solve. *)
          match Validate.validate topo coll schedules with
          | Error _ -> miss Invalid
          | exception _ -> miss Invalid
          | Ok () ->
              let time = simulate ~blocks topo schedules in
              (* Compare against the stored cost at the fidelity it was
                 computed at: a caller probing with a different [blocks] must
                 not demote (or rehabilitate) an entry just because coarser
                 pipelining simulates slower — that is fidelity drift, not
                 schedule drift. *)
              let comparable_time =
                if blocks = stored_blocks then time
                else simulate ~blocks:stored_blocks topo schedules
              in
              if (not scaled) && comparable_time > stored_cost *. (1.0 +. 1e-6)
              then
                (* The entry simulates slower than advertised (simulator or
                   link-model drift the fingerprint could not see): let a
                   fresh solve compete instead of silently serving it. *)
                miss Slower
              else begin
                Counters.bump "registry.hits";
                Hit
                  {
                    schedules;
                    time;
                    stored_cost;
                    stored_blocks;
                    chosen = meta.m_chosen;
                    scaled;
                    hit_key = k;
                  }
              end
        end

let lookup t ?blocks topo coll =
  match probe t ?blocks topo coll with Hit h -> Some h | Miss _ -> None

(* --- introspection (read-only; never mutates the store) ----------------- *)

let keys t =
  Array.to_list (try Sys.readdir t.root with Sys_error _ -> [||])
  |> List.filter_map (fun f ->
         if Filename.check_suffix f ".json" then
           Some (Filename.chop_suffix f ".json")
         else None)
  |> List.sort compare

let load t k =
  let path = path_of t k in
  if not (Sys.file_exists path) then Error "no such entry"
  else parse_entry ~key:k path

type verdict =
  | Entry_ok of { simulated : float }
  | Entry_unverified of meta
  | Entry_corrupt of string
  | Entry_invalid of { meta : meta; error : string }
  | Entry_slower of { meta : meta; simulated : float }

let verify_entry t ?topo k =
  match load t k with
  | Error m -> Entry_corrupt m
  | Ok (meta, schedules) -> (
      match topo with
      | Some topo when Topology.fingerprint topo = meta.m_fingerprint -> (
          match
            let coll =
              Collective.make ~root:meta.m_root ~peer:meta.m_peer
                (Collective.kind_of_name meta.m_kind)
                ~n:(Topology.num_gpus topo) ~size:meta.m_size
            in
            Validate.validate topo coll schedules
          with
          | exception e -> Entry_invalid { meta; error = Printexc.to_string e }
          | Error e -> Entry_invalid { meta; error = e }
          | Ok () ->
              (* Re-simulate at the entry's store-time fidelity so the
                 comparison is like-for-like with the stored cost. *)
              let simulated = simulate ~blocks:meta.m_blocks topo schedules in
              if simulated > meta.m_cost *. (1.0 +. 1e-6) then
                Entry_slower { meta; simulated }
              else Entry_ok { simulated })
      | _ -> Entry_unverified meta)

let length t =
  Array.fold_left
    (fun acc f -> if Filename.check_suffix f ".json" then acc + 1 else acc)
    0
    (try Sys.readdir t.root with Sys_error _ -> [||])
