(** Persistent on-disk schedule registry.

    Synthesized schedules are reusable artifacts: any job that shares
    (topology structure, collective, size bucket) can replay one instead
    of re-synthesizing.  The registry is a directory of JSON entries,
    content-addressed by
    {!Syccl_topology.Topology.fingerprint} × collective (kind, root, peer)
    × power-of-two size bucket × {!Syccl_sim.Schedule.schema_version}.

    Safety properties:
    - {e writes are atomic}: entries are written to a temp file in the
      registry directory and renamed into place, so concurrent writers
      (two pool tasks storing the same key, two processes) each leave a
      complete, valid entry — last rename wins;
    - {e loads are corruption-tolerant}: an unreadable, truncated,
      malformed or wrong-schema entry is a counted miss
      (["registry.corrupt"]), never an error;
    - {e hits are re-verified}: every hit is re-validated with
      {!Syccl_sim.Validate.validate} and re-simulated against the live
      α-β model; an entry that fails validation (["registry.invalid"]) or
      simulates slower than its stored cost (["registry.slower"]) is
      demoted to a miss, so a stale entry can never beat a fresh solve
      silently.

    A hit whose stored size differs from the requested size (same bucket)
    is rescaled with {!Syccl_sim.Schedule.scale} before verification.
    Activity is published through {!Syccl_util.Counters} as
    ["registry.hits"], ["registry.misses"], ["registry.stores"],
    ["registry.corrupt"], ["registry.invalid"], ["registry.slower"]. *)

type t

val open_dir : string -> t
(** Open (creating it and missing parents if needed) a registry rooted at
    the given directory.  Raises [Sys_error]/[Unix.Unix_error] only when
    the directory cannot be created at all. *)

val dir : t -> string

val from_env : unit -> t option
(** The registry named by the [SYCCL_REGISTRY] environment variable, if
    set and non-empty. *)

val key : Syccl_topology.Topology.t -> Syccl_collective.Collective.t -> string
(** The content address: hex digest over (topology fingerprint, collective
    kind/root/peer, size bucket, schedule schema version). *)

val size_bucket : float -> int
(** The power-of-two bucket the key quantizes size into:
    [floor (log2 size)], computed exactly via [Float.frexp] (so an exact
    power of two 2{^k} is bucket [k] and [Float.pred 2.0] is bucket 0, with
    no rounding nudge).  Sub-1.0 sizes land in negative buckets;
    non-positive or NaN sizes (impossible through
    {!Syccl_collective.Collective.make}) get [min_int], colliding with no
    real size. *)

type hit = {
  schedules : Syccl_sim.Schedule.t list;  (** one per collective phase *)
  time : float;  (** freshly re-simulated cost, seconds *)
  stored_cost : float;  (** cost recorded when the entry was stored *)
  stored_blocks : int;
      (** simulator fidelity [stored_cost] was computed at (8 for legacy
          entries written before the field existed) *)
  chosen : string;  (** winning-combination description, as stored *)
  scaled : bool;  (** entry was rescaled from a different size in-bucket *)
  hit_key : string;
}

val lookup :
  t -> ?blocks:int -> Syccl_topology.Topology.t ->
  Syccl_collective.Collective.t -> hit option
(** Probe, verify, and return a servable hit.  [None] covers absent,
    corrupt, invalid and cost-regressed entries (each separately
    counted).  [blocks] is the simulator fidelity used for the hit's
    re-simulated [time] (default 8, matching
    {!Syccl.Synthesizer.default_config}).  The slower-than-stored
    demotion always compares at the entry's {e store-time} fidelity
    ([stored_blocks]), so probing an entry at a different [blocks] can
    neither spuriously demote it nor spuriously serve it. *)

val store :
  t -> Syccl_topology.Topology.t -> Syccl_collective.Collective.t ->
  ?blocks:int -> cost:float -> chosen:string -> Syccl_sim.Schedule.t list ->
  unit
(** Atomically persist a schedule set under the collective's key,
    replacing any previous entry.  [blocks] (default 8) must be the
    simulator fidelity [cost] was computed at; it is persisted so later
    lookups compare like-for-like.  Callers are expected to store only
    full-quality (non-degraded, non-fast-only) outcomes — the registry
    does not second-guess that policy, it only verifies on the way out. *)

val length : t -> int
(** Number of entry files currently present (corrupt ones included). *)
