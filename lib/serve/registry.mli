(** Persistent on-disk schedule registry, sharded for fleet scale.

    Synthesized schedules are reusable artifacts: any job that shares
    (topology structure, collective, size bucket) can replay one instead
    of re-synthesizing.  The registry is a directory of JSON entries,
    content-addressed by
    {!Syccl_topology.Topology.fingerprint} × collective (kind, root, peer)
    × power-of-two size bucket × {!Syccl_sim.Schedule.schema_version}.

    {b Layout (v2).}  Entries live under 256 shard directories named by
    the first two hex characters of the entry key (git-object style), so
    concurrent writers from many pool tasks and processes spread their
    atomic renames across directories instead of contending on one.  A
    [MANIFEST.json] at the root records the layout and schema versions.
    The v1 layout was a flat directory of [<key>.json] files; reads fall
    back to the flat path transparently, and {!compact}/{!migrate} move
    stragglers into their shards.

    Safety properties:
    - {e writes are atomic}: entries are written to a temp file inside
      their shard directory and renamed into place, so concurrent writers
      (two pool tasks storing the same key, two processes) each leave a
      complete, valid entry — last rename wins;
    - {e loads are corruption-tolerant}: an unreadable, truncated,
      malformed or wrong-schema entry is a counted miss
      (["registry.corrupt"]), never an error;
    - {e hits are re-verified}: every hit — exact, rescaled, transported
      or cross-bucket — is re-validated with
      {!Syccl_sim.Validate.validate} and re-simulated against the live
      α-β model; an entry that fails validation (["registry.invalid"]) or
      simulates slower than its stored cost (["registry.slower"]) is
      demoted to a miss, so a stale entry can never beat a fresh solve
      silently.

    {b Near-miss serving.}  When the exact key is absent, the probe
    exploits the paper's symmetry machinery at serving time: entries for
    the same (fingerprint, kind, bucket) at a {e symmetric} (root, peer)
    are transported through {!Syccl_sim.Transport.schedules} along an
    element of {!Syccl_topology.Topology.stabilizer} (validity and cost
    preserved — the automorphism-transport fuzz law), and same-demand
    entries one bucket away are rescaled with
    {!Syccl_sim.Schedule.scale}.  Every candidate is re-validated, α-β
    re-simulated, and must beat the precomputed fallback ladder
    ({!Syccl_baselines.Fallback.schedule}) before it may serve; the
    fastest survivor wins and its {e source} entry key is reported as
    [hit_key].

    Activity is published through {!Syccl_util.Counters} as
    ["registry.hits"] (plus ["registry.hit.transported"] /
    ["registry.hit.scaled_cross"] for near-miss hits),
    ["registry.stores"], the per-reason miss family
    ["registry.miss.absent"|"corrupt"|"invalid"|"slower"|
    "transport_rejected"], the aggregate ["registry.misses"], and the
    legacy reason names ["registry.corrupt"], ["registry.invalid"],
    ["registry.slower"] (kept for compatibility). *)

type t

val open_dir : string -> t
(** Open (creating it, missing parents, and the manifest if needed) a
    registry rooted at the given directory.  Raises
    [Sys_error]/[Unix.Unix_error] when the directory cannot be created at
    all, and [Failure] when the on-disk manifest declares a layout newer
    than this build reads. *)

val dir : t -> string

val from_env : unit -> t option
(** The registry named by the [SYCCL_REGISTRY] environment variable, if
    set and non-empty. *)

(** {1 Layout} *)

val layout_version : int
(** The directory layout this build writes (2: sharded). *)

val shard_of_key : string -> string
(** The shard directory (relative to {!dir}) an entry key lives in: its
    first two hex characters. *)

val manifest : t -> (int, string) result
(** The layout version recorded in the on-disk [MANIFEST.json], or the
    reason it could not be read. *)

type layout_stats = {
  sharded : int;  (** entries living in their shard directory *)
  flat : int;  (** legacy flat-layout entries awaiting {!migrate} *)
  shards_in_use : int;  (** shard directories holding at least one entry *)
}

val layout_stats : t -> layout_stats

(** {1 Addressing} *)

val key : Syccl_topology.Topology.t -> Syccl_collective.Collective.t -> string
(** The content address: hex digest over (topology fingerprint, collective
    kind/root/peer, size bucket, schedule schema version).  The fingerprint
    folds in the topology's fault class
    ({!Syccl_topology.Topology.puncture}), so a degraded topology's entries
    are keyed apart from the healthy topology's — one store, one namespace
    per (structure × fault-class). *)

val key_of :
  fingerprint:string -> kind:string -> root:int -> peer:int -> bucket:int ->
  string
(** {!key} from its raw components — how the near-miss probe addresses
    sibling entries (a symmetric root, an adjacent bucket) without a
    collective in hand. *)

val size_bucket : float -> int
(** The power-of-two bucket the key quantizes size into:
    [floor (log2 size)], computed exactly via [Float.frexp] (so an exact
    power of two 2{^k} is bucket [k] and [Float.pred 2.0] is bucket 0, with
    no rounding nudge).  Sub-1.0 sizes land in negative buckets;
    non-positive or NaN sizes (impossible through
    {!Syccl_collective.Collective.make}) get [min_int], colliding with no
    real size. *)

(** {1 Serving} *)

type via =
  | Exact  (** entry stored for this exact demand and size *)
  | Rescaled  (** rescaled from a different size in the same bucket *)
  | Transported
      (** transported from a symmetric (root, peer) entry along a
          stabilizer automorphism *)
  | Scaled_cross  (** rescaled from an adjacent size bucket *)

val via_name : via -> string
(** ["exact"], ["scaled"], ["transported"], ["scaled_cross"]. *)

type hit = {
  schedules : Syccl_sim.Schedule.t list;  (** one per collective phase *)
  time : float;  (** freshly re-simulated cost, seconds *)
  stored_cost : float;  (** cost recorded when the entry was stored *)
  stored_blocks : int;
      (** simulator fidelity [stored_cost] was computed at (8 for legacy
          entries written before the field existed) *)
  chosen : string;  (** winning-combination description, as stored *)
  via : via;  (** how the entry reached the request's demand *)
  hit_key : string;
      (** the {e source} entry key — for transported and cross-bucket hits
          this is the entry the schedules came from, not the request's own
          key, so audit trails carry reuse provenance *)
}

type miss_reason =
  | Absent  (** no entry file under the key and nothing to transport *)
  | Corrupt
      (** unreadable, malformed, wrong-schema, or demand-mismatched entry *)
  | Invalid  (** parsed, but failed {!Syccl_sim.Validate.validate} *)
  | Slower  (** valid, but re-simulates slower than its stored cost *)
  | Transport_rejected
      (** symmetric or adjacent-bucket candidates existed, but every one
          was rejected by transport, re-validation, or the fallback-ladder
          guard *)

val miss_reason_name : miss_reason -> string
(** ["absent"], ["corrupt"], ["invalid"], ["slower"],
    ["transport_rejected"] — the suffixes of the ["registry.miss.*"]
    counters and the audit-trail probe field. *)

type probe_result = Hit of hit | Miss of miss_reason

val probe :
  t -> ?blocks:int -> Syccl_topology.Topology.t ->
  Syccl_collective.Collective.t -> probe_result
(** Probe, verify, and classify.  The exact key is tried first; on an
    absent exact entry the near-miss pass searches symmetric and
    adjacent-bucket candidates (see the module preamble).  A miss carries
    {e why} it missed, so the serving layer can audit cold misses
    separately from store corruption and from rejected transports.
    [blocks] is the simulator fidelity used for the hit's re-simulated
    [time] (default 8, matching {!Syccl.Synthesizer.default_config}).
    The slower-than-stored demotion always compares at the entry's
    {e store-time} fidelity ([stored_blocks]), so probing an entry at a
    different [blocks] can neither spuriously demote it nor spuriously
    serve it. *)

val lookup :
  t -> ?blocks:int -> Syccl_topology.Topology.t ->
  Syccl_collective.Collective.t -> hit option
(** [probe] with the miss reason erased: [None] covers absent, corrupt,
    invalid, cost-regressed and transport-rejected entries (each
    separately counted). *)

val store :
  t -> Syccl_topology.Topology.t -> Syccl_collective.Collective.t ->
  ?blocks:int -> cost:float -> chosen:string -> Syccl_sim.Schedule.t list ->
  unit
(** Atomically persist a schedule set under the collective's key in its
    shard, replacing any previous entry.  [blocks] (default 8) must be the
    simulator fidelity [cost] was computed at; it is persisted so later
    lookups compare like-for-like.  Callers are expected to store only
    full-quality (non-degraded, non-fast-only) outcomes — the registry
    does not second-guess that policy, it only verifies on the way out. *)

val length : t -> int
(** Number of distinct entry keys currently present (corrupt ones
    included), across shards and the legacy flat layout. *)

(** {1 Introspection}

    Read-only views over the on-disk store for [syccl registry
    stats|ls|inspect|verify].  Nothing here ever writes, renames or
    deletes an entry — a verify pass over a damaged store must leave the
    evidence in place. *)

type meta = {
  m_key : string;  (** entry key (file name without [.json]) *)
  m_fingerprint : string;
  m_faults : string;
      (** canonical {!Syccl_topology.Fault.encode} string of the fault set
          the entry was synthesized under ([""] for healthy topologies and
          entries predating the field) *)
  m_kind : string;  (** collective kind, as stored *)
  m_root : int;
  m_peer : int;
  m_size : float;  (** exact size the entry was synthesized for *)
  m_cost : float;  (** stored simulated cost, seconds *)
  m_blocks : int;  (** simulator fidelity of [m_cost] *)
  m_chosen : string;
  m_schema : int;
  m_bytes : int;  (** entry file size in bytes *)
}

val keys : t -> string list
(** All entry keys currently on disk, sorted, across shards and the
    legacy flat layout.  Raises [Sys_error] when an existing shard
    directory cannot be read — an operator problem the caller must see,
    not an empty shard. *)

val load :
  t -> string -> (meta * Syccl_sim.Schedule.t list, string) result
(** Parse one entry by key {e without} validating its schedules against
    any topology.  [Error] is the corruption message.  Does not touch any
    counter — introspection must not pollute serving metrics. *)

type verdict =
  | Entry_ok of { simulated : float }
      (** validated and re-simulated no slower than stored (at store-time
          fidelity) *)
  | Entry_unverified of meta
      (** parses cleanly, but no topology matching its fingerprint was
          supplied, so validation/simulation could not run *)
  | Entry_corrupt of string
  | Entry_invalid of { meta : meta; error : string }
  | Entry_slower of { meta : meta; simulated : float }

val verify_entry :
  t -> ?topo:Syccl_topology.Topology.t -> string -> verdict
(** Re-verify one entry by key: parse (corruption and schema drift are
    detectable standalone), and — when [topo]'s fingerprint matches the
    entry's — re-validate with {!Syccl_sim.Validate.validate} and
    re-simulate at the stored fidelity.  Never mutates the store and
    never touches the serving counters. *)

(** {1 Maintenance}

    The explicitly-invoked offline passes ([syccl registry compact]) and
    test teardown.  These are the only operations that delete. *)

val migrate : t -> int
(** Move legacy flat-layout entries into their shard directories (a
    sharded entry under the same key shadows and replaces the flat one).
    Returns the number of flat entries resolved.  Idempotent. *)

type compact_stats = {
  migrated : int;  (** flat entries moved into shards *)
  corrupt_removed : int;  (** unparseable entries deleted *)
  dominated_removed : int;
      (** entries deleted because a cheaper same-class entry serves their
          demand via transport (healthy rooted collectives only) *)
  evicted : int;  (** entries deleted by LRU to meet the size limits *)
  kept : int;  (** entries remaining *)
  kept_bytes : int;  (** bytes remaining *)
}

val compact :
  t -> ?max_entries:int -> ?max_bytes:int ->
  ?last_used:(string -> float option) -> unit -> compact_stats
(** Offline compaction: migrate stragglers off the flat layout, delete
    corrupt entries, prune dominated entries (same healthy
    (fingerprint, kind, bucket, size, fidelity) class, differing only in
    root — the transport probe serves them from the cheapest survivor),
    then evict least-recently-used entries until [max_entries] /
    [max_bytes] are met.  [last_used] maps an entry key to its last hit
    timestamp (callers feed it from the audit trail); entries it does not
    know fall back to file mtime.  Rewrites the manifest. *)

val remove_entry : t -> string -> bool
(** Delete one entry by key (shard and legacy flat locations).  [false]
    when no file existed.  Maintenance only — serving never deletes. *)

val destroy : t -> unit
(** Recursively delete the registry directory — entries, shards, manifest
    and temp files.  Test/teardown helper; best-effort, never raises. *)
