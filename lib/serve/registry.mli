(** Persistent on-disk schedule registry.

    Synthesized schedules are reusable artifacts: any job that shares
    (topology structure, collective, size bucket) can replay one instead
    of re-synthesizing.  The registry is a directory of JSON entries,
    content-addressed by
    {!Syccl_topology.Topology.fingerprint} × collective (kind, root, peer)
    × power-of-two size bucket × {!Syccl_sim.Schedule.schema_version}.

    Safety properties:
    - {e writes are atomic}: entries are written to a temp file in the
      registry directory and renamed into place, so concurrent writers
      (two pool tasks storing the same key, two processes) each leave a
      complete, valid entry — last rename wins;
    - {e loads are corruption-tolerant}: an unreadable, truncated,
      malformed or wrong-schema entry is a counted miss
      (["registry.corrupt"]), never an error;
    - {e hits are re-verified}: every hit is re-validated with
      {!Syccl_sim.Validate.validate} and re-simulated against the live
      α-β model; an entry that fails validation (["registry.invalid"]) or
      simulates slower than its stored cost (["registry.slower"]) is
      demoted to a miss, so a stale entry can never beat a fresh solve
      silently.

    A hit whose stored size differs from the requested size (same bucket)
    is rescaled with {!Syccl_sim.Schedule.scale} before verification.
    Activity is published through {!Syccl_util.Counters} as
    ["registry.hits"], ["registry.stores"], the per-reason miss family
    ["registry.miss.absent"|"corrupt"|"invalid"|"slower"], the aggregate
    ["registry.misses"], and the legacy reason names ["registry.corrupt"],
    ["registry.invalid"], ["registry.slower"] (kept for compatibility). *)

type t

val open_dir : string -> t
(** Open (creating it and missing parents if needed) a registry rooted at
    the given directory.  Raises [Sys_error]/[Unix.Unix_error] only when
    the directory cannot be created at all. *)

val dir : t -> string

val from_env : unit -> t option
(** The registry named by the [SYCCL_REGISTRY] environment variable, if
    set and non-empty. *)

val key : Syccl_topology.Topology.t -> Syccl_collective.Collective.t -> string
(** The content address: hex digest over (topology fingerprint, collective
    kind/root/peer, size bucket, schedule schema version).  The fingerprint
    folds in the topology's fault class
    ({!Syccl_topology.Topology.puncture}), so a degraded topology's entries
    are keyed apart from the healthy topology's — one store, one namespace
    per (structure × fault-class). *)

val size_bucket : float -> int
(** The power-of-two bucket the key quantizes size into:
    [floor (log2 size)], computed exactly via [Float.frexp] (so an exact
    power of two 2{^k} is bucket [k] and [Float.pred 2.0] is bucket 0, with
    no rounding nudge).  Sub-1.0 sizes land in negative buckets;
    non-positive or NaN sizes (impossible through
    {!Syccl_collective.Collective.make}) get [min_int], colliding with no
    real size. *)

type hit = {
  schedules : Syccl_sim.Schedule.t list;  (** one per collective phase *)
  time : float;  (** freshly re-simulated cost, seconds *)
  stored_cost : float;  (** cost recorded when the entry was stored *)
  stored_blocks : int;
      (** simulator fidelity [stored_cost] was computed at (8 for legacy
          entries written before the field existed) *)
  chosen : string;  (** winning-combination description, as stored *)
  scaled : bool;  (** entry was rescaled from a different size in-bucket *)
  hit_key : string;
}

type miss_reason =
  | Absent  (** no entry file under the key (a cold miss) *)
  | Corrupt
      (** unreadable, malformed, wrong-schema, or demand-mismatched entry *)
  | Invalid  (** parsed, but failed {!Syccl_sim.Validate.validate} *)
  | Slower  (** valid, but re-simulates slower than its stored cost *)

val miss_reason_name : miss_reason -> string
(** ["absent"], ["corrupt"], ["invalid"], ["slower"] — the suffixes of the
    ["registry.miss.*"] counters and the audit-trail probe field. *)

type probe_result = Hit of hit | Miss of miss_reason

val probe :
  t -> ?blocks:int -> Syccl_topology.Topology.t ->
  Syccl_collective.Collective.t -> probe_result
(** Probe, verify, and classify.  A miss carries {e why} it missed, so the
    serving layer can audit cold misses separately from store corruption.
    [blocks] is the simulator fidelity used for the hit's re-simulated
    [time] (default 8, matching {!Syccl.Synthesizer.default_config}).
    The slower-than-stored demotion always compares at the entry's
    {e store-time} fidelity ([stored_blocks]), so probing an entry at a
    different [blocks] can neither spuriously demote it nor spuriously
    serve it. *)

val lookup :
  t -> ?blocks:int -> Syccl_topology.Topology.t ->
  Syccl_collective.Collective.t -> hit option
(** [probe] with the miss reason erased: [None] covers absent, corrupt,
    invalid and cost-regressed entries (each separately counted). *)

val store :
  t -> Syccl_topology.Topology.t -> Syccl_collective.Collective.t ->
  ?blocks:int -> cost:float -> chosen:string -> Syccl_sim.Schedule.t list ->
  unit
(** Atomically persist a schedule set under the collective's key,
    replacing any previous entry.  [blocks] (default 8) must be the
    simulator fidelity [cost] was computed at; it is persisted so later
    lookups compare like-for-like.  Callers are expected to store only
    full-quality (non-degraded, non-fast-only) outcomes — the registry
    does not second-guess that policy, it only verifies on the way out. *)

val length : t -> int
(** Number of entry files currently present (corrupt ones included). *)

(** {1 Introspection}

    Read-only views over the on-disk store for [syccl registry
    stats|ls|inspect|verify].  Nothing here ever writes, renames or
    deletes an entry — a verify pass over a damaged store must leave the
    evidence in place. *)

type meta = {
  m_key : string;  (** entry key (file name without [.json]) *)
  m_fingerprint : string;
  m_faults : string;
      (** canonical {!Syccl_topology.Fault.encode} string of the fault set
          the entry was synthesized under ([""] for healthy topologies and
          entries predating the field) *)
  m_kind : string;  (** collective kind, as stored *)
  m_root : int;
  m_peer : int;
  m_size : float;  (** exact size the entry was synthesized for *)
  m_cost : float;  (** stored simulated cost, seconds *)
  m_blocks : int;  (** simulator fidelity of [m_cost] *)
  m_chosen : string;
  m_schema : int;
  m_bytes : int;  (** entry file size in bytes *)
}

val keys : t -> string list
(** All entry keys currently on disk, sorted. *)

val load :
  t -> string -> (meta * Syccl_sim.Schedule.t list, string) result
(** Parse one entry by key {e without} validating its schedules against
    any topology.  [Error] is the corruption message.  Does not touch any
    counter — introspection must not pollute serving metrics. *)

type verdict =
  | Entry_ok of { simulated : float }
      (** validated and re-simulated no slower than stored (at store-time
          fidelity) *)
  | Entry_unverified of meta
      (** parses cleanly, but no topology matching its fingerprint was
          supplied, so validation/simulation could not run *)
  | Entry_corrupt of string
  | Entry_invalid of { meta : meta; error : string }
  | Entry_slower of { meta : meta; simulated : float }

val verify_entry :
  t -> ?topo:Syccl_topology.Topology.t -> string -> verdict
(** Re-verify one entry by key: parse (corruption and schema drift are
    detectable standalone), and — when [topo]'s fingerprint matches the
    entry's — re-validate with {!Syccl_sim.Validate.validate} and
    re-simulate at the stored fidelity.  Never mutates the store and
    never touches the serving counters. *)
