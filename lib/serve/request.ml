module Topology = Syccl_topology.Topology
module Fault = Syccl_topology.Fault
module Builders = Syccl_topology.Builders
module Collective = Syccl_collective.Collective
module Json = Syccl_util.Json
module Synthesizer = Syccl.Synthesizer

type t = {
  topo_name : string;
  topo : Topology.t;
  coll : Collective.t;
  config : Synthesizer.config;
}

(* Moved here from the CLI so every front-end (synth/sweep/batch/warm,
   tests, benches) resolves the same names. *)
let topo_of_name name =
  match name with
  | "a100-16" -> Builders.a100 ~servers:2
  | "a100-32" -> Builders.a100 ~servers:4
  | "h800-64" -> Builders.h800 ~servers:8
  | "h800-512" -> Builders.h800 ~servers:64
  | "fig3" -> Builders.fig3 ()
  | "fig19" -> Builders.fig19 ()
  | "fig20" -> Builders.fig20 ()
  | s -> (
      (* "multirail:<servers>x<gpus>" builds a generic H800-like cluster. *)
      match String.split_on_char ':' s with
      | [ "multirail"; dims ] -> (
          match String.split_on_char 'x' dims with
          | [ a; b ] ->
              Builders.h800_scaled ~servers:(int_of_string a)
                ~gpus_per_server:(int_of_string b)
          | _ -> failwith "expected multirail:<servers>x<gpus>")
      | _ ->
          failwith
            (Printf.sprintf
               "unknown topology %s (try a100-16, a100-32, h800-64, h800-512, \
                fig3, fig19, fig20, multirail:SxG)"
               s))

let coll_of_name ?root ?peer name ~n ~size =
  let kind =
    match String.lowercase_ascii name with
    | "sendrecv" -> Collective.SendRecv
    | "allgather" | "ag" -> Collective.AllGather
    | "alltoall" | "a2a" -> Collective.AllToAll
    | "reducescatter" | "rs" -> Collective.ReduceScatter
    | "allreduce" | "ar" -> Collective.AllReduce
    | "broadcast" | "bcast" -> Collective.Broadcast
    | "reduce" -> Collective.Reduce
    | "scatter" -> Collective.Scatter
    | "gather" -> Collective.Gather
    | s -> failwith ("unknown collective " ^ s)
  in
  Collective.make ?root ?peer kind ~n ~size

let make ?(config = Synthesizer.default_config) ?root ?peer
    ?(faults = Fault.empty) ~topology ~collective ~size () =
  let topo = topo_of_name topology in
  let topo = if Fault.is_empty faults then topo else Topology.puncture topo faults in
  let coll =
    coll_of_name ?root ?peer collective ~n:(Topology.num_gpus topo) ~size
  in
  { topo_name = topology; topo; coll; config }

let faults t = Topology.faults t.topo

(* The request key covers every input the outcome depends on.  Structural
   topology identity (fingerprint — which folds in the fault set of a
   punctured topology) rather than the name, the exact demand, and the
   schedule-affecting config knobs; [domains] is excluded because
   synthesis is deterministic in pool width, so requests differing only in
   parallelism are the same work. *)
let key t =
  let c = t.config in
  let canon =
    Printf.sprintf "syccl-request-v1;%s;%s;root=%d;peer=%d;size=%h;%b;%h;%h;%h;%h;%d;%d;%h;%d;%d;%d"
      (Topology.fingerprint t.topo)
      (Collective.kind_name t.coll.Collective.kind)
      t.coll.Collective.root t.coll.Collective.peer t.coll.Collective.size
      c.Synthesizer.fast_only
      (match c.Synthesizer.deadline with None -> -1.0 | Some d -> d)
      c.Synthesizer.e1 c.Synthesizer.e2 c.Synthesizer.r1 c.Synthesizer.r2
      c.Synthesizer.milp_var_budget c.Synthesizer.milp_time_limit
      c.Synthesizer.milp_node_limit c.Synthesizer.max_shapes
      c.Synthesizer.max_combos
  in
  Digest.to_hex (Digest.string canon)

let to_json t =
  let c = t.config in
  Json.Obj
    [
      ("schema_version", Json.Num 1.0);
      ("topology", Json.Str t.topo_name);
      ( "collective",
        Json.Str
          (String.lowercase_ascii (Collective.kind_name t.coll.Collective.kind))
      );
      ("size", Json.Num t.coll.Collective.size);
      ("root", Json.Num (float_of_int t.coll.Collective.root));
      ("peer", Json.Num (float_of_int t.coll.Collective.peer));
      ( "faults",
        match Fault.encode (faults t) with
        | "" -> Json.Null
        | s -> Json.Str s );
      ("fast", Json.Bool c.Synthesizer.fast_only);
      ("domains", Json.Num (float_of_int c.Synthesizer.domains));
      ( "deadline",
        match c.Synthesizer.deadline with
        | None -> Json.Null
        | Some d -> Json.Num d );
    ]

let of_json ?(defaults = Synthesizer.default_config) j =
  let fields =
    match j with
    | Json.Obj fields -> fields
    | _ -> raise (Json.Parse_error "request must be a JSON object")
  in
  let opt name = List.assoc_opt name fields in
  let required name =
    match opt name with
    | Some v -> v
    | None -> raise (Json.Parse_error ("request is missing \"" ^ name ^ "\""))
  in
  (match opt "schema_version" with
  | None | Some (Json.Num 1.0) -> ()
  | Some v ->
      raise
        (Json.Parse_error
           ("unsupported request schema_version " ^ Json.to_string v)));
  let topology = Json.to_str (required "topology") in
  let collective = Json.to_str (required "collective") in
  let size = Json.to_float (required "size") in
  let bool_field name default =
    match opt name with
    | None | Some Json.Null -> default
    | Some (Json.Bool b) -> b
    | Some _ -> raise (Json.Parse_error ("\"" ^ name ^ "\" must be a boolean"))
  in
  let int_field name default =
    match opt name with
    | None | Some Json.Null -> default
    | Some v -> Json.to_int v
  in
  let fast_only = bool_field "fast" defaults.Synthesizer.fast_only in
  let domains = int_field "domains" defaults.Synthesizer.domains in
  let deadline =
    match opt "deadline" with
    | None -> defaults.Synthesizer.deadline
    | Some Json.Null -> None
    | Some v -> Some (Json.to_float v)
  in
  let root = int_field "root" 0 and peer = int_field "peer" 0 in
  let faults =
    match opt "faults" with
    | None | Some Json.Null -> Fault.empty
    | Some v -> Fault.decode (Json.to_str v)
  in
  let config = { defaults with Synthesizer.fast_only; domains; deadline } in
  make ~config ~root ~peer ~faults ~topology ~collective ~size ()

let pp fmt t =
  Format.fprintf fmt "%a on %s%s%s" Collective.pp t.coll t.topo_name
    (match Fault.encode (faults t) with
    | "" -> ""
    | s -> " faults=" ^ s)
    (if t.config.Synthesizer.fast_only then " (fast)" else "")
