(** Synthesis requests: the one front door to the synthesizer.

    A request names everything an outcome depends on — topology (identified
    structurally by {!Syccl_topology.Topology.fingerprint}), collective,
    size, synthesis config, deadline — and has a canonical JSON encoding,
    so CLI subcommands, batch JSONL files, tests and benches all build the
    same value and the pipeline ({!Plan}, {!Serve}) can key caches and
    dedupe work on its digest. *)

type t = {
  topo_name : string;  (** the name the topology was requested under *)
  topo : Syccl_topology.Topology.t;
  coll : Syccl_collective.Collective.t;
  config : Syccl.Synthesizer.config;
      (** full synthesis config; [config.deadline] is the request deadline *)
}

val topo_of_name : string -> Syccl_topology.Topology.t
(** Resolve a topology name ([a100-16], [h800-64], [fig3],
    [multirail:SxG], ...).  Raises [Failure] on an unknown name.  This is
    the resolver the CLI historically owned; it lives here so every
    front-end accepts the same names. *)

val coll_of_name :
  ?root:int -> ?peer:int -> string -> n:int -> size:float ->
  Syccl_collective.Collective.t
(** Resolve a collective name ([allgather]/[ag], [alltoall]/[a2a], ...). *)

val make :
  ?config:Syccl.Synthesizer.config ->
  ?root:int ->
  ?peer:int ->
  ?faults:Syccl_topology.Fault.t ->
  topology:string ->
  collective:string ->
  size:float ->
  unit ->
  t
(** Build a request from names; [config] defaults to
    {!Syccl.Synthesizer.default_config}.  A non-empty [faults] set
    punctures the named topology ({!Syccl_topology.Topology.puncture}), so
    the request targets the surviving hardware and its key separates from
    the healthy topology's. *)

val faults : t -> Syccl_topology.Fault.t
(** The fault set the request's topology carries ({!Syccl_topology.Fault.empty}
    when healthy). *)

val key : t -> string
(** Canonical digest of everything that determines the outcome: topology
    fingerprint, collective (kind, root, peer), exact size, and the
    schedule-affecting config knobs (fast_only, deadline, search/epoch
    parameters).  [config.domains] is excluded — synthesis is
    deterministic in pool width.  Equal keys ⇒ identical outcomes, so
    batch execution dedupes on it. *)

val to_json : t -> Syccl_util.Json.t
(** Canonical encoding: fixed field order, defaults written explicitly. *)

val of_json : ?defaults:Syccl.Synthesizer.config -> Syccl_util.Json.t -> t
(** Parse one request (e.g. one [syccl batch] JSONL line).  Required
    fields: ["topology"], ["collective"], ["size"]; optional: ["fast"],
    ["domains"], ["deadline"], ["root"], ["peer"], ["faults"] (a canonical
    {!Syccl_topology.Fault.encode} string; falling back to
    [defaults], which itself defaults to
    {!Syccl.Synthesizer.default_config}).  Raises
    {!Syccl_util.Json.Parse_error} on malformed input and [Failure] on
    unknown topology/collective names. *)

val pp : Format.formatter -> t -> unit
