module Topology = Syccl_topology.Topology
module Collective = Syccl_collective.Collective
module Json = Syccl_util.Json
module Counters = Syccl_util.Counters
module Synthesizer = Syccl.Synthesizer

type source =
  | From_registry of {
      hit_key : string;
      via : Registry.via;
      stored_cost : float;
    }
  | From_synthesis

type outcome = {
  request : Request.t;
  source : source;
  synth : Synthesizer.outcome;
  lower : (unit, string) result option;
      (* verdict of the caller's lowering check over the schedules actually
         served (registry hits and degraded rungs included); [None] when no
         check was requested *)
}

let hit_breakdown =
  {
    Synthesizer.search_s = 0.0;
    combine_s = 0.0;
    solve1_s = 0.0;
    solve2_s = 0.0;
    cache_hits = 0;
    cache_misses = 0;
    milp_solves = 0;
    milp_nodes = 0;
    flow_certified = 0;
    registry_hits = 1;
    registry_misses = 0;
  }

let hit_outcome (request : Request.t) (hit : Registry.hit) =
  {
    request;
    source =
      From_registry
        {
          hit_key = hit.Registry.hit_key;
          via = hit.Registry.via;
          stored_cost = hit.Registry.stored_cost;
        };
    synth =
      {
        Synthesizer.schedules = hit.Registry.schedules;
        time = hit.Registry.time;
        busbw =
          Collective.busbw request.Request.coll ~time:hit.Registry.time;
        synth_time = 0.0;
        breakdown = hit_breakdown;
        num_sketches = 0;
        num_combos = 0;
        chosen = hit.Registry.chosen;
        degraded = Synthesizer.Full;
        degrade_reason = None;
      };
    lower = None;
  }

(* Registry write policy: persist only results the registry may later serve
   in place of a full solve — the top ladder rung, with MILP refinement on.
   Fast-only or degraded results would be valid but slower; storing them
   would let a tight deadline today pollute an unconstrained run tomorrow
   (the same rule the in-memory sub-solve memo follows). *)
let storable (request : Request.t) (o : Synthesizer.outcome) =
  o.Synthesizer.degraded = Synthesizer.Full
  && (not request.Request.config.Synthesizer.fast_only)
  && o.Synthesizer.schedules <> []

(* Storing is fail-open like auditing: a registry that cannot persist (full
   disk, revoked credentials, the registry.crash fault point) costs the
   store, never the response. *)
let store_result registry (request : Request.t) (o : Synthesizer.outcome) =
  match registry with
  | Some reg when storable request o -> (
      match
        Registry.store reg request.Request.topo request.Request.coll
          ~blocks:request.Request.config.Synthesizer.blocks
          ~cost:o.Synthesizer.time ~chosen:o.Synthesizer.chosen
          o.Synthesizer.schedules
      with
      | () -> ()
      | exception _ -> Counters.bump "registry.store_errors")
  | _ -> ()

let with_registry_miss registry (o : Synthesizer.outcome) =
  match registry with
  | None -> o
  | Some _ ->
      {
        o with
        Synthesizer.breakdown =
          { o.Synthesizer.breakdown with Synthesizer.registry_misses = 1 };
      }

(* Group synthesis work by (topology structure, config) so each group runs
   through [synthesize_all] — one pipeline invocation with snapshot
   isolation and per-element fault containment.  Groups preserve request
   order; grouping keys on the fingerprint, so two requests that built the
   same cluster under different names still share a sweep. *)
let group_requests requests =
  let groups = ref [] in
  List.iter
    (fun (r : Request.t) ->
      let fp = Topology.fingerprint r.Request.topo in
      match
        List.find_opt
          (fun (fp', cfg, _) -> fp' = fp && cfg = r.Request.config)
          !groups
      with
      | Some (_, _, members) -> members := r :: !members
      | None -> groups := !groups @ [ (fp, r.Request.config, ref [ r ]) ])
    requests;
  List.map (fun (_, cfg, members) -> (cfg, List.rev !members)) !groups

(* One audit record per request element: duplicates share one execution but
   each leaves its own line, so the trail counts traffic, not work. *)
let audit_record ~registry (p : Plan.t) (o : outcome) =
  let r = o.request and s = o.synth in
  let b = s.Synthesizer.breakdown in
  {
    Audit.ts = Syccl_util.Clock.now ();
    key = Request.key r;
    fingerprint = Topology.fingerprint r.Request.topo;
    faults = Syccl_topology.Fault.encode (Request.faults r);
    topology = r.Request.topo_name;
    collective =
      String.lowercase_ascii
        (Collective.kind_name r.Request.coll.Collective.kind);
    size = r.Request.coll.Collective.size;
    plan = Plan.describe p;
    probe = Plan.probe_name p;
    hit_key =
      (match o.source with
      | From_registry { hit_key; _ } -> Some hit_key
      | From_synthesis -> None);
    rung = Synthesizer.level_name s.Synthesizer.degraded;
    degrade_reason = s.Synthesizer.degrade_reason;
    budget_s = r.Request.config.Synthesizer.deadline;
    consumed_s = s.Synthesizer.synth_time;
    time_s = s.Synthesizer.time;
    busbw = s.Synthesizer.busbw;
    stored =
      (match o.source with
      | From_synthesis -> registry <> None && storable r s
      | From_registry _ -> false);
    cache_hits = b.Synthesizer.cache_hits;
    cache_misses = b.Synthesizer.cache_misses;
    milp_solves = b.Synthesizer.milp_solves;
    milp_nodes = b.Synthesizer.milp_nodes;
    flow_certified = b.Synthesizer.flow_certified;
    lowered = o.lower <> None;
    lower_check =
      (match o.lower with
      | None -> None
      | Some (Ok ()) -> Some "ok"
      | Some (Error e) -> Some e);
  }

let run_batch ?registry ?audit ?lower requests =
  (* Dedupe on the request key: equal keys are guaranteed identical
     outcomes (synthesis is deterministic in everything the key covers),
     so each unique request is planned and executed once. *)
  let uniques =
    List.fold_left
      (fun acc r ->
        let k = Request.key r in
        if List.mem_assoc k acc then acc else acc @ [ (k, r) ])
      [] requests
  in
  let plans = List.map (fun (k, r) -> (k, Plan.make ~registry r)) uniques in
  let synth_work =
    List.filter_map
      (fun (k, (p : Plan.t)) ->
        match p.Plan.action with
        | Plan.Serve_hit _ -> None
        | Plan.Synthesize -> Some (k, p.Plan.request))
      plans
  in
  let synthesized =
    List.concat_map
      (fun (config, members) ->
        let topo = (List.hd members : Request.t).Request.topo in
        let colls = List.map (fun (r : Request.t) -> r.Request.coll) members in
        (* synthesize_all substitutes the validated fallback baseline for
           any element whose task dies outside the degradation ladder, so
           a batch element can fail without failing the batch. *)
        let outs = Synthesizer.synthesize_all ~config topo colls in
        List.map2
          (fun (r : Request.t) o ->
            store_result registry r o;
            (Request.key r, { request = r; source = From_synthesis;
                              synth = with_registry_miss registry o;
                              lower = None }))
          members outs)
      (group_requests (List.map snd synth_work))
  in
  (* The lowering check runs over the outcome {e as served} — a registry
     hit or a degraded rung lowers exactly the schedules the caller gets,
     never a fresh synthesis.  One check per unique request; duplicate
     requests share the verdict. *)
  let checked (o : outcome) =
    match lower with
    | None -> o
    | Some f ->
        let verdict =
          match f o.request o.synth with
          | v -> v
          | exception e ->
              Error ("lowering check raised: " ^ Printexc.to_string e)
        in
        Counters.bump "serve.lowered";
        (match verdict with
        | Ok () -> ()
        | Error _ -> Counters.bump "serve.lower_failures");
        { o with lower = Some verdict }
  in
  let by_key =
    List.map
      (fun (k, (p : Plan.t)) ->
        match p.Plan.action with
        | Plan.Serve_hit hit -> (k, checked (hit_outcome p.Plan.request hit))
        | Plan.Synthesize -> (k, checked (List.assoc k synthesized)))
      plans
  in
  let outcomes = List.map (fun r -> List.assoc (Request.key r) by_key) requests in
  (match audit with
  | None -> ()
  | Some sink ->
      Counters.add "serve.requests" (List.length requests);
      List.iter
        (fun (o : outcome) ->
          let p = List.assoc (Request.key o.request) plans in
          Audit.append sink (audit_record ~registry p o))
        outcomes);
  outcomes

let run ?registry ?audit ?lower request =
  match run_batch ?registry ?audit ?lower [ request ] with
  | [ o ] -> o
  | _ -> assert false

let outcome_to_json (o : outcome) =
  let r = o.request in
  let s = o.synth in
  let b = s.Synthesizer.breakdown in
  let int i = Json.Num (float_of_int i) in
  Json.Obj
    [
      ("schema_version", Json.Num 1.0);
      ("topology", Json.Str r.Request.topo_name);
      ( "collective",
        Json.Str
          (String.lowercase_ascii
             (Collective.kind_name r.Request.coll.Collective.kind)) );
      ("size", Json.Num r.Request.coll.Collective.size);
      ( "source",
        Json.Str
          (match o.source with
          | From_registry _ -> "registry"
          | From_synthesis -> "synthesis") );
      ( "key",
        match o.source with
        | From_registry { hit_key; _ } -> Json.Str hit_key
        | From_synthesis -> Json.Null );
      ( "scaled",
        Json.Bool
          (match o.source with
          | From_registry { via = Registry.Rescaled | Registry.Scaled_cross; _ }
            ->
              true
          | From_registry _ | From_synthesis -> false) );
      ( "via",
        match o.source with
        | From_registry { via; _ } -> Json.Str (Registry.via_name via)
        | From_synthesis -> Json.Null );
      ("time_s", Json.Num s.Synthesizer.time);
      ("busbw_gbps", Json.Num s.Synthesizer.busbw);
      ("chosen", Json.Str s.Synthesizer.chosen);
      ("degraded", Json.Str (Synthesizer.level_name s.Synthesizer.degraded));
      ( "degrade_reason",
        match s.Synthesizer.degrade_reason with
        | None -> Json.Null
        | Some reason -> Json.Str reason );
      ("registry_hits", int b.Synthesizer.registry_hits);
      ("registry_misses", int b.Synthesizer.registry_misses);
      ("synth_time_s", Json.Num s.Synthesizer.synth_time);
      ( "lower_check",
        match o.lower with
        | None -> Json.Null
        | Some (Ok ()) -> Json.Str "ok"
        | Some (Error e) -> Json.Str e );
    ]
