(** Plan → execute: the one synthesis pipeline every front-end shares.

    [run] (and [run_batch]) drive the full request lifecycle:

    {v request → plan (registry probe + verify) → execute → outcome v}

    Execution of a [Synthesize] plan is the existing
    {!Syccl.Synthesizer} degradation ladder — budget, persistent pool,
    trace spans and crash isolation attach there, once, for every
    caller.  Execution of a [Serve_hit] plan replays the verified
    registry schedules.  Full-quality synthesis results (ladder rung
    [Full], MILP refinement not disabled) are stored back into the
    registry, so repeated workloads converge to all-hits.

    Batch execution dedupes requests on {!Request.key} and runs the
    remaining synthesis work through
    {!Syccl.Synthesizer.synthesize_all}, inheriting its snapshot
    isolation (deterministic for any pool width) and per-element fault
    isolation (a crashing request degrades to the fallback baseline,
    its siblings keep going). *)

type source =
  | From_registry of {
      hit_key : string;
          (** the {e source} entry key — for transported / cross-bucket
              hits, the entry the schedules were derived from *)
      via : Registry.via;
          (** how the entry reached this request's demand (exact,
              in-bucket rescale, symmetry transport, adjacent-bucket
              rescale) *)
      stored_cost : float;
    }
  | From_synthesis

type outcome = {
  request : Request.t;
  source : source;
  synth : Syccl.Synthesizer.outcome;
      (** the underlying outcome; for registry hits, [time]/[busbw] are
          freshly re-simulated, [synth_time] is 0, and
          [breakdown.registry_hits = 1] *)
  lower : (unit, string) result option;
      (** verdict of the [lower] hook over the schedules {e as served}
          (registry hits and degraded rungs included); [None] when the
          caller passed no hook *)
}

val run :
  ?registry:Registry.t ->
  ?audit:Audit.t ->
  ?lower:(Request.t -> Syccl.Synthesizer.outcome -> (unit, string) result) ->
  Request.t ->
  outcome
(** Plan and execute one request. *)

val run_batch :
  ?registry:Registry.t ->
  ?audit:Audit.t ->
  ?lower:(Request.t -> Syccl.Synthesizer.outcome -> (unit, string) result) ->
  Request.t list ->
  outcome list
(** Plan and execute a batch, preserving order.  Duplicate requests
    (equal {!Request.key}) are executed once and their outcome shared;
    distinct requests sharing a topology structure and config are
    synthesized concurrently on the persistent pool.

    When [audit] is given, one {!Audit.record} is appended per request
    {e element} (duplicates each leave their own line, sharing the
    executed outcome's numbers), carrying the plan decision, the registry
    probe outcome with its miss reason, the ladder rung, budget granted
    vs consumed, and the solver counter deltas from the outcome
    breakdown.

    When [lower] is given, it is invoked once per {e unique} request on
    the outcome actually served — the resolved schedules, whether they
    came from the registry, a degraded ladder rung, or fresh synthesis —
    and its verdict is recorded in the outcome ([lower]) and the audit
    trail ([lowered]/[lower_check]).  A hook that raises is recorded as a
    failed check; it never fails serving. *)

val outcome_to_json : outcome -> Syccl_util.Json.t
(** Canonical outcome encoding (one [syccl batch] JSONL line): fixed
    field order; [synth_time_s] is the only timing field — everything
    else is deterministic for a deterministic request. *)
