module Topology = Syccl_topology.Topology
module Link = Syccl_topology.Link

type port_stats = {
  gpu : int;
  port_group : int;
  dir : [ `Egress | `Ingress ];
  busy : float;
  utilization : float;
}

type t = {
  makespan : float;
  total_bytes : float;
  dim_bytes : float array;
  dim_alpha_s : float array;
  dim_beta_s : float array;
  ports : port_stats list;
  bottleneck : port_stats option;
  avg_hops : float;
}

let analyze ?blocks topo (s : Schedule.t) =
  let report = Sim.run ?blocks topo s in
  let makespan = report.Sim.time in
  let nd = Topology.num_dims topo in
  let dim_bytes = Array.make nd 0.0 in
  let dim_alpha_s = Array.make nd 0.0 in
  let dim_beta_s = Array.make nd 0.0 in
  let busy = Hashtbl.create 64 in
  let add key b =
    Hashtbl.replace busy key (b +. Option.value (Hashtbl.find_opt busy key) ~default:0.0)
  in
  let total_bytes = ref 0.0 in
  List.iter
    (fun (x : Schedule.xfer) ->
      let d = Topology.dim topo x.dim in
      let size = s.Schedule.chunks.(x.chunk).Schedule.size in
      let b = Link.busy_time d.Topology.link size in
      total_bytes := !total_bytes +. size;
      dim_bytes.(x.dim) <- dim_bytes.(x.dim) +. size;
      dim_alpha_s.(x.dim) <- dim_alpha_s.(x.dim) +. d.Topology.link.Link.alpha;
      dim_beta_s.(x.dim) <- dim_beta_s.(x.dim) +. b;
      add (x.src, d.Topology.port_group, `Egress) b;
      add (x.dst, d.Topology.port_group, `Ingress) b)
    s.Schedule.xfers;
  let ports =
    Hashtbl.fold
      (fun (gpu, port_group, dir) b acc ->
        { gpu; port_group; dir; busy = b; utilization = (if makespan > 0.0 then b /. makespan else 0.0) }
        :: acc)
      busy []
    |> List.sort (fun a b -> Float.compare b.busy a.busy)
  in
  let deliveries =
    Array.fold_left
      (fun acc (c : Schedule.chunk_meta) ->
        acc
        +
        match c.Schedule.mode with
        | `Gather -> List.length c.Schedule.wanted
        | `Reduce -> List.length c.Schedule.initial)
      0 s.Schedule.chunks
  in
  {
    makespan;
    total_bytes = !total_bytes;
    dim_bytes;
    dim_alpha_s;
    dim_beta_s;
    ports;
    bottleneck = (match ports with [] -> None | p :: _ -> Some p);
    avg_hops =
      (if deliveries = 0 then 0.0
       else float_of_int (Schedule.num_xfers s) /. float_of_int deliveries);
  }

let alpha_share t d =
  let a = t.dim_alpha_s.(d) and b = t.dim_beta_s.(d) in
  if a +. b <= 0.0 then 0.0 else a /. (a +. b)

let pp fmt t =
  Format.fprintf fmt "@[<v>makespan: %.1f us, %.1f MB moved, %.2f hops/delivery@,"
    (t.makespan *. 1e6) (t.total_bytes /. 1e6) t.avg_hops;
  Array.iteri
    (fun d b ->
      Format.fprintf fmt
        "  dim %d traffic: %.1f MB (alpha %.0f%% / beta %.0f%% of wire time)@,"
        d (b /. 1e6)
        (100.0 *. alpha_share t d)
        (100.0 *. (1.0 -. alpha_share t d)))
    t.dim_bytes;
  List.iteri
    (fun i p ->
      if i < 6 then
        Format.fprintf fmt "  port gpu%d/pg%d/%s: busy %.1f us (%.0f%%)@," p.gpu
          p.port_group
          (match p.dir with `Egress -> "out" | `Ingress -> "in")
          (p.busy *. 1e6) (p.utilization *. 100.0))
    t.ports;
  Format.fprintf fmt "@]"

let timeline ?(width = 60) ?(limit = 40) topo (s : Schedule.t) =
  let report = Sim.run topo s in
  let makespan = Float.max report.Sim.time 1e-12 in
  let xa = Array.of_list s.Schedule.xfers in
  let rows =
    Array.to_list
      (Array.mapi
         (fun i (x : Schedule.xfer) ->
           let finish = report.Sim.xfer_finish.(i) in
           let d = Topology.dim topo x.dim in
           let dur =
             Link.transfer_time d.Topology.link s.Schedule.chunks.(x.chunk).Schedule.size
           in
           (Float.max 0.0 (finish -. dur), finish, x))
         xa)
    |> List.sort (fun (_, a, _) (_, b, _) -> Float.compare a b)
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "%-18s %s (makespan %.1f us)\n" "transfer" "timeline"
       (makespan *. 1e6));
  List.iteri
    (fun i (start, finish, (x : Schedule.xfer)) ->
      if i < limit then begin
        let cell t = int_of_float (t /. makespan *. float_of_int (width - 1)) in
        let a = cell start and b = max (cell start) (cell finish) in
        let bar =
          String.init width (fun j -> if j >= a && j <= b then '#' else '.')
        in
        Buffer.add_string buf
          (Printf.sprintf "c%-3d %3d->%-3d d%d %s\n" x.chunk x.src x.dst x.dim bar)
      end)
    rows;
  if List.length rows > limit then
    Buffer.add_string buf (Printf.sprintf "... (%d more)\n" (List.length rows - limit));
  Buffer.contents buf
