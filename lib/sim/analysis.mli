(** Schedule analysis: where the bytes go and which port is the bottleneck.

    Used by the CLI's [analyze] command and by tests asserting structural
    properties of synthesized schedules (e.g. "NVLink:NIC traffic matches
    the capacity ratio", the §2.1 diagnosis). *)

type port_stats = {
  gpu : int;
  port_group : int;
  dir : [ `Egress | `Ingress ];
  busy : float;  (** total seconds the port transmits *)
  utilization : float;  (** busy / makespan *)
}

type t = {
  makespan : float;
  total_bytes : float;  (** bytes moved over all transfers *)
  dim_bytes : float array;  (** bytes per topology dimension *)
  dim_alpha_s : float array;
      (** per-dimension latency seconds: Σ α over the dimension's
          transfers — the fixed cost the α-β model charges per hop *)
  dim_beta_s : float array;
      (** per-dimension serialization seconds: Σ β·size — the bandwidth
          cost.  [dim_alpha_s.(d) /. (dim_alpha_s.(d) +. dim_beta_s.(d))]
          is the dimension's α share: near 1 means the schedule is
          latency-bound there (too many small hops), near 0
          bandwidth-bound *)
  ports : port_stats list;  (** every active port, busiest first *)
  bottleneck : port_stats option;
  avg_hops : float;  (** transfers per chunk delivery *)
}

val analyze : ?blocks:int -> Syccl_topology.Topology.t -> Schedule.t -> t

val alpha_share : t -> int -> float
(** [alpha_share t d]: fraction of dimension [d]'s total wire time that is
    α (latency); 0 when the dimension carried no transfer. *)

val pp : Format.formatter -> t -> unit
(** Summary: makespan, per-dimension traffic, top ports. *)

val timeline :
  ?width:int -> ?limit:int -> Syccl_topology.Topology.t -> Schedule.t -> string
(** Text Gantt chart of transfers ordered by finish time ([limit] rows,
    default 40). *)
