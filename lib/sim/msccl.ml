module Collective = Syccl_collective.Collective

(* ------------------------------------------------------------------ *)
(* Lowered program representation                                      *)
(* ------------------------------------------------------------------ *)

type step = {
  s : int;
  op : string;  (* "s" | "r" | "rrc" | "nop" *)
  srcbuf : string;
  srcoff : int;
  dstbuf : string;
  dstoff : int;
  cnt : int;
  depid : int;
  deps : int;
  hasdep : bool;
}

type tb = {
  tb_id : int;
  tb_send : int;
  tb_recv : int;
  tb_chan : int;
  tb_steps : step list;
}

type gpu = {
  gpu_id : int;
  i_chunks : int;
  o_chunks : int;
  s_chunks : int;
  gpu_tbs : tb list;
}

type program = {
  algo_name : string;
  nchunks : int;
  nchannels : int;
  proto : string;
  ngpus : int;
  coll : string;
  inplace : int;
  gpus : gpu list;
}

let num_steps p =
  List.fold_left
    (fun acc g ->
      List.fold_left (fun acc tb -> acc + List.length tb.tb_steps) acc g.gpu_tbs)
    0 p.gpus

let coll_name (coll : Collective.t) =
  String.lowercase_ascii (Collective.kind_name coll.Collective.kind)

(* ------------------------------------------------------------------ *)
(* Lowering: Schedule.t -> program                                     *)
(* ------------------------------------------------------------------ *)

(* Mutable builder mirror of [step]/[tb]; [b_dep] edges are resolved to
   (tbid, sid) pairs only after per-threadblock numbering. *)
type bstep = {
  b_op : string;
  b_srcoff : int;
  b_dstoff : int;
  b_cnt : int;
  mutable b_sid : int;
  mutable b_hasdep : bool;
  mutable b_dep : (btb * bstep) option;
}

and btb = {
  b_tbid : int;
  mutable b_send : int;
  mutable b_recv : int;
  b_chan : int;
  mutable b_steps : bstep list;  (* reversed during construction *)
}

let lower ?(name = "syccl") ?(proto = "Simple") ?(channels = 1)
    ~(coll : Collective.t) (s : Schedule.t) =
  if channels < 1 then invalid_arg "Msccl.lower: channels must be >= 1";
  let n = coll.Collective.n in
  (* One threadblock per (gpu, peer); a peer with traffic both ways shares
     one threadblock, like MSCCL's paired send/recv connections. *)
  let tbs : (int * int, btb) Hashtbl.t = Hashtbl.create 64 in
  let next_tb = Array.make n 0 in
  (* The send threadblock on one rank and the receive threadblock on its
     peer are two ends of the same executor connection, so both must name
     the same channel.  Assign channels per unordered GPU pair, first-touch
     round-robin over the transfer order (deterministic: transfers are
     iterated in priority order). *)
  let pair_chan : (int * int, int) Hashtbl.t = Hashtbl.create 64 in
  let next_chan = ref 0 in
  let chan_for g p =
    let key = (min g p, max g p) in
    match Hashtbl.find_opt pair_chan key with
    | Some c -> c
    | None ->
        let c = !next_chan mod channels in
        incr next_chan;
        Hashtbl.replace pair_chan key c;
        c
  in
  let tb_for gpu peer ~send =
    let tb =
      match Hashtbl.find_opt tbs (gpu, peer) with
      | Some tb -> tb
      | None ->
          let tbid = next_tb.(gpu) in
          next_tb.(gpu) <- tbid + 1;
          let tb =
            { b_tbid = tbid; b_send = -1; b_recv = -1;
              b_chan = chan_for gpu peer; b_steps = [] }
          in
          Hashtbl.replace tbs (gpu, peer) tb;
          tb
    in
    if send then tb.b_send <- peer else tb.b_recv <- peer;
    tb
  in
  (* All receives of (gpu, chunk) so far, newest first.  A gather-mode send
     forwards a copy and depends on the (single) receive that produced it; a
     reduce-mode send forwards the local accumulation and must wait for
     {e every} inbound contribution, which land on different threadblocks
     when the fan-in spans peers. *)
  let recvs_of : (int * int, (btb * bstep) list) Hashtbl.t = Hashtbl.create 64 in
  let ordered =
    List.stable_sort
      (fun (a : Schedule.xfer) b -> compare a.prio b.prio)
      s.Schedule.xfers
  in
  List.iter
    (fun (x : Schedule.xfer) ->
      let mode = s.Schedule.chunks.(x.chunk).Schedule.mode in
      let stb = tb_for x.src x.dst ~send:true in
      let inbound =
        Option.value ~default:[] (Hashtbl.find_opt recvs_of (x.src, x.chunk))
      in
      let deps =
        match mode with
        | `Gather -> ( match inbound with [] -> [] | r :: _ -> [ r ])
        | `Reduce -> List.rev inbound
      in
      (* Receives already in the sending threadblock are sequenced by
         threadblock order; only cross-threadblock edges need dep slots. *)
      let deps = List.filter (fun (rtb, _) -> rtb != stb) deps in
      List.iter (fun ((_, rstep) : btb * bstep) -> rstep.b_hasdep <- true) deps;
      (* One dep slot per step: the send carries the last edge, and each
         earlier edge becomes a "nop" step placed just before it. *)
      let rec split = function
        | [] -> ([], None)
        | [ last ] -> ([], Some last)
        | d :: rest ->
            let nops, last = split rest in
            (d :: nops, last)
      in
      let nop_deps, send_dep = split deps in
      let nops =
        List.map
          (fun d ->
            { b_op = "nop"; b_srcoff = 0; b_dstoff = 0; b_cnt = 0; b_sid = 0;
              b_hasdep = false; b_dep = Some d })
          nop_deps
      in
      let send =
        { b_op = "s"; b_srcoff = x.chunk; b_dstoff = x.chunk; b_cnt = 1;
          b_sid = 0; b_hasdep = false; b_dep = send_dep }
      in
      stb.b_steps <- (send :: List.rev nops) @ stb.b_steps;
      let rtb = tb_for x.dst x.src ~send:false in
      let recv =
        { b_op = (match mode with `Gather -> "r" | `Reduce -> "rrc");
          b_srcoff = x.chunk; b_dstoff = x.chunk; b_cnt = 1; b_sid = 0;
          b_hasdep = false; b_dep = None }
      in
      rtb.b_steps <- recv :: rtb.b_steps;
      let prior =
        Option.value ~default:[] (Hashtbl.find_opt recvs_of (x.dst, x.chunk))
      in
      Hashtbl.replace recvs_of (x.dst, x.chunk) ((rtb, recv) :: prior))
    ordered;
  (* Number steps within each threadblock (construction order = priority
     order), then freeze into the immutable program form. *)
  let by_gpu = Array.make n [] in
  Hashtbl.iter (fun (gpu, _) tb -> by_gpu.(gpu) <- tb :: by_gpu.(gpu)) tbs;
  Array.iteri
    (fun g l ->
      let sorted = List.sort (fun a b -> compare a.b_tbid b.b_tbid) l in
      List.iter
        (fun tb ->
          tb.b_steps <- List.rev tb.b_steps;
          List.iteri (fun i st -> st.b_sid <- i) tb.b_steps)
        sorted;
      by_gpu.(g) <- sorted)
    by_gpu;
  let nchunks = Array.length s.Schedule.chunks in
  let freeze_step (st : bstep) =
    let depid, deps =
      match st.b_dep with
      | Some (rtb, rstep) -> (rtb.b_tbid, rstep.b_sid)
      | None -> (-1, -1)
    in
    { s = st.b_sid; op = st.b_op; srcbuf = "o"; srcoff = st.b_srcoff;
      dstbuf = "o"; dstoff = st.b_dstoff; cnt = st.b_cnt; depid; deps;
      hasdep = st.b_hasdep }
  in
  let freeze_tb (tb : btb) =
    { tb_id = tb.b_tbid; tb_send = tb.b_send; tb_recv = tb.b_recv;
      tb_chan = tb.b_chan; tb_steps = List.map freeze_step tb.b_steps }
  in
  let gpus =
    List.init n (fun g ->
        { gpu_id = g; i_chunks = nchunks; o_chunks = nchunks; s_chunks = 0;
          gpu_tbs = List.map freeze_tb by_gpu.(g) })
  in
  { algo_name = name; nchunks; nchannels = channels; proto; ngpus = n;
    coll = coll_name coll; inplace = 0; gpus }

(* ------------------------------------------------------------------ *)
(* Emission                                                            *)
(* ------------------------------------------------------------------ *)

let escape s =
  if
    String.for_all
      (fun c -> not (c = '&' || c = '<' || c = '>' || c = '"'))
      s
  then s
  else begin
    let buf = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '&' -> Buffer.add_string buf "&amp;"
        | '<' -> Buffer.add_string buf "&lt;"
        | '>' -> Buffer.add_string buf "&gt;"
        | '"' -> Buffer.add_string buf "&quot;"
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf
  end

let emit (p : program) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf
       "<algo name=\"%s\" nchunksperloop=\"%d\" nchannels=\"%d\" proto=\"%s\" \
        ngpus=\"%d\" coll=\"%s\" inplace=\"%d\">\n"
       (escape p.algo_name) p.nchunks p.nchannels (escape p.proto) p.ngpus
       (escape p.coll) p.inplace);
  List.iter
    (fun g ->
      Buffer.add_string buf
        (Printf.sprintf
           "  <gpu id=\"%d\" i_chunks=\"%d\" o_chunks=\"%d\" s_chunks=\"%d\">\n"
           g.gpu_id g.i_chunks g.o_chunks g.s_chunks);
      List.iter
        (fun tb ->
          Buffer.add_string buf
            (Printf.sprintf
               "    <tb id=\"%d\" send=\"%d\" recv=\"%d\" chan=\"%d\">\n"
               tb.tb_id tb.tb_send tb.tb_recv tb.tb_chan);
          List.iter
            (fun st ->
              Buffer.add_string buf
                (Printf.sprintf
                   "      <step s=\"%d\" type=\"%s\" srcbuf=\"%s\" \
                    srcoff=\"%d\" dstbuf=\"%s\" dstoff=\"%d\" cnt=\"%d\" \
                    depid=\"%d\" deps=\"%d\" hasdep=\"%d\"/>\n"
                   st.s (escape st.op) (escape st.srcbuf) st.srcoff
                   (escape st.dstbuf) st.dstoff st.cnt st.depid st.deps
                   (if st.hasdep then 1 else 0)))
            tb.tb_steps;
          Buffer.add_string buf "    </tb>\n")
        g.gpu_tbs;
      Buffer.add_string buf "  </gpu>\n")
    p.gpus;
  Buffer.add_string buf "</algo>\n";
  Buffer.contents buf

let to_xml ?name ?proto ?channels ~coll s =
  emit (lower ?name ?proto ?channels ~coll s)

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

exception Parse of string

let parse_fail fmt = Format.kasprintf (fun m -> raise (Parse m)) fmt

let unescape s =
  match String.index_opt s '&' with
  | None -> s
  | Some _ ->
      let n = String.length s in
      let buf = Buffer.create n in
      let i = ref 0 in
      while !i < n do
        (if s.[!i] <> '&' then begin
           Buffer.add_char buf s.[!i];
           incr i
         end
         else
           match String.index_from_opt s !i ';' with
           | None -> parse_fail "unterminated entity in %S" s
           | Some j ->
               (match String.sub s !i (j - !i + 1) with
               | "&amp;" -> Buffer.add_char buf '&'
               | "&lt;" -> Buffer.add_char buf '<'
               | "&gt;" -> Buffer.add_char buf '>'
               | "&quot;" -> Buffer.add_char buf '"'
               | "&apos;" -> Buffer.add_char buf '\''
               | e -> parse_fail "unknown entity %S" e);
               i := j + 1)
      done;
      Buffer.contents buf

(* Minimal tag scanner for the subset of XML [emit] produces: tags and
   attributes only, no text nodes, comments, or processing instructions. *)
type tag =
  | Open of string * (string * string) list
  | Self of string * (string * string) list
  | Close of string

let scan text =
  let n = String.length text in
  let pos = ref 0 in
  let skip_ws () =
    while
      !pos < n
      && (match text.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      incr pos
    done
  in
  let is_name_char c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
    || (c >= '0' && c <= '9')
    || c = '_' || c = '-' || c = '.' || c = ':'
  in
  let read_name what =
    let start = !pos in
    while !pos < n && is_name_char text.[!pos] do incr pos done;
    if !pos = start then parse_fail "expected %s at offset %d" what start;
    String.sub text start (!pos - start)
  in
  let next_tag () =
    skip_ws ();
    if !pos >= n then None
    else if text.[!pos] <> '<' then
      parse_fail "stray text at offset %d" !pos
    else begin
      incr pos;
      if !pos < n && text.[!pos] = '/' then begin
        incr pos;
        let name = read_name "closing tag name" in
        skip_ws ();
        if !pos >= n || text.[!pos] <> '>' then
          parse_fail "malformed closing tag </%s" name;
        incr pos;
        Some (Close name)
      end
      else begin
        let name = read_name "tag name" in
        let attrs = ref [] in
        let rec attrs_loop () =
          skip_ws ();
          if !pos >= n then parse_fail "unterminated tag <%s" name
          else if text.[!pos] = '>' then begin
            incr pos;
            Some (Open (name, List.rev !attrs))
          end
          else if text.[!pos] = '/' then begin
            incr pos;
            if !pos >= n || text.[!pos] <> '>' then
              parse_fail "malformed self-closing tag <%s" name;
            incr pos;
            Some (Self (name, List.rev !attrs))
          end
          else begin
            let attr = read_name "attribute name" in
            skip_ws ();
            if !pos >= n || text.[!pos] <> '=' then
              parse_fail "attribute %s of <%s> missing '='" attr name;
            incr pos;
            skip_ws ();
            if !pos >= n || text.[!pos] <> '"' then
              parse_fail "attribute %s of <%s> missing opening quote" attr name;
            incr pos;
            let start = !pos in
            while !pos < n && text.[!pos] <> '"' do incr pos done;
            if !pos >= n then
              parse_fail "attribute %s of <%s> missing closing quote" attr name;
            let value = unescape (String.sub text start (!pos - start)) in
            incr pos;
            attrs := (attr, value) :: !attrs;
            attrs_loop ()
          end
        in
        attrs_loop ()
      end
    end
  in
  (* One-token lookahead so list parsers can peek. *)
  let pending : tag option option ref = ref None in
  let next () =
    match !pending with
    | Some t ->
        pending := None;
        t
    | None -> next_tag ()
  in
  let peek () =
    match !pending with
    | Some t -> t
    | None ->
        let t = next_tag () in
        pending := Some t;
        t
  in
  (next, peek)

let attr tag attrs name =
  match List.assoc_opt name attrs with
  | Some v -> v
  | None -> parse_fail "<%s> missing attribute %S" tag name

let int_attr tag attrs name =
  let v = attr tag attrs name in
  match int_of_string_opt v with
  | Some i -> i
  | None -> parse_fail "<%s> attribute %s=%S is not an integer" tag name v

let of_xml text =
  try
    let next, peek = scan text in
    let expect_open want =
      match next () with
      | Some (Open (name, attrs)) when name = want -> attrs
      | Some _ -> parse_fail "expected <%s>" want
      | None -> parse_fail "expected <%s>, got end of input" want
    in
    let expect_close want =
      match next () with
      | Some (Close name) when name = want -> ()
      | _ -> parse_fail "expected </%s>" want
    in
    let parse_step attrs =
      { s = int_attr "step" attrs "s";
        op = attr "step" attrs "type";
        srcbuf = attr "step" attrs "srcbuf";
        srcoff = int_attr "step" attrs "srcoff";
        dstbuf = attr "step" attrs "dstbuf";
        dstoff = int_attr "step" attrs "dstoff";
        cnt = int_attr "step" attrs "cnt";
        depid = int_attr "step" attrs "depid";
        deps = int_attr "step" attrs "deps";
        hasdep = int_attr "step" attrs "hasdep" <> 0 }
    in
    let rec parse_steps acc =
      match peek () with
      | Some (Self ("step", attrs)) ->
          ignore (next ());
          parse_steps (parse_step attrs :: acc)
      | _ -> List.rev acc
    in
    let parse_tb attrs =
      let steps = parse_steps [] in
      expect_close "tb";
      { tb_id = int_attr "tb" attrs "id";
        tb_send = int_attr "tb" attrs "send";
        tb_recv = int_attr "tb" attrs "recv";
        tb_chan = int_attr "tb" attrs "chan";
        tb_steps = steps }
    in
    let rec parse_tbs acc =
      match peek () with
      | Some (Open ("tb", attrs)) ->
          ignore (next ());
          parse_tbs (parse_tb attrs :: acc)
      | _ -> List.rev acc
    in
    let parse_gpu attrs =
      let tbs = parse_tbs [] in
      expect_close "gpu";
      { gpu_id = int_attr "gpu" attrs "id";
        i_chunks = int_attr "gpu" attrs "i_chunks";
        o_chunks = int_attr "gpu" attrs "o_chunks";
        s_chunks = int_attr "gpu" attrs "s_chunks";
        gpu_tbs = tbs }
    in
    let rec parse_gpus acc =
      match peek () with
      | Some (Open ("gpu", attrs)) ->
          ignore (next ());
          parse_gpus (parse_gpu attrs :: acc)
      | _ -> List.rev acc
    in
    let algo = expect_open "algo" in
    let gpus = parse_gpus [] in
    expect_close "algo";
    (match next () with
    | None -> ()
    | Some _ -> parse_fail "trailing content after </algo>");
    Ok
      { algo_name = attr "algo" algo "name";
        nchunks = int_attr "algo" algo "nchunksperloop";
        nchannels = int_attr "algo" algo "nchannels";
        proto = attr "algo" algo "proto";
        ngpus = int_attr "algo" algo "ngpus";
        coll = attr "algo" algo "coll";
        inplace = int_attr "algo" algo "inplace";
        gpus }
  with Parse msg -> Error msg
