module Collective = Syccl_collective.Collective

(* Internal step representation; [dep] points at the receive step a relayed
   send must wait for, resolved to (tbid, sid) at emission time. *)
type step = {
  op : string;  (* "s" | "r" | "rrc" *)
  chunk : int;
  prio : int;
  mutable sid : int;
  mutable hasdep : bool;
  mutable dep : (tb * step) option;
}

and tb = {
  tbid : int;
  mutable send_peer : int;
  mutable recv_peer : int;
  chan : int;
  mutable steps : step list;  (* reversed during construction *)
}

let coll_name (coll : Collective.t) =
  String.lowercase_ascii (Collective.kind_name coll.Collective.kind)

let to_xml ?(name = "syccl") ?(proto = "Simple") ?(channels = 1)
    ~(coll : Collective.t) (s : Schedule.t) =
  let n = coll.Collective.n in
  (* One threadblock per (gpu, peer); a peer with traffic both ways shares
     one threadblock, like MSCCL's paired send/recv connections. *)
  let tbs : (int * int, tb) Hashtbl.t = Hashtbl.create 64 in
  let next_tb = Array.make n 0 in
  let tb_for gpu peer ~send =
    let tb =
      match Hashtbl.find_opt tbs (gpu, peer) with
      | Some tb -> tb
      | None ->
          let tbid = next_tb.(gpu) in
          next_tb.(gpu) <- tbid + 1;
          let tb =
            { tbid; send_peer = -1; recv_peer = -1; chan = tbid mod channels;
              steps = [] }
          in
          Hashtbl.replace tbs (gpu, peer) tb;
          tb
    in
    if send then tb.send_peer <- peer else tb.recv_peer <- peer;
    tb
  in
  (* Latest receive of (gpu, chunk), so sends of relayed chunks can depend
     on it (reduce fan-in keeps the last receive: MSCCL chains its
     receive-reduce-copy steps). *)
  let recv_of : (int * int, tb * step) Hashtbl.t = Hashtbl.create 64 in
  let ordered =
    List.stable_sort
      (fun (a : Schedule.xfer) b -> compare a.prio b.prio)
      s.Schedule.xfers
  in
  List.iter
    (fun (x : Schedule.xfer) ->
      let mode = s.Schedule.chunks.(x.chunk).Schedule.mode in
      let stb = tb_for x.src x.dst ~send:true in
      let send =
        { op = "s"; chunk = x.chunk; prio = x.prio; sid = 0; hasdep = false;
          dep = Hashtbl.find_opt recv_of (x.src, x.chunk) }
      in
      (match send.dep with
      | Some (_, rstep) -> rstep.hasdep <- true
      | None -> ());
      stb.steps <- send :: stb.steps;
      let rtb = tb_for x.dst x.src ~send:false in
      let recv =
        {
          op = (match mode with `Gather -> "r" | `Reduce -> "rrc");
          chunk = x.chunk;
          prio = x.prio;
          sid = 0;
          hasdep = false;
          dep = None;
        }
      in
      rtb.steps <- recv :: rtb.steps;
      Hashtbl.replace recv_of (x.dst, x.chunk) (rtb, recv))
    ordered;
  (* Number steps within each threadblock (construction order = priority
     order). *)
  let by_gpu = Array.make n [] in
  Hashtbl.iter (fun (gpu, _) tb -> by_gpu.(gpu) <- tb :: by_gpu.(gpu)) tbs;
  Array.iteri
    (fun g l ->
      let sorted = List.sort (fun a b -> compare a.tbid b.tbid) l in
      List.iter
        (fun tb ->
          tb.steps <- List.rev tb.steps;
          List.iteri (fun i st -> st.sid <- i) tb.steps)
        sorted;
      by_gpu.(g) <- sorted)
    by_gpu;
  let buf = Buffer.create 4096 in
  let nchunks = Array.length s.Schedule.chunks in
  Buffer.add_string buf
    (Printf.sprintf
       "<algo name=\"%s\" nchunksperloop=\"%d\" nchannels=\"%d\" proto=\"%s\" \
        ngpus=\"%d\" coll=\"%s\" inplace=\"0\">\n"
       name nchunks channels proto n (coll_name coll));
  for g = 0 to n - 1 do
    Buffer.add_string buf
      (Printf.sprintf
         "  <gpu id=\"%d\" i_chunks=\"%d\" o_chunks=\"%d\" s_chunks=\"0\">\n" g
         nchunks nchunks);
    List.iter
      (fun tb ->
        Buffer.add_string buf
          (Printf.sprintf "    <tb id=\"%d\" send=\"%d\" recv=\"%d\" chan=\"%d\">\n"
             tb.tbid tb.send_peer tb.recv_peer tb.chan);
        List.iter
          (fun st ->
            let depid, deps =
              match st.dep with
              | Some (rtb, rstep) -> (rtb.tbid, rstep.sid)
              | None -> (-1, -1)
            in
            Buffer.add_string buf
              (Printf.sprintf
                 "      <step s=\"%d\" type=\"%s\" srcbuf=\"o\" srcoff=\"%d\" \
                  dstbuf=\"o\" dstoff=\"%d\" cnt=\"1\" depid=\"%d\" deps=\"%d\" \
                  hasdep=\"%d\"/>\n"
                 st.sid st.op st.chunk st.chunk depid deps
                 (if st.hasdep then 1 else 0)))
          tb.steps;
        Buffer.add_string buf "    </tb>\n")
      by_gpu.(g);
    Buffer.add_string buf "  </gpu>\n"
  done;
  Buffer.add_string buf "</algo>\n";
  Buffer.contents buf
