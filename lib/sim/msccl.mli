(** MSCCL-executor XML emission (§6).

    The paper's schedule executor converts synthesized schedules into XML
    consumed by the MSCCL executor [https://github.com/Azure/msccl-executor-nccl]
    without touching CUDA kernels.  This module emits that format: one
    [<gpu>] per rank, one threadblock per (peer, direction, channel), and
    one [<step>] per chunk transfer, with cross-threadblock dependencies for
    relayed chunks.

    Reduce-mode chunks emit ["rrc"] (receive-reduce-copy) steps on the
    receiving side, matching MSCCL's reduction semantics. *)

val to_xml :
  ?name:string ->
  ?proto:string ->
  ?channels:int ->
  coll:Syccl_collective.Collective.t ->
  Schedule.t ->
  string
(** Render the schedule.  [proto] defaults to ["Simple"]; [channels] spreads
    threadblocks round-robin over that many channels (default 1).  Transfers
    are ordered by priority within each threadblock. *)
