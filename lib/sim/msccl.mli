(** MSCCL-executor XML lowering (§6).

    The paper's schedule executor converts synthesized schedules into XML
    consumed by the MSCCL executor [https://github.com/Azure/msccl-executor-nccl]
    without touching CUDA kernels.  This module lowers a {!Schedule.t} into
    that instruction form — one [<gpu>] per rank, one threadblock per
    (peer, direction) pair on a channel, one [<step>] per chunk transfer,
    with cross-threadblock dependency edges for relayed chunks — and parses
    it back, so {!Msccl_interp} can replay the lowered program as an
    executor-level differential oracle.

    Reduce-mode chunks emit ["rrc"] (receive-reduce-copy) steps on the
    receiving side, matching MSCCL's reduction semantics.  A reduce-mode
    relay send must wait for {e every} inbound contribution; since each
    step carries at most one [depid]/[deps] slot, extra fan-in edges are
    lowered as ["nop"] steps immediately before the send.

    Both threadblocks of a connection (the sender's and the receiver's)
    are assigned the {e same} channel: channels are distributed round-robin
    over unordered GPU pairs in first-use order. *)

(** One executor instruction.  [s] is the step's index within its
    threadblock; [op] is ["s"] (send), ["r"] (receive), ["rrc"]
    (receive-reduce-copy) or ["nop"] (dependency placeholder); [depid]/
    [deps] name a (threadblock, step) on the same GPU that must complete
    first, or [-1]/[-1] for none; [hasdep] marks steps other steps wait
    on. *)
type step = {
  s : int;
  op : string;
  srcbuf : string;
  srcoff : int;
  dstbuf : string;
  dstoff : int;
  cnt : int;
  depid : int;
  deps : int;
  hasdep : bool;
}

(** A threadblock: sends to [tb_send], receives from [tb_recv] ([-1] for
    none), on channel [tb_chan]; executes [tb_steps] strictly in order. *)
type tb = {
  tb_id : int;
  tb_send : int;
  tb_recv : int;
  tb_chan : int;
  tb_steps : step list;
}

type gpu = {
  gpu_id : int;
  i_chunks : int;
  o_chunks : int;
  s_chunks : int;
  gpu_tbs : tb list;
}

type program = {
  algo_name : string;
  nchunks : int;
  nchannels : int;
  proto : string;
  ngpus : int;
  coll : string;
  inplace : int;
  gpus : gpu list;
}

val lower :
  ?name:string ->
  ?proto:string ->
  ?channels:int ->
  coll:Syccl_collective.Collective.t ->
  Schedule.t ->
  program
(** Lower a schedule to an executor program.  [proto] defaults to
    ["Simple"]; [channels] spreads connections round-robin over that many
    channels (default 1).  Transfers are ordered by priority within each
    threadblock.  Raises [Invalid_argument] if [channels < 1]. *)

val emit : program -> string
(** Render a program as MSCCL XML.  Attribute values are XML-escaped
    (ampersand, angle brackets, double quote). *)

val to_xml :
  ?name:string ->
  ?proto:string ->
  ?channels:int ->
  coll:Syccl_collective.Collective.t ->
  Schedule.t ->
  string
(** [emit] of [lower]. *)

val of_xml : string -> (program, string) result
(** Parse XML in the subset {!emit} produces (tags and attributes, no text
    nodes) back into a program.  For any program [p] built by {!lower},
    [of_xml (emit p) = Ok p] and re-emission is byte-identical. *)

val num_steps : program -> int
(** Total step count across all GPUs and threadblocks. *)

val coll_name : Syccl_collective.Collective.t -> string
(** The lower-case collective name used for the [coll] attribute. *)
