module Collective = Syccl_collective.Collective
module Imap = Map.Make (Int)

(* Buffer cells hold contributor multisets: gather data for chunk [c] is the
   singleton {c}; reduce data is the multiset of contributing GPU ids, so
   double-counted or missing contributions are visible in the final state.
   Payloads carry the sender's cell value verbatim. *)
type value = int Imap.t

let value_union = Imap.union (fun _ a b -> Some (a + b))

let pp_value v =
  let items =
    Imap.fold
      (fun k count acc ->
        (if count = 1 then string_of_int k
         else Printf.sprintf "%dx%d" count k)
        :: acc)
      v []
  in
  "{" ^ String.concat "," (List.rev items) ^ "}"

(* Runtime view of one threadblock. *)
type rtb = {
  gpu : int;
  tb : Msccl.tb;
  steps : Msccl.step array;
  mutable pc : int;
}

let err fmt = Format.kasprintf (fun m -> Error m) fmt

(* ------------------------------------------------------------------ *)
(* Structural checks                                                   *)
(* ------------------------------------------------------------------ *)

let structure (p : Msccl.program) =
  let ( let* ) = Result.bind in
  let* () =
    if List.length p.gpus <> p.ngpus then
      err "program declares ngpus=%d but has %d <gpu> sections" p.ngpus
        (List.length p.gpus)
    else Ok ()
  in
  let seen_gpu = Hashtbl.create 16 in
  List.fold_left
    (fun acc (g : Msccl.gpu) ->
      let* () = acc in
      let* () =
        if g.gpu_id < 0 || g.gpu_id >= p.ngpus then
          err "gpu id %d out of range [0, %d)" g.gpu_id p.ngpus
        else if Hashtbl.mem seen_gpu g.gpu_id then
          err "duplicate gpu id %d" g.gpu_id
        else Ok (Hashtbl.replace seen_gpu g.gpu_id ())
      in
      let tb_len = Hashtbl.create 16 in
      let* () =
        List.fold_left
          (fun acc (tb : Msccl.tb) ->
            let* () = acc in
            if Hashtbl.mem tb_len tb.tb_id then
              err "gpu %d: duplicate threadblock id %d" g.gpu_id tb.tb_id
            else
              Ok (Hashtbl.replace tb_len tb.tb_id (List.length tb.tb_steps)))
          (Ok ()) g.gpu_tbs
      in
      List.fold_left
        (fun acc (tb : Msccl.tb) ->
          List.fold_left
            (fun acc (st : Msccl.step) ->
              let* () = acc in
              if st.Msccl.depid < 0 then Ok ()
              else
                match Hashtbl.find_opt tb_len st.Msccl.depid with
                | None ->
                    err
                      "missing dependency: gpu %d tb %d step %d waits on tb \
                       %d, which does not exist"
                      g.gpu_id tb.tb_id st.Msccl.s st.Msccl.depid
                | Some len ->
                    if st.Msccl.deps < 0 || st.Msccl.deps >= len then
                      err
                        "missing dependency: gpu %d tb %d step %d waits on \
                         tb %d step %d, which does not exist (tb has %d \
                         steps)"
                        g.gpu_id tb.tb_id st.Msccl.s st.Msccl.depid
                        st.Msccl.deps len
                    else Ok ())
            acc tb.tb_steps)
        (Ok ()) g.gpu_tbs)
    (Ok ()) p.gpus

(* ------------------------------------------------------------------ *)
(* Replay                                                              *)
(* ------------------------------------------------------------------ *)

let replay (s : Schedule.t) (p : Msccl.program) =
  let ( let* ) = Result.bind in
  let* () = structure p in
  let nchunks = Array.length s.Schedule.chunks in
  let* () =
    if p.Msccl.nchunks <> nchunks then
      err "program declares %d chunks but the schedule has %d" p.Msccl.nchunks
        nchunks
    else Ok ()
  in
  let n = p.Msccl.ngpus in
  (* Initial buffer state from the schedule's demand. *)
  let bufs : value option array array =
    Array.make_matrix n nchunks None
  in
  Array.iteri
    (fun c (meta : Schedule.chunk_meta) ->
      match meta.Schedule.mode with
      | `Gather ->
          List.iter
            (fun g -> bufs.(g).(c) <- Some (Imap.singleton c 1))
            meta.Schedule.initial
      | `Reduce ->
          List.iter
            (fun g -> bufs.(g).(c) <- Some (Imap.singleton g 1))
            (List.sort_uniq compare meta.Schedule.initial))
    s.Schedule.chunks;
  let tbs_of : (int, rtb list) Hashtbl.t = Hashtbl.create 16 in
  let by_id : (int * int, rtb) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (g : Msccl.gpu) ->
      let rtbs =
        List.map
          (fun (tb : Msccl.tb) ->
            let r =
              { gpu = g.Msccl.gpu_id; tb; steps = Array.of_list tb.Msccl.tb_steps;
                pc = 0 }
            in
            Hashtbl.replace by_id (g.Msccl.gpu_id, tb.Msccl.tb_id) r;
            r)
          g.Msccl.gpu_tbs
      in
      Hashtbl.replace tbs_of g.Msccl.gpu_id rtbs)
    p.Msccl.gpus;
  let all_tbs =
    List.concat_map (fun (g : Msccl.gpu) ->
        match Hashtbl.find_opt tbs_of g.Msccl.gpu_id with
        | Some l -> l
        | None -> [])
      p.Msccl.gpus
  in
  (* FIFO payloads per executor connection (sender, receiver, channel). *)
  let queues : (int * int * int, value Queue.t) Hashtbl.t = Hashtbl.create 64 in
  let queue key =
    match Hashtbl.find_opt queues key with
    | Some q -> q
    | None ->
        let q = Queue.create () in
        Hashtbl.replace queues key q;
        q
  in
  let dep_satisfied (r : rtb) (st : Msccl.step) =
    st.Msccl.depid < 0
    ||
    match Hashtbl.find_opt by_id (r.gpu, st.Msccl.depid) with
    | Some target -> target.pc > st.Msccl.deps
    | None -> false
  in
  let error = ref None in
  let fail fmt =
    Format.kasprintf
      (fun m -> if !error = None then error := Some m)
      fmt
  in
  let progress = ref true in
  (* Adversarial order: drain every ready send (and nop) to a fixpoint
     before any receive runs, each round.  A send whose buffer cell is
     only populated by a not-yet-ordered receive — a missing dependency
     edge — deterministically fires early and is caught as
     use-before-receive rather than racing. *)
  let step_sends () =
    let moved = ref true in
    while !moved && !error = None do
      moved := false;
      List.iter
        (fun (r : rtb) ->
          let continue = ref true in
          while
            !continue && !error = None && r.pc < Array.length r.steps
          do
            let st = r.steps.(r.pc) in
            match st.Msccl.op with
            | ("s" | "nop") when dep_satisfied r st ->
                (if st.Msccl.op = "s" then
                   match bufs.(r.gpu).(st.Msccl.srcoff) with
                   | None ->
                       fail
                         "use-before-receive: gpu %d tb %d step %d sends \
                          offset %d before any data arrived there"
                         r.gpu r.tb.Msccl.tb_id st.Msccl.s st.Msccl.srcoff
                   | Some v ->
                       Queue.push v
                         (queue (r.gpu, r.tb.Msccl.tb_send, r.tb.Msccl.tb_chan)));
                r.pc <- r.pc + 1;
                moved := true;
                progress := true
            | "s" | "nop" -> continue := false
            | "r" | "rrc" -> continue := false
            | op ->
                fail "gpu %d tb %d step %d: unknown step type %S" r.gpu
                  r.tb.Msccl.tb_id st.Msccl.s op
          done)
        all_tbs
    done
  in
  let step_recvs () =
    List.iter
      (fun (r : rtb) ->
        if !error = None && r.pc < Array.length r.steps then
          let st = r.steps.(r.pc) in
          match st.Msccl.op with
          | ("r" | "rrc") when dep_satisfied r st -> (
              let q = queue (r.tb.Msccl.tb_recv, r.gpu, r.tb.Msccl.tb_chan) in
              if not (Queue.is_empty q) then begin
                let v = Queue.pop q in
                let cell = bufs.(r.gpu).(st.Msccl.dstoff) in
                (match (st.Msccl.op, cell) with
                | "r", Some _ ->
                    fail
                      "double-write: gpu %d tb %d step %d receives into \
                       offset %d, which is already occupied"
                      r.gpu r.tb.Msccl.tb_id st.Msccl.s st.Msccl.dstoff
                | "r", None -> bufs.(r.gpu).(st.Msccl.dstoff) <- Some v
                | _, Some prev ->
                    bufs.(r.gpu).(st.Msccl.dstoff) <- Some (value_union prev v)
                | _, None -> bufs.(r.gpu).(st.Msccl.dstoff) <- Some v);
                r.pc <- r.pc + 1;
                progress := true
              end)
          | _ -> ())
      all_tbs
  in
  while !progress && !error = None do
    progress := false;
    step_sends ();
    if !error = None then step_recvs ()
  done;
  match !error with
  | Some m -> Error m
  | None ->
      (* Anything left unexecuted is a deadlock: a dependency cycle, a dep
         on a step that never runs, or a receive whose matching send went
         to a different connection (e.g. a channel mismatch). *)
      let blocked =
        List.filter_map
          (fun (r : rtb) ->
            if r.pc >= Array.length r.steps then None
            else
              let st = r.steps.(r.pc) in
              let why =
                if not (dep_satisfied r st) then
                  Printf.sprintf "waiting on tb %d step %d" st.Msccl.depid
                    st.Msccl.deps
                else
                  Printf.sprintf
                    "no payload on connection %d->%d chan %d"
                    r.tb.Msccl.tb_recv r.gpu r.tb.Msccl.tb_chan
              in
              Some
                (Printf.sprintf "gpu %d tb %d step %d (%s): %s" r.gpu
                   r.tb.Msccl.tb_id st.Msccl.s st.Msccl.op why))
          all_tbs
      in
      if blocked <> [] then
        err "deadlock: %d step(s) blocked; first: %s"
          (List.length blocked) (List.hd blocked)
      else begin
        let stray = ref 0 in
        Hashtbl.iter (fun _ q -> stray := !stray + Queue.length q) queues;
        if !stray > 0 then
          err "%d payload(s) sent but never received" !stray
        else
          (* Final placement against the schedule's demand. *)
          let check_chunk c (meta : Schedule.chunk_meta) =
            match meta.Schedule.mode with
            | `Gather ->
                let want = Imap.singleton c 1 in
                List.fold_left
                  (fun acc g ->
                    let* () = acc in
                    match bufs.(g).(c) with
                    | None ->
                        err "gpu %d never received gather chunk %d" g c
                    | Some v when Imap.equal ( = ) v want -> Ok ()
                    | Some v ->
                        err
                          "gpu %d offset %d holds %s instead of chunk %d's \
                           data"
                          g c (pp_value v) c)
                  (Ok ()) meta.Schedule.wanted
            | `Reduce ->
                let want =
                  List.fold_left
                    (fun acc g -> value_union acc (Imap.singleton g 1))
                    Imap.empty
                    (List.sort_uniq compare meta.Schedule.initial)
                in
                List.fold_left
                  (fun acc g ->
                    let* () = acc in
                    match bufs.(g).(c) with
                    | None ->
                        err "gpu %d never received reduce chunk %d" g c
                    | Some v when Imap.equal ( = ) v want -> Ok ()
                    | Some v ->
                        err
                          "reduce chunk %d at gpu %d accumulates %s, want %s"
                          c g (pp_value v) (pp_value want))
                  (Ok ()) meta.Schedule.wanted
          in
          let acc = ref (Ok ()) in
          Array.iteri
            (fun c meta ->
              match !acc with
              | Error _ -> ()
              | Ok () -> acc := check_chunk c meta)
            s.Schedule.chunks;
          !acc
      end

(* ------------------------------------------------------------------ *)
(* End-to-end lowering check                                           *)
(* ------------------------------------------------------------------ *)

let check_lowering ?name ?proto ?(channels = 1) ~(coll : Collective.t)
    (schedules : Schedule.t list) =
  let phases = Collective.phases coll in
  if List.length phases <> List.length schedules then
    err "expected %d phase schedule(s) for %s, got %d" (List.length phases)
      (Collective.kind_name coll.Collective.kind)
      (List.length schedules)
  else
    let rec go i phases schedules =
      match (phases, schedules) with
      | [], [] -> Ok ()
      | phase :: phases, sched :: schedules -> (
          let xml = Msccl.to_xml ?name ?proto ~channels ~coll:phase sched in
          match Msccl.of_xml xml with
          | Error e ->
              err "phase %d: emitted XML does not parse back: %s" i e
          | Ok prog ->
              if not (String.equal (Msccl.emit prog) xml) then
                err "phase %d: to_xml -> of_xml -> emit is not byte-identical"
                  i
              else (
                match replay sched prog with
                | Error e -> err "phase %d: %s" i e
                | Ok () -> go (i + 1) phases schedules))
      | _ -> err "phase/schedule count mismatch"
    in
    go 0 phases schedules
