(** Step-level replay of lowered MSCCL programs — the executor-level half
    of the differential oracle (ROADMAP 5(a)).

    The interpreter replays a {!Msccl.program} under the executor's
    semantics: steps within a threadblock run strictly in order;
    [depid]/[deps] edges gate steps on other threadblocks of the same GPU;
    sends and receives pair up FIFO per (sender, receiver, channel)
    connection; ["r"] writes the payload, ["rrc"] reduces it into the
    destination offset; ["nop"] only waits on its dependency.

    Scheduling is adversarial: every ready send fires before any receive
    each round, so a send that is only {e accidentally} ordered after the
    receive that produces its data (a missing dependency edge) is
    deterministically caught as use-before-receive instead of racing.

    Divergences detected: malformed or missing [depid]/[deps] targets,
    deadlock (dependency cycles, or receives whose matching send went to a
    different connection — e.g. mismatched channels), use-before-receive,
    double-writes into an occupied offset, payloads sent but never
    received, and a final data placement that does not meet the schedule's
    demand (gather chunks at every wanted GPU; the exact contribution
    multiset at a reduce destination). *)

val replay : Schedule.t -> Msccl.program -> (unit, string) result
(** Replay [program] from the initial buffer state implied by the
    schedule's chunk metadata and check the final placement against its
    demand.  [Ok ()] means the lowered program provably performs the
    schedule under executor semantics. *)

val check_lowering :
  ?name:string ->
  ?proto:string ->
  ?channels:int ->
  coll:Syccl_collective.Collective.t ->
  Schedule.t list ->
  (unit, string) result
(** Lower each phase schedule of [coll] (via {!Collective.phases}), then
    check: the XML parses back ([Msccl.of_xml]), re-emission is
    byte-identical, and {!replay} accepts the program.  The first
    divergence is reported with its phase index. *)
