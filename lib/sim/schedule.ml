type xfer = { chunk : int; src : int; dst : int; dim : int; prio : int }

type chunk_meta = {
  size : float;
  mode : [ `Gather | `Reduce ];
  initial : int list;
  wanted : int list;
  tag : int;
}

type t = { chunks : chunk_meta array; xfers : xfer list }

let empty = { chunks = [||]; xfers = [] }

let union schedules =
  let chunks = Array.concat (List.map (fun s -> s.chunks) schedules) in
  let _, xfers =
    List.fold_left
      (fun (offset, acc) s ->
        let shifted =
          List.map (fun x -> { x with chunk = x.chunk + offset }) s.xfers
        in
        (offset + Array.length s.chunks, List.rev_append shifted acc))
      (0, []) schedules
  in
  { chunks; xfers = List.rev xfers }

let map_gpus t f =
  {
    chunks =
      Array.map
        (fun c ->
          { c with initial = List.map f c.initial; wanted = List.map f c.wanted })
        t.chunks;
    xfers = List.map (fun x -> { x with src = f x.src; dst = f x.dst }) t.xfers;
  }

let reverse t =
  let flip c =
    let mode = match c.mode with `Gather -> `Reduce | `Reduce -> `Gather in
    { c with mode; initial = c.wanted; wanted = c.initial }
  in
  (* Time reversal: what finished last must start first, so priorities are
     mirrored (making [reverse] a cost involution under the simulator).
     The mirror pivot is [minp + maxp] of the actual priorities — mirroring
     around it maps the range onto itself, so [reverse (reverse t) = t]
     exactly, including under negative priorities (the old [max 0 _] seed
     shifted them by [-minp] on the way back: cost-equivalent, since the
     simulator only compares priorities, but not an involution). *)
  let pivot =
    match t.xfers with
    | [] -> 0
    | x0 :: rest ->
        let minp, maxp =
          List.fold_left
            (fun (lo, hi) x -> (min lo x.prio, max hi x.prio))
            (x0.prio, x0.prio) rest
        in
        minp + maxp
  in
  {
    chunks = Array.map flip t.chunks;
    xfers =
      List.rev_map
        (fun x -> { x with src = x.dst; dst = x.src; prio = pivot - x.prio })
        t.xfers;
  }

(* Data-flow mirror for copy collectives: [reverse] with every chunk kept
   in copy ([`Gather]) mode.  [reverse] turns a scatter tree into a reduce
   tree — combining semantics — but a Gather demand wants the same
   transfers with plain concatenation, so the mode flip is undone. *)
let transpose t =
  let r = reverse t in
  { r with chunks = Array.map (fun c -> { c with mode = `Gather }) r.chunks }

let scale t f =
  assert (f > 0.0);
  { t with chunks = Array.map (fun c -> { c with size = c.size *. f }) t.chunks }

let num_xfers t = List.length t.xfers

module Json = Syccl_util.Json

(* Bump whenever the JSON layout (or the semantics the simulator assigns to
   it) changes incompatibly: persisted schedules — the on-disk registry in
   particular — are invalidated by version, not by parse failure. *)
let schema_version = 1

let to_json t =
  let ints l = Json.List (List.map (fun i -> Json.Num (float_of_int i)) l) in
  Json.Obj
    [
      ("schema_version", Json.Num (float_of_int schema_version));
      ( "chunks",
        Json.List
          (Array.to_list
             (Array.map
                (fun c ->
                  Json.Obj
                    [
                      ("size", Json.Num c.size);
                      ( "mode",
                        Json.Str
                          (match c.mode with `Gather -> "gather" | `Reduce -> "reduce")
                      );
                      ("initial", ints c.initial);
                      ("wanted", ints c.wanted);
                      ("tag", Json.Num (float_of_int c.tag));
                    ])
                t.chunks)) );
      ( "xfers",
        Json.List
          (List.map
             (fun x ->
               Json.List
                 (List.map
                    (fun i -> Json.Num (float_of_int i))
                    [ x.chunk; x.src; x.dst; x.dim; x.prio ]))
             t.xfers) );
    ]

let of_json j =
  (* Documents predating the field parse as version 1 (the layout is
     unchanged); an explicit mismatched version is rejected up front so a
     registry entry written by a future incompatible build surfaces as a
     clear parse error (⇒ a counted registry miss), never as a
     silently-misread schedule. *)
  (match j with
  | Json.Obj fields -> (
      match List.assoc_opt "schema_version" fields with
      | None -> ()
      | Some v ->
          let got = Json.to_int v in
          if got <> schema_version then
            raise
              (Json.Parse_error
                 (Printf.sprintf
                    "schedule schema_version mismatch: got %d, this build \
                     reads %d"
                    got schema_version)))
  | _ -> ());
  let ints v = List.map Json.to_int (Json.to_list v) in
  let chunks =
    Array.of_list
      (List.map
         (fun c ->
           {
             size = Json.to_float (Json.member "size" c);
             mode =
               (match Json.to_str (Json.member "mode" c) with
               | "gather" -> `Gather
               | "reduce" -> `Reduce
               | s -> raise (Json.Parse_error ("unknown chunk mode " ^ s)));
             initial = ints (Json.member "initial" c);
             wanted = ints (Json.member "wanted" c);
             tag = Json.to_int (Json.member "tag" c);
           })
         (Json.to_list (Json.member "chunks" j)))
  in
  let xfers =
    List.map
      (fun x ->
        match ints x with
        | [ chunk; src; dst; dim; prio ] -> { chunk; src; dst; dim; prio }
        | _ -> raise (Json.Parse_error "transfer must have five fields"))
      (Json.to_list (Json.member "xfers" j))
  in
  { chunks; xfers }

let pp fmt t =
  Format.fprintf fmt "@[<v>schedule: %d chunks, %d xfers@," (Array.length t.chunks)
    (num_xfers t);
  List.iteri
    (fun i x ->
      if i < 64 then
        Format.fprintf fmt "  c%d: %d -> %d (dim %d)@," x.chunk x.src x.dst x.dim)
    t.xfers;
  if num_xfers t > 64 then Format.fprintf fmt "  ...@,";
  Format.fprintf fmt "@]"
