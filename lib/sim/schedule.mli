(** Schedule intermediate representation.

    A schedule is a set of transfers over a topology: each transfer moves one
    chunk between two GPUs of one dimension's group.  Ordering is implicit —
    a transfer may start once its source holds the chunk and the contended
    ports are free — with [prio] available for breaking ties the way the
    synthesizer intended.  This mirrors the event model of the paper's
    simulator (§5.2). *)

type xfer = {
  chunk : int;
  src : int;
  dst : int;
  dim : int;  (** topology dimension the transfer uses *)
  prio : int;  (** tie-break priority; lower goes first *)
}

(** Chunk semantics: gather-style chunks flow from initial holders outward (a
    GPU holds the chunk after receiving any copy); reduce-style chunks flow
    inward (a GPU may forward only after receiving from {e all} its in-edges,
    combining as it goes).

    [tag] records which chunk of the original collective demand this schedule
    chunk carves from — chunk splitting (§4.2) turns one demand chunk into
    several schedule chunks with the same tag whose sizes sum to the demand
    chunk size. *)
type chunk_meta = {
  size : float;  (** bytes *)
  mode : [ `Gather | `Reduce ];
  initial : int list;
      (** gather: GPUs holding the chunk at time 0; reduce: GPUs with a
          contribution that must reach the destination *)
  wanted : int list;
      (** gather: GPUs that must end up holding the chunk; reduce: the single
          destination *)
  tag : int;
}

type t = { chunks : chunk_meta array; xfers : xfer list }

val empty : t

val union : t list -> t
(** Disjoint union: chunk ids of later schedules are shifted so they do not
    collide (tags are preserved). *)

val map_gpus : t -> (int -> int) -> t
(** Relabel GPUs through a mapping (used to map a solved representative
    schedule onto an isomorphic group, §5.3). *)

val reverse : t -> t
(** Time-reversal: turns a Broadcast/Scatter tree into the corresponding
    Reduce/Gather schedule and vice versa (§4.1).  Gather chunks become
    reduce chunks with [initial] and [wanted] swapped and every edge
    flipped. *)

val transpose : t -> t
(** {!reverse} with every chunk kept in copy ([`Gather]) mode — the mirror
    for {e non-reducing} demands.  A Gather collective is the data-flow
    reverse of a Scatter, but its chunks are concatenated, not combined, so
    the reduce-mode flip {!reverse} performs must be undone. *)

val scale : t -> float -> t
(** Multiply every chunk size by a fraction (chunk splitting, §4.2). *)

val num_xfers : t -> int

val schema_version : int
(** Version stamped into {!to_json} output.  Bumped on incompatible layout
    changes; {!of_json} rejects any other explicit version. *)

val to_json : t -> Syccl_util.Json.t
val of_json : Syccl_util.Json.t -> t
(** Lossless persistence; [of_json] raises {!Syccl_util.Json.Parse_error} on
    malformed or incomplete documents, and on a [schema_version] field that
    does not match this build's {!schema_version} (documents without the
    field are read as version 1). *)

val pp : Format.formatter -> t -> unit
