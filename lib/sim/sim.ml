module Topology = Syccl_topology.Topology
module Pqueue = Syccl_util.Pqueue
module Trace = Syccl_util.Trace

type report = { time : float; events : int; xfer_finish : float array }

(* A queue entry is one block of one transfer whose data dependency has
   resolved; [avail] is when the source can first inject it. *)
type entry = { avail : float; prio : int; xid : int; block : int }

let run ?(blocks = 8) ?trace_pid topo (s : Schedule.t) =
  Syccl_util.Faultpoint.inject "sim.crash";
  let xa = Array.of_list s.xfers in
  let nx = Array.length xa in
  let nc = Array.length s.chunks in
  Array.iter
    (fun (x : Schedule.xfer) ->
      if x.chunk < 0 || x.chunk >= nc then
        invalid_arg "Sim.run: transfer references missing chunk";
      if x.dim < 0 || x.dim >= Topology.num_dims topo then
        invalid_arg "Sim.run: bad dimension";
      if
        Topology.group_of topo ~dim:x.dim x.src
        <> Topology.group_of topo ~dim:x.dim x.dst
        || x.src = x.dst
      then invalid_arg "Sim.run: endpoints are not peers in the dimension";
      if not (Topology.edge_alive topo ~dim:x.dim x.src x.dst) then
        invalid_arg "Sim.run: transfer crosses a dead edge")
    xa;
  (* Per-chunk block count: pipelining never splits below one byte. *)
  let nblocks =
    Array.map
      (fun (c : Schedule.chunk_meta) ->
        max 1 (min blocks (int_of_float c.size)))
      s.chunks
  in
  (* Dependents: transfers of chunk [c] leaving GPU [v]. *)
  let dependents = Hashtbl.create (2 * max 1 nx) in
  Array.iteri
    (fun i (x : Schedule.xfer) ->
      let key = (x.chunk, x.src) in
      Hashtbl.replace dependents key
        (i :: Option.value (Hashtbl.find_opt dependents key) ~default:[]))
    xa;
  let inbound_cnt = Hashtbl.create (2 * max 1 nx) in
  Array.iter
    (fun (x : Schedule.xfer) ->
      let key = (x.chunk, x.dst) in
      Hashtbl.replace inbound_cnt key
        (1 + Option.value (Hashtbl.find_opt inbound_cnt key) ~default:0))
    xa;
  let is_initial c v = List.mem v s.chunks.(c).Schedule.initial in
  (* need.(x).(b): remaining data inputs before block b may be injected;
     avail.(x).(b): accumulated availability (max of arrivals for reduce). *)
  let need = Array.map (fun (x : Schedule.xfer) ->
      let c = s.chunks.(x.chunk) in
      let inb = Option.value (Hashtbl.find_opt inbound_cnt (x.chunk, x.src)) ~default:0 in
      let per_block =
        match c.mode with
        | `Gather -> if is_initial x.chunk x.src then 0 else min 1 inb
        | `Reduce -> inb
      in
      Array.make nblocks.(x.chunk) per_block)
      xa
  in
  let avail = Array.map (fun (x : Schedule.xfer) -> Array.make nblocks.(x.chunk) 0.0) xa in
  let started = Array.map (fun (x : Schedule.xfer) -> Array.make nblocks.(x.chunk) false) xa in
  let queue =
    Pqueue.create ~cmp:(fun a b ->
        let c = Float.compare a.avail b.avail in
        if c <> 0 then c
        else
          let c = compare a.prio b.prio in
          if c <> 0 then c
          else
            let c = compare a.xid b.xid in
            if c <> 0 then c else compare a.block b.block)
  in
  let push_ready xid block =
    if not started.(xid).(block) then begin
      started.(xid).(block) <- true;
      Pqueue.push queue
        { avail = avail.(xid).(block); prio = xa.(xid).prio; xid; block }
    end
  in
  (* Seed: blocks whose source is ready at time 0. *)
  Array.iteri
    (fun i (x : Schedule.xfer) ->
      let c = s.chunks.(x.chunk) in
      let ready =
        match c.mode with
        | `Gather -> is_initial x.chunk x.src
        | `Reduce -> need.(i).(0) = 0 && is_initial x.chunk x.src
      in
      if ready then
        for b = 0 to nblocks.(x.chunk) - 1 do
          push_ready i b
        done)
    xa;
  (* Port state: one egress and one ingress per (GPU, port group). *)
  let npg =
    1
    + Array.fold_left
        (fun acc d -> max acc d.Topology.port_group)
        0
        (Array.init (Topology.num_dims topo) (fun d -> Topology.dim topo d))
  in
  let n = Topology.num_gpus topo in
  let egress = Array.make (n * npg) 0.0 in
  let ingress = Array.make (n * npg) 0.0 in
  let xfer_finish = Array.make nx 0.0 in
  let blocks_done = Array.make nx 0 in
  let events = ref 0 in
  let makespan = ref 0.0 in
  let on_arrival xid block t_arr =
    let x = xa.(xid) in
    blocks_done.(xid) <- blocks_done.(xid) + 1;
    xfer_finish.(xid) <- Float.max xfer_finish.(xid) t_arr;
    if t_arr > !makespan then makespan := t_arr;
    (* Wake dependents of (chunk, dst). *)
    match Hashtbl.find_opt dependents (x.chunk, x.dst) with
    | None -> ()
    | Some deps ->
        List.iter
          (fun d ->
            let nb = nblocks.(xa.(d).chunk) in
            if block < nb then begin
              if need.(d).(block) > 0 then begin
                need.(d).(block) <- need.(d).(block) - 1;
                avail.(d).(block) <- Float.max avail.(d).(block) t_arr;
                if need.(d).(block) = 0 then push_ready d block
              end
            end)
          deps
  in
  (* A block binds its ports only when it can start at its availability
     time.  Binding at pop time would couple unrelated ports: an egress
     waiting on a busy remote ingress would block every later send from that
     egress — head-of-line blocking the hardware does not have.  Blocks that
     cannot start park in a per-port waiting queue; each port keeps at most
     one "promoted" representative in the main queue (scheduled at the
     port's free time), so wake-ups stay linear in the number of binds. *)
  let nports = 2 * n * npg in
  (* Ports are numbered: egress = 2*(gpu*npg+pg), ingress = that + 1. *)
  let port_free p =
    if p land 1 = 0 then egress.(p lsr 1) else ingress.(p lsr 1)
  in
  let entry_cmp a b =
    let c = Float.compare a.avail b.avail in
    if c <> 0 then c
    else
      let c = compare a.prio b.prio in
      if c <> 0 then c
      else
        let c = compare a.xid b.xid in
        if c <> 0 then c else compare a.block b.block
  in
  (* Timeline export: every executed block becomes one span on the egress
     port's track and one on the ingress port's track (virtual simulated
     time), so the schedule renders as a link-occupancy Gantt chart in
     Perfetto.  Tracks are numbered by port id and named on first use. *)
  let tracing =
    match trace_pid with
    | Some pid when Trace.enabled () -> Some pid
    | _ -> None
  in
  let port_seen = Array.make nports false in
  let mark_port pid p =
    if not port_seen.(p) then begin
      port_seen.(p) <- true;
      let gp = p lsr 1 in
      Trace.set_track_name ~pid ~tid:p ~sort_index:p
        (Printf.sprintf "gpu%d pg%d %s" (gp / npg) (gp mod npg)
           (if p land 1 = 0 then "out" else "in"))
    end
  in
  let trace_block e (x : Schedule.xfer) ~egp ~igp ~start ~busy =
    match tracing with
    | None -> ()
    | Some pid ->
        mark_port pid egp;
        mark_port pid igp;
        let name = Printf.sprintf "c%d.b%d %d>%d" x.chunk e.block x.src x.dst in
        let args =
          [
            ("xfer", string_of_int e.xid);
            ("chunk", string_of_int x.chunk);
            ("block", string_of_int e.block);
            ("src", string_of_int x.src);
            ("dst", string_of_int x.dst);
            ("dim", string_of_int x.dim);
          ]
        in
        Trace.emit ~pid ~tid:egp ~cat:"sim" ~args ~name ~ts:start ~dur:busy ();
        Trace.emit ~pid ~tid:igp ~cat:"sim" ~args ~name ~ts:start ~dur:busy ()
  in
  let waiters = Array.init nports (fun _ -> Pqueue.create ~cmp:entry_cmp) in
  let promoted = Array.make nports false in
  (* Which port a promoted entry represents, keyed by (xid, block). *)
  let rep_of = Hashtbl.create 64 in
  let promote p =
    if not promoted.(p) then
      match Pqueue.pop waiters.(p) with
      | None -> ()
      | Some w ->
          promoted.(p) <- true;
          Hashtbl.replace rep_of (w.xid, w.block) p;
          Pqueue.push queue { w with avail = Float.max w.avail (port_free p) }
  in
  let release_rep e =
    match Hashtbl.find_opt rep_of (e.xid, e.block) with
    | None -> ()
    | Some p ->
        Hashtbl.remove rep_of (e.xid, e.block);
        promoted.(p) <- false
  in
  let total_blocks =
    Array.fold_left (fun a (x : Schedule.xfer) -> a + nblocks.(x.chunk)) 0 xa
  in
  let event_cap = 64 + (32 * total_blocks) in
  let pops = ref 0 in
  let rec loop () =
    match Pqueue.pop queue with
    | None -> ()
    | Some e ->
        incr pops;
        if !pops > event_cap then
          failwith "Sim.run: event cap exceeded";
        let was_rep = Hashtbl.find_opt rep_of (e.xid, e.block) in
        release_rep e;
        let x = xa.(e.xid) in
        let d = Topology.dim topo x.dim in
        let pg = d.Topology.port_group in
        let link = d.Topology.link in
        let sb =
          s.chunks.(x.chunk).Schedule.size /. float_of_int nblocks.(x.chunk)
        in
        let egp = 2 * ((x.src * npg) + pg) in
        let igp = (2 * ((x.dst * npg) + pg)) + 1 in
        let eg_free = port_free egp and ig_free = port_free igp in
        let blocked = Float.max eg_free ig_free in
        if blocked > e.avail +. 1e-15 then begin
          (* Park on the later-free port; keep that port's pipeline primed. *)
          let p = if eg_free >= ig_free then egp else igp in
          Pqueue.push waiters.(p) e;
          promote p;
          (match was_rep with Some old when old <> p -> promote old | _ -> ());
          loop ()
        end
        else begin
          incr events;
          let start = e.avail in
          let busy = Syccl_topology.Link.busy_time link sb in
          egress.(egp lsr 1) <- start +. busy;
          ingress.(igp lsr 1) <- start +. busy;
          trace_block e x ~egp ~igp ~start ~busy;
          let arrival = start +. Syccl_topology.Link.transfer_time link sb in
          on_arrival e.xid e.block arrival;
          promote egp;
          promote igp;
          loop ()
        end
  in
  loop ();
  (* Every block of every transfer must have run, else the schedule
     deadlocked (a relay never received its data). *)
  Array.iteri
    (fun i (x : Schedule.xfer) ->
      if blocks_done.(i) <> nblocks.(x.chunk) then
        failwith
          (Printf.sprintf "Sim.run: deadlock, transfer %d (chunk %d, %d->%d) incomplete"
             i x.chunk x.src x.dst))
    xa;
  { time = !makespan; events = !events; xfer_finish }

let time ?blocks topo s = (run ?blocks topo s).time
