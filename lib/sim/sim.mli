(** α-β event-driven schedule simulator (§5.2).

    Chunks are split into [blocks] equal blocks which pipeline across hops:
    block [b] of a relayed transfer may be injected as soon as block [b]
    arrived at the relay.  Ports — one egress and one ingress per (GPU, port
    group) — serialize at [β·block_size] per block; a block lands
    [α + β·block_size] after it starts.  Every block event is processed
    exactly once, so the cost is O(events · log events). *)

type report = {
  time : float;  (** completion time of the whole schedule, seconds *)
  events : int;  (** number of block events processed *)
  xfer_finish : float array;  (** finish time of each transfer (last block) *)
}

val run :
  ?blocks:int -> ?trace_pid:int -> Syccl_topology.Topology.t -> Schedule.t ->
  report
(** Simulate.  [blocks] defaults to 8; it is clamped so blocks are at least
    one byte.  Raises [Invalid_argument] if a transfer references a missing
    chunk or its endpoints are not peers in its dimension, and [Failure] if
    the schedule deadlocks (a transfer's data dependency never resolves).

    With [trace_pid] (and {!Syccl_util.Trace.enabled}), every executed
    block is exported as a virtual-time span on a per-(GPU, port group,
    direction) track under that trace pid — one track per active port,
    numbered and named ["gpu<g> pg<p> out|in"] — so the schedule renders
    as a link-occupancy Gantt chart in Perfetto.  Use a distinct pid per
    simulated schedule (e.g. per phase) to keep timelines separate.

    The ["sim.crash"] {!Syccl_util.Faultpoint} probe fires at entry, for
    testing that callers tolerate simulator failures. *)

val time : ?blocks:int -> Syccl_topology.Topology.t -> Schedule.t -> float
(** [time topo s] = [(run topo s).time]. *)
