(** α-β event-driven schedule simulator (§5.2).

    Chunks are split into [blocks] equal blocks which pipeline across hops:
    block [b] of a relayed transfer may be injected as soon as block [b]
    arrived at the relay.  Ports — one egress and one ingress per (GPU, port
    group) — serialize at [β·block_size] per block; a block lands
    [α + β·block_size] after it starts.  Every block event is processed
    exactly once, so the cost is O(events · log events). *)

type report = {
  time : float;  (** completion time of the whole schedule, seconds *)
  events : int;  (** number of block events processed *)
  xfer_finish : float array;  (** finish time of each transfer (last block) *)
}

val run : ?blocks:int -> Syccl_topology.Topology.t -> Schedule.t -> report
(** Simulate.  [blocks] defaults to 8; it is clamped so blocks are at least
    one byte.  Raises [Invalid_argument] if a transfer references a missing
    chunk or its endpoints are not peers in its dimension, and [Failure] if
    the schedule deadlocks (a transfer's data dependency never resolves). *)

val time : ?blocks:int -> Syccl_topology.Topology.t -> Schedule.t -> float
(** [time topo s] = [(run topo s).time]. *)
