(* Schedule transport along a topology automorphism: relabel every transfer
   endpoint through the permutation and translate demand-chunk tags so the
   result covers the transported collective.  Validity and simulated cost
   are preserved — the automorphism-transport fuzz property holds exactly
   this law — which is what lets failover warming synthesize one fault-orbit
   representative and transport it to every equivalent fault set. *)

module Perm = Syccl_util.Perm
module Collective = Syccl_collective.Collective

(* Demand chunk ids are canonical per collective (AllGather chunk i starts
   on GPU i, ...), so transporting a schedule also permutes which demand
   chunk each tag refers to.  Match each original chunk's permuted endpoint
   signature against the transported collective's chunks to build the tag
   translation; None when a signature is ambiguous. *)
let tags p phase phase' =
  let signature = function
    | Collective.Gather_chunk { src; dsts; _ } ->
        `G (src, List.sort compare dsts)
    | Collective.Reduce_chunk { dst; srcs; _ } ->
        `R (dst, List.sort compare srcs)
  in
  let permuted = function
    | Collective.Gather_chunk { src; dsts; _ } ->
        `G (Perm.apply p src, List.sort compare (List.map (Perm.apply p) dsts))
    | Collective.Reduce_chunk { dst; srcs; _ } ->
        `R (Perm.apply p dst, List.sort compare (List.map (Perm.apply p) srcs))
  in
  let id = function
    | Collective.Gather_chunk { id; _ } | Collective.Reduce_chunk { id; _ } ->
        id
  in
  let chunks' = Collective.chunks phase' in
  let translate ch =
    match List.filter (fun ch' -> signature ch' = permuted ch) chunks' with
    | [ ch' ] -> Some (id ch, id ch')
    | _ -> None
  in
  let pairs = List.map translate (Collective.chunks phase) in
  if List.exists Option.is_none pairs then None
  else Some (List.filter_map Fun.id pairs)

let retag map (s : Schedule.t) =
  {
    s with
    Schedule.chunks =
      Array.map
        (fun (m : Schedule.chunk_meta) ->
          match List.assoc_opt m.tag map with
          | Some tag -> { m with Schedule.tag = tag }
          | None -> m)
        s.Schedule.chunks;
  }

let phase p ~phase:ph ~phase':ph' s =
  match tags p ph ph' with
  | None -> None
  | Some map -> Some (retag map (Schedule.map_gpus s (Perm.apply p)))

let schedules p coll coll' ss =
  let phases = Collective.phases coll
  and phases' = Collective.phases coll' in
  if List.length phases <> List.length ss then None
  else
    let rec go acc phs phs' ss =
      match (phs, phs', ss) with
      | [], [], [] -> Some (List.rev acc)
      | ph :: phs, ph' :: phs', s :: ss -> (
          match phase p ~phase:ph ~phase':ph' s with
          | None -> None
          | Some s' -> go (s' :: acc) phs phs' ss)
      | _ -> None
    in
    go [] phases phases' ss
