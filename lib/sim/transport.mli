(** Schedule transport along a topology automorphism (§4.2).

    Relabels transfer endpoints through the permutation and translates
    demand-chunk tags so the transported schedule covers the transported
    collective.  Validity and simulated cost are preserved (the
    automorphism-transport fuzz law); failover warming leans on this to
    synthesize one fault-orbit representative and transport it to every
    equivalent fault set. *)

val tags :
  Syccl_util.Perm.t -> Syccl_collective.Collective.t ->
  Syccl_collective.Collective.t -> (int * int) list option
(** [tags p phase phase'] maps each demand-chunk id of [phase] to the id of
    the chunk of [phase'] whose endpoint signature is its image under [p];
    [None] when any signature is ambiguous. *)

val retag : (int * int) list -> Schedule.t -> Schedule.t
(** Apply a tag translation to a schedule's chunk metadata. *)

val phase :
  Syccl_util.Perm.t ->
  phase:Syccl_collective.Collective.t ->
  phase':Syccl_collective.Collective.t ->
  Schedule.t -> Schedule.t option
(** Transport one phase schedule: endpoint relabelling plus tag
    translation.  [None] on ambiguous signatures. *)

val schedules :
  Syccl_util.Perm.t -> Syccl_collective.Collective.t ->
  Syccl_collective.Collective.t -> Schedule.t list -> Schedule.t list option
(** Transport a per-phase schedule list from one collective to its
    transported counterpart ([Collective.phases] of each must line up).
    [None] on phase-count mismatch or any ambiguous tag signature. *)
