module Topology = Syccl_topology.Topology
module Collective = Syccl_collective.Collective

let ( let* ) = Result.bind

let err fmt = Format.kasprintf (fun s -> Error s) fmt

let check_structure topo (s : Schedule.t) =
  let nc = Array.length s.chunks in
  let rec go = function
    | [] -> Ok ()
    | (x : Schedule.xfer) :: rest ->
        if x.chunk < 0 || x.chunk >= nc then err "xfer references chunk %d" x.chunk
        else if x.src = x.dst then err "self-transfer at GPU %d" x.src
        else if x.dim < 0 || x.dim >= Topology.num_dims topo then
          err "xfer uses bad dimension %d" x.dim
        else if
          Topology.group_of topo ~dim:x.dim x.src
          <> Topology.group_of topo ~dim:x.dim x.dst
        then err "xfer %d->%d: not peers in dimension %d" x.src x.dst x.dim
        else if not (Topology.gpu_alive topo x.src) then
          err "xfer %d->%d: source GPU is down" x.src x.dst
        else if not (Topology.gpu_alive topo x.dst) then
          err "xfer %d->%d: destination GPU is down" x.src x.dst
        else if not (Topology.edge_alive topo ~dim:x.dim x.src x.dst) then
          err "xfer %d->%d: edge is down in dimension %d (faults %s)" x.src
            x.dst x.dim
            (Syccl_topology.Fault.encode (Topology.faults topo))
        else go rest
  in
  go s.xfers

let check_gather_chunk (s : Schedule.t) c meta =
  let xfers = List.filter (fun (x : Schedule.xfer) -> x.chunk = c) s.xfers in
  (* No GPU may receive the chunk more than once (bandwidth waste, §4.1),
     nor receive it if it already holds it initially. *)
  let dsts = List.map (fun (x : Schedule.xfer) -> x.dst) xfers in
  let dup =
    List.length dsts <> List.length (List.sort_uniq compare dsts)
    || List.exists (fun d -> List.mem d meta.Schedule.initial) dsts
  in
  if dup then err "chunk %d delivered twice to some GPU" c
  else begin
    (* Causal fixpoint: a transfer fires once its source holds the chunk. *)
    let holders = Hashtbl.create 16 in
    List.iter (fun v -> Hashtbl.replace holders v ()) meta.Schedule.initial;
    let remaining = ref xfers in
    let progress = ref true in
    while !progress do
      progress := false;
      let still = ref [] in
      List.iter
        (fun (x : Schedule.xfer) ->
          if Hashtbl.mem holders x.src then begin
            Hashtbl.replace holders x.dst ();
            progress := true
          end
          else still := x :: !still)
        !remaining;
      remaining := !still
    done;
    if !remaining <> [] then err "chunk %d: some transfers can never fire" c
    else
      match
        List.find_opt (fun v -> not (Hashtbl.mem holders v)) meta.Schedule.wanted
      with
      | Some v -> err "chunk %d never reaches GPU %d" c v
      | None -> Ok ()
  end

let check_reduce_chunk (s : Schedule.t) c meta =
  let xfers = List.filter (fun (x : Schedule.xfer) -> x.chunk = c) s.xfers in
  match meta.Schedule.wanted with
  | [ dst ] ->
      (* Each GPU sends at most once: the transfers form a functional graph
         that must flow into [dst] from every contributor, acyclically. *)
      let next = Hashtbl.create 16 in
      let dup = ref false in
      List.iter
        (fun (x : Schedule.xfer) ->
          if Hashtbl.mem next x.src then dup := true
          else Hashtbl.replace next x.src x.dst)
        xfers;
      if !dup then err "reduce chunk %d: a GPU sends twice" c
      else if Hashtbl.mem next dst then err "reduce chunk %d: destination %d sends" c dst
      else begin
        let reaches v =
          let rec walk v steps =
            if v = dst then true
            else if steps > List.length xfers then false
            else
              match Hashtbl.find_opt next v with
              | None -> false
              | Some u -> walk u (steps + 1)
          in
          walk v 0
        in
        (* Every sender — not just the initial holders — must flow into
           [dst] acyclically; a cycle among non-contributors (v1->v2,
           v2->v1) must not validate just because each is some transfer's
           destination. *)
        match
          List.find_opt (fun (x : Schedule.xfer) -> not (reaches x.src)) xfers
        with
        | Some x ->
            err "reduce chunk %d: GPU %d sends but never reaches %d" c x.src dst
        | None -> (
            match
              List.find_opt
                (fun v -> v <> dst && not (reaches v))
                meta.Schedule.initial
            with
            | Some v ->
                err "reduce chunk %d: contribution of GPU %d never reaches %d" c
                  v dst
            | None ->
                (* Causal data possession: a sender must either contribute
                   its own value or have received a partial from a sender
                   that itself holds data — computed as a fixpoint so a
                   chain (or cycle) of empty-handed relays cannot bless
                   itself into the reduction. *)
                let has_data = Hashtbl.create 16 in
                List.iter
                  (fun v -> Hashtbl.replace has_data v ())
                  meta.Schedule.initial;
                let progress = ref true in
                while !progress do
                  progress := false;
                  List.iter
                    (fun (x : Schedule.xfer) ->
                      if
                        Hashtbl.mem has_data x.src
                        && not (Hashtbl.mem has_data x.dst)
                      then begin
                        Hashtbl.replace has_data x.dst ();
                        progress := true
                      end)
                    xfers
                done;
                (match
                   List.find_opt
                     (fun (x : Schedule.xfer) -> not (Hashtbl.mem has_data x.src))
                     xfers
                 with
                | Some x ->
                    err "reduce chunk %d: GPU %d sends without holding data" c
                      x.src
                | None -> Ok ()))
      end
  | _ -> err "reduce chunk %d must have exactly one destination" c

let check topo (s : Schedule.t) =
  let* () = check_structure topo s in
  let rec go c =
    if c >= Array.length s.chunks then Ok ()
    else
      let meta = s.chunks.(c) in
      let* () =
        match meta.Schedule.mode with
        | `Gather -> check_gather_chunk s c meta
        | `Reduce -> check_reduce_chunk s c meta
      in
      go (c + 1)
  in
  go 0

let covers topo coll (s : Schedule.t) =
  let* () = check topo s in
  let demand = Collective.chunks coll in
  let by_tag tag =
    List.filter (fun (_, m) -> m.Schedule.tag = tag)
      (Array.to_list (Array.mapi (fun i m -> (i, m)) s.chunks))
  in
  let rec go = function
    | [] -> Ok ()
    | Collective.Gather_chunk { id; size; src; dsts } :: rest ->
        let frs = by_tag id in
        if frs = [] then err "demand chunk %d has no schedule chunks" id
        else begin
          let total = List.fold_left (fun a (_, m) -> a +. m.Schedule.size) 0.0 frs in
          if Float.abs (total -. size) > 1e-3 *. size then
            err "demand chunk %d: fractions sum to %g, expected %g" id total size
          else
            match
              List.find_opt
                (fun (_, m) ->
                  m.Schedule.mode <> `Gather
                  || not (List.mem src m.Schedule.initial)
                  || not
                       (List.for_all
                          (fun d ->
                            List.mem d m.Schedule.wanted
                            || List.mem d m.Schedule.initial)
                          dsts))
                frs
            with
            | Some (i, _) -> err "demand chunk %d: schedule chunk %d mismatched" id i
            | None -> go rest
        end
    | Collective.Reduce_chunk { id; size; dst; srcs } :: rest ->
        let frs = by_tag id in
        if frs = [] then err "demand chunk %d has no schedule chunks" id
        else begin
          let total = List.fold_left (fun a (_, m) -> a +. m.Schedule.size) 0.0 frs in
          if Float.abs (total -. size) > 1e-3 *. size then
            err "demand chunk %d: fractions sum to %g, expected %g" id total size
          else
            match
              List.find_opt
                (fun (_, m) ->
                  (* Set equality, not mere inclusion: an [initial] GPU
                     outside the demanded contributor set would inject an
                     extra operand into the reduction. *)
                  m.Schedule.mode <> `Reduce
                  || m.Schedule.wanted <> [ dst ]
                  || List.sort_uniq compare m.Schedule.initial
                     <> List.sort_uniq compare srcs)
                frs
            with
            | Some (i, _) -> err "demand chunk %d: schedule chunk %d mismatched" id i
            | None -> go rest
        end
  in
  go demand

(* Whole-outcome validation: one schedule per collective phase (AllReduce =
   ReduceScatter then AllGather), each checked for self-consistency and
   demand coverage.  The degradation ladder runs this on every rung before
   returning, fallback included. *)
let validate topo coll schedules =
  let phases = Collective.phases coll in
  let np = List.length phases and ns = List.length schedules in
  if np <> ns then err "expected %d phase schedules, got %d" np ns
  else
    List.fold_left2
      (fun acc (i, phase) s ->
        let* () = acc in
        Result.map_error
          (fun e -> Printf.sprintf "phase %d: %s" i e)
          (covers topo phase s))
      (Ok ())
      (List.mapi (fun i p -> (i, p)) phases)
      schedules
