(** Schedule validity and demand-coverage checking.

    Used throughout the test-suite and by the synthesizers as a
    post-condition: a schedule must actually satisfy the collective demand it
    was synthesized for, without bandwidth-wasting duplicate deliveries. *)

val check : Syccl_topology.Topology.t -> Schedule.t -> (unit, string) result
(** Self-consistency of a schedule against its own chunk metadata:
    - every transfer's endpoints are distinct peers in its dimension;
    - gather chunks: a causal order exists that delivers the chunk to every
      [wanted] GPU, and no GPU receives the same chunk twice;
    - reduce chunks: the transfers form a forest flowing into the single
      [wanted] destination, every [initial] contributor reaches it, and no
      GPU sends the chunk twice. *)

val covers :
  Syccl_topology.Topology.t ->
  Syccl_collective.Collective.t ->
  Schedule.t ->
  (unit, string) result
(** {!check} plus demand coverage: schedule chunks grouped by [tag] must
    reconstruct each chunk of the collective — same sources and destinations,
    and fraction sizes summing to the demand chunk size (0.1 % tolerance).
    AllReduce demands must be validated per phase. *)

val validate :
  Syccl_topology.Topology.t ->
  Syccl_collective.Collective.t ->
  Schedule.t list ->
  (unit, string) result
(** Validate a whole synthesis outcome: one schedule per phase of the
    collective ({!Syccl_collective.Collective.phases}), each run through
    {!covers} against its phase.  Errors are prefixed with the phase
    index.  This is the post-condition every degradation-ladder rung must
    pass before its result is returned. *)
