module Topology = Syccl_topology.Topology
module Link = Syccl_topology.Link
module Schedule = Syccl_sim.Schedule
module Milp = Syccl_milp.Milp
module Lp = Syccl_milp.Lp

type edge = { eu : int; ev : int; edim : int }

type spec = {
  topo : Topology.t;
  chunks : Schedule.chunk_meta array;
  edges : edge array;
  tau : float;
  horizon : int;
}

let group_edges topo ~dim ~group =
  let members = Topology.gpus_in_group topo ~dim ~group in
  let acc = ref [] in
  Array.iter
    (fun u ->
      Array.iter
        (fun v ->
          if u <> v && Topology.edge_alive topo ~dim u v then
            acc := { eu = u; ev = v; edim = dim } :: !acc)
        members)
    members;
  Array.of_list (List.rev !acc)

let all_edges topo =
  let n = Topology.num_gpus topo in
  let acc = ref [] in
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      if u <> v then begin
        (* Lowest dimension connecting the pair (fastest/most local link). *)
        let rec first d =
          if d >= Topology.num_dims topo then None
          else if
            Topology.group_of topo ~dim:d u = Topology.group_of topo ~dim:d v
            && Topology.edge_alive topo ~dim:d u v
          then Some d
          else first (d + 1)
        in
        match first 0 with
        | Some d -> acc := { eu = u; ev = v; edim = d } :: !acc
        | None -> ()
      end
    done
  done;
  Array.of_list (List.rev !acc)

let edge_timing spec c k =
  let link = (Topology.dim spec.topo spec.edges.(k).edim).Topology.link in
  Tau.epochs_for ~link ~size:spec.chunks.(c).Schedule.size ~tau:spec.tau

let port_group spec k = (Topology.dim spec.topo spec.edges.(k).edim).Topology.port_group

let replay spec (sched : Schedule.t) =
  let n = Topology.num_gpus spec.topo in
  let nd = Topology.num_dims spec.topo in
  let npg =
    1 + Array.fold_left max 0
          (Array.init nd (fun d -> (Topology.dim spec.topo d).Topology.port_group))
  in
  let nc = Array.length spec.chunks in
  let hold = Array.make_matrix nc n max_int in
  Array.iteri
    (fun c (m : Schedule.chunk_meta) -> List.iter (fun v -> hold.(c).(v) <- 0) m.initial)
    spec.chunks;
  let eg = Array.make (n * npg) 0 and ing = Array.make (n * npg) 0 in
  let ordered =
    List.stable_sort (fun (a : Schedule.xfer) b -> compare a.prio b.prio) sched.xfers
  in
  let edge_index = Hashtbl.create 64 in
  Array.iteri (fun k e -> Hashtbl.replace edge_index (e.eu, e.ev, e.edim) k) spec.edges;
  let fits = ref true in
  let makespan = ref 0 in
  List.iter
    (fun (x : Schedule.xfer) ->
      if !fits then
        match Hashtbl.find_opt edge_index (x.src, x.dst, x.dim) with
        | None -> fits := false
        | Some k ->
            let lat, busy = edge_timing spec x.chunk k in
            let pg = port_group spec k in
            if hold.(x.chunk).(x.src) = max_int then fits := false
            else begin
              let start =
                max hold.(x.chunk).(x.src)
                  (max eg.((x.src * npg) + pg) ing.((x.dst * npg) + pg))
              in
              eg.((x.src * npg) + pg) <- start + busy;
              ing.((x.dst * npg) + pg) <- start + busy;
              let arrive = start + lat in
              if arrive < hold.(x.chunk).(x.dst) then hold.(x.chunk).(x.dst) <- arrive;
              if arrive > !makespan then makespan := arrive;
              if arrive > spec.horizon then fits := false
            end)
    ordered;
  (* All demands must actually be met under the quantized replay. *)
  Array.iteri
    (fun c (m : Schedule.chunk_meta) ->
      List.iter (fun v -> if hold.(c).(v) = max_int then fits := false) m.wanted)
    spec.chunks;
  if !fits then Some !makespan else None

(* Variable layout helpers. *)
type layout = {
  model : Milp.model;
  has : int array array array;  (* chunk, gpu, epoch 0..horizon *)
  send : int array array;  (* chunk, edge -> first epoch var id; -1 if none *)
  send_epochs : int array array;  (* number of epoch slots per (chunk, edge) *)
  t_var : int;
}

let build spec =
  let n = Topology.num_gpus spec.topo in
  let nc = Array.length spec.chunks in
  let ne = Array.length spec.edges in
  let horizon = spec.horizon in
  let m = Milp.create () in
  (* Participating GPUs: restrict [has] variables to GPUs that appear in the
     demand or on an allowed edge, to keep models small. *)
  let participates = Array.make n false in
  Array.iter (fun e -> participates.(e.eu) <- true; participates.(e.ev) <- true) spec.edges;
  Array.iter
    (fun (c : Schedule.chunk_meta) ->
      List.iter (fun v -> participates.(v) <- true) c.initial;
      List.iter (fun v -> participates.(v) <- true) c.wanted)
    spec.chunks;
  let is_initial c v = List.mem v spec.chunks.(c).Schedule.initial in
  let is_wanted c v = List.mem v spec.chunks.(c).Schedule.wanted in
  let npairs =
    Array.fold_left (fun a (c : Schedule.chunk_meta) -> a + List.length c.wanted) 0 spec.chunks
  in
  let eps = 1.0 /. float_of_int (((horizon + 1) * max 1 npairs * 10) + 10) in
  let has =
    Array.init nc (fun c ->
        Array.init n (fun v ->
            if not participates.(v) then [||]
            else
              Array.init (horizon + 1) (fun e ->
                  let lb, ub =
                    if is_initial c v then (1.0, 1.0)
                    else if e = 0 then (0.0, 0.0)
                    else if e = horizon && is_wanted c v then (1.0, 1.0)
                    else (0.0, 1.0)
                  in
                  let obj = if is_wanted c v then -.eps else 0.0 in
                  Milp.add_var m ~lb ~ub ~integer:true ~obj
                    (Printf.sprintf "has_c%d_v%d_e%d" c v e))))
  in
  let send = Array.make_matrix nc ne (-1) in
  let send_epochs = Array.make_matrix nc ne 0 in
  for c = 0 to nc - 1 do
    for k = 0 to ne - 1 do
      let lat, _ = edge_timing spec c k in
      let slots = horizon - lat + 1 in
      if slots > 0 then begin
        send_epochs.(c).(k) <- slots;
        let first =
          Milp.binary m (Printf.sprintf "send_c%d_k%d_e0" c k)
        in
        for e = 1 to slots - 1 do
          ignore (Milp.binary m (Printf.sprintf "send_c%d_k%d_e%d" c k e))
        done;
        send.(c).(k) <- first
      end
    done
  done;
  let t_var = Milp.add_var m ~lb:0.0 ~ub:(float_of_int (horizon + 1)) ~obj:1.0 "T" in
  let send_var c k e =
    if send.(c).(k) < 0 || e < 0 || e >= send_epochs.(c).(k) then None
    else Some (send.(c).(k) + e)
  in
  (* Constraints. *)
  for c = 0 to nc - 1 do
    for v = 0 to n - 1 do
      if participates.(v) && not (is_initial c v) then begin
        (* Monotone possession. *)
        for e = 0 to horizon - 1 do
          Milp.add_le m [ (has.(c).(v).(e), 1.0); (has.(c).(v).(e + 1), -1.0) ] 0.0
        done;
        (* Possession only after an arrived send. *)
        for e = 1 to horizon do
          let arrivals = ref [] in
          Array.iteri
            (fun k ed ->
              if ed.ev = v then begin
                let lat, _ = edge_timing spec c k in
                for e' = 0 to min (send_epochs.(c).(k) - 1) (e - lat) do
                  match send_var c k e' with
                  | Some id -> arrivals := (id, -1.0) :: !arrivals
                  | None -> ()
                done
              end)
            spec.edges;
          Milp.add_le m ((has.(c).(v).(e), 1.0) :: !arrivals) 0.0
        done;
        (* Each GPU receives a chunk at most once. *)
        let all_in = ref [] in
        Array.iteri
          (fun k ed ->
            if ed.ev = v then
              for e' = 0 to send_epochs.(c).(k) - 1 do
                match send_var c k e' with
                | Some id -> all_in := (id, 1.0) :: !all_in
                | None -> ()
              done)
          spec.edges;
        if !all_in <> [] then Milp.add_le m !all_in 1.0
      end
    done;
    (* Sends require possession. *)
    Array.iteri
      (fun k ed ->
        for e = 0 to send_epochs.(c).(k) - 1 do
          match send_var c k e with
          | Some id -> Milp.add_le m [ (id, 1.0); (has.(c).(ed.eu).(e), -1.0) ] 0.0
          | None -> ()
        done)
      spec.edges;
    (* Makespan: T >= arrival epoch of each demanded pair. *)
    for v = 0 to n - 1 do
      if participates.(v) && is_wanted c v then begin
        let terms = ref [ (t_var, 1.0) ] in
        for e = 0 to horizon do
          terms := (has.(c).(v).(e), 1.0) :: !terms
        done;
        Milp.add_ge m !terms (float_of_int (horizon + 1))
      end
    done
  done;
  (* Port capacity: at most one in-flight block per (GPU, port group, epoch)
     on each side. *)
  let nd = Topology.num_dims spec.topo in
  let npg =
    1 + Array.fold_left max 0
          (Array.init nd (fun d -> (Topology.dim spec.topo d).Topology.port_group))
  in
  for gpu = 0 to n - 1 do
    if participates.(gpu) then
      for pg = 0 to npg - 1 do
        for e = 0 to horizon - 1 do
          let out_terms = ref [] and in_terms = ref [] in
          Array.iteri
            (fun k ed ->
              if port_group spec k = pg then
                for c = 0 to nc - 1 do
                  let _, busy = edge_timing spec c k in
                  for e' = max 0 (e - busy + 1) to e do
                    match send_var c k e' with
                    | Some id ->
                        if ed.eu = gpu then out_terms := (id, 1.0) :: !out_terms;
                        if ed.ev = gpu then in_terms := (id, 1.0) :: !in_terms
                    | None -> ()
                  done
                done)
            spec.edges;
          if List.length !out_terms > 1 then Milp.add_le m !out_terms 1.0;
          if List.length !in_terms > 1 then Milp.add_le m !in_terms 1.0
        done
      done
  done;
  { model = m; has; send; send_epochs; t_var }

let var_count spec =
  let l = build spec in
  Milp.num_vars l.model

(* Multi-commodity-flow relaxation of the epoch model: each demanded
   (chunk, gpu) pair fractionally picks serving in-edges (Σ r = 1), every
   pick costs its latency against the makespan and its busy time against
   the two port groups it crosses, and T_flow = min T.  Any feasible
   schedule induces such an assignment with r ∈ {0,1} — the serving send
   arrives by the makespan and port slots are exclusive — so ⌈T_flow⌉
   lower-bounds the integral makespan.  One small LP per MILP; the bound
   both prunes branch-and-bound nodes and certifies incumbents that reach
   it (see {!Syccl_milp.Milp.solve}). *)
let flow_vars_limit = 2000

let flow_bound spec =
  let n = Topology.num_gpus spec.topo in
  let nc = Array.length spec.chunks in
  let nd = Topology.num_dims spec.topo in
  let npg =
    1 + Array.fold_left max 0
          (Array.init nd (fun d -> (Topology.dim spec.topo d).Topology.port_group))
  in
  (* Demanded pairs and their usable in-edges (latency within horizon). *)
  let pairs = ref [] and complete = ref true in
  for c = 0 to nc - 1 do
    List.iter
      (fun v ->
        if not (List.mem v spec.chunks.(c).Schedule.initial) then begin
          let ks = ref [] in
          Array.iteri
            (fun k ed ->
              if ed.ev = v then begin
                let lat, _ = edge_timing spec c k in
                if lat <= spec.horizon then ks := k :: !ks
              end)
            spec.edges;
          if !ks = [] then complete := false
          else pairs := (c, List.rev !ks) :: !pairs
        end)
      spec.chunks.(c).Schedule.wanted
  done;
  let pairs = Array.of_list (List.rev !pairs) in
  let num_vars =
    1 + Array.fold_left (fun a (_, ks) -> a + List.length ks) 0 pairs
  in
  if (not !complete) || Array.length pairs = 0 || num_vars > flow_vars_limit
  then None
  else begin
    (* Variable 0 is T; each pair owns a contiguous block of r variables. *)
    let t_var = 0 in
    let base = Array.make (Array.length pairs) 0 in
    let next = ref 1 in
    Array.iteri
      (fun p (_, ks) ->
        base.(p) <- !next;
        next := !next + List.length ks)
      pairs;
    let objective = Array.make num_vars 0.0 in
    objective.(t_var) <- 1.0;
    let rows = ref [] in
    (* Egress/ingress busy load per (gpu, port group). *)
    let out_load = Array.make (n * npg) [] in
    let in_load = Array.make (n * npg) [] in
    Array.iteri
      (fun p (c, ks) ->
        let assign = List.mapi (fun i k -> (base.(p) + i, k)) ks in
        rows := (List.map (fun (id, _) -> (id, 1.0)) assign, Lp.Eq, 1.0) :: !rows;
        let lat_terms =
          List.map
            (fun (id, k) ->
              let lat, _ = edge_timing spec c k in
              (id, -.float_of_int lat))
            assign
        in
        rows := ((t_var, 1.0) :: lat_terms, Lp.Ge, 0.0) :: !rows;
        List.iter
          (fun (id, k) ->
            let _, busy = edge_timing spec c k in
            if busy > 0 then begin
              let ed = spec.edges.(k) and pg = port_group spec k in
              let term = (id, -.float_of_int busy) in
              out_load.((ed.eu * npg) + pg) <-
                term :: out_load.((ed.eu * npg) + pg);
              in_load.((ed.ev * npg) + pg) <-
                term :: in_load.((ed.ev * npg) + pg)
            end)
          assign)
      pairs;
    Array.iter
      (fun terms ->
        if terms <> [] then rows := ((t_var, 1.0) :: terms, Lp.Ge, 0.0) :: !rows)
      out_load;
    Array.iter
      (fun terms ->
        if terms <> [] then rows := ((t_var, 1.0) :: terms, Lp.Ge, 0.0) :: !rows)
      in_load;
    let problem = { Lp.num_vars; objective; rows = List.rev !rows } in
    match Lp.solve problem with
    | Lp.Optimal { x; _ } -> Some x.(t_var)
    | Lp.Infeasible | Lp.Unbounded | Lp.Iter_limit -> None
  end

(* Copy-growth ("doubling") lower bound: possession of a chunk spreads
   only from its holders, a send lands [lat] epochs after it starts, and a
   holder's egress port starts at most ⌈lat/busy⌉ sends inside any window
   of [lat] epochs — so the holder count after [w] windows is at most
   h₀·(1 + ⌈lat/busy⌉)^w, and reaching the demanded holder count needs at
   least lat·min{w : h₀·gʷ ≥ H} epochs.  Per chunk, ignoring cross-chunk
   port contention (which only helps the bound's soundness).  The flow
   relaxation is tight when port load dominates (all-gather rings); this
   one is tight when propagation depth dominates (single-source
   broadcast).  Applied only to gather chunks whose usable edges share one
   (lat, busy) timing — the within-group sub-demand case; mixed-link edge
   sets contribute 0. *)
let growth_bound spec =
  let nc = Array.length spec.chunks in
  let best = ref 0 in
  for c = 0 to nc - 1 do
    if spec.chunks.(c).Schedule.mode = `Gather then begin
      let uniform = ref true and lat = ref (-1) and busy = ref (-1) in
      Array.iteri
        (fun k _ ->
          let l, b = edge_timing spec c k in
          if !lat < 0 then begin
            lat := l;
            busy := b
          end
          else if l <> !lat || b <> !busy then uniform := false)
        spec.edges;
      let initial = spec.chunks.(c).Schedule.initial in
      let h0 = List.length initial in
      let target =
        List.fold_left
          (fun acc v -> if List.mem v initial then acc else acc + 1)
          h0 spec.chunks.(c).Schedule.wanted
      in
      if !uniform && h0 > 0 && target > h0 && !lat >= 1 then
        if !busy = 0 then best := max !best !lat
        else begin
          let g = 1 + ((!lat + !busy - 1) / !busy) in
          let windows = ref 0 and h = ref h0 in
          while !h < target do
            h := !h * g;
            incr windows
          done;
          best := max !best (!lat * !windows)
        end
    end
  done;
  float_of_int !best

(* Encode a schedule replayed on the epoch grid as a variable assignment. *)
let incumbent_assignment spec layout (sched : Schedule.t) =
  match replay spec sched with
  | None -> None
  | Some _ ->
      let n = Topology.num_gpus spec.topo in
      let nc = Array.length spec.chunks in
      let x = Array.make (Milp.num_vars layout.model) 0.0 in
      (* Re-run the replay, this time recording epochs. *)
      let nd = Topology.num_dims spec.topo in
      let npg =
        1 + Array.fold_left max 0
              (Array.init nd (fun d -> (Topology.dim spec.topo d).Topology.port_group))
      in
      let hold = Array.make_matrix nc n max_int in
      Array.iteri
        (fun c (meta : Schedule.chunk_meta) ->
          List.iter (fun v -> hold.(c).(v) <- 0) meta.initial)
        spec.chunks;
      let eg = Array.make (n * npg) 0 and ing = Array.make (n * npg) 0 in
      let edge_index = Hashtbl.create 64 in
      Array.iteri (fun k e -> Hashtbl.replace edge_index (e.eu, e.ev, e.edim) k) spec.edges;
      let ordered =
        List.stable_sort (fun (a : Schedule.xfer) b -> compare a.prio b.prio) sched.xfers
      in
      let makespan = ref 0 in
      List.iter
        (fun (xf : Schedule.xfer) ->
          let k = Hashtbl.find edge_index (xf.src, xf.dst, xf.dim) in
          let lat, busy = edge_timing spec xf.chunk k in
          let pg = port_group spec k in
          let start =
            max hold.(xf.chunk).(xf.src)
              (max eg.((xf.src * npg) + pg) ing.((xf.dst * npg) + pg))
          in
          eg.((xf.src * npg) + pg) <- start + busy;
          ing.((xf.dst * npg) + pg) <- start + busy;
          let arrive = start + lat in
          if arrive < hold.(xf.chunk).(xf.dst) then hold.(xf.chunk).(xf.dst) <- arrive;
          if arrive > !makespan then makespan := arrive;
          (match layout.send.(xf.chunk).(k) with
          | -1 -> ()
          | first -> if start < layout.send_epochs.(xf.chunk).(k) then x.(first + start) <- 1.0))
        ordered;
      for c = 0 to nc - 1 do
        for v = 0 to n - 1 do
          if Array.length layout.has.(c).(v) > 0 then
            for e = 0 to spec.horizon do
              if hold.(c).(v) <= e then x.(layout.has.(c).(v).(e)) <- 1.0
            done
        done
      done;
      x.(layout.t_var) <- float_of_int !makespan;
      if Milp.check_feasible layout.model x then Some x else None

let extract spec layout x =
  let xfers = ref [] in
  let nc = Array.length spec.chunks in
  for c = 0 to nc - 1 do
    Array.iteri
      (fun k ed ->
        for e = 0 to layout.send_epochs.(c).(k) - 1 do
          match
            if layout.send.(c).(k) < 0 then None else Some (layout.send.(c).(k) + e)
          with
          | Some id when x.(id) > 0.5 ->
              xfers :=
                { Schedule.chunk = c; src = ed.eu; dst = ed.ev; dim = ed.edim; prio = e }
                :: !xfers
          | _ -> ()
        done)
      spec.edges
  done;
  let xfers =
    List.stable_sort (fun (a : Schedule.xfer) b -> compare a.prio b.prio) !xfers
  in
  { Schedule.chunks = spec.chunks; xfers }

let solve ?(node_limit = 400) ?(time_limit = 60.0)
    ?(budget = Syccl_util.Budget.unlimited) ?incumbent ?engine ?pool ?cache
    ?(cache_tag = "") spec =
  let layout = build spec in
  (* The caller's variable budget is an estimate; refuse outsized models
     outright rather than letting one LP eat the whole time budget. *)
  if Milp.num_vars layout.model > 3000 then
    match incumbent with
    | Some s -> (match replay spec s with Some e -> Some (s, e) | None -> None)
    | None -> None
  else
  let warm =
    match incumbent with
    | None -> None
    | Some s -> incumbent_assignment spec layout s
  in
  (* The MILP objective is T minus the arrival tie-break, which is bounded
     below 0.1 by construction of [eps] in [build]; so the flow relaxation
     certifies at [⌈T_flow⌉ - 0.1] with a gap of 0.5 — any incumbent whose
     makespan hits ⌈T_flow⌉ is accepted as (makespan-)optimal without
     proving the tie-break optimal too. *)
  let lower_bound =
    let epochs =
      Float.max (growth_bound spec)
        (match flow_bound spec with Some t_flow -> t_flow | None -> 0.0)
    in
    if epochs > 0.0 then Some (Float.ceil (epochs -. 1e-6) -. 0.1) else None
  in
  (* Sketch-family siblings share the model shape; reuse the latest root
     basis of that shape as a warm start (a stale or mismatched state is
     validated and discarded inside {!Syccl_milp.Lp}). *)
  let cache_key =
    Printf.sprintf "%s|h%d:%dv:%dr" cache_tag spec.horizon
      (Milp.num_vars layout.model)
      (Milp.num_rows layout.model)
  in
  let warm_state =
    match cache with
    | None -> None
    | Some c -> Syccl_util.Cache.find_opt c cache_key
  in
  let result =
    Milp.solve ~node_limit ~time_limit ~budget ?incumbent:warm ?engine ?pool
      ?lower_bound ~gap:0.5 ?warm_state layout.model
  in
  (* First writer wins: once a key holds a basis every later sibling reads
     the same one, so which sibling solved first (e.g. across pool
     workers) cannot change what a subsequent solve warm-starts from. *)
  (match (cache, result.Milp.root_state) with
  | Some c, Some st ->
      if Syccl_util.Cache.find_opt c cache_key = None then
        Syccl_util.Cache.put c cache_key st
  | _ -> ());
  match result.Milp.status with
  | Milp.Optimal | Milp.Feasible ->
      let sched = extract spec layout result.Milp.x in
      let epochs = int_of_float (Float.round result.Milp.x.(layout.t_var)) in
      Some (sched, epochs)
  | Milp.Infeasible | Milp.Unbounded | Milp.Limit -> (
      (* Budget ran out with nothing better: fall back to the incumbent. *)
      match (incumbent, warm) with
      | Some s, Some _ -> (
          match replay spec s with Some e -> Some (s, e) | None -> None)
      | _ -> None)
