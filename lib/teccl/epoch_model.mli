(** The epoch-based MILP formulation of schedule synthesis (Appendix A.1).

    Time is divided into epochs of duration τ.  Binary variables [send] place
    one chunk on one directed edge at one epoch; [has] tracks possession.
    Transfers occupy their ports for ⌈β·s/τ⌉ epochs and land after
    ⌈(α+β·s)/τ⌉ epochs.  The objective minimizes the makespan epoch [T] with
    a small tie-break toward earlier individual arrivals.

    TECCL applies this model to the whole collective; SyCCL applies it to
    one merged sub-demand inside one GPU group (§5.1), warm-started by the
    greedy solution. *)

type edge = { eu : int; ev : int; edim : int }

type spec = {
  topo : Syccl_topology.Topology.t;
  chunks : Syccl_sim.Schedule.chunk_meta array;  (** gather-mode demands *)
  edges : edge array;  (** allowed directed transfers *)
  tau : float;
  horizon : int;  (** number of epochs available *)
}

val group_edges : Syccl_topology.Topology.t -> dim:int -> group:int -> edge array
(** All ordered GPU pairs inside one group (the sub-demand edge set). *)

val all_edges : Syccl_topology.Topology.t -> edge array
(** All ordered peer pairs in every dimension (the TECCL edge set), keeping
    for each pair only the lowest dimension that connects it. *)

val replay : spec -> Syccl_sim.Schedule.t -> int option
(** Quantize an existing schedule onto the epoch grid by replaying its
    transfers in priority order; returns the number of epochs it needs, or
    [None] if it does not fit in the horizon or uses a forbidden edge. *)

val var_count : spec -> int
(** Number of MILP variables the model would have (for cost reporting). *)

val flow_bound : spec -> float option
(** Optimum of the multi-commodity-flow relaxation: each demanded
    (chunk, GPU) pair fractionally splits across its in-edges, paying
    latency against the makespan and busy time against port capacity.
    ⌈result⌉ lower-bounds the integral makespan.  [None] when a demanded
    pair has no in-edge within the horizon, when the relaxation would
    exceed 2000 variables, or when its LP does not solve cleanly — the
    MILP simply proceeds without a bound. *)

val growth_bound : spec -> float
(** Copy-growth ("doubling") lower bound in epochs: a chunk's holder count
    can at most multiply by 1 + ⌈lat/busy⌉ per window of [lat] epochs, so
    a single-source broadcast needs at least lat·⌈log(holders)⌉ epochs no
    matter how ports are scheduled.  0.0 when no chunk yields a bound
    (reduce-mode chunks and mixed-timing edge sets are skipped).
    Complements {!flow_bound}: flow is tight under port saturation, growth
    under propagation depth. *)

val solve :
  ?node_limit:int ->
  ?time_limit:float ->
  ?budget:Syccl_util.Budget.t ->
  ?incumbent:Syccl_sim.Schedule.t ->
  ?engine:Syccl_milp.Milp.engine ->
  ?pool:Syccl_util.Pool.t ->
  ?cache:(string, Syccl_milp.Lp.basis_state) Syccl_util.Cache.t ->
  ?cache_tag:string ->
  spec ->
  (Syccl_sim.Schedule.t * int) option
(** Build and solve the model; returns the schedule (priorities = start
    epochs) and its makespan in epochs, or [None] if infeasible within the
    horizon / budget and no incumbent fits.  Models over 3000 variables are
    refused without solving (the incumbent, if any, is replayed instead);
    [budget] is threaded into {!Syccl_milp.Milp.solve} so an expiring
    deadline interrupts branch-and-bound between pivots.

    The {!flow_bound} relaxation and the {!growth_bound} are combined
    (their max) once per call and passed to branch-and-bound as a pruning
    floor and early-exit certificate (gap 0.5: an incumbent whose makespan
    reaches the bound's ceiling is returned as optimal without also
    proving the arrival tie-break optimal) — a tree-optimal broadcast
    incumbent certifies at the root without exploring any children.  [engine]
    and [pool] are forwarded to {!Syccl_milp.Milp.solve}.  [cache], when
    supplied, warm-starts the root relaxation from an earlier solve of a
    same-shaped sibling model (keyed by [cache_tag] plus horizon and
    variable/row counts) and stores this solve's root basis back under a
    first-writer-wins discipline, so results stay deterministic even when
    sibling solves run concurrently — give unrelated concurrent solves
    distinct [cache_tag]s (a stale or mismatched basis is validated and
    discarded inside {!Syccl_milp.Lp}, so a collision costs time, not
    correctness). *)
