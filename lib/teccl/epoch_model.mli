(** The epoch-based MILP formulation of schedule synthesis (Appendix A.1).

    Time is divided into epochs of duration τ.  Binary variables [send] place
    one chunk on one directed edge at one epoch; [has] tracks possession.
    Transfers occupy their ports for ⌈β·s/τ⌉ epochs and land after
    ⌈(α+β·s)/τ⌉ epochs.  The objective minimizes the makespan epoch [T] with
    a small tie-break toward earlier individual arrivals.

    TECCL applies this model to the whole collective; SyCCL applies it to
    one merged sub-demand inside one GPU group (§5.1), warm-started by the
    greedy solution. *)

type edge = { eu : int; ev : int; edim : int }

type spec = {
  topo : Syccl_topology.Topology.t;
  chunks : Syccl_sim.Schedule.chunk_meta array;  (** gather-mode demands *)
  edges : edge array;  (** allowed directed transfers *)
  tau : float;
  horizon : int;  (** number of epochs available *)
}

val group_edges : Syccl_topology.Topology.t -> dim:int -> group:int -> edge array
(** All ordered GPU pairs inside one group (the sub-demand edge set). *)

val all_edges : Syccl_topology.Topology.t -> edge array
(** All ordered peer pairs in every dimension (the TECCL edge set), keeping
    for each pair only the lowest dimension that connects it. *)

val replay : spec -> Syccl_sim.Schedule.t -> int option
(** Quantize an existing schedule onto the epoch grid by replaying its
    transfers in priority order; returns the number of epochs it needs, or
    [None] if it does not fit in the horizon or uses a forbidden edge. *)

val var_count : spec -> int
(** Number of MILP variables the model would have (for cost reporting). *)

val solve :
  ?node_limit:int ->
  ?time_limit:float ->
  ?budget:Syccl_util.Budget.t ->
  ?incumbent:Syccl_sim.Schedule.t ->
  spec ->
  (Syccl_sim.Schedule.t * int) option
(** Build and solve the model; returns the schedule (priorities = start
    epochs) and its makespan in epochs, or [None] if infeasible within the
    horizon / budget and no incumbent fits.  Models over 3000 variables are
    refused without solving (the incumbent, if any, is replayed instead);
    [budget] is threaded into {!Syccl_milp.Milp.solve} so an expiring
    deadline interrupts branch-and-bound between pivots. *)
