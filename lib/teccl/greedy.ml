module Topology = Syccl_topology.Topology
module Link = Syccl_topology.Link
module Schedule = Syccl_sim.Schedule
module Xrand = Syccl_util.Xrand

type restriction = All | Groups of (int * int) list

type cand = {
  score : float;
  start : float;
  arrive : float;
  c : int;
  u : int;
  v : int;
  dim : int;
}

let solve ?rng ?(restrict = All) ?(holder_beam = 6) ?(congestion_weight = 1.0)
    ?(time_budget = infinity) ?(budget = Syccl_util.Budget.unlimited) topo
    (chunks : Schedule.chunk_meta array) =
  let wall0 = Syccl_util.Clock.now () in
  let n = Topology.num_gpus topo in
  let nd = Topology.num_dims topo in
  let npg =
    1
    + Array.fold_left max 0
        (Array.init nd (fun d -> (Topology.dim topo d).Topology.port_group))
  in
  let allowed d g =
    match restrict with
    | All -> true
    | Groups gs -> List.mem (d, g) gs
  in
  let dims_between u v =
    let rec go d acc =
      if d < 0 then acc
      else
        let gu = Topology.group_of topo ~dim:d u in
        if
          gu = Topology.group_of topo ~dim:d v
          && allowed d gu
          && Topology.edge_alive topo ~dim:d u v
        then go (d - 1) (d :: acc)
        else go (d - 1) acc
    in
    go (nd - 1) []
  in
  let nc = Array.length chunks in
  let hold = Array.make_matrix nc n infinity in
  let eg = Array.make (n * npg) 0.0 and ing = Array.make (n * npg) 0.0 in
  let unmet = Array.make nc [] in
  Array.iteri
    (fun c (m : Schedule.chunk_meta) ->
      assert (m.mode = `Gather);
      List.iter (fun v -> hold.(c).(v) <- 0.0) m.initial;
      unmet.(c) <- List.filter (fun v -> hold.(c).(v) = infinity) m.wanted)
    chunks;
  let jitter () = match rng with None -> 0.0 | Some r -> Xrand.float r 1e-12 in
  let candidate c u v d =
    let dimrec = Topology.dim topo d in
    let pg = dimrec.Topology.port_group in
    let link = dimrec.Topology.link in
    let s = chunks.(c).Schedule.size in
    let start =
      Float.max hold.(c).(u)
        (Float.max eg.((u * npg) + pg) ing.((v * npg) + pg))
    in
    let arrive = start +. Link.transfer_time link s in
    (* The port time consumed is charged as a congestion penalty so the
       greedy prefers relaying over repeatedly crossing scarce links. *)
    let score =
      arrive +. (congestion_weight *. Link.busy_time link s) +. jitter ()
    in
    { score; start; arrive; c; u; v; dim = d }
  in
  (* Beamed holders for a chunk: the few senders likeliest to finish first. *)
  let beam_holders c =
    let hs = ref [] in
    for u = 0 to n - 1 do
      if hold.(c).(u) < infinity then begin
        let port = ref infinity in
        for pg = 0 to npg - 1 do
          port := Float.min !port eg.((u * npg) + pg)
        done;
        hs := (Float.max hold.(c).(u) !port, u) :: !hs
      end
    done;
    let sorted = List.sort compare !hs in
    let rec take k = function
      | [] -> []
      | _ when k = 0 -> []
      | (_, u) :: rest -> u :: take (k - 1) rest
    in
    take holder_beam sorted
  in
  let all_holders c =
    List.filter
      (fun u -> hold.(c).(u) < infinity)
      (List.init n (fun i -> i))
  in
  (* Track holders per (chunk, most-local group) so a freshly arrived copy
     next to the destination is always considered as a relay, even when the
     global beam (keyed by port idleness) would exclude it. *)
  let local_dim =
    (* Fastest link class = the most local neighbourhood (NVLink). *)
    let best = ref 0 and best_beta = ref infinity in
    for d = 0 to nd - 1 do
      let beta = (Topology.dim topo d).Topology.link.Link.beta in
      if beta < !best_beta then begin
        best := d;
        best_beta := beta
      end
    done;
    !best
  in
  let local_holders =
    Array.init nc (fun _ -> Array.make (Topology.groups_count topo ~dim:local_dim) [])
  in
  let note_holder c v =
    let g = Topology.group_of topo ~dim:local_dim v in
    if not (List.mem v local_holders.(c).(g)) then
      local_holders.(c).(g) <- v :: local_holders.(c).(g)
  in
  Array.iteri
    (fun c (m : Schedule.chunk_meta) -> List.iter (note_holder c) m.initial)
    chunks;
  let xfers = ref [] in
  let prio = ref 0 in
  let remaining = ref (Array.fold_left (fun a l -> a + List.length l) 0 unmet) in
  let timed_out = ref false in
  while !remaining > 0 && not !timed_out do
    if
      Syccl_util.Clock.now () -. wall0 > time_budget
      || Syccl_util.Budget.expired budget
    then timed_out := true
    else begin
      let best = ref None in
      let consider cand =
        match !best with
        | Some b when b.score <= cand.score -> ()
        | _ -> best := Some cand
      in
      for c = 0 to nc - 1 do
        if unmet.(c) <> [] then begin
          let holders = beam_holders c in
          List.iter
            (fun v ->
              let feed hs =
                List.iter
                  (fun u ->
                    if u <> v then
                      List.iter (fun d -> consider (candidate c u v d)) (dims_between u v))
                  hs
              in
              feed holders;
              feed local_holders.(c).(Topology.group_of topo ~dim:local_dim v);
              (* The beam may contain no sender that can reach [v] under the
                 restriction; widen to every holder in that case. *)
              let reachable =
                List.exists (fun u -> u <> v && dims_between u v <> []) holders
              in
              if not reachable then feed (all_holders c))
            unmet.(c)
        end
      done;
      (* No holder can reach any unmet destination directly — on a punctured
         topology the only edge may be dead.  Fall back to one store-and-
         forward hop through a non-wanted relay: multi-source BFS from the
         chunk's holders over surviving allowed edges, delivering the first
         hop of a shortest path toward an unmet destination.  Each relay
         strictly shrinks the holder-to-destination distance, so the loop
         still terminates. *)
      let relay_candidate () =
        let rbest = ref None in
        let rconsider cand =
          match !rbest with
          | Some b when b.score <= cand.score -> ()
          | _ -> rbest := Some cand
        in
        for c = 0 to nc - 1 do
          if unmet.(c) <> [] then begin
            let dist = Array.make n max_int and parent = Array.make n (-1) in
            let q = Queue.create () in
            for u = 0 to n - 1 do
              if hold.(c).(u) < infinity then begin
                dist.(u) <- 0;
                Queue.push u q
              end
            done;
            while not (Queue.is_empty q) do
              let u = Queue.pop q in
              for w = 0 to n - 1 do
                if dist.(w) = max_int && dims_between u w <> [] then begin
                  dist.(w) <- dist.(u) + 1;
                  parent.(w) <- u;
                  Queue.push w q
                end
              done
            done;
            List.iter
              (fun v ->
                if dist.(v) < max_int then begin
                  (* First hop out of the holder set on a shortest path. *)
                  let rec first_hop w =
                    if dist.(w) = 1 then w else first_hop parent.(w)
                  in
                  let w = first_hop v in
                  let u = parent.(w) in
                  List.iter
                    (fun d -> rconsider (candidate c u w d))
                    (dims_between u w)
                end)
              unmet.(c)
          end
        done;
        !rbest
      in
      let chosen =
        match !best with Some _ as b -> b | None -> relay_candidate ()
      in
      match chosen with
      | None -> timed_out := true (* demand unreachable under restriction *)
      | Some b ->
          let dimrec = Topology.dim topo b.dim in
          let pg = dimrec.Topology.port_group in
          let busy = Link.busy_time dimrec.Topology.link chunks.(b.c).Schedule.size in
          eg.((b.u * npg) + pg) <- b.start +. busy;
          ing.((b.v * npg) + pg) <- b.start +. busy;
          hold.(b.c).(b.v) <- b.arrive;
          note_holder b.c b.v;
          if List.mem b.v unmet.(b.c) then begin
            unmet.(b.c) <- List.filter (fun v -> v <> b.v) unmet.(b.c);
            decr remaining
          end;
          xfers :=
            { Schedule.chunk = b.c; src = b.u; dst = b.v; dim = b.dim; prio = !prio }
            :: !xfers;
          incr prio
    end
  done;
  if !timed_out then None
  else Some { Schedule.chunks; xfers = List.rev !xfers }
