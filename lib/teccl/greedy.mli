(** Greedy earliest-finish store-and-forward synthesis.

    This is the heuristic TECCL falls back to at scale (§2.3: interval-based
    greedy), and the "fast solving" path SyCCL warm-starts its MILP with
    (§5.3).  The algorithm keeps per-port free times and per-(chunk, GPU)
    hold times and repeatedly commits the candidate transfer with the
    earliest finish time, optionally restricted to a set of (dimension,
    group) pairs. *)

type restriction = All | Groups of (int * int) list
(** [Groups \[(d, g); ...\]] only allows transfers inside group [g] of
    dimension [d]. *)

val solve :
  ?rng:Syccl_util.Xrand.t ->
  ?restrict:restriction ->
  ?holder_beam:int ->
  ?congestion_weight:float ->
  ?time_budget:float ->
  ?budget:Syccl_util.Budget.t ->
  Syccl_topology.Topology.t ->
  Syccl_sim.Schedule.chunk_meta array ->
  Syccl_sim.Schedule.t option
(** Synthesize a schedule delivering every gather chunk to its [wanted] GPUs
    (reduce chunks must be mirrored by the caller).  [holder_beam] bounds how
    many candidate senders are examined per (chunk, destination) (default 6);
    [congestion_weight] scales the port-time penalty added to a candidate's
    finish time, which steers the search away from re-crossing scarce links
    (default 1.0; 0 recovers pure earliest-finish); [rng] perturbs
    tie-breaking for restart diversity.  Returns [None] when [time_budget]
    (seconds) or the shared [budget] deadline expires before the demand is
    met; both are checked once per committed transfer. *)
