module Link = Syccl_topology.Link

let candidates =
  (* Integers and integer reciprocals up to 128, plus larger powers of two
     for the latency-dominated regime where α ≫ β·s. *)
  List.init 128 (fun i -> float_of_int (i + 1))
  @ List.init 127 (fun i -> 1.0 /. float_of_int (i + 2))
  @ List.init 17 (fun i -> float_of_int (1 lsl (i + 8)))

(* The accuracy knob E targets f(r) = (α+β·s)/τ ≈ 1/E: a transfer spans
   ⌈1/E⌉ epochs.  Larger E ⇒ larger τ ⇒ coarser, faster models (E1 = 3
   packs several transfers per epoch); E < 1 subdivides each transfer
   (E2 = 0.5 ⇒ 2 epochs per transfer, E = 0.1 ⇒ 10). *)
let select ~link ~size ~e =
  assert (e > 0.0);
  let bs = Link.busy_time link size in
  let f r = Link.transfer_time link size /. (r *. bs) in
  let target = 1.0 /. e in
  let target_epochs = Float.max 1.0 (Float.ceil (target -. 1e-9)) in
  (* Primary: hit the target transfer span in epochs; secondary: land f(r)
     as close to 1/E as the integral ratios allow (minimizing both the
     wasted fraction g and over-coarsening). *)
  let score r =
    let fr = f r in
    let ceil_f = Float.of_int (int_of_float (Float.ceil (fr -. 1e-9))) in
    (Float.abs (ceil_f -. target_epochs), Float.abs (fr -. target))
  in
  let best =
    List.fold_left
      (fun acc r ->
        let s = score r in
        match acc with
        | None -> Some (r, s)
        | Some (_, sbest) when s < sbest -> Some (r, s)
        | some -> some)
      None candidates
  in
  match best with
  | Some (r, _) -> (r *. bs, r)
  | None -> (bs, 1.0)

let epochs_for ~link ~size ~tau =
  let lat = int_of_float (Float.ceil ((Link.transfer_time link size /. tau) -. 1e-9)) in
  let busy = int_of_float (Float.ceil ((Link.busy_time link size /. tau) -. 1e-9)) in
  (max 1 lat, max 1 busy)
