(** Automatic epoch-duration selection (Appendix A.3).

    The epoch duration τ must be a multiplier of [β·s] (bandwidth constraint)
    and should make [α + β·s] close to a whole number of epochs (latency
    constraint).  SyCCL exposes a single accuracy knob [E]: τ = r·β·s with
    [r] or [1/r] integral, targeting [f(r) = (α+β·s)/τ ≈ 1/E] while
    minimizing the wasted fraction [g(r) = ⌈f(r)⌉ − f(r)].  Larger [E] means
    a larger τ and a coarser, faster model (§5.3: E₁ = 3 packs several
    transfers into one epoch); [E] < 1 subdivides each transfer (E₂ = 0.5 ⇒
    two epochs per transfer, E = 0.1 ⇒ ten). *)

val select : link:Syccl_topology.Link.t -> size:float -> e:float -> float * float
(** [select ~link ~size ~e] returns [(tau, r)].  Candidate ratios are the
    integers and integer reciprocals up to 128 plus larger powers of two for
    the latency-dominated regime. *)

val epochs_for : link:Syccl_topology.Link.t -> size:float -> tau:float -> int * int
(** [(lat, busy)]: epochs before the chunk lands at the destination
    (⌈(α+β·s)/τ⌉) and epochs the port stays busy (⌈β·s/τ⌉, at least 1). *)
