module Topology = Syccl_topology.Topology
module Collective = Syccl_collective.Collective
module Schedule = Syccl_sim.Schedule
module Sim = Syccl_sim.Sim
module Xrand = Syccl_util.Xrand

type outcome = {
  schedules : Schedule.t list option;
  synth_time : float;
  used_milp : bool;
}

(* Gather-mode chunk metas for one phase; reduce-family phases are mirrored
   (synthesized as the dual gather problem, then reversed, §4.1). *)
let phase_metas coll =
  let mirrored = Collective.is_reduce coll.Collective.kind in
  let metas =
    List.map
      (fun chunk ->
        match chunk with
        | Collective.Gather_chunk { id; size; src; dsts } ->
            { Schedule.size; mode = `Gather; initial = [ src ]; wanted = dsts; tag = id }
        | Collective.Reduce_chunk { id; size; dst; srcs } ->
            { Schedule.size; mode = `Gather; initial = [ dst ]; wanted = srcs; tag = id })
      (Collective.chunks coll)
  in
  (Array.of_list metas, mirrored)

let fastest_link topo =
  let best = ref (Topology.dim topo 0).Topology.link in
  for d = 1 to Topology.num_dims topo - 1 do
    let l = (Topology.dim topo d).Topology.link in
    if l.Syccl_topology.Link.beta < !best.Syccl_topology.Link.beta then best := l
  done;
  !best

let synthesize_phase ~rng ~restarts ~budget ~milp_var_budget ~e_value topo coll =
  let metas, mirrored = phase_metas coll in
  let left () = Syccl_util.Budget.remaining budget in
  let rec attempts k best =
    if k = 0 || Syccl_util.Budget.expired budget then best
    else begin
      let r = Xrand.copy rng in
      ignore (Xrand.next_int64 rng);
      match Greedy.solve ~rng:r ~budget topo metas with
      | None -> best
      | Some s ->
          let t = Sim.time topo s in
          let best =
            match best with
            | Some (_, tb) when tb <= t -> best
            | _ -> Some (s, t)
          in
          attempts (k - 1) best
    end
  in
  match attempts restarts None with
  | None -> None
  | Some (greedy_sched, _) ->
      (* Epoch-MILP refinement when the whole-problem model is small enough
         for the from-scratch solver. *)
      let link = fastest_link topo in
      let size = metas.(0).Schedule.size in
      let tau, _ = Tau.select ~link ~size ~e:e_value in
      let edges = Epoch_model.all_edges topo in
      let probe =
        { Epoch_model.topo; chunks = metas; edges; tau; horizon = 1 }
      in
      let horizon =
        match Epoch_model.replay { probe with horizon = max_int / 2 } greedy_sched with
        | Some e -> e
        | None -> 0
      in
      let spec = { probe with horizon } in
      let nvars =
        if horizon = 0 then max_int
        else
          (* Cheap over-approximation: sends + has. *)
          Array.length metas
          * ((Array.length edges * horizon)
            + (Topology.num_gpus topo * (horizon + 1)))
      in
      let solved =
        if horizon > 0 && nvars <= milp_var_budget && left () > 0.0 then begin
          match
            Epoch_model.solve ~time_limit:(Float.min 60.0 (left ())) ~budget
              ~incumbent:greedy_sched spec
          with
          | Some (refined, _) ->
              let pick =
                if Sim.time topo refined < Sim.time topo greedy_sched then
                  refined
                else greedy_sched
              in
              Some (pick, true)
          | None -> Some (greedy_sched, false)
        end
        else Some (greedy_sched, false)
      in
      (* The mirroring reverse must cover BOTH arms of the refinement
         split: un-parenthesized, `|> Option.map` used to grab only the
         else branch, so MILP-refined reduce phases escaped as gather-mode
         schedules (same simulated cost — reverse is cost-preserving — but
         the wrong computation; the differential fuzz oracle caught it). *)
      Option.map
        (fun (s, used) -> ((if mirrored then Schedule.reverse s else s), used))
        solved

let synthesize ?(seed = 42) ?restarts ?(time_budget = 600.0)
    ?(budget = Syccl_util.Budget.unlimited) ?(milp_var_budget = 2500)
    ?(e_value = 1.0) topo coll =
  let t0 = Syccl_util.Clock.now () in
  (* [time_budget] narrows the caller's deadline; both land on the same
     Clock.now axis so every stage below observes one shared instant. *)
  let budget = Syccl_util.Budget.sub ~seconds:time_budget budget in
  let restarts =
    match restarts with
    | Some r -> r
    | None -> if Topology.num_gpus topo <= 64 then 3 else 1
  in
  let rng = Xrand.create seed in
  let phases = Collective.phases coll in
  let rec go acc used = function
    | [] -> Some (List.rev acc, used)
    | phase :: rest -> (
        match
          synthesize_phase ~rng ~restarts ~budget ~milp_var_budget ~e_value topo
            phase
        with
        | None -> None
        | Some (s, u) -> go (s :: acc) (used || u) rest)
  in
  match go [] false phases with
  | None ->
      { schedules = None; synth_time = Syccl_util.Clock.elapsed t0; used_milp = false }
  | Some (ss, used) ->
      { schedules = Some ss; synth_time = Syccl_util.Clock.elapsed t0; used_milp = used }

let simulate ?blocks topo schedules =
  List.fold_left (fun acc s -> acc +. Sim.time ?blocks topo s) 0.0 schedules

let busbw ?blocks topo coll outcome =
  Option.map
    (fun ss ->
      let time = simulate ?blocks topo ss in
      Collective.busbw coll ~time)
    outcome.schedules
