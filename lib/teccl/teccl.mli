(** The TECCL baseline synthesizer (Liu et al., SIGCOMM 2024), reproduced on
    top of this repository's substrates (§2.3, Appendix A).

    TECCL encodes the {e whole} collective over the {e whole} topology as one
    epoch-based MILP.  At the scales our from-scratch solver (and, in the
    paper, Gurobi) can handle, that model is solved directly; beyond that,
    TECCL's published fallback — greedy per-interval heuristics — kicks in,
    which is what this implementation uses: multi-restart greedy
    earliest-finish construction, plus an epoch-MILP refinement whenever the
    model stays under a variable budget.  A configurable wall-clock budget
    reproduces the paper's timeout behaviour (Fig. 15b). *)

type outcome = {
  schedules : Syccl_sim.Schedule.t list option;
      (** one schedule per collective phase, or [None] on timeout *)
  synth_time : float;  (** wall-clock seconds spent synthesizing *)
  used_milp : bool;  (** whether the epoch MILP refined the greedy result *)
}

val synthesize :
  ?seed:int ->
  ?restarts:int ->
  ?time_budget:float ->
  ?budget:Syccl_util.Budget.t ->
  ?milp_var_budget:int ->
  ?e_value:float ->
  Syccl_topology.Topology.t ->
  Syccl_collective.Collective.t ->
  outcome
(** Synthesize schedules for every phase of the collective.  [restarts]
    defaults to 3 below 64 GPUs and 1 above; [time_budget] (default 600 s)
    bounds the whole synthesis; [budget] is an externally shared deadline /
    cancellation token that [time_budget] further narrows — both are
    observed by the greedy inner loop and the epoch MILP; [milp_var_budget]
    (default 2500) bounds the size of models handed to the MILP; [e_value]
    is the epoch-accuracy knob (default 1.0). *)

val simulate :
  ?blocks:int -> Syccl_topology.Topology.t -> Syccl_sim.Schedule.t list -> float
(** Completion time of sequential phases (AllReduce = ReduceScatter then
    AllGather, §4.3). *)

val busbw :
  ?blocks:int ->
  Syccl_topology.Topology.t ->
  Syccl_collective.Collective.t ->
  outcome ->
  float option
(** Bus bandwidth of a synthesis outcome, [None] on timeout. *)
