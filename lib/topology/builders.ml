let single_switch ?(name = "single-switch") ~n ~link () =
  Topology.make ~name ~shape:[| n |] ~dims:[ ("switch", [ 0 ], link, 0) ]

let multi_rail ?(name = "multi-rail") ~servers ~gpus_per_server ~nvlink ~rail
    ?spine () =
  let dims =
    [ ("nvlink", [ 1 ], nvlink, 0); ("rail", [ 0 ], rail, 1) ]
    @ match spine with
      | None -> []
      | Some l -> [ ("spine", [ 0; 1 ], l, 1) ]
  in
  Topology.make ~name ~shape:[| servers; gpus_per_server |] ~dims

let clos ?(name = "clos") ~levels ~links () =
  let k = List.length levels in
  if List.length links <> k then invalid_arg "Builders.clos: levels/links mismatch";
  let shape = Array.of_list levels in
  (* Dimension j (0 = innermost) spans the last j+1 axes. *)
  let dims =
    List.mapi
      (fun j link ->
        let free = List.init (j + 1) (fun i -> k - 1 - i) in
        let dim_name = if j = 0 then "nvlink" else Printf.sprintf "tier%d" j in
        let port_group = if j = 0 then 0 else 1 in
        (dim_name, free, link, port_group))
      links
  in
  Topology.make ~name ~shape ~dims

(* Link classes for the two production clusters of §7.1.  A100 testbed:
   NVSwitch at 200 GBps per GPU; 4×200 Gbps NICs shared by 8 GPUs gives
   12.5 GBps per GPU.  H800: 180 GBps NVLink per GPU and one 400 Gbps NIC
   per GPU (50 GBps), the 3.6:1 ratio of §2.1. *)
let a100_nvlink = Link.make ~alpha:1.2e-6 ~gbps:200.0
let a100_net = Link.make ~alpha:6.0e-6 ~gbps:12.5
let a100_net_spine = Link.make ~alpha:8.0e-6 ~gbps:12.5
let h800_nvlink = Link.make ~alpha:0.8e-6 ~gbps:180.0
let h800_rail = Link.make ~alpha:5.0e-6 ~gbps:50.0
let h800_spine = Link.make ~alpha:7.5e-6 ~gbps:50.0

let a100 ~servers =
  match servers with
  | 2 ->
      (* 16 GPUs: both servers under one ToR; no cross-pod dimension. *)
      clos ~name:"a100-16" ~levels:[ 2; 8 ] ~links:[ a100_nvlink; a100_net ] ()
  | 4 ->
      (* 32 GPUs: two ToR pods joined by spines. *)
      clos ~name:"a100-32" ~levels:[ 2; 2; 8 ]
        ~links:[ a100_nvlink; a100_net; a100_net_spine ]
        ()
  | _ -> invalid_arg "Builders.a100: servers must be 2 or 4"

let h800 ~servers =
  multi_rail
    ~name:(Printf.sprintf "h800-%d" (servers * 8))
    ~servers ~gpus_per_server:8 ~nvlink:h800_nvlink ~rail:h800_rail
    ~spine:h800_spine ()

let h800_scaled ~servers ~gpus_per_server =
  multi_rail
    ~name:(Printf.sprintf "h800-scaled-%dx%d" servers gpus_per_server)
    ~servers ~gpus_per_server ~nvlink:h800_nvlink ~rail:h800_rail
    ~spine:h800_spine ()

let fig3 () =
  (* 4 servers × 4 GPUs.  Axes: server × rail-pair × rail-within-pair.
     Dim 2 groups GPUs whose intra-server index shares a pair
     ({0,1,4,5,...} and {2,3,6,7,...}), matching the figure. *)
  let nv = Link.make ~alpha:1e-6 ~gbps:180.0 in
  let leaf = Link.make ~alpha:5e-6 ~gbps:50.0 in
  let spine = Link.make ~alpha:6.5e-6 ~gbps:50.0 in
  let core = Link.make ~alpha:8e-6 ~gbps:50.0 in
  Topology.make ~name:"fig3" ~shape:[| 4; 2; 2 |]
    ~dims:
      [
        ("nvlink", [ 1; 2 ], nv, 0);
        ("leaf", [ 0 ], leaf, 1);
        ("spine", [ 0; 2 ], spine, 1);
        ("core", [ 0; 1; 2 ], core, 1);
      ]

let fig19 () =
  let nv = Link.make ~alpha:1e-6 ~gbps:180.0 in
  let leaf = Link.make ~alpha:5e-6 ~gbps:50.0 in
  let spine = Link.make ~alpha:6.5e-6 ~gbps:50.0 in
  multi_rail ~name:"fig19" ~servers:7 ~gpus_per_server:4 ~nvlink:nv ~rail:leaf
    ~spine ()

let fig20 () =
  let nv = Link.make ~alpha:1e-6 ~gbps:180.0 in
  let leaf = Link.make ~alpha:5e-6 ~gbps:50.0 in
  let spine = Link.make ~alpha:6.5e-6 ~gbps:50.0 in
  let core = Link.make ~alpha:8e-6 ~gbps:50.0 in
  clos ~name:"fig20" ~levels:[ 2; 2; 2; 4 ] ~links:[ nv; leaf; spine; core ] ()
