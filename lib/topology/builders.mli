(** Ready-made topologies, including every cluster used in the paper's
    evaluation (§7.1, Fig. 13) and appendices (Figs. 3, 19, 20).

    Link parameters follow the paper where stated (H800: 180 GBps NVLink per
    GPU, 8×400 Gbps NICs per server, §2.1) and sensible production values
    elsewhere. *)

val single_switch : ?name:string -> n:int -> link:Link.t -> unit -> Topology.t
(** [n] GPUs behind one non-blocking switch (one dimension, one group). *)

val multi_rail :
  ?name:string ->
  servers:int ->
  gpus_per_server:int ->
  nvlink:Link.t ->
  rail:Link.t ->
  ?spine:Link.t ->
  unit ->
  Topology.t
(** Multi-rail cluster: dimension 0 = intra-server NVSwitch, dimension 1 =
    same-rail leaf switches, optional dimension 2 = spine (all GPUs; shares
    the NIC port group with the rail dimension). *)

val clos :
  ?name:string -> levels:int list -> links:Link.t list -> unit -> Topology.t
(** Nested Clos tree.  [levels] are branch factors from the top (e.g.
    [\[2; 2; 2; 4\]] = 2 spine sides × 2 leaves × 2 servers × 4 GPUs);
    [links] are the per-dimension classes from innermost (intra-server)
    outwards and must have the same length as [levels].  All network
    dimensions share one NIC port group. *)

val a100 : servers:int -> Topology.t
(** The paper's A100 testbed (Fig. 13a): [servers] ∈ {2, 4} giving 16 or 32
    GPUs; 8 GPUs/server, 4×200 Gbps NICs per server, two-layer Clos with two
    servers per ToR. *)

val h800 : servers:int -> Topology.t
(** The paper's H800 production cluster (Fig. 13b): 8 GPUs/server with
    180 GBps NVLink per GPU and 8×400 Gbps rail-optimized network.
    [servers] = 8 gives the 64-GPU case, 64 the 512-GPU case. *)

val h800_scaled : servers:int -> gpus_per_server:int -> Topology.t
(** The §7.4 microbenchmark variant: H800 link classes, smaller servers. *)

val fig3 : unit -> Topology.t
(** The 16-GPU, four-dimension multi-rail example of Fig. 3. *)

val fig19 : unit -> Topology.t
(** The 28-GPU, seven-server multi-rail topology of Fig. 19. *)

val fig20 : unit -> Topology.t
(** The 32-GPU, four-dimension Clos topology of Fig. 20. *)
