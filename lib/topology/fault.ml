(* Fault sets: the hardware a punctured topology has lost.  A set is a
   canonically sorted, deduplicated element list with an exact round-trip
   string encoding — the encoding is folded into Topology.fingerprint and
   into registry keys, so canonicalization here is what makes "the same
   failure" hash to the same entry no matter how the caller spelled it. *)

module Perm = Syccl_util.Perm

type elt =
  | Gpu of int
  | Link of { dim : int; a : int; b : int }  (* undirected; a < b *)
  | Nic of { gpu : int; port_group : int }

(* Sort order: the derived order on the constructor declaration above.
   [Link] endpoints are normalized to a < b at construction, so structural
   comparison is a total order on canonical elements. *)
type t = elt list

let canon_elt = function
  | Link { dim; a; b } ->
      if a = b then invalid_arg "Fault: link endpoints must differ"
      else if a > b then Link { dim; a = b; b = a }
      else Link { dim; a; b }
  | (Gpu _ | Nic _) as e -> e

let check_elt = function
  | Gpu g when g < 0 -> invalid_arg "Fault: negative gpu"
  | Link { dim; a; b } when dim < 0 || a < 0 || b < 0 ->
      invalid_arg "Fault: negative link field"
  | Nic { gpu; port_group } when gpu < 0 || port_group < 0 ->
      invalid_arg "Fault: negative nic field"
  | _ -> ()

let empty = []
let is_empty t = t = []
let elements t = t
let equal = ( = )
let compare = Stdlib.compare

let of_list elts =
  let elts = List.map (fun e -> check_elt e; canon_elt e) elts in
  List.sort_uniq Stdlib.compare elts

let union a b = List.sort_uniq Stdlib.compare (a @ b)

(* --- canonical encoding -------------------------------------------------- *)

(* One element encodes as gpu:G, link:D:A-B (A < B), or nic:G@P; a set is
   the comma-join of its sorted elements ("" for the empty set).  decode
   accepts only this canonical spelling — it is the round-trip inverse of
   encode, which check_lint rule 7 relies on for fault strings in lib/. *)

let encode_elt = function
  | Gpu g -> Printf.sprintf "gpu:%d" g
  | Link { dim; a; b } -> Printf.sprintf "link:%d:%d-%d" dim a b
  | Nic { gpu; port_group } -> Printf.sprintf "nic:%d@%d" gpu port_group

let encode t = String.concat "," (List.map encode_elt t)

let bad s = invalid_arg ("Fault.decode: malformed fault element " ^ s)

(* Strict non-negative integer: digits only, no sign, no leading junk. *)
let int_of s err =
  if s = "" then bad err;
  String.iter (fun c -> if c < '0' || c > '9' then bad err) s;
  (* Reject non-canonical leading zeros ("01" re-encodes as "1"). *)
  if String.length s > 1 && s.[0] = '0' then bad err;
  int_of_string s

let decode_elt s =
  match String.index_opt s ':' with
  | None -> bad s
  | Some i -> (
      let kind = String.sub s 0 i in
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      match kind with
      | "gpu" -> Gpu (int_of rest s)
      | "nic" -> (
          match String.index_opt rest '@' with
          | None -> bad s
          | Some j ->
              Nic
                {
                  gpu = int_of (String.sub rest 0 j) s;
                  port_group =
                    int_of
                      (String.sub rest (j + 1) (String.length rest - j - 1))
                      s;
                })
      | "link" -> (
          match String.index_opt rest ':' with
          | None -> bad s
          | Some j -> (
              let dim = int_of (String.sub rest 0 j) s in
              let pair = String.sub rest (j + 1) (String.length rest - j - 1) in
              match String.index_opt pair '-' with
              | None -> bad s
              | Some k ->
                  let a = int_of (String.sub pair 0 k) s in
                  let b =
                    int_of
                      (String.sub pair (k + 1) (String.length pair - k - 1))
                      s
                  in
                  if a >= b then bad s;
                  Link { dim; a; b }))
      | _ -> bad s)

let decode s =
  if s = "" then empty
  else begin
    let elts = List.map decode_elt (String.split_on_char ',' s) in
    let t = of_list elts in
    (* Canonical spelling only: sorted, deduplicated, a < b. *)
    if encode t <> s then
      invalid_arg ("Fault.decode: non-canonical fault set " ^ s);
    t
  end

(* --- group action -------------------------------------------------------- *)

(* Image of a fault set under a GPU relabelling.  Meaningful when [p] is a
   topology automorphism (so dimension and port-group indices keep their
   meaning); the caller owns that contract. *)
let map_elt p = function
  | Gpu g -> Gpu (Perm.apply p g)
  | Link { dim; a; b } ->
      canon_elt (Link { dim; a = Perm.apply p a; b = Perm.apply p b })
  | Nic { gpu; port_group } -> Nic { gpu = Perm.apply p gpu; port_group }

let map p t = List.sort_uniq Stdlib.compare (List.map (map_elt p) t)

let canonical_under group t =
  List.fold_left
    (fun best p ->
      let u = map p t in
      if Stdlib.compare u best < 0 then u else best)
    t group
