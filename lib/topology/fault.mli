(** Fault sets: the links, GPUs and NICs a punctured topology has lost.

    A set is canonical (sorted, deduplicated, link endpoints ordered) and
    has an exact round-trip string encoding ([gpu:3], [link:1:0-4],
    [nic:2@1], comma-joined).  The encoding is folded into
    {!Topology.fingerprint} and registry keys, so two spellings of the same
    failure always collapse to the same entry. *)

type elt =
  | Gpu of int  (** GPU [g] is down: every edge touching it is dead. *)
  | Link of { dim : int; a : int; b : int }
      (** The undirected intra-group edge between [a] and [b] in dimension
          [dim] is down.  Canonical form has [a < b]. *)
  | Nic of { gpu : int; port_group : int }
      (** The NIC serving [port_group] on [gpu] is down: every edge of
          every dimension using that port group at [gpu] is dead. *)

type t
(** A canonical fault set.  Structural [compare] is a total order. *)

val empty : t
val is_empty : t -> bool
val of_list : elt list -> t
(** Canonicalize: order link endpoints, sort, deduplicate.  Raises
    [Invalid_argument] on negative indices or a self-link. *)

val elements : t -> elt list
(** In canonical order. *)

val union : t -> t -> t
val equal : t -> t -> bool
val compare : t -> t -> int

val encode : t -> string
(** Canonical string form; [""] for {!empty}. *)

val decode : string -> t
(** Exact inverse of {!encode}; raises [Invalid_argument] on malformed or
    non-canonical input (wrong order, duplicates, leading zeros). *)

val map : Syccl_util.Perm.t -> t -> t
(** Image under a GPU relabelling.  Only meaningful when the permutation
    is an automorphism of the topology the faults refer to. *)

val canonical_under : Syccl_util.Perm.t list -> t -> t
(** Minimum image over the given permutations (plus the identity): the
    orbit-canonical representative under that group. *)
