(* Inference strategy:
   1. Partition edges by link class; connected components of each class are
      that dimension's candidate groups.  All groups of a class must have
      equal size.
   2. Sort classes from coarsest (largest groups) to finest and extract the
      maximal refinement chain; partitions in the chain contribute one axis
      each (split factor between consecutive chain levels).
   3. Classes not on the chain must "cross" it: relabel GPUs inside the
      finest chain blocks so that every crossing class becomes a
      fixed-coordinate slice, then verify each class against its free-axes
      pattern. *)

module IntSet = Set.Make (Int)

type clazz = { link : Link.t; groups : int list list; gsize : int }

let components n edges =
  let parent = Array.init n (fun i -> i) in
  let rec find i = if parent.(i) = i then i else (parent.(i) <- find parent.(i); parent.(i)) in
  List.iter (fun (a, b) -> parent.(find a) <- find b) edges;
  let buckets = Hashtbl.create 16 in
  for v = n - 1 downto 0 do
    let r = find v in
    Hashtbl.replace buckets r (v :: Option.value (Hashtbl.find_opt buckets r) ~default:[])
  done;
  Hashtbl.fold (fun _ members acc -> members :: acc) buckets []

let classify n edges =
  let by_class = Hashtbl.create 8 in
  List.iter
    (fun (a, b, link) ->
      let key = (link.Link.alpha, link.Link.beta) in
      Hashtbl.replace by_class key
        ((a, b) :: (match Hashtbl.find_opt by_class key with Some l -> l | None -> [])))
    edges;
  let classes = ref [] in
  let link_of = Hashtbl.create 8 in
  List.iter (fun (_, _, l) -> Hashtbl.replace link_of (l.Link.alpha, l.Link.beta) l) edges;
  Hashtbl.iter
    (fun key es ->
      (* Only GPUs touched by this class form groups; isolated GPUs form
         singleton groups so the partition covers the universe. *)
      let touched = List.fold_left (fun s (a, b) -> IntSet.add a (IntSet.add b s)) IntSet.empty es in
      let comps = components n es in
      let comps = List.filter (fun c -> List.exists (fun v -> IntSet.mem v touched) c) comps in
      let rest =
        List.filter_map
          (fun v -> if IntSet.mem v touched then None else Some [ v ])
          (List.init n (fun i -> i))
      in
      let groups = comps @ rest in
      match groups with
      | [] -> ()
      | g0 :: _ ->
          let gsize = List.length g0 in
          if List.for_all (fun g -> List.length g = gsize) groups then
            classes := { link = Hashtbl.find link_of key; groups; gsize } :: !classes
          else classes := { link = Hashtbl.find link_of key; groups = []; gsize = -1 } :: !classes)
    by_class;
  !classes

(* [refines fine coarse]: every block of [fine] is inside a block of [coarse]. *)
let refines ~block_of_coarse fine =
  List.for_all
    (fun block ->
      match block with
      | [] -> true
      | v :: rest ->
          let b = block_of_coarse.(v) in
          List.for_all (fun u -> block_of_coarse.(u) = b) rest)
    fine

let block_index n groups =
  let a = Array.make n (-1) in
  List.iteri (fun i g -> List.iter (fun v -> a.(v) <- i) g) groups;
  a

let infer ?(name = "inferred") ~n edges =
  let classes = classify n edges in
  if List.exists (fun c -> c.gsize < 0) classes then None
  else if classes = [] then None
  else begin
    (* Coarsest first. *)
    let sorted = List.sort (fun a b -> compare b.gsize a.gsize) classes in
    (* Build the maximal refinement chain greedily. *)
    let chain, crossing =
      List.fold_left
        (fun (chain, crossing) c ->
          match chain with
          | [] -> ([ c ], crossing)
          | prev :: _ ->
              if c.gsize < prev.gsize && refines ~block_of_coarse:(block_index n prev.groups) c.groups
              then (c :: chain, crossing)
              else (chain, c :: crossing))
        ([], []) sorted
    in
    let chain = List.rev chain in   (* coarsest .. finest *)
    (* Implicit top partition {V} and bottom partition of singletons. *)
    let chain_partitions =
      ([ List.init n (fun i -> i) ] :: List.map (fun c -> c.groups) chain)
      @ [ List.init n (fun i -> [ i ]) ]
    in
    (* Drop consecutive duplicates (a class may already be the full set or
       the singleton partition). *)
    let rec dedup = function
      | a :: b :: rest ->
          if List.length a = List.length b then dedup (a :: rest) else a :: dedup (b :: rest)
      | l -> l
    in
    let chain_partitions = dedup chain_partitions in
    (* Axis sizes: split factors between consecutive partitions. *)
    let sizes =
      let counts = List.map List.length chain_partitions in
      let rec ratios = function
        | a :: (b :: _ as rest) -> if b mod a <> 0 then [ -1 ] else (b / a) :: ratios rest
        | _ -> []
      in
      ratios counts
    in
    if List.exists (fun s -> s <= 0) sizes then None
    else begin
      let shape = Array.of_list sizes in
      let k = Array.length shape in
      (* Assign coordinates: sort GPUs lexicographically by their block index
         at each chain level, breaking ties inside the finest blocks by the
         crossing classes' group indices so crossing groups align. *)
      let level_idx =
        List.map (fun p -> block_index n p) (List.tl chain_partitions)
        (* skip the trivial top partition *)
      in
      let crossing_idx = List.map (fun c -> block_index n c.groups) crossing in
      let key v =
        List.map (fun a -> a.(v)) crossing_idx
      in
      let order = Array.init n (fun i -> i) in
      let cmp u v =
        let rec lex = function
          | [] -> compare (key u, u) (key v, v)
          | a :: rest ->
              let c = compare (a : int array).(u) a.(v) in
              if c <> 0 then c else lex rest
        in
        (* Compare on all chain levels except the singleton level (which is
           just identity); then crossing keys; then id. *)
        let levels_wo_singletons =
          List.filteri (fun i _ -> i < List.length level_idx - 1) level_idx
        in
        lex levels_wo_singletons
      in
      Array.sort cmp order;
      (* order.(new_id) = original id. *)
      let orig_of = order in
      let new_of = Array.make n 0 in
      Array.iteri (fun ni oi -> new_of.(oi) <- ni) orig_of;
      (* Dimensions: chain classes get suffix free-axes; crossing classes get
         the complement pattern found by checking which axes vary. *)
      let coords_of_new v = Syccl_util.Mixed_radix.decode ~shape v in
      let free_axes_of_class c =
        (* Determine, per axis, whether members of a group differ there. *)
        let free = Array.make k false in
        List.iter
          (fun g ->
            match List.map (fun v -> coords_of_new new_of.(v)) g with
            | [] -> ()
            | c0 :: rest ->
                List.iter
                  (fun cv -> Array.iteri (fun a x -> if x <> c0.(a) then free.(a) <- true) cv)
                  rest)
          c.groups;
        List.filter_map (fun (i, b) -> if b then Some i else None)
          (Array.to_list (Array.mapi (fun i b -> (i, b)) free))
      in
      let all_classes = chain @ List.rev crossing in
      let dims =
        List.mapi
          (fun i c ->
            let free = free_axes_of_class c in
            if free = [] then None
            else
              Some
                ( Printf.sprintf "dim%d" i,
                  free,
                  c.link,
                  if Link.bandwidth_gbps c.link >= 100.0 then 0 else 1 ))
          all_classes
      in
      let dims = List.filter_map Fun.id dims in
      if dims = [] then None
      else begin
        let topo = Topology.make ~name ~shape ~dims in
        (* Verify: every input class's groups must be exactly the groups of
           the corresponding dimension after relabelling. *)
        let normalize groups =
          List.sort compare
            (List.map (fun g -> List.sort compare g) groups)
        in
        let ok =
          List.for_all2
            (fun c (di : int) ->
              let expect =
                normalize
                  (List.map (fun g -> List.map (fun v -> new_of.(v)) g) c.groups)
              in
              let got =
                normalize
                  (Array.to_list
                     (Array.map Array.to_list (Topology.dim topo di).Topology.groups))
              in
              expect = got)
            (List.filter (fun c -> free_axes_of_class c <> []) all_classes)
            (List.init (Topology.num_dims topo) (fun i -> i))
        in
        if ok then Some (topo, orig_of) else None
      end
    end
  end
