(** Dimension/group inference from a raw link list (§3.1: "given a topology,
    SyCCL automatically extracts the dimensions and groups according to
    connectivity and connection performance").

    The input is an undirected GPU-to-GPU reachability list where each entry
    carries the link class of the connection (two GPUs behind the same
    NVSwitch, behind the same rail switch, ...).  Inference clusters edges by
    link class, takes connected components as groups, and then reconstructs a
    coordinate space in which every group is a fixed-coordinate slice — which
    may require relabelling GPUs. *)

val infer :
  ?name:string ->
  n:int ->
  (int * int * Link.t) list ->
  (Topology.t * int array) option
(** [infer ~n edges] returns [(topo, orig_of)] on success, where GPU [v] of
    [topo] corresponds to input GPU [orig_of.(v)].  Returns [None] when the
    link list does not describe a symmetric product/nested structure (unequal
    group sizes, partitions that are neither nested nor crossing cleanly). *)
