type t = { alpha : float; beta : float }

let make ~alpha ~gbps =
  assert (alpha >= 0.0 && gbps > 0.0);
  { alpha; beta = 1.0 /. (gbps *. 1e9) }

let bandwidth_gbps t = 1.0 /. t.beta /. 1e9

let transfer_time t size = t.alpha +. (t.beta *. size)

let busy_time t size = t.beta *. size

let equal a b = Float.equal a.alpha b.alpha && Float.equal a.beta b.beta

let compare a b =
  let c = Float.compare a.alpha b.alpha in
  if c <> 0 then c else Float.compare a.beta b.beta

let pp fmt t =
  Format.fprintf fmt "α=%.2fus β⁻¹=%.1fGBps" (t.alpha *. 1e6) (bandwidth_gbps t)
