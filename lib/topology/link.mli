(** Link performance classes under the α-β (Hockney) model.

    Transmitting a chunk of [s] bytes over a link takes [alpha + beta * s]
    seconds end to end; the link (port) is busy for [beta * s] seconds before
    it can start the next chunk (§5.1). *)

type t = {
  alpha : float;  (** constant latency, seconds *)
  beta : float;  (** inverse bandwidth, seconds per byte *)
}

val make : alpha:float -> gbps:float -> t
(** [make ~alpha ~gbps] builds a class from latency in seconds and bandwidth
    in gigabytes per second (1e9 bytes/s). *)

val bandwidth_gbps : t -> float
(** Inverse of [beta], in GB/s. *)

val transfer_time : t -> float -> float
(** [transfer_time t size] is [alpha + beta * size] for [size] bytes. *)

val busy_time : t -> float -> float
(** [busy_time t size] is [beta * size]: how long the port is occupied. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
