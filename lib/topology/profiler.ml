module Linalg = Syccl_util.Linalg
module Xrand = Syccl_util.Xrand

type fit = { alpha : float; beta : float; residual : float }

let default_sizes =
  (* 1 KB .. 256 MB in 4x steps: small sizes pin alpha, large sizes beta. *)
  List.init 10 (fun i -> 1024.0 *. Float.of_int (1 lsl (2 * i)))

let fit_link ?(sizes = default_sizes) ~probe () =
  let points = List.map (fun s -> (s, probe s)) sizes in
  let a = Array.of_list (List.map (fun (s, _) -> [| 1.0; s |]) points) in
  let b = Array.of_list (List.map snd points) in
  match Linalg.lstsq a b with
  | None -> invalid_arg "Profiler.fit_link: degenerate sweep"
  | Some x ->
      let alpha = Float.max 0.0 x.(0) and beta = Float.max 0.0 x.(1) in
      let residual =
        List.fold_left
          (fun acc (s, t) -> Float.max acc (Float.abs (alpha +. (beta *. s) -. t)))
          0.0 points
      in
      { alpha; beta; residual }

let representative_pair topo d =
  let members = Topology.gpus_in_group topo ~dim:d ~group:0 in
  if Array.length members < 2 then None else Some (members.(0), members.(1))

let profile ?(sizes = default_sizes) ?(repeats = 3) ~probe topo =
  List.filter_map
    (fun d ->
      match representative_pair topo d with
      | None -> None
      | Some (src, dst) ->
          let averaged size =
            let acc = ref 0.0 in
            for _ = 1 to repeats do
              acc := !acc +. probe ~dim:d ~src ~dst ~size
            done;
            !acc /. float_of_int repeats
          in
          Some (d, fit_link ~sizes ~probe:averaged ()))
    (List.init (Topology.num_dims topo) (fun d -> d))

let refit_topology ?sizes ~probe topo =
  let fits = profile ?sizes ~probe topo in
  let dims =
    List.init (Topology.num_dims topo) (fun d ->
        let dim = Topology.dim topo d in
        let link =
          match List.assoc_opt d fits with
          | Some f when f.beta > 0.0 ->
              Link.make ~alpha:f.alpha ~gbps:(1.0 /. f.beta /. 1e9)
          | _ -> dim.Topology.link
        in
        let free =
          List.filter_map
            (fun (a, b) -> if b then Some a else None)
            (Array.to_list (Array.mapi (fun a b -> (a, b)) dim.Topology.free_axes))
        in
        (dim.Topology.dim_name, free, link, dim.Topology.port_group))
  in
  Topology.make ~name:(topo.Topology.name ^ "-profiled") ~shape:topo.Topology.shape
    ~dims

let simulator_probe ?noise topo ~dim ~src ~dst ~size =
  ignore src;
  ignore dst;
  let link = (Topology.dim topo dim).Topology.link in
  let t = Link.transfer_time link size in
  match noise with
  | None -> t
  | Some (rng, magnitude) ->
      t *. (1.0 +. ((Xrand.float rng 2.0 -. 1.0) *. magnitude))
