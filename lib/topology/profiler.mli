(** Network profiling: recovering α-β link parameters from measurements
    (§6: "the network profiler measures the link parameters α and β by
    testing various chunk sizes for links in each dimension").

    The profiler is medium-agnostic: it drives a [probe] callback — on a real
    cluster a ping-pong kernel, in this repository a simulator-backed or
    synthetic measurement — across a size sweep and fits the α-β model
    [t(s) = α + β·s] by least squares.  Per-dimension profiling probes one
    representative peer pair per dimension and builds a topology with the
    fitted classes. *)

type fit = {
  alpha : float;  (** fitted latency, seconds *)
  beta : float;  (** fitted inverse bandwidth, seconds/byte *)
  residual : float;  (** max |t_pred − t_meas| over the sweep, seconds *)
}

val default_sizes : float list
(** The probe sweep: 1 KB to 256 MB in 4× steps. *)

val fit_link : ?sizes:float list -> probe:(float -> float) -> unit -> fit
(** [fit_link ~probe ()] measures [probe size] for every sweep size and fits
    α and β.  β is clamped to be non-negative; a negative fitted α (noise at
    tiny sizes) is clamped to 0. *)

val profile :
  ?sizes:float list ->
  ?repeats:int ->
  probe:(dim:int -> src:int -> dst:int -> size:float -> float) ->
  Topology.t ->
  (int * fit) list
(** Profile one representative in-group pair per dimension of a topology
    whose link classes are unknown or stale.  [repeats] probes are averaged
    per point (default 3).  Returns the fits by dimension index. *)

val refit_topology :
  ?sizes:float list ->
  probe:(dim:int -> src:int -> dst:int -> size:float -> float) ->
  Topology.t ->
  Topology.t
(** Rebuild the topology with profiled link classes in place of the declared
    ones — the calibration step a deployment runs before synthesis. *)

val simulator_probe :
  ?noise:Syccl_util.Xrand.t * float ->
  Topology.t ->
  dim:int ->
  src:int ->
  dst:int ->
  size:float ->
  float
(** A probe backed by the ground-truth link classes of a topology, with
    optional multiplicative measurement noise (rng, relative magnitude) —
    the stand-in for a real testbed in tests and examples. *)
