module Perm = Syccl_util.Perm
module Mixed_radix = Syccl_util.Mixed_radix

type dim = {
  dim_name : string;
  free_axes : bool array;
  link : Link.t;
  port_group : int;
  groups : int array array;
  group_of : int array;
}

type t = {
  name : string;
  shape : int array;
  num_gpus : int;
  dims : dim array;
  faults : Fault.t;
}

let build_dim ~shape ~num_gpus (dim_name, free_list, link, port_group) =
  let k = Array.length shape in
  if free_list = [] then invalid_arg "Topology.make: empty free-axis list";
  List.iter
    (fun a -> if a < 0 || a >= k then invalid_arg "Topology.make: axis out of range")
    free_list;
  let free_axes = Array.make k false in
  List.iter (fun a -> free_axes.(a) <- true) free_list;
  (* A group is identified by the coordinates on the non-free axes. *)
  let fixed_shape =
    Array.of_list
      (List.filteri (fun a _ -> not free_axes.(a)) (Array.to_list shape))
  in
  let fixed_key coords =
    let buf = ref [] in
    Array.iteri (fun a c -> if not free_axes.(a) then buf := c :: !buf) coords;
    Mixed_radix.encode ~shape:fixed_shape (Array.of_list (List.rev !buf))
  in
  let num_groups = Mixed_radix.size fixed_shape in
  let members = Array.make num_groups [] in
  let group_of = Array.make num_gpus 0 in
  for v = num_gpus - 1 downto 0 do
    let g = fixed_key (Mixed_radix.decode ~shape v) in
    members.(g) <- v :: members.(g);
    group_of.(v) <- g
  done;
  let groups = Array.map Array.of_list members in
  { dim_name; free_axes; link; port_group; groups; group_of }

let make ~name ~shape ~dims =
  if Array.length shape = 0 then invalid_arg "Topology.make: empty shape";
  Array.iter (fun s -> if s <= 0 then invalid_arg "Topology.make: axis size <= 0") shape;
  let num_gpus = Mixed_radix.size shape in
  let dims = Array.of_list (List.map (build_dim ~shape ~num_gpus) dims) in
  { name; shape; num_gpus; dims; faults = Fault.empty }

let num_gpus t = t.num_gpus
let num_dims t = Array.length t.dims
let dim t d = t.dims.(d)
let coords t v = Mixed_radix.decode ~shape:t.shape v
let gpu_of_coords t c = Mixed_radix.encode ~shape:t.shape c
let group_of t ~dim v = t.dims.(dim).group_of.(v)
let gpus_in_group t ~dim ~group = t.dims.(dim).groups.(group)
let groups_count t ~dim = Array.length t.dims.(dim).groups

let peers t ~dim v =
  let g = group_of t ~dim v in
  let members = gpus_in_group t ~dim ~group:g in
  Array.of_list (List.filter (fun u -> u <> v) (Array.to_list members))

let apply_axis_perms t perms =
  if Array.length perms <> Array.length t.shape then
    invalid_arg "Topology.apply_axis_perms: wrong number of axes";
  Array.iteri
    (fun a p ->
      if Array.length p <> t.shape.(a) then
        invalid_arg "Topology.apply_axis_perms: permutation/axis size mismatch")
    perms;
  Array.init t.num_gpus (fun v ->
      let c = coords t v in
      let c' = Array.mapi (fun a x -> perms.(a).(x)) c in
      gpu_of_coords t c')

let automorphism_to t ~src ~dst =
  let cs = coords t src and cd = coords t dst in
  let perms =
    Array.mapi (fun a _ -> Perm.rotation t.shape.(a) (cd.(a) - cs.(a))) cs
  in
  apply_axis_perms t perms

let is_automorphism t p =
  Perm.is_valid p
  && Array.length p = t.num_gpus
  && Array.for_all
       (fun d ->
         (* Every group must map onto some group of the same dimension. *)
         Array.for_all
           (fun members ->
             let images = Array.map (fun v -> p.(v)) members in
             let g = d.group_of.(images.(0)) in
             Array.for_all (fun v -> d.group_of.(v) = g) images)
           d.groups)
       t.dims

let with_link t ~dim link =
  if dim < 0 || dim >= Array.length t.dims then
    invalid_arg "Topology.with_link: dimension out of range";
  {
    t with
    name = t.name ^ "-degraded";
    dims = Array.mapi (fun i d -> if i = dim then { d with link } else d) t.dims;
  }

(* --- punctured topologies (fault sets) ----------------------------------- *)

let faults t = t.faults

(* The name of the healthy topology a (possibly punctured) one came from:
   puncturing appends "!" plus the canonical fault encoding, so everything
   keyed on [name] (sub-solve memo, search and combination caches) separates
   punctured variants from the pristine topology for free. *)
let base_name t =
  match String.index_opt t.name '!' with
  | None -> t.name
  | Some i -> String.sub t.name 0 i

let check_fault_elt t = function
  | Fault.Gpu g ->
      if g < 0 || g >= t.num_gpus then
        invalid_arg "Topology.puncture: gpu out of range"
  | Fault.Link { dim; a; b } ->
      if dim < 0 || dim >= Array.length t.dims then
        invalid_arg "Topology.puncture: link dimension out of range";
      if a < 0 || b >= t.num_gpus then
        invalid_arg "Topology.puncture: link endpoint out of range";
      if t.dims.(dim).group_of.(a) <> t.dims.(dim).group_of.(b) then
        invalid_arg "Topology.puncture: link endpoints are not peers"
  | Fault.Nic { gpu; port_group } ->
      if gpu < 0 || gpu >= t.num_gpus then
        invalid_arg "Topology.puncture: nic gpu out of range";
      if not (Array.exists (fun d -> d.port_group = port_group) t.dims) then
        invalid_arg "Topology.puncture: nic port group unused by any dimension"

let with_faults t faults =
  let name =
    if Fault.is_empty faults then base_name t
    else base_name t ^ "!" ^ Fault.encode faults
  in
  { t with name; faults }

let puncture t f =
  List.iter (check_fault_elt t) (Fault.elements f);
  with_faults t (Fault.union t.faults f)

let base t = with_faults t Fault.empty

let gpu_alive t v =
  not (List.exists (function Fault.Gpu g -> g = v | _ -> false)
         (Fault.elements t.faults))

(* Whether the intra-group edge u—v of [dim] survives: both endpoints up,
   neither endpoint's NIC for the dimension's port group down, and the edge
   itself not down.  Fault sets are tiny, so a list scan per query is fine. *)
let edge_alive t ~dim u v =
  Fault.is_empty t.faults
  ||
  let pg = t.dims.(dim).port_group in
  let lo = min u v and hi = max u v in
  not
    (List.exists
       (function
         | Fault.Gpu g -> g = u || g = v
         | Fault.Link { dim = d; a; b } -> d = dim && a = lo && b = hi
         | Fault.Nic { gpu; port_group } ->
             port_group = pg && (gpu = u || gpu = v))
       (Fault.elements t.faults))

let alive_peers t ~dim v =
  let g = group_of t ~dim v in
  let members = gpus_in_group t ~dim ~group:g in
  Array.of_list
    (List.filter
       (fun u -> u <> v && edge_alive t ~dim u v)
       (Array.to_list members))

(* The rotation group: per-axis rotation products, one element per GPU
   (the canonical automorphism taking GPU 0 there).  Always a subgroup of
   the full automorphism group, cheap to enumerate, and exactly the family
   [automorphism_to] draws from — so schedules transported along its
   elements are covered by the automorphism-transport law. *)
let rotation_group t =
  List.init t.num_gpus (fun g -> automorphism_to t ~src:0 ~dst:g)

(* The subgroup of rotations fixing the fault set: the symmetry a punctured
   topology retains.  For a healthy topology this is the whole rotation
   group. *)
let stabilizer t =
  Perm.stabilizer
    ~image:(fun f p -> Fault.map p f)
    ~equal:Fault.equal (rotation_group t) t.faults

(* Canonical structural digest: everything the synthesizer's output depends
   on — axis sizes, and per dimension the free-axis subset, link class and
   port group — serialized deterministically and hashed.  The topology
   [name] and dimension names are deliberately excluded, so a renamed (or
   programmatically rebuilt) cluster with identical structure shares cached
   schedules.  Link parameters are rendered as hex floats: two topologies
   fingerprint equal iff their α/β are bit-equal, never merely close. *)
let fingerprint t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "syccl-topology-v1;shape=";
  Array.iter (fun s -> Buffer.add_string buf (string_of_int s ^ ".")) t.shape;
  Array.iter
    (fun d ->
      Buffer.add_string buf ";dim:free=";
      Array.iter (fun f -> Buffer.add_char buf (if f then '1' else '0')) d.free_axes;
      Buffer.add_string buf
        (Printf.sprintf ",alpha=%h,beta=%h,port=%d" d.link.Link.alpha
           d.link.Link.beta d.port_group))
    t.dims;
  (* Punctured topologies get a distinct digest; healthy ones keep the
     exact pre-fault digest, so existing registries stay valid. *)
  if not (Fault.is_empty t.faults) then
    Buffer.add_string buf (";faults=" ^ Fault.encode t.faults);
  Digest.to_hex (Digest.string (Buffer.contents buf))

let bandwidth_share t =
  (* Per-GPU egress capacity per port group: count each physical port once,
     at the highest bandwidth class attached to it. *)
  let port_bw = Hashtbl.create 8 in
  Array.iter
    (fun d ->
      let bw = Link.bandwidth_gbps d.link in
      let cur = Option.value (Hashtbl.find_opt port_bw d.port_group) ~default:0.0 in
      Hashtbl.replace port_bw d.port_group (Float.max cur bw))
    t.dims;
  let total = Hashtbl.fold (fun _ bw acc -> acc +. bw) port_bw 0.0 in
  Array.map (fun d -> Link.bandwidth_gbps d.link /. total) t.dims

let pp fmt t =
  Format.fprintf fmt "@[<v>topology %s: %d GPUs, shape [%s]@," t.name t.num_gpus
    (String.concat "x" (Array.to_list (Array.map string_of_int t.shape)));
  Array.iteri
    (fun i d ->
      Format.fprintf fmt "  dim %d (%s, %a, port#%d): %d groups of %d@," i d.dim_name
        Link.pp d.link d.port_group (Array.length d.groups)
        (Array.length d.groups.(0)))
    t.dims;
  Format.fprintf fmt "@]"
