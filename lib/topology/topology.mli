(** Symmetric multi-dimensional GPU cluster topologies (§3.1, Table 2).

    A topology places GPUs in a coordinate space: GPU identity is a vector of
    coordinates over a [shape] of axes.  A {e dimension} is one type of
    inter-GPU connection (NVLink, same-rail network, spine, ...); within a
    dimension, GPUs are partitioned into {e groups} — a group is the set of
    GPUs that agree on every axis the dimension does {e not} span (its
    non-free axes).  Groups of the same dimension are isomorphic by
    construction.

    Structure-preserving automorphisms are products of per-axis permutations;
    they map groups to groups within every dimension and are the engine
    behind sketch replication (§4.2) and isomorphism pruning (§4.1). *)

type dim = private {
  dim_name : string;
  free_axes : bool array;  (** [free_axes.(a)] iff axis [a] varies inside a group *)
  link : Link.t;  (** per-GPU port performance in this dimension *)
  port_group : int;
      (** dimensions with the same [port_group] contend for the same physical
          ingress/egress ports in the simulator (e.g. same-rail and spine
          traffic both consume the NIC) *)
  groups : int array array;  (** [groups.(g)] = sorted GPU ids of group [g] *)
  group_of : int array;  (** [group_of.(v)] = group index of GPU [v] *)
}

type t = private {
  name : string;
  shape : int array;  (** axis sizes; GPU id is the row-major encoding *)
  num_gpus : int;
  dims : dim array;
  faults : Fault.t;
      (** hardware currently down ({!Fault.empty} for a healthy topology);
          see {!puncture} *)
}

val make :
  name:string ->
  shape:int array ->
  dims:(string * int list * Link.t * int) list ->
  t
(** [make ~name ~shape ~dims] builds a topology.  Each dimension is
    [(dim_name, free_axis_indices, link, port_group)].  Free axis lists must
    be non-empty and within range.  GPU [v]'s coordinates are
    [Mixed_radix.decode ~shape v]. *)

val num_gpus : t -> int
val num_dims : t -> int
val dim : t -> int -> dim
val coords : t -> int -> int array
(** Coordinate vector of a GPU (fresh array). *)

val gpu_of_coords : t -> int array -> int

val group_of : t -> dim:int -> int -> int
(** Group index of a GPU in a dimension. *)

val gpus_in_group : t -> dim:int -> group:int -> int array
(** The member GPUs, sorted ascending (shared array, do not mutate). *)

val groups_count : t -> dim:int -> int

val peers : t -> dim:int -> int -> int array
(** GPUs reachable from a GPU within its group of [dim], excluding itself. *)

val apply_axis_perms : t -> Syccl_util.Perm.t array -> Syccl_util.Perm.t
(** [apply_axis_perms t perms] turns one permutation per axis into the
    induced GPU permutation.  Raises [Invalid_argument] if a permutation's
    length does not match its axis size. *)

val automorphism_to : t -> src:int -> dst:int -> Syccl_util.Perm.t
(** The canonical automorphism mapping GPU [src] to GPU [dst]: per-axis
    rotations by the coordinate difference.  Used to re-root sketches when
    decomposing all-to-all collectives (§4.3). *)

val is_automorphism : t -> Syccl_util.Perm.t -> bool
(** True iff the GPU permutation maps every group of every dimension onto a
    group of the same dimension. *)

val faults : t -> Fault.t
(** The fault set ({!Fault.empty} for a healthy topology). *)

val puncture : t -> Fault.t -> t
(** [puncture t f] is the surviving topology after losing the hardware in
    [f] (unioned with any faults [t] already carries).  The result's
    {!fingerprint} and [name] both fold in the canonical fault encoding, so
    caches and registries keyed on either separate punctured variants from
    the pristine topology automatically.  Raises [Invalid_argument] when an
    element is out of range (unknown GPU/dimension/port group, or link
    endpoints that are not peers). *)

val base : t -> t
(** The healthy topology a punctured one came from (identity when no
    faults). *)

val gpu_alive : t -> int -> bool

val edge_alive : t -> dim:int -> int -> int -> bool
(** Whether the intra-group edge between two peers of [dim] survives the
    fault set: both endpoints alive, neither endpoint's NIC for the
    dimension's port group down, and the link itself not down.  Always true
    on a healthy topology. *)

val alive_peers : t -> dim:int -> int -> int array
(** {!peers} filtered by {!edge_alive}. *)

val rotation_group : t -> Syccl_util.Perm.t list
(** All products of per-axis rotations — one element per GPU (the canonical
    {!automorphism_to} image of GPU 0).  A subgroup of the automorphism
    group, of size [num_gpus]. *)

val stabilizer : t -> Syccl_util.Perm.t list
(** The subgroup of {!rotation_group} fixing the fault set: the symmetry a
    punctured topology retains.  The whole rotation group when healthy. *)

val with_link : t -> dim:int -> Link.t -> t
(** A copy of the topology with one dimension's link class replaced — e.g. a
    degraded rail after a failure (§8 "adaptability to dynamic network
    environments"); re-synthesizing on the result adapts the schedule. *)

val fingerprint : t -> string
(** Canonical structural digest (hex): axis shape plus, per dimension, the
    free-axis subset, the exact link class (α, β bit-equal) and the port
    group.  Names are excluded, so structurally identical topologies share
    a fingerprint regardless of how they were built or labelled.  This is
    the registry key component of {!Syccl_serve.Registry}: two topologies
    with equal fingerprints are interchangeable for schedule reuse. *)

val bandwidth_share : t -> float array
(** [bandwidth_share t] is [u_d] of §4.2: for every dimension, the fraction
    of total per-GPU egress capacity it contributes.  Dimensions sharing a
    [port_group] split that port's bandwidth (only the highest-bandwidth
    class per port group is counted once). *)

val pp : Format.formatter -> t -> unit
(** Human-readable dimension/group summary in the style of Fig. 3. *)
