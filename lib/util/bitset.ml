type t = { n : int; words : int array }

let bits_per_word = 63

let nwords n = (n + bits_per_word - 1) / bits_per_word

let create n =
  assert (n >= 0);
  { n; words = Array.make (max 1 (nwords n)) 0 }

let capacity t = t.n

let copy t = { n = t.n; words = Array.copy t.words }

let check t i = assert (i >= 0 && i < t.n)

let add t i =
  check t i;
  let w = i / bits_per_word and b = i mod bits_per_word in
  t.words.(w) <- t.words.(w) lor (1 lsl b)

let remove t i =
  check t i;
  let w = i / bits_per_word and b = i mod bits_per_word in
  t.words.(w) <- t.words.(w) land lnot (1 lsl b)

let mem t i =
  check t i;
  let w = i / bits_per_word and b = i mod bits_per_word in
  t.words.(w) land (1 lsl b) <> 0

let popcount x =
  let rec loop x acc = if x = 0 then acc else loop (x land (x - 1)) (acc + 1) in
  loop x 0

let cardinal t = Array.fold_left (fun acc w -> acc + popcount w) 0 t.words

let is_empty t = Array.for_all (fun w -> w = 0) t.words

let is_full t = cardinal t = t.n

let zip_words f a b =
  assert (a.n = b.n);
  { n = a.n; words = Array.init (Array.length a.words) (fun i -> f a.words.(i) b.words.(i)) }

let union a b = zip_words ( lor ) a b
let inter a b = zip_words ( land ) a b
let diff a b = zip_words (fun x y -> x land lnot y) a b

let equal a b = a.n = b.n && a.words = b.words

let subset a b =
  assert (a.n = b.n);
  let ok = ref true in
  Array.iteri (fun i w -> if w land lnot b.words.(i) <> 0 then ok := false) a.words;
  !ok

let iter f t =
  for i = 0 to t.n - 1 do
    if mem t i then f i
  done

let fold f t init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) t;
  !acc

let elements t = List.rev (fold (fun i acc -> i :: acc) t [])

let of_list n xs =
  let t = create n in
  List.iter (add t) xs;
  t

let hash t = Hashtbl.hash (t.n, t.words)

let pp fmt t =
  Format.fprintf fmt "{%a}" (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f ",") Format.pp_print_int) (elements t)
