(** Fixed-capacity bitsets backed by an [int array].

    Used for GPU membership sets during sketch search; capacities are small
    (hundreds of bits) so operations are effectively constant time. *)

type t

val create : int -> t
(** [create n] is the empty set over universe [\[0, n)]. *)

val capacity : t -> int
(** Universe size given at creation. *)

val copy : t -> t

val add : t -> int -> unit
val remove : t -> int -> unit
val mem : t -> int -> bool

val cardinal : t -> int
(** Number of elements currently in the set. *)

val is_empty : t -> bool
val is_full : t -> bool
(** [is_full t] iff every element of the universe is present. *)

val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t
(** Set operations; arguments must share a capacity. Results are fresh. *)

val equal : t -> t -> bool
val subset : t -> t -> bool
(** [subset a b] iff every element of [a] is in [b]. *)

val iter : (int -> unit) -> t -> unit
val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
val elements : t -> int list
(** Elements in increasing order. *)

val of_list : int -> int list -> t
(** [of_list n xs] is the set over universe [n] containing [xs]. *)

val hash : t -> int
(** Hash consistent with [equal]. *)

val pp : Format.formatter -> t -> unit
