(* Deadline + cooperative cancellation token.  The deadline lives on the
   monotonic-clamped Clock.now axis so wall-clock steps cannot make a
   budget fire early or never; the token is one shared atomic so checks
   are cheap enough for inner solver loops. *)

type t = { dl : float; token : bool Atomic.t; mark : bool Atomic.t }

let unlimited =
  { dl = infinity; token = Atomic.make false; mark = Atomic.make false }

let create ?seconds () =
  let dl =
    match seconds with None -> infinity | Some s -> Clock.now () +. s
  in
  { dl; token = Atomic.make false; mark = Atomic.make false }

let sub ?seconds t =
  let dl =
    match seconds with
    | None -> t.dl
    | Some s -> Float.min t.dl (Clock.now () +. s)
  in
  (* Fresh mark: degradation is reported against the budget the caller
     holds, not smeared across siblings derived from the same parent. *)
  { dl; token = t.token; mark = Atomic.make false }

let detach t =
  (* Own token (seeded with the parent's current state) and own mark: the
     detached budget keeps the parent's deadline but can be cancelled — and
     reports degradation — independently. *)
  { dl = t.dl; token = Atomic.make (Atomic.get t.token); mark = Atomic.make false }

let cancel t = Atomic.set t.token true
let cancelled t = Atomic.get t.token
let expired t = Atomic.get t.token || Clock.now () > t.dl
let has_deadline t = t.dl < infinity

let remaining t =
  if Atomic.get t.token then 0.0
  else if t.dl = infinity then infinity
  else Float.max 0.0 (t.dl -. Clock.now ())

let deadline t = t.dl
let mark_degraded t = Atomic.set t.mark true
let degraded t = Atomic.get t.mark
