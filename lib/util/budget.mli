(** Deadlines and cooperative cancellation for anytime synthesis.

    A budget couples an absolute monotonic deadline ({!Clock.now}-based)
    with a cancellation token.  Synthesis stages receive one budget and
    check it cooperatively: {!cancelled} is a single atomic load (cheap
    enough for inner loops), {!expired} adds one clock read.  Budgets
    never interrupt anything by themselves — a stage that observes an
    expired or cancelled budget is expected to return its best incumbent
    (or a cheap fallback), not to raise.

    Derived budgets ({!sub}) share the parent's cancellation token, so
    cancelling an element of a sweep releases every worker cooperating on
    that element, while sibling elements keep running. *)

type t

val unlimited : t
(** No deadline, never cancelled.  A shared constant: do not {!cancel}
    it (cancellation would leak into every user of the constant); create
    a real budget when cancellation is needed. *)

val create : ?seconds:float -> unit -> t
(** [create ~seconds ()] is a fresh budget expiring [seconds] from now
    (no deadline when omitted), with its own cancellation token.
    [seconds <= 0] yields an already-expired budget. *)

val sub : ?seconds:float -> t -> t
(** [sub ~seconds t] is a child budget: its deadline is the earlier of
    [t]'s and [seconds] from now, and it shares [t]'s cancellation token
    (cancelling the parent cancels the child, and vice versa). *)

val detach : t -> t
(** [detach t] keeps [t]'s deadline but gets its own cancellation token
    (seeded with [t]'s current state) and its own degradation mark.  Use
    it where work items under one deadline must be cancellable — or
    report degradation — independently (e.g. one budget per sweep
    element, or per sub-solve when deciding what may be memoized). *)

val cancel : t -> unit
(** Set the cancellation token.  Idempotent; visible to every budget
    sharing the token. *)

val cancelled : t -> bool
(** One atomic load; true after {!cancel} on this budget or a relative. *)

val expired : t -> bool
(** [cancelled t] or the deadline has passed. *)

val has_deadline : t -> bool
(** Whether a finite deadline is set ({!unlimited} and deadline-less
    {!create} say no). *)

val remaining : t -> float
(** Seconds until the deadline: [infinity] without one, [0.] once
    expired or cancelled.  Never negative. *)

val deadline : t -> float
(** Absolute deadline on the {!Clock.now} axis ([infinity] if none). *)

val mark_degraded : t -> unit
(** Record that some stage holding this budget degraded its result to meet
    the deadline (skipped a refinement, truncated an enumeration).  Marks
    are per-budget: {!sub} children start unmarked and their marks do not
    propagate to the parent — stages that should contribute to a caller's
    degradation report must be handed the caller's own budget. *)

val degraded : t -> bool
(** Whether {!mark_degraded} was called on exactly this budget. *)
