(* Bounded, mutex-protected cache with approximate-LRU eviction.

   Replaces the plain global Hashtbls that the synthesizer used to mutate
   with no synchronization (a latent race once synthesize calls run
   concurrently).  Entries carry a last-use tick from a global counter;
   when the table outgrows its capacity the least-recently-used half is
   dropped in one batch, keeping eviction cost amortized O(1) per
   insertion.  Hit/miss/eviction counts are recorded in {!Counters} under
   the cache's name. *)

type ('k, 'v) t = {
  lock : Mutex.t;
  tbl : ('k, 'v * int ref) Hashtbl.t;
  capacity : int;
  tick : int Atomic.t;
  hits : int Atomic.t;
  misses : int Atomic.t;
  evictions : int Atomic.t;
  h_hit : Counters.hist;  (* lookup latency of hits (lock wait included) *)
  h_miss : Counters.hist;  (* lookup latency of misses *)
  h_compute : Counters.hist;  (* find_or_compute miss-path compute time *)
}

let create ?(capacity = 1024) ~name () =
  {
    lock = Mutex.create ();
    tbl = Hashtbl.create (min 64 capacity);
    capacity = max 8 capacity;
    tick = Atomic.make 0;
    hits = Counters.int_counter (name ^ ".hits");
    misses = Counters.int_counter (name ^ ".misses");
    evictions = Counters.int_counter (name ^ ".evictions");
    h_hit = Counters.histogram (name ^ ".hit_s");
    h_miss = Counters.histogram (name ^ ".miss_s");
    h_compute = Counters.histogram (name ^ ".compute_s");
  }

let touch c slot = slot := Atomic.fetch_and_add c.tick 1

let find_opt c k =
  let t0 = Clock.now () in
  Mutex.lock c.lock;
  let r =
    match Hashtbl.find_opt c.tbl k with
    | Some (v, slot) ->
        touch c slot;
        Atomic.incr c.hits;
        Some v
    | None ->
        Atomic.incr c.misses;
        None
  in
  Mutex.unlock c.lock;
  Counters.record (if Option.is_none r then c.h_miss else c.h_hit) (Clock.elapsed t0);
  r

(* Caller holds [c.lock]. *)
let evict_locked c =
  let len = Hashtbl.length c.tbl in
  if len > c.capacity then begin
    let items = Hashtbl.fold (fun k (_, slot) acc -> (!slot, k) :: acc) c.tbl [] in
    let sorted = List.sort compare items in
    let drop = len - max 1 (c.capacity / 2) in
    List.iteri
      (fun i (_, k) ->
        if i < drop then begin
          Hashtbl.remove c.tbl k;
          Atomic.incr c.evictions
        end)
      sorted
  end

let put c k v =
  Mutex.lock c.lock;
  let slot = ref 0 in
  touch c slot;
  Hashtbl.replace c.tbl k (v, slot);
  evict_locked c;
  Mutex.unlock c.lock

(* The computation runs outside the lock: concurrent callers may compute
   the same value twice, but never block each other on a slow miss, and
   [Hashtbl.replace] keeps the table consistent either way. *)
let find_or_compute c k f =
  match find_opt c k with
  | Some v -> v
  | None ->
      let t0 = Clock.now () in
      let v = f () in
      Counters.record c.h_compute (Clock.elapsed t0);
      put c k v;
      v

let bindings c =
  Mutex.lock c.lock;
  let l = Hashtbl.fold (fun k (v, _) acc -> (k, v) :: acc) c.tbl [] in
  Mutex.unlock c.lock;
  l

let length c =
  Mutex.lock c.lock;
  let n = Hashtbl.length c.tbl in
  Mutex.unlock c.lock;
  n

let clear c =
  Mutex.lock c.lock;
  Hashtbl.reset c.tbl;
  Mutex.unlock c.lock
