(** Bounded, domain-safe cache with approximate-LRU eviction.

    All operations are mutex-protected, so the cache can back memoization
    on paths that run concurrently (parallel sweeps, pooled solves).
    Capacity is enforced by batch-evicting the least-recently-used half
    when exceeded.  Hits, misses and evictions are published through
    {!Counters} as ["<name>.hits"], ["<name>.misses"],
    ["<name>.evictions"]; lookup-latency distributions as the
    ["<name>.hit_s"] / ["<name>.miss_s"] histograms, and the
    {!find_or_compute} miss-path compute time as ["<name>.compute_s"]. *)

type ('k, 'v) t

val create : ?capacity:int -> name:string -> unit -> ('k, 'v) t
(** [create ~capacity ~name ()] — capacity defaults to 1024, floors at 8. *)

val find_opt : ('k, 'v) t -> 'k -> 'v option
(** Lookup; refreshes recency and counts a hit or miss. *)

val put : ('k, 'v) t -> 'k -> 'v -> unit
(** Insert/replace, evicting the LRU half if the table outgrew capacity. *)

val find_or_compute : ('k, 'v) t -> 'k -> (unit -> 'v) -> 'v
(** Lookup, or compute-and-insert on miss.  The computation runs outside
    the lock; concurrent misses on the same key may compute twice (the
    results race benignly via replace). *)

val bindings : ('k, 'v) t -> ('k * 'v) list
(** Unordered snapshot of the current contents.  Does not refresh recency
    and counts neither hits nor misses (used to freeze a consistent view,
    e.g. the sweep-start snapshot of {!Syccl.Synthesizer.synthesize_all}). *)

val length : ('k, 'v) t -> int
val clear : ('k, 'v) t -> unit
