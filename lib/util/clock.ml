(* Monotonicized wall clock.  The stdlib has no monotonic clock before
   OCaml 5.2 and mtime is not vendored, so we clamp [Unix.gettimeofday]
   to be non-decreasing across all domains: a backwards NTP step can at
   worst freeze measured durations at zero, never make them negative. *)

let last = Atomic.make 0.0

let rec now () =
  let t = Unix.gettimeofday () in
  let prev = Atomic.get last in
  if t >= prev then if Atomic.compare_and_set last prev t then t else now ()
  else prev

let elapsed t0 = now () -. t0
