(** Monotonic (non-decreasing) wall clock, shared across domains.

    Synthesis-time accounting must survive wall-clock adjustments; [now]
    returns [Unix.gettimeofday] clamped to never run backwards. *)

val now : unit -> float
(** Current time in seconds.  Guaranteed non-decreasing process-wide, even
    if the system clock steps backwards. *)

val elapsed : float -> float
(** [elapsed t0] is [now () -. t0]; non-negative when [t0] came from
    {!now}. *)
