(* The registered-names table every Counters.bump/add/addf/observe literal
   must come from (check_lint rule 6).  A counter-name typo — registry.mis
   where a dashboard scrapes registry.miss.absent — is invisible to the
   type checker and silently splits a metric in two; keeping every static
   name here (and every dynamic family as a prefix) makes the lint catch it
   at build time, and doubles as the operator-facing inventory of what the
   process exposes.

   NOTE: check_lint parses this file textually — every string literal in it
   becomes a registered name (trailing-dot literals are prefixes) — so do
   not quote counter names in comments here. *)

(* Exact names, grouped by subsystem.  Keep sorted within each group. *)
let exact =
  [
    (* lib/util/pool *)
    "pool.queue_latency_s";
    "pool.steals";
    "pool.task_raised";
    "pool.tasks";
    (* lib/milp *)
    "lp.phase1_skipped";
    "lp.pivots_per_solve";
    "lp.reinvert_s";
    "lp.reinverts";
    "lp.warm_hits";
    "lp.warm_misses";
    "lp_dense.pivots_per_solve";
    "milp.flow_certified";
    "milp.nodes";
    "milp.nodes_per_solve";
    "milp.solve_s";
    "milp.solves";
    (* lib/core *)
    "cache.subsolve.hits";
    "cache.subsolve.misses";
    "cache.subsolve.quality_fail";
    "cache.subsolve.transfer_fail";
    "subsolve.budget_skips";
    "subsolve.solve_s";
    "subsolve.widened";
    "synth.calls";
    "synth.combine_s";
    "synth.degraded";
    "synth.fallbacks";
    "synth.reroutes";
    "synth.rung_failures";
    "synth.search_s";
    "synth.solve1_s";
    "synth.solve2_s";
    "synth.total_s";
    (* lib/serve: registry *)
    "registry.hits";
    "registry.hit.scaled_cross";
    "registry.hit.transported";
    "registry.misses";
    "registry.miss.absent";
    "registry.miss.corrupt";
    "registry.miss.invalid";
    "registry.miss.slower";
    "registry.miss.transport_rejected";
    "registry.corrupt";
    "registry.invalid";
    "registry.slower";
    "registry.stores";
    (* lib/serve: failover *)
    "failover.skipped_demand";
    (* lib/serve: audit *)
    "audit.records";
    "audit.write_errors";
    "audit.synth_time_s";
    "audit.time_s";
    "registry.store_errors";
    "serve.requests";
    "serve.lowered";
    "serve.lower_failures";
    "serve.rung.full";
    "serve.rung.fast";
    "serve.rung.rerouted";
    "serve.rung.fallback";
  ]

(* Dynamic families: names built at run time from a registered stem
   (bounded caches, armed fault points, per-reason registry misses).  A
   used name is legal when it extends one of these prefixes. *)
let prefixes = [ "cache."; "fault."; "registry.miss."; "test." ]

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let mem name =
  List.mem name exact
  || List.exists (fun prefix -> starts_with ~prefix name) prefixes
