(** Central registry of legal {!Counters} names.

    Every static name passed to [Counters.bump]/[add]/[addf]/[observe]
    (and the cell constructors) in [lib/] must appear in {!exact}, and
    every dynamically built family must extend one of {!prefixes} —
    [tools/check_lint.ml] rule 6 enforces this at build time, so a
    counter-name typo cannot silently split a metric.  The table is also
    the inventory rendered by [syccl metrics] consumers. *)

val exact : string list
(** Every statically known counter/histogram name, grouped by subsystem. *)

val prefixes : string list
(** Stems of dynamically named families (e.g. ["cache."] for the bounded
    caches, ["fault."] for armed fault points). *)

val mem : string -> bool
(** [mem name] is true when [name] is exact or extends a family prefix. *)
