(* Global, domain-safe named counters and log-bucketed histograms.
   Registration takes a mutex; the hot path is a plain [Atomic] operation
   on the returned cell. *)

let lock = Mutex.create ()
let ints : (string, int Atomic.t) Hashtbl.t = Hashtbl.create 32
let floats : (string, float Atomic.t) Hashtbl.t = Hashtbl.create 32

let registered tbl name mk =
  Mutex.lock lock;
  let c =
    match Hashtbl.find_opt tbl name with
    | Some c -> c
    | None ->
        let c = mk () in
        Hashtbl.replace tbl name c;
        c
  in
  Mutex.unlock lock;
  c

let int_counter name = registered ints name (fun () -> Atomic.make 0)
let float_counter name = registered floats name (fun () -> Atomic.make 0.0)
let bump name = Atomic.incr (int_counter name)
let add name k = ignore (Atomic.fetch_and_add (int_counter name) k)

(* [Atomic.t float] holds a boxed float; CAS compares the box we just read,
   so the usual retry loop is safe. *)
let rec atomic_addf cell x =
  let v = Atomic.get cell in
  if not (Atomic.compare_and_set cell v (v +. x)) then atomic_addf cell x

let addf name x = atomic_addf (float_counter name) x

let value name =
  Mutex.lock lock;
  let v =
    match Hashtbl.find_opt ints name with
    | Some c -> float_of_int (Atomic.get c)
    | None -> (
        match Hashtbl.find_opt floats name with
        | Some c -> Atomic.get c
        | None -> 0.0)
  in
  Mutex.unlock lock;
  v

let snapshot () =
  Mutex.lock lock;
  let acc =
    Hashtbl.fold (fun k c acc -> (k, float_of_int (Atomic.get c)) :: acc) ints []
  in
  let acc = Hashtbl.fold (fun k c acc -> (k, Atomic.get c) :: acc) floats acc in
  Mutex.unlock lock;
  List.sort compare acc

(* --- histograms --------------------------------------------------------- *)

(* 4 buckets per octave over [2^-30, 2^34): bucket i covers
   [2^((i-120)/4), 2^((i-119)/4)), so the geometric midpoint represents any
   member with <= 2^(1/8)-1 ~ 9% relative error.  min/max are kept exactly
   so p=0/p=1 reconstruct exactly. *)

let num_buckets = 256
let bucket_bias = 120

type hist = {
  buckets : int Atomic.t array;
  h_n : int Atomic.t;
  h_sum : float Atomic.t;
  h_min : float Atomic.t;
  h_max : float Atomic.t;
}

let hists : (string, hist) Hashtbl.t = Hashtbl.create 16

let histogram name =
  registered hists name (fun () ->
      {
        buckets = Array.init num_buckets (fun _ -> Atomic.make 0);
        h_n = Atomic.make 0;
        h_sum = Atomic.make 0.0;
        h_min = Atomic.make infinity;
        h_max = Atomic.make neg_infinity;
      })

let bucket_of v =
  if v <= 0.0 then 0
  else
    let i = bucket_bias + int_of_float (Float.floor (4.0 *. Float.log2 v)) in
    if i < 0 then 0 else if i >= num_buckets then num_buckets - 1 else i

let bucket_mid i = Float.pow 2.0 ((float_of_int (i - bucket_bias) +. 0.5) /. 4.0)

let rec atomic_minf cell x =
  let v = Atomic.get cell in
  if x < v && not (Atomic.compare_and_set cell v x) then atomic_minf cell x

let rec atomic_maxf cell x =
  let v = Atomic.get cell in
  if x > v && not (Atomic.compare_and_set cell v x) then atomic_maxf cell x

let record h v =
  Atomic.incr h.buckets.(bucket_of v);
  Atomic.incr h.h_n;
  atomic_addf h.h_sum v;
  atomic_minf h.h_min v;
  atomic_maxf h.h_max v

let observe name v = record (histogram name) v

let hist_count h = Atomic.get h.h_n

let hist_percentile h p =
  let n = Atomic.get h.h_n in
  if n = 0 then nan
  else begin
    let p = Float.max 0.0 (Float.min 1.0 p) in
    (* Nearest rank, matching Stats.percentile's index on a sorted array. *)
    let rank = int_of_float (Float.round (p *. float_of_int (n - 1))) in
    let rank = max 0 (min (n - 1) rank) in
    if rank = 0 then Atomic.get h.h_min
    else if rank = n - 1 then Atomic.get h.h_max
    else begin
      let rec find i cum =
        if i >= num_buckets then num_buckets - 1
        else
          let cum = cum + Atomic.get h.buckets.(i) in
          if cum > rank then i else find (i + 1) cum
      in
      let v = bucket_mid (find 0 0) in
      Float.max (Atomic.get h.h_min) (Float.min (Atomic.get h.h_max) v)
    end
  end

type hist_stats = {
  n : int;
  sum : float;
  mean : float;
  hmin : float;
  hmax : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

let hist_stats h =
  let n = Atomic.get h.h_n in
  let sum = Atomic.get h.h_sum in
  {
    n;
    sum;
    mean = (if n = 0 then nan else sum /. float_of_int n);
    hmin = (if n = 0 then nan else Atomic.get h.h_min);
    hmax = (if n = 0 then nan else Atomic.get h.h_max);
    p50 = hist_percentile h 0.5;
    p90 = hist_percentile h 0.9;
    p99 = hist_percentile h 0.99;
  }

let hist_snapshot () =
  Mutex.lock lock;
  let acc = Hashtbl.fold (fun k h acc -> (k, h) :: acc) hists [] in
  Mutex.unlock lock;
  List.filter_map
    (fun (k, h) -> if hist_count h = 0 then None else Some (k, hist_stats h))
    acc
  |> List.sort compare

(* Upper bound of bucket [i]: the bucket covers values below 2^((i+1-bias)/4).
   (Our buckets are half-open on the right, Prometheus' [le] is inclusive;
   the discrepancy is within the histogram's documented ~9% resolution.) *)
let bucket_upper i = Float.pow 2.0 (float_of_int (i + 1 - bucket_bias) /. 4.0)

let hist_buckets h =
  let acc = ref [] in
  for i = num_buckets - 1 downto 0 do
    let c = Atomic.get h.buckets.(i) in
    if c > 0 then acc := (bucket_upper i, c) :: !acc
  done;
  !acc

(* --- Prometheus text exposition ----------------------------------------- *)

(* Prometheus metric names admit [a-zA-Z0-9_:]; our dotted names map dot (and
   anything else exotic) to '_' under a "syccl_" namespace prefix. *)
let prometheus_name name =
  let b = Buffer.create (String.length name + 8) in
  Buffer.add_string b "syccl_";
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> Buffer.add_char b c
      | _ -> Buffer.add_char b '_')
    name;
  Buffer.contents b

(* %.17g round-trips every float; integral values print without exponent
   noise ("3" not "3.0000...") for readability. *)
let prometheus_num v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.17g" v

let to_prometheus () =
  let buf = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n') fmt in
  Mutex.lock lock;
  let int_cells =
    Hashtbl.fold (fun k c acc -> (k, float_of_int (Atomic.get c)) :: acc) ints []
  in
  let float_cells = Hashtbl.fold (fun k c acc -> (k, Atomic.get c) :: acc) floats [] in
  let hist_cells = Hashtbl.fold (fun k h acc -> (k, h) :: acc) hists [] in
  Mutex.unlock lock;
  List.iter
    (fun (k, v) ->
      let n = prometheus_name k in
      line "# HELP %s SyCCL counter %s" n k;
      line "# TYPE %s counter" n;
      line "%s %s" n (prometheus_num v))
    (List.sort compare int_cells);
  List.iter
    (fun (k, v) ->
      let n = prometheus_name k in
      line "# HELP %s SyCCL accumulator %s (seconds or units)" n k;
      line "# TYPE %s gauge" n;
      line "%s %s" n (prometheus_num v))
    (List.sort compare float_cells);
  List.iter
    (fun (k, h) ->
      let n = prometheus_name k in
      line "# HELP %s SyCCL log-bucketed histogram %s" n k;
      line "# TYPE %s histogram" n;
      let cum = ref 0 in
      List.iter
        (fun (upper, c) ->
          cum := !cum + c;
          line "%s_bucket{le=\"%s\"} %d" n (prometheus_num upper) !cum)
        (hist_buckets h);
      line "%s_bucket{le=\"+Inf\"} %d" n (Atomic.get h.h_n);
      line "%s_sum %s" n (prometheus_num (Atomic.get h.h_sum));
      line "%s_count %d" n (Atomic.get h.h_n))
    (List.sort (fun (a, _) (b, _) -> compare a b) hist_cells);
  Buffer.contents buf

(* --- reset -------------------------------------------------------------- *)

let quiescence_checks : (string * (unit -> bool)) list ref = ref []

let register_quiescence_check name f =
  Mutex.lock lock;
  quiescence_checks := (name, f) :: !quiescence_checks;
  Mutex.unlock lock

let reset () =
  (* Checks run outside the registry lock: they may take other locks (the
     pool registry), and zeroing never needs them. *)
  Mutex.lock lock;
  let checks = !quiescence_checks in
  Mutex.unlock lock;
  List.iter
    (fun (name, f) ->
      let debug =
        match Sys.getenv_opt "SYCCL_DEBUG" with
        | Some s -> s <> ""
        | None -> false
      in
      if not (f ()) && debug then
        failwith
          (Printf.sprintf
             "Counters.reset: quiescence check %S failed (resetting while \
              recorders run tears related counters)"
             name))
    checks;
  Mutex.lock lock;
  Hashtbl.iter (fun _ c -> Atomic.set c 0) ints;
  Hashtbl.iter (fun _ c -> Atomic.set c 0.0) floats;
  Hashtbl.iter
    (fun _ h ->
      Array.iter (fun b -> Atomic.set b 0) h.buckets;
      Atomic.set h.h_n 0;
      Atomic.set h.h_sum 0.0;
      Atomic.set h.h_min infinity;
      Atomic.set h.h_max neg_infinity)
    hists;
  Mutex.unlock lock
