(* Global, domain-safe named counters.  Registration takes a mutex; the hot
   path is a plain [Atomic] operation on the returned cell. *)

let lock = Mutex.create ()
let ints : (string, int Atomic.t) Hashtbl.t = Hashtbl.create 32
let floats : (string, float Atomic.t) Hashtbl.t = Hashtbl.create 32

let registered tbl name mk =
  Mutex.lock lock;
  let c =
    match Hashtbl.find_opt tbl name with
    | Some c -> c
    | None ->
        let c = mk () in
        Hashtbl.replace tbl name c;
        c
  in
  Mutex.unlock lock;
  c

let int_counter name = registered ints name (fun () -> Atomic.make 0)
let float_counter name = registered floats name (fun () -> Atomic.make 0.0)
let bump name = Atomic.incr (int_counter name)

(* [Atomic.t float] holds a boxed float; CAS compares the box we just read,
   so the usual retry loop is safe. *)
let rec atomic_addf cell x =
  let v = Atomic.get cell in
  if not (Atomic.compare_and_set cell v (v +. x)) then atomic_addf cell x

let addf name x = atomic_addf (float_counter name) x

let value name =
  Mutex.lock lock;
  let v =
    match Hashtbl.find_opt ints name with
    | Some c -> float_of_int (Atomic.get c)
    | None -> (
        match Hashtbl.find_opt floats name with
        | Some c -> Atomic.get c
        | None -> 0.0)
  in
  Mutex.unlock lock;
  v

let snapshot () =
  Mutex.lock lock;
  let acc =
    Hashtbl.fold (fun k c acc -> (k, float_of_int (Atomic.get c)) :: acc) ints []
  in
  let acc = Hashtbl.fold (fun k c acc -> (k, Atomic.get c) :: acc) floats acc in
  Mutex.unlock lock;
  List.sort compare acc

let reset () =
  Mutex.lock lock;
  Hashtbl.iter (fun _ c -> Atomic.set c 0) ints;
  Hashtbl.iter (fun _ c -> Atomic.set c 0.0) floats;
  Mutex.unlock lock
