(** Lightweight global instrumentation counters.

    Every counter is a named [Atomic] cell in a process-wide registry; the
    pool, the bounded caches, and the synthesizer stages record into it, and
    [syccl_cli synth --stats] / the bench harness print {!snapshot}.  Safe to
    use from any domain. *)

val int_counter : string -> int Atomic.t
(** Return (registering on first use) the named integer counter.  Cache the
    cell and use [Atomic.incr]/[Atomic.fetch_and_add] on hot paths. *)

val float_counter : string -> float Atomic.t
(** Same, for float accumulators (e.g. per-stage wall time). *)

val bump : string -> unit
(** One-shot increment by name (registry lookup per call). *)

val addf : string -> float -> unit
(** Atomically add to the named float accumulator. *)

val value : string -> float
(** Current value of a counter (ints widened to float); 0 if unknown. *)

val snapshot : unit -> (string * float) list
(** All counters, sorted by name. *)

val reset : unit -> unit
(** Zero every registered counter (the registry itself is kept). *)
