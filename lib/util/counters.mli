(** Lightweight global instrumentation: named counters and log-bucketed
    histograms.

    Every cell is a named [Atomic] in a process-wide registry; the pool,
    the bounded caches, the MILP solver and the synthesizer stages record
    into it, and [syccl_cli synth --stats]/[--metrics] and the bench
    harness print {!snapshot} / {!hist_snapshot}.  Safe to use from any
    domain. *)

val int_counter : string -> int Atomic.t
(** Return (registering on first use) the named integer counter.  Cache the
    cell and use [Atomic.incr]/[Atomic.fetch_and_add] on hot paths. *)

val float_counter : string -> float Atomic.t
(** Same, for float accumulators (e.g. per-stage wall time). *)

val bump : string -> unit
(** One-shot increment by name (registry lookup per call). *)

val addf : string -> float -> unit
(** Atomically add to the named float accumulator. *)

val add : string -> int -> unit
(** Atomically add to the named integer counter. *)

val value : string -> float
(** Current value of a counter (ints widened to float); 0 if unknown. *)

val snapshot : unit -> (string * float) list
(** All counters, sorted by name. *)

(** {1 Histograms}

    Log-bucketed distribution cells: 4 buckets per power of two over
    [2^-30, 2^34) (sub-nanosecond to ~10^10), so any recorded value is
    represented with at most ~9% relative error.  Values ≤ 0 land in the
    lowest bucket.  [record] touches a handful of [Atomic]s and is safe
    from any domain. *)

type hist

val histogram : string -> hist
(** Return (registering on first use) the named histogram.  Cache the cell
    on hot paths. *)

val record : hist -> float -> unit
(** Add one sample. *)

val observe : string -> float -> unit
(** One-shot [record] by name (registry lookup per call). *)

val hist_count : hist -> int

val hist_percentile : hist -> float -> float
(** [hist_percentile h p] with [p] in [\[0,1\]]: nearest-rank percentile
    reconstructed from the buckets — the bucket's geometric midpoint,
    clamped into the histogram's exact [min, max].  Agrees with
    {!Stats.percentile} on the same samples up to the bucket resolution
    (≤ ~9% relative error; exact at [p = 0] and [p = 1]).  [nan] when the
    histogram is empty. *)

type hist_stats = {
  n : int;
  sum : float;
  mean : float;
  hmin : float;
  hmax : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

val hist_stats : hist -> hist_stats
(** Summary of one histogram ([nan] percentiles/extrema when empty). *)

val hist_snapshot : unit -> (string * hist_stats) list
(** All non-empty histograms, sorted by name. *)

val hist_buckets : hist -> (float * int) list
(** Non-empty buckets as [(upper_bound, count)] pairs in increasing bound
    order.  Bounds are the log-bucket grid's bucket upper edges (powers of
    2{^1/4}); counts are per-bucket, {e not} cumulative. *)

(** {1 Prometheus exposition} *)

val to_prometheus : unit -> string
(** Render every counter and histogram in the Prometheus text exposition
    format (version 0.0.4): integer counters as [counter], float
    accumulators as [gauge], histograms as cumulative
    [_bucket{le="..."}]/[_sum]/[_count] series over the log-bucket grid.
    Names are mapped into the [syccl_] namespace with dots replaced by
    underscores ("registry.miss.absent" → [syccl_registry_miss_absent]).
    A future [syccl serve] daemon's [/metrics] endpoint returns exactly
    this string; the CLI's [--metrics-out] writes it to a file. *)

(** {1 Reset and quiescence} *)

val register_quiescence_check : string -> (unit -> bool) -> unit
(** Register a named predicate that must hold for {!reset} to be
    race-free (e.g. "no pool task in flight", registered by {!Pool}). *)

val reset : unit -> unit
(** Zero every registered counter and histogram (the registry itself is
    kept).

    Cells are zeroed one by one, {e not} atomically as a set: a [bump] or
    [record] racing with [reset] may land before or after the zeroing of
    its cell, so counters read afterwards can tear (one counter reflecting
    the racing operation, a related one not).  The supported pattern is to
    reset — and later {!snapshot} — only while recording parties are
    quiescent (no pool task in flight, no concurrent synthesis).  The
    registered quiescence checks are evaluated first; a failing check
    raises [Failure] when the [SYCCL_DEBUG] environment variable is set
    and is ignored (documented tear semantics) otherwise. *)
