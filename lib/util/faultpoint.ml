(* Named fault-injection points, armed via SYCCL_FAULTS.

   The disarmed fast path is one atomic load (config = None).  Armed
   points each own a splitmix64 stream seeded from (global seed, point
   name), so a given point produces the same accept/reject sequence in
   every run; the stream is drawn under a lock, never shared unseeded
   state. *)

exception Injected of string

type point = { prob : float; rng : Xrand.t; lock : Mutex.t }

type config = (string, point) Hashtbl.t

let state : config option Atomic.t = Atomic.make None

let parse ~seed spec =
  let tbl : config = Hashtbl.create 8 in
  String.split_on_char ',' spec
  |> List.iter (fun part ->
         let part = String.trim part in
         if part <> "" then
           match String.rindex_opt part ':' with
           | None ->
               invalid_arg
                 (Printf.sprintf "Faultpoint: missing ':' in %S" part)
           | Some i ->
               let name = String.trim (String.sub part 0 i) in
               let p =
                 try float_of_string (String.sub part (i + 1) (String.length part - i - 1))
                 with _ ->
                   invalid_arg
                     (Printf.sprintf "Faultpoint: bad probability in %S" part)
               in
               if name = "" || p < 0.0 || p > 1.0 || Float.is_nan p then
                 invalid_arg
                   (Printf.sprintf "Faultpoint: bad point spec %S" part);
               Hashtbl.replace tbl name
                 {
                   prob = p;
                   rng = Xrand.create (seed lxor Hashtbl.hash name);
                   lock = Mutex.create ();
                 });
  tbl

let configure ?(seed = 42) spec =
  let tbl = parse ~seed spec in
  Atomic.set state (if Hashtbl.length tbl = 0 then None else Some tbl)

let clear () = Atomic.set state None

let configured () = Atomic.get state <> None

let probability name =
  match Atomic.get state with
  | None -> 0.0
  | Some tbl -> (
      match Hashtbl.find_opt tbl name with
      | None -> 0.0
      | Some p -> p.prob)

let fire name =
  match Atomic.get state with
  | None -> false
  | Some tbl -> (
      match Hashtbl.find_opt tbl name with
      | None -> false
      | Some p ->
          if p.prob >= 1.0 then true
          else if p.prob <= 0.0 then false
          else begin
            Mutex.lock p.lock;
            let draw = Xrand.float p.rng 1.0 in
            Mutex.unlock p.lock;
            draw < p.prob
          end)

let fired name =
  Counters.bump ("fault." ^ name);
  Trace.instant "fault.fired" ~args:[ ("point", name) ]

let inject name =
  if fire name then begin
    fired name;
    raise (Injected name)
  end

let slow ?(seconds = 0.2) name =
  if fire name then begin
    fired name;
    Unix.sleepf seconds
  end

(* Environment arming: read once at module initialization so probes in
   any library see a consistent configuration from process start. *)
let () =
  match Sys.getenv_opt "SYCCL_FAULTS" with
  | None -> ()
  | Some spec ->
      let seed =
        match Sys.getenv_opt "SYCCL_FAULT_SEED" with
        | Some s -> ( try int_of_string (String.trim s) with _ -> 42)
        | None -> 42
      in
      configure ~seed spec
