(** Named fault-injection points for robustness testing.

    A fault point is a named probe compiled into production code paths
    (sub-solver entry, MILP solve, pool task execution, simulator runs).
    When the harness is disarmed — the default — every probe costs one
    atomic load and nothing else.  Armed via the [SYCCL_FAULTS]
    environment variable (read once at startup) or {!configure}, each
    listed point fires with its configured probability, drawn from a
    per-point deterministic {!Xrand} stream seeded from the point name
    and the global seed ([SYCCL_FAULT_SEED], default 42).

    Spec syntax: a comma-separated list of [name:probability] pairs,
    e.g. [SYCCL_FAULTS=subsolver.crash:0.5,milp.slow:1.0].  Unknown
    names are fine — a probe only fires if its own name is listed.

    Determinism: with probability 0 or 1 behaviour is deterministic
    regardless of domain scheduling.  Fractional probabilities draw from
    the per-point stream under a lock, so each point sees a fixed
    pseudo-random sequence; which {e caller} observes which draw can
    still depend on scheduling across domains. *)

exception Injected of string
(** Raised by {!inject} when the named fault fires; the payload is the
    point name. *)

val configure : ?seed:int -> string -> unit
(** Arm the harness from a spec string, replacing any previous
    configuration.  An empty or all-whitespace spec disarms.  Raises
    [Invalid_argument] on a malformed spec. *)

val clear : unit -> unit
(** Disarm every point. *)

val configured : unit -> bool
(** Whether any point is armed. *)

val probability : string -> float
(** The armed probability of a point (0. when absent or disarmed). *)

val fire : string -> bool
(** Draw the named point: [true] with the configured probability.
    One atomic load when the harness is disarmed. *)

val inject : string -> unit
(** [inject name] raises [Injected name] when the point fires.  The
    canonical crash probe: place it at the top of the protected
    operation. *)

val slow : ?seconds:float -> string -> unit
(** [slow name] sleeps [seconds] (default 0.2) when the point fires —
    the canonical latency probe for deadline testing. *)
