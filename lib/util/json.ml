type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

(* --- printing --- *)

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let number_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let to_string ?(pretty = false) t =
  let buf = Buffer.create 256 in
  let rec go indent t =
    let pad n = if pretty then Buffer.add_string buf (String.make n ' ') in
    let nl () = if pretty then Buffer.add_char buf '\n' in
    match t with
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Num f -> Buffer.add_string buf (number_to_string f)
    | Str s ->
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape s);
        Buffer.add_char buf '"'
    | List [] -> Buffer.add_string buf "[]"
    | List xs ->
        Buffer.add_char buf '[';
        nl ();
        List.iteri
          (fun i x ->
            if i > 0 then begin
              Buffer.add_char buf ',';
              nl ()
            end;
            pad (indent + 2);
            go (indent + 2) x)
          xs;
        nl ();
        pad indent;
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
        Buffer.add_char buf '{';
        nl ();
        List.iteri
          (fun i (k, v) ->
            if i > 0 then begin
              Buffer.add_char buf ',';
              nl ()
            end;
            pad (indent + 2);
            Buffer.add_char buf '"';
            Buffer.add_string buf (escape k);
            Buffer.add_string buf "\":";
            if pretty then Buffer.add_char buf ' ';
            go (indent + 2) v)
          fields;
        nl ();
        pad indent;
        Buffer.add_char buf '}'
  in
  go 0 t;
  Buffer.contents buf

(* --- parsing --- *)

type state = { src : string; mutable pos : int }

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance st;
      skip_ws st
  | _ -> ()

let expect st c =
  match peek st with
  | Some x when x = c -> advance st
  | Some x -> fail "expected '%c' at %d, found '%c'" c st.pos x
  | None -> fail "expected '%c' at end of input" c

let literal st word value =
  let n = String.length word in
  if st.pos + n <= String.length st.src && String.sub st.src st.pos n = word then begin
    st.pos <- st.pos + n;
    value
  end
  else fail "invalid literal at %d" st.pos

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail "unterminated string"
    | Some '"' -> advance st
    | Some '\\' -> (
        advance st;
        match peek st with
        | Some '"' -> advance st; Buffer.add_char buf '"'; go ()
        | Some '\\' -> advance st; Buffer.add_char buf '\\'; go ()
        | Some '/' -> advance st; Buffer.add_char buf '/'; go ()
        | Some 'n' -> advance st; Buffer.add_char buf '\n'; go ()
        | Some 'r' -> advance st; Buffer.add_char buf '\r'; go ()
        | Some 't' -> advance st; Buffer.add_char buf '\t'; go ()
        | Some 'b' -> advance st; Buffer.add_char buf '\b'; go ()
        | Some 'f' -> advance st; Buffer.add_char buf '\012'; go ()
        | Some 'u' ->
            advance st;
            if st.pos + 4 > String.length st.src then fail "bad unicode escape";
            let hex = String.sub st.src st.pos 4 in
            st.pos <- st.pos + 4;
            let code =
              try int_of_string ("0x" ^ hex) with _ -> fail "bad unicode escape"
            in
            (* Only the Latin-1 subset round-trips; enough for our output. *)
            if code < 256 then Buffer.add_char buf (Char.chr code)
            else Buffer.add_char buf '?';
            go ()
        | _ -> fail "bad escape at %d" st.pos)
    | Some c ->
        advance st;
        Buffer.add_char buf c;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let is_num_char c =
    match c with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  let rec go () =
    match peek st with
    | Some c when is_num_char c ->
        advance st;
        go ()
    | _ -> ()
  in
  go ();
  if st.pos = start then fail "expected number at %d" start;
  let text = String.sub st.src start (st.pos - start) in
  match float_of_string_opt text with
  | Some f -> f
  | None -> fail "malformed number %S" text

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail "unexpected end of input"
  | Some 'n' -> literal st "null" Null
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some '"' -> Str (parse_string st)
  | Some '[' ->
      advance st;
      skip_ws st;
      if peek st = Some ']' then begin
        advance st;
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              items (v :: acc)
          | Some ']' ->
              advance st;
              List.rev (v :: acc)
          | _ -> fail "expected ',' or ']' at %d" st.pos
        in
        List (items [])
      end
  | Some '{' ->
      advance st;
      skip_ws st;
      if peek st = Some '}' then begin
        advance st;
        Obj []
      end
      else begin
        let field () =
          skip_ws st;
          let k = parse_string st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          (k, v)
        in
        let rec fields acc =
          let f = field () in
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              fields (f :: acc)
          | Some '}' ->
              advance st;
              List.rev (f :: acc)
          | _ -> fail "expected ',' or '}' at %d" st.pos
        in
        Obj (fields [])
      end
  | Some _ -> Num (parse_number st)

let of_string src =
  let st = { src; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length src then fail "trailing garbage at %d" st.pos;
  v

let member key = function
  | Obj fields -> (
      match List.assoc_opt key fields with
      | Some v -> v
      | None -> fail "missing field %S" key)
  | _ -> fail "not an object (looking for %S)" key

let to_float = function Num f -> f | _ -> fail "expected number"
let to_int t = int_of_float (to_float t)
let to_list = function List l -> l | _ -> fail "expected list"
let to_str = function Str s -> s | _ -> fail "expected string"
