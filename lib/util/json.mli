(** Minimal JSON codec (no external dependency): enough for schedule and
    topology persistence.

    Strings support the standard escapes; numbers are parsed as floats.
    This is not a general-purpose validating parser — it accepts every valid
    JSON document this library emits and rejects malformed input with
    {!Parse_error}. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

val to_string : ?pretty:bool -> t -> string
val of_string : string -> t
(** Raises {!Parse_error} on malformed input or trailing garbage. *)

val member : string -> t -> t
(** Field lookup; raises {!Parse_error} when absent or not an object. *)

val to_float : t -> float
val to_int : t -> int
val to_list : t -> t list
val to_str : t -> string
(** Coercions; raise {!Parse_error} on the wrong constructor. *)
