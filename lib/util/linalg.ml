let mat_vec a x =
  Array.map
    (fun row ->
      let acc = ref 0.0 in
      Array.iteri (fun j v -> acc := !acc +. (v *. x.(j))) row;
      !acc)
    a

let residual a x b =
  let ax = mat_vec a x in
  let m = ref 0.0 in
  Array.iteri (fun i v -> m := Float.max !m (Float.abs (v -. b.(i)))) ax;
  !m

(* LU factorization with partial pivoting, stored packed: [lu.(i).(j)] holds
   U on and above the diagonal and the unit-lower-triangular multipliers of L
   strictly below it.  [perm.(i)] is the original row index that ended up in
   position [i]. *)
type lu = { lu : float array array; perm : int array }

let lu_factor a =
  let n = Array.length a in
  if n = 0 then Some { lu = [||]; perm = [||] }
  else begin
    assert (Array.for_all (fun row -> Array.length row = n) a);
    let m = Array.map Array.copy a in
    let perm = Array.init n (fun i -> i) in
    let singular = ref false in
    for col = 0 to n - 1 do
      if not !singular then begin
        let pivot = ref col in
        for r = col + 1 to n - 1 do
          if Float.abs m.(r).(col) > Float.abs m.(!pivot).(col) then pivot := r
        done;
        if Float.abs m.(!pivot).(col) < 1e-12 then singular := true
        else begin
          if !pivot <> col then begin
            let tmp = m.(col) in
            m.(col) <- m.(!pivot);
            m.(!pivot) <- tmp;
            let t = perm.(col) in
            perm.(col) <- perm.(!pivot);
            perm.(!pivot) <- t
          end;
          for r = col + 1 to n - 1 do
            let f = m.(r).(col) /. m.(col).(col) in
            m.(r).(col) <- f;
            if f <> 0.0 then
              for c = col + 1 to n - 1 do
                m.(r).(c) <- m.(r).(c) -. (f *. m.(col).(c))
              done
          done
        end
      end
    done;
    if !singular then None else Some { lu = m; perm }
  end

let lu_solve { lu; perm } b =
  let n = Array.length lu in
  let x = Array.init n (fun i -> b.(perm.(i))) in
  (* Forward substitution with unit L. *)
  for r = 1 to n - 1 do
    let acc = ref x.(r) in
    for c = 0 to r - 1 do
      acc := !acc -. (lu.(r).(c) *. x.(c))
    done;
    x.(r) <- !acc
  done;
  (* Back substitution with U. *)
  for r = n - 1 downto 0 do
    let acc = ref x.(r) in
    for c = r + 1 to n - 1 do
      acc := !acc -. (lu.(r).(c) *. x.(c))
    done;
    x.(r) <- !acc /. lu.(r).(r)
  done;
  x

let lu_solve_t { lu; perm } b =
  let n = Array.length lu in
  let y = Array.copy b in
  (* Solve U^T y' = b (forward, U^T is lower triangular). *)
  for r = 0 to n - 1 do
    let acc = ref y.(r) in
    for c = 0 to r - 1 do
      acc := !acc -. (lu.(c).(r) *. y.(c))
    done;
    y.(r) <- !acc /. lu.(r).(r)
  done;
  (* Solve L^T z = y' (backward, unit diagonal). *)
  for r = n - 1 downto 0 do
    let acc = ref y.(r) in
    for c = r + 1 to n - 1 do
      acc := !acc -. (lu.(c).(r) *. y.(c))
    done;
    y.(r) <- !acc
  done;
  (* Undo the row permutation: (P A)^T x = ... means x = P^T applied back. *)
  let x = Array.make n 0.0 in
  Array.iteri (fun i p -> x.(p) <- y.(i)) perm;
  x

let solve a b =
  let n = Array.length a in
  assert (n = Array.length b);
  match lu_factor a with
  | None -> None
  | Some f -> Some (lu_solve f b)

let transpose a =
  let rows = Array.length a in
  if rows = 0 then [||]
  else
    let cols = Array.length a.(0) in
    Array.init cols (fun j -> Array.init rows (fun i -> a.(i).(j)))

let lstsq a b =
  let at = transpose a in
  let n = Array.length at in
  let ata = Array.init n (fun i ->
      Array.init n (fun j ->
          let acc = ref 0.0 in
          Array.iteri (fun k v -> acc := !acc +. (v *. at.(j).(k))) at.(i);
          !acc))
  in
  let atb = Array.map (fun row ->
      let acc = ref 0.0 in
      Array.iteri (fun k v -> acc := !acc +. (v *. b.(k))) row;
      !acc)
      at
  in
  solve ata atb
