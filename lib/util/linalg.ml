let mat_vec a x =
  Array.map
    (fun row ->
      let acc = ref 0.0 in
      Array.iteri (fun j v -> acc := !acc +. (v *. x.(j))) row;
      !acc)
    a

let residual a x b =
  let ax = mat_vec a x in
  let m = ref 0.0 in
  Array.iteri (fun i v -> m := Float.max !m (Float.abs (v -. b.(i)))) ax;
  !m

let solve a b =
  let n = Array.length a in
  assert (n = Array.length b);
  if n = 0 then Some [||]
  else begin
    assert (Array.for_all (fun row -> Array.length row = n) a);
    let m = Array.map Array.copy a in
    let rhs = Array.copy b in
    let singular = ref false in
    (* Forward elimination with partial pivoting. *)
    for col = 0 to n - 1 do
      if not !singular then begin
        let pivot = ref col in
        for r = col + 1 to n - 1 do
          if Float.abs m.(r).(col) > Float.abs m.(!pivot).(col) then pivot := r
        done;
        if Float.abs m.(!pivot).(col) < 1e-12 then singular := true
        else begin
          let tmp = m.(col) in
          m.(col) <- m.(!pivot);
          m.(!pivot) <- tmp;
          let t = rhs.(col) in
          rhs.(col) <- rhs.(!pivot);
          rhs.(!pivot) <- t;
          for r = col + 1 to n - 1 do
            let f = m.(r).(col) /. m.(col).(col) in
            if f <> 0.0 then begin
              for c = col to n - 1 do
                m.(r).(c) <- m.(r).(c) -. (f *. m.(col).(c))
              done;
              rhs.(r) <- rhs.(r) -. (f *. rhs.(col))
            end
          done
        end
      end
    done;
    if !singular then None
    else begin
      let x = Array.make n 0.0 in
      for r = n - 1 downto 0 do
        let acc = ref rhs.(r) in
        for c = r + 1 to n - 1 do
          acc := !acc -. (m.(r).(c) *. x.(c))
        done;
        x.(r) <- !acc /. m.(r).(r)
      done;
      Some x
    end
  end

let transpose a =
  let rows = Array.length a in
  if rows = 0 then [||]
  else
    let cols = Array.length a.(0) in
    Array.init cols (fun j -> Array.init rows (fun i -> a.(i).(j)))

let lstsq a b =
  let at = transpose a in
  let n = Array.length at in
  let ata = Array.init n (fun i ->
      Array.init n (fun j ->
          let acc = ref 0.0 in
          Array.iteri (fun k v -> acc := !acc +. (v *. at.(j).(k))) at.(i);
          !acc))
  in
  let atb = Array.map (fun row ->
      let acc = ref 0.0 in
      Array.iteri (fun k v -> acc := !acc +. (v *. b.(k))) row;
      !acc)
      at
  in
  solve ata atb
