(** Small dense linear algebra used by chunk-ratio allocation and tests. *)

val solve : float array array -> float array -> float array option
(** [solve a b] solves [a x = b] by Gaussian elimination with partial
    pivoting.  Returns [None] when [a] is (numerically) singular.  [a] and
    [b] are not modified. *)

val lstsq : float array array -> float array -> float array option
(** [lstsq a b] solves the least-squares problem [min ||a x - b||] via the
    normal equations; suitable for the small well-conditioned systems that
    arise in chunk allocation.  Returns [None] when the normal matrix is
    singular. *)

val mat_vec : float array array -> float array -> float array
(** Matrix-vector product. *)

val residual : float array array -> float array -> float array -> float
(** [residual a x b] is [max_i |(a x - b).(i)|]. *)
