(** Small dense linear algebra used by chunk-ratio allocation, the simplex
    basis machinery's tests, and the profiler. *)

type lu
(** An LU factorization with partial pivoting ([P A = L U]).  Factor once,
    then solve against many right-hand sides — including the transposed
    system, which is how a simplex basis prices rows (btran) with the same
    factors it uses for columns (ftran). *)

val lu_factor : float array array -> lu option
(** Factor a square matrix.  Returns [None] when it is (numerically)
    singular.  The input is not modified. *)

val lu_solve : lu -> float array -> float array
(** [lu_solve f b] solves [A x = b] using the factors of [A]. *)

val lu_solve_t : lu -> float array -> float array
(** [lu_solve_t f b] solves [Aᵀ x = b] using the same factors. *)

val solve : float array array -> float array -> float array option
(** [solve a b] solves [a x = b] via {!lu_factor}/{!lu_solve}.  Returns
    [None] when [a] is (numerically) singular.  [a] and [b] are not
    modified. *)

val lstsq : float array array -> float array -> float array option
(** [lstsq a b] solves the least-squares problem [min ||a x - b||] via the
    normal equations; suitable for the small well-conditioned systems that
    arise in chunk allocation.  Returns [None] when the normal matrix is
    singular. *)

val mat_vec : float array array -> float array -> float array
(** Matrix-vector product. *)

val residual : float array array -> float array -> float array -> float
(** [residual a x b] is [max_i |(a x - b).(i)|]. *)
