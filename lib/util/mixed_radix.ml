let size shape = Array.fold_left ( * ) 1 shape

let encode ~shape coords =
  assert (Array.length shape = Array.length coords);
  let idx = ref 0 in
  Array.iteri
    (fun i c ->
      assert (c >= 0 && c < shape.(i));
      idx := (!idx * shape.(i)) + c)
    coords;
  !idx

let decode ~shape idx =
  let k = Array.length shape in
  let coords = Array.make k 0 in
  let rem = ref idx in
  for i = k - 1 downto 0 do
    coords.(i) <- !rem mod shape.(i);
    rem := !rem / shape.(i)
  done;
  assert (!rem = 0);
  coords

let iter ~shape f =
  let n = size shape in
  let k = Array.length shape in
  let coords = Array.make k 0 in
  for _ = 1 to n do
    f coords;
    (* Increment the coordinate vector, last axis fastest. *)
    let rec bump i =
      if i >= 0 then begin
        coords.(i) <- coords.(i) + 1;
        if coords.(i) = shape.(i) then begin
          coords.(i) <- 0;
          bump (i - 1)
        end
      end
    in
    bump (k - 1)
  done
