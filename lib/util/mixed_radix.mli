(** Mixed-radix encoding between flat indices and coordinate vectors.

    A shape [\[|s0; s1; ...|\]] defines the space [\[0,s0) × \[0,s1) × ...];
    the flat index is row-major (last axis varies fastest). *)

val size : int array -> int
(** Product of the shape. *)

val encode : shape:int array -> int array -> int
(** [encode ~shape coords] is the flat index of [coords]. *)

val decode : shape:int array -> int -> int array
(** Inverse of {!encode}. *)

val iter : shape:int array -> (int array -> unit) -> unit
(** Visit every coordinate vector in flat-index order.  The array passed to
    the callback is reused between calls; copy it if you keep it. *)
