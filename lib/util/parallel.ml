let num_recommended () = max 1 (Domain.recommended_domain_count () - 1)

(* Thin facade over the persistent pool: callers keep the historical
   [map ~domains] interface, but domains are spawned once per level and
   reused (see Pool). *)
let map ?domains f xs =
  let domains =
    match domains with Some d -> max 1 d | None -> num_recommended ()
  in
  Pool.map (Pool.get domains) f xs
