let num_recommended () = max 1 (Domain.recommended_domain_count () - 1)

let map ?domains f xs =
  let n = Array.length xs in
  let domains = match domains with Some d -> max 1 d | None -> num_recommended () in
  if domains <= 1 || n <= 1 then Array.map f xs
  else begin
    let k = min domains n in
    let results = Array.make n None in
    (* Static block partition: slice i handles [lo, hi). *)
    let slice i =
      let per = n / k and rem = n mod k in
      let lo = (i * per) + min i rem in
      let hi = lo + per + (if i < rem then 1 else 0) in
      (lo, hi)
    in
    let run i () =
      let lo, hi = slice i in
      for j = lo to hi - 1 do
        results.(j) <- Some (f xs.(j))
      done
    in
    let handles = Array.init k (fun i -> Domain.spawn (run i)) in
    let first_error = ref None in
    Array.iter
      (fun h ->
        match Domain.join h with
        | () -> ()
        | exception e -> if !first_error = None then first_error := Some e)
      handles;
    (match !first_error with Some e -> raise e | None -> ());
    Array.map (function Some v -> v | None -> assert false) results
  end
