(* Deprecated alias: the thin facade was folded into Pool (map_domains /
   num_recommended).  Kept for one release so external callers migrate on
   a deprecation warning instead of a hard break. *)

let num_recommended = Pool.num_recommended
let map = Pool.map_domains
