(** Data-parallel map over OCaml 5 domains.

    SyCCL solves independent sub-demands in parallel (§5.3).  Since the
    domain-pool rework this is a facade over {!Pool}: [map ~domains]
    reuses the persistent pool for that parallelism level instead of
    spawning and joining fresh domains per call. *)

val num_recommended : unit -> int
(** Recommended domain count for this machine. *)

val map : ?domains:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map ~domains f xs] applies [f] to every element, preserving order.
    With [domains <= 1] (or a single element) it degrades to a plain
    sequential map.  Exceptions raised by [f] are re-raised in the
    caller; the lowest failing index wins, so behaviour matches
    [Array.map] for any domain count. *)
