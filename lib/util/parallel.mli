(** Data-parallel map over OCaml 5 domains.

    SyCCL solves independent sub-demands in parallel (§5.3); this module
    provides the worker pool.  Work items are split statically into
    [num_domains] slices; each slice runs on its own domain. *)

val num_recommended : unit -> int
(** Recommended domain count for this machine. *)

val map : ?domains:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map ~domains f xs] applies [f] to every element, preserving order.
    With [domains <= 1] (or a single element) it degrades to a plain
    sequential map.  Exceptions raised by [f] are re-raised in the caller. *)
