(** Deprecated alias of {!Pool}'s level-addressed map.

    The facade was folded into {!Pool} ({!Pool.map_domains},
    {!Pool.num_recommended}); this module forwards to it and will be
    removed next release. *)

val num_recommended : unit -> int
  [@@ocaml.deprecated "use Syccl_util.Pool.num_recommended"]

val map : ?domains:int -> ('a -> 'b) -> 'a array -> 'b array
  [@@ocaml.deprecated "use Syccl_util.Pool.map_domains"]
