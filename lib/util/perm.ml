type t = int array

let identity n = Array.init n (fun i -> i)

let is_valid p =
  let n = Array.length p in
  let seen = Array.make n false in
  let ok = ref true in
  Array.iter
    (fun x ->
      if x < 0 || x >= n || seen.(x) then ok := false else seen.(x) <- true)
    p;
  !ok

let compose p q =
  assert (Array.length p = Array.length q);
  Array.map (fun i -> p.(i)) q

let invert p =
  let inv = Array.make (Array.length p) 0 in
  Array.iteri (fun i x -> inv.(x) <- i) p;
  inv

let apply p i = p.(i)

let rotation n k =
  let k = ((k mod n) + n) mod n in
  Array.init n (fun i -> (i + k) mod n)

let of_cycle n cycle =
  let p = identity n in
  (match cycle with
  | [] | [ _ ] -> ()
  | first :: _ ->
      let rec link = function
        | [ last ] -> p.(last) <- first
        | a :: (b :: _ as rest) ->
            p.(a) <- b;
            link rest
        | [] -> ()
      in
      link cycle);
  p

let equal = ( = )
let compare = Stdlib.compare

(* Closure of a generator set under composition, by breadth-first products.
   The groups this repo meets are tiny (per-axis rotation products: at most
   [num_gpus] elements), so a list-backed frontier is plenty; [limit] is a
   guard against being handed generators of a huge group by mistake. *)
let close ?(limit = 1 lsl 16) gens =
  match gens with
  | [] -> []
  | g0 :: _ ->
      let n = Array.length g0 in
      let seen = Hashtbl.create 64 in
      let out = ref [] in
      let add p =
        if not (Hashtbl.mem seen p) then begin
          if Hashtbl.length seen >= limit then
            invalid_arg "Perm.close: group exceeds the element limit";
          Hashtbl.replace seen p ();
          out := p :: !out;
          true
        end
        else false
      in
      ignore (add (identity n));
      let rec grow frontier =
        let next =
          List.concat_map
            (fun p -> List.filter (fun q -> add q) (List.map (compose p) gens))
            frontier
        in
        if next <> [] then grow next
      in
      grow [ identity n ];
      List.rev !out

(* Stabilizer of a point under a group acting through [image]: the subset
   fixing it.  A subset of a group closed this way is itself a subgroup. *)
let stabilizer ~image ~equal:eq group x =
  List.filter (fun p -> eq (image x p) x) group

(* Partition [points] into orbits under the group action, returning each
   orbit as (canonical representative, members).  The representative is the
   minimum image under [compare], so it is identical for every member of
   the same orbit — usable directly as a cache or registry key class. *)
let orbit_classes ~group ~image ~compare:cmp points =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun x ->
      let canon =
        List.fold_left
          (fun best p ->
            let y = image x p in
            if cmp y best < 0 then y else best)
          x group
      in
      match Hashtbl.find_opt tbl canon with
      | Some members -> members := x :: !members
      | None ->
          Hashtbl.replace tbl canon (ref [ x ]);
          order := canon :: !order)
    points;
  List.rev_map (fun canon -> (canon, List.rev !(Hashtbl.find tbl canon))) !order

let pp fmt p =
  Format.fprintf fmt "[%a]"
    (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f " ") Format.pp_print_int)
    (Array.to_list p)
