type t = int array

let identity n = Array.init n (fun i -> i)

let is_valid p =
  let n = Array.length p in
  let seen = Array.make n false in
  let ok = ref true in
  Array.iter
    (fun x ->
      if x < 0 || x >= n || seen.(x) then ok := false else seen.(x) <- true)
    p;
  !ok

let compose p q =
  assert (Array.length p = Array.length q);
  Array.map (fun i -> p.(i)) q

let invert p =
  let inv = Array.make (Array.length p) 0 in
  Array.iteri (fun i x -> inv.(x) <- i) p;
  inv

let apply p i = p.(i)

let rotation n k =
  let k = ((k mod n) + n) mod n in
  Array.init n (fun i -> (i + k) mod n)

let of_cycle n cycle =
  let p = identity n in
  (match cycle with
  | [] | [ _ ] -> ()
  | first :: _ ->
      let rec link = function
        | [ last ] -> p.(last) <- first
        | a :: (b :: _ as rest) ->
            p.(a) <- b;
            link rest
        | [] -> ()
      in
      link cycle);
  p

let equal = ( = )

let pp fmt p =
  Format.fprintf fmt "[%a]"
    (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f " ") Format.pp_print_int)
    (Array.to_list p)
