(** Permutations of [\[0, n)] represented as arrays ([p.(i)] is the image
    of [i]).  Used for topology automorphisms and sketch replication. *)

type t = int array

val identity : int -> t
val is_valid : t -> bool
(** True iff the array is a bijection of its index range. *)

val compose : t -> t -> t
(** [compose p q] maps [i] to [p.(q.(i))] (apply [q] first). *)

val invert : t -> t

val apply : t -> int -> int
(** [apply p i = p.(i)]. *)

val rotation : int -> int -> t
(** [rotation n k] maps [i] to [(i + k) mod n]. *)

val of_cycle : int -> int list -> t
(** [of_cycle n cycle] is the permutation of [\[0,n)] given by one cycle. *)

val equal : t -> t -> bool

val compare : t -> t -> int
(** Total order (lexicographic on the image arrays). *)

val close : ?limit:int -> t list -> t list
(** Closure of a generator set under composition: the generated subgroup as
    an explicit element list (identity included).  Raises [Invalid_argument]
    past [limit] elements (default 65536) — the groups this repo works with
    (per-axis rotation products) have at most [num_gpus] elements. *)

val stabilizer : image:('a -> t -> 'a) -> equal:('a -> 'a -> bool) -> t list -> 'a -> t list
(** [stabilizer ~image ~equal group x] is the subset of [group] fixing [x]
    under the action [image].  When [group] is a group (closed, with
    identity), the result is a subgroup. *)

val orbit_classes :
  group:t list -> image:('a -> t -> 'a) -> compare:('a -> 'a -> int) ->
  'a list -> ('a * 'a list) list
(** Partition points into orbits under the group action; each orbit is
    returned as [(canonical representative, members)] where the
    representative is the minimum image under [compare] — the same value
    for every member of one orbit, so it doubles as an orbit key. *)

val pp : Format.formatter -> t -> unit
