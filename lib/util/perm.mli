(** Permutations of [\[0, n)] represented as arrays ([p.(i)] is the image
    of [i]).  Used for topology automorphisms and sketch replication. *)

type t = int array

val identity : int -> t
val is_valid : t -> bool
(** True iff the array is a bijection of its index range. *)

val compose : t -> t -> t
(** [compose p q] maps [i] to [p.(q.(i))] (apply [q] first). *)

val invert : t -> t

val apply : t -> int -> int
(** [apply p i = p.(i)]. *)

val rotation : int -> int -> t
(** [rotation n k] maps [i] to [(i + k) mod n]. *)

val of_cycle : int -> int list -> t
(** [of_cycle n cycle] is the permutation of [\[0,n)] given by one cycle. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
