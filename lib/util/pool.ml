(* Persistent work-stealing domain pool.

   Workers are spawned once per parallelism level and reused for every
   subsequent parallel region (SyCCL calls into the pool 4+ times per
   synthesis phase and once per size in a sweep; spawn/join per call costs
   milliseconds that dominate small solves).  Each worker owns a deque:
   the owner pushes and pops at the back (LIFO, good locality for nested
   regions), thieves take from the front (FIFO, oldest-first).  External
   submissions land in a shared injector queue.

   Determinism: results are written by index and exceptions are reported
   for the lowest failing index, so [map]'s observable behaviour does not
   depend on how many workers ran or who stole what. *)

type task = unit -> unit

(* --- per-worker deque -------------------------------------------------- *)

type deque = {
  dlock : Mutex.t;
  mutable front : task list; (* oldest first: thieves pop here *)
  mutable back : task list; (* newest first: owner pushes/pops here *)
}

let deque_create () = { dlock = Mutex.create (); front = []; back = [] }

let deque_push d t =
  Mutex.lock d.dlock;
  d.back <- t :: d.back;
  Mutex.unlock d.dlock

let deque_pop_own d =
  Mutex.lock d.dlock;
  let r =
    match d.back with
    | t :: rest ->
        d.back <- rest;
        Some t
    | [] -> (
        match d.front with
        | t :: rest ->
            d.front <- rest;
            Some t
        | [] -> None)
  in
  Mutex.unlock d.dlock;
  r

let deque_steal d =
  Mutex.lock d.dlock;
  let r =
    match d.front with
    | t :: rest ->
        d.front <- rest;
        Some t
    | [] -> (
        match List.rev d.back with
        | t :: rest ->
            d.back <- [];
            d.front <- rest;
            Some t
        | [] -> None)
  in
  Mutex.unlock d.dlock;
  r

(* --- pool -------------------------------------------------------------- *)

type t = {
  psize : int; (* total parallelism, submitting caller included *)
  deques : deque array; (* one per worker domain *)
  injector : task Queue.t; (* external submissions; guarded by ilock *)
  ilock : Mutex.t;
  work_cond : Condition.t;
  pending : int Atomic.t; (* submitted-but-unclaimed tasks *)
  active : int Atomic.t; (* claimed tasks currently executing *)
  mutable live : bool;
  mutable doms : unit Domain.t array;
  c_tasks : int Atomic.t;
  c_steals : int Atomic.t;
}

let size pool = pool.psize

(* Which pool/worker the current domain belongs to, for deque routing and
   helping.  A domain belongs to at most one pool. *)
let ctx_key : (t * int) option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let my_worker pool =
  match !(Domain.DLS.get ctx_key) with
  | Some (p, i) when p == pool -> Some i
  | _ -> None

(* Time from submission to execution start: scheduling delay as seen by the
   work, including time spent parked in a deque or the injector. *)
let h_queue_latency = Counters.histogram "pool.queue_latency_s"

(* Crash isolation: every task exception is recorded (counter + trace
   instant with backtrace) at the point of capture, so a raising task is
   diagnosable even when the caller converts it into a per-element
   fallback instead of letting it propagate. *)
let c_task_raised = Counters.int_counter "pool.task_raised"

let record_task_exn e =
  Atomic.incr c_task_raised;
  Trace.instant "pool.task_raised"
    ~args:
      [
        ("exn", Printexc.to_string e);
        ("backtrace", Printexc.get_backtrace ());
      ]

let submit_task pool task =
  let t_sub = Clock.now () in
  let task () =
    Counters.record h_queue_latency (Clock.elapsed t_sub);
    Trace.with_span ~cat:"pool" "pool.task" task
  in
  (match my_worker pool with
  | Some i -> deque_push pool.deques.(i) task
  | None ->
      Mutex.lock pool.ilock;
      Queue.push task pool.injector;
      Mutex.unlock pool.ilock);
  Atomic.incr pool.pending;
  Mutex.lock pool.ilock;
  Condition.signal pool.work_cond;
  Mutex.unlock pool.ilock

(* Claim one task: own deque, then injector, then steal round-robin. *)
let try_claim pool self =
  let own =
    match self with Some i -> deque_pop_own pool.deques.(i) | None -> None
  in
  let claimed =
    match own with
    | Some _ -> own
    | None -> (
        Mutex.lock pool.ilock;
        let inj =
          if Queue.is_empty pool.injector then None
          else Some (Queue.pop pool.injector)
        in
        Mutex.unlock pool.ilock;
        match inj with
        | Some _ -> inj
        | None ->
            let nw = Array.length pool.deques in
            let start = match self with Some i -> i + 1 | None -> 0 in
            let rec scan k =
              if k >= nw then None
              else
                let i = (start + k) mod nw in
                if self = Some i then scan (k + 1)
                else
                  match deque_steal pool.deques.(i) with
                  | Some t ->
                      Atomic.incr pool.c_steals;
                      Some t
                  | None -> scan (k + 1)
            in
            scan 0)
  in
  (match claimed with
  | Some _ ->
      Atomic.decr pool.pending;
      Atomic.incr pool.c_tasks
  | None -> ());
  claimed

let run_one pool self =
  match try_claim pool self with
  | Some task ->
      Atomic.incr pool.active;
      Fun.protect ~finally:(fun () -> Atomic.decr pool.active) task;
      true
  | None -> false

let worker_loop pool i =
  Domain.DLS.get ctx_key := Some (pool, i);
  (* A task that lets an exception escape (a harness bug or an injected
     fault outside the task's own catch) must not kill the worker domain:
     the pool would silently lose capacity for the rest of the process.
     Record and keep serving. *)
  let run_guarded () =
    try run_one pool (Some i)
    with e ->
      record_task_exn e;
      true
  in
  let rec go () =
    if run_guarded () then go ()
    else begin
      Mutex.lock pool.ilock;
      while pool.live && Atomic.get pool.pending = 0 do
        Condition.wait pool.work_cond pool.ilock
      done;
      let continue = pool.live || Atomic.get pool.pending > 0 in
      Mutex.unlock pool.ilock;
      if continue then go ()
    end
  in
  go ()

let create ~domains () =
  let psize = max 1 domains in
  (* Never run more worker domains than the hardware has cores: extra
     domains add no throughput but enlarge every minor-GC stop-the-world
     barrier, which taxes the sequential phases (search, probing) that
     dominate between parallel regions.  [psize] keeps the requested
     logical width; only the spawned workers are clamped. *)
  let hw = max 1 (Domain.recommended_domain_count ()) in
  let nw = min (psize - 1) (hw - 1) in
  let pool =
    {
      psize;
      deques = Array.init nw (fun _ -> deque_create ());
      injector = Queue.create ();
      ilock = Mutex.create ();
      work_cond = Condition.create ();
      pending = Atomic.make 0;
      active = Atomic.make 0;
      live = true;
      doms = [||];
      c_tasks = Counters.int_counter "pool.tasks";
      c_steals = Counters.int_counter "pool.steals";
    }
  in
  pool.doms <- Array.init nw (fun i -> Domain.spawn (fun () -> worker_loop pool i));
  pool

let shutdown pool =
  Mutex.lock pool.ilock;
  let was_live = pool.live in
  pool.live <- false;
  Condition.broadcast pool.work_cond;
  Mutex.unlock pool.ilock;
  if was_live then Array.iter Domain.join pool.doms;
  pool.doms <- [||]

(* --- persistent registry ----------------------------------------------- *)

(* One pool per requested parallelism level, spawned on first use and kept
   for the life of the process (joined at exit).  Levels stay small (the
   CLI/bench use 1..8), so keeping a pool per level is cheaper than trying
   to gate a shared pool to an exact concurrency bound. *)

let max_parallelism = 32
let registry : (int, t) Hashtbl.t = Hashtbl.create 8
let reg_lock = Mutex.create ()

let get domains =
  let d = max 1 (min max_parallelism domains) in
  Mutex.lock reg_lock;
  let p =
    match Hashtbl.find_opt registry d with
    | Some p -> p
    | None ->
        let p = create ~domains:d () in
        Hashtbl.replace registry d p;
        p
  in
  Mutex.unlock reg_lock;
  p

let () =
  at_exit (fun () ->
      Mutex.lock reg_lock;
      Hashtbl.iter (fun _ p -> shutdown p) registry;
      Hashtbl.reset registry;
      Mutex.unlock reg_lock)

(* Counters.reset is only race-free while no pool task is queued or
   executing; let it verify that (see Counters.reset's tear semantics). *)
let () =
  Counters.register_quiescence_check "pool.quiescent" (fun () ->
      Mutex.lock reg_lock;
      let ok =
        Hashtbl.fold
          (fun _ p acc ->
            acc && Atomic.get p.pending = 0 && Atomic.get p.active = 0)
          registry true
      in
      Mutex.unlock reg_lock;
      ok)

(* --- futures ----------------------------------------------------------- *)

type 'a state = Pending | Done of 'a | Raised of exn
type 'a future = { st : 'a state Atomic.t; fpool : t }

let submit pool f =
  let st = Atomic.make Pending in
  submit_task pool (fun () ->
      Atomic.set st
        (try
           Faultpoint.inject "pool.crash";
           Done (f ())
         with e ->
           record_task_exn e;
           Raised e));
  { st; fpool = pool }

(* Awaiting helps: a worker (or the caller) blocked on a future executes
   other pool tasks instead of sleeping, so nested parallel regions cannot
   deadlock the fixed-size pool. *)
let await fut =
  let self = my_worker fut.fpool in
  let rec go idle =
    match Atomic.get fut.st with
    | Done v -> v
    | Raised e -> raise e
    | Pending ->
        if run_one fut.fpool self then go 0
        else begin
          if idle < 256 then Domain.cpu_relax () else Unix.sleepf 5e-5;
          go (idle + 1)
        end
  in
  go 0

(* --- deterministic chunked map ----------------------------------------- *)

let map pool f xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else if Array.length pool.deques = 0 || n = 1 then Array.map f xs
  else begin
    let results = Array.make n None in
    (* Lowest failing index wins, so the raised exception matches what a
       sequential [Array.map] would raise, independent of scheduling. *)
    let err : (int * exn) option Atomic.t = Atomic.make None in
    let rec record i e =
      match Atomic.get err with
      | Some (j, _) when j <= i -> ()
      | cur -> if not (Atomic.compare_and_set err cur (Some (i, e))) then record i e
    in
    let width = Array.length pool.deques + 1 in
    let nchunks = if n <= 4 * width then n else 4 * width in
    let remaining = Atomic.make nchunks in
    let self = my_worker pool in
    for c = 0 to nchunks - 1 do
      let lo = c * n / nchunks and hi = (c + 1) * n / nchunks in
      submit_task pool (fun () ->
          for j = lo to hi - 1 do
            match
              Faultpoint.inject "pool.crash";
              f xs.(j)
            with
            | v -> results.(j) <- Some v
            | exception e ->
                record_task_exn e;
                record j e
          done;
          Atomic.decr remaining)
    done;
    (* The caller is a full participant: it chews through chunks (its own
       and, transitively, any other pool work) until this map completes. *)
    let idle = ref 0 in
    while Atomic.get remaining > 0 do
      if run_one pool self then idle := 0
      else begin
        if !idle < 256 then Domain.cpu_relax () else Unix.sleepf 5e-5;
        incr idle
      end
    done;
    match Atomic.get err with
    | Some (_, e) -> raise e
    | None -> Array.map (function Some v -> v | None -> assert false) results
  end

(* --- level-addressed map ------------------------------------------------ *)

let num_recommended () = max 1 (Domain.recommended_domain_count () - 1)

let map_domains ?domains f xs =
  let domains =
    match domains with Some d -> max 1 d | None -> num_recommended ()
  in
  map (get domains) f xs
