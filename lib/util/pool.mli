(** Persistent work-stealing domain pool.

    SyCCL's synthesis hot path runs 4+ parallel regions per phase and one
    per size in a sweep; spawning and joining domains each time wastes
    milliseconds per region.  A pool spawns its [domains - 1] worker
    domains once and reuses them: each worker owns a deque (owner LIFO,
    thieves FIFO), external submissions go through a shared injector, and
    idle workers steal.  Counters ["pool.tasks"] and ["pool.steals"] in
    {!Counters} record activity.

    Determinism: [map] writes results by index and reports the exception
    of the {e lowest} failing index, so observable behaviour is identical
    for every pool size.  [await] helps (executes other pool tasks while
    blocked), so nested parallel regions cannot deadlock.

    Crash isolation: a task exception is confined to its own future (or
    its own [map] call) — it never kills a worker domain or a sibling
    task.  Every captured task exception is counted in
    ["pool.task_raised"] and recorded as a ["pool.task_raised"] trace
    instant carrying the exception text and backtrace.  The
    ["pool.crash"] {!Faultpoint} probe fires inside the protected task
    region, so injected crashes exercise exactly this containment. *)

type t
type 'a future

val get : int -> t
(** [get domains] returns the process-wide persistent pool with logical
    parallelism [domains] (clamped to 32), spawning its workers on first
    use and reusing them for every later call.  The calling domain counts
    toward the width, and the number of spawned workers is additionally
    clamped to [Domain.recommended_domain_count () - 1]: domains beyond
    the hardware add no throughput but tax every minor GC with a larger
    stop-the-world barrier.  Pools are joined automatically at process
    exit. *)

val create : domains:int -> unit -> t
(** Build a private pool (prefer {!get}).  With [domains <= 1] — or on a
    single-core machine — no worker domains are spawned and every
    operation degrades to sequential execution, with results (including
    raised exceptions) unchanged. *)

val shutdown : t -> unit
(** Stop and join the workers.  Idempotent.  Only needed for pools from
    {!create}; registry pools are shut down at exit. *)

val size : t -> int
(** Total parallelism of the pool, submitting caller included. *)

val submit : t -> (unit -> 'a) -> 'a future
(** Schedule a task.  From a worker of the same pool the task goes to its
    own deque (LIFO); otherwise to the shared injector. *)

val await : 'a future -> 'a
(** Wait for completion, executing other pool tasks meanwhile.  Re-raises
    the task's exception. *)

val map : t -> ('a -> 'b) -> 'a array -> 'b array
(** Order-preserving parallel map, chunked over the pool.  Semantically
    equal to [Array.map] — including which exception is raised — for any
    pool size. *)

val num_recommended : unit -> int
(** Recommended parallelism for this machine (hardware domains minus the
    caller). *)

val map_domains : ?domains:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map_domains ~domains f xs] is [map (get domains) f xs]: a parallel map
    on the persistent pool of that level ({!num_recommended} when
    omitted). *)
