(** Polymorphic binary-heap priority queue (min-heap by a user comparator). *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t
(** Empty queue ordered by [cmp]; the minimum element pops first. *)

val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit

val pop : 'a t -> 'a option
(** Remove and return the minimum, or [None] if empty. *)

val peek : 'a t -> 'a option

val to_sorted_list : 'a t -> 'a list
(** Drains the queue, returning elements in ascending order. *)
