let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let min_max = function
  | [] -> invalid_arg "Stats.min_max: empty"
  | x :: xs ->
      List.fold_left (fun (lo, hi) v -> (Float.min lo v, Float.max hi v)) (x, x) xs

let percentile p = function
  | [] -> invalid_arg "Stats.percentile: empty"
  | xs ->
      assert (p >= 0.0 && p <= 1.0);
      let sorted = List.sort Float.compare xs in
      let a = Array.of_list sorted in
      let n = Array.length a in
      let idx = int_of_float (Float.round (p *. float_of_int (n - 1))) in
      a.(idx)

let stddev xs =
  match xs with
  | [] | [ _ ] -> 0.0
  | _ ->
      let m = mean xs in
      let var =
        List.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs
        /. float_of_int (List.length xs)
      in
      sqrt var
