let mean_opt = function
  | [] -> None
  | xs -> Some (List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs))

let mean xs = Option.value (mean_opt xs) ~default:0.0

let min_max_opt = function
  | [] -> None
  | x :: xs ->
      Some
        (List.fold_left
           (fun (lo, hi) v -> (Float.min lo v, Float.max hi v))
           (x, x) xs)

let min_max xs =
  match min_max_opt xs with
  | Some r -> r
  | None -> invalid_arg "Stats.min_max: empty"

let percentile_opt p xs =
  if not (p >= 0.0 && p <= 1.0) then
    invalid_arg "Stats.percentile: p outside [0, 1]";
  match xs with
  | [] -> None
  | xs ->
      let sorted = List.sort Float.compare xs in
      let a = Array.of_list sorted in
      let n = Array.length a in
      let idx = int_of_float (Float.round (p *. float_of_int (n - 1))) in
      Some a.(max 0 (min (n - 1) idx))

let percentile p xs =
  match percentile_opt p xs with
  | Some v -> v
  | None -> invalid_arg "Stats.percentile: empty"

let stddev xs =
  match xs with
  | [] | [ _ ] -> 0.0
  | _ ->
      let m = mean xs in
      let var =
        List.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs
        /. float_of_int (List.length xs)
      in
      sqrt var
