(** Summary statistics over float samples.

    Each statistic comes in two flavours: a total function returning
    [option] on possibly-empty input ([*_opt]), and a convenience wrapper
    with the historical behaviour (0 for {!mean}, [Invalid_argument] for
    {!min_max} / {!percentile}).  New callers should prefer the [*_opt]
    variants. *)

val mean_opt : float list -> float option
(** Arithmetic mean; [None] on the empty list. *)

val mean : float list -> float
(** Arithmetic mean; 0 on the empty list. *)

val min_max_opt : float list -> (float * float) option
(** Smallest and largest sample; [None] on the empty list. *)

val min_max : float list -> float * float
(** Smallest and largest sample.  Raises [Invalid_argument] on empty input. *)

val percentile_opt : float -> float list -> float option
(** [percentile_opt p xs] with [p] in [\[0,1\]], nearest-rank on the sorted
    samples ([p = 0] is the minimum, [p = 1] the maximum); [None] on the
    empty list.  Raises [Invalid_argument] when [p] is outside [\[0,1\]]. *)

val percentile : float -> float list -> float
(** Like {!percentile_opt} but raises [Invalid_argument] on empty input. *)

val stddev : float list -> float
(** Population standard deviation; 0 on lists shorter than 2. *)
