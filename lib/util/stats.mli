(** Summary statistics over float samples. *)

val mean : float list -> float
(** Arithmetic mean; 0 on the empty list. *)

val min_max : float list -> float * float
(** Smallest and largest sample.  Raises [Invalid_argument] on empty input. *)

val percentile : float -> float list -> float
(** [percentile p xs] with [p] in [\[0,1\]], nearest-rank on the sorted
    samples.  Raises [Invalid_argument] on empty input. *)

val stddev : float list -> float
(** Population standard deviation; 0 on lists shorter than 2. *)
