(* Per-domain ring-buffer span recorder.

   Each domain owns one ring (single writer, no lock); the global registry
   only serializes ring creation and export.  The disabled path is a single
   Atomic load so call sites can stay in hot loops.  A generation counter
   implements [clear] without touching other domains' rings: a ring whose
   generation is stale logically holds no events, and the owner resets it
   on its next write. *)

type event = {
  pid : int;
  tid : int;
  name : string;
  cat : string;
  ts : float;
  dur : float;
  args : (string * string) list;
}

let synthesis_pid = 1
let sim_pid = 2

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag

let epoch = Atomic.make 0.0
let generation = Atomic.make 0
let default_capacity = Atomic.make 65536
let dropped_count = Atomic.make 0

let dummy_event =
  { pid = 0; tid = 0; name = ""; cat = ""; ts = 0.0; dur = 0.0; args = [] }

type ring = {
  buf : event array;
  mutable written : int;  (* total events ever written this generation *)
  mutable gen : int;
}

let registry : ring list ref = ref []
let reg_lock = Mutex.create ()

let ring_key : ring option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let my_ring () =
  let slot = Domain.DLS.get ring_key in
  match !slot with
  | Some r -> r
  | None ->
      let r =
        {
          buf = Array.make (max 16 (Atomic.get default_capacity)) dummy_event;
          written = 0;
          gen = Atomic.get generation;
        }
      in
      slot := Some r;
      Mutex.lock reg_lock;
      registry := r :: !registry;
      Mutex.unlock reg_lock;
      r

let push r e =
  let g = Atomic.get generation in
  if r.gen <> g then begin
    r.gen <- g;
    r.written <- 0
  end;
  let cap = Array.length r.buf in
  if r.written >= cap then Atomic.incr dropped_count;
  r.buf.(r.written mod cap) <- e;
  r.written <- r.written + 1

let emit ~pid ~tid ?(cat = "synth") ?(args = []) ~name ~ts ~dur () =
  if Atomic.get enabled_flag then
    push (my_ring ()) { pid; tid; name; cat; ts; dur; args }

let clear () =
  Atomic.incr generation;
  Atomic.set dropped_count 0

let enable ?capacity () =
  (match capacity with Some c -> Atomic.set default_capacity (max 16 c) | None -> ());
  clear ();
  Atomic.set epoch (Clock.now ());
  Atomic.set enabled_flag true

let disable () = Atomic.set enabled_flag false
let now () = Clock.now () -. Atomic.get epoch
let dropped () = Atomic.get dropped_count

let domain_tid () = (Domain.self () :> int)

let with_span ?(pid = synthesis_pid) ?(cat = "synth") ?(args = []) name f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let t0 = Clock.now () in
    Fun.protect
      ~finally:(fun () ->
        let t1 = Clock.now () in
        let e0 = Atomic.get epoch in
        emit ~pid ~tid:(domain_tid ()) ~cat ~args ~name ~ts:(t0 -. e0)
          ~dur:(t1 -. t0) ())
      f
  end

let instant ?(pid = synthesis_pid) ?(args = []) name =
  if Atomic.get enabled_flag then
    emit ~pid ~tid:(domain_tid ()) ~cat:"instant" ~args ~name ~ts:(now ())
      ~dur:(-1.0) ()

(* --- track naming ------------------------------------------------------- *)

let names_lock = Mutex.create ()
let process_names : (int, string) Hashtbl.t = Hashtbl.create 4
let track_names : (int * int, string * int option) Hashtbl.t = Hashtbl.create 32

let set_process_name ~pid name =
  Mutex.lock names_lock;
  Hashtbl.replace process_names pid name;
  Mutex.unlock names_lock

let set_track_name ~pid ~tid ?sort_index name =
  Mutex.lock names_lock;
  Hashtbl.replace track_names (pid, tid) (name, sort_index);
  Mutex.unlock names_lock

(* --- export ------------------------------------------------------------- *)

let ring_events r =
  if r.gen <> Atomic.get generation then []
  else begin
    let cap = Array.length r.buf in
    let n = min r.written cap in
    let first = if r.written <= cap then 0 else r.written mod cap in
    List.init n (fun i -> r.buf.((first + i) mod cap))
  end

let events () =
  Mutex.lock reg_lock;
  let rings = !registry in
  Mutex.unlock reg_lock;
  List.concat_map ring_events rings
  |> List.sort (fun a b ->
         let c = Float.compare a.ts b.ts in
         if c <> 0 then c
         else
           let c = compare a.pid b.pid in
           if c <> 0 then c else compare a.tid b.tid)

let args_json args = Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) args)

let event_json e =
  let base =
    [
      ("name", Json.Str e.name);
      ("cat", Json.Str e.cat);
      ("pid", Json.Num (float_of_int e.pid));
      ("tid", Json.Num (float_of_int e.tid));
      ("ts", Json.Num (e.ts *. 1e6));
    ]
  in
  let shape =
    if e.dur < 0.0 then [ ("ph", Json.Str "i"); ("s", Json.Str "t") ]
    else [ ("ph", Json.Str "X"); ("dur", Json.Num (e.dur *. 1e6)) ]
  in
  let args = if e.args = [] then [] else [ ("args", args_json e.args) ] in
  Json.Obj (base @ shape @ args)

let metadata_json () =
  Mutex.lock names_lock;
  let procs = Hashtbl.fold (fun pid n acc -> (pid, n) :: acc) process_names [] in
  let tracks =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) track_names []
  in
  Mutex.unlock names_lock;
  let meta ~pid ?tid name args =
    Json.Obj
      ([ ("name", Json.Str name); ("ph", Json.Str "M");
         ("pid", Json.Num (float_of_int pid)) ]
      @ (match tid with
        | Some t -> [ ("tid", Json.Num (float_of_int t)) ]
        | None -> [])
      @ [ ("args", Json.Obj args) ])
  in
  List.map
    (fun (pid, n) -> meta ~pid "process_name" [ ("name", Json.Str n) ])
    (List.sort compare procs)
  @ List.concat_map
      (fun ((pid, tid), (n, sort)) ->
        meta ~pid ~tid "thread_name" [ ("name", Json.Str n) ]
        ::
        (match sort with
        | Some s ->
            [ meta ~pid ~tid "thread_sort_index"
                [ ("sort_index", Json.Num (float_of_int s)) ] ]
        | None -> []))
      (List.sort compare tracks)

let to_chrome_json () =
  Json.Obj
    [
      ("traceEvents",
       Json.List (metadata_json () @ List.map event_json (events ())));
      ("displayTimeUnit", Json.Str "ms");
    ]

let to_chrome_string () = Json.to_string (to_chrome_json ())

let to_jsonl () =
  String.concat ""
    (List.map (fun e -> Json.to_string (event_json e) ^ "\n") (events ()))

let export_file path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_chrome_string ()))
