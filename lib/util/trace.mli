(** Span tracing into per-domain ring buffers, exportable as Chrome
    trace-event JSON (loadable in Perfetto / chrome://tracing) or JSONL.

    Tracing is off by default: {!with_span} and {!emit} cost one [Atomic]
    load when disabled, so instrumentation can stay in hot paths.  When
    enabled, each domain appends completed spans to its own fixed-capacity
    ring buffer (single writer, no lock); when a ring wraps, the oldest
    events are overwritten and counted in {!dropped}.

    Events live on (pid, tid) {e tracks}.  Wall-clock spans recorded by
    {!with_span} use {!synthesis_pid} and the recording domain's id as the
    track, so nesting follows the call stack.  Virtual-time events (the
    simulator's link-occupancy timeline) are emitted with {!emit} onto
    caller-chosen tracks under a different pid; {!set_track_name} /
    {!set_process_name} attach human-readable labels.

    Export ({!events}, {!to_chrome_json}, …) reads every domain's ring
    without synchronizing with writers; call it only while tracing writers
    are quiescent (after the traced region completed), or accept that a
    handful of concurrent events may be torn or missed. *)

type event = {
  pid : int;  (** process-id track group (a timeline section in Perfetto) *)
  tid : int;  (** track within the pid: domain id, or a simulator port *)
  name : string;
  cat : string;
  ts : float;  (** start, seconds since the trace epoch (or virtual time) *)
  dur : float;  (** duration in seconds; negative marks an instant event *)
  args : (string * string) list;
}

val synthesis_pid : int
(** Track group for wall-clock synthesis spans (one track per domain). *)

val sim_pid : int
(** Default track group for simulator timelines (one track per port). *)

val enable : ?capacity:int -> unit -> unit
(** Start a fresh trace: drop previously recorded events, re-arm the epoch
    and turn recording on.  [capacity] (default 65536, clamped to at least
    16) sizes each {e per-domain} ring created from now on; rings already
    created keep their size. *)

val disable : unit -> unit
(** Stop recording.  Already-recorded events remain exportable. *)

val enabled : unit -> bool

val clear : unit -> unit
(** Drop all recorded events and reset {!dropped} without toggling the
    enabled flag. *)

val now : unit -> float
(** Seconds since the trace epoch (monotonicized wall clock), for building
    manual [ts] values consistent with {!with_span}. *)

val with_span :
  ?pid:int -> ?cat:string -> ?args:(string * string) list ->
  string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f ()] and, when tracing is enabled, records a
    complete span covering its execution on the current domain's track.
    The span is recorded even when [f] raises.  [cat] defaults to
    ["synth"]. *)

val instant :
  ?pid:int -> ?args:(string * string) list -> string -> unit
(** Record a zero-duration instant event on the current domain's track. *)

val emit :
  pid:int -> tid:int -> ?cat:string -> ?args:(string * string) list ->
  name:string -> ts:float -> dur:float -> unit -> unit
(** Record a fully explicit event (e.g. virtual-time simulator spans) into
    the calling domain's ring.  No-op when tracing is disabled. *)

val set_process_name : pid:int -> string -> unit
(** Label a pid's section in the exported trace. *)

val set_track_name : pid:int -> tid:int -> ?sort_index:int -> string -> unit
(** Label (and optionally order) one track in the exported trace. *)

val events : unit -> event list
(** All retained events from every domain's ring, sorted by [ts] (ties by
    pid, tid). *)

val dropped : unit -> int
(** Events overwritten by ring wrap-around since the last {!enable} /
    {!clear}. *)

val to_chrome_json : unit -> Json.t
(** The trace as a Chrome trace-event JSON object
    [{"traceEvents": [...], "displayTimeUnit": "ms"}]: one ["X"] (complete)
    or ["i"] (instant) event per retained span plus ["M"] metadata records
    for registered process/track names.  Timestamps are exported in
    microseconds, as the format requires. *)

val to_chrome_string : unit -> string

val to_jsonl : unit -> string
(** One JSON object per line per event (no metadata records). *)

val export_file : string -> unit
(** Write {!to_chrome_string} to a file. *)
