(** Deterministic splitmix64 pseudo-random number generator.

    All randomness in the repository flows through this module so that tests
    and benchmarks are reproducible across runs and machines. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator seeded with [seed]. *)

val copy : t -> t
(** [copy t] is an independent generator with the same current state. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Requires [bound > 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)
