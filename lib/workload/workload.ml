module Collective = Syccl_collective.Collective

type call = { kind : Collective.kind; size : float; count : int }

type t = {
  wname : string;
  num_gpus : int;
  calls : call list;
  compute_ms : float;
  overlap : float;
}

(* Traces follow the paper's observation that ReduceScatter and AllGather
   dominate both configurations (§7.5).

   Data parallelism with a distributed optimizer (ZeRO-1): one bf16 gradient
   ReduceScatter plus one parameter AllGather per iteration, issued in
   bucket-sized calls.  Tensor parallelism: per-layer activation AllGather
   and gradient ReduceScatter on sequence shards, many smaller calls.

   Compute times are calibrated so the NCCL column lands near Table 6; the
   relative NCCL/TECCL/SyCCL ordering is what the experiment reproduces. *)

let bucketize total_bytes ~buckets kind =
  { kind; size = total_bytes /. float_of_int buckets; count = buckets }

let dp_trace ~params ~n =
  let bytes = 2.0 *. params in
  [
    bucketize bytes ~buckets:32 Collective.ReduceScatter;
    bucketize bytes ~buckets:32 Collective.AllGather;
  ]
  |> fun calls -> (calls, n)

let tp_trace ~hidden ~layers ~seq ~micro =
  (* Per layer and micro-batch: forward AllGather + backward ReduceScatter
     over sequence-parallel activations (2 bytes each), twice per layer
     (attention + MLP blocks).  The size is the full gathered activation
     buffer — the nccl-tests convention used throughout. *)
  let act = 2.0 *. hidden *. seq *. micro in
  [
    { kind = Collective.AllGather; size = act; count = 4 * layers };
    { kind = Collective.ReduceScatter; size = act; count = 4 * layers };
  ]

let gpt3_6_7b cfg =
  let params = 6.7e9 and hidden = 4096.0 and layers = 32 in
  match cfg with
  | `DP16 ->
      let calls, n = dp_trace ~params ~n:16 in
      { wname = "GPT3-6.7B, DP16"; num_gpus = n; calls; compute_ms = 520.0; overlap = 0.55 }
  | `TP16 ->
      {
        wname = "GPT3-6.7B, TP16";
        num_gpus = 16;
        calls = tp_trace ~hidden ~layers ~seq:2048.0 ~micro:4.0;
        compute_ms = 130.0;
        overlap = 0.30;
      }
  | `TP32 ->
      {
        wname = "GPT3-6.7B, TP32";
        num_gpus = 32;
        calls = tp_trace ~hidden ~layers ~seq:2048.0 ~micro:4.0;
        compute_ms = 128.0;
        overlap = 0.30;
      }

let llama3_8b cfg =
  let params = 8.0e9 and hidden = 4096.0 and layers = 32 in
  match cfg with
  | `DP16 ->
      let calls, n = dp_trace ~params ~n:16 in
      { wname = "Llama3-8B, DP16"; num_gpus = n; calls; compute_ms = 1010.0; overlap = 0.55 }
  | `TP16 ->
      {
        wname = "Llama3-8B, TP16";
        num_gpus = 16;
        calls = tp_trace ~hidden ~layers ~seq:4096.0 ~micro:4.0;
        compute_ms = 330.0;
        overlap = 0.30;
      }
  | `TP32 ->
      {
        wname = "Llama3-8B, TP32";
        num_gpus = 32;
        calls = tp_trace ~hidden ~layers ~seq:4096.0 ~micro:8.0;
        compute_ms = 640.0;
        overlap = 0.30;
      }

let all () =
  [
    gpt3_6_7b `DP16;
    gpt3_6_7b `TP16;
    gpt3_6_7b `TP32;
    llama3_8b `DP16;
    llama3_8b `TP16;
    llama3_8b `TP32;
  ]

let iteration_ms w ~comm_time =
  let comm_s =
    List.fold_left
      (fun acc c ->
        let coll = Collective.make c.kind ~n:w.num_gpus ~size:c.size in
        acc +. (float_of_int c.count *. comm_time coll))
      0.0 w.calls
  in
  w.compute_ms +. (comm_s *. 1e3 *. (1.0 -. w.overlap))
