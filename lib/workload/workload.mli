(** Training-job communication workloads (§7.5).

    A workload is the per-iteration trace of collective calls a training
    configuration issues, derived from model dimensions and the parallelism
    scheme, plus a compute-time model.  Iteration time = compute + exposed
    communication, where the communication term is whatever a schedule
    provider reports for each call — so NCCL / TECCL / SyCCL schedules plug
    in interchangeably (Table 6). *)

type call = {
  kind : Syccl_collective.Collective.kind;
  size : float;  (** bytes, nccl-tests convention *)
  count : int;  (** calls per iteration *)
}

type t = {
  wname : string;
  num_gpus : int;  (** GPUs participating in each collective *)
  calls : call list;
  compute_ms : float;  (** per-iteration compute time, milliseconds *)
  overlap : float;
      (** fraction of communication hidden behind compute (0 = fully
          exposed, 1 = fully hidden) *)
}

val gpt3_6_7b : [ `DP16 | `TP16 | `TP32 ] -> t
(** GPT3-6.7B traces: data parallelism with a distributed optimizer
    (ReduceScatter + AllGather over gradient/parameter shards) or tensor
    parallelism (per-layer AllReduce-style AllGather/ReduceScatter pairs). *)

val llama3_8b : [ `DP16 | `TP16 | `TP32 ] -> t
(** Llama3-8B traces under the same parallelism configurations. *)

val all : unit -> t list
(** The six Table-6 configurations. *)

val iteration_ms : t -> comm_time:(Syccl_collective.Collective.t -> float) -> float
(** Iteration time in ms given a per-collective completion-time oracle
    (seconds). *)
