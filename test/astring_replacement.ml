(* Minimal substring search helper for tests (no astring dependency). *)

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i =
    if i + nl > hl then false
    else if String.sub hay i nl = needle then true
    else go (i + 1)
  in
  go 0
