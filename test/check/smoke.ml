(* Fixed-seed fuzz smoke for `dune runtest`: a deterministic slice of every
   property in the Props catalogue — the automorphism-transport law
   included — at the solver width given by SYCCL_TEST_DOMAINS (the CI
   matrix runs widths 1 and 4).  SYCCL_FUZZ_CASES scales the slice for
   soak runs; the default keeps the smoke light enough for tier-1. *)

let getenv_int name default =
  match Sys.getenv_opt name with
  | Some s -> ( match int_of_string_opt s with Some n when n > 0 -> n | _ -> default)
  | None -> default

let () =
  let domains = getenv_int "SYCCL_TEST_DOMAINS" 2 in
  let cases = getenv_int "SYCCL_FUZZ_CASES" 16 in
  let report =
    Syccl_check.Fuzz.run ~progress:Format.err_formatter ~domains ~shrink:true
      ~seed:42 ~cases ()
  in
  Format.eprintf "%a@?" Syccl_check.Fuzz.pp_report report;
  (* Every catalogue property must have actually run cases — a slice that
     silently skipped a law (e.g. automorphism-transport) would pass
     vacuously. *)
  List.iter
    (fun (s : Syccl_check.Fuzz.prop_stats) ->
      if s.cases_run = 0 then begin
        Format.eprintf "fuzz smoke: property %s ran no cases@." s.prop_name;
        exit 1
      end)
    report.Syccl_check.Fuzz.stats;
  if
    List.length report.Syccl_check.Fuzz.stats
    <> List.length Syccl_check.Props.all
  then begin
    Format.eprintf "fuzz smoke: catalogue slice incomplete@.";
    exit 1
  end;
  if report.Syccl_check.Fuzz.failures <> [] then exit 1
