(* Shrunk, checked-in reproducers for the bugs the fuzzing subsystem shook
   out.  Each test is the minimal witness the shrinker (or a hand pass over
   its output) left behind, pinned here so the fixes cannot regress without
   a named test failing — the fuzz smoke alone would only report a seed. *)

module Topology = Syccl_topology.Topology
module Builders = Syccl_topology.Builders
module Link = Syccl_topology.Link
module Collective = Syccl_collective.Collective
module Schedule = Syccl_sim.Schedule
module Sim = Syccl_sim.Sim
module Validate = Syccl_sim.Validate
module Registry = Syccl_serve.Registry
module Nccl = Syccl_baselines.Nccl
module Fallback = Syccl_baselines.Fallback

let link = Link.make ~alpha:1e-6 ~gbps:100.0
let switch n = Builders.single_switch ~name:"t" ~n ~link ()

let meta ?(size = 1024.0) ?(tag = 0) mode initial wanted =
  { Schedule.size; mode; initial; wanted; tag }

let xfer ?(dim = 0) ?(prio = 0) chunk src dst =
  { Schedule.chunk; src; dst; dim; prio }

let is_error what = function
  | Error (_ : string) -> ()
  | Ok () -> Alcotest.failf "%s: expected rejection, got Ok" what

let is_ok what = function
  | Ok () -> ()
  | Error e -> Alcotest.failf "%s: expected Ok, got %s" what e

(* --- Validate.check: reduce garbage cycle (fuzzer: mutant-soundness) --- *)

(* A two-node cycle disjoint from the real reduction used to slip through:
   every sender sent exactly once and the destination received, but GPUs 2
   and 3 feed only each other — they deadlock the event queue and their
   payloads never reach the destination. *)
let reduce_garbage_cycle () =
  let topo = switch 4 in
  let s =
    {
      Schedule.chunks = [| meta `Reduce [ 1 ] [ 0 ] |];
      xfers = [ xfer 0 1 0; xfer 0 2 3; xfer 0 3 2 ];
    }
  in
  is_error "garbage cycle" (Validate.check topo s);
  (* the honest sub-schedule stays accepted *)
  let ok = { s with Schedule.xfers = [ xfer 0 1 0 ] } in
  is_ok "cycle removed" (Validate.check topo ok)

(* The covers reduce arm needs contributor-set equality, not inclusion:
   a schedule missing contributor 3 computes a partial sum, one adding
   contributor 4 injects an extra operand — both answers are wrong even
   though every transfer completes and the structure check passes. *)
let reduce_contributor_set_equality () =
  let topo = switch 5 in
  let coll = Collective.make ~root:0 Collective.Reduce ~n:4 ~size:3072.0 in
  let missing =
    {
      Schedule.chunks = [| meta ~size:3072.0 `Reduce [ 1; 2 ] [ 0 ] |];
      xfers = [ xfer 0 1 0; xfer 0 2 0 ];
    }
  in
  is_ok "structure (missing)" (Validate.check topo missing);
  is_error "missing contributor" (Validate.covers topo coll missing);
  let extra =
    {
      Schedule.chunks = [| meta ~size:3072.0 `Reduce [ 1; 2; 3; 4 ] [ 0 ] |];
      xfers = [ xfer 0 1 0; xfer 0 2 0; xfer 0 3 0; xfer 0 4 0 ];
    }
  in
  is_ok "structure (extra)" (Validate.check topo extra);
  is_error "extra contributor" (Validate.covers topo coll extra)

(* --- Schedule.reverse: involution under negative/colliding prios --- *)

let reverse_involution_negative_prios () =
  let topo = switch 4 in
  let s =
    {
      Schedule.chunks = [| meta `Gather [ 0 ] [ 1; 2; 3 ] |];
      xfers =
        [ xfer ~prio:(-3) 0 0 1; xfer ~prio:0 0 0 2; xfer ~prio:(-3) 0 0 3 ];
    }
  in
  let rr = Schedule.reverse (Schedule.reverse s) in
  Alcotest.(check bool) "reverse is an involution" true (rr = s);
  let t = Sim.time topo s and trr = Sim.time topo rr in
  Alcotest.(check (float 1e-12)) "cost preserved" t trr

(* --- Schedule.union: id shifting and priority collisions (fuzzer:
   union-dominates) --- *)

let union_preserves_parts () =
  let topo = switch 4 in
  let a =
    {
      Schedule.chunks = [| meta ~tag:0 `Gather [ 0 ] [ 1 ] |];
      xfers = [ xfer ~prio:(-1) 0 0 1 ];
    }
  in
  let b =
    {
      Schedule.chunks = [| meta ~tag:1 `Gather [ 2 ] [ 3 ] |];
      xfers = [ xfer ~prio:(-1) 0 2 3 ];
    }
  in
  let u = Schedule.union [ a; b ] in
  is_ok "union valid" (Validate.check topo u);
  Alcotest.(check int) "chunk ids shifted"
    1
    (List.length (List.filter (fun x -> x.Schedule.chunk = 1) u.Schedule.xfers));
  Alcotest.(check (list int)) "tags preserved" [ 0; 1 ]
    (Array.to_list (Array.map (fun m -> m.Schedule.tag) u.Schedule.chunks));
  let tu = Sim.time topo u in
  let tmax = Float.max (Sim.time topo a) (Sim.time topo b) in
  Alcotest.(check bool) "union dominates parts" true
    (tu >= tmax *. (1.0 -. 1e-9))

(* --- Registry: size_bucket boundaries (fuzzer: size-bucket) --- *)

let size_bucket_boundaries () =
  let check name expected s =
    Alcotest.(check int) name expected (Registry.size_bucket s)
  in
  check "1.0 -> 0" 0 1.0;
  check "pred 2.0 -> 0" 0 (Float.pred 2.0);
  check "2.0 -> 1" 1 2.0;
  check "succ 2.0 -> 1" 1 (Float.succ 2.0);
  check "1024 -> 10" 10 1024.0;
  (* sub-1.0 sizes: negative buckets, no collision with bucket 0 *)
  check "0.5 -> -1" (-1) 0.5;
  check "pred 1.0 -> -1" (-1) (Float.pred 1.0);
  check "0.0625 -> -4" (-4) 0.0625;
  (* degenerate inputs share only the sentinel *)
  check "0.0 -> sentinel" min_int 0.0;
  check "-8.0 -> sentinel" min_int (-8.0);
  check "nan -> sentinel" min_int Float.nan

(* --- Registry: fidelity round-trip (fuzzer: registry-fidelity) --- *)

(* Stored at blocks=16, probed at blocks=8: the slower-than-stored demotion
   must compare at the entry's store-time fidelity, or the fidelity gap
   masquerades as a cost regression and every cross-fidelity probe misses. *)
let registry_fidelity_roundtrip () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "syccl-test-reg-%d" (Unix.getpid ()))
  in
  let reg = Registry.open_dir dir in
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
        (try Sys.readdir dir with Sys_error _ -> [||]);
      (try Unix.rmdir dir with Unix.Unix_error _ -> ()))
    (fun () ->
      let topo = switch 4 in
      let coll = Collective.make Collective.AllGather ~n:4 ~size:65536.0 in
      let phases = Nccl.schedule topo coll in
      let cost =
        List.fold_left (fun a s -> a +. Sim.time ~blocks:16 topo s) 0.0 phases
      in
      Registry.store reg topo coll ~blocks:16 ~cost ~chosen:"test" phases;
      match Registry.lookup reg ~blocks:8 topo coll with
      | None -> Alcotest.fail "cross-fidelity probe missed"
      | Some hit ->
          Alcotest.(check int) "store-time fidelity reported" 16
            hit.Registry.stored_blocks;
          let expect =
            List.fold_left
              (fun a s -> a +. Sim.time ~blocks:8 topo s)
              0.0 hit.Registry.schedules
          in
          Alcotest.(check (float 1e-12)) "hit time at probe fidelity" expect
            hit.Registry.time)

(* --- Baselines: bugs the differential oracle surfaced --- *)

(* Gather built by reversing a Scatter carries `Reduce-mode chunks — a
   reduction where the demand asks for a concatenation. *)
let nccl_gather_validates () =
  let topo = switch 4 in
  let coll = Collective.make ~root:2 Collective.Gather ~n:4 ~size:4096.0 in
  is_ok "gather demand" (Validate.validate topo coll (Nccl.schedule topo coll))

(* TECCL's reduce-family phases are synthesized as the dual gather problem
   and mirrored with Schedule.reverse on the way out.  A precedence slip
   made the mirroring cover only the non-MILP arm, so on small instances
   (where the epoch MILP runs) reduce phases escaped as gather-mode
   schedules — same simulated cost, wrong computation.  The differential
   oracle caught it; this is the shrunk witness. *)
let teccl_reduce_mirrored () =
  let topo = switch 5 in
  let coll = Collective.make ~root:4 Collective.Reduce ~n:5 ~size:9224.76 in
  let outcome =
    Syccl_teccl.Teccl.synthesize ~seed:12345 ~restarts:1 ~time_budget:10.0 topo
      coll
  in
  match outcome.Syccl_teccl.Teccl.schedules with
  | None -> Alcotest.fail "teccl timed out on a 5-GPU reduce"
  | Some schedules ->
      is_ok "reduce phases mirrored" (Validate.validate topo coll schedules)

(* Dimension-disjoint peers (multi-rail diagonal, no spine) must relay
   instead of raising Not_found out of connecting_dim. *)
let rail_diagonal_relays () =
  let rail = Link.make ~alpha:1e-6 ~gbps:40.0 in
  let topo =
    Builders.multi_rail ~name:"t" ~servers:2 ~gpus_per_server:2 ~nvlink:link
      ~rail ()
  in
  let coll =
    Collective.make ~root:0 ~peer:3 Collective.SendRecv ~n:4 ~size:4096.0
  in
  is_ok "sendrecv diagonal" (Validate.validate topo coll (Nccl.schedule topo coll));
  let bcast = Collective.make ~root:1 Collective.Broadcast ~n:4 ~size:4096.0 in
  is_ok "broadcast relays"
    (Validate.validate topo bcast (Fallback.schedule topo bcast))

let () =
  Alcotest.run "check"
    [
      ( "validate",
        [
          Alcotest.test_case "reduce garbage cycle" `Quick reduce_garbage_cycle;
          Alcotest.test_case "reduce contributor set equality" `Quick
            reduce_contributor_set_equality;
        ] );
      ( "schedule",
        [
          Alcotest.test_case "reverse involution, negative prios" `Quick
            reverse_involution_negative_prios;
          Alcotest.test_case "union shifting and dominance" `Quick
            union_preserves_parts;
        ] );
      ( "registry",
        [
          Alcotest.test_case "size_bucket boundaries" `Quick
            size_bucket_boundaries;
          Alcotest.test_case "fidelity round-trip" `Quick
            registry_fidelity_roundtrip;
        ] );
      ( "baselines",
        [
          Alcotest.test_case "nccl gather validates" `Quick
            nccl_gather_validates;
          Alcotest.test_case "teccl reduce mirrored" `Quick
            teccl_reduce_mirrored;
          Alcotest.test_case "rail diagonal relays" `Quick rail_diagonal_relays;
        ] );
    ]
