(* Lower-replay smoke: for every baseline collective kind x topology family
   x channel count, lower both baseline generators' schedules to MSCCL XML,
   parse the XML back, replay it under executor semantics
   (Msccl_interp.replay), and cross-check schedule correctness with the
   independent reference interpreter (Refcheck).  Fully deterministic; any
   divergence exits non-zero, which gates `dune runtest`. *)

module Builders = Syccl_topology.Builders
module C = Syccl_collective.Collective
module Interp = Syccl_sim.Msccl_interp
module Fallback = Syccl_baselines.Fallback
module Nccl = Syccl_baselines.Nccl
module Refcheck = Syccl_check.Refcheck

let topos =
  [ ("a100-16", Builders.a100 ~servers:2);
    ("multirail-2x4", Builders.h800_scaled ~servers:2 ~gpus_per_server:4);
    ("fig3", Builders.fig3 ()) ]

let kinds =
  [ C.SendRecv; C.Broadcast; C.Scatter; C.Gather; C.Reduce; C.AllGather;
    C.AllToAll; C.ReduceScatter; C.AllReduce ]

let gens = [ ("fallback", Fallback.schedule); ("nccl", Nccl.schedule) ]
let channel_counts = [ 1; 2; 4 ]

let () =
  let checked = ref 0 in
  let failures = ref 0 in
  List.iter
    (fun (tname, topo) ->
      let n = Syccl_topology.Topology.num_gpus topo in
      List.iter
        (fun kind ->
          let coll = C.make kind ~root:0 ~peer:(min 1 (n - 1)) ~n
              ~size:1048576. in
          List.iter
            (fun (gname, gen) ->
              let schedules = gen topo coll in
              (match Refcheck.covers topo coll schedules with
              | Ok () -> ()
              | Error e ->
                  incr failures;
                  Printf.printf "FAIL %s %s %s: refcheck rejects baseline: %s\n"
                    tname (C.kind_name kind) gname e);
              List.iter
                (fun channels ->
                  incr checked;
                  match Interp.check_lowering ~channels ~coll schedules with
                  | Ok () -> ()
                  | Error e ->
                      incr failures;
                      Printf.printf "FAIL %s %s %s channels=%d: %s\n" tname
                        (C.kind_name kind) gname channels e)
                channel_counts)
            gens)
        kinds)
    topos;
  let expected =
    List.length topos * List.length kinds * List.length gens
    * List.length channel_counts
  in
  Printf.printf "lower-replay smoke: %d/%d lowerings replayed, %d failure(s)\n"
    !checked expected !failures;
  if !checked <> expected || !failures > 0 then exit 1
