(* Test entry point: one alcotest run over every module's suite. *)

let () =
  Alcotest.run "syccl"
    [
      ("util", Test_util.suite);
      ("pool", Test_pool.suite);
      ("topology", Test_topology.suite);
      ("collective", Test_collective.suite);
      ("milp", Test_milp.suite);
      ("sim", Test_sim.suite);
      ("msccl", Test_msccl.suite);
      ("json", Test_json.suite);
      ("schedule-ir", Test_schedule_ir.suite);
      ("explain", Test_explain.suite);
      ("solver-properties", Test_solver_properties.suite);
      ("baselines", Test_baselines.suite);
      ("teccl", Test_teccl.suite);
      ("sketch", Test_sketch.suite);
      ("search", Test_search.suite);
      ("combine", Test_combine.suite);
      ("subsolver", Test_subsolver.suite);
      ("synthesizer", Test_synthesizer.suite);
      ("workload", Test_workload.suite);
      ("integration", Test_integration.suite);
      ("properties", Test_properties.suite);
      ("extensions", Test_extensions.suite);
    ]
