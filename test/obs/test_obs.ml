(* Observability layer tests: span tracing (ring buffers, nesting, Chrome
   trace export), histogram metrics, simulator timeline export, and the
   Counters reset/quiescence contract.

   Runs in its own executable so trace enable/disable and Counters.reset
   cannot interfere with the main suite. *)

module Trace = Syccl_util.Trace
module Counters = Syccl_util.Counters
module Json = Syccl_util.Json
module Stats = Syccl_util.Stats
module Pool = Syccl_util.Pool
module Xrand = Syccl_util.Xrand
module T = Syccl_topology.Topology
module Builders = Syccl_topology.Builders
module C = Syccl_collective.Collective
module Sim = Syccl_sim.Sim
module Schedule = Syccl_sim.Schedule

let check = Alcotest.check

(* Pool width under test; mirrors test_pool.ml so CI can sweep widths. *)
let test_domains =
  match Sys.getenv_opt "SYCCL_TEST_DOMAINS" with
  | Some s -> max 1 (int_of_string (String.trim s))
  | None -> 2

(* --- Chrome trace export round-trips through the JSON parser --------- *)

let obj_field name = function
  | Json.Obj kvs -> List.assoc_opt name kvs
  | _ -> None

let trace_events_of_string text =
  match Json.of_string text with
  | Json.Obj kvs -> (
      match List.assoc_opt "traceEvents" kvs with
      | Some (Json.List l) -> l
      | _ -> Alcotest.fail "no traceEvents array")
  | _ -> Alcotest.fail "trace is not a JSON object"

let test_export_round_trip () =
  Trace.enable ();
  Trace.with_span "outer" (fun () ->
      Trace.with_span ~args:[ ("k", "v\"with\nescapes") ] "inner" ignore;
      Trace.instant "tick");
  Trace.disable ();
  let evs = trace_events_of_string (Trace.to_chrome_string ()) in
  Alcotest.(check bool) "events present" true (List.length evs >= 3);
  List.iter
    (fun e ->
      match obj_field "ph" e with
      | Some (Json.Str "X") ->
          Alcotest.(check bool) "X has name/ts/dur" true
            (obj_field "name" e <> None && obj_field "ts" e <> None
           && obj_field "dur" e <> None)
      | Some (Json.Str "i") ->
          Alcotest.(check bool) "i has ts" true (obj_field "ts" e <> None)
      | Some (Json.Str "M") -> ()
      | _ -> Alcotest.fail "unknown event phase")
    evs;
  let name_of e =
    match obj_field "name" e with Some (Json.Str s) -> s | _ -> ""
  in
  let names = List.map name_of evs in
  Alcotest.(check bool) "span names exported" true
    (List.mem "outer" names && List.mem "inner" names && List.mem "tick" names);
  (* JSONL: every line is its own JSON object. *)
  Trace.to_jsonl ()
  |> String.split_on_char '\n'
  |> List.iter (fun line ->
         if String.trim line <> "" then ignore (Json.of_string line))

(* --- Spans are balanced and properly nested under the pool ------------ *)

let test_spans_nested_under_pool () =
  let pool = Pool.get test_domains in
  Trace.enable ();
  let futures =
    List.init 16 (fun i ->
        Pool.submit pool (fun () ->
            Trace.with_span "task.outer" (fun () ->
                Trace.with_span "task.mid" (fun () ->
                    Trace.with_span "task.leaf" (fun () -> i * i)))))
  in
  let total = List.fold_left (fun acc f -> acc + Pool.await f) 0 futures in
  Trace.disable ();
  check Alcotest.int "work done" 1240 total;
  let spans =
    List.filter
      (fun (e : Trace.event) ->
        e.Trace.dur >= 0.0 && e.Trace.pid = Trace.synthesis_pid)
      (Trace.events ())
  in
  (* pool.task wraps each submitted closure, so every depth is recorded. *)
  let count name =
    List.length (List.filter (fun (e : Trace.event) -> e.Trace.name = name) spans)
  in
  check Alcotest.int "outer spans" 16 (count "task.outer");
  check Alcotest.int "mid spans" 16 (count "task.mid");
  check Alcotest.int "leaf spans" 16 (count "task.leaf");
  (* On any one track (= domain), span intervals never partially overlap:
     for two spans either one contains the other or they are disjoint. *)
  let by_tid = Hashtbl.create 8 in
  List.iter
    (fun (e : Trace.event) ->
      Hashtbl.replace by_tid e.Trace.tid
        (e :: Option.value (Hashtbl.find_opt by_tid e.Trace.tid) ~default:[]))
    spans;
  let eps = 1e-9 in
  Hashtbl.iter
    (fun _tid es ->
      let a = Array.of_list es in
      Array.iter
        (fun (x : Trace.event) ->
          Array.iter
            (fun (y : Trace.event) ->
              let x0 = x.Trace.ts and x1 = x.Trace.ts +. x.Trace.dur in
              let y0 = y.Trace.ts and y1 = y.Trace.ts +. y.Trace.dur in
              let disjoint = x1 <= y0 +. eps || y1 <= x0 +. eps in
              let x_in_y = x0 >= y0 -. eps && x1 <= y1 +. eps in
              let y_in_x = y0 >= x0 -. eps && y1 <= x1 +. eps in
              Alcotest.(check bool) "nested or disjoint" true
                (disjoint || x_in_y || y_in_x))
            a)
        a)
    by_tid

let test_span_recorded_on_raise () =
  Trace.enable ();
  (try Trace.with_span "raiser" (fun () -> failwith "boom") with Failure _ -> ());
  Trace.disable ();
  let names = List.map (fun (e : Trace.event) -> e.Trace.name) (Trace.events ()) in
  Alcotest.(check bool) "span survives raise" true (List.mem "raiser" names)

(* --- Ring wrap-around drops oldest events and counts them ------------- *)

let test_ring_wrap_drops () =
  (* 16 is the smallest ring the library will allocate. *)
  Trace.enable ~capacity:16 ();
  (* A fresh domain gets a fresh ring at the current capacity (rings that
     already exist keep their size, so the main domain's ring is unsuitable
     here). *)
  let d =
    Domain.spawn (fun () ->
        for i = 0 to 39 do
          Trace.instant (Printf.sprintf "ev%d" i)
        done;
        (Domain.self () :> int))
  in
  let tid = Domain.join d in
  Trace.disable ();
  let mine =
    List.filter (fun (e : Trace.event) -> e.Trace.tid = tid) (Trace.events ())
  in
  check Alcotest.int "ring retains capacity" 16 (List.length mine);
  check Alcotest.int "dropped counted" 24 (Trace.dropped ());
  (* The retained events are the newest ones. *)
  Alcotest.(check bool) "newest retained" true
    (List.exists (fun (e : Trace.event) -> e.Trace.name = "ev39") mine);
  Alcotest.(check bool) "oldest dropped" true
    (not (List.exists (fun (e : Trace.event) -> e.Trace.name = "ev0") mine));
  (* Restore the default ring size for domains spawned by later tests. *)
  Trace.enable ~capacity:65536 ();
  Trace.disable ();
  check Alcotest.int "enable clears dropped" 0 (Trace.dropped ())

let test_disabled_records_nothing () =
  Trace.enable ();
  Trace.disable ();
  Trace.clear ();
  Trace.with_span "invisible" ignore;
  Trace.instant "also invisible";
  check Alcotest.int "no events when disabled" 0 (List.length (Trace.events ()))

(* --- Histogram percentiles agree with Stats.percentile ---------------- *)

let test_hist_percentiles_match_stats () =
  let rng = Xrand.create 42 in
  (* Mix of magnitudes: exercises many buckets. *)
  let samples =
    List.init 500 (fun i ->
        let scale = 10.0 ** float_of_int (i mod 7 - 3) in
        (0.1 +. Xrand.float rng 1.0) *. scale)
  in
  let h = Counters.histogram "test.obs.latency" in
  let pool = Pool.get test_domains in
  (* Record from several pool tasks: the cells are domain-safe. *)
  let chunks = [ 0; 1; 2; 3; 4 ] in
  List.map
    (fun c ->
      Pool.submit pool (fun () ->
          List.iteri (fun i v -> if i mod 5 = c then Counters.record h v) samples))
    chunks
  |> List.iter Pool.await;
  check Alcotest.int "all samples recorded" 500 (Counters.hist_count h);
  List.iter
    (fun p ->
      let exact =
        match Stats.percentile_opt p samples with
        | Some v -> v
        | None -> Alcotest.fail "samples not empty"
      in
      let approx = Counters.hist_percentile h p in
      let rel = Float.abs (approx -. exact) /. exact in
      if p = 0.0 || p = 1.0 then
        check (Alcotest.float 1e-9) (Printf.sprintf "p=%.2f exact" p) exact approx
      else
        Alcotest.(check bool)
          (Printf.sprintf "p=%.2f within bucket resolution (rel %.3f)" p rel)
          true (rel <= 0.2))
    [ 0.0; 0.25; 0.5; 0.9; 0.99; 1.0 ];
  let st = Counters.hist_stats h in
  let lo, hi =
    match Stats.min_max_opt samples with
    | Some mm -> mm
    | None -> Alcotest.fail "samples not empty"
  in
  check (Alcotest.float 1e-9) "hmin exact" lo st.Counters.hmin;
  check (Alcotest.float 1e-9) "hmax exact" hi st.Counters.hmax;
  check Alcotest.int "stats n" 500 st.Counters.n

let test_hist_empty_and_snapshot () =
  let h = Counters.histogram "test.obs.empty" in
  Alcotest.(check bool) "empty percentile is nan" true
    (Float.is_nan (Counters.hist_percentile h 0.5));
  Alcotest.(check bool) "empty hist not in snapshot" true
    (not (List.mem_assoc "test.obs.empty" (Counters.hist_snapshot ())));
  Counters.observe "test.obs.one" 3.0;
  Alcotest.(check bool) "non-empty hist in snapshot" true
    (List.mem_assoc "test.obs.one" (Counters.hist_snapshot ()));
  let st = List.assoc "test.obs.one" (Counters.hist_snapshot ()) in
  check Alcotest.int "n=1" 1 st.Counters.n;
  check (Alcotest.float 1e-9) "p50 of singleton" 3.0 st.Counters.p50

(* --- Prometheus text exposition parses and is internally consistent ---- *)

(* A small test-side parser for the Prometheus text format (0.0.4):
   comment lines are # HELP / # TYPE declarations, sample lines are
   NAME{LABELS} VALUE or NAME VALUE.  The test validates the grammar and
   the histogram invariants (cumulative non-decreasing buckets ending in a
   +Inf bucket equal to _count), so a renderer regression breaks here and
   not on a live scrape. *)

type prom_sample = { ps_name : string; ps_le : string option; ps_value : float }

let prom_name_ok name =
  name <> ""
  && (match name.[0] with
     | 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true
     | _ -> false)
  && String.for_all
       (function
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true
         | _ -> false)
       name

let parse_prometheus text =
  let types = ref [] and samples = ref [] in
  String.split_on_char '\n' text
  |> List.iter (fun line ->
         if line = "" then ()
         else if String.length line >= 2 && String.sub line 0 2 = "# " then begin
           match String.split_on_char ' ' line with
           | "#" :: "TYPE" :: name :: [ ty ] ->
               Alcotest.(check bool)
                 (Printf.sprintf "TYPE %s is a known kind" name)
                 true
                 (List.mem ty [ "counter"; "gauge"; "histogram" ]);
               types := (name, ty) :: !types
           | "#" :: "HELP" :: name :: _ ->
               Alcotest.(check bool)
                 (Printf.sprintf "HELP name %s valid" name)
                 true (prom_name_ok name)
           | _ -> Alcotest.fail (Printf.sprintf "bad comment line: %s" line)
         end
         else begin
           (* NAME{le="..."} VALUE or NAME VALUE *)
           let name_end =
             match (String.index_opt line '{', String.index_opt line ' ') with
             | Some b, Some sp when b < sp -> b
             | _, Some sp -> sp
             | _ -> Alcotest.fail (Printf.sprintf "bad sample line: %s" line)
           in
           let name = String.sub line 0 name_end in
           Alcotest.(check bool)
             (Printf.sprintf "sample name %s valid" name)
             true (prom_name_ok name);
           let le =
             match String.index_opt line '{' with
             | None -> None
             | Some b ->
                 let e =
                   match String.index_opt line '}' with
                   | Some e when e > b -> e
                   | _ -> Alcotest.fail "unterminated label set"
                 in
                 let lab = String.sub line (b + 1) (e - b - 1) in
                 let prefix = "le=\"" in
                 Alcotest.(check bool) "only le labels emitted" true
                   (String.length lab > String.length prefix + 1
                   && String.sub lab 0 (String.length prefix) = prefix
                   && lab.[String.length lab - 1] = '"');
                 Some
                   (String.sub lab (String.length prefix)
                      (String.length lab - String.length prefix - 1))
           in
           let value =
             match String.rindex_opt line ' ' with
             | Some sp ->
                 let v = String.sub line (sp + 1) (String.length line - sp - 1) in
                 if v = "+Inf" then infinity else float_of_string v
             | None -> Alcotest.fail (Printf.sprintf "no value in: %s" line)
           in
           samples := { ps_name = name; ps_le = le; ps_value = value } :: !samples
         end);
  (List.rev !types, List.rev !samples)

let test_prometheus_format () =
  Counters.add "test.obs.prom_counter" 7;
  Counters.addf "test.obs.prom_gauge" 1.5;
  let values = [ 1e-6; 3e-6; 2e-4; 0.5; 0.5; 12.0 ] in
  List.iter (Counters.observe "test.obs.prom_hist") values;
  let types, samples = parse_prometheus (Counters.to_prometheus ()) in
  (* Every sample family is typed. *)
  let family name =
    (* strip _bucket/_sum/_count suffixes back to the declared family *)
    let strip suffix n =
      let ls = String.length suffix and ln = String.length n in
      if ln > ls && String.sub n (ln - ls) ls = suffix then
        Some (String.sub n 0 (ln - ls))
      else None
    in
    let cand =
      match strip "_bucket" name with
      | Some f -> Some f
      | None -> (
          match strip "_sum" name with
          | Some f -> Some f
          | None -> strip "_count" name)
    in
    match cand with
    | Some f when List.assoc_opt f types = Some "histogram" -> f
    | _ -> name
  in
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (Printf.sprintf "family of %s is typed" s.ps_name)
        true
        (List.mem_assoc (family s.ps_name) types))
    samples;
  (* The int counter and float gauge round-trip with the right type. *)
  let one name =
    match List.filter (fun s -> s.ps_name = name) samples with
    | [ s ] -> s.ps_value
    | l -> Alcotest.fail (Printf.sprintf "%d samples for %s" (List.length l) name)
  in
  Alcotest.(check bool) "counter sample" true
    (one "syccl_test_obs_prom_counter" >= 7.0);
  check (Alcotest.float 1e-9) "gauge sample" 1.5 (one "syccl_test_obs_prom_gauge");
  Alcotest.(check (option string)) "counter typed counter" (Some "counter")
    (List.assoc_opt "syccl_test_obs_prom_counter" types);
  Alcotest.(check (option string)) "gauge typed gauge" (Some "gauge")
    (List.assoc_opt "syccl_test_obs_prom_gauge" types);
  (* Histogram invariants: buckets cumulative and non-decreasing, le
     strictly increasing, +Inf bucket == _count, _sum matches. *)
  Alcotest.(check (option string)) "hist typed histogram" (Some "histogram")
    (List.assoc_opt "syccl_test_obs_prom_hist" types);
  let buckets =
    List.filter (fun s -> s.ps_name = "syccl_test_obs_prom_hist_bucket") samples
  in
  Alcotest.(check bool) "has buckets" true (List.length buckets >= 2);
  let les = List.map (fun s -> match s.ps_le with Some le -> le | None -> Alcotest.fail "bucket without le") buckets in
  let le_vals =
    List.map (fun le -> if le = "+Inf" then infinity else float_of_string le) les
  in
  let rec strictly_increasing = function
    | a :: (b :: _ as tl) -> a < b && strictly_increasing tl
    | _ -> true
  in
  Alcotest.(check bool) "le strictly increasing" true
    (strictly_increasing le_vals);
  let counts = List.map (fun s -> s.ps_value) buckets in
  let rec nondecreasing = function
    | a :: (b :: _ as tl) -> a <= b && nondecreasing tl
    | _ -> true
  in
  Alcotest.(check bool) "buckets non-decreasing" true (nondecreasing counts);
  let last_le = List.nth le_vals (List.length le_vals - 1) in
  Alcotest.(check bool) "last bucket is +Inf" true (last_le = infinity);
  let count = one "syccl_test_obs_prom_hist_count" in
  let sum = one "syccl_test_obs_prom_hist_sum" in
  check (Alcotest.float 1e-9) "+Inf bucket equals count" count
    (List.nth counts (List.length counts - 1));
  check (Alcotest.float 1e-9) "count" (float_of_int (List.length values)) count;
  check (Alcotest.float 1e-6) "sum" (List.fold_left ( +. ) 0.0 values) sum

(* --- Simulator timeline: one track per active port -------------------- *)

let test_sim_trace_tracks () =
  let topo = Builders.h800_scaled ~servers:1 ~gpus_per_server:8 in
  let coll = C.make C.AllGather ~n:8 ~size:1.048576e6 in
  let sched = Syccl_baselines.Ring.allgather topo coll in
  (* Expected active ports, mirroring Sim's numbering: egress of the source
     and ingress of the destination, in the transfer dimension's port
     group. *)
  let npg =
    let m = ref 0 in
    for d = 0 to T.num_dims topo - 1 do
      m := max !m (T.dim topo d).T.port_group
    done;
    !m + 1
  in
  let expected = Hashtbl.create 32 in
  List.iter
    (fun (x : Schedule.xfer) ->
      let pg = (T.dim topo x.Schedule.dim).T.port_group in
      Hashtbl.replace expected (2 * ((x.Schedule.src * npg) + pg)) ();
      Hashtbl.replace expected ((2 * ((x.Schedule.dst * npg) + pg)) + 1) ())
    sched.Schedule.xfers;
  Trace.enable ();
  let report = Sim.run ~trace_pid:Trace.sim_pid topo sched in
  Trace.disable ();
  Alcotest.(check bool) "simulated" true (report.Sim.time > 0.0);
  let sim_spans =
    List.filter
      (fun (e : Trace.event) ->
        e.Trace.pid = Trace.sim_pid && e.Trace.cat = "sim" && e.Trace.dur >= 0.0)
      (Trace.events ())
  in
  let tracks = Hashtbl.create 32 in
  List.iter
    (fun (e : Trace.event) -> Hashtbl.replace tracks e.Trace.tid ())
    sim_spans;
  check Alcotest.int "one track per active port"
    (Hashtbl.length expected) (Hashtbl.length tracks);
  Hashtbl.iter
    (fun tid () ->
      Alcotest.(check bool) "track is an expected port" true
        (Hashtbl.mem expected tid))
    tracks;
  (* Spans on one port never overlap: ports serialize. *)
  let by_track = Hashtbl.create 32 in
  List.iter
    (fun (e : Trace.event) ->
      Hashtbl.replace by_track e.Trace.tid
        (e :: Option.value (Hashtbl.find_opt by_track e.Trace.tid) ~default:[]))
    sim_spans;
  Hashtbl.iter
    (fun _tid es ->
      let a =
        List.sort (fun (x : Trace.event) y -> Float.compare x.Trace.ts y.Trace.ts) es
      in
      ignore
        (List.fold_left
           (fun prev_end (e : Trace.event) ->
             Alcotest.(check bool) "port serializes" true
               (e.Trace.ts >= prev_end -. 1e-12);
             e.Trace.ts +. e.Trace.dur)
           neg_infinity a))
    by_track;
  (* The timeline spans virtual time from 0 to the simulated makespan. *)
  let last =
    List.fold_left
      (fun acc (e : Trace.event) -> Float.max acc (e.Trace.ts +. e.Trace.dur))
      0.0 sim_spans
  in
  Alcotest.(check bool) "timeline reaches makespan" true
    (Float.abs (last -. report.Sim.time) <= 0.5 *. report.Sim.time)

(* --- Counters.reset quiescence contract -------------------------------- *)

let test_reset_zeroes_cells () =
  Counters.bump "test.obs.bumped";
  Counters.observe "test.obs.resettable" 5.0;
  Counters.reset ();
  check (Alcotest.float 1e-9) "int zeroed" 0.0 (Counters.value "test.obs.bumped");
  Alcotest.(check bool) "hist zeroed" true
    (not (List.mem_assoc "test.obs.resettable" (Counters.hist_snapshot ())))

let test_reset_with_quiesced_pool () =
  (* The supported pattern: drain the pool, then reset.  The pool's
     registered quiescence check must pass even with SYCCL_DEBUG set. *)
  let pool = Pool.get test_domains in
  List.init 32 (fun i -> Pool.submit pool (fun () -> i))
  |> List.iter (fun f -> ignore (Pool.await f));
  Unix.putenv "SYCCL_DEBUG" "1";
  Fun.protect
    ~finally:(fun () -> Unix.putenv "SYCCL_DEBUG" "")
    (fun () -> Counters.reset ());
  check (Alcotest.float 1e-9) "reset ran" 0.0 (Counters.value "pool.tasks")

(* Must run last: the failing check stays registered for the rest of the
   process (there is deliberately no deregistration API). *)
let test_reset_failing_check_raises_in_debug () =
  Counters.register_quiescence_check "test.obs.never" (fun () -> false);
  Counters.reset ();
  (* Without SYCCL_DEBUG the failure is ignored (documented tear). *)
  Unix.putenv "SYCCL_DEBUG" "1";
  Fun.protect
    ~finally:(fun () -> Unix.putenv "SYCCL_DEBUG" "")
    (fun () ->
      match Counters.reset () with
      | () -> Alcotest.fail "expected reset to raise under SYCCL_DEBUG"
      | exception Failure msg ->
          Alcotest.(check bool) "failure names the check" true
            (let re = "test.obs.never" in
             let n = String.length re and m = String.length msg in
             let rec scan i =
               i + n <= m && (String.sub msg i n = re || scan (i + 1))
             in
             scan 0))

let () =
  Alcotest.run "syccl-obs"
    [
      ( "trace",
        [
          Alcotest.test_case "export round-trips" `Quick test_export_round_trip;
          Alcotest.test_case "spans nested under pool" `Quick
            test_spans_nested_under_pool;
          Alcotest.test_case "span recorded on raise" `Quick
            test_span_recorded_on_raise;
          Alcotest.test_case "ring wrap drops oldest" `Quick test_ring_wrap_drops;
          Alcotest.test_case "disabled records nothing" `Quick
            test_disabled_records_nothing;
        ] );
      ( "histograms",
        [
          Alcotest.test_case "prometheus exposition valid" `Quick
            test_prometheus_format;
          Alcotest.test_case "percentiles match Stats" `Quick
            test_hist_percentiles_match_stats;
          Alcotest.test_case "empty and snapshot" `Quick
            test_hist_empty_and_snapshot;
        ] );
      ( "sim-timeline",
        [ Alcotest.test_case "one track per port" `Quick test_sim_trace_tracks ] );
      ( "counters-reset",
        [
          Alcotest.test_case "zeroes cells" `Quick test_reset_zeroes_cells;
          Alcotest.test_case "quiesced pool passes" `Quick
            test_reset_with_quiesced_pool;
          Alcotest.test_case "failing check raises in debug" `Quick
            test_reset_failing_check_raises_in_debug;
        ] );
    ]
