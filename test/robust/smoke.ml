(* Robustness smoke: the fig16c smoke workload (h800, 2 servers, AllGather)
   swept under crash injection and under an aggressive deadline, across pool
   widths.  Run by the `runtest` alias with SYCCL_FAULTS=subsolver.crash:1.0
   in the environment (so the env-arming path itself is exercised); exits
   non-zero on any unvalidated element, ladder violation, or cross-width
   nondeterminism. *)

module T = Syccl_topology.Topology
module Builders = Syccl_topology.Builders
module C = Syccl_collective.Collective
module Validate = Syccl_sim.Validate
module Synth = Syccl.Synthesizer
module Faultpoint = Syccl_util.Faultpoint
module Clock = Syccl_util.Clock

let fail fmt = Format.kasprintf (fun m -> prerr_endline ("FAIL: " ^ m); exit 1) fmt

let widths =
  let env =
    match Sys.getenv_opt "SYCCL_TEST_DOMAINS" with
    | Some s -> ( try max 1 (int_of_string s) with _ -> 2)
    | None -> 2
  in
  List.sort_uniq compare [ 1; 2; env ]

let topo = Builders.h800 ~servers:2
let n = T.num_gpus topo

let colls =
  List.map (fun size -> C.make C.AllGather ~n ~size) [ 6.5536e4; 1.048576e6 ]

let sweep ?deadline width =
  Synth.reset_caches ();
  let config = { Synth.default_config with domains = width; deadline } in
  let outs = Synth.synthesize_all ~config topo colls in
  List.iter2
    (fun coll (o : Synth.outcome) ->
      match Validate.validate topo coll o.Synth.schedules with
      | Ok () -> ()
      | Error e ->
          fail "width %d: %a invalid (%s rung): %s" width C.pp coll
            (Synth.level_name o.Synth.degraded)
            e)
    colls outs;
  outs

let () =
  (* Part 1: every pooled sub-solve crashes; every element must still come
     back as a validated fallback, identically at every pool width. *)
  if not (Faultpoint.configured ()) then
    fail "SYCCL_FAULTS not armed (the rule must set it in the environment)";
  if Faultpoint.probability "subsolver.crash" <> 1.0 then
    fail "expected subsolver.crash:1.0 in SYCCL_FAULTS";
  let reference = sweep (List.hd widths) in
  List.iter
    (fun (o : Synth.outcome) ->
      if o.Synth.degraded <> Synth.Fallback then
        fail "crash injection must force the fallback rung")
    reference;
  List.iter
    (fun w ->
      let outs = sweep w in
      List.iter2
        (fun (a : Synth.outcome) (b : Synth.outcome) ->
          if a.Synth.schedules <> b.Synth.schedules then
            fail "width %d: schedules differ from width %d" w (List.hd widths))
        reference outs)
    (List.tl widths);
  (* Part 2: disarm the faults and sweep under an aggressive deadline; the
     wall clock must stay near the budget and every element validates. *)
  Faultpoint.clear ();
  List.iter
    (fun w ->
      let deadline = 0.1 in
      let t0 = Clock.now () in
      let outs = sweep ~deadline w in
      let elapsed = Clock.now () -. t0 in
      if elapsed > deadline +. 2.0 then
        fail "width %d: deadline %.2fs overshot to %.2fs" w deadline elapsed;
      ignore outs)
    widths;
  print_endline "robust smoke OK"
