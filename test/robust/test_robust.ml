(* Robustness suite: deadline budgets, fault injection, the degradation
   ladder, and pool crash isolation.  Fault-point tests arm the global
   harness; each wraps its body in Fun.protect so a failure cannot leak an
   armed configuration into later tests (alcotest runs sequentially). *)

module T = Syccl_topology.Topology
module Builders = Syccl_topology.Builders
module C = Syccl_collective.Collective
module Schedule = Syccl_sim.Schedule
module Validate = Syccl_sim.Validate
module Synth = Syccl.Synthesizer
module Budget = Syccl_util.Budget
module Faultpoint = Syccl_util.Faultpoint
module Clock = Syccl_util.Clock
module Milp = Syccl_milp.Milp
module Epoch_model = Syccl_teccl.Epoch_model

let check = Alcotest.check

(* Pool width under test; the CI matrix re-runs the suite with different
   values (same convention as test_pool / test_synthesizer). *)
let domains =
  match Sys.getenv_opt "SYCCL_TEST_DOMAINS" with
  | Some s -> (try max 1 (int_of_string s) with _ -> 2)
  | None -> 2

let with_faults spec f =
  Faultpoint.configure spec;
  Fun.protect ~finally:Faultpoint.clear f

(* --- Budget ------------------------------------------------------------ *)

let test_budget_basic () =
  check Alcotest.bool "unlimited never expires" false
    (Budget.expired Budget.unlimited);
  check Alcotest.bool "unlimited has no deadline" false
    (Budget.has_deadline Budget.unlimited);
  check Alcotest.bool "unlimited remaining" true
    (Budget.remaining Budget.unlimited = infinity);
  let b = Budget.create ~seconds:60.0 () in
  check Alcotest.bool "fresh budget alive" false (Budget.expired b);
  check Alcotest.bool "has deadline" true (Budget.has_deadline b);
  check Alcotest.bool "remaining positive" true (Budget.remaining b > 0.0);
  let dead = Budget.create ~seconds:(-1.0) () in
  check Alcotest.bool "negative budget expired" true (Budget.expired dead);
  check (Alcotest.float 0.0) "expired remaining" 0.0 (Budget.remaining dead)

let test_budget_cancel_and_sub () =
  let parent = Budget.create ~seconds:60.0 () in
  let child = Budget.sub parent in
  let narrowed = Budget.sub ~seconds:1.0 parent in
  check Alcotest.bool "sub deadline narrows" true
    (Budget.deadline narrowed < Budget.deadline parent);
  check Alcotest.bool "sub inherits deadline" true
    (Budget.deadline child = Budget.deadline parent);
  Budget.cancel parent;
  check Alcotest.bool "cancel reaches sub child" true (Budget.cancelled child);
  check Alcotest.bool "cancelled child expired" true (Budget.expired child);
  check (Alcotest.float 0.0) "cancelled remaining" 0.0 (Budget.remaining child)

let test_budget_marks () =
  let parent = Budget.create ~seconds:60.0 () in
  let child = Budget.sub parent in
  Budget.mark_degraded child;
  check Alcotest.bool "child marked" true (Budget.degraded child);
  check Alcotest.bool "mark does not smear to parent" false
    (Budget.degraded parent);
  Budget.mark_degraded parent;
  check Alcotest.bool "parent marked" true (Budget.degraded parent)

let test_budget_detach () =
  let parent = Budget.create ~seconds:60.0 () in
  let d = Budget.detach parent in
  check Alcotest.bool "detach keeps deadline" true
    (Budget.deadline d = Budget.deadline parent);
  Budget.cancel d;
  check Alcotest.bool "detached cancel is local" false
    (Budget.cancelled parent);
  Budget.mark_degraded d;
  check Alcotest.bool "detached mark is local" false (Budget.degraded parent);
  (* Detaching an already-cancelled budget starts cancelled. *)
  let d2 = Budget.detach d in
  check Alcotest.bool "detach seeds token state" true (Budget.cancelled d2)

(* --- Faultpoint --------------------------------------------------------- *)

let test_faultpoint_arming () =
  check Alcotest.bool "disarmed by default in tests" false
    (Faultpoint.configured ());
  check Alcotest.bool "disarmed probe never fires" false
    (Faultpoint.fire "nope.crash");
  with_faults "a.crash:1.0, b.slow:0.25" (fun () ->
      check Alcotest.bool "configured" true (Faultpoint.configured ());
      check (Alcotest.float 0.0) "p(a.crash)" 1.0
        (Faultpoint.probability "a.crash");
      check (Alcotest.float 0.0) "p(b.slow)" 0.25
        (Faultpoint.probability "b.slow");
      check (Alcotest.float 0.0) "unlisted point" 0.0
        (Faultpoint.probability "c.crash");
      check Alcotest.bool "unlisted never fires" false
        (Faultpoint.fire "c.crash"));
  check Alcotest.bool "cleared" false (Faultpoint.configured ())

let test_faultpoint_deterministic_extremes () =
  with_faults "x.crash:1.0,y.crash:0.0" (fun () ->
      for _ = 1 to 50 do
        check Alcotest.bool "p=1 always fires" true (Faultpoint.fire "x.crash");
        check Alcotest.bool "p=0 never fires" false (Faultpoint.fire "y.crash")
      done;
      match Faultpoint.inject "x.crash" with
      | () -> Alcotest.fail "inject at p=1 must raise"
      | exception Faultpoint.Injected name ->
          check Alcotest.string "payload is the point name" "x.crash" name)

let test_faultpoint_bad_spec () =
  check Alcotest.bool "malformed spec rejected" true
    (match Faultpoint.configure "nocolon" with
    | () -> Faultpoint.clear (); false
    | exception Invalid_argument _ -> true);
  check Alcotest.bool "bad probability rejected" true
    (match Faultpoint.configure "a.crash:two" with
    | () -> Faultpoint.clear (); false
    | exception Invalid_argument _ -> true)

let test_faultpoint_slow () =
  with_faults "z.slow:1.0" (fun () ->
      let t0 = Clock.now () in
      Faultpoint.slow ~seconds:0.05 "z.slow";
      check Alcotest.bool "slow probe sleeps" true (Clock.now () -. t0 >= 0.04));
  let t0 = Clock.now () in
  Faultpoint.slow ~seconds:0.05 "z.slow";
  check Alcotest.bool "disarmed slow is free" true (Clock.now () -. t0 < 0.04)

(* --- MILP limit outcomes ------------------------------------------------ *)

(* min x, integer x >= 0.5: optimum x = 1. *)
let tiny_model () =
  let m = Milp.create () in
  let x = Milp.add_var m ~integer:true ~obj:1.0 "x" in
  Milp.add_ge m [ (x, 1.0) ] 0.5;
  m

let test_milp_limit_no_incumbent () =
  let r = Milp.solve ~node_limit:0 (tiny_model ()) in
  check Alcotest.bool "Limit without incumbent" true (r.Milp.status = Milp.Limit)

let test_milp_limit_with_incumbent () =
  let r = Milp.solve ~node_limit:0 ~incumbent:[| 1.0 |] (tiny_model ()) in
  check Alcotest.bool "Feasible on limit with incumbent" true
    (r.Milp.status = Milp.Feasible);
  check (Alcotest.float 1e-9) "incumbent returned" 1.0 r.Milp.x.(0);
  (* Sanity: without limits the same model solves to optimality. *)
  let opt = Milp.solve (tiny_model ()) in
  check Alcotest.bool "optimal" true (opt.Milp.status = Milp.Optimal);
  check (Alcotest.float 1e-9) "x*" 1.0 opt.Milp.x.(0)

let test_milp_cancelled_budget () =
  let b = Budget.create ~seconds:60.0 () in
  Budget.cancel b;
  let r = Milp.solve ~budget:b (tiny_model ()) in
  check Alcotest.bool "cancelled budget stops at Limit" true
    (r.Milp.status = Milp.Limit);
  let r2 = Milp.solve ~budget:b ~incumbent:[| 1.0 |] (tiny_model ()) in
  check Alcotest.bool "cancelled budget keeps incumbent" true
    (r2.Milp.status = Milp.Feasible)

(* --- Epoch model refusal / incumbent round-trip ------------------------- *)

(* An AllGather-style demand inside one server group: chunk i starts at
   GPU [base+i] and is wanted by the other group members; the incumbent is
   the direct one-hop send from owner to every peer. *)
let group_spec topo ~dim ~group ~tau ~horizon =
  let gpus =
    List.filter
      (fun v -> T.group_of topo ~dim v = group)
      (List.init (T.num_gpus topo) Fun.id)
  in
  let arr = Array.of_list gpus in
  let chunks =
    Array.map
      (fun owner ->
        {
          Schedule.size = 8.0;
          mode = `Gather;
          initial = [ owner ];
          wanted = List.filter (fun v -> v <> owner) gpus;
          tag = 0;
        })
      arr
  in
  let spec =
    {
      Epoch_model.topo;
      chunks;
      edges = Epoch_model.group_edges topo ~dim ~group;
      tau;
      horizon;
    }
  in
  let xfers =
    List.concat
      (Array.to_list
         (Array.mapi
            (fun c owner ->
              List.mapi
                (fun p dst -> { Schedule.chunk = c; src = owner; dst; dim; prio = p })
                (List.filter (fun v -> v <> owner) gpus))
            arr))
  in
  (spec, { Schedule.chunks; xfers })

let test_epoch_oversized_refusal () =
  let topo = Builders.a100 ~servers:2 in
  let spec, incumbent = group_spec topo ~dim:0 ~group:0 ~tau:1e-4 ~horizon:24 in
  check Alcotest.bool "model is oversized" true
    (Epoch_model.var_count spec > 3000);
  check Alcotest.bool "refused without incumbent" true
    (Epoch_model.solve spec = None);
  match Epoch_model.solve ~incumbent spec with
  | None -> Alcotest.fail "oversized model must replay the incumbent"
  | Some (s, epochs) ->
      check Alcotest.int "incumbent schedule returned" (Schedule.num_xfers incumbent)
        (Schedule.num_xfers s);
      check Alcotest.bool "epochs within horizon" true
        (epochs > 0 && epochs <= spec.Epoch_model.horizon)

let test_epoch_limit_round_trip () =
  (* Small enough to build the model, but node_limit 0 forces the Limit
     path; the incumbent must come back as a schedule that still covers
     the demand. *)
  let topo = Builders.fig3 () in
  let spec, incumbent = group_spec topo ~dim:0 ~group:0 ~tau:1e-4 ~horizon:24 in
  check Alcotest.bool "model is small enough to solve" true
    (Epoch_model.var_count spec <= 3000);
  match Epoch_model.solve ~node_limit:0 ~incumbent spec with
  | None -> Alcotest.fail "Limit with incumbent must yield a schedule"
  | Some (s, epochs) ->
      check Alcotest.bool "epochs within horizon" true
        (epochs > 0 && epochs <= spec.Epoch_model.horizon);
      check Alcotest.bool "replay accepts the returned schedule" true
        (Epoch_model.replay spec s <> None)

(* --- Degradation ladder ------------------------------------------------- *)

let a100 = Builders.a100 ~servers:2

let validate_outcome topo coll (o : Synth.outcome) =
  match Validate.validate topo coll o.Synth.schedules with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("outcome failed validation: " ^ e)

let test_deadline_bounded () =
  Synth.reset_caches ();
  let coll = C.make C.AllGather ~n:(T.num_gpus a100) ~size:1.048576e6 in
  let config = { Synth.default_config with domains; deadline = Some 0.05 } in
  let t0 = Clock.now () in
  let o = Synth.synthesize ~config a100 coll in
  let elapsed = Clock.now () -. t0 in
  validate_outcome a100 coll o;
  check Alcotest.bool
    (Printf.sprintf "wall time bounded (%.3fs)" elapsed)
    true (elapsed < 1.5);
  (* An expired-at-birth budget must still return a validated schedule,
     from a degraded rung. *)
  let config = { config with deadline = Some (-1.0) } in
  let o = Synth.synthesize ~config a100 coll in
  validate_outcome a100 coll o;
  check Alcotest.bool "degraded rung reported" true (o.Synth.degraded <> Synth.Full)

let test_subsolver_crash_sweep () =
  with_faults "subsolver.crash:1.0" (fun () ->
      Synth.reset_caches ();
      let n = T.num_gpus a100 in
      let colls =
        List.map (fun size -> C.make C.AllGather ~n ~size) [ 1e3; 6.5536e4; 1.048576e6 ]
      in
      let config = { Synth.default_config with domains } in
      let run () = Synth.synthesize_all ~config a100 colls in
      let outs = run () in
      check Alcotest.int "sweep completes" (List.length colls) (List.length outs);
      List.iter2
        (fun coll (o : Synth.outcome) ->
          check Alcotest.string "every element fell back" "fallback"
            (Synth.level_name o.Synth.degraded);
          validate_outcome a100 coll o)
        colls outs;
      (* Deterministic: a second run (same faults, same pool) produces the
         same schedules. *)
      let outs2 = run () in
      List.iter2
        (fun (a : Synth.outcome) (b : Synth.outcome) ->
          check Alcotest.bool "deterministic under injection" true
            (a.Synth.schedules = b.Synth.schedules))
        outs outs2)

let test_pool_crash_isolation () =
  with_faults "pool.crash:1.0" (fun () ->
      Synth.reset_caches ();
      let n = T.num_gpus a100 in
      let colls =
        List.map (fun size -> C.make C.AllGather ~n ~size) [ 1e3; 6.5536e4 ]
      in
      let config = { Synth.default_config with domains } in
      let results = Synth.synthesize_all_results ~config a100 colls in
      check Alcotest.int "per-element results" (List.length colls)
        (List.length results);
      List.iter
        (fun r ->
          match r with
          | Error e ->
              check Alcotest.bool "error names the fault" true
                (String.length e > 0)
          | Ok _ -> Alcotest.fail "pool.crash:1.0 must fail every pooled task")
        results;
      (* The plain sweep substitutes validated fallbacks instead. *)
      let outs = Synth.synthesize_all ~config a100 colls in
      List.iter2
        (fun coll (o : Synth.outcome) ->
          check Alcotest.string "fallback substituted" "fallback"
            (Synth.level_name o.Synth.degraded);
          validate_outcome a100 coll o)
        colls outs)

let test_sim_crash_fallback () =
  with_faults "sim.crash:1.0" (fun () ->
      Synth.reset_caches ();
      let coll = C.make C.AllGather ~n:(T.num_gpus a100) ~size:6.5536e4 in
      let config = { Synth.default_config with domains } in
      let o = Synth.synthesize ~config a100 coll in
      check Alcotest.string "simulator crash degrades to fallback" "fallback"
        (Synth.level_name o.Synth.degraded);
      (* The fallback is simulator-free, so its predicted time is unknowable
         while the simulator is down. *)
      check Alcotest.bool "time is nan" true (Float.is_nan o.Synth.time);
      validate_outcome a100 coll o)

let test_fallback_schedules_validate () =
  let n = T.num_gpus a100 in
  List.iter
    (fun kind ->
      let coll = C.make kind ~n ~size:1.048576e6 in
      let phases = Syccl_baselines.Fallback.schedule a100 coll in
      match Validate.validate a100 coll phases with
      | Ok () -> ()
      | Error e ->
          Alcotest.fail
            (Format.asprintf "%a fallback invalid: %s" C.pp coll e))
    [ C.AllGather; C.ReduceScatter; C.AllReduce; C.AllToAll; C.Broadcast;
      C.Reduce; C.Scatter; C.Gather ]

let suite =
  [
    Alcotest.test_case "budget basics" `Quick test_budget_basic;
    Alcotest.test_case "budget cancel + sub" `Quick test_budget_cancel_and_sub;
    Alcotest.test_case "budget marks" `Quick test_budget_marks;
    Alcotest.test_case "budget detach" `Quick test_budget_detach;
    Alcotest.test_case "faultpoint arming" `Quick test_faultpoint_arming;
    Alcotest.test_case "faultpoint determinism" `Quick
      test_faultpoint_deterministic_extremes;
    Alcotest.test_case "faultpoint bad spec" `Quick test_faultpoint_bad_spec;
    Alcotest.test_case "faultpoint slow" `Quick test_faultpoint_slow;
    Alcotest.test_case "milp limit, no incumbent" `Quick
      test_milp_limit_no_incumbent;
    Alcotest.test_case "milp limit, incumbent" `Quick
      test_milp_limit_with_incumbent;
    Alcotest.test_case "milp cancelled budget" `Quick test_milp_cancelled_budget;
    Alcotest.test_case "epoch oversized refusal" `Quick
      test_epoch_oversized_refusal;
    Alcotest.test_case "epoch limit round-trip" `Quick
      test_epoch_limit_round_trip;
    Alcotest.test_case "deadline bounded synthesis" `Quick test_deadline_bounded;
    Alcotest.test_case "subsolver crash sweep" `Quick test_subsolver_crash_sweep;
    Alcotest.test_case "pool crash isolation" `Quick test_pool_crash_isolation;
    Alcotest.test_case "sim crash fallback" `Quick test_sim_crash_fallback;
    Alcotest.test_case "fallback schedules validate" `Quick
      test_fallback_schedules_validate;
  ]

let () = Alcotest.run "syccl-robust" [ ("robust", suite) ]
