(* Degraded-serving smoke (fig. 16c flavour), run by the `runtest` alias:
   a small fault grid — the healthy topology plus every single dead link
   of multirail:2x2 — is orbit-warmed once per pool width, then the whole
   grid is requested again.  The repeat pass must be 100% registry hits
   served at the Full rung, every repeat-pass audit record must carry the
   (fingerprint × fault-class) provenance of its punctured topology, and
   predicted costs must agree across pool widths.  Exits non-zero on any
   violation. *)

module Topology = Syccl_topology.Topology
module Fault = Syccl_topology.Fault
module Synth = Syccl.Synthesizer
module Request = Syccl_serve.Request
module Registry = Syccl_serve.Registry
module Serve = Syccl_serve.Serve
module Audit = Syccl_serve.Audit
module Failover = Syccl_serve.Failover

let fail fmt = Format.kasprintf (fun m -> prerr_endline ("FAIL: " ^ m); exit 1) fmt

let tname = "multirail:2x2"
let cname = "allgather"
let size = 65536.0

let widths =
  let env =
    match Sys.getenv_opt "SYCCL_TEST_DOMAINS" with
    | Some s -> (
        match int_of_string_opt s with Some n when n > 0 -> [ n ] | _ -> [])
    | None -> []
  in
  List.sort_uniq compare ([ 1; 2 ] @ env)

(* Fault grid: healthy plus every single dead link. *)
let grid = Fault.empty :: Failover.fault_sets (Request.topo_of_name tname) ~k:1

let run_width w =
  Synth.reset_caches ();
  let config = { Synth.default_config with Synth.domains = w } in
  let reg =
    Registry.open_dir
      (Filename.concat
         (Filename.get_temp_dir_name ())
         (Printf.sprintf "syccl-degraded-smoke-%d-w%d" (Unix.getpid ()) w))
  in
  if Registry.length reg <> 0 then fail "width %d: registry not empty" w;
  let audit = Audit.for_registry reg in
  (* Pass 1: orbit-warm the single-fault classes, serve the healthy case
     cold so it is stored too. *)
  let stats =
    Failover.warm ~registry:reg ~audit ~config ~topology:tname
      ~collective:cname ~size 1
  in
  if stats.Failover.skipped <> 0 then
    fail "width %d: warm left %d orbit members cold" w stats.Failover.skipped;
  ignore
    (Serve.run ~registry:reg ~audit
       (Request.make ~config ~topology:tname ~collective:cname ~size ()));
  (* Pass 2: the whole grid must be served from the registry at Full. *)
  Synth.reset_caches ();
  let outcomes =
    List.map
      (fun faults ->
        let r =
          Request.make ~config ~faults ~topology:tname ~collective:cname ~size
            ()
        in
        (faults, Serve.run ~registry:reg ~audit r))
      grid
  in
  List.iter
    (fun (faults, (o : Serve.outcome)) ->
      (match o.Serve.source with
      | Serve.From_registry _ -> ()
      | Serve.From_synthesis ->
          fail "width %d: faults=%S missed the registry on the repeat pass" w
            (Fault.encode faults));
      if o.Serve.synth.Synth.degraded <> Synth.Full then
        fail "width %d: faults=%S served below the Full rung" w
          (Fault.encode faults))
    outcomes;
  (* Audit provenance: the trailing pass-2 records carry the punctured
     topology's (fingerprint × fault-class) identity and hit probes. *)
  let records, bad = Audit.read (Audit.path audit) in
  if bad <> 0 then fail "width %d: audit trail has %d unparseable lines" w bad;
  let n2 = List.length grid in
  let total = List.length records in
  if total < n2 then
    fail "width %d: expected at least %d audit records, got %d" w n2 total;
  let pass2 = List.filteri (fun i _ -> i >= total - n2) records in
  List.iter2
    (fun faults (r : Audit.record) ->
      let punctured = Topology.puncture (Request.topo_of_name tname) faults in
      if r.Audit.faults <> Fault.encode faults then
        fail "width %d: audit faults %S do not match request fault class %S" w
          r.Audit.faults (Fault.encode faults);
      if r.Audit.fingerprint <> Topology.fingerprint punctured then
        fail "width %d: audit fingerprint lacks the fault fold for %S" w
          (Fault.encode faults);
      if not (r.Audit.probe = "hit" || r.Audit.probe = "hit.scaled") then
        fail "width %d: faults=%S pass-2 record lacks hit provenance (probe=%s)"
          w (Fault.encode faults) r.Audit.probe)
    grid pass2;
  List.map
    (fun (f, (o : Serve.outcome)) -> (Fault.encode f, o.Serve.synth.Synth.time))
    outcomes

let () =
  let per_width = List.map (fun w -> (w, run_width w)) widths in
  (match per_width with
  | [] -> fail "no pool widths to test"
  | (w0, base) :: rest ->
      List.iter
        (fun (w, costs) ->
          List.iter2
            (fun (f0, c0) (f, c) ->
              if f0 <> f || Float.abs (c0 -. c) > 1e-9 *. Float.max 1.0 c0 then
                fail
                  "pool width %d disagrees with width %d on faults=%S (%g vs \
                   %g)"
                  w w0 f0 c0 c)
            base costs)
        rest);
  Printf.printf
    "degraded smoke: %d fault classes x %d pool widths, repeat pass 100%% \
     registry hits at the full rung, audit carries fingerprint x fault-class \
     provenance\n"
    (List.length grid) (List.length widths)
