(* Registry round-trip smoke, run by the `runtest` alias: one batch of
   requests (with a duplicate and a second collective) executed three times
   against a fresh registry.  Run 1 must synthesize and store; runs 2 and 3
   must be 100% registry hits and produce byte-identical outcome JSONL —
   synth_time_s, the only timing field, excepted.  The audit trail written
   next to the registry must carry one record per request element, every
   record must round-trip through its canonical JSON encoding, and every
   run-2/run-3 record must show registry-hit provenance.  Exits non-zero
   on any violation. *)

module Json = Syccl_util.Json
module Synth = Syccl.Synthesizer
module Request = Syccl_serve.Request
module Registry = Syccl_serve.Registry
module Serve = Syccl_serve.Serve
module Audit = Syccl_serve.Audit

let fail fmt = Format.kasprintf (fun m -> prerr_endline ("FAIL: " ^ m); exit 1) fmt

let requests =
  let mk size = Request.make ~topology:"multirail:2x2" ~collective:"allgather" ~size () in
  [
    mk 65536.0;
    mk 65536.0;  (* duplicate: must dedupe to one execution *)
    mk 1048576.0;
    Request.make ~topology:"multirail:2x2" ~collective:"reducescatter"
      ~size:65536.0 ();
  ]

(* Canonical rendering with the timing field zeroed. *)
let render (o : Serve.outcome) =
  match Serve.outcome_to_json o with
  | Json.Obj fields ->
      Json.to_string
        (Json.Obj
           (List.map
              (fun (k, v) ->
                if k = "synth_time_s" then (k, Json.Num 0.0) else (k, v))
              fields))
  | _ -> fail "outcome must render as a JSON object"

let () =
  let reg =
    Registry.open_dir
      (Filename.concat
         (Filename.get_temp_dir_name ())
         (Printf.sprintf "syccl-smoke-registry-%d" (Unix.getpid ())))
  in
  if Registry.length reg <> 0 then fail "smoke registry not empty at start";
  let audit = Audit.for_registry reg in
  let run () =
    Synth.reset_caches ();
    Serve.run_batch ~registry:reg ~audit requests
  in
  let first = run () in
  List.iter
    (fun (o : Serve.outcome) ->
      if o.Serve.source <> Serve.From_synthesis then
        fail "run 1 against an empty registry must synthesize everything")
    first;
  if Registry.length reg <> 3 then
    fail "expected 3 stored entries (4 requests, 1 duplicate), got %d"
      (Registry.length reg);
  let second = run () and third = run () in
  List.iteri
    (fun i (o : Serve.outcome) ->
      match o.Serve.source with
      | Serve.From_registry _ -> ()
      | Serve.From_synthesis ->
          fail "run 2 outcome %d missed the registry (must be 100%% hits)" i)
    second;
  let r2 = List.map render second and r3 = List.map render third in
  List.iteri
    (fun i (a, b) ->
      if a <> b then
        fail "outcome %d differs between identical runs:@.  %s@.  %s" i a b)
    (List.combine r2 r3);
  (* Hits serve the stored quality: simulated cost no worse than run 1. *)
  List.iter2
    (fun (a : Serve.outcome) (b : Serve.outcome) ->
      if b.Serve.synth.Synth.time > a.Serve.synth.Synth.time *. (1.0 +. 1e-6)
      then fail "registry hit is slower than the stored solve")
    first second;
  (* Audit trail: one record per request element per run, all parseable,
     all round-tripping through the canonical encoding, with registry-hit
     provenance for every run-2/run-3 record. *)
  let records, bad = Audit.read (Audit.path audit) in
  if bad <> 0 then fail "audit trail has %d unparseable lines" bad;
  let expected = 3 * List.length requests in
  if List.length records <> expected then
    fail "expected %d audit records (one per element per run), got %d"
      expected (List.length records);
  List.iteri
    (fun i (r : Audit.record) ->
      if Audit.record_of_json (Audit.record_to_json r) <> r then
        fail "audit record %d does not round-trip through its encoding" i;
      let is_hit = r.Audit.probe = "hit" || r.Audit.probe = "hit.scaled" in
      if i < List.length requests then begin
        if is_hit then fail "run-1 record %d claims a hit on an empty registry" i
      end
      else if not is_hit then
        fail "record %d (run 2/3) lacks registry-hit provenance (probe=%s)" i
          r.Audit.probe)
    records;
  print_endline
    "serve smoke: 3 entries, repeat runs 100% hits, outputs stable, audit \
     trail round-trips with hit provenance"
